type standing = Fails_standard | Necessary_condition_met | Undetermined

type certificate = {
  mechanism : string;
  claim : string;
  witness : string;
  certified : bool;
}

type premise =
  | Technical of Pso.Theorems.verdict
  | Bridging of Bridge.t
  | Legal_text of Source.t
  | Machine_checked of certificate

type t = {
  name : string;
  about : Technology.t;
  standard : string;
  standing : standing;
  conclusion : string;
  premises : premise list;
  falsifiable_by : string;
}

let standing_name = function
  | Fails_standard -> "FAILS the standard"
  | Necessary_condition_met -> "necessary condition met (sufficiency open)"
  | Undetermined -> "undetermined (technical premise did not hold)"

(* Negative conclusions may only flow through failure-transferring bridges;
   positive ones may not flow through them at all. *)
let derive_failure ~bridges verdict =
  if not (List.for_all Bridge.failure_transfers bridges) then
    invalid_arg "Theorem.derive_failure: bridge does not transfer failures";
  if verdict.Pso.Theorems.holds then Fails_standard else Undetermined

let kanon_fails_gdpr ~variant verdict =
  if not (Technology.kanon_family variant) then
    invalid_arg "Theorem.kanon_fails_gdpr: not a k-anonymity variant";
  let standing =
    derive_failure ~bridges:[ Bridge.pso_to_gdpr_singling_out ] verdict
  in
  {
    name = "Legal Theorem 2.1";
    about = variant;
    standard = "GDPR prevention of singling out (Recital 26)";
    standing;
    conclusion =
      Printf.sprintf
        "%s fails to prevent singling out as required by the GDPR: it does \
         not even prevent the weaker notion of predicate singling out."
        (Technology.name variant);
    premises =
      [
        Technical verdict;
        Bridging Bridge.pso_to_gdpr_singling_out;
        Legal_text Source.gdpr_recital_26;
      ];
    falsifiable_by =
      "a proof or measurement that typical information-optimizing \
       k-anonymizers resist the Theorem 2.10 attackers (PSO success at \
       negligible weight driven to ~0)";
  }

let kanon_fails_anonymization ~variant verdict =
  let base = kanon_fails_gdpr ~variant verdict in
  {
    base with
    name = "Legal Corollary 2.1";
    standard = "GDPR anonymization standard (Recital 26 exemption)";
    conclusion =
      Printf.sprintf
        "%s does not meet the GDPR standard for anonymization: preventing \
         singling out is necessary for the Recital 26 exemption, and it is \
         not prevented." (Technology.name variant);
    premises = base.premises @ [ Bridging Bridge.singling_out_to_anonymization ];
  }

let dp_necessary_condition ?(certificates = []) verdict =
  let standing =
    if verdict.Pso.Theorems.holds then Necessary_condition_met else Undetermined
  in
  let all_certified =
    certificates <> [] && List.for_all (fun c -> c.certified) certificates
  in
  {
    name = "Section 2.4.1 determination";
    about = Technology.Differential_privacy;
    standard = "GDPR prevention of singling out (Recital 26)";
    standing;
    conclusion =
      "Differential privacy prevents predicate singling out (Theorem 2.9); \
       since PSO is a weakened form of the legal notion, this establishes a \
       necessary condition only — differential privacy MAY provide the \
       anonymization the GDPR requires, pending analysis of the remaining \
       'means reasonably likely to be used'."
      ^ (if all_certified then
           " The eps-DP premises cited here are machine-checked \
            (randomness-alignment certificates verified exhaustively in \
            exact arithmetic), not merely statistically audited."
         else "");
    premises =
      Technical verdict
      :: (List.map (fun c -> Machine_checked c) certificates
         @ [
             Bridging Bridge.pso_to_gdpr_singling_out;
             Legal_text Source.gdpr_recital_26;
           ]);
    falsifiable_by =
      "a PSO attacker winning the Definition 2.4 game against an \
       eps-differentially private mechanism with non-negligible probability";
  }

let count_release_caveat secure_verdict composed_verdict =
  let standing =
    if
      secure_verdict.Pso.Theorems.holds && composed_verdict.Pso.Theorems.holds
    then Necessary_condition_met
    else Undetermined
  in
  {
    name = "Composition caveat (Theorems 2.5/2.8)";
    about = Technology.Count_release;
    standard = "GDPR prevention of singling out (Recital 26)";
    standing;
    conclusion =
      "A single exact count prevents predicate singling out, but omega(log \
       n) composed counts do not; any legal determination that counting is \
       safe cannot survive composition, so the necessary condition holds \
       only for isolated releases.";
    premises =
      [
        Technical secure_verdict;
        Technical composed_verdict;
        Bridging Bridge.pso_to_gdpr_singling_out;
      ];
    falsifiable_by =
      "either a PSO attack on a single count mechanism, or a proof that \
       composed count releases resist the bucket-and-bits attacker";
  }

let raw_release_fails =
  {
    name = "Anchor case";
    about = Technology.Raw_release;
    standard = "GDPR prevention of singling out (Recital 26)";
    standing = Fails_standard;
    conclusion =
      "Publishing records verbatim permits singling out trivially: any \
       record's full-value predicate isolates it whenever it is unique, and \
       its weight is its probability under D — negligible for \
       high-entropy records.";
    premises = [ Legal_text Source.gdpr_recital_26 ];
    falsifiable_by = "nothing — the attack is immediate from the release format";
  }

let pp fmt t =
  Format.fprintf fmt "%s — %s vs %s: %s@." t.name (Technology.name t.about)
    t.standard (standing_name t.standing);
  Format.fprintf fmt "  %s@." t.conclusion;
  List.iter
    (fun p ->
      match p with
      | Technical v ->
        Format.fprintf fmt "  premise (technical): %s [%s]@." v.Pso.Theorems.id
          (if v.Pso.Theorems.holds then "holds" else "refuted")
      | Bridging b -> Format.fprintf fmt "  premise (bridge): %a@." Bridge.pp b
      | Legal_text s ->
        Format.fprintf fmt "  premise (legal text): %s@." s.Source.id
      | Machine_checked c ->
        Format.fprintf fmt "  premise (machine-checked): %s, %s [%s]@."
          c.mechanism c.claim
          (if c.certified then "certified: " ^ c.witness
           else "NOT certified — audited only"))
    t.premises;
  Format.fprintf fmt "  falsifiable by: %s@." t.falsifiable_by
