(** The legal-theorem engine (Section 2.4).

    A legal theorem is a derived claim about a technology's standing under a
    legal standard, with an explicit derivation: technical premises
    (empirically checked {!Pso.Theorems.verdict}s), bridges (modeling
    assumptions with explicit transfer direction), and quoted legal text.
    The engine refuses to derive a positive legal conclusion through a
    weaker-than-legal bridge — only failures transfer — which is exactly
    why differential privacy earns "necessary condition met, further
    analysis required" while k-anonymity earns a definite failure. *)

type standing =
  | Fails_standard  (** definite negative legal conclusion *)
  | Necessary_condition_met
      (** the technology clears the necessary condition; sufficiency is
          beyond the model *)
  | Undetermined  (** a required technical premise did not hold *)

type certificate = {
  mechanism : string;  (** e.g. ["laplace"] *)
  claim : string;  (** the certified bound, e.g. ["e^eps = 2 (eps = ln 2)"] *)
  witness : string;  (** provenance, e.g. ["handwritten alignment, 13 atoms"] *)
  certified : bool;
      (** [true] when the mechanical checker verified the certificate;
          [false] demotes the premise to "audited only" *)
}
(** A machine-checked ε-DP premise: the summary of a [Cert.Registry]
    verdict, carried as plain data so the legal layer stays independent of
    the certificate checker's types. *)

type premise =
  | Technical of Pso.Theorems.verdict
  | Bridging of Bridge.t
  | Legal_text of Source.t
  | Machine_checked of certificate

type t = {
  name : string;  (** e.g. "Legal Theorem 2.1" *)
  about : Technology.t;
  standard : string;  (** e.g. "GDPR prevention of singling out" *)
  standing : standing;
  conclusion : string;
  premises : premise list;
  falsifiable_by : string;
      (** the measurement that would refute this theorem — the paper's
          Section 2.4.3 demand that such statements be mathematically
          falsifiable *)
}

val kanon_fails_gdpr : variant:Technology.t -> Pso.Theorems.verdict -> t
(** Legal Theorem 2.1 (and its footnote-3 variants): from the Theorem 2.10
    verdict, through bridges B1 and B2. [variant] must satisfy
    {!Technology.kanon_family}; raises [Invalid_argument] otherwise. If the
    verdict does not hold, the standing is [Undetermined] — a failed
    empirical premise refutes the derivation, not the technology. *)

val kanon_fails_anonymization : variant:Technology.t -> Pso.Theorems.verdict -> t
(** Legal Corollary 2.1: failure to prevent singling out implies failure of
    the Recital 26 anonymization standard. *)

val dp_necessary_condition :
  ?certificates:certificate list -> Pso.Theorems.verdict -> t
(** Section 2.4.1: from Theorem 2.9, differential privacy prevents PSO; the
    bridge direction forbids concluding more than "necessary condition
    met". When [certificates] are supplied they are cited as premises; if
    every one is certified the conclusion upgrades its ε-DP premises from
    "statistically audited" to "machine-checked". *)

val count_release_caveat : Pso.Theorems.verdict -> Pso.Theorems.verdict -> t
(** From Theorems 2.5 and 2.8: a single count release meets the necessary
    condition, but the conclusion is void under composition — any
    formalization deeming counts secure must fail to compose. *)

val raw_release_fails : t
(** The degenerate anchor case: publishing data verbatim permits singling
    out trivially (no technical premise needed — the identity predicate on
    any record isolates). *)

val pp : Format.formatter -> t -> unit

val standing_name : standing -> string
