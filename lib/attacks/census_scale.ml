module Synth = Dataset.Synth
module Sparse = Linalg.Sparse
module Intervals = Linalg.Intervals
module Lsq = Linalg.Lsq

type bound = { b_lo : int; b_hi : int }

type suppressed = {
  s_block : int;
  s_total : int;
  s_age : bound array;
  s_sex_bucket : bound array;
  s_race_eth : bound array;
  s_suppressed : int;
}

let n_sex = 2

let n_age = 100

let n_race = 6

let n_eth = 2

let n_cells = n_sex * n_age * n_race * n_eth

let cell ~sex ~age ~race ~eth = ((((sex * n_age) + age) * n_race) + race) * n_eth + eth

(* Row layout of the shared constraint system. *)
let n_rows = 1 + n_age + (n_sex * 10) + (n_race * n_eth)

let row_total = 0

let row_age a = 1 + a

let row_sex_bucket s b = 1 + n_age + (s * 10) + b

let row_race_eth r e = 1 + n_age + (n_sex * 10) + (r * n_eth) + e

(* Built eagerly at module init: a [lazy] here would be forced
   concurrently by the shard worker domains, which [Lazy.force] does not
   support (it raises [Undefined]). The build is a few microseconds. *)
let matrix =
  let rows = Array.make n_rows [] in
  let push r j = rows.(r) <- (j, 1.) :: rows.(r) in
  for sex = 0 to n_sex - 1 do
    for age = 0 to n_age - 1 do
      for race = 0 to n_race - 1 do
        for eth = 0 to n_eth - 1 do
          let j = cell ~sex ~age ~race ~eth in
          push row_total j;
          push (row_age age) j;
          push (row_sex_bucket sex (age / 10)) j;
          push (row_race_eth race eth) j
        done
      done
    done
  done;
  Sparse.of_rows ~cols:n_cells rows

let constraint_matrix () = matrix

let suppress ~threshold pub =
  if threshold < 0 then invalid_arg "Census_scale.suppress: threshold";
  let hidden = ref 0 in
  let publish c =
    if threshold = 0 || c >= threshold then { b_lo = c; b_hi = c }
    else begin
      if c > 0 then incr hidden;
      { b_lo = 0; b_hi = threshold - 1 }
    end
  in
  let from_assoc ~size ~key cells =
    let out = Array.init size (fun _ -> publish 0) in
    List.iter (fun (k, c) -> out.(key k) <- publish c) cells;
    out
  in
  (* Bind before constructing the record: [s_suppressed] reads the [hidden]
     accumulator, and record-field evaluation order is unspecified. *)
  let s_age = from_assoc ~size:n_age ~key:Fun.id pub.Census.age_histogram in
  let s_sex_bucket =
    from_assoc ~size:(n_sex * 10)
      ~key:(fun (s, b) -> (s * 10) + b)
      pub.Census.sex_by_bucket
  in
  let s_race_eth =
    from_assoc ~size:(n_race * n_eth)
      ~key:(fun (r, e) -> (r * n_eth) + e)
      pub.Census.race_eth
  in
  {
    s_block = pub.Census.block;
    s_total = pub.Census.total;
    s_age;
    s_sex_bucket;
    s_race_eth;
    s_suppressed = !hidden;
  }

type block_solution = {
  counts : int array;
  relaxed : float array;
  iterations : int;
  converged : bool;
  fixed_cells : int;
}

(* Counts are integers rounded at the end, so movement below 1e-4 cannot
   change any rounded cell — a tighter tolerance only burns iterations
   drifting along the system's flat directions. *)
let solver_options = { Lsq.max_iter = 600; tolerance = 1e-4 }

let row_bounds sup =
  let row_lo = Array.make n_rows 0. and row_hi = Array.make n_rows 0. in
  let set r { b_lo; b_hi } =
    row_lo.(r) <- float_of_int b_lo;
    row_hi.(r) <- float_of_int b_hi
  in
  set row_total { b_lo = sup.s_total; b_hi = sup.s_total };
  Array.iteri (fun a b -> set (row_age a) b) sup.s_age;
  Array.iteri
    (fun i b -> set (row_sex_bucket (i / 10) (i mod 10)) b)
    sup.s_sex_bucket;
  Array.iteri
    (fun i b -> set (row_race_eth (i / n_eth) (i mod n_eth)) b)
    sup.s_race_eth;
  (row_lo, row_hi)

(* Consistent per-row least-squares targets. Exact rows keep their
   published counts; each family's suppressed rows share the remainder of
   the exact block total in proportion to their interval midpoints,
   clipped into the interval. Raw midpoints are mutually inconsistent —
   100 suppressed age rows at midpoint 1 claim ten times a 10-person
   block — and inconsistent targets drag the least-squares compromise
   away from anything feasible, which both degrades the reconstruction
   and makes solver iteration counts meaningless. *)
let row_targets sup =
  let t = Array.make n_rows 0. in
  t.(row_total) <- float_of_int sup.s_total;
  let fill bounds row_of =
    let exact = ref 0 and mids = ref 0. in
    Array.iter
      (fun { b_lo; b_hi } ->
        if b_lo = b_hi then exact := !exact + b_lo
        else mids := !mids +. (float_of_int (b_lo + b_hi) /. 2.))
      bounds;
    let remainder = Float.max 0. (float_of_int (sup.s_total - !exact)) in
    let scale = if !mids > 0. then remainder /. !mids else 0. in
    Array.iteri
      (fun i { b_lo; b_hi } ->
        t.(row_of i) <-
          (if b_lo = b_hi then float_of_int b_lo
           else
             Float.min (float_of_int b_hi)
               (Float.max (float_of_int b_lo)
                  (float_of_int (b_lo + b_hi) /. 2. *. scale))))
      bounds
  in
  fill sup.s_age row_age;
  fill sup.s_sex_bucket (fun i -> row_sex_bucket (i / 10) (i mod 10));
  fill sup.s_race_eth (fun i -> row_race_eth (i / n_eth) (i mod n_eth));
  t

(* Cells of one age row, ascending — the unit of integer rounding. *)
let age_cells age =
  let out = Array.make (n_sex * n_race * n_eth) 0 in
  let k = ref 0 in
  for sex = 0 to n_sex - 1 do
    for race = 0 to n_race - 1 do
      for eth = 0 to n_eth - 1 do
        out.(!k) <- cell ~sex ~age ~race ~eth;
        incr k
      done
    done
  done;
  Array.sort compare out;
  out

(* Eager for the same domain-safety reason as [matrix]. *)
let age_cells_table = Array.init n_age age_cells

(* Largest-remainder rounding: integers summing to [target] (when the
   bounds permit), each within [lo.(i), hi.(i)], starting from the clamped
   floor of [mass] and handing the remainder to the largest fractional
   parts first. Ties break by ascending index, so the result is a pure
   function of its inputs. *)
let largest_remainder ~mass ~lo ~hi ~target =
  let k = Array.length mass in
  let base = Array.make k 0 in
  let frac = Array.make k 0. in
  for i = 0 to k - 1 do
    let f = Float.floor mass.(i) in
    let b = Float.max lo.(i) (Float.min hi.(i) f) in
    base.(i) <- int_of_float b;
    frac.(i) <- mass.(i) -. f
  done;
  let order = Array.init k Fun.id in
  let d = ref (target - Array.fold_left ( + ) 0 base) in
  if !d > 0 then begin
    Array.sort
      (fun i i' ->
        match compare frac.(i') frac.(i) with 0 -> compare i i' | c -> c)
      order;
    let progress = ref true in
    while !d > 0 && !progress do
      progress := false;
      Array.iter
        (fun i ->
          if !d > 0 && float_of_int base.(i) < hi.(i) then begin
            base.(i) <- base.(i) + 1;
            decr d;
            progress := true
          end)
        order
    done
  end
  else if !d < 0 then begin
    Array.sort
      (fun i i' ->
        match compare frac.(i) frac.(i') with 0 -> compare i i' | c -> c)
      order;
    let progress = ref true in
    while !d < 0 && !progress do
      progress := false;
      Array.iter
        (fun i ->
          if !d < 0 && float_of_int base.(i) > lo.(i) then begin
            base.(i) <- base.(i) - 1;
            incr d;
            progress := true
          end)
        order
    done
  end;
  base

let solve_block ?x0 ?(shave = false) sup =
  let a = constraint_matrix () in
  let row_lo, row_hi = row_bounds sup in
  let box0 =
    Intervals.make ~n:n_cells ~lo:0. ~hi:(float_of_int sup.s_total)
  in
  let bounds =
    match Intervals.propagate a ~row_lo ~row_hi box0 with
    | `Bounded b -> b
    | `Empty _ -> box0 (* unreachable on truthfully tabulated bounds *)
  in
  let bounds = if shave then Intervals.shave a ~row_lo ~row_hi bounds else bounds in
  let fixed_cells = Intervals.fixed_count bounds in
  let relaxed = Array.make n_cells 0. in
  for j = 0 to n_cells - 1 do
    relaxed.(j) <- bounds.Intervals.lo.(j)
  done;
  let iterations, converged =
    if fixed_cells = n_cells then (0, true)
    else begin
      let free = Array.make (n_cells - fixed_cells) 0 in
      let k = ref 0 in
      for j = 0 to n_cells - 1 do
        if not (Intervals.is_fixed bounds j) then begin
          free.(!k) <- j;
          incr k
        end
      done;
      let af = Sparse.restrict_cols a ~keep:free in
      (* Row equilibration: the total row touches all 2400 cells while a
         single-year age row touches 24, so unweighted the total row owns
         the Lipschitz constant and the 1/L gradient step barely moves the
         iterate along any other direction. Weighting each row by 1/√nnz
         levels the spectrum and makes the iteration count meaningful. *)
      let w =
        Array.init n_rows (fun r ->
            let c = Sparse.row_nnz af r in
            if c = 0 then 0. else 1. /. sqrt (float_of_int c))
      in
      let af = Sparse.scale_rows af ~w in
      (* Aim each row at its consistent target, with the pinned cells'
         contribution moved to the right-hand side. *)
      let targets = row_targets sup in
      let b = Array.make n_rows 0. in
      for r = 0 to n_rows - 1 do
        let fixed_contrib =
          Sparse.fold_row a r ~init:0. ~f:(fun acc j v ->
              if Intervals.is_fixed bounds j then
                acc +. (v *. bounds.Intervals.lo.(j))
              else acc)
        in
        b.(r) <- w.(r) *. (targets.(r) -. fixed_contrib)
      done;
      let lo_f = Array.map (fun j -> bounds.Intervals.lo.(j)) free in
      let hi_f = Array.map (fun j -> bounds.Intervals.hi.(j)) free in
      let x0_f =
        Option.map (fun x0 -> Array.map (fun j -> x0.(j)) free) x0
      in
      let sol =
        Lsq.box ~options:solver_options ?x0:x0_f (Lsq.of_sparse af) b ~lo:lo_f
          ~hi:hi_f
      in
      Array.iteri (fun i j -> relaxed.(j) <- sol.Lsq.x.(i)) free;
      (sol.Lsq.iterations, sol.Lsq.converged)
    end
  in
  (* Integer counts, in two largest-remainder stages. Ages partition the
     block and the block total is always published exactly, so the per-age
     record counts are themselves an allocation of [s_total] across the
     age intervals — without this stage, suppression leaves every age mass
     fractional and naive rounding emits zero records. Then each age's
     target is placed onto its 24 cells within the propagated bounds. *)
  let counts = Array.make n_cells 0 in
  let cells_by_age = age_cells_table in
  let age_mass =
    Array.map
      (fun cells -> Array.fold_left (fun acc j -> acc +. relaxed.(j)) 0. cells)
      cells_by_age
  in
  let age_targets =
    largest_remainder ~mass:age_mass
      ~lo:(Array.map (fun b -> float_of_int b.b_lo) sup.s_age)
      ~hi:(Array.map (fun b -> float_of_int b.b_hi) sup.s_age)
      ~target:sup.s_total
  in
  for age = 0 to n_age - 1 do
    let cells = cells_by_age.(age) in
    let placed =
      largest_remainder
        ~mass:(Array.map (fun j -> relaxed.(j)) cells)
        ~lo:(Array.map (fun j -> bounds.Intervals.lo.(j)) cells)
        ~hi:(Array.map (fun j -> bounds.Intervals.hi.(j)) cells)
        ~target:age_targets.(age)
    in
    Array.iteri (fun i j -> counts.(j) <- placed.(i)) cells
  done;
  { counts; relaxed; iterations; converged; fixed_cells }

(* Rake (iterative proportional fitting) a neighboring block's relaxed
   solution onto this block's published row targets: each sweep rescales
   the mass of every age, sex×decade and race×ethnicity row to the row's
   interval midpoint, then the whole vector to the exact block total.
   Neighboring blocks differ in exactly those marginals — carrying the
   neighbor's joint structure while conforming its marginals is what makes
   the seed a genuine warm start instead of a misleading one. *)
let warm_seed sup relaxed =
  let targets = row_targets sup in
  let a = constraint_matrix () in
  let row_lo, row_hi = row_bounds sup in
  (* The same propagated per-cell bounds the solver will clamp the seed
     into: raking must respect them, or the clamp undoes the raked
     marginals and the "warm" start lands farther out than the cold one.
     A capped proportional rescale is water-filling; iterating the sweeps
     redistributes the capped excess onto the remaining cells. *)
  let box0 = Intervals.make ~n:n_cells ~lo:0. ~hi:(float_of_int sup.s_total) in
  let bounds =
    match Intervals.propagate a ~row_lo ~row_hi box0 with
    | `Bounded b -> b
    | `Empty _ -> box0
  in
  let clamp j v =
    Float.max bounds.Intervals.lo.(j) (Float.min bounds.Intervals.hi.(j) v)
  in
  let x = Array.mapi (fun j v -> clamp j (Float.max v 1e-6)) relaxed in
  let rake ~groups ~group ~target =
    let sums = Array.make groups 0. in
    Array.iteri (fun j v -> sums.(group j) <- sums.(group j) +. v) x;
    Array.iteri
      (fun j v ->
        let g = group j in
        if sums.(g) > 1e-9 then x.(j) <- clamp j (v *. target g /. sums.(g)))
      x
  in
  let age_of j = j / (n_race * n_eth) mod n_age in
  let sex_of j = j / (n_age * n_race * n_eth) in
  for _sweep = 1 to 8 do
    rake ~groups:n_age ~group:age_of ~target:(fun a -> targets.(row_age a));
    rake ~groups:(n_sex * 10)
      ~group:(fun j -> (sex_of j * 10) + (age_of j / 10))
      ~target:(fun i -> targets.(row_sex_bucket (i / 10) (i mod 10)));
    rake ~groups:(n_race * n_eth)
      ~group:(fun j -> j mod (n_race * n_eth))
      ~target:(fun i -> targets.(row_race_eth (i / n_eth) (i mod n_eth)));
    let total = Array.fold_left ( +. ) 0. x in
    if total > 1e-9 then begin
      let s = float_of_int sup.s_total /. total in
      Array.iteri (fun j v -> x.(j) <- clamp j (v *. s)) x
    end
  done;
  x

type config = {
  blocks : int;
  mean_block_size : int;
  shards : int;
  threshold : int;
  warm_start : bool;
  shave : bool;
}

type stats = {
  population : int;
  records : int;
  solved_blocks : int;
  cells_matched : int;
  sex_age_matched : int;
  suppressed_cells : int;
  fixed_cells : int;
  solves : int;
  warm_solves : int;
  iterations : int;
  warm_iterations : int;
  converged_blocks : int;
}

let zero_stats =
  {
    population = 0;
    records = 0;
    solved_blocks = 0;
    cells_matched = 0;
    sex_age_matched = 0;
    suppressed_cells = 0;
    fixed_cells = 0;
    solves = 0;
    warm_solves = 0;
    iterations = 0;
    warm_iterations = 0;
    converged_blocks = 0;
  }

let add_stats a b =
  {
    population = a.population + b.population;
    records = a.records + b.records;
    solved_blocks = a.solved_blocks + b.solved_blocks;
    cells_matched = a.cells_matched + b.cells_matched;
    sex_age_matched = a.sex_age_matched + b.sex_age_matched;
    suppressed_cells = a.suppressed_cells + b.suppressed_cells;
    fixed_cells = a.fixed_cells + b.fixed_cells;
    solves = a.solves + b.solves;
    warm_solves = a.warm_solves + b.warm_solves;
    iterations = a.iterations + b.iterations;
    warm_iterations = a.warm_iterations + b.warm_iterations;
    converged_blocks = a.converged_blocks + b.converged_blocks;
  }

let match_rate s =
  if s.population = 0 then 0.
  else float_of_int s.cells_matched /. float_of_int s.population

let sex_age_rate s =
  if s.population = 0 then 0.
  else float_of_int s.sex_age_matched /. float_of_int s.population

let c_blocks = Obs.Counter.make "census.blocks_solved"

let c_records = Obs.Counter.make "census.rows_reconstructed"

let c_iters = Obs.Counter.make "census.solver_iterations"

let c_warm_iters = Obs.Counter.make "census.warm_iterations"

let c_warm = Obs.Counter.make "census.warm_solves"

let c_suppressed = Obs.Counter.make "census.suppressed_cells"

let c_fixed = Obs.Counter.make "census.cells_fixed_by_propagation"

let sk_solve = Obs.Sketchm.make ~timing:true "census.block_solve_ns"

let truth_counts people =
  let counts = Array.make n_cells 0 in
  Array.iter
    (fun (p : Synth.census_person) ->
      let j =
        cell ~sex:p.Synth.sex ~age:p.Synth.age ~race:p.Synth.race
          ~eth:p.Synth.ethnicity
      in
      counts.(j) <- counts.(j) + 1)
    people;
  counts

let min_overlap a b =
  let acc = ref 0 in
  for j = 0 to Array.length a - 1 do
    acc := !acc + min a.(j) b.(j)
  done;
  !acc

let sex_age_marginal counts =
  let out = Array.make (n_sex * n_age) 0 in
  for sex = 0 to n_sex - 1 do
    for age = 0 to n_age - 1 do
      let i = (sex * n_age) + age in
      for race = 0 to n_race - 1 do
        for eth = 0 to n_eth - 1 do
          out.(i) <- out.(i) + counts.(cell ~sex ~age ~race ~eth)
        done
      done
    done
  done;
  out

(* Solve one block given its truth microdata and published tables, updating
   the running shard stats. [warm] carries the previous block's relaxed
   solution and total within the shard. *)
let solve_one cfg ~warm ~people ~pub acc =
  let sup = suppress ~threshold:cfg.threshold pub in
  let x0 =
    if not cfg.warm_start then None
    else Option.map (warm_seed sup) !warm
  in
  let t0 = Obs.now_ns () in
  let sol = solve_block ?x0 ~shave:cfg.shave sup in
  Obs.Sketchm.observe sk_solve (Int64.to_float (Int64.sub (Obs.now_ns ()) t0));
  warm := Some sol.relaxed;
  let truth = truth_counts people in
  let records = Array.fold_left ( + ) 0 sol.counts in
  let is_warm = x0 <> None in
  Obs.Counter.incr c_blocks;
  Obs.Counter.add c_records records;
  Obs.Counter.add c_iters sol.iterations;
  Obs.Counter.add c_suppressed sup.s_suppressed;
  Obs.Counter.add c_fixed sol.fixed_cells;
  if is_warm then begin
    Obs.Counter.incr c_warm;
    Obs.Counter.add c_warm_iters sol.iterations
  end;
  add_stats acc
    {
      population = Array.length people;
      records;
      solved_blocks = 1;
      cells_matched = min_overlap truth sol.counts;
      sex_age_matched =
        min_overlap (sex_age_marginal truth) (sex_age_marginal sol.counts);
      suppressed_cells = sup.s_suppressed;
      fixed_cells = sol.fixed_cells;
      solves = 1;
      warm_solves = (if is_warm then 1 else 0);
      iterations = sol.iterations;
      warm_iterations = (if is_warm then sol.iterations else 0);
      converged_blocks = (if sol.converged then 1 else 0);
    }

let validate cfg =
  if cfg.blocks <= 0 then invalid_arg "Census_scale.run: blocks";
  if cfg.mean_block_size <= 0 then invalid_arg "Census_scale.run: mean_block_size";
  if cfg.shards <= 0 then invalid_arg "Census_scale.run: shards";
  if cfg.threshold < 0 then invalid_arg "Census_scale.run: threshold"

let shard_range cfg s =
  let per = (cfg.blocks + cfg.shards - 1) / cfg.shards in
  let first = s * per in
  let last = min cfg.blocks (first + per) - 1 in
  (first, last)

let run ?pool ?(materialize = false) cfg rng =
  validate cfg;
  let pool = match pool with Some p -> p | None -> Parallel.Pool.default () in
  if not materialize then
    (* Streaming: each shard generates, tabulates, solves and drops one
       block at a time — peak memory is one block per live shard. *)
    Parallel.Trials.fold pool rng ~trials:cfg.shards ~init:zero_stats
      ~combine:add_stats (fun shard_rng s ->
        let first, last = shard_range cfg s in
        let warm = ref None in
        let acc = ref zero_stats in
        for block = first to last do
          let block_rng = Prob.Rng.split shard_rng in
          let people =
            Synth.census_block block_rng ~block
              ~mean_block_size:cfg.mean_block_size
          in
          let pub = Census.tabulate_block ~block people in
          acc := solve_one cfg ~warm ~people ~pub !acc
        done;
        !acc)
  else begin
    (* Materialized reference path: build the whole population with the
       same per-block generators, tabulate it with the legacy whole-array
       [Census.tabulate], then run the identical solve loop. Stats must
       match streaming byte-for-byte. *)
    let per_shard =
      Parallel.Trials.map pool rng ~trials:cfg.shards (fun shard_rng s ->
          let first, last = shard_range cfg s in
          Array.init
            (max 0 (last - first + 1))
            (fun i ->
              let block_rng = Prob.Rng.split shard_rng in
              Synth.census_block block_rng ~block:(first + i)
                ~mean_block_size:cfg.mean_block_size))
    in
    let population = Array.concat (List.concat_map Array.to_list (Array.to_list per_shard)) in
    let tables = Census.tabulate population in
    let stats = ref zero_stats in
    Array.iteri
      (fun s blocks_of_shard ->
        let first, _ = shard_range cfg s in
        let warm = ref None in
        Array.iteri
          (fun i people ->
            stats :=
              solve_one cfg ~warm ~people ~pub:tables.(first + i) !stats)
          blocks_of_shard)
      per_shard;
    !stats
  end
