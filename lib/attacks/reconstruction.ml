type result = {
  estimate : int array;
  hamming_errors : int;
  agreement : float;
  queries_used : int;
}

let blatant_non_privacy_threshold = 0.95

let agreement a b =
  if Array.length a <> Array.length b then
    invalid_arg "Reconstruction.agreement: length mismatch";
  if Array.length a = 0 then 1.
  else begin
    let same = ref 0 in
    Array.iteri (fun i v -> if v = b.(i) then incr same) a;
    float_of_int !same /. float_of_int (Array.length a)
  end

let c_queries = Obs.Counter.make "attacks.queries"

let finish ~truth ~queries_used estimate =
  Obs.Counter.add c_queries queries_used;
  let hamming_errors =
    let e = ref 0 in
    Array.iteri (fun i v -> if v <> truth.(i) then incr e) estimate;
    !e
  in
  { estimate; hamming_errors; agreement = agreement estimate truth; queries_used }

(* Callers guarantee n <= 16, so masks fit Query.Bitset's shared 16-bit
   popcount table — sizing the subset is one load instead of a bit loop. *)
let mask_to_subset n mask =
  let out = Array.make (Query.Bitset.popcount16 mask) 0 in
  let j = ref 0 in
  for i = 0 to n - 1 do
    if mask land (1 lsl i) <> 0 then begin
      out.(!j) <- i;
      incr j
    end
  done;
  out

let exhaustive oracle ~truth =
  Obs.with_span "attacks.exhaustive" @@ fun () ->
  let n = Query.Oracle.n oracle in
  if n > 16 then invalid_arg "Reconstruction.exhaustive: n > 16";
  let nmasks = 1 lsl n in
  (* Ask all 2^n subset queries. *)
  let answers = Array.make nmasks 0. in
  for mask = 0 to nmasks - 1 do
    answers.(mask) <- Query.Oracle.ask oracle (mask_to_subset n mask)
  done;
  (* Popcount of (candidate AND query-mask) is the candidate's exact answer;
     pick the candidate minimizing the worst violation. The exhaustive
     search popcounts every (candidate AND mask) pair — O(4^n) of them — so
     the 16-bit table load is the kernel's hot instruction. *)
  let popcount = Query.Bitset.popcount16 in
  let best = ref 0 in
  let best_violation = ref infinity in
  for candidate = 0 to nmasks - 1 do
    let worst = ref 0. in
    (try
       for mask = 0 to nmasks - 1 do
         let v =
           Float.abs (float_of_int (popcount (candidate land mask)) -. answers.(mask))
         in
         if v > !worst then worst := v;
         if !worst >= !best_violation then raise Exit
       done
     with Exit -> ());
    if !worst < !best_violation then begin
      best_violation := !worst;
      best := candidate
    end
  done;
  let estimate = Array.init n (fun i -> (!best lsr i) land 1) in
  finish ~truth ~queries_used:nmasks estimate

let random_queries rng ~queries n =
  (* Build each subset directly into a scratch buffer instead of consing an
     intermediate list per query; only the final right-sized copy allocates. *)
  let scratch = Array.make (max n 1) 0 in
  let one () =
    let k = ref 0 in
    for i = 0 to n - 1 do
      if Prob.Rng.bool rng then begin
        scratch.(!k) <- i;
        incr k
      end
    done;
    Array.sub scratch 0 !k
  in
  let out = Array.make queries [||] in
  for q = 0 to queries - 1 do
    out.(q) <- one ()
  done;
  out

let least_squares rng oracle ~queries ~truth =
  Obs.with_span "attacks.least_squares" @@ fun () ->
  let n = Query.Oracle.n oracle in
  let qs = random_queries rng ~queries n in
  let answers = Query.Oracle.ask_many oracle qs in
  (* CSR instead of a dense m×n materialization: the kernels accumulate in
     the same order as the dense loops, so the solution (and the E1 golden)
     is bit-identical — only the memory and the per-iteration work shrink. *)
  let a = Linalg.Sparse.of_subset_queries ~query:qs ~n in
  let z =
    Linalg.Lsq.solve_box_sparse
      ~options:{ Linalg.Lsq.max_iter = 2000; tolerance = 1e-10 }
      a answers ~lo:0. ~hi:1.
  in
  let estimate = Array.map (fun v -> if v >= 0.5 then 1 else 0) z in
  finish ~truth ~queries_used:queries estimate

let lp_decode rng oracle ~queries ~truth =
  Obs.with_span "attacks.lp_decode" @@ fun () ->
  let n = Query.Oracle.n oracle in
  let qs = random_queries rng ~queries n in
  let answers = Query.Oracle.ask_many oracle qs in
  let t = Array.length qs in
  (* Variables: z_0..z_{n-1}, then per query a positive and a negative
     residual p_q, m_q >= 0 with (Az)_q + p_q − m_q = a_q; minimize
     Σ (p_q + m_q) = Σ |residual|. The p_q columns are row-singletons, so
     the solver starts from the feasible basis z = 0, p = a (no phase 1). *)
  let nv = n + (2 * t) in
  let objective = Array.init nv (fun j -> if j >= n then 1. else 0.) in
  (* One accumulator pass, consed in reverse (box rows first), instead of
     two List.init's joined with [@] — same constraint order, no re-cons of
     the residual block. *)
  let constraints =
    let acc = ref [] in
    for i = n - 1 downto 0 do
      let row = Array.make nv 0. in
      row.(i) <- 1.;
      acc := (row, Linalg.Simplex.Le, 1.) :: !acc
    done;
    for qi = t - 1 downto 0 do
      let row = Array.make nv 0. in
      Array.iter (fun i -> row.(i) <- 1.) qs.(qi);
      row.(n + (2 * qi)) <- 1.;
      row.(n + (2 * qi) + 1) <- -1.;
      acc := (row, Linalg.Simplex.Eq, answers.(qi)) :: !acc
    done;
    !acc
  in
  let problem = { Linalg.Simplex.objective; constraints } in
  let estimate =
    match Linalg.Simplex.solve problem with
    | Linalg.Simplex.Optimal { x; _ } ->
      Array.init n (fun i -> if x.(i) >= 0.5 then 1 else 0)
    | Linalg.Simplex.Infeasible | Linalg.Simplex.Unbounded ->
      (* Cannot happen for this formulation (s large enough is always
         feasible, objective bounded by 0) — fall back to all-zeros. *)
      Array.make n 0
  in
  finish ~truth ~queries_used:queries estimate
