(** Reconstruction-abetted re-identification of census tabulations
    (Garfinkel–Abowd–Martindale 2018; Abowd 2019 — the paper's account of
    the 2010 Decennial Census reconstruction, Section 1).

    Pipeline: (1) publish block-level marginal tables from confidential
    microdata; (2) reconstruct block microdata consistent with the tables;
    (3) link the reconstruction to an identified "commercial" database to
    attach names; (4) confirm putative re-identifications against ground
    truth. The absolute rates depend on the synthetic population; the shape
    — most records reconstructed nearly exactly, a large minority of the
    population re-identified, orders of magnitude above the agency's prior
    risk estimate — is the claim being reproduced. *)

(** {1 Publication} *)

type published = {
  block : int;
  total : int;
  age_histogram : (int * int) list;  (** (age, count), exact single years *)
  sex_by_bucket : ((int * int) * int) list;  (** ((sex, age/10), count) *)
  race_eth : ((int * int) * int) list;  (** ((race, ethnicity), count) *)
}

val tabulate : Dataset.Synth.census_person array -> published array
(** One table set per block id (dense from 0 to max block). Single pass over
    the population. *)

val tabulate_block : block:int -> Dataset.Synth.census_person array -> published
(** Tables for one block's members — the streaming unit: generate a block
    with {!Dataset.Synth.census_block}, tabulate it, drop the microdata.
    [tabulate] over a full population yields exactly [tabulate_block] of
    each block's members. *)

val protect : Prob.Rng.t -> epsilon:float -> published array -> published array
(** The post-2010 fix, in miniature: republish every table with two-sided
    geometric noise (ε split across the four table families; noisy counts
    clamped at zero, empty cells dropped, the full value domains noised so
    cell presence itself is protected). The reconstruction pipeline accepts
    the noisy tables unchanged — and E10's ablation shows what happens to
    its accuracy. *)

(** {1 Reconstruction} *)

type record = { r_block : int; r_sex : int; r_age : int; r_race : int; r_eth : int }

val reconstruct : published array -> record array
(** Solve each block: ages are read off the single-year histogram; sexes are
    assigned within each 10-year bucket to match the sex-by-bucket counts;
    (race, ethnicity) pairs are distributed by frequency. Exactly consistent
    with all published tables; errors relative to the truth arise only where
    the tables underdetermine the joint distribution. *)

type reconstruction_eval = {
  records : int;
  exact : int;  (** truth records matched by an unused reconstructed record on all attributes *)
  age_within_one : int;  (** matched allowing age ±1 and free race/ethnicity *)
  exact_rate : float;
  age_within_one_rate : float;
}

val evaluate : truth:Dataset.Synth.census_person array -> record array -> reconstruction_eval

(** {1 Re-identification} *)

type commercial = { c_name : string; c_block : int; c_sex : int; c_age : int }

val commercial_db :
  Prob.Rng.t ->
  Dataset.Synth.census_person array ->
  coverage:float ->
  age_error_rate:float ->
  commercial array
(** An identified database covering a [coverage] fraction of the population,
    with ages off by ±1 for an [age_error_rate] fraction — modelling 2010-era
    commercial data quality. *)

type reid_stats = {
  population : int;
  putative : int;  (** commercial records matched to exactly one reconstructed record *)
  confirmed : int;  (** putative matches agreeing with the confidential truth *)
  putative_rate : float;
  confirmed_rate : float;  (** confirmed / population — the paper's 17%-shaped number *)
}

val reidentify :
  record array ->
  commercial array ->
  truth:Dataset.Synth.census_person array ->
  reid_stats
(** Match each commercial record to reconstructed records in its block with
    equal sex and age within ±1; unique matches become putative
    re-identifications, confirmed against the named person's true record. *)
