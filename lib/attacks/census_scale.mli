(** Census-scale sharded reconstruction.

    The paper's 2010 exhibit reconstructs 308.7M people from block-level
    marginal tables. {!Census} runs that pipeline at block-toy scale; this
    module is the scale-out: a synthetic population of millions of people
    across ~10⁴ blocks is generated, tabulated and solved {e block by
    block} — the full population is never materialized — with the blocks
    sharded over the {!Parallel.Pool} domain pool.

    Per block the attacker solves a constraint system over the 2×100×6×2 =
    2400 joint cells [(sex, age, race, ethnicity)]: 133 rows (total, 100
    single-year ages, 20 sex×decade cells, 12 race×ethnicity cells) whose
    0/1 structure is shared by every block, so one CSR matrix serves the
    whole run. Suppression (counts under a threshold withheld, the
    pre-2010 disclosure-avoidance regime) turns exact rows into interval
    rows; {!Linalg.Intervals} propagation pins most cells outright, the
    pinned columns are eliminated, and the surviving free cells go to the
    warm-started sparse box least-squares solver. Within a shard each
    block warm-starts from its neighbor's relaxed solution, rescaled per
    (race, ethnicity) group to this block's published race×eth row — the
    age×sex shape transfers between blocks, the racial composition does
    not — which cuts projected-gradient iterations; the [census.*] and
    [linalg.lsq_{warm,cold}_iterations] counters expose the effect.

    Determinism: block [b]'s generator is derived by sequential
    {!Prob.Rng.split}s from its shard's generator, and shard results
    combine in shard order, so every statistic is byte-identical at every
    [--jobs] count, and the streaming and materialized paths agree
    exactly. *)

type bound = { b_lo : int; b_hi : int }
(** Inclusive bounds on a published count. *)

type suppressed = {
  s_block : int;
  s_total : int;  (** block totals are always published exactly *)
  s_age : bound array;  (** length 100, indexed by age *)
  s_sex_bucket : bound array;  (** length 20, indexed by [sex*10 + age/10] *)
  s_race_eth : bound array;  (** length 12, indexed by [race*2 + ethnicity] *)
  s_suppressed : int;  (** nonzero cells hidden by the threshold *)
}
(** A block's tables under threshold suppression, as interval constraints. *)

val suppress : threshold:int -> Census.published -> suppressed
(** [suppress ~threshold pub] publishes each cell count [c] as [\[c, c\]]
    when [c ≥ threshold] and as [\[0, threshold − 1\]] otherwise — a true
    zero and a suppressed small count are indistinguishable to the
    attacker. [threshold = 0] publishes everything exactly (absent cells
    as exact zeros). The block total stays exact. *)

val n_cells : int
(** 2400: the joint cell count per block. *)

val cell : sex:int -> age:int -> race:int -> eth:int -> int
(** Index of a joint cell, [0 .. n_cells - 1]. *)

val constraint_matrix : unit -> Linalg.Sparse.t
(** The shared 133×2400 0/1 system relating joint cells to the published
    marginal rows. Built once, reused by every block. *)

type block_solution = {
  counts : int array;  (** length [n_cells]: reconstructed joint cells *)
  relaxed : float array;  (** the pre-rounding LS solution — warm-start seed *)
  iterations : int;  (** projected-gradient iterations spent *)
  converged : bool;
  fixed_cells : int;  (** cells pinned by interval propagation *)
}

val warm_seed : suppressed -> float array -> float array
(** [warm_seed sup relaxed] rakes a neighboring block's relaxed solution
    onto [sup]'s published row targets (iterative proportional fitting:
    three sweeps over the age, sex×decade and race×ethnicity rows plus
    the exact total), producing the [?x0] seed {!run} passes to
    {!solve_block}. The neighbor's joint structure is kept; its marginals
    are replaced by this block's. *)

val solve_block :
  ?x0:float array -> ?shave:bool -> suppressed -> block_solution
(** [solve_block sup] reconstructs one block: interval propagation against
    the row bounds (optionally sharpened by branch-and-bound [?shave]),
    elimination of the pinned cells, warm-started ([?x0], a full
    [n_cells]-length relaxed solution) sparse box least squares on the
    free cells, then per-age-row largest-remainder rounding back to
    integer counts consistent with the published age histogram. *)

type config = {
  blocks : int;
  mean_block_size : int;
  shards : int;  (** fixed fan-out unit — results never depend on [--jobs] *)
  threshold : int;  (** suppression threshold; [0] = exact publication *)
  warm_start : bool;
  shave : bool;
}

type stats = {
  population : int;
  records : int;  (** rows emitted by the reconstruction *)
  solved_blocks : int;
  cells_matched : int;  (** Σ_blocks Σ_cells min(truth, reconstruction) *)
  sex_age_matched : int;  (** same, on the (sex, age) marginal *)
  suppressed_cells : int;
  fixed_cells : int;
  solves : int;
  warm_solves : int;
  iterations : int;
  warm_iterations : int;  (** iterations spent inside warm-started solves *)
  converged_blocks : int;
}

val match_rate : stats -> float
(** [cells_matched / population]. *)

val sex_age_rate : stats -> float

val run :
  ?pool:Parallel.Pool.t -> ?materialize:bool -> config -> Prob.Rng.t -> stats
(** Run the full scenario. Streaming by default: each shard generates,
    tabulates, solves and drops one block at a time, so peak memory is
    independent of the population size. [~materialize:true] instead builds
    the whole population first and tabulates it with {!Census.tabulate} —
    the memory-heavy reference path; its stats are identical to streaming
    (the CI smoke diff checks this byte-for-byte). *)
