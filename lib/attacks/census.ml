module Synth = Dataset.Synth

type published = {
  block : int;
  total : int;
  age_histogram : (int * int) list;
  sex_by_bucket : ((int * int) * int) list;
  race_eth : ((int * int) * int) list;
}

let bump table key =
  Hashtbl.replace table key (1 + Option.value ~default:0 (Hashtbl.find_opt table key))

let sorted_assoc table =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) table [] |> List.sort compare

let tabulate_block ~block members =
  let ages = Hashtbl.create 16
  and sex_bucket = Hashtbl.create 16
  and race_eth = Hashtbl.create 16 in
  Array.iter
    (fun p ->
      bump ages p.Synth.age;
      bump sex_bucket (p.Synth.sex, p.Synth.age / 10);
      bump race_eth (p.Synth.race, p.Synth.ethnicity))
    members;
  {
    block;
    total = Array.length members;
    age_histogram = sorted_assoc ages;
    sex_by_bucket = sorted_assoc sex_bucket;
    race_eth = sorted_assoc race_eth;
  }

let tabulate people =
  let max_block =
    Array.fold_left (fun acc p -> max acc p.Synth.block) (-1) people
  in
  (* Single pass: bucket once instead of rescanning the whole population per
     block (the old O(people × blocks) scan). The tables are pure counts, so
     the output is identical. *)
  let buckets = Array.make (max_block + 1) [] in
  Array.iter (fun p -> buckets.(p.Synth.block) <- p :: buckets.(p.Synth.block)) people;
  Array.mapi
    (fun block members ->
      tabulate_block ~block (Array.of_list (List.rev members)))
    buckets

let protect rng ~epsilon tables =
  if epsilon <= 0. then invalid_arg "Census.protect: epsilon";
  let per_family = epsilon /. 4. in
  let noisy count =
    max 0 (Dp.Geometric.perturb rng ~epsilon:per_family count)
  in
  let noisy_cells ~domain cells =
    List.filter_map
      (fun key ->
        let exact = Option.value ~default:0 (List.assoc_opt key cells) in
        let v = noisy exact in
        if v > 0 then Some (key, v) else None)
      domain
  in
  let age_domain = List.init 100 Fun.id in
  let sex_bucket_domain =
    List.concat_map (fun sex -> List.init 10 (fun b -> (sex, b))) [ 0; 1 ]
  in
  let race_eth_domain =
    List.concat_map (fun race -> [ (race, 0); (race, 1) ]) [ 0; 1; 2; 3; 4; 5 ]
  in
  Array.map
    (fun t ->
      let age_histogram = noisy_cells ~domain:age_domain t.age_histogram in
      {
        t with
        total = List.fold_left (fun acc (_, c) -> acc + c) 0 age_histogram;
        age_histogram;
        sex_by_bucket = noisy_cells ~domain:sex_bucket_domain t.sex_by_bucket;
        race_eth = noisy_cells ~domain:race_eth_domain t.race_eth;
      })
    tables

type record = { r_block : int; r_sex : int; r_age : int; r_race : int; r_eth : int }

let reconstruct tables =
  let out = ref [] in
  Array.iter
    (fun t ->
      (* Ages, exactly, sorted ascending. *)
      let ages =
        List.concat_map (fun (age, c) -> List.init c (fun _ -> age)) t.age_histogram
      in
      (* Within each decade bucket, hand out the published number of males to
         the oldest ages first (an arbitrary but table-consistent rule). *)
      let males_in_bucket = Hashtbl.create 16 in
      List.iter
        (fun ((sex, bucket), c) ->
          if sex = 1 then Hashtbl.replace males_in_bucket bucket c)
        t.sex_by_bucket;
      let with_sex =
        List.rev ages
        |> List.map (fun age ->
               let bucket = age / 10 in
               let males =
                 Option.value ~default:0 (Hashtbl.find_opt males_in_bucket bucket)
               in
               if males > 0 then begin
                 Hashtbl.replace males_in_bucket bucket (males - 1);
                 (age, 1)
               end
               else (age, 0))
      in
      (* Distribute (race, ethnicity) pairs most-common-first. Published
         tables may be inconsistent (noisy variants): pad with the modal
         pair or truncate so the zip below always succeeds. *)
      let pairs =
        List.sort (fun (_, a) (_, b) -> Int.compare b a) t.race_eth
        |> List.concat_map (fun ((race, eth), c) ->
               List.init (max 0 c) (fun _ -> (race, eth)))
      in
      let modal = match pairs with p :: _ -> p | [] -> (0, 0) in
      let rec zip people pairs =
        match (people, pairs) with
        | [], _ -> ()
        | (age, sex) :: rest, [] ->
          out :=
            {
              r_block = t.block;
              r_sex = sex;
              r_age = age;
              r_race = fst modal;
              r_eth = snd modal;
            }
            :: !out;
          zip rest []
        | (age, sex) :: rest, (race, eth) :: prest ->
          out :=
            { r_block = t.block; r_sex = sex; r_age = age; r_race = race; r_eth = eth }
            :: !out;
          zip rest prest
      in
      zip with_sex pairs)
    tables;
  Array.of_list (List.rev !out)

type reconstruction_eval = {
  records : int;
  exact : int;
  age_within_one : int;
  exact_rate : float;
  age_within_one_rate : float;
}

let evaluate ~truth records =
  (* Per block, greedily match truth records to unused reconstructions. *)
  let by_block : (int, record list ref) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun r ->
      match Hashtbl.find_opt by_block r.r_block with
      | Some l -> l := r :: !l
      | None -> Hashtbl.replace by_block r.r_block (ref [ r ]))
    records;
  let take block pred =
    match Hashtbl.find_opt by_block block with
    | None -> false
    | Some l -> (
      let rec remove acc = function
        | [] -> None
        | r :: rest when pred r -> Some (List.rev_append acc rest)
        | r :: rest -> remove (r :: acc) rest
      in
      match remove [] !l with
      | Some rest ->
        l := rest;
        true
      | None -> false)
  in
  let snapshot () =
    Hashtbl.fold (fun k l acc -> (k, !l) :: acc) by_block []
  in
  let restore saved =
    List.iter (fun (k, l) -> Hashtbl.replace by_block k (ref l)) saved
  in
  let count pred =
    let saved = snapshot () in
    let n =
      Array.fold_left
        (fun acc (p : Synth.census_person) ->
          if take p.Synth.block (pred p) then acc + 1 else acc)
        0 truth
    in
    restore saved;
    n
  in
  let exact =
    count (fun p r ->
        r.r_sex = p.Synth.sex && r.r_age = p.Synth.age && r.r_race = p.Synth.race
        && r.r_eth = p.Synth.ethnicity)
  in
  let age_within_one =
    count (fun p r -> r.r_sex = p.Synth.sex && abs (r.r_age - p.Synth.age) <= 1)
  in
  let n = Array.length truth in
  {
    records = Array.length records;
    exact;
    age_within_one;
    exact_rate = (if n = 0 then 0. else float_of_int exact /. float_of_int n);
    age_within_one_rate =
      (if n = 0 then 0. else float_of_int age_within_one /. float_of_int n);
  }

type commercial = { c_name : string; c_block : int; c_sex : int; c_age : int }

let commercial_db rng people ~coverage ~age_error_rate =
  if coverage < 0. || coverage > 1. then invalid_arg "Census.commercial_db: coverage";
  Array.to_list people
  |> List.filter (fun _ -> Prob.Sampler.bernoulli rng ~p:coverage)
  |> List.map (fun (p : Synth.census_person) ->
         let age =
           if Prob.Sampler.bernoulli rng ~p:age_error_rate then
             max 0 (p.Synth.age + if Prob.Rng.bool rng then 1 else -1)
           else p.Synth.age
         in
         { c_name = p.Synth.person_name; c_block = p.Synth.block; c_sex = p.Synth.sex; c_age = age })
  |> Array.of_list

type reid_stats = {
  population : int;
  putative : int;
  confirmed : int;
  putative_rate : float;
  confirmed_rate : float;
}

let reidentify records commercial ~truth =
  let by_name = Hashtbl.create (Array.length truth) in
  Array.iter (fun (p : Synth.census_person) -> Hashtbl.replace by_name p.Synth.person_name p) truth;
  let putative = ref 0 and confirmed = ref 0 in
  Array.iter
    (fun c ->
      let matches =
        Array.to_list records
        |> List.filter (fun r ->
               r.r_block = c.c_block && r.r_sex = c.c_sex
               && abs (r.r_age - c.c_age) <= 1)
      in
      match matches with
      | [ r ] -> (
        incr putative;
        match Hashtbl.find_opt by_name c.c_name with
        | Some p
          when p.Synth.block = r.r_block && p.Synth.sex = r.r_sex
               && abs (p.Synth.age - r.r_age) <= 1
               && p.Synth.race = r.r_race ->
          incr confirmed
        | Some _ | None -> ())
      | _ -> ())
    commercial;
  let n = Array.length truth in
  {
    population = n;
    putative = !putative;
    confirmed = !confirmed;
    putative_rate = (if n = 0 then 0. else float_of_int !putative /. float_of_int n);
    confirmed_rate = (if n = 0 then 0. else float_of_int !confirmed /. float_of_int n);
  }
