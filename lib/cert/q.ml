exception Overflow

(* Checked native-integer arithmetic. The checker's verdicts are exact
   statements about integers, so a silent wrap-around would be a soundness
   bug; any overflow raises instead, and callers treat an unverifiable
   certificate as rejected. *)

let add_exn a b =
  let s = a + b in
  if (a >= 0 && b >= 0 && s < 0) || (a < 0 && b < 0 && s >= 0) then
    raise Overflow
  else s

let mul_exn a b =
  if a = 0 || b = 0 then 0
  else
    let p = a * b in
    if a = min_int || b = min_int || p / b <> a then raise Overflow else p

let neg_exn a = if a = min_int then raise Overflow else -a

type t = { num : int; den : int }

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let make num den =
  if den = 0 then invalid_arg "Q.make: zero denominator";
  let num, den = if den < 0 then (neg_exn num, neg_exn den) else (num, den) in
  if num = 0 then { num = 0; den = 1 }
  else
    let g = gcd (abs num) den in
    { num = num / g; den = den / g }

let zero = { num = 0; den = 1 }
let one = { num = 1; den = 1 }
let of_int n = { num = n; den = 1 }
let num t = t.num
let den t = t.den

let add a b =
  make (add_exn (mul_exn a.num b.den) (mul_exn b.num a.den)) (mul_exn a.den b.den)

let neg a = { a with num = neg_exn a.num }
let sub a b = add a (neg b)
let mul a b = make (mul_exn a.num b.num) (mul_exn a.den b.den)

let div a b =
  if b.num = 0 then raise Division_by_zero;
  make (mul_exn a.num b.den) (mul_exn a.den b.num)

let compare a b = Int.compare (mul_exn a.num b.den) (mul_exn b.num a.den)
let equal a b = compare a b = 0
let leq a b = compare a b <= 0
let lt a b = compare a b < 0
let sign a = Int.compare a.num 0

let to_string t =
  if t.den = 1 then string_of_int t.num
  else Printf.sprintf "%d/%d" t.num t.den
