type counterexample = {
  output : int;
  direction : Witness.direction;
  p_src : Q.t;
  p_dst : Q.t;
}

type outcome =
  | Certified of Witness.t * Witness.t
  | Refuted of counterexample
  | No_witness of string

let refute (m : Model.t) =
  let dist_a = Model.output_dist m A and dist_b = Model.output_dist m B in
  let violation direction p_src p_dst output =
    if Q.lt (Q.mul m.bound p_dst) p_src then
      Some { output; direction; p_src; p_dst }
    else None
  in
  let rec scan o =
    if o >= m.outputs then None
    else
      match violation Witness.A_to_b dist_a.(o) dist_b.(o) o with
      | Some c -> Some c
      | None -> (
        match violation Witness.B_to_a dist_b.(o) dist_a.(o) o with
        | Some c -> Some c
        | None -> scan (o + 1))
  in
  scan 0

let align (m : Model.t) direction =
  let src, dst =
    match direction with
    | Witness.A_to_b -> (Model.A, Model.B)
    | Witness.B_to_a -> (Model.B, Model.A)
  in
  let mass_src = Model.mass m src and mass_dst = Model.mass m dst in
  let out_src = Model.out m src and out_dst = Model.out m dst in
  let ok source target =
    out_src.(source) = out_dst.(target)
    && Q.leq mass_src.(source) (Q.mul m.bound mass_dst.(target))
  in
  (* Kuhn's augmenting paths over the support atoms. matched.(t) is the
     source currently aligned to destination atom t, or -1. *)
  let matched = Array.make m.atoms (-1) in
  let visited = Array.make m.atoms false in
  let rec augment source target =
    if target >= m.atoms then false
    else if (not visited.(target)) && ok source target then begin
      visited.(target) <- true;
      if matched.(target) < 0 || try_from matched.(target) then begin
        matched.(target) <- source;
        true
      end
      else augment source (target + 1)
    end
    else augment source (target + 1)
  and try_from source = augment source 0 in
  let complete = ref true in
  for source = 0 to m.atoms - 1 do
    if !complete && Q.sign mass_src.(source) > 0 then begin
      Array.fill visited 0 m.atoms false;
      if not (try_from source) then complete := false
    end
  done;
  if not !complete then None
  else begin
    let map = Array.init m.atoms (fun i -> i) in
    Array.iteri (fun target source -> if source >= 0 then map.(source) <- target) matched;
    Some { Witness.direction; map }
  end

let direction_name = function
  | Witness.A_to_b -> "A against B"
  | Witness.B_to_a -> "B against A"

let certify m =
  match refute m with
  | Some c -> Refuted c
  | None -> (
    match (align m Witness.A_to_b, align m Witness.B_to_a) with
    | Some w_ab, Some w_ba -> (
      (* The matching is untrusted; only the exhaustive checker's verdict
         counts. *)
      match Witness.check_pair m w_ab w_ba with
      | Ok () -> Certified (w_ab, w_ba)
      | Error fs ->
        No_witness
          (Format.asprintf "search produced an invalid witness: %a"
             Witness.pp_failure (List.hd fs)))
    | None, _ -> No_witness ("no injective alignment of " ^ direction_name Witness.A_to_b)
    | _, None -> No_witness ("no injective alignment of " ^ direction_name Witness.B_to_a))

let pp_counterexample ~label fmt c =
  let src, dst =
    match c.direction with A_to_b -> ("A", "B") | B_to_a -> ("B", "A")
  in
  Format.fprintf fmt "Pr[%s -> %s] = %s > bound * Pr[%s -> %s] = bound * %s"
    src (label c.output) (Q.to_string c.p_src) dst (label c.output)
    (Q.to_string c.p_dst)
