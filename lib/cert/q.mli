(** Exact rational arithmetic for the certificate checker's trusted core.

    Every quantity the checker reasons about — noise-atom masses, the
    claimed privacy-loss bound [e^ε], output-event probabilities — is a
    rational number represented exactly as a reduced fraction of OCaml
    native integers. No floating point enters any comparison: a
    certificate verdict is a statement about integers.

    Overflow is a soundness hazard, not a performance concern, so every
    integer operation is checked: any intermediate that would exceed the
    native range raises {!Overflow}, and the checker treats that as a
    verification {e failure} (a certificate that cannot be checked exactly
    is rejected, never waved through). The finite restrictions shipped in
    {!Catalog} keep all intermediates far below the 63-bit limit. *)

type t
(** A rational, always reduced, denominator always positive. *)

exception Overflow
(** Raised when an exact operation would exceed native-integer range. *)

val zero : t

val one : t

val of_int : int -> t

val make : int -> int -> t
(** [make num den] is [num/den] reduced. Raises [Invalid_argument] if
    [den = 0]. *)

val num : t -> int

val den : t -> int
(** Always positive. *)

val add : t -> t -> t

val sub : t -> t -> t

val mul : t -> t -> t

val div : t -> t -> t
(** Raises [Division_by_zero] on a zero divisor. *)

val neg : t -> t

val compare : t -> t -> int
(** Exact comparison by checked cross-multiplication. *)

val equal : t -> t -> bool

val leq : t -> t -> bool

val lt : t -> t -> bool

val sign : t -> int
(** [-1], [0] or [1]. *)

val to_string : t -> string
(** ["num/den"], or just ["num"] when the denominator is 1. Never a
    float rendering. *)
