(** Randomness-alignment certificates and their trusted checker.

    A certificate for one direction of the ε-DP inequality is an
    alignment φ of the source side's noise atoms into the destination
    side's: for Pr[M(A) = o] ≤ Λ·Pr[M(B) = o] the witness maps each atom
    ω that A can draw to an atom φ(ω) that B can draw, such that

    - φ is {e injective} on A's support,
    - φ is {e class-preserving}: running A on ω and B on φ(ω) produce the
      same output event, and
    - the {e mass bound} holds atomwise: mass_A(ω) ≤ Λ·mass_B(φ(ω)).

    Summing the mass bound over each output event's fiber (injectivity
    makes the right-hand sides distinct atoms of B) yields the ε-DP
    inequality for every event — so {!check_pair} succeeding on both
    directions is a complete, finite proof that the model satisfies ε-DP
    at its claimed bound. This module is the {e trusted core}: three
    first-order conditions verified by exhaustive enumeration with exact
    rational arithmetic ({!Q}), no floats, no sampling. Everything else
    (search, catalogs, CLIs) only {e produces} witnesses for it. *)

type direction = A_to_b | B_to_a

type t = {
  direction : direction;
  map : int array;
      (** [map.(ω)] = the destination atom aligned with source atom [ω];
          length must equal the model's atom count. Entries for zero-mass
          source atoms must still be in range but are otherwise
          unconstrained. *)
}

type failure =
  | Bad_shape of string  (** wrong map length or claimed directions *)
  | Target_out_of_range of { source : int; target : int }
  | Not_injective of { source1 : int; source2 : int; target : int }
      (** two support atoms aligned to the same destination atom *)
  | Class_mismatch of { source : int; target : int; out_src : int; out_dst : int }
      (** the aligned runs disagree on the output event *)
  | Mass_exceeded of { source : int; target : int; ratio : string }
      (** [mass_src(source) > Λ·mass_dst(target)]; [ratio] renders the
          exact violating ratio *)
  | Unverifiable of string
      (** exact arithmetic overflowed — the certificate is rejected, never
          assumed *)

val check : Model.t -> t -> (unit, failure list) result
(** Verify one direction exhaustively. Returns every failure found, in
    atom order. *)

val check_pair : Model.t -> t -> t -> (unit, failure list) result
(** Verify a full certificate: the first witness must be {!A_to_b}, the
    second {!B_to_a}, and both must check. Success means the model is
    ε-DP at its claimed bound — exactly. *)

val pp_failure : Format.formatter -> failure -> unit
