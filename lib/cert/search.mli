(** Certificate search and exact refutation — untrusted producers for the
    {!Witness} checker.

    {!align} looks for an alignment by bipartite maximum matching inside
    each output class: source atom ω may align to destination atom t iff
    they induce the same output event and the atomwise mass bound
    [mass_src(ω) ≤ Λ·mass_dst(t)] holds. Kuhn's augmenting-path matching
    is {e complete} here (König/Hall): if any valid injective alignment
    exists for the model, the search finds one — so a search failure on a
    negative control is meaningful, not a heuristic giving up.

    {!refute} is stronger than a failed search when it applies: it
    computes both exact output distributions and exhibits an output event
    whose probability ratio exceeds the claimed bound — a machine-checked
    counterexample to the ε-DP inequality itself (search failure alone
    leaves open that the mechanism is private but not alignment-provable
    at atom granularity).

    Nothing here is trusted: whatever {!align} returns is re-verified by
    {!Witness.check} before a model is ever reported as certified. *)

type counterexample = {
  output : int;
  direction : Witness.direction;
      (** [A_to_b] means [Pr[A = output] > Λ·Pr[B = output]] *)
  p_src : Q.t;
  p_dst : Q.t;
}

type outcome =
  | Certified of Witness.t * Witness.t
      (** both directions found by search AND re-verified by the trusted
          checker *)
  | Refuted of counterexample
      (** exact pointwise violation of the claimed bound *)
  | No_witness of string
      (** no violation found, but no injective alignment exists at the
          claimed bound in the stated direction *)

val refute : Model.t -> counterexample option
(** The first output event (lowest index, [A_to_b] direction first) whose
    exact probability ratio exceeds the claimed bound, if any. *)

val align : Model.t -> Witness.direction -> Witness.t option
(** Complete matching search for one direction. Zero-mass source atoms
    are aligned to themselves (their entries are unconstrained beyond
    range). *)

val certify : Model.t -> outcome
(** [refute] first; otherwise [align] both directions and re-check the
    found pair with {!Witness.check_pair}. *)

val pp_counterexample :
  label:(int -> string) -> Format.formatter -> counterexample -> unit
