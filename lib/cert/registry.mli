(** Verdicts over the whole certificate catalog, the stable verdict
    table behind [pso_audit certify], and the tampered-certificate
    suite.

    A row is {e ok} when the entry met its expectation: a production
    mechanism verified CERTIFIED, a negative control REJECTED (refuted
    by the exact output-distribution check, or shown to admit no
    injective alignment by the complete search). The rendered table is
    deterministic text — no floats, no randomness, no parallelism — so
    it is registered as a golden snapshot alongside the experiment
    tables. *)

type verdict =
  | Certified of Witness.t * Witness.t
      (** checker-verified alignment pair; for handwritten entries the
          shipped pair, for derived entries the one the search found *)
  | Refuted of Search.counterexample
      (** exact pointwise violation of the claimed bound *)
  | No_alignment of string
      (** complete search exhausted without an injective alignment *)
  | Invalid_witness of Witness.failure list
      (** a handwritten witness failed the checker *)

type row = { entry : Catalog.entry; verdict : verdict }

val verify : Catalog.entry -> verdict

val verify_all : unit -> row list
(** {!Catalog.all} in catalog order. *)

val row_ok : row -> bool
(** The verdict matches the entry's expectation ([negative] rejected,
    production certified). *)

val all_ok : row list -> bool

val render_table : row list -> string
(** The [pso_audit certify] verdict table, byte-stable. *)

(** {1 Tamper suite}

    Each tamper takes a verified certificate of a production entry and
    corrupts it in a way that is invalid {e by construction} (alignment
    into a different output class, two support atoms collided onto one
    target, an out-of-range target); the checker must reject every one.
    Exercised by tests and by the CI smoke step. *)

type tamper_result = {
  entry_name : string;
  tamper : string;  (** which corruption was applied *)
  rejected : bool;  (** the checker refused the tampered witness *)
}

val tamper_suite : unit -> tamper_result list
(** All applicable tampers across the certified production entries;
    every [rejected] must be [true]. *)
