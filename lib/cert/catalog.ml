module F = Dp.Finite

type witness_source =
  | Handwritten of Witness.t * Witness.t
  | Derived

type entry = {
  name : string;
  spec : F.spec;
  model : Model.t;
  witness : witness_source;
  negative : bool;
  note : string;
}

let entry ?(negative = false) ~witness ~note spec =
  {
    name = spec.F.name;
    spec;
    model = Model.of_spec_exn spec;
    witness;
    negative;
    note;
  }

(* The shift coupling for a cyclic counting pair: A's outputs sit one
   step ahead of B's, so aligning atom i with i+1 (mod m) preserves the
   output event, and the cyclic wrap keeps every mass ratio within
   den/num. The reverse direction shifts back. *)
let shift_pair atoms =
  ( { Witness.direction = A_to_b; map = Array.init atoms (fun i -> (i + 1) mod atoms) },
    { Witness.direction = B_to_a; map = Array.init atoms (fun i -> (i - 1 + atoms) mod atoms) } )

let identity_pair atoms =
  ( { Witness.direction = A_to_b; map = Array.init atoms (fun i -> i) },
    { Witness.direction = B_to_a; map = Array.init atoms (fun i -> i) } )

(* Randomized response: the neighbors hold opposite bits, so aligning
   truth-telling with lying (and vice versa) matches the outputs; the
   mass ratio is exactly lambda = e^eps. *)
let swap_pair =
  ( { Witness.direction = A_to_b; map = [| 1; 0 |] },
    { Witness.direction = B_to_a; map = [| 1; 0 |] } )

(* Histogram: only cell 0's coordinate shifts, so the alignment shifts
   that coordinate and fixes the rest. Atom encoding is cell-0-major. *)
let histogram_pair_witness spec =
  let mc = 5 in
  let block = spec.F.atoms / mc in
  let shift delta i =
    let d0 = i / block and rest = i mod block in
    (((d0 + delta + mc) mod mc) * block) + rest
  in
  ( { Witness.direction = A_to_b; map = Array.init spec.F.atoms (shift 1) },
    { Witness.direction = B_to_a; map = Array.init spec.F.atoms (shift (-1)) } )

(* Sparse vector: the extra record moves every query by +1, so shifting
   the threshold noise rho (the most-significant atom coordinate) down by
   one realigns every query position exactly, preserving the whole
   transcript. *)
let sparse_vector_witness spec =
  let m = 7 in
  let block = spec.F.atoms / m in
  let shift delta i =
    let rho = i / block and rest = i mod block in
    (((rho + delta + m) mod m) * block) + rest
  in
  ( { Witness.direction = A_to_b; map = Array.init spec.F.atoms (shift (-1)) },
    { Witness.direction = B_to_a; map = Array.init spec.F.atoms (shift 1) } )

let production () =
  let counting spec note =
    let w_ab, w_ba = shift_pair spec.F.atoms in
    entry ~witness:(Handwritten (w_ab, w_ba)) ~note spec
  in
  let identity spec note =
    let w_ab, w_ba = identity_pair spec.F.atoms in
    entry ~witness:(Handwritten (w_ab, w_ba)) ~note spec
  in
  let histogram =
    let spec = F.histogram_pair () in
    let w_ab, w_ba = histogram_pair_witness spec in
    entry ~witness:(Handwritten (w_ab, w_ba))
      ~note:"3 cells x cyclic geometric alpha 1/2 span 2; record in cell 0" spec
  in
  [
    counting (F.laplace_pair ())
      "cyclic geometric alpha 1/2 span 6 (discretized Laplace count)";
    counting (F.geometric_pair ())
      "cyclic geometric alpha 1/3 span 5";
    (let w_ab, w_ba = swap_pair in
     entry
       ~witness:(Handwritten (w_ab, w_ba))
       ~note:"two atoms, truth weight 3 vs lie weight 1, opposite true bits"
       (F.randomized_response_spec ()));
    histogram;
    entry ~witness:Derived
      ~note:"2-candidate difference model, cyclic geometric alpha 1/2 span 4"
      (F.noisy_max_pair ());
    (let spec = F.sparse_vector_pair () in
     let w_ab, w_ba = sparse_vector_witness spec in
     entry
       ~witness:(Handwritten (w_ab, w_ba))
       ~note:"AboveThreshold transcript, 3 queries, threshold-shift alignment"
       spec);
    identity (F.exponential_spec ())
      "weights 2^u, sensitivity-1 utilities, identity alignment";
    identity (F.subsample_pair ())
      "q=1/2 subsampling of cyclic geometric alpha 1/2 span 4, keep-bit marginalized";
  ]

(* Negative controls: the weights realize each defect's ACTUAL privacy
   loss while the entry claims the bound of the advertised eps, so the
   complete search (or the exact refuter) must reject every one. *)
let control_spec (c : Stattest.Controls.spec) =
  match c.kind with
  | Stattest.Controls.Laplace_half_scale ->
    F.counting_pair ~name:c.name ~alpha:(1, 4) ~span:4 ~bound:(2, 1)
      ~epsilon_label:"claims eps = ln 2, delivers 2 ln 2"
  | Stattest.Controls.Geometric_triple_epsilon ->
    F.counting_pair ~name:c.name ~alpha:(1, 8) ~span:3 ~bound:(2, 1)
      ~epsilon_label:"claims eps = ln 2, delivers 3 ln 2"
  | Stattest.Controls.Exponential_missing_half ->
    F.exponential_pair ~name:c.name ~base:4 ~utilities_a:[| 0; 1; 2; 3 |]
      ~utilities_b:[| 1; 0; 1; 2 |] ~bound:(4, 1)
      ~epsilon_label:"claims eps = 2 ln 2, weights use e^eps not e^(eps/2)"
  | Stattest.Controls.Randomized_response_double_epsilon ->
    F.randomized_response_pair ~name:c.name ~lambda:9 ~bound:(3, 1)
      ~epsilon_label:"claims eps = ln 3, delivers 2 ln 3"

let controls () =
  List.map
    (fun (c : Stattest.Controls.spec) ->
      entry ~negative:true ~witness:Derived ~note:c.summary (control_spec c))
    Stattest.Controls.all

let all () = production () @ controls ()

let find name =
  let name = String.lowercase_ascii name in
  List.find_opt (fun e -> String.lowercase_ascii e.name = name) (all ())
