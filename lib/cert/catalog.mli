(** The registered certificates: every production mechanism's finite
    restriction with its witness source, plus the four shared negative
    controls from {!Stattest.Controls} with deliberately false claims.

    Production entries either carry a {e handwritten} witness pair (the
    explicit shift coupling, stated in code so a reader can audit the
    proof idea) or are marked {e derived}, meaning the complete matching
    search produces the witness at verification time. Either way the
    trusted checker has the last word. Negative entries are always
    derived: the point is that the complete search must {e fail} (or the
    exact refuter must exhibit a violating event) on each of them. *)

type witness_source =
  | Handwritten of Witness.t * Witness.t
      (** explicit alignment pair, [A_to_b] then [B_to_a] *)
  | Derived  (** produced by {!Search.certify} at verification time *)

type entry = {
  name : string;
  spec : Dp.Finite.spec;
  model : Model.t;
  witness : witness_source;
  negative : bool;
      (** negative control: verification must {e reject} this entry *)
  note : string;  (** one-line description of the finite restriction *)
}

val production : unit -> entry list
(** The 8 mechanisms of the standard audit battery: laplace, geometric,
    randomized_response, histogram, noisy_max, sparse_vector, exponential,
    subsample. *)

val controls : unit -> entry list
(** One entry per {!Stattest.Controls.spec}, claiming the bound of the
    {e claimed} ε while the weights realize the defect's actual ε. *)

val all : unit -> entry list
(** [production () @ controls ()]. *)

val find : string -> entry option
