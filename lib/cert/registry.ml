type verdict =
  | Certified of Witness.t * Witness.t
  | Refuted of Search.counterexample
  | No_alignment of string
  | Invalid_witness of Witness.failure list

type row = { entry : Catalog.entry; verdict : verdict }

let verify (e : Catalog.entry) =
  match e.witness with
  | Catalog.Handwritten (w_ab, w_ba) -> (
    match Witness.check_pair e.model w_ab w_ba with
    | Ok () -> Certified (w_ab, w_ba)
    | Error fs -> Invalid_witness fs)
  | Catalog.Derived -> (
    match Search.certify e.model with
    | Search.Certified (w_ab, w_ba) -> Certified (w_ab, w_ba)
    | Search.Refuted c -> Refuted c
    | Search.No_witness reason -> No_alignment reason)

let verify_all () =
  List.map (fun entry -> { entry; verdict = verify entry }) (Catalog.all ())

let row_ok { entry; verdict } =
  match verdict with
  | Certified _ -> not entry.negative
  | Refuted _ | No_alignment _ -> entry.negative
  | Invalid_witness _ -> false

let all_ok rows = List.for_all row_ok rows

let verdict_text { entry; verdict } =
  match verdict with
  | Certified _ ->
    let provenance =
      match entry.witness with
      | Catalog.Handwritten _ -> "handwritten alignment"
      | Catalog.Derived -> "search-derived alignment"
    in
    Printf.sprintf "CERTIFIED  %s verified both directions" provenance
  | Refuted c ->
    Format.asprintf "REJECTED   refuted: %a"
      (Search.pp_counterexample ~label:entry.spec.Dp.Finite.out_label)
      c
  | No_alignment reason -> Printf.sprintf "REJECTED   %s" reason
  | Invalid_witness fs ->
    Format.asprintf "INVALID    %a" Witness.pp_failure (List.hd fs)

let render_table rows =
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "machine-checked eps-DP certificates (randomness alignment, exact rationals)\n";
  add "%-28s %-11s %6s %6s  %-11s %s\n" "mechanism" "kind" "e^eps" "atoms"
    "expectation" "verdict";
  List.iter
    (fun ({ entry; _ } as row) ->
      add "%-28s %-11s %6s %6d  %-11s %s%s\n" entry.Catalog.name
        (if entry.negative then "control" else "production")
        (Q.to_string entry.model.Model.bound)
        entry.model.Model.atoms
        (if entry.negative then "reject" else "certify")
        (verdict_text row)
        (if row_ok row then "" else "  [UNEXPECTED]"))
    rows;
  let certified =
    List.length
      (List.filter
         (fun r -> (not r.entry.Catalog.negative) && row_ok r)
         rows)
  in
  let production =
    List.length (List.filter (fun r -> not r.entry.Catalog.negative) rows)
  in
  let rejected =
    List.length
      (List.filter (fun r -> r.entry.Catalog.negative && row_ok r) rows)
  in
  let controls =
    List.length (List.filter (fun r -> r.entry.Catalog.negative) rows)
  in
  add "%d/%d production mechanisms certified; %d/%d negative controls rejected -> %s\n"
    certified production rejected controls
    (if all_ok rows then "OK" else "FAIL");
  Buffer.contents buf

(* --- Tamper suite ---------------------------------------------------- *)

let first_support mass =
  let rec go i = if Q.sign mass.(i) > 0 then i else go (i + 1) in
  go 0

(* A target whose destination output class differs from the source's —
   guaranteed to exist because no model here has a constant output map. *)
let class_mismatch_target (m : Model.t) source =
  let out_src = (Model.out m A).(source) in
  let out_dst = Model.out m B in
  let rec go t =
    if t >= m.atoms then None
    else if out_dst.(t) <> out_src then Some t
    else go (t + 1)
  in
  go 0

let tampers (m : Model.t) (w_ab : Witness.t) =
  let mass = Model.mass m A in
  let i = first_support mass in
  let with_map f =
    let map = Array.copy w_ab.map in
    f map;
    { Witness.direction = Witness.A_to_b; map }
  in
  let shifted =
    match class_mismatch_target m i with
    | Some t -> [ ("shifted-target", with_map (fun map -> map.(i) <- t)) ]
    | None -> []
  in
  let collided =
    (* Collide a second support atom onto the first one's target. *)
    let rec next j =
      if j >= m.atoms then None
      else if j <> i && Q.sign mass.(j) > 0 then Some j
      else next (j + 1)
    in
    match next 0 with
    | Some j ->
      [ ("collided-targets", with_map (fun map -> map.(j) <- w_ab.map.(i))) ]
    | None -> []
  in
  let out_of_range =
    [ ("out-of-range-target", with_map (fun map -> map.(i) <- m.atoms)) ]
  in
  shifted @ collided @ out_of_range

type tamper_result = { entry_name : string; tamper : string; rejected : bool }

let tamper_suite () =
  List.concat_map
    (fun (e : Catalog.entry) ->
      match verify e with
      | Certified (w_ab, _) ->
        List.map
          (fun (tamper, bad) ->
            {
              entry_name = e.name;
              tamper;
              rejected = Result.is_error (Witness.check e.model bad);
            })
          (tampers e.model w_ab)
      | _ -> [])
    (Catalog.production ())
