type direction = A_to_b | B_to_a

type t = { direction : direction; map : int array }

type failure =
  | Bad_shape of string
  | Target_out_of_range of { source : int; target : int }
  | Not_injective of { source1 : int; source2 : int; target : int }
  | Class_mismatch of { source : int; target : int; out_src : int; out_dst : int }
  | Mass_exceeded of { source : int; target : int; ratio : string }
  | Unverifiable of string

let sides = function
  | A_to_b -> (Model.A, Model.B)
  | B_to_a -> (Model.B, Model.A)

let check (m : Model.t) (w : t) =
  let src, dst = sides w.direction in
  let mass_src = Model.mass m src and mass_dst = Model.mass m dst in
  let out_src = Model.out m src and out_dst = Model.out m dst in
  let failures = ref [] in
  let fail f = failures := f :: !failures in
  if Array.length w.map <> m.atoms then
    Error [ Bad_shape (Printf.sprintf "map length %d, expected %d atoms"
                         (Array.length w.map) m.atoms) ]
  else begin
    (* taken.(t) = the support atom already aligned to destination atom t,
       for the injectivity check. *)
    let taken = Array.make m.atoms (-1) in
    for source = 0 to m.atoms - 1 do
      let target = w.map.(source) in
      if target < 0 || target >= m.atoms then
        fail (Target_out_of_range { source; target })
      else if Q.sign mass_src.(source) > 0 then begin
        if taken.(target) >= 0 then
          fail (Not_injective { source1 = taken.(target); source2 = source; target })
        else taken.(target) <- source;
        let os = out_src.(source) and od = out_dst.(target) in
        if os <> od then
          fail (Class_mismatch { source; target; out_src = os; out_dst = od });
        (try
           if Q.lt (Q.mul m.bound mass_dst.(target)) mass_src.(source) then
             let ratio =
               if Q.sign mass_dst.(target) = 0 then "inf"
               else Q.to_string (Q.div mass_src.(source) mass_dst.(target))
             in
             fail (Mass_exceeded { source; target; ratio })
         with Q.Overflow ->
           fail (Unverifiable
                   (Printf.sprintf "overflow checking mass bound at atom %d" source)))
      end
    done;
    match List.rev !failures with [] -> Ok () | fs -> Error fs
  end

let check_pair m w_ab w_ba =
  match (w_ab.direction, w_ba.direction) with
  | A_to_b, B_to_a -> (
    match (check m w_ab, check m w_ba) with
    | Ok (), Ok () -> Ok ()
    | r1, r2 ->
      let errs = function Ok () -> [] | Error fs -> fs in
      Error (errs r1 @ errs r2))
  | _ -> Error [ Bad_shape "check_pair expects directions A_to_b then B_to_a" ]

let pp_failure fmt = function
  | Bad_shape msg -> Format.fprintf fmt "malformed witness: %s" msg
  | Target_out_of_range { source; target } ->
    Format.fprintf fmt "atom %d aligned to out-of-range atom %d" source target
  | Not_injective { source1; source2; target } ->
    Format.fprintf fmt "atoms %d and %d both aligned to atom %d" source1
      source2 target
  | Class_mismatch { source; target; out_src; out_dst } ->
    Format.fprintf fmt
      "atom %d -> %d changes the output event (%d vs %d)" source target
      out_src out_dst
  | Mass_exceeded { source; target; ratio } ->
    Format.fprintf fmt
      "atom %d -> %d violates the mass bound (ratio %s exceeds the claim)"
      source target ratio
  | Unverifiable msg -> Format.fprintf fmt "unverifiable: %s" msg
