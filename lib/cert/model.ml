type side = A | B

type t = {
  name : string;
  atoms : int;
  outputs : int;
  mass_a : Q.t array;
  mass_b : Q.t array;
  out_a : int array;
  out_b : int array;
  bound : Q.t;
  epsilon_label : string;
  out_label : int -> string;
}

let normalize_side ~what weights =
  let n = Array.length weights in
  if n = 0 then Error (what ^ ": empty weight vector")
  else if Array.exists (fun w -> w < 0) weights then
    Error (what ^ ": negative weight")
  else
    let total = Array.fold_left (fun acc w -> Q.(num (add (of_int acc) (of_int w)))) 0 weights in
    if total <= 0 then Error (what ^ ": zero total weight")
    else Ok (Array.map (fun w -> Q.make w total) weights)

let check_out ~what ~atoms ~outputs out =
  if Array.length out <> atoms then Error (what ^ ": output map length")
  else if Array.exists (fun o -> o < 0 || o >= outputs) out then
    Error (what ^ ": output map out of range")
  else Ok ()

let of_spec (s : Dp.Finite.spec) =
  let ( let* ) = Result.bind in
  try
    if s.atoms <= 0 then Error "atoms must be positive"
    else if s.outputs <= 0 then Error "outputs must be positive"
    else if
      Array.length s.weights_a <> s.atoms || Array.length s.weights_b <> s.atoms
    then Error "weight vector length <> atoms"
    else
      let* mass_a = normalize_side ~what:"side A" s.weights_a in
      let* mass_b = normalize_side ~what:"side B" s.weights_b in
      let* () = check_out ~what:"side A" ~atoms:s.atoms ~outputs:s.outputs s.out_a in
      let* () = check_out ~what:"side B" ~atoms:s.atoms ~outputs:s.outputs s.out_b in
      let bound = Q.make s.bound_num s.bound_den in
      if Q.lt bound Q.one then Error "claimed bound e^eps below 1"
      else
        (* Masses must sum exactly to 1 on each side; Q.make against the
           side total guarantees it, but re-check so the checker can rely
           on it even if this module changes. *)
        let sums_to_one m =
          Q.equal (Array.fold_left Q.add Q.zero m) Q.one
        in
        if not (sums_to_one mass_a && sums_to_one mass_b) then
          Error "masses do not sum to 1"
        else
          Ok
            {
              name = s.name;
              atoms = s.atoms;
              outputs = s.outputs;
              mass_a;
              mass_b;
              out_a = Array.copy s.out_a;
              out_b = Array.copy s.out_b;
              bound;
              epsilon_label = s.epsilon_label;
              out_label = s.out_label;
            }
  with
  | Q.Overflow -> Error "overflow while normalizing weights"
  | Invalid_argument msg -> Error msg

let of_spec_exn s =
  match of_spec s with
  | Ok t -> t
  | Error msg -> invalid_arg ("Cert.Model.of_spec: " ^ s.name ^ ": " ^ msg)

let mass t = function A -> t.mass_a | B -> t.mass_b

let out t = function A -> t.out_a | B -> t.out_b

let output_dist t side =
  let dist = Array.make t.outputs Q.zero in
  let m = mass t side and o = out t side in
  Array.iteri (fun i mi -> dist.(o.(i)) <- Q.add dist.(o.(i)) mi) m;
  dist
