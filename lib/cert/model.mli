(** The finite mechanism-pair model a certificate speaks about.

    A model is a pair of exact probability distributions over a shared
    finite noise-atom space — one per neighboring database — together
    with each side's atom→output map and the claimed privacy-loss bound
    [Λ = e^ε] as an exact rational. It is the normalized, validated form
    of a {!Dp.Finite.spec}: integer weights become exact rational masses,
    and every structural invariant (masses sum to one, output maps in
    range, bound ≥ 1) is checked once here so the {!Witness} checker can
    assume a well-formed model and stay minimal. *)

type side = A | B

type t = private {
  name : string;
  atoms : int;
  outputs : int;
  mass_a : Q.t array;  (** exact; sums to 1 *)
  mass_b : Q.t array;
  out_a : int array;
  out_b : int array;
  bound : Q.t;  (** claimed [e^ε ≥ 1] *)
  epsilon_label : string;
  out_label : int -> string;
}

val of_spec : Dp.Finite.spec -> (t, string) result
(** Normalize and validate. [Error] explains the first violated
    invariant; {!Q.Overflow} during normalization is also reported as
    [Error]. *)

val of_spec_exn : Dp.Finite.spec -> t
(** Raises [Invalid_argument] where {!of_spec} returns [Error]. *)

val mass : t -> side -> Q.t array

val out : t -> side -> int array

val output_dist : t -> side -> Q.t array
(** The exact output distribution: per event, the sum of the side's atom
    masses mapping to it. *)
