(** E2 — the trivial-attacker baseline (Section 2.2's birthday example).

    A weight-w predicate chosen without looking at the data isolates with
    probability n·w·(1−w)^{n−1}; at w = 1/n this is ≈ 37%. The experiment
    reproduces the paper's 365-birthday computation analytically and
    empirically, and sweeps w to show the two negligible regimes on either
    side — the fact that forces Definition 2.3 to be weakened into
    Definition 2.4. *)

type row = {
  n : int;
  weight : float;
  analytic : float;
  empirical : float;
  ci : float * float;
}

val run : ?pool:Parallel.Pool.t -> scale:Common.scale -> Prob.Rng.t -> row list

val print : scale:Common.scale -> Prob.Rng.t -> Format.formatter -> unit

val kernel : Prob.Rng.t -> unit
