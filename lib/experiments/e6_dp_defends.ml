type row = {
  epsilon : float option;
  per_query_scale : float;
  success : float;
  ci : float * float;
}

let model = lazy (Dataset.Synth.pso_model ~attributes:3 ~values_per_attribute:64)

let measure rng ~trials ~n ~epsilon =
  let scheme =
    Pso.Composition.single_bucket ~salt:(Prob.Rng.bits64 rng) ~buckets:n ~ell:40
  in
  let nq = Array.length scheme.Pso.Composition.queries in
  let mechanism, per_query_scale =
    match epsilon with
    | None -> (scheme.Pso.Composition.mechanism, 0.)
    | Some eps ->
      ( Query.Mechanism.laplace_counts_batch ~epsilon:eps
          scheme.Pso.Composition.batch,
        float_of_int nq /. eps )
  in
  let outcome =
    Pso.Game.run rng ~model:(Lazy.force model) ~n ~mechanism
      ~attacker:scheme.Pso.Composition.attacker
      ~weight_bound:(Pso.Isolation.negligible_bound ~n ~c:2.)
      ~trials
  in
  {
    epsilon;
    per_query_scale;
    success = outcome.Pso.Game.success_rate;
    ci = outcome.Pso.Game.success_ci;
  }

let run ~scale rng =
  let trials, n, epsilons =
    match scale with
    | Common.Quick -> (100, 128, [ 1.; 100.; 2000. ])
    | Common.Full -> (400, 128, [ 0.1; 1.; 10.; 100.; 500.; 2000. ])
  in
  measure rng ~trials ~n ~epsilon:None
  :: List.map (fun eps -> measure rng ~trials ~n ~epsilon:(Some eps)) epsilons

let print ~scale rng fmt =
  Common.banner fmt ~id:"E6"
    ~title:"Differential privacy prevents PSO (Theorem 2.9)"
    ~claim:
      "If M is eps-differentially private for constant eps, M prevents \
       predicate singling out: the attack that defeats exact counts fails \
       once answers carry calibrated noise.";
  let rows = run ~scale rng in
  Common.table fmt
    ~header:[ "epsilon"; "per-answer Lap scale"; "PSO success"; "95% CI" ]
    (List.map
       (fun r ->
         let lo, hi = r.ci in
         [
           (match r.epsilon with None -> "none (exact)" | Some e -> Common.g3 e);
           Common.g3 r.per_query_scale;
           Common.pct r.success;
           Printf.sprintf "[%s, %s]" (Common.pct lo) (Common.pct hi);
         ])
       rows)

let kernel rng = ignore (measure rng ~trials:10 ~n:128 ~epsilon:(Some 1.))
