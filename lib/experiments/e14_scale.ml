module Cs = Attacks.Census_scale

type row = {
  mean_block_size : int;
  blocks : int;
  population : int;
  records : int;
  suppressed : int;
  match_rate : float;
  sex_age_rate : float;
  cold_iters_per_block : float;
  warm_iters_per_block : float;
  rows_per_sec : float;
}

let threshold = 3

let measure ?pool rng ~blocks ~mean_block_size ~shards =
  let cfg =
    {
      Cs.blocks;
      mean_block_size;
      shards;
      threshold;
      warm_start = true;
      shave = false;
    }
  in
  (* The cold run replays the identical block stream from a copy of the
     generator, so the iteration columns compare solves of the same
     systems, not of different random blocks. *)
  let cold_rng = Prob.Rng.copy rng in
  let t0 = Obs.now_ns () in
  let warm = Cs.run ?pool cfg rng in
  let dt_ns = Int64.to_float (Int64.sub (Obs.now_ns ()) t0) in
  let cold = Cs.run ?pool { cfg with Cs.warm_start = false } cold_rng in
  let per_block total n = if n = 0 then 0. else float_of_int total /. float_of_int n in
  {
    mean_block_size;
    blocks;
    population = warm.Cs.population;
    records = warm.Cs.records;
    suppressed = warm.Cs.suppressed_cells;
    match_rate = Cs.match_rate warm;
    sex_age_rate = Cs.sex_age_rate warm;
    cold_iters_per_block = per_block cold.Cs.iterations cold.Cs.solves;
    warm_iters_per_block =
      per_block warm.Cs.warm_iterations warm.Cs.warm_solves;
    rows_per_sec =
      (if dt_ns <= 0. then 0.
       else float_of_int warm.Cs.records /. (dt_ns /. 1e9));
  }

let run ?pool ~scale rng =
  let pool = match pool with Some p -> p | None -> Parallel.Pool.default () in
  (* Rows run sequentially: each one already fans its shards across the
     pool, and a row's generator is split off up front so the results are
     independent of the pool size. *)
  let params =
    match scale with
    | Common.Quick -> [ (10, 24, 4); (25, 24, 4); (50, 24, 4) ]
    | Common.Full -> [ (25, 400, 16); (100, 400, 16); (250, 200, 16) ]
  in
  List.map
    (fun (mean_block_size, blocks, shards) ->
      let row_rng = Prob.Rng.split rng in
      measure ~pool row_rng ~blocks ~mean_block_size ~shards)
    params

let print ~scale rng fmt =
  Common.banner fmt ~id:"E14"
    ~title:"Census-scale sharded reconstruction (streaming)"
    ~claim:
      "The 2010 exhibit solved 6M+ block systems for 308.7M people. \
       Streaming per-block tabulation and suppression-aware sparse solves \
       reconstruct every published record without materializing the \
       population, recover more of the joint distribution as blocks grow, \
       and neighbor warm-starting cuts solver iterations per block.";
  let rows = run ~scale rng in
  Common.table fmt
    ~header:
      [
        "mean size"; "blocks"; "population"; "records"; "suppressed";
        "joint match"; "sex-age match"; "cold it/blk"; "warm it/blk";
      ]
    (List.map
       (fun r ->
         [
           string_of_int r.mean_block_size;
           string_of_int r.blocks;
           string_of_int r.population;
           string_of_int r.records;
           string_of_int r.suppressed;
           Common.pct r.match_rate;
           Common.pct r.sex_age_rate;
           Printf.sprintf "%.1f" r.cold_iters_per_block;
           Printf.sprintf "%.1f" r.warm_iters_per_block;
         ])
       rows);
  (* Throughput is wall-clock and machine-dependent: stderr only, never in
     the golden-pinned table. *)
  List.iter
    (fun r ->
      Printf.eprintf "[E14] mean=%d blocks=%d: %.0f rows/sec\n%!"
        r.mean_block_size r.blocks r.rows_per_sec)
    rows

let kernel rng =
  ignore (measure rng ~blocks:6 ~mean_block_size:20 ~shards:2)
