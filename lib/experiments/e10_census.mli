(** E10 — the 2010 Census reconstruction-abetted re-identification
    (Section 1).

    Publishes block-level marginal tables from a synthetic population,
    reconstructs microdata exactly consistent with them, links against a
    synthetic commercial database, and confirms putative re-identifications
    against the confidential truth. The paper's quoted shape: age within one
    year for ~71% of the population, ~17% confirmed re-identified, versus a
    prior agency estimate of 0.003% — a gap of ~4500x. *)

type row = {
  population : int;
  blocks : int;
  protection : string;  (** "none", or the ε of DP-protected tables *)
  commercial_coverage : float;
  exact_reconstruction : float;
  age_within_one : float;
  putative : float;
  confirmed : float;
  prior_estimate : float;  (** the 0.003% the Census Bureau expected *)
  gap_factor : float;  (** confirmed / prior *)
}

val run : ?pool:Parallel.Pool.t -> scale:Common.scale -> Prob.Rng.t -> row list

val print : scale:Common.scale -> Prob.Rng.t -> Format.formatter -> unit

val kernel : Prob.Rng.t -> unit
