(** E14 — census-scale sharded reconstruction (Section 1, at scale).

    Streams a synthetic population block by block through the
    {!Attacks.Census_scale} pipeline — per-block suppression, interval
    propagation, warm-started sparse box least squares, total-consistent
    rounding — without ever materializing the population, and reports
    reconstruction quality versus block size. Each parameter row runs the
    same blocks twice, warm-started and cold, so the table also quantifies
    what neighbor warm-starting saves in solver iterations. Throughput
    (rows reconstructed per second) is printed to stderr only: the table
    itself is deterministic and golden-pinned. *)

type row = {
  mean_block_size : int;
  blocks : int;
  population : int;
  records : int;  (** rows emitted — always equals population *)
  suppressed : int;  (** nonzero cells hidden by the threshold *)
  match_rate : float;  (** joint (sex, age, race, eth) cell overlap *)
  sex_age_rate : float;  (** overlap on the (sex, age) marginal *)
  cold_iters_per_block : float;
  warm_iters_per_block : float;  (** warm-started solves only *)
  rows_per_sec : float;  (** wall-clock throughput; never rendered *)
}

val run : ?pool:Parallel.Pool.t -> scale:Common.scale -> Prob.Rng.t -> row list

val print : scale:Common.scale -> Prob.Rng.t -> Format.formatter -> unit

val kernel : Prob.Rng.t -> unit
