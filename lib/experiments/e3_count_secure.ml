type row = {
  n : int;
  c : float;
  success : float;
  isolations_any_weight : float;
}

let model = lazy (Dataset.Synth.pso_model ~attributes:3 ~values_per_attribute:16)

let mechanism =
  Query.Mechanism.exact_count
    (Query.Predicate.Atom (Query.Predicate.Range ("a0", 0., 8.)))

let measure ~pool rng ~trials ~n ~c =
  let buckets = int_of_float (Float.pow (float_of_int n) (c +. 1.)) in
  let outcome =
    Pso.Game.run ~pool rng ~model:(Lazy.force model) ~n ~mechanism
      ~attacker:(Pso.Attacker.hash_bucket ~buckets)
      ~weight_bound:(Pso.Isolation.negligible_bound ~n ~c)
      ~trials
  in
  {
    n;
    c;
    success = outcome.Pso.Game.success_rate;
    isolations_any_weight =
      float_of_int outcome.Pso.Game.isolations /. float_of_int trials;
  }

let run ?pool ~scale rng =
  let pool = match pool with Some p -> p | None -> Parallel.Pool.default () in
  let trials, ns =
    match scale with
    | Common.Quick -> (400, [ 16; 32; 64 ])
    | Common.Full -> (3000, [ 16; 32; 64; 128; 256 ])
  in
  List.concat_map
    (fun c -> List.map (fun n -> measure ~pool rng ~trials ~n ~c) ns)
    [ 1.; 2.; 4. ]

let decay rows ~c =
  let points =
    rows
    |> List.filter (fun r -> r.c = c)
    |> List.map (fun r -> (r.n, r.success))
    |> Array.of_list
  in
  Prob.Decay.classify points

let print ~scale rng fmt =
  Common.banner fmt ~id:"E3"
    ~title:"Count mechanism prevents PSO (Theorem 2.5)"
    ~claim:
      "M#q (an exact count) prevents predicate singling out: \
       negligible-weight attackers succeed with probability ~n.w, decaying \
       with n at every weight-bound exponent.";
  let rows = run ~scale rng in
  Common.table fmt
    ~header:[ "n"; "bound exp c"; "PSO success"; "isolations (any weight)" ]
    (List.map
       (fun r ->
         [
           string_of_int r.n;
           Printf.sprintf "%.0f" r.c;
           Common.pct r.success;
           Common.pct r.isolations_any_weight;
         ])
       rows);
  List.iter
    (fun c ->
      Format.fprintf fmt "decay at c=%.0f: %s@." c
        (Prob.Decay.to_string (decay rows ~c)))
    [ 1.; 2.; 4. ]

let kernel rng =
  ignore (measure ~pool:(Parallel.Pool.default ()) rng ~trials:50 ~n:64 ~c:2.)
