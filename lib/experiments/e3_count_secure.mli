(** E3 — Theorem 2.5: the count mechanism prevents predicate singling out.

    Runs the PSO game against M#q across dataset sizes and fits the decay of
    the best-effort negligible-weight attacker's success; ablates the
    concrete negligible-weight exponent c (bound n^-c). The shape: success
    decays polynomially in n at every c, i.e. no plateau a secure mechanism
    would forbid. *)

type row = {
  n : int;
  c : float;  (** weight-bound exponent *)
  success : float;
  isolations_any_weight : float;  (** incl. heavy predicates, for context *)
}

val run : ?pool:Parallel.Pool.t -> scale:Common.scale -> Prob.Rng.t -> row list

val decay : row list -> c:float -> Prob.Decay.shape
(** Decay classification of success vs n at a fixed exponent. *)

val print : scale:Common.scale -> Prob.Rng.t -> Format.formatter -> unit

val kernel : Prob.Rng.t -> unit
