(** E4 — Theorem 2.7: the explicit incomposable pair.

    Runs the pad construction's three games (attack M1 alone, M2 alone, and
    the composition) across dataset sizes. The shape: marginal attacks stay
    at 0, the joint attack stays at ~100%, independent of n. *)

type row = {
  n : int;
  target : string;  (** "M1", "M2" or "(M1,M2)" *)
  success : float;
  ci : float * float;
}

val run : ?pool:Parallel.Pool.t -> scale:Common.scale -> Prob.Rng.t -> row list

val print : scale:Common.scale -> Prob.Rng.t -> Format.formatter -> unit

val kernel : Prob.Rng.t -> unit
