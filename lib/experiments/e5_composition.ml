type row = {
  n : int;
  ell : int;
  variant : string;
  queries : int;
  predicate_weight : float;
  weight_bound : float;
  success : float;
  isolations_any_weight : float;
}

let model = lazy (Dataset.Synth.pso_model ~attributes:3 ~values_per_attribute:64)

let measure ~pool rng ~trials ~n ~ell ~variant =
  let salt = Prob.Rng.bits64 rng in
  let scheme =
    match variant with
    | `Single -> Pso.Composition.single_bucket ~salt ~buckets:n ~ell
    | `Scouted -> Pso.Composition.scouted ~salt ~buckets:n ~ell ~scouts:6
  in
  let c = 2. in
  let outcome =
    Pso.Game.run ~pool rng ~model:(Lazy.force model) ~n
      ~mechanism:scheme.Pso.Composition.mechanism
      ~attacker:scheme.Pso.Composition.attacker
      ~weight_bound:(Pso.Isolation.negligible_bound ~n ~c)
      ~trials
  in
  {
    n;
    ell;
    variant = (match variant with `Single -> "single" | `Scouted -> "scouted");
    queries = Array.length scheme.Pso.Composition.queries;
    predicate_weight = Pso.Composition.weight_of_success ~buckets:n ~ell;
    weight_bound = Pso.Isolation.negligible_bound ~n ~c;
    success = outcome.Pso.Game.success_rate;
    isolations_any_weight =
      float_of_int outcome.Pso.Game.isolations /. float_of_int outcome.Pso.Game.trials;
  }

let run ?pool ~scale rng =
  let pool = match pool with Some p -> p | None -> Parallel.Pool.default () in
  let trials, ns, ells =
    match scale with
    | Common.Quick -> (100, [ 128 ], [ 4; 12; 24; 40 ])
    | Common.Full -> (400, [ 128; 512 ], [ 2; 4; 8; 12; 16; 24; 32; 40; 48 ])
  in
  List.concat_map
    (fun n ->
      List.concat_map
        (fun ell ->
          [
            measure ~pool rng ~trials ~n ~ell ~variant:`Single;
            measure ~pool rng ~trials ~n ~ell ~variant:`Scouted;
          ])
        ells)
    ns

let print ~scale rng fmt =
  Common.banner fmt ~id:"E5"
    ~title:"Composed count mechanisms enable PSO (Theorem 2.8)"
    ~claim:
      "omega(log n) composed count queries let an attacker learn one record \
       bit by bit and isolate it with a negligible-weight predicate; below \
       ~log n bits, the predicate is too heavy to count.";
  let rows = run ~scale rng in
  Common.table fmt
    ~header:
      [
        "n"; "ell"; "variant"; "queries"; "pred weight"; "bound n^-2";
        "PSO success"; "isolations";
      ]
    (List.map
       (fun r ->
         [
           string_of_int r.n;
           string_of_int r.ell;
           r.variant;
           string_of_int r.queries;
           Common.g3 r.predicate_weight;
           Common.g3 r.weight_bound;
           Common.pct r.success;
           Common.pct r.isolations_any_weight;
         ])
       rows)

let kernel rng =
  ignore
    (measure ~pool:(Parallel.Pool.default ()) rng ~trials:10 ~n:128 ~ell:24
       ~variant:`Scouted)
