(** E13 (extension) — synthetic data and singling out.

    Section 1.2 notes that legal concepts like linkability are unclear
    "when PII is replaced with 'synthetic data'". The PSO lens gives a
    crisp answer for the simplest DP synthetic-data pipeline: the release
    is post-processing of ε-DP histograms, so by Theorems 2.6/2.9 it
    prevents predicate singling out — while the verbatim release of the
    same table falls to the release-row attacker with probability ≈ 1.
    The utility column (marginal TV error) shows what the guarantee
    costs. *)

type row = {
  mechanism : string;
  epsilon : float option;  (** [None] = verbatim release *)
  success : float;  (** PSO success of the release-row attacker *)
  isolations : float;
  marginal_tv_error : float;  (** mean TV distance of fitted vs true marginals *)
}

val run : ?pool:Parallel.Pool.t -> scale:Common.scale -> Prob.Rng.t -> row list

val print : scale:Common.scale -> Prob.Rng.t -> Format.formatter -> unit

val kernel : Prob.Rng.t -> unit
