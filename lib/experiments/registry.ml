type entry = {
  id : string;
  title : string;
  print : scale:Common.scale -> Prob.Rng.t -> Format.formatter -> unit;
  kernel : Prob.Rng.t -> unit;
}

(* Every registry entry gets a root span: "experiment:E#" around the printed
   table, "kernel:E#" around the bare kernel (the bench path). *)
let instrument e =
  {
    e with
    print =
      (fun ~scale rng fmt ->
        Obs.with_span
          ("experiment:" ^ e.id)
          ~args:[ ("title", e.title) ]
          (fun () -> e.print ~scale rng fmt));
    kernel =
      (fun rng -> Obs.with_span ("kernel:" ^ e.id) (fun () -> e.kernel rng));
  }

let all =
  List.map instrument
  [
    {
      id = "E1";
      title = "Database reconstruction (Theorem 1.1)";
      print = E1_reconstruction.print;
      kernel = E1_reconstruction.kernel;
    };
    {
      id = "E2";
      title = "Trivial isolation baseline (birthday example)";
      print = E2_birthday.print;
      kernel = E2_birthday.kernel;
    };
    {
      id = "E3";
      title = "Count mechanism prevents PSO (Theorem 2.5)";
      print = E3_count_secure.print;
      kernel = E3_count_secure.kernel;
    };
    {
      id = "E4";
      title = "Incomposability pair (Theorem 2.7)";
      print = E4_incomposability.print;
      kernel = E4_incomposability.kernel;
    };
    {
      id = "E5";
      title = "Count composition breaks PSO (Theorem 2.8)";
      print = E5_composition.print;
      kernel = E5_composition.kernel;
    };
    {
      id = "E6";
      title = "Differential privacy prevents PSO (Theorem 2.9)";
      print = E6_dp_defends.print;
      kernel = E6_dp_defends.kernel;
    };
    {
      id = "E7";
      title = "k-anonymity enables PSO (Theorem 2.10 + Cohen)";
      print = E7_kanon.print;
      kernel = E7_kanon.kernel;
    };
    {
      id = "E8";
      title = "Quasi-identifier linkage (Sweeney / GIC)";
      print = E8_sweeney.print;
      kernel = E8_sweeney.kernel;
    };
    {
      id = "E9";
      title = "Sparse-data de-anonymization (Netflix)";
      print = E9_netflix.print;
      kernel = E9_netflix.kernel;
    };
    {
      id = "E10";
      title = "Census reconstruction + re-identification";
      print = E10_census.print;
      kernel = E10_census.kernel;
    };
    {
      id = "E11";
      title = "Membership inference from aggregates (Homer)";
      print = E11_membership.print;
      kernel = E11_membership.kernel;
    };
    {
      id = "E12";
      title = "Legal theorems and the WP29 comparison";
      print = E12_legal.print;
      kernel = E12_legal.kernel;
    };
    {
      id = "E13";
      title = "Synthetic data and singling out (extension)";
      print = E13_synthetic.print;
      kernel = E13_synthetic.kernel;
    };
    {
      id = "E14";
      title = "Census-scale sharded reconstruction (streaming)";
      print = E14_scale.print;
      kernel = E14_scale.kernel;
    };
  ]

let find id =
  let target = String.lowercase_ascii id in
  List.find_opt (fun e -> String.lowercase_ascii e.id = target) all
