type row = {
  population : int;
  blocks : int;
  protection : string;  (* "none" or "DP eps=..." *)
  commercial_coverage : float;
  exact_reconstruction : float;
  age_within_one : float;
  putative : float;
  confirmed : float;
  prior_estimate : float;
  gap_factor : float;
}

let prior_estimate = 0.00003 (* the 0.003% pre-2010 risk estimate *)

let measure rng ?dp_epsilon ~blocks ~mean_block_size ~coverage () =
  let truth = Dataset.Synth.census_population rng ~blocks ~mean_block_size in
  let tables = Attacks.Census.tabulate truth in
  let tables =
    match dp_epsilon with
    | None -> tables
    | Some epsilon -> Attacks.Census.protect rng ~epsilon tables
  in
  let recon = Attacks.Census.reconstruct tables in
  let eval = Attacks.Census.evaluate ~truth recon in
  let commercial =
    Attacks.Census.commercial_db rng truth ~coverage ~age_error_rate:0.1
  in
  let reid = Attacks.Census.reidentify recon commercial ~truth in
  {
    population = Array.length truth;
    blocks;
    protection =
      (match dp_epsilon with
      | None -> "none"
      | Some e -> Printf.sprintf "DP eps=%g" e);
    commercial_coverage = coverage;
    exact_reconstruction = eval.Attacks.Census.exact_rate;
    age_within_one = eval.Attacks.Census.age_within_one_rate;
    putative = reid.Attacks.Census.putative_rate;
    confirmed = reid.Attacks.Census.confirmed_rate;
    prior_estimate;
    gap_factor = reid.Attacks.Census.confirmed_rate /. prior_estimate;
  }

let run ?pool ~scale rng =
  let pool = match pool with Some p -> p | None -> Parallel.Pool.default () in
  (* Each row is one full tabulate/reconstruct/re-identify pipeline; rows
     are independent given their own generator, so they fan out across the
     pool as whole units. *)
  let rows =
    match scale with
    | Common.Quick ->
      [|
        (fun rng -> measure rng ~blocks:150 ~mean_block_size:25 ~coverage:0.6 ());
        (fun rng ->
          measure rng ~dp_epsilon:1. ~blocks:150 ~mean_block_size:25 ~coverage:0.6 ());
      |]
    | Common.Full ->
      [|
        (fun rng -> measure rng ~blocks:600 ~mean_block_size:25 ~coverage:0.3 ());
        (fun rng -> measure rng ~blocks:600 ~mean_block_size:25 ~coverage:0.6 ());
        (fun rng -> measure rng ~blocks:600 ~mean_block_size:60 ~coverage:0.6 ());
        (* The post-2010 response: differentially private tabulations. *)
        (fun rng ->
          measure rng ~dp_epsilon:4. ~blocks:600 ~mean_block_size:25 ~coverage:0.6 ());
        (fun rng ->
          measure rng ~dp_epsilon:1. ~blocks:600 ~mean_block_size:25 ~coverage:0.6 ());
      |]
  in
  Array.to_list
    (Parallel.Trials.map pool rng ~trials:(Array.length rows)
       (fun trial_rng i -> rows.(i) trial_rng))

let print ~scale rng fmt =
  Common.banner fmt ~id:"E10"
    ~title:"Census reconstruction-abetted re-identification"
    ~claim:
      "Reconstruction of the 2010 tabulations recovered age to within one \
       year (with exact sex/race/ethnicity/block) for 71% of the US \
       population; matching commercial data confirmed re-identification of \
       17%, ~4500x the Bureau's prior 0.003% estimate.";
  let rows = run ~scale rng in
  Common.table fmt
    ~header:
      [
        "population"; "blocks"; "tables"; "comm. cov."; "exact recon";
        "age +/-1"; "putative"; "confirmed"; "prior est."; "gap";
      ]
    (List.map
       (fun r ->
         [
           string_of_int r.population;
           string_of_int r.blocks;
           r.protection;
           Common.pct r.commercial_coverage;
           Common.pct r.exact_reconstruction;
           Common.pct r.age_within_one;
           Common.pct r.putative;
           Common.pct r.confirmed;
           Common.pct r.prior_estimate;
           Printf.sprintf "%.0fx" r.gap_factor;
         ])
       rows);
  (match rows with
  | r :: _ ->
    let det =
      Legal.Determinations.title_13 ~confirmed_rate:r.confirmed
        ~prior_estimate:r.prior_estimate
    in
    Format.fprintf fmt "@.%a@." Legal.Theorem.pp det
  | [] -> ())

let kernel rng = ignore (measure rng ~blocks:40 ~mean_block_size:20 ~coverage:0.5 ())
