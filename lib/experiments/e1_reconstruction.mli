(** E1 — Theorem 1.1 / the Fundamental Law of Information Recovery.

    Sweeps the answer-error magnitude α for the three reconstruction
    attackers and reports the fraction of the dataset recovered. The shape
    to reproduce: near-perfect reconstruction while α ≪ √n (polynomial
    attacks) or α ≪ n (exhaustive attack), collapsing toward the 50%
    guessing floor once the error crosses the theorem's thresholds. *)

type row = {
  attack : string;
  n : int;
  queries : int;
  alpha : float;
  agreement : float;  (** mean fraction of entries recovered *)
  blatant : bool;  (** agreement above the blatant-non-privacy threshold *)
}

val run : ?pool:Parallel.Pool.t -> scale:Common.scale -> Prob.Rng.t -> row list
(** Trials fan out across [pool] (default {!Parallel.Pool.default}); rows
    are identical at every pool size for a given generator state. *)

val print : scale:Common.scale -> Prob.Rng.t -> Format.formatter -> unit

val kernel : Prob.Rng.t -> unit
(** One least-squares reconstruction at bench scale (for Bechamel). *)
