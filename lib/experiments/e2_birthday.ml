type row = {
  n : int;
  weight : float;
  analytic : float;
  empirical : float;
  ci : float * float;
}

(* The paper's setting: 365 birthdays, n = 365 people; the attacker fixes
   one date. Other weights are realised with hash-bucket predicates over a
   model augmented with a high-entropy auxiliary attribute, so that bucket
   weights concentrate near 1/buckets instead of being quantized to
   multiples of 1/365. *)
let model =
  lazy
    (let schema =
       Dataset.Schema.make
         [
           {
             Dataset.Schema.name = "birthday";
             kind = Dataset.Value.Kint;
             role = Dataset.Schema.Quasi_identifier;
           };
           {
             Dataset.Schema.name = "noise";
             kind = Dataset.Value.Kint;
             role = Dataset.Schema.Insensitive;
           };
         ]
     in
     Dataset.Model.make schema
       [
         ("birthday", Prob.Distribution.uniform (List.init 365 (fun d -> Dataset.Value.Int d)));
         ("noise", Prob.Distribution.uniform (List.init 4096 (fun d -> Dataset.Value.Int d)));
       ])

let measure_with ~pool rng ~trials ~n attacker =
  let model = Lazy.force model in
  let mechanism = Query.Mechanism.exact_count Query.Predicate.True in
  (* weight_bound = 1: count raw isolations (this experiment is about the
     isolation probability itself, not the weight cutoff). *)
  let outcome =
    Pso.Game.run ~pool rng ~model ~n ~mechanism ~attacker ~weight_bound:1. ~trials
  in
  let isolation_rate =
    float_of_int outcome.Pso.Game.isolations /. float_of_int trials
  in
  let ci =
    Prob.Stats.proportion_ci ~successes:outcome.Pso.Game.isolations ~trials
  in
  (isolation_rate, ci)

let measure ~pool rng ~trials ~n ~buckets =
  measure_with ~pool rng ~trials ~n (Pso.Attacker.hash_bucket ~buckets)

let run ?pool ~scale rng =
  let pool = match pool with Some p -> p | None -> Parallel.Pool.default () in
  let trials = match scale with Common.Quick -> 400 | Common.Full -> 2000 in
  let n = 365 in
  (* The paper's literal attacker: a fixed date (Apr-30 is day 119),
     weight exactly 1/365. *)
  let fixed =
    let w = 1. /. 365. in
    let empirical, ci =
      measure_with ~pool rng ~trials ~n
        (Pso.Attacker.fixed_value ~attr:"birthday" (Dataset.Value.Int 119))
    in
    {
      n;
      weight = w;
      analytic = Pso.Isolation.trivial_isolation_probability ~n ~w;
      empirical;
      ci;
    }
  in
  fixed
  :: List.map
       (fun buckets ->
         let w = 1. /. float_of_int buckets in
         let empirical, ci = measure ~pool rng ~trials ~n ~buckets in
         {
           n;
           weight = w;
           analytic = Pso.Isolation.trivial_isolation_probability ~n ~w;
           empirical;
           ci;
         })
       [ 16 * n; 4 * n; n; max 1 (n / 2); max 1 (n / 8) ]

let print ~scale rng fmt =
  Common.banner fmt ~id:"E2"
    ~title:"Trivial isolation baseline (the birthday example)"
    ~claim:
      "A fixed predicate of weight 1/n isolates with probability ~37% \
       without looking at the mechanism's output; the probability is \
       negligible only for w = negl(n) or w = omega(log n / n).";
  let rows = run ~scale rng in
  Common.table fmt
    ~header:[ "n"; "weight"; "analytic"; "measured"; "95% CI" ]
    (List.map
       (fun r ->
         let lo, hi = r.ci in
         [
           string_of_int r.n;
           Common.g3 r.weight;
           Common.pct r.analytic;
           Common.pct r.empirical;
           Printf.sprintf "[%s, %s]" (Common.pct lo) (Common.pct hi);
         ])
       rows);
  Format.fprintf fmt "@.(1/e = %s; the paper's quoted 37%%)@."
    (Common.pct Pso.Isolation.one_over_e)

let kernel rng =
  ignore (measure ~pool:(Parallel.Pool.default ()) rng ~trials:20 ~n:365 ~buckets:365)
