type row = {
  attack : string;
  n : int;
  queries : int;
  alpha : float;
  agreement : float;
  blatant : bool;
}

(* One table row as data: which attack, at what size and noise, averaged
   over how many trials. Rows carry no randomness — every trial draws only
   from the child generator it is handed, which is what lets the harness
   fan trials across domains deterministically. *)
type spec = {
  s_attack : string;
  s_n : int;
  s_queries : int;
  s_alpha : float;
  s_trials : int;
  s_run :
    Prob.Rng.t -> Query.Oracle.t -> int array -> Attacks.Reconstruction.result;
}

let random_bits rng n = Array.init n (fun _ -> if Prob.Rng.bool rng then 1 else 0)

let trial spec rng =
  let truth = random_bits rng spec.s_n in
  let oracle =
    if spec.s_alpha = 0. then Query.Oracle.exact truth
    else Query.Oracle.bounded_noise rng ~magnitude:spec.s_alpha truth
  in
  (spec.s_run rng oracle truth).Attacks.Reconstruction.agreement

let specs ~scale =
  let trials, lsq_ns, exh_n =
    match scale with
    | Common.Quick -> (2, [ 64 ], 8)
    | Common.Full -> (5, [ 64; 256 ], 12)
  in
  (* Exhaustive attack (Theorem 1.1(i)): tolerates alpha = Theta(n). *)
  let exhaustive =
    List.map
      (fun alpha ->
        {
          s_attack = "exhaustive";
          s_n = exh_n;
          s_queries = 1 lsl exh_n;
          s_alpha = alpha;
          s_trials = 1;
          s_run =
            (fun _rng oracle truth -> Attacks.Reconstruction.exhaustive oracle ~truth);
        })
      [ 0.; float_of_int exh_n /. 8.; float_of_int exh_n /. 4. ]
  in
  (* Least-squares attack (Theorem 1.1(ii)): tolerates alpha = Theta(sqrt n). *)
  let least_squares =
    List.concat_map
      (fun n ->
        let sqrt_n = Float.sqrt (float_of_int n) in
        let queries = 8 * n in
        List.map
          (fun alpha ->
            {
              s_attack = "least-squares";
              s_n = n;
              s_queries = queries;
              s_alpha = alpha;
              s_trials = trials;
              s_run =
                (fun rng oracle truth ->
                  Attacks.Reconstruction.least_squares rng oracle ~queries ~truth);
            })
          [ 0.; 0.5 *. sqrt_n; sqrt_n; float_of_int n /. 8.; float_of_int n /. 3. ])
      lsq_ns
  in
  (* LP decoding at a single modest size (slow but noise-robust). *)
  let lp =
    let n = 32 in
    let queries = 6 * n in
    List.map
      (fun alpha ->
        {
          s_attack = "lp-decode";
          s_n = n;
          s_queries = queries;
          s_alpha = alpha;
          s_trials = 1;
          s_run =
            (fun rng oracle truth ->
              Attacks.Reconstruction.lp_decode rng oracle ~queries ~truth);
        })
      [ 0.; Float.sqrt 32. ]
  in
  exhaustive @ least_squares @ lp

let run ?pool ~scale rng =
  let pool = match pool with Some p -> p | None -> Parallel.Pool.default () in
  let specs = Array.of_list (specs ~scale) in
  (* Flatten to one work item per (row, trial): the units the attacks
     decompose into are single solves, so this is the finest granularity
     available, and dynamic stealing balances a cheap exhaustive run
     against an expensive LP decode. *)
  let spec_of_item =
    Array.concat
      (Array.to_list
         (Array.map (fun s -> Array.make s.s_trials s) specs))
  in
  let agreements =
    Parallel.Trials.map pool rng ~trials:(Array.length spec_of_item)
      (fun trial_rng i -> trial spec_of_item.(i) trial_rng)
  in
  let rows = ref [] in
  let item = ref 0 in
  Array.iter
    (fun s ->
      let total = ref 0. in
      for _ = 1 to s.s_trials do
        total := !total +. agreements.(!item);
        incr item
      done;
      let agreement = !total /. float_of_int s.s_trials in
      rows :=
        {
          attack = s.s_attack;
          n = s.s_n;
          queries = s.s_queries;
          alpha = s.s_alpha;
          agreement;
          blatant = agreement >= Attacks.Reconstruction.blatant_non_privacy_threshold;
        }
        :: !rows)
    specs;
  List.rev !rows

let print ~scale rng fmt =
  Common.banner fmt ~id:"E1" ~title:"Database reconstruction (Theorem 1.1)"
    ~claim:
      "Reconstruction succeeds unless the mechanism adds error Omega(sqrt n) \
       against polynomially many queries (Omega(n) against all queries); \
       overly accurate answers to too many questions destroy privacy.";
  let rows = run ~scale rng in
  Common.table fmt
    ~header:[ "attack"; "n"; "queries"; "alpha"; "recovered"; "blatant?" ]
    (List.map
       (fun r ->
         [
           r.attack;
           string_of_int r.n;
           string_of_int r.queries;
           Printf.sprintf "%.1f" r.alpha;
           Common.pct r.agreement;
           (if r.blatant then "YES" else "no");
         ])
       rows)

let kernel rng =
  let n = 64 in
  let truth = random_bits rng n in
  let oracle = Query.Oracle.bounded_noise rng ~magnitude:2. truth in
  ignore (Attacks.Reconstruction.least_squares rng oracle ~queries:(4 * n) ~truth)
