type row = {
  n : int;
  target : string;
  success : float;
  ci : float * float;
}

let model = lazy (Dataset.Synth.pso_model ~attributes:4 ~values_per_attribute:16)

let games ~pool rng ~trials ~n =
  let pad = Pso.Pad.make ~salt:(Prob.Rng.bits64 rng) in
  let play target mechanism attacker =
    let outcome =
      Pso.Game.run ~pool rng ~model:(Lazy.force model) ~n ~mechanism ~attacker
        ~weight_bound:(Pso.Isolation.negligible_bound ~n ~c:2.)
        ~trials
    in
    {
      n;
      target;
      success = outcome.Pso.Game.success_rate;
      ci = outcome.Pso.Game.success_ci;
    }
  in
  [
    play "M1 alone" pad.Pso.Pad.m1 pad.Pso.Pad.marginal_attacker;
    play "M2 alone" pad.Pso.Pad.m2 pad.Pso.Pad.marginal_attacker;
    play "(M1,M2) composed" pad.Pso.Pad.composed pad.Pso.Pad.joint_attacker;
  ]

let run ?pool ~scale rng =
  let pool = match pool with Some p -> p | None -> Parallel.Pool.default () in
  let trials, ns =
    match scale with
    | Common.Quick -> (150, [ 100 ])
    | Common.Full -> (800, [ 50; 200; 800 ])
  in
  List.concat_map (fun n -> games ~pool rng ~trials ~n) ns

let print ~scale rng fmt =
  Common.banner fmt ~id:"E4"
    ~title:"PSO security does not compose (Theorem 2.7)"
    ~claim:
      "There exist M1, M2, each preventing predicate singling out, whose \
       composition enables isolation with probability ~1 at weight 2^-64.";
  let rows = run ~scale rng in
  Common.table fmt
    ~header:[ "n"; "attacked output"; "PSO success"; "95% CI" ]
    (List.map
       (fun r ->
         let lo, hi = r.ci in
         [
           string_of_int r.n;
           r.target;
           Common.pct r.success;
           Printf.sprintf "[%s, %s]" (Common.pct lo) (Common.pct hi);
         ])
       rows)

let kernel rng =
  ignore (games ~pool:(Parallel.Pool.default ()) rng ~trials:20 ~n:50)
