(** E5 — Theorem 2.8: composing count mechanisms breaks PSO, with the
    crossover governed by the number of digest bits learned.

    Sweeps ℓ (bits per bucket). The attacker's predicate has weight
    [2^{-ℓ}/n]; it only counts as a PSO success once that weight crosses
    below the bound [n^{-c}], i.e. once [ℓ > (c−1)·log2 n] — the concrete
    face of the theorem's ω(log n) threshold. Also ablates the
    single-bucket (≈37%-capped) vs scouted (→100%) attacker. *)

type row = {
  n : int;
  ell : int;
  variant : string;  (** "single" or "scouted" *)
  queries : int;
  predicate_weight : float;
  weight_bound : float;
  success : float;
  isolations_any_weight : float;
}

val run : ?pool:Parallel.Pool.t -> scale:Common.scale -> Prob.Rng.t -> row list

val print : scale:Common.scale -> Prob.Rng.t -> Format.formatter -> unit

val kernel : Prob.Rng.t -> unit
