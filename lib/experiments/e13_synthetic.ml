type row = {
  mechanism : string;
  epsilon : float option;
  success : float;
  isolations : float;
  marginal_tv_error : float;
}

let attributes = 12

let domain = 16

let model = lazy (Dataset.Synth.kanon_pso_model ~qis:6 ~retained:(attributes - 6) ~domain)

let domains () =
  let schema = Dataset.Model.schema (Lazy.force model) in
  List.map
    (fun name -> (name, List.init domain (fun v -> Dataset.Value.Int v)))
    (Dataset.Schema.names schema)

let measure ~pool rng ~trials ~n ~epsilon =
  let model = Lazy.force model in
  let mechanism =
    match epsilon with
    | None -> Query.Mechanism.identity_release
    | Some eps -> Dp.Synthetic.mechanism ~epsilon:eps ~domains:(domains ()) ~rows:n
  in
  let outcome =
    Pso.Game.run ~pool rng ~model ~n ~mechanism
      ~attacker:(Pso.Attacker.release_row ())
      ~weight_bound:(Pso.Isolation.negligible_bound ~n ~c:2.)
      ~trials
  in
  (* Utility on one fitted generator (not defined for the verbatim release:
     report 0 error there). *)
  let tv =
    match epsilon with
    | None -> 0.
    | Some eps ->
      let table = Dataset.Model.sample_table rng model n in
      let g = Dp.Synthetic.fit rng ~epsilon:eps ~domains:(domains ()) table in
      Dp.Synthetic.total_variation_error g model
  in
  {
    mechanism = mechanism.Query.Mechanism.name;
    epsilon;
    success = outcome.Pso.Game.success_rate;
    isolations =
      float_of_int outcome.Pso.Game.isolations /. float_of_int outcome.Pso.Game.trials;
    marginal_tv_error = tv;
  }

let run ?pool ~scale rng =
  let pool = match pool with Some p -> p | None -> Parallel.Pool.default () in
  let trials, n, epsilons =
    match scale with
    | Common.Quick -> (80, 150, [ 1. ])
    | Common.Full -> (300, 300, [ 0.1; 1.; 10. ])
  in
  measure ~pool rng ~trials ~n ~epsilon:None
  :: List.map (fun eps -> measure ~pool rng ~trials ~n ~epsilon:(Some eps)) epsilons

let print ~scale rng fmt =
  Common.banner fmt ~id:"E13"
    ~title:"Synthetic data and singling out (extension)"
    ~claim:
      "A verbatim table release is singled out by quoting any released row; \
       DP synthetic data of the same shape is post-processing of eps-DP \
       histograms and prevents predicate singling out (Theorems 2.6/2.9), \
       at a marginal-accuracy cost that shrinks with eps.";
  let rows = run ~scale rng in
  Common.table fmt
    ~header:[ "release"; "epsilon"; "PSO success"; "isolations"; "marginal TV err" ]
    (List.map
       (fun r ->
         [
           r.mechanism;
           (match r.epsilon with None -> "-" | Some e -> Common.g3 e);
           Common.pct r.success;
           Common.pct r.isolations;
           Printf.sprintf "%.3f" r.marginal_tv_error;
         ])
       rows)

let kernel rng =
  ignore
    (measure ~pool:(Parallel.Pool.default ()) rng ~trials:10 ~n:100
       ~epsilon:(Some 1.))
