(** A reusable domain pool for coarse-grained data parallelism.

    Built directly on OCaml 5 [Domain]s (no external dependency): a pool
    of [jobs - 1] worker domains blocked on a task queue, with the calling
    domain always participating as the [jobs]-th worker. Work items are
    claimed dynamically from a shared counter, so unevenly sized items
    balance across workers; results are stored by index and combined in
    index order on the caller, which makes every operation's result
    independent of the number of workers.

    Intended granularity is one Monte Carlo trial (or one experiment row)
    per index — milliseconds and up. The per-index overhead (an atomic
    increment and a mutex-guarded counter bump) makes it a poor fit for
    microsecond-scale items.

    Nested bulk operations are safe but degrade: the initiating domain
    always participates in its own operation's work loop, so an inner
    call issued from a worker (or from the caller while an outer
    operation is in flight) completes even when every other worker is
    busy — it just runs with less help, down to sequentially. *)

type t

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count () - 1] with a floor of 1: one slot
    is left for the calling domain, and a machine with unknown topology
    still gets a working sequential pool. *)

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains ([jobs] defaults to
    {!recommended_jobs}). [jobs = 1] spawns nothing: every operation runs
    sequentially on the caller. Raises [Invalid_argument] if [jobs < 1]. *)

val jobs : t -> int
(** Total parallelism, counting the calling domain. *)

val shutdown : t -> unit
(** Stop and join all workers. Idempotent. Operations on a pool after
    [shutdown] run on the caller alone. *)

val parallel_init_array : t -> int -> (int -> 'a) -> 'a array
(** [parallel_init_array pool n f] is [[| f 0; ...; f (n-1) |]] with the
    calls distributed over the pool. [f] must depend only on its index
    (and thread-safe captured state); with that contract the result is
    identical at every [jobs] count. If any call raises, the first
    recorded exception is re-raised on the caller after all claimed work
    finishes. Raises [Invalid_argument] if [n < 0]. *)

val map_reduce :
  t -> n:int -> map:(int -> 'a) -> combine:('b -> 'a -> 'b) -> init:'b -> 'b
(** [map_reduce pool ~n ~map ~combine ~init] computes [map] over
    [0..n-1] in parallel and folds the results {e in index order on the
    caller}: byte-identical at every [jobs] count even when [combine] is
    only approximately associative (floating-point accumulation). *)

val set_default_jobs : int -> unit
(** Configure the parallelism of {!default}. If a default pool already
    exists at a different size it is shut down and recreated lazily.
    Raises [Invalid_argument] if the argument is [< 1]. *)

val default : unit -> t
(** The process-wide shared pool, created on first use with the size from
    {!set_default_jobs} (or {!recommended_jobs}) and shut down at exit.
    This is what [Pso.Game.run] and the experiment harness use when not
    handed an explicit pool. *)
