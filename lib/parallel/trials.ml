let split_rngs rng trials =
  (* One child generator per trial, derived sequentially on the caller so
     the parent stream advances by exactly [trials] splits no matter how
     many workers later consume the children. *)
  let rngs = Array.make trials rng in
  for i = 0 to trials - 1 do
    rngs.(i) <- Prob.Rng.split rng
  done;
  rngs

let c_trials = Obs.Counter.make "trials.total"

let map pool rng ~trials f =
  if trials < 0 then invalid_arg "Trials.map: negative trial count";
  Obs.Counter.add c_trials trials;
  Obs.with_span
    ~argsf:(fun () -> [ ("trials", string_of_int trials) ])
    "trials.map"
    (fun () ->
      let rngs = split_rngs rng trials in
      (* Each trial runs under ledger coordinates (region, i): the region
         id is allocated by the (sequential) caller, so ledger events are
         ordered identically at every --jobs. *)
      let region = Obs.Ledger.enter_region () in
      Fun.protect
        ~finally:(fun () -> Obs.Ledger.exit_region region)
        (fun () ->
          Pool.parallel_init_array pool trials (fun i ->
              Obs.Ledger.with_task ~region ~task:i (fun () -> f rngs.(i) i))))

let fold pool rng ~trials ~init ~combine f =
  Array.fold_left combine init (map pool rng ~trials f)
