let split_rngs rng trials =
  (* One child generator per trial, derived sequentially on the caller so
     the parent stream advances by exactly [trials] splits no matter how
     many workers later consume the children. *)
  let rngs = Array.make trials rng in
  for i = 0 to trials - 1 do
    rngs.(i) <- Prob.Rng.split rng
  done;
  rngs

let c_trials = Obs.Counter.make "trials.total"

let map pool rng ~trials f =
  if trials < 0 then invalid_arg "Trials.map: negative trial count";
  Obs.Counter.add c_trials trials;
  Obs.with_span
    ~argsf:(fun () -> [ ("trials", string_of_int trials) ])
    "trials.map"
    (fun () ->
      let rngs = split_rngs rng trials in
      Pool.parallel_init_array pool trials (fun i -> f rngs.(i) i))

let fold pool rng ~trials ~init ~combine f =
  Array.fold_left combine init (map pool rng ~trials f)
