type task = unit -> unit

type t = {
  jobs : int;
  queue : task Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let recommended_jobs () = max 1 (Domain.recommended_domain_count () - 1)

let jobs t = t.jobs

let worker_loop pool =
  let rec take () =
    Mutex.lock pool.mutex;
    let rec wait () =
      if pool.stop then begin
        Mutex.unlock pool.mutex;
        None
      end
      else if Queue.is_empty pool.queue then begin
        Condition.wait pool.nonempty pool.mutex;
        wait ()
      end
      else begin
        let task = Queue.pop pool.queue in
        Mutex.unlock pool.mutex;
        Some task
      end
    in
    match wait () with
    | None -> ()
    | Some task ->
      (* Tasks are wrapped by the submitter and never raise. *)
      task ();
      take ()
  in
  take ()

let create ?jobs () =
  let jobs = match jobs with Some j -> j | None -> recommended_jobs () in
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let pool =
    {
      jobs;
      queue = Queue.create ();
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      stop = false;
      workers = [];
    }
  in
  pool.workers <-
    List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let shutdown pool =
  let workers =
    Mutex.lock pool.mutex;
    let ws = pool.workers in
    pool.stop <- true;
    pool.workers <- [];
    Condition.broadcast pool.nonempty;
    Mutex.unlock pool.mutex;
    ws
  in
  List.iter Domain.join workers

let submit pool task =
  Mutex.lock pool.mutex;
  Queue.push task pool.queue;
  Condition.signal pool.nonempty;
  Mutex.unlock pool.mutex

(* Sequential fallback with a guaranteed 0..n-1 evaluation order (Array.init
   leaves the order unspecified). *)
let sequential_init n f =
  if n = 0 then [||]
  else begin
    let out = Array.make n (f 0) in
    for i = 1 to n - 1 do
      out.(i) <- f i
    done;
    out
  end

(* Telemetry: [pool.items] is a deterministic logical count (bumped inside
   item execution, so the finish-mutex handshake orders every increment
   before the caller returns); [pool.items_per_steal] and the span layout
   depend on scheduling and are flagged as timing data. *)
let c_regions = Obs.Counter.make "pool.regions"

let c_items = Obs.Counter.make "pool.items"

let h_items_per_steal = Obs.Histogram.make ~timing:true "pool.items_per_steal"

(* Every item runs bracketed as a Timeline snapshot unit: a periodic
   capture drains in-flight items at these boundaries, so it never
   observes a half-executed item's metric writes. Unconditional (not
   gated on [Obs.enabled]) so begin/end pairing survives mid-region
   enable/disable toggles; the cost is two atomic ops per item. *)
let run_item f i =
  Obs.Timeline.item_begin ();
  Fun.protect ~finally:Obs.Timeline.item_end (fun () ->
      let v = f i in
      Obs.Counter.incr c_items;
      v)

let parallel_init_array pool n f =
  if n < 0 then invalid_arg "Pool.parallel_init_array: negative length";
  if n = 0 then [||]
  else if pool.jobs = 1 || n = 1 then begin
    Obs.Counter.incr c_regions;
    let progress = Obs.Progress.start ~total:n () in
    let out =
      Obs.with_span
        ~argsf:(fun () -> [ ("items", string_of_int n) ])
        "pool.region"
        (fun () ->
          sequential_init n (fun i ->
              let v = run_item f i in
              Obs.Progress.tick progress ~done_:(i + 1);
              v))
    in
    Obs.Progress.finish progress ~done_:n;
    out
  end
  else begin
    Obs.Counter.incr c_regions;
    let progress = Obs.Progress.start ~total:n () in
    let slots = Array.make n None in
    let next = Atomic.make 0 in
    let finish_mutex = Mutex.create () in
    let finished = Condition.create () in
    let completed = ref 0 in
    let error = ref None in
    (* Dynamic index-stealing: every participant (the caller plus up to
       jobs-1 pool workers) claims indices from a shared counter, so
       uneven per-index costs balance automatically. Results land in
       their index's slot, which keeps the output independent of how
       work was interleaved. *)
    let steal ~caller () =
      let mine = ref 0 in
      Obs.with_span
        ~argsf:(fun () -> [ ("items", string_of_int !mine) ])
        "pool.steal"
        (fun () ->
          let rec loop () =
            let i = Atomic.fetch_and_add next 1 in
            if i < n then begin
              (match run_item f i with
              | v -> slots.(i) <- Some v
              | exception e ->
                let bt = Printexc.get_raw_backtrace () in
                Mutex.lock finish_mutex;
                if !error = None then error := Some (e, bt);
                Mutex.unlock finish_mutex);
              incr mine;
              Mutex.lock finish_mutex;
              incr completed;
              if !completed = n then Condition.signal finished;
              Mutex.unlock finish_mutex;
              if caller then Obs.Progress.tick progress ~done_:!completed;
              loop ()
            end
          in
          loop ());
      Obs.Histogram.observe h_items_per_steal (float_of_int !mine)
    in
    let helpers = min (pool.jobs - 1) (n - 1) in
    Obs.with_span
      ~argsf:(fun () -> [ ("items", string_of_int n) ])
      "pool.region"
      (fun () ->
        for _ = 1 to helpers do
          submit pool (steal ~caller:false)
        done;
        steal ~caller:true ();
        Mutex.lock finish_mutex;
        while !completed < n do
          Condition.wait finished finish_mutex
        done;
        Mutex.unlock finish_mutex);
    Obs.Progress.finish progress ~done_:n;
    (match !error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.map (function Some v -> v | None -> assert false) slots
  end

let map_reduce pool ~n ~map ~combine ~init =
  (* Results are always folded in index order on the caller, so the value
     is byte-identical at every jobs count even when [combine] is not
     exactly associative (floating-point sums). *)
  Array.fold_left combine init (parallel_init_array pool n map)

(* The process-wide default pool, configured once by the CLI layer and
   created lazily on first use. *)

let default_pool = ref None

let requested_default_jobs = ref None

let at_exit_registered = ref false

let set_default_jobs j =
  if j < 1 then invalid_arg "Pool.set_default_jobs: jobs must be >= 1";
  requested_default_jobs := Some j;
  match !default_pool with
  | Some p when p.jobs <> j ->
    default_pool := None;
    shutdown p
  | Some _ | None -> ()

let default () =
  match !default_pool with
  | Some p -> p
  | None ->
    let jobs =
      match !requested_default_jobs with
      | Some j -> j
      | None -> recommended_jobs ()
    in
    let p = create ~jobs () in
    default_pool := Some p;
    if not !at_exit_registered then begin
      at_exit_registered := true;
      at_exit (fun () ->
          match !default_pool with
          | Some p ->
            default_pool := None;
            shutdown p
          | None -> ())
    end;
    p
