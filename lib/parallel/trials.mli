(** Deterministic Monte Carlo fan-out: N trials over K workers.

    The determinism contract — the centerpiece of the design — is that
    randomness is split {e per trial}, not per worker. [map pool rng
    ~trials f] derives [trials] child generators from [rng] by sequential
    {!Prob.Rng.split} on the calling domain, then evaluates [f child_i i]
    with the trials distributed over the pool. Consequences:

    - the parent [rng] advances by exactly [trials] splits, so everything
      sampled after the call sees the same stream at every [jobs] count;
    - trial [i] always receives the same child generator, so per-trial
      results are identical at every [jobs] count;
    - {!fold} combines in trial order on the caller, so even
      floating-point accumulations are byte-identical at [jobs = 1] and
      [jobs = K].

    [f] must draw randomness only from the child generator it is given. *)

val map :
  Pool.t -> Prob.Rng.t -> trials:int -> (Prob.Rng.t -> int -> 'a) -> 'a array
(** [map pool rng ~trials f] is [[| f r0 0; ...; f r_{trials-1} (trials-1) |]]
    where [r_i] is the [i]-th child split off [rng]. Raises
    [Invalid_argument] if [trials < 0]. *)

val fold :
  Pool.t ->
  Prob.Rng.t ->
  trials:int ->
  init:'b ->
  combine:('b -> 'a -> 'b) ->
  (Prob.Rng.t -> int -> 'a) ->
  'b
(** [fold] is [map] followed by an in-order [Array.fold_left] on the
    caller. *)
