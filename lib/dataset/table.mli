(** In-memory tables: a schema plus an array of rows.

    A table is the paper's dataset [x = (x_1, ..., x_n) ∈ X^n]; row order is
    meaningful only as storage — the formalization explicitly rules out
    isolation "by position", and nothing in the attack code depends on it. *)

type row = Value.t array

type t

val make : Schema.t -> row array -> t
(** Validates that every row has the schema's arity and every value matches
    its attribute's kind (or is [Null]). Rows are not copied; treat them as
    immutable after construction. Raises [Invalid_argument] on violations. *)

val schema : t -> Schema.t

val nrows : t -> int

val id : t -> int
(** A process-unique generation id. Every table — including every derived
    table ([filter], [select], [append], [project], [map_rows]) — gets a
    fresh id, so caches keyed by [(id, key)] are invalidated by
    construction when the table changes. *)

val row : t -> int -> row

val rows : t -> row array
(** The underlying storage (not a copy). *)

val value : t -> int -> string -> Value.t
(** [value t i name] is row [i]'s value for the named attribute. *)

val project : t -> string list -> t
(** Column subset/reorder. *)

val filter : (row -> bool) -> t -> t

val count : (row -> bool) -> t -> int

val select : t -> int array -> t
(** Row subset by indices (rows shared, not copied). *)

val append : t -> t -> t
(** Raises [Invalid_argument] if the schemas differ. *)

val group_by : t -> string list -> (Value.t list * int array) list
(** Partition row indices by their values on the named attributes; group keys
    are in first-appearance order. *)

val distinct : t -> string list -> int
(** Number of distinct value combinations on the named attributes. *)

val map_rows : (row -> row) -> t -> t
(** Applies a row transformation; the result is re-validated against the
    schema. *)

val fold : ('acc -> row -> 'acc) -> 'acc -> t -> 'acc

val iter : (int -> row -> unit) -> t -> unit

val pp : ?max_rows:int -> Format.formatter -> t -> unit
(** Fixed-width textual rendering (for examples and reports). *)

(** {1 Columnar view}

    Per-attribute dictionary-encoded columns for the compiled query engine:
    categorical scans compare int codes, numeric range scans read a flat
    float array, and per-value predicates need evaluating only once per
    distinct value instead of once per row. *)

type column = {
  codes : int array;  (** dictionary code per row (dense, first-appearance) *)
  dict : Value.t array;  (** code -> value *)
  code_index : int Map.Make(Value).t;  (** value -> code ({!Value.compare}) *)
  floats : float array;  (** [Value.to_float] per row; [nan] when absent *)
}

val columns : t -> column array
(** The columnar view, one column per schema attribute in schema order.
    Built lazily on first use and cached on the table; safe to call from
    several domains (an idempotent race at worst). *)

val code_of : column -> Value.t -> int option
(** Dictionary lookup under {!Value.compare} equality — exactly the
    equality [Predicate] atoms use, so a value absent from the dictionary
    matches no row. *)
