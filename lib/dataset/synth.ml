let first_names =
  [| "Ada"; "Alan"; "Barbara"; "Carl"; "Dana"; "Edsger"; "Frances"; "Grace";
     "Hedy"; "Ivan"; "Joan"; "Kurt"; "Lynn"; "Marvin"; "Niklaus"; "Olga";
     "Peter"; "Quinn"; "Radia"; "Shafi"; "Tim"; "Ursula"; "Vint"; "Whitfield";
     "Xiao"; "Yael"; "Zvi"; "Adele"; "Boris"; "Clara"; "Dennis"; "Erna";
     "Fred"; "Gita"; "Haim"; "Ingrid"; "Jack"; "Karen"; "Leslie"; "Miriam" |]

let last_names =
  [| "Lovelace"; "Turing"; "Liskov"; "Sagan"; "Scott"; "Dijkstra"; "Allen";
     "Hopper"; "Lamarr"; "Sutherland"; "Clarke"; "Goedel"; "Conway";
     "Minsky"; "Wirth"; "Taussky"; "Naur"; "Shannon"; "Perlman"; "Goldwasser";
     "Lee"; "Franklin"; "Cerf"; "Diffie"; "Ling"; "Tauman"; "Galil";
     "Goldstine"; "Delone"; "Rockmore"; "Ritchie"; "Hoover"; "Brooks";
     "Rani"; "Kedem"; "Daubechies"; "Kilby"; "Jones"; "Lamport"; "Balaban" |]

let diseases_by_group =
  [
    ("PULM", [ "COVID"; "CF"; "Asthma"; "COPD"; "Pneumonia" ]);
    ("CARD", [ "CAD"; "Arrhythmia"; "Hypertension"; "CHF" ]);
    ("META", [ "Diabetes"; "Obesity"; "Thyroiditis" ]);
    ("ONC", [ "Lymphoma"; "Melanoma"; "Leukemia" ]);
  ]

let disease_taxonomy =
  Hierarchy.Node
    ( "ANY-DX",
      List.map
        (fun (group, names) ->
          Hierarchy.Node
            (group, List.map (fun n -> Hierarchy.Leaf (Value.String n)) names))
        diseases_by_group )

let disease_hierarchy = Hierarchy.categorical ~name:"disease" disease_taxonomy

let demographic_schema =
  Schema.make
    [
      { Schema.name = "id"; kind = Value.Kint; role = Schema.Identifier };
      { Schema.name = "name"; kind = Value.Kstring; role = Schema.Identifier };
      { Schema.name = "zip"; kind = Value.Kstring; role = Schema.Quasi_identifier };
      { Schema.name = "birth_date"; kind = Value.Kdate; role = Schema.Quasi_identifier };
      { Schema.name = "sex"; kind = Value.Kstring; role = Schema.Quasi_identifier };
      { Schema.name = "disease"; kind = Value.Kstring; role = Schema.Sensitive };
    ]

let zip_codes count =
  (* Deterministic, distinct 5-digit codes. *)
  List.init count (fun i -> Printf.sprintf "%05d" (10000 + (i * 137 mod 89000)))

let zip_distribution count =
  let codes = zip_codes count in
  Prob.Distribution.of_weights
    (List.mapi
       (fun i code ->
         (Value.String code, 1. /. Float.pow (float_of_int (i + 1)) 0.8))
       codes)

let birth_date_values =
  (* 1930-1999, 12 months, 28 days: 23 520 distinct dates. *)
  List.concat_map
    (fun y ->
      List.concat_map
        (fun m ->
          List.init 28 (fun d ->
              Value.make_date ~year:(1930 + y) ~month:(m + 1) ~day:(d + 1)))
        (List.init 12 Fun.id))
    (List.init 70 Fun.id)

let birth_date_distribution = Prob.Distribution.uniform birth_date_values

let sex_distribution =
  Prob.Distribution.of_weights [ (Value.String "F", 0.51); (Value.String "M", 0.49) ]

let disease_distribution =
  let all = List.concat_map snd diseases_by_group in
  Prob.Distribution.of_weights
    (List.mapi
       (fun i n ->
         (Value.String n, 1. /. Float.pow (float_of_int (i + 1)) 0.5))
       all)

let gic_model ?(zips = 50) () =
  let schema =
    Schema.make
      [
        { Schema.name = "zip"; kind = Value.Kstring; role = Schema.Quasi_identifier };
        { Schema.name = "birth_date"; kind = Value.Kdate; role = Schema.Quasi_identifier };
        { Schema.name = "sex"; kind = Value.Kstring; role = Schema.Quasi_identifier };
        { Schema.name = "disease"; kind = Value.Kstring; role = Schema.Sensitive };
      ]
  in
  Model.make schema
    [
      ("zip", zip_distribution zips);
      ("birth_date", birth_date_distribution);
      ("sex", sex_distribution);
      ("disease", disease_distribution);
    ]

let population rng ~n ?(zips = 50) () =
  let model = gic_model ~zips () in
  let rows =
    Array.init n (fun i ->
        let qi = Model.sample_row rng model in
        let first = first_names.(Prob.Rng.int rng (Array.length first_names)) in
        let last = last_names.(Prob.Rng.int rng (Array.length last_names)) in
        let name = Printf.sprintf "%s %s #%d" first last i in
        Array.append [| Value.Int i; Value.String name |] qi)
  in
  Table.make demographic_schema rows

let gic_release table =
  let keep =
    Schema.attributes (Table.schema table)
    |> Array.to_list
    |> List.filter (fun a -> a.Schema.role <> Schema.Identifier)
    |> List.map (fun a -> a.Schema.name)
  in
  Table.project table keep

let voter_list rng table ~coverage =
  if coverage < 0. || coverage > 1. then invalid_arg "Synth.voter_list: coverage";
  let projected = Table.project table [ "name"; "zip"; "birth_date"; "sex" ] in
  let kept =
    Array.of_list
      (List.filter
         (fun _ -> Prob.Sampler.bernoulli rng ~p:coverage)
         (List.init (Table.nrows projected) Fun.id))
  in
  Table.select projected kept

let pso_model ~attributes ~values_per_attribute =
  if attributes < 1 then invalid_arg "Synth.pso_model: attributes";
  if values_per_attribute < 2 then invalid_arg "Synth.pso_model: values";
  let attr i =
    let role =
      if i = 0 then Schema.Quasi_identifier
      else if i = attributes - 1 then Schema.Sensitive
      else Schema.Quasi_identifier
    in
    { Schema.name = Printf.sprintf "a%d" i; kind = Value.Kint; role }
  in
  let schema = Schema.make (List.init attributes attr) in
  let dist = Prob.Distribution.uniform (List.init values_per_attribute (fun v -> Value.Int v)) in
  Model.make schema
    (List.init attributes (fun i -> (Printf.sprintf "a%d" i, dist)))

let birthday_model ~days =
  let schema =
    Schema.make
      [ { Schema.name = "birthday"; kind = Value.Kint; role = Schema.Quasi_identifier } ]
  in
  Model.make schema
    [ ("birthday", Prob.Distribution.uniform (List.init days (fun d -> Value.Int d))) ]

let kanon_pso_model ~qis ~retained ~domain =
  if qis < 1 || retained < 0 then invalid_arg "Synth.kanon_pso_model";
  if domain < 2 then invalid_arg "Synth.kanon_pso_model: domain";
  let attr role prefix i =
    { Schema.name = Printf.sprintf "%s%d" prefix i; kind = Value.Kint; role }
  in
  let attrs =
    List.init qis (attr Schema.Quasi_identifier "q")
    @ List.init retained (fun i ->
          (* The first retained attribute doubles as the sensitive payload so
             l-diversity / t-closeness checks have something to measure. *)
          attr (if i = 0 then Schema.Sensitive else Schema.Insensitive) "r" i)
  in
  let schema = Schema.make attrs in
  let dist = Prob.Distribution.uniform (List.init domain (fun v -> Value.Int v)) in
  Model.make schema
    (List.map (fun a -> (a.Schema.name, dist)) attrs)

type rating = { user : int; movie : int; stars : int; day : int }

let ratings rng ~users ~movies ~ratings_per_user ?(skew = 1.0) () =
  if users <= 0 || movies <= 0 || ratings_per_user <= 0 then
    invalid_arg "Synth.ratings";
  let popularity = Prob.Distribution.zipf ~skew movies in
  let base_score = Array.init movies (fun _ -> 1 + Prob.Rng.int rng 5) in
  let out = ref [] in
  for user = 0 to users - 1 do
    let seen = Hashtbl.create ratings_per_user in
    let count = max 1 (ratings_per_user + Prob.Rng.int_in rng (-2) 2) in
    let attempts = ref 0 in
    while Hashtbl.length seen < count && !attempts < count * 20 do
      incr attempts;
      let movie = Prob.Distribution.sample rng popularity in
      if not (Hashtbl.mem seen movie) then begin
        Hashtbl.replace seen movie ();
        let jitter = Prob.Rng.int_in rng (-1) 1 in
        let stars = min 5 (max 1 (base_score.(movie) + jitter)) in
        let day = Prob.Rng.int rng 730 in
        out := { user; movie; stars; day } :: !out
      end
    done
  done;
  Array.of_list (List.rev !out)

let ratings_by_user ratings ~users =
  let buckets = Array.make users [] in
  Array.iter (fun r -> buckets.(r.user) <- r :: buckets.(r.user)) ratings;
  Array.map (fun l -> Array.of_list (List.rev l)) buckets

type census_person = {
  block : int;
  sex : int;
  age : int;
  race : int;
  ethnicity : int;
  person_name : string;
}

let census_population rng ~blocks ~mean_block_size =
  if blocks <= 0 || mean_block_size <= 0 then invalid_arg "Synth.census_population";
  let race_dist =
    Prob.Distribution.of_weights
      [ (0, 0.60); (1, 0.13); (2, 0.06); (3, 0.09); (4, 0.03); (5, 0.09) ]
  in
  let out = ref [] in
  let serial = ref 0 in
  for block = 0 to blocks - 1 do
    let size = 1 + Prob.Sampler.geometric rng ~p:(1. /. float_of_int mean_block_size) in
    (* Real census blocks are strongly segregated by race/ethnicity — the
       homogeneity that makes marginal tables nearly determine the joint
       distribution (and reconstruction so sharp). *)
    let dominant_race = Prob.Distribution.sample rng race_dist in
    let block_eth_rate = if Prob.Sampler.bernoulli rng ~p:0.2 then 0.6 else 0.05 in
    for _ = 1 to size do
      let first = first_names.(Prob.Rng.int rng (Array.length first_names)) in
      let last = last_names.(Prob.Rng.int rng (Array.length last_names)) in
      let person =
        {
          block;
          sex = Prob.Rng.int rng 2;
          age = Prob.Rng.int rng 100;
          race =
            (if Prob.Sampler.bernoulli rng ~p:0.85 then dominant_race
             else Prob.Distribution.sample rng race_dist);
          ethnicity =
            (if Prob.Sampler.bernoulli rng ~p:block_eth_rate then 1 else 0);
          person_name = Printf.sprintf "%s %s #%d" first last !serial;
        }
      in
      incr serial;
      out := person :: !out
    done
  done;
  Array.of_list (List.rev !out)

let census_race_dist =
  Prob.Distribution.of_weights
    [ (0, 0.60); (1, 0.13); (2, 0.06); (3, 0.09); (4, 0.03); (5, 0.09) ]

let census_block rng ~block ~mean_block_size =
  if block < 0 || mean_block_size <= 0 then invalid_arg "Synth.census_block";
  let size = 1 + Prob.Sampler.geometric rng ~p:(1. /. float_of_int mean_block_size) in
  let dominant_race = Prob.Distribution.sample rng census_race_dist in
  let block_eth_rate = if Prob.Sampler.bernoulli rng ~p:0.2 then 0.6 else 0.05 in
  Array.init size (fun i ->
      let first = first_names.(Prob.Rng.int rng (Array.length first_names)) in
      let last = last_names.(Prob.Rng.int rng (Array.length last_names)) in
      let sex = Prob.Rng.int rng 2 in
      let age = Prob.Rng.int rng 100 in
      let race =
        if Prob.Sampler.bernoulli rng ~p:0.85 then dominant_race
        else Prob.Distribution.sample rng census_race_dist
      in
      let ethnicity =
        if Prob.Sampler.bernoulli rng ~p:block_eth_rate then 1 else 0
      in
      {
        block;
        sex;
        age;
        race;
        ethnicity;
        person_name = Printf.sprintf "%s %s #%d-%d" first last block i;
      })

type genotypes = {
  frequencies : float array;
  pool : bool array array;
  reference : bool array array;
  outsiders : bool array array;
}

let genotype_study rng ~people ~snps ?(reference_size = 200) () =
  if people <= 0 || snps <= 0 then invalid_arg "Synth.genotype_study";
  let frequencies =
    Array.init snps (fun _ -> 0.05 +. (0.9 *. Prob.Rng.uniform rng))
  in
  let person () = Array.map (fun f -> Prob.Sampler.bernoulli rng ~p:f) frequencies in
  {
    frequencies;
    pool = Array.init people (fun _ -> person ());
    reference = Array.init reference_size (fun _ -> person ());
    outsiders = Array.init people (fun _ -> person ());
  }
