type row = Value.t array

module Vmap = Map.Make (Value)

(* One attribute of the columnar view. [codes] dictionary-encodes the rows'
   values (codes dense, first-appearance order); [dict] maps a code back to
   its value; [floats] is the numeric view ([Value.to_float], [nan] when the
   value has none) so range scans never touch boxed values. *)
type column = {
  codes : int array;
  dict : Value.t array;
  code_index : int Vmap.t;
  floats : float array;
}

type t = {
  schema : Schema.t;
  rows : row array;
  id : int;
  mutable cols : column array option;
}

(* Every table (including derived ones: filter, select, append, ...) gets a
   fresh generation id, so caches keyed by [id t] can never serve a bitset
   or digest column computed for different contents. *)
let next_id = Atomic.make 0

let create schema rows =
  { schema; rows; id = Atomic.fetch_and_add next_id 1; cols = None }

let validate schema rows =
  let arity = Schema.arity schema in
  Array.iteri
    (fun i r ->
      if Array.length r <> arity then
        invalid_arg (Printf.sprintf "Table.make: row %d has arity %d, expected %d"
                       i (Array.length r) arity);
      Array.iteri
        (fun j v ->
          match Value.kind_of v with
          | None -> ()
          | Some k ->
            let attr = Schema.attribute schema j in
            if k <> attr.Schema.kind then
              invalid_arg
                (Printf.sprintf "Table.make: row %d attribute %S: got %s, expected %s"
                   i attr.Schema.name (Value.kind_name k)
                   (Value.kind_name attr.Schema.kind)))
        r)
    rows

let make schema rows =
  validate schema rows;
  create schema rows

let schema t = t.schema

let nrows t = Array.length t.rows

let id t = t.id

let row t i = t.rows.(i)

let rows t = t.rows

let value t i name = t.rows.(i).(Schema.index_of t.schema name)

(* --- columnar view --- *)

let build_column rows j =
  let n = Array.length rows in
  let codes = Array.make n 0 in
  let floats = Array.make n Float.nan in
  let index = ref Vmap.empty in
  let dict = ref [] in
  let next = ref 0 in
  for i = 0 to n - 1 do
    let v = rows.(i).(j) in
    let code =
      match Vmap.find_opt v !index with
      | Some c -> c
      | None ->
        let c = !next in
        incr next;
        index := Vmap.add v c !index;
        dict := v :: !dict;
        c
    in
    codes.(i) <- code;
    (match Value.to_float v with Some f -> floats.(i) <- f | None -> ())
  done;
  {
    codes;
    dict = Array.of_list (List.rev !dict);
    code_index = !index;
    floats;
  }

let columns t =
  match t.cols with
  | Some c -> c
  | None ->
    (* Built from immutable rows, so a concurrent double-build is an
       idempotent race: both domains compute structurally identical columns
       and either write may win. Never mutated after publication. *)
    let c = Array.init (Schema.arity t.schema) (fun j -> build_column t.rows j) in
    t.cols <- Some c;
    c

let code_of col v = Vmap.find_opt v col.code_index

(* --- derived tables --- *)

let project t names =
  let schema = Schema.project t.schema names in
  let indices = List.map (Schema.index_of t.schema) names in
  let rows =
    Array.map (fun r -> Array.of_list (List.map (fun i -> r.(i)) indices)) t.rows
  in
  create schema rows

let filter p t =
  create t.schema (Array.of_list (List.filter p (Array.to_list t.rows)))

let count p t =
  Array.fold_left (fun acc r -> if p r then acc + 1 else acc) 0 t.rows

let select t indices = create t.schema (Array.map (fun i -> t.rows.(i)) indices)

let append a b =
  if not (Schema.equal a.schema b.schema) then
    invalid_arg "Table.append: schema mismatch";
  create a.schema (Array.append a.rows b.rows)

let group_by t names =
  let indices = List.map (Schema.index_of t.schema) names in
  let groups : (Value.t list, int list) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  Array.iteri
    (fun i r ->
      let key = List.map (fun j -> r.(j)) indices in
      match Hashtbl.find_opt groups key with
      | None ->
        Hashtbl.replace groups key [ i ];
        order := key :: !order
      | Some is -> Hashtbl.replace groups key (i :: is))
    t.rows;
  List.rev_map
    (fun key ->
      let is = Hashtbl.find groups key in
      (key, Array.of_list (List.rev is)))
    !order

let distinct t names = List.length (group_by t names)

let map_rows f t = make t.schema (Array.map f t.rows)

let fold f acc t = Array.fold_left f acc t.rows

let iter f t = Array.iteri f t.rows

let pp ?(max_rows = 20) fmt t =
  let attrs = Schema.attributes t.schema in
  let shown = min max_rows (nrows t) in
  let cells =
    Array.init (shown + 1) (fun i ->
        if i = 0 then Array.map (fun a -> a.Schema.name) attrs
        else Array.map Value.to_string t.rows.(i - 1))
  in
  let widths =
    Array.init (Array.length attrs) (fun j ->
        Array.fold_left (fun acc line -> max acc (String.length line.(j))) 0 cells)
  in
  Array.iteri
    (fun i line ->
      Array.iteri
        (fun j cell -> Format.fprintf fmt "%-*s  " widths.(j) cell)
        line;
      Format.pp_print_newline fmt ();
      if i = 0 then begin
        Array.iter
          (fun w -> Format.fprintf fmt "%s  " (String.make w '-'))
          widths;
        Format.pp_print_newline fmt ()
      end)
    cells;
  if nrows t > shown then
    Format.fprintf fmt "... (%d more rows)@." (nrows t - shown)
