(** Synthetic stand-ins for the datasets the paper's narrative relies on.

    We do not have the GIC medical records, the Cambridge voter registration,
    the Netflix Prize data, the 2010 Decennial Census microdata, or the
    commercial databases matched against them. Each generator below produces
    a synthetic dataset reproducing the statistical property the
    corresponding attack depends on (quasi-identifier uniqueness, rating
    sparsity and popularity skew, small-block marginal structure, allele
    frequency spread) — see DESIGN.md's substitution table. *)

(** {1 Demographic population (Sweeney / GIC story)} *)

val demographic_schema : Schema.t
(** Attributes: [id] (identifier), [name] (identifier), [zip] (QI, 5-char
    string), [birth_date] (QI), [sex] (QI, "M"/"F"), [disease] (sensitive). *)

val disease_taxonomy : Hierarchy.tree
(** Two-level taxonomy over the disease domain (pulmonary / cardiac /
    metabolic / oncological groups) — the paper's "PULM" toy example. *)

val disease_hierarchy : Hierarchy.t

val population : Prob.Rng.t -> n:int -> ?zips:int -> unit -> Table.t
(** An identified population of [n] people spread over [zips] ZIP codes with
    Zipf-like sizes, birth dates across 1930–1999, and diseases drawn from a
    skewed marginal. Names are unique. *)

val gic_release : Table.t -> Table.t
(** The GIC publication step: drop the [Identifier] columns, keep
    quasi-identifiers and sensitive data verbatim. *)

val voter_list : Prob.Rng.t -> Table.t -> coverage:float -> Table.t
(** The public auxiliary dataset: [name, zip, birth_date, sex] for a random
    [coverage] fraction of the population. *)

(** {1 Product models for the PSO game} *)

val pso_model : attributes:int -> values_per_attribute:int -> Model.t
(** A product data model with [attributes] uniform categorical attributes
    (the first marked quasi-identifier, one sensitive), universe size
    [values_per_attribute ^ attributes]. Used by the PSO game experiments
    where exact predicate weights are needed. *)

val birthday_model : days:int -> Model.t
(** The paper's Section 2.2 example: a single attribute uniform over [days]
    birthdays. *)

val kanon_pso_model : qis:int -> retained:int -> domain:int -> Model.t
(** The data model of the Theorem 2.10 experiments: [qis] quasi-identifier
    attributes plus [retained] insensitive attributes, each uniform over
    [domain] integer values. "Typical datasets include many more attributes
    than the toy example" — enough attributes make the equivalence-class
    predicates' weights negligible. *)

val gic_model : ?zips:int -> unit -> Model.t
(** Product approximation of the demographic population (quasi-identifiers +
    disease only), for weight computations against k-anonymized GIC-style
    releases. *)

(** {1 Sparse ratings (Netflix story)} *)

type rating = { user : int; movie : int; stars : int; day : int }

val ratings :
  Prob.Rng.t ->
  users:int ->
  movies:int ->
  ratings_per_user:int ->
  ?skew:float ->
  unit ->
  rating array
(** Each user rates ~[ratings_per_user] movies chosen from a Zipf([skew])
    popularity distribution (default skew [1.0]); stars are 1–5 correlated
    with a per-movie base score; days span ~2 years. *)

val ratings_by_user : rating array -> users:int -> rating array array

(** {1 Census blocks} *)

type census_person = {
  block : int;
  sex : int;  (** 0 = female, 1 = male *)
  age : int;  (** 0–99 *)
  race : int;  (** 0–5, skewed *)
  ethnicity : int;  (** 0/1 *)
  person_name : string;  (** ground-truth identity, never published *)
}

val census_population :
  Prob.Rng.t -> blocks:int -> mean_block_size:int -> census_person array
(** Block sizes are geometric-ish around the mean (minimum 1), mimicking the
    small-block regime where reconstruction bites hardest. *)

val census_block :
  Prob.Rng.t -> block:int -> mean_block_size:int -> census_person array
(** One block of the same statistical model as {!census_population}, drawn
    entirely from the given generator — the streaming building block for
    census-scale runs. Handing block [b] a dedicated child generator (split
    deterministically from a parent) makes a multi-million-person population
    generable block-by-block, in any order, with peak memory one block:
    {!Attacks.Census_scale} tabulates and solves each block and drops it.
    Names are unique within a run ([#block-index] suffix). *)

(** {1 Genotype aggregates (Homer story)} *)

type genotypes = {
  frequencies : float array;  (** population allele frequencies per SNP *)
  pool : bool array array;  (** the study pool, one bool array per person *)
  reference : bool array array;  (** an independent reference cohort *)
  outsiders : bool array array;  (** people in neither, for the null side *)
}

val genotype_study :
  Prob.Rng.t -> people:int -> snps:int -> ?reference_size:int -> unit -> genotypes
