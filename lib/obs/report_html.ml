(* The fused HTML run report: one self-contained static file stitching
   together whichever artifacts a run produced — the obs-timeline/v1
   series (drawn as inline SVG sparklines), the final obs-metrics/v1
   tables, the per-analyst ledger report, and a bench-kernels/v1
   trajectory across snapshots.

   Self-contained is a hard property, checked by tests: inline <style>,
   inline SVG, no <script>, no external URL anywhere — the file can be
   archived next to the run's JSON artifacts and opened offline years
   later. Sources are optional and independent; each present source
   renders one <section> with a stable id (timeline, metrics, ledger,
   bench) so CI can grep for the fused pieces. *)

let esc s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun ch ->
      match ch with
      | '&' -> Buffer.add_string b "&amp;"
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | '"' -> Buffer.add_string b "&quot;"
      | ch -> Buffer.add_char b ch)
    s;
  Buffer.contents b

let fnum v =
  if Float.is_nan v then "–"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.4g" v

let timing_mark timing = if timing then {|<span class="timing">timing</span>|} else ""

(* A 120x28 polyline over the series, y-flipped, flat-lining degenerate
   ranges at mid-height. Inline SVG keeps the file self-contained. *)
let sparkline values =
  match List.filter Float.is_finite values with
  | [] | [ _ ] -> {|<svg class="spark" viewBox="0 0 120 28"></svg>|}
  | vs ->
    let n = List.length vs in
    let lo = List.fold_left Float.min Float.infinity vs in
    let hi = List.fold_left Float.max Float.neg_infinity vs in
    let span = hi -. lo in
    let pts =
      List.mapi
        (fun i v ->
          let x = 120. *. float_of_int i /. float_of_int (n - 1) in
          let y =
            if span <= 0. then 14.
            else 26. -. (24. *. ((v -. lo) /. span))
          in
          Printf.sprintf "%.1f,%.1f" x y)
        vs
      |> String.concat " "
    in
    Printf.sprintf
      {|<svg class="spark" viewBox="0 0 120 28"><polyline fill="none" stroke="currentColor" stroke-width="1.5" points="%s"/></svg>|}
      pts

(* --- source accessors (all best-effort: a missing field renders as a
   gap, not an error — parse validity is the CLI's job) --- *)

let jstr name o = Option.bind (Json.member name o) Json.to_string_opt

let jnum name o = Option.bind (Json.member name o) Json.to_float

let jbool name o =
  match Json.member name o with Some (Json.Bool b) -> Some b | _ -> None

let jlist name o =
  Option.value ~default:[] (Option.bind (Json.member name o) Json.to_list)

(* --- timeline section --- *)

(* name -> (timing, per-snapshot value) series for one sample kind. *)
let series kind field snapshots =
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun snap ->
      List.iter
        (fun s ->
          match (jstr "name" s, jnum field s) with
          | Some name, Some v ->
            (match Hashtbl.find_opt tbl name with
            | Some (timing, values) -> Hashtbl.replace tbl name (timing, v :: values)
            | None ->
              order := name :: !order;
              let timing = Option.value ~default:false (jbool "timing" s) in
              Hashtbl.replace tbl name (timing, [ v ]))
          | _ -> ())
        (jlist kind snap))
    snapshots;
  List.rev_map
    (fun name ->
      let timing, values = Hashtbl.find tbl name in
      (name, timing, List.rev values))
    !order

let timeline_section b doc =
  let snapshots = jlist "snapshots" doc in
  let n = List.length snapshots in
  let span_s =
    match List.rev snapshots with
    | last :: _ -> Option.value ~default:0. (jnum "t_ns" last) /. 1e9
    | [] -> 0.
  in
  Buffer.add_string b
    (Printf.sprintf
       {|<section id="timeline"><h2>Timeline</h2><p>%d snapshot(s) over %.1f s (schema %s).</p><div class="cards">|}
       n span_s
       (esc (Option.value ~default:"?" (jstr "schema" doc))));
  let card (name, timing, values) =
    let last = match List.rev values with v :: _ -> v | [] -> nan in
    Buffer.add_string b
      (Printf.sprintf
         {|<div class="card"><div class="name">%s %s</div>%s<div class="value">%s</div></div>|}
         (esc name) (timing_mark timing) (sparkline values) (fnum last))
  in
  List.iter card (series "counters" "value" snapshots);
  List.iter card (series "gauges" "value" snapshots);
  List.iter card (series "sketches" "p95" snapshots);
  Buffer.add_string b "</div></section>\n"

(* --- metrics section --- *)

let table b ~caption ~head rows =
  Buffer.add_string b
    (Printf.sprintf {|<table><caption>%s</caption><tr>|} (esc caption));
  List.iter
    (fun h -> Buffer.add_string b (Printf.sprintf "<th>%s</th>" (esc h)))
    head;
  Buffer.add_string b "</tr>";
  List.iter
    (fun cells ->
      Buffer.add_string b "<tr>";
      List.iter
        (fun c -> Buffer.add_string b (Printf.sprintf "<td>%s</td>" c))
        cells;
      Buffer.add_string b "</tr>")
    rows;
  Buffer.add_string b "</table>\n"

let metrics_section b doc =
  Buffer.add_string b {|<section id="metrics"><h2>Metrics</h2>|};
  let name_cell o =
    esc (Option.value ~default:"?" (jstr "name" o))
    ^ " "
    ^ timing_mark (Option.value ~default:false (jbool "timing" o))
  in
  let counters =
    List.map
      (fun o -> [ name_cell o; fnum (Option.value ~default:nan (jnum "value" o)) ])
      (jlist "counters" doc)
  in
  if counters <> [] then
    table b ~caption:"Counters" ~head:[ "counter"; "value" ] counters;
  let gauges =
    List.map
      (fun o -> [ name_cell o; fnum (Option.value ~default:nan (jnum "value" o)) ])
      (jlist "gauges" doc)
  in
  if gauges <> [] then table b ~caption:"Gauges" ~head:[ "gauge"; "value" ] gauges;
  let sketches =
    List.map
      (fun o ->
        let f field = fnum (Option.value ~default:nan (jnum field o)) in
        [ name_cell o; f "count"; f "p50"; f "p95"; f "p99" ])
      (jlist "sketches" doc)
  in
  if sketches <> [] then
    table b ~caption:"Sketches"
      ~head:[ "sketch"; "count"; "p50"; "p95"; "p99" ]
      sketches;
  let hists =
    List.map
      (fun o ->
        [
          name_cell o;
          fnum (Option.value ~default:nan (jnum "count" o));
          string_of_int (List.length (jlist "buckets" o));
        ])
      (jlist "histograms" doc)
  in
  if hists <> [] then
    table b ~caption:"Histograms"
      ~head:[ "histogram"; "count"; "occupied buckets" ]
      hists;
  Buffer.add_string b "</section>\n"

(* --- ledger section --- *)

let ledger_section b (rows : Ledger.analyst_report list) =
  Buffer.add_string b {|<section id="ledger"><h2>Audit ledger</h2>|};
  let cells (r : Ledger.analyst_report) =
    let q p =
      if Sketch.is_empty r.Ledger.r_cost then "–"
      else fnum (Sketch.quantile r.Ledger.r_cost p)
    in
    [
      esc r.Ledger.r_analyst;
      esc r.Ledger.r_policy;
      string_of_int r.Ledger.r_queries;
      string_of_int r.Ledger.r_refusals;
      fnum r.Ledger.r_spent;
      (match r.Ledger.r_total with Some t -> fnum t | None -> "∞");
      (match r.Ledger.r_total with
      | Some t -> fnum (t -. r.Ledger.r_spent)
      | None -> "∞");
      q 0.5;
      q 0.95;
      q 0.99;
    ]
  in
  table b ~caption:"Per-analyst budget accounting"
    ~head:
      [
        "analyst"; "policy"; "queries"; "refusals"; "ε spent"; "ε budget";
        "ε left"; "cost p50"; "cost p95"; "cost p99";
      ]
    (List.map cells rows);
  Buffer.add_string b "</section>\n"

(* --- bench trajectory section --- *)

let bench_section b (snapshots : (string * Json.t) list) =
  Buffer.add_string b {|<section id="bench"><h2>Bench trajectory</h2>|};
  let kernels = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun (_, doc) ->
      List.iter
        (fun k ->
          match (jstr "name" k, jnum "ns_per_run" k) with
          | Some name, Some ns ->
            (match Hashtbl.find_opt kernels name with
            | Some values -> Hashtbl.replace kernels name (ns :: values)
            | None ->
              order := name :: !order;
              Hashtbl.replace kernels name [ ns ])
          | _ -> ())
        (jlist "kernels" doc))
    snapshots;
  Buffer.add_string b
    (Printf.sprintf "<p>%d snapshot(s): %s.</p>"
       (List.length snapshots)
       (esc (String.concat ", " (List.map fst snapshots))));
  let rows =
    List.rev_map
      (fun name ->
        let values = List.rev (Hashtbl.find kernels name) in
        let last = match List.rev values with v :: _ -> v | [] -> nan in
        [
          esc name;
          sparkline values;
          Printf.sprintf "%s us" (fnum (last /. 1e3));
        ])
      !order
  in
  table b ~caption:"ns/run per kernel across snapshots"
    ~head:[ "kernel"; "trajectory"; "latest" ]
    rows;
  Buffer.add_string b "</section>\n"

(* --- document --- *)

let style =
  {|body{font:14px/1.5 system-ui,sans-serif;margin:2rem auto;max-width:70rem;padding:0 1rem;color:#1a1a2e}
h1{font-size:1.4rem}h2{font-size:1.1rem;border-bottom:1px solid #ccc;padding-bottom:.2rem}
table{border-collapse:collapse;margin:1rem 0}caption{text-align:left;font-weight:600;margin-bottom:.3rem}
th,td{border:1px solid #ddd;padding:.25rem .6rem;text-align:right}th:first-child,td:first-child{text-align:left}
.cards{display:flex;flex-wrap:wrap;gap:.6rem}.card{border:1px solid #ddd;border-radius:4px;padding:.4rem .6rem;min-width:10rem}
.card .name{font-size:.8rem;color:#555}.card .value{font-weight:600}
.spark{display:block;width:120px;height:28px;color:#3656a8}
.timing{background:#fde8d8;color:#8a4b08;font-size:.7rem;padding:0 .3rem;border-radius:3px;vertical-align:middle}|}

let render ?timeline ?metrics ?ledger ?bench ~title () =
  let b = Buffer.create 16384 in
  Buffer.add_string b "<!doctype html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">";
  Buffer.add_string b (Printf.sprintf "<title>%s</title>" (esc title));
  Buffer.add_string b (Printf.sprintf "<style>%s</style></head><body>\n" style);
  Buffer.add_string b (Printf.sprintf "<h1>%s</h1>\n" (esc title));
  Option.iter (timeline_section b) timeline;
  Option.iter (metrics_section b) metrics;
  Option.iter (fun rows -> ledger_section b rows) ledger;
  (match bench with
  | Some ((_ :: _) as snaps) -> bench_section b snaps
  | Some [] | None -> ());
  Buffer.add_string b "</body></html>\n";
  Buffer.contents b
