(* Periodic snapshots of the whole metric surface, with per-interval
   deltas and rates, feeding the Prometheus exporter, the live --watch
   dashboard and the fused HTML run report.

   Two concerns live here and they are deliberately separated:

   - The *quiescence gate* makes a capture consistent. Metric collectors
     are plain (non-atomic) domain-local arrays; reading them while a
     worker is mid-item could observe a torn view (counter A bumped,
     counter B not yet). The pool brackets every work item with
     [item_begin]/[item_end]; [capture] waits until no item is in
     flight before aggregating. All ordering goes through SC atomics
     ([active], [capturing]), so a worker's plain writes inside an item
     happen-before the capturer's reads: the capture sees whole items
     only. Items are short (one trial / one chunk), so the gate stalls
     the pool for at most one item's tail, and workers that arrive while
     a capture is draining back off and retry instead of deadlocking.

   - The *ticker* is a dedicated domain that sleeps in short chunks (so
     [stop] is responsive) and calls [capture] on each period boundary.
     It records no metrics itself, so it never allocates a collector and
     never appears in the domains report.

   Determinism contract: the timeline as a whole is timing-class — how
   many ticks land, and where, depends on wall-clock. But the *final*
   capture (taken after the workload completes, with the ticker stopped)
   aggregates exactly the same integer state as [Metric.snapshot], so
   its [timing = false] entries are byte-identical at every --jobs; with
   no intermediate ticks its deltas equal its values and are equally
   deterministic. Exports carry [timing] on every sample so consumers
   can keep the two classes apart. *)

(* --- quiescence gate --- *)

let capturing = Atomic.make false

let active = Atomic.make 0

let gate_mutex = Mutex.create ()

let quiet = Condition.create () (* signalled: [active] may have reached 0 *)

let resumed = Condition.create () (* signalled: [capturing] went false *)

(* Per-domain item-nesting depth: only the outermost item of a nested
   parallel region holds the gate, so re-entry cannot self-deadlock. *)
let depth_key : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let rec enter () =
  Atomic.incr active;
  if Atomic.get capturing then begin
    (* A capture is draining the pool: back out (so the capturer can see
       zero), wait for it to finish, then retry. *)
    ignore (Atomic.fetch_and_add active (-1));
    Mutex.lock gate_mutex;
    Condition.broadcast quiet;
    while Atomic.get capturing do
      Condition.wait resumed gate_mutex
    done;
    Mutex.unlock gate_mutex;
    enter ()
  end

let item_begin () =
  let d = Domain.DLS.get depth_key in
  incr d;
  if !d = 1 then enter ()

let item_end () =
  let d = Domain.DLS.get depth_key in
  decr d;
  if !d = 0 then begin
    ignore (Atomic.fetch_and_add active (-1));
    if Atomic.get capturing then begin
      Mutex.lock gate_mutex;
      Condition.broadcast quiet;
      Mutex.unlock gate_mutex
    end
  end

(* Runs [f] with no work item in flight. Callers are serialized by
   [capture_mutex] below, so at most one capturer manipulates
   [capturing] at a time. When called from *inside* a work item (a
   metric hook capturing mid-region on the worker's own domain) the pool
   cannot drain — skip the gate rather than deadlock; the capture is
   then best-effort for other domains' in-flight items. *)
let with_quiescence f =
  if !(Domain.DLS.get depth_key) > 0 then f ()
  else begin
    Mutex.lock gate_mutex;
    Atomic.set capturing true;
    while Atomic.get active > 0 do
      Condition.wait quiet gate_mutex
    done;
    let finish () =
      Atomic.set capturing false;
      Condition.broadcast resumed;
      Mutex.unlock gate_mutex
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      finish ();
      Printexc.raise_with_backtrace e bt
  end

(* --- snapshot points --- *)

type csample = { c_name : string; c_timing : bool; c_value : int; c_delta : int }

type gsample = {
  g_name : string;
  g_timing : bool;
  g_value : float;
  g_delta : float;
}

type hsample = {
  ph_name : string;
  ph_timing : bool;
  ph_count : int;
  ph_delta : int;
}

type ssample = {
  ps_name : string;
  ps_timing : bool;
  ps_count : int;
  ps_p50 : float;
  ps_p95 : float;
  ps_p99 : float;
  ps_wcount : int; (* window (since previous point) *)
  ps_wp50 : float;
  ps_wp95 : float;
  ps_wp99 : float;
}

type point = {
  seq : int;
  t_ns : int64; (* since timeline start — timing-class by nature *)
  dt_ns : int64; (* since the previous point (= t_ns for the first) *)
  final : bool;
  p_counters : csample list; (* ascending name, like Metric.values *)
  p_gauges : gsample list;
  p_histograms : hsample list;
  p_sketches : ssample list;
}

(* --- timeline state (all under [capture_mutex]) --- *)

let capture_mutex = Mutex.create ()

let default_capacity = 512

let capacity = ref default_capacity

let ring : point Queue.t = Queue.create ()

let seq_next = ref 0

let t_start = ref 0L (* 0 = not started; set lazily by the first capture *)

let last_t = ref 0L

let cfg_jobs = ref 1

let cfg_period = ref 0L (* ns; informational, echoed into the export *)

(* Previous cumulative state, for deltas and window sketches. *)
let prev_counters : (string, int) Hashtbl.t = Hashtbl.create 64

let prev_gauges : (string, float) Hashtbl.t = Hashtbl.create 16

let prev_hists : (string, int) Hashtbl.t = Hashtbl.create 16

let prev_sketches : (string, Sketch.t) Hashtbl.t = Hashtbl.create 16

type subscriber = Metric.values -> point -> unit

let subscribers : subscriber list ref = ref []

let subscribe f =
  Mutex.lock capture_mutex;
  subscribers := f :: !subscribers;
  Mutex.unlock capture_mutex

let set_jobs j = cfg_jobs := max 1 j

let set_capacity n =
  Mutex.lock capture_mutex;
  capacity := max 2 n;
  while Queue.length ring > !capacity do
    ignore (Queue.pop ring)
  done;
  Mutex.unlock capture_mutex

let locked f =
  Mutex.lock capture_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock capture_mutex) f

let points () = locked (fun () -> List.of_seq (Queue.to_seq ring))

let last () = locked (fun () -> Queue.fold (fun _ p -> Some p) None ring)

let build_point ~final (v : Metric.values) =
  let now = Clock.now_ns () in
  if !t_start = 0L then t_start := now;
  let t_ns = Int64.sub now !t_start in
  let dt_ns = if Queue.is_empty ring then t_ns else Int64.sub t_ns !last_t in
  last_t := t_ns;
  let p_counters =
    List.map
      (fun ((m : Metric.meta), value) ->
        let before =
          Option.value ~default:0 (Hashtbl.find_opt prev_counters m.name)
        in
        Hashtbl.replace prev_counters m.name value;
        {
          c_name = m.name;
          c_timing = m.timing;
          c_value = value;
          c_delta = value - before;
        })
      v.Metric.v_counters
  in
  let p_gauges =
    List.map
      (fun ((m : Metric.meta), value) ->
        let before =
          Option.value ~default:0. (Hashtbl.find_opt prev_gauges m.name)
        in
        Hashtbl.replace prev_gauges m.name value;
        {
          g_name = m.name;
          g_timing = m.timing;
          g_value = value;
          g_delta = value -. before;
        })
      v.Metric.v_gauges
  in
  let p_histograms =
    List.map
      (fun ((m : Metric.meta), row) ->
        let count = Array.fold_left ( + ) 0 row in
        let before =
          Option.value ~default:0 (Hashtbl.find_opt prev_hists m.name)
        in
        Hashtbl.replace prev_hists m.name count;
        {
          ph_name = m.name;
          ph_timing = m.timing;
          ph_count = count;
          ph_delta = count - before;
        })
      v.Metric.v_histograms
  in
  let p_sketches =
    List.map
      (fun ((m : Metric.meta), sk) ->
        let window =
          match Hashtbl.find_opt prev_sketches m.name with
          | Some older -> Sketch.diff ~newer:sk ~older
          | None -> Sketch.copy sk
        in
        Hashtbl.replace prev_sketches m.name (Sketch.copy sk);
        {
          ps_name = m.name;
          ps_timing = m.timing;
          ps_count = Sketch.count sk;
          ps_p50 = Sketch.quantile sk 0.5;
          ps_p95 = Sketch.quantile sk 0.95;
          ps_p99 = Sketch.quantile sk 0.99;
          ps_wcount = Sketch.count window;
          ps_wp50 = Sketch.quantile window 0.5;
          ps_wp95 = Sketch.quantile window 0.95;
          ps_wp99 = Sketch.quantile window 0.99;
        })
      v.Metric.v_sketches
  in
  let p =
    {
      seq = !seq_next;
      t_ns;
      dt_ns;
      final;
      p_counters;
      p_gauges;
      p_histograms;
      p_sketches;
    }
  in
  incr seq_next;
  Queue.push p ring;
  while Queue.length ring > !capacity do
    ignore (Queue.pop ring)
  done;
  p

let capture ?(final = false) () =
  locked (fun () ->
      let v = with_quiescence Metric.values in
      let p = build_point ~final v in
      (* Subscribers run outside the gate: the pool is already moving
         again while the Prometheus file is rewritten / the dashboard
         repainted. Registration order, not reversed-stack order. *)
      List.iter (fun f -> f v p) (List.rev !subscribers);
      p)

let reset () =
  Mutex.lock capture_mutex;
  Queue.clear ring;
  seq_next := 0;
  t_start := 0L;
  last_t := 0L;
  cfg_period := 0L;
  capacity := default_capacity;
  Hashtbl.reset prev_counters;
  Hashtbl.reset prev_gauges;
  Hashtbl.reset prev_hists;
  Hashtbl.reset prev_sketches;
  subscribers := [];
  Mutex.unlock capture_mutex

(* --- ticker --- *)

let ticker_mutex = Mutex.create ()

let ticker : unit Domain.t option ref = ref None

let ticker_stop = Atomic.make false

let running () =
  Mutex.lock ticker_mutex;
  let r = !ticker <> None in
  Mutex.unlock ticker_mutex;
  r

(* Sleep in <= 50 ms slices so [stop] never waits a full period. Ticks
   are scheduled against absolute deadlines, so a slow capture delays
   but does not drift the grid. *)
let tick_loop period_ns =
  let rec go deadline =
    if not (Atomic.get ticker_stop) then begin
      let now = Clock.now_ns () in
      if Int64.compare now deadline >= 0 then begin
        (try ignore (capture ()) with _ -> ());
        go (Int64.add deadline period_ns)
      end
      else begin
        let remain = Int64.to_float (Int64.sub deadline now) /. 1e9 in
        Unix.sleepf (Float.min remain 0.05);
        go deadline
      end
    end
  in
  go (Int64.add (Clock.now_ns ()) period_ns)

let start ~period_ns () =
  let period_ns = if Int64.compare period_ns 1_000_000L < 0 then 1_000_000L else period_ns in
  Mutex.lock ticker_mutex;
  if !ticker = None then begin
    cfg_period := period_ns;
    Atomic.set ticker_stop false;
    ticker := Some (Domain.spawn (fun () -> tick_loop period_ns))
  end;
  Mutex.unlock ticker_mutex

let stop () =
  Mutex.lock ticker_mutex;
  let d = !ticker in
  ticker := None;
  Mutex.unlock ticker_mutex;
  match d with
  | None -> ()
  | Some d ->
    Atomic.set ticker_stop true;
    Domain.join d

(* --- obs-timeline/v1 export --- *)

let schema = "obs-timeline/v1"

let rate ~delta ~dt_ns =
  Json.number (delta *. 1e9 /. Int64.to_float dt_ns)

let point_json p =
  let counters =
    List.map
      (fun c ->
        Json.Obj
          [
            ("name", Json.String c.c_name);
            ("timing", Json.Bool c.c_timing);
            ("value", Json.number (float_of_int c.c_value));
            ("delta", Json.number (float_of_int c.c_delta));
            ("rate_per_s", rate ~delta:(float_of_int c.c_delta) ~dt_ns:p.dt_ns);
          ])
      p.p_counters
  in
  let gauges =
    List.map
      (fun g ->
        Json.Obj
          [
            ("name", Json.String g.g_name);
            ("timing", Json.Bool g.g_timing);
            ("value", Json.number g.g_value);
            ("delta", Json.number g.g_delta);
            ("rate_per_s", rate ~delta:g.g_delta ~dt_ns:p.dt_ns);
          ])
      p.p_gauges
  in
  let histograms =
    List.map
      (fun h ->
        Json.Obj
          [
            ("name", Json.String h.ph_name);
            ("timing", Json.Bool h.ph_timing);
            ("count", Json.number (float_of_int h.ph_count));
            ("delta", Json.number (float_of_int h.ph_delta));
          ])
      p.p_histograms
  in
  let sketches =
    List.map
      (fun s ->
        Json.Obj
          [
            ("name", Json.String s.ps_name);
            ("timing", Json.Bool s.ps_timing);
            ("count", Json.number (float_of_int s.ps_count));
            ("p50", Json.number s.ps_p50);
            ("p95", Json.number s.ps_p95);
            ("p99", Json.number s.ps_p99);
            ("window_count", Json.number (float_of_int s.ps_wcount));
            ("window_p50", Json.number s.ps_wp50);
            ("window_p95", Json.number s.ps_wp95);
            ("window_p99", Json.number s.ps_wp99);
          ])
      p.p_sketches
  in
  Json.Obj
    [
      ("seq", Json.number (float_of_int p.seq));
      ("t_ns", Json.number (Int64.to_float p.t_ns));
      ("dt_ns", Json.number (Int64.to_float p.dt_ns));
      ("final", Json.Bool p.final);
      ("counters", Json.List counters);
      ("gauges", Json.List gauges);
      ("histograms", Json.List histograms);
      ("sketches", Json.List sketches);
    ]

let to_json () =
  locked (fun () ->
      Json.Obj
        [
          ("schema", Json.String schema);
          ("version", Json.Number 1.);
          ("jobs", Json.number (float_of_int !cfg_jobs));
          ("period_ns", Json.number (Int64.to_float !cfg_period));
          ( "snapshots",
            Json.List (List.map point_json (List.of_seq (Queue.to_seq ring))) );
        ])

let write_file path = Export.write_file path (to_json ())

(* Structural check used by `pso_audit validate-json` and the tests.
   Deliberately shape-only: it does not re-derive deltas or rates. *)
let validate j =
  let ( let* ) = Result.bind in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let field name conv ctx o =
    match Json.member name o with
    | None -> err "%s: missing %S" ctx name
    | Some v -> (
      match conv v with
      | Some x -> Ok x
      | None -> err "%s: bad %S" ctx name)
  in
  let is_bool = function Json.Bool b -> Some b | _ -> None in
  let is_num = function Json.Number _ -> Some () | Json.Null -> Some () | _ -> None in
  let* s = field "schema" Json.to_string_opt "document" j in
  let* () =
    if String.equal s schema then Ok () else err "schema %S, expected %S" s schema
  in
  let* v = field "version" Json.to_int "document" j in
  let* () = if v = 1 then Ok () else err "version %d, expected 1" v in
  let* _jobs = field "jobs" Json.to_int "document" j in
  let* snaps = field "snapshots" Json.to_list "document" j in
  let check_samples ctx kind fields o =
    let* l = field kind Json.to_list ctx o in
    List.fold_left
      (fun acc s ->
        let* () = acc in
        let ctx = Printf.sprintf "%s.%s" ctx kind in
        let* _ = field "name" Json.to_string_opt ctx s in
        let* _ = field "timing" is_bool ctx s in
        List.fold_left
          (fun acc f ->
            let* () = acc in
            let* () = field f is_num ctx s in
            Ok ())
          (Ok ()) fields)
      (Ok ()) l
  in
  List.fold_left
    (fun acc s ->
      let* () = acc in
      let* seq = field "seq" Json.to_int "snapshot" s in
      let ctx = Printf.sprintf "snapshot %d" seq in
      let* _ = field "t_ns" is_num ctx s in
      let* _ = field "dt_ns" is_num ctx s in
      let* _ = field "final" is_bool ctx s in
      let* () = check_samples ctx "counters" [ "value"; "delta"; "rate_per_s" ] s in
      let* () = check_samples ctx "gauges" [ "value"; "delta"; "rate_per_s" ] s in
      let* () = check_samples ctx "histograms" [ "count"; "delta" ] s in
      let* () =
        check_samples ctx "sketches"
          [ "count"; "p50"; "p95"; "p99"; "window_count"; "window_p50";
            "window_p95"; "window_p99" ]
          s
      in
      Ok ())
    (Ok ()) snaps
