(* The privacy audit ledger: an append-only structured event journal.

   Every query, refusal, noise draw, budget spend and suppression in the
   privacy stack leaves a durable per-analyst record that can be
   mechanically re-verified after the fact ([verify] below replays the
   accountant arithmetic). The design constraint inherited from the rest
   of lib/obs is *byte-identity across --jobs*: the same seeded run must
   produce the same ledger file no matter how the domain pool interleaved
   work, or the audit trail itself becomes non-reproducible.

   Wall-clock timestamps and physical domain ids are scheduling-dependent,
   so the ledger orders events by *logical* coordinates instead:

   - a region id from a global atomic counter bumped by the caller at
     every parallel region (callers are sequential, so region ids are
     deterministic);
   - a task id (the trial index) set by Trials.map around each work item;
   - per-domain buffer order as the tiebreaker — within one (region,
     task) all events come from the single domain that ran that task
     sequentially, so buffer order is emission order.

   Regions use odd ids: [enter_region] returns r = 1, 3, 5, ...; on exit
   the caller's ambient context advances to r + 1, so events the caller
   emits before a region sort below all of the region's task events and
   events emitted after sort above them. The written "ts" field is the
   post-merge index — a logical monotonic clock.

   Emission is buffered in Domain.DLS buffers (the collector pattern of
   Metric) and costs one atomic flag read when the ledger is disabled.
   Buffers are capped; overflow is recorded as a trailing "truncated"
   event that [verify] rejects, never silently dropped. *)

let on = Atomic.make false

let enabled () = Atomic.get on

let schema = "ledger/v1"

let schema_version = 1

(* --- events --- *)

type body =
  | Session of { policy : string; per_query : float option; total : float option }
  | Query of {
      kind : string; (* "mechanism" | "oracle" | "curator" *)
      digest : string;
      engine : string;
      noised : bool;
      cost : int; (* rows touched: the deterministic latency proxy *)
    }
  | Refusal of { reason : string; detail : (string * float) list }
  | Noise of { mechanism : string; scale : float; n : int }
  | Spend of { label : string; epsilon : float; delta : float; cumulative : float }
  | Spend_many of { label : string; epsilon : float; n : int; total : float }
  | Suppression of { source : string; cells : int; rows : int }

type entry = { region : int; task : int; analyst : string; body : body }

(* --- domain-local buffers and logical context --- *)

type ctx = { mutable region : int; mutable task : int; mutable fresh : int }

type buf = {
  domain : int;
  mutable entries : entry array;
  mutable n : int;
  mutable dropped : int;
  ctx : ctx;
}

let max_entries = 1 lsl 20

(* The 2^20 per-domain cap tripping used to be discoverable only by
   spotting the trailing "truncated" marker in the file; surface it once
   on stderr at merge time (and as the ledger.events_truncated counter in
   obs-metrics/v1, pulled by Metric.values). *)
let warned_truncated = ref false

let mutex = Mutex.create ()

let bufs : buf list ref = ref []

let buf_key : buf Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let b =
        {
          domain = (Domain.self () :> int);
          entries = [||];
          n = 0;
          dropped = 0;
          ctx = { region = 0; task = -1; fresh = 0 };
        }
      in
      Mutex.lock mutex;
      bufs := b :: !bufs;
      Mutex.unlock mutex;
      b)

let buf () = Domain.DLS.get buf_key

let push b e =
  if b.n >= max_entries then b.dropped <- b.dropped + 1
  else begin
    if b.n >= Array.length b.entries then begin
      let cap = min max_entries (max 256 (2 * Array.length b.entries)) in
      let a = Array.make cap e in
      Array.blit b.entries 0 a 0 b.n;
      b.entries <- a
    end;
    b.entries.(b.n) <- e;
    b.n <- b.n + 1
  end

let emit analyst body =
  let b = buf () in
  push b { region = b.ctx.region; task = b.ctx.task; analyst; body }

(* --- logical regions (parallel-section coordinates) --- *)

let next_region = Atomic.make 1

let enter_region () =
  if not (Atomic.get on) then -1 else Atomic.fetch_and_add next_region 2

let exit_region r =
  if r >= 0 then begin
    let c = (buf ()).ctx in
    c.region <- r + 1;
    c.task <- -1;
    c.fresh <- 0
  end

let with_task ~region ~task f =
  if region < 0 then f ()
  else begin
    let c = (buf ()).ctx in
    let r0 = c.region and t0 = c.task and f0 = c.fresh in
    c.region <- region;
    c.task <- task;
    c.fresh <- 0;
    Fun.protect
      ~finally:(fun () ->
        c.region <- r0;
        c.task <- t0;
        c.fresh <- f0)
      f
  end

(* Deterministic per-context analyst ids: the k-th analyst created inside
   logical context (region r, task t) is named "a<r>.<t>.<k>" no matter
   which domain ran the task. *)
let fresh_analyst () =
  let c = (buf ()).ctx in
  let k = c.fresh in
  c.fresh <- k + 1;
  Printf.sprintf "a%d.%d.%d" c.region c.task k

(* --- emission API (all no-ops while disabled) --- *)

let ambient_analyst = "-"

let session ~analyst ~policy ?per_query ?total () =
  if Atomic.get on then emit analyst (Session { policy; per_query; total })

let query ~analyst ~kind ~digest ~engine ~noised ~cost =
  if Atomic.get on then emit analyst (Query { kind; digest; engine; noised; cost })

let refusal ~analyst ~reason ~detail =
  if Atomic.get on then emit analyst (Refusal { reason; detail })

let noise ~analyst ~mechanism ~scale ~n =
  if Atomic.get on then emit analyst (Noise { mechanism; scale; n })

let spend ~analyst ~label ~epsilon ?(delta = 0.) ~cumulative () =
  if Atomic.get on then emit analyst (Spend { label; epsilon; delta; cumulative })

let spend_many ~analyst ~label ~epsilon ~n ~total =
  if Atomic.get on then emit analyst (Spend_many { label; epsilon; n; total })

let suppression ~analyst ~source ~cells ~rows =
  if Atomic.get on then emit analyst (Suppression { source; cells; rows })

(* --- lifecycle --- *)

let reset () =
  Mutex.lock mutex;
  List.iter
    (fun b ->
      b.n <- 0;
      b.dropped <- 0;
      b.ctx.region <- 0;
      b.ctx.task <- -1;
      b.ctx.fresh <- 0)
    !bufs;
  Mutex.unlock mutex;
  warned_truncated := false;
  Atomic.set next_region 1

(* Enabling opens an implicit unlimited session for the ambient analyst
   "-" (events emitted outside any curator: standalone mechanisms, direct
   accountant use), so [verify]'s session-before-use rule holds on every
   well-formed ledger. *)
let enable () =
  if not (Atomic.get on) then begin
    Atomic.set on true;
    session ~analyst:ambient_analyst ~policy:"ambient" ()
  end

let disable () = Atomic.set on false

(* --- deterministic merge --- *)

let dropped_total () =
  Mutex.lock mutex;
  let d = List.fold_left (fun acc b -> acc + b.dropped) 0 !bufs in
  Mutex.unlock mutex;
  d

let collect () =
  Mutex.lock mutex;
  let bs = List.sort (fun a b -> compare a.domain b.domain) !bufs in
  let per_domain =
    List.map (fun b -> (Array.to_list (Array.sub b.entries 0 b.n), b.dropped)) bs
  in
  Mutex.unlock mutex;
  let dropped = List.fold_left (fun acc (_, d) -> acc + d) 0 per_domain in
  if dropped > 0 && not !warned_truncated then begin
    warned_truncated := true;
    Printf.eprintf
      "[obs] warning: ledger event cap tripped: %d event(s) truncated (see \
       ledger.events_truncated)\n%!"
      dropped
  end;
  let all = List.concat_map fst per_domain in
  (* Stable: within one (region, task) every event comes from the single
     domain that ran the task, so buffer order survives the sort. *)
  let es =
    List.stable_sort
      (fun (a : entry) (b : entry) ->
        let c = compare a.region b.region in
        if c <> 0 then c else compare a.task b.task)
      all
  in
  (es, dropped)

let json_of_entry ~ts e =
  let base ev fields =
    Json.Obj
      (("event", Json.String ev)
      :: ("ts", Json.Number (float_of_int ts))
      :: ("analyst", Json.String e.analyst)
      :: ("region", Json.Number (float_of_int e.region))
      :: ("task", Json.Number (float_of_int e.task))
      :: fields)
  in
  let num v = Json.number v in
  let int v = Json.Number (float_of_int v) in
  match e.body with
  | Session { policy; per_query; total } ->
    let opt k = function None -> [] | Some v -> [ (k, num v) ] in
    base "session"
      (("policy", Json.String policy)
      :: (opt "per_query_epsilon" per_query @ opt "total_epsilon" total))
  | Query { kind; digest; engine; noised; cost } ->
    base "query"
      [
        ("kind", Json.String kind);
        ("digest", Json.String digest);
        ("engine", Json.String engine);
        ("noised", Json.Bool noised);
        ("cost_rows", int cost);
      ]
  | Refusal { reason; detail } ->
    base "refusal"
      (("reason", Json.String reason)
      :: List.map (fun (k, v) -> (k, num v)) detail)
  | Noise { mechanism; scale; n } ->
    base "noise" [ ("mechanism", Json.String mechanism); ("scale", num scale); ("n", int n) ]
  | Spend { label; epsilon; delta; cumulative } ->
    base "spend"
      [
        ("label", Json.String label);
        ("epsilon", num epsilon);
        ("delta", num delta);
        ("cumulative", num cumulative);
      ]
  | Spend_many { label; epsilon; n; total } ->
    base "spend_many"
      [
        ("label", Json.String label);
        ("epsilon", num epsilon);
        ("n", int n);
        ("total", num total);
      ]
  | Suppression { source; cells; rows } ->
    base "suppression"
      [ ("source", Json.String source); ("cells", int cells); ("rows", int rows) ]

let to_lines () =
  let es, dropped = collect () in
  let header =
    Json.Obj
      [
        ("schema", Json.String schema);
        ("version", Json.Number (float_of_int schema_version));
      ]
  in
  let lines = header :: List.mapi (fun ts e -> json_of_entry ~ts e) es in
  let lines =
    if dropped > 0 then
      lines
      @ [
          Json.Obj
            [
              ("event", Json.String "truncated");
              ("dropped", Json.Number (float_of_int dropped));
            ];
        ]
    else lines
  in
  List.map Json.to_string lines

let write_file path =
  let oc = open_out path in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    (to_lines ());
  close_out oc

(* --- reading --- *)

type parsed = { p_line : int; p_event : string; p_json : Json.t }

let parse_lines lines =
  match lines with
  | [] -> Error "empty ledger"
  | header :: rest -> (
    match Json.of_string header with
    | Error e -> Error (Printf.sprintf "line 1: %s" e)
    | Ok h -> (
      match Option.bind (Json.member "schema" h) Json.to_string_opt with
      | Some s when String.equal s schema ->
        let rec go i acc = function
          | [] -> Ok (List.rev acc)
          | l :: rest when String.trim l = "" -> go (i + 1) acc rest
          | l :: rest -> (
            match Json.of_string l with
            | Error e -> Error (Printf.sprintf "line %d: %s" i e)
            | Ok j -> (
              match Option.bind (Json.member "event" j) Json.to_string_opt with
              | None -> Error (Printf.sprintf "line %d: missing \"event\"" i)
              | Some ev -> go (i + 1) ({ p_line = i; p_event = ev; p_json = j } :: acc) rest))
        in
        go 2 [] rest
      | Some s -> Error (Printf.sprintf "unsupported schema %S (want %S)" s schema)
      | None -> Error "missing schema header"))

let read path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  parse_lines (List.rev !lines)

(* --- verification: replay the accountant arithmetic --- *)

type violation = { at : int; what : string }

type analyst_state = {
  mutable s_policy : string;
  mutable s_total : float option;
  mutable s_running : float;
  mutable s_queries : int;
}

let eps_tol = 1e-9

let verify events =
  let viol = ref [] in
  let add at fmt = Printf.ksprintf (fun s -> viol := { at; what = s } :: !viol) fmt in
  let analysts : (string, analyst_state) Hashtbl.t = Hashtbl.create 16 in
  let last_ts = ref (-1) in
  let str k j = Option.bind (Json.member k j) Json.to_string_opt in
  let fl k j = Option.bind (Json.member k j) Json.to_float in
  let it k j = Option.bind (Json.member k j) Json.to_int in
  List.iter
    (fun p ->
      let j = p.p_json in
      let line = p.p_line in
      (match it "ts" j with
      | None ->
        if not (String.equal p.p_event "truncated") then
          add line "%s event missing ts" p.p_event
      | Some ts ->
        if ts <= !last_ts then
          add line "ts %d not strictly increasing (prev %d)" ts !last_ts;
        last_ts := ts);
      let state () =
        match str "analyst" j with
        | None ->
          add line "%s event missing analyst" p.p_event;
          None
        | Some a -> (
          match Hashtbl.find_opt analysts a with
          | Some s -> Some (a, s)
          | None ->
            add line "%s for analyst %S before any session (orphan)" p.p_event a;
            None)
      in
      let charge a s eps =
        s.s_running <- s.s_running +. eps;
        match s.s_total with
        | Some total when s.s_running > total +. eps_tol ->
          add line "analyst %S over budget: spent %.9g > declared %.9g" a
            s.s_running total
        | _ -> ()
      in
      match p.p_event with
      | "session" -> (
        match str "analyst" j with
        | None -> add line "session missing analyst"
        | Some a ->
          if Hashtbl.mem analysts a then add line "duplicate session for analyst %S" a
          else
            Hashtbl.add analysts a
              {
                s_policy = Option.value (str "policy" j) ~default:"";
                s_total = fl "total_epsilon" j;
                s_running = 0.;
                s_queries = 0;
              })
      | "query" ->
        Option.iter (fun (_, s) -> s.s_queries <- s.s_queries + 1) (state ())
      | "noise" ->
        Option.iter
          (fun _ ->
            (match fl "scale" j with
            | Some sc when sc > 0. && Float.is_finite sc -> ()
            | _ -> add line "noise event with non-positive scale");
            match it "n" j with
            | Some n when n >= 1 -> ()
            | _ -> add line "noise event with n < 1")
          (state ())
      | "spend" ->
        Option.iter
          (fun (a, s) ->
            let eps = Option.value (fl "epsilon" j) ~default:nan in
            if not (Float.is_finite eps) || eps < 0. then
              add line "spend with invalid epsilon"
            else begin
              charge a s eps;
              match fl "cumulative" j with
              | None -> ()
              | Some c ->
                if Float.abs (c -. s.s_running) > eps_tol then
                  add line
                    "analyst %S cumulative mismatch: ledger says %.9g, replay \
                     says %.9g"
                    a c s.s_running
                else s.s_running <- c (* resynchronize fp drift *)
            end)
          (state ())
      | "spend_many" ->
        Option.iter
          (fun (a, s) ->
            let eps = Option.value (fl "epsilon" j) ~default:nan in
            let n = Option.value (it "n" j) ~default:(-1) in
            let total = Option.value (fl "total" j) ~default:nan in
            if not (Float.is_finite eps) || eps < 0. || n < 0 then
              add line "spend_many with invalid epsilon/n"
            else begin
              let expect = eps *. float_of_int n in
              if
                not (Float.is_finite total)
                || Float.abs (total -. expect) > eps_tol *. Float.max 1. expect
              then
                add line
                  "spend_many total %.9g does not match %d x %.9g = %.9g" total
                  n eps expect
              else charge a s total
            end)
          (state ())
      | "refusal" ->
        Option.iter
          (fun (a, s) ->
            match str "reason" j with
            | Some "limit" -> (
              match (it "answered" j, it "limit" j) with
              | Some answered, Some limit ->
                if answered < limit then
                  add line
                    "unjustified limit refusal for %S: answered %d < limit %d" a
                    answered limit
              | _ -> add line "limit refusal missing answered/limit detail")
            | Some "budget" -> (
              match (fl "spent" j, fl "per_query" j, fl "total" j) with
              | Some spent, Some per_query, Some total ->
                if spent +. per_query <= total +. 1e-12 then
                  add line
                    "unjustified budget refusal for %S: %.9g + %.9g fits in %.9g"
                    a spent per_query total;
                if Float.abs (spent -. s.s_running) > eps_tol then
                  add line
                    "budget refusal for %S claims spent %.9g but replay says %.9g"
                    a spent s.s_running
              | _ -> add line "budget refusal missing spent/per_query/total detail")
            | Some "audit" ->
              if not (String.equal s.s_policy "audited") then
                add line
                  "audit refusal for %S whose session policy is %S, not audited"
                  a s.s_policy
            | Some r -> add line "unknown refusal reason %S" r
            | None -> add line "refusal missing reason")
          (state ())
      | "suppression" ->
        Option.iter
          (fun _ ->
            match (it "cells" j, it "rows" j) with
            | Some c, Some r when c >= 0 && r >= 0 -> ()
            | _ -> add line "suppression with invalid cells/rows")
          (state ())
      | "truncated" ->
        add line "ledger truncated: %d events dropped"
          (Option.value (it "dropped" j) ~default:0)
      | ev -> add line "unknown event type %S" ev)
    events;
  List.rev !viol

(* --- per-analyst report --- *)

type analyst_report = {
  r_analyst : string;
  r_policy : string;
  r_queries : int;
  r_refusals : int;
  r_spent : float;
  r_total : float option;
  r_cost : Sketch.t; (* query cost_rows: the deterministic latency proxy *)
}

let report events =
  let tbl : (string, analyst_report) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let str k j = Option.bind (Json.member k j) Json.to_string_opt in
  let get a =
    match Hashtbl.find_opt tbl a with
    | Some r -> r
    | None ->
      let r =
        {
          r_analyst = a;
          r_policy = "";
          r_queries = 0;
          r_refusals = 0;
          r_spent = 0.;
          r_total = None;
          r_cost = Sketch.create ();
        }
      in
      Hashtbl.add tbl a r;
      order := a :: !order;
      r
  in
  List.iter
    (fun p ->
      match str "analyst" p.p_json with
      | None -> ()
      | Some a -> (
        let r = get a in
        let fl k = Option.bind (Json.member k p.p_json) Json.to_float in
        let it k = Option.bind (Json.member k p.p_json) Json.to_int in
        match p.p_event with
        | "session" ->
          let r =
            {
              r with
              r_policy = Option.value (str "policy" p.p_json) ~default:"";
              r_total = fl "total_epsilon";
            }
          in
          Hashtbl.replace tbl a r
        | "query" ->
          Option.iter
            (fun c -> Sketch.add r.r_cost (float_of_int c))
            (it "cost_rows");
          Hashtbl.replace tbl a { r with r_queries = r.r_queries + 1 }
        | "refusal" -> Hashtbl.replace tbl a { r with r_refusals = r.r_refusals + 1 }
        | "spend" ->
          let eps = Option.value (fl "epsilon") ~default:0. in
          Hashtbl.replace tbl a { r with r_spent = r.r_spent +. eps }
        | "spend_many" ->
          let total = Option.value (fl "total") ~default:0. in
          Hashtbl.replace tbl a { r with r_spent = r.r_spent +. total }
        | _ -> ()))
    events;
  List.rev_map (Hashtbl.find tbl) !order

(* Machine-readable twin of [pp_report] (schema ledger-report/v1), so
   downstream consumers — report-html in particular — get the per-analyst
   table without re-parsing a pretty-printed table. *)
let report_schema = "ledger-report/v1"

let report_json rows =
  let quant s p =
    if Sketch.is_empty s then Json.Null else Json.number (Sketch.quantile s p)
  in
  Json.Obj
    [
      ("schema", Json.String report_schema);
      ("version", Json.Number 1.);
      ( "analysts",
        Json.List
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("analyst", Json.String r.r_analyst);
                   ("policy", Json.String r.r_policy);
                   ("queries", Json.Number (float_of_int r.r_queries));
                   ("refusals", Json.Number (float_of_int r.r_refusals));
                   ("eps_spent", Json.number r.r_spent);
                   ( "eps_total",
                     match r.r_total with
                     | None -> Json.Null
                     | Some t -> Json.number t );
                   ( "eps_left",
                     match r.r_total with
                     | None -> Json.Null
                     | Some t -> Json.number (t -. r.r_spent) );
                   ("cost_count", Json.Number (float_of_int (Sketch.count r.r_cost)));
                   ("cost_p50", quant r.r_cost 0.5);
                   ("cost_p95", quant r.r_cost 0.95);
                   ("cost_p99", quant r.r_cost 0.99);
                 ])
             rows) );
    ]

let pp_report fmt rows =
  Format.fprintf fmt "%-14s %-10s %8s %8s %10s %10s %8s %8s %8s@." "analyst"
    "policy" "queries" "refused" "eps_spent" "eps_left" "p50" "p95" "p99";
  Format.fprintf fmt "%s@." (String.make 92 '-');
  List.iter
    (fun r ->
      let left =
        match r.r_total with
        | None -> "inf"
        | Some t -> Printf.sprintf "%.4g" (t -. r.r_spent)
      in
      let q p =
        if Sketch.is_empty r.r_cost then "-"
        else Printf.sprintf "%.3g" (Sketch.quantile r.r_cost p)
      in
      Format.fprintf fmt "%-14s %-10s %8d %8d %10.4g %10s %8s %8s %8s@."
        r.r_analyst
        (if r.r_policy = "" then "-" else r.r_policy)
        r.r_queries r.r_refusals r.r_spent left (q 0.5) (q 0.95) (q 0.99))
    rows
