(* CLOCK_MONOTONIC in nanoseconds, via the bechamel stubs already baked
   into the toolchain. Wall-clock (gettimeofday) is not monotonic and
   would make span durations lie across NTP slews. *)

let now_ns () : int64 = Monotonic_clock.now ()
