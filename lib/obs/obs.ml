(* Obs — the telemetry facade.

   Spans (monotonic-clock timed scopes with parent nesting), counters and
   log-bucketed histograms, aggregated domain-locally (Domain.DLS) and
   merged deterministically in domain-index order at snapshot. Disabled
   (the default), every primitive compiles down to one atomic flag read
   and a branch; nothing here ever draws randomness, so telemetry cannot
   perturb experiment tables.

   Typical lifecycle (what bin/pso_audit.ml and bench/main.ml do):

     Obs.enable ();
     ... run instrumented work ...
     let report = Obs.snapshot ~jobs () in
     Obs.Export.write_file "run.trace.json" (Obs.Export.chrome_trace report);
     Format.eprintf "%a" Obs.Export.pp_summary report

   Deterministic metrics (the default) must count logical events — trials,
   noise draws, rows evaluated — updated inside work items. Metrics of
   wall-clock or scheduling (latencies, per-participant steal counts) must
   be declared with ~timing:true; they are flagged in every export and
   excluded from cross-jobs determinism checks. *)

module Metric = Metric
module Counter = Metric.Counter
module Gauge = Metric.Gauge
module Histogram = Metric.Histogram
module Sketch = Sketch
module Sketchm = Metric.Sketchm
module Ledger = Ledger
module Progress = Progress
module Export = Export
module Timeline = Timeline
module Prom = Prom
module Watch = Watch
module Report_html = Report_html

let enabled = Metric.enabled

let now_ns = Clock.now_ns

let enable = Metric.enable

let disable = Metric.disable

let reset = Metric.reset

let with_span = Metric.with_span

let snapshot = Metric.snapshot

type report = Metric.report
