(** The fused HTML run report: one self-contained static page (inline
    CSS and SVG, no scripts, no external references) combining whichever
    sources a run produced. Each present source renders one [<section>]
    with a stable id — [timeline] (obs-timeline/v1 series as sparkline
    cards), [metrics] (final obs-metrics/v1 tables), [ledger]
    (per-analyst budget accounting), [bench] (ns/run trajectories across
    bench-kernels/v1 snapshots, in argument order). *)

val render :
  ?timeline:Json.t ->
  ?metrics:Json.t ->
  ?ledger:Ledger.analyst_report list ->
  ?bench:(string * Json.t) list ->
  title:string ->
  unit ->
  string
