(** The privacy audit ledger: an append-only, per-analyst event journal
    for the whole privacy stack (queries, refusals, noise draws, budget
    spends, suppressions), buffered domain-locally and merged to a
    canonical [ledger/v1] JSONL file that is byte-identical at every
    [--jobs] for a fixed seed.

    Determinism comes from logical coordinates instead of wall-clock:
    events carry a (region, task) pair — region from a caller-sequential
    atomic counter bumped per parallel section, task the trial index set
    by [with_task] — and are merged in (region, task, emission-order)
    order; the written [ts] is the post-merge index. Physical domain ids
    and monotonic timestamps are deliberately excluded from the file for
    the same reason wall-clock metrics carry [timing = true] in
    {!Metric}: they are scheduling-dependent. *)

val enabled : unit -> bool

val enable : unit -> unit
(** Switch emission on and open an implicit unlimited session for the
    ambient analyst ["-"] (events emitted outside any curator session). *)

val disable : unit -> unit

val reset : unit -> unit
(** Clear every buffer and restart the logical clock (region counter and
    per-domain contexts). *)

val schema : string

val dropped_total : unit -> int
(** Events dropped so far by per-domain buffer caps (summed across
    domains; scheduling-dependent under overflow, hence exported as a
    timing-class counter). *)

(** {1 Logical coordinates} — called by lib/parallel, not by emitters. *)

val enter_region : unit -> int
(** Allocate a region id for a parallel section ([-1] when disabled). *)

val exit_region : int -> unit
(** Close a region: the caller's ambient context advances past it. *)

val with_task : region:int -> task:int -> (unit -> 'a) -> 'a
(** Run one work item under coordinates (region, task); no-op when
    [region < 0]. *)

val fresh_analyst : unit -> string
(** A deterministic analyst id, unique per (region, task, creation
    index) — the same id at every [--jobs]. *)

(** {1 Emission} — single atomic flag read when disabled. *)

val ambient_analyst : string

val session :
  analyst:string -> policy:string -> ?per_query:float -> ?total:float -> unit -> unit

val query :
  analyst:string ->
  kind:string ->
  digest:string ->
  engine:string ->
  noised:bool ->
  cost:int ->
  unit
(** [cost] is rows touched — the deterministic latency proxy recorded in
    the file (wall-clock belongs in [timing] sketches, not here). *)

val refusal : analyst:string -> reason:string -> detail:(string * float) list -> unit
(** [reason] is ["limit"], ["budget"] or ["audit"]; [detail] carries the
    justification fields {!verify} re-checks. *)

val noise : analyst:string -> mechanism:string -> scale:float -> n:int -> unit

val spend :
  analyst:string ->
  label:string ->
  epsilon:float ->
  ?delta:float ->
  cumulative:float ->
  unit ->
  unit

val spend_many :
  analyst:string -> label:string -> epsilon:float -> n:int -> total:float -> unit

val suppression : analyst:string -> source:string -> cells:int -> rows:int -> unit

(** {1 Serialization} *)

val to_lines : unit -> string list
(** Canonical JSONL: a schema header line, then one event per line in
    merged logical order ([ts] = line index), then a ["truncated"]
    marker if any buffer overflowed. *)

val write_file : string -> unit

(** {1 Replay} *)

type parsed = { p_line : int; p_event : string; p_json : Json.t }

val parse_lines : string list -> (parsed list, string) result

val read : string -> (parsed list, string) result

type violation = { at : int; what : string }

val verify : parsed list -> violation list
(** Mechanically re-check the ledger: sessions precede use, [ts] strictly
    increases, cumulative ε per analyst matches a replay of the spends
    and never exceeds the declared budget, [spend_many] totals equal
    [n x epsilon], every refusal is justified by its recorded detail, and
    the ledger is not truncated. Empty result = clean. *)

type analyst_report = {
  r_analyst : string;
  r_policy : string;
  r_queries : int;
  r_refusals : int;
  r_spent : float;
  r_total : float option;
  r_cost : Sketch.t;
}

val report : parsed list -> analyst_report list
(** Per-analyst totals in order of first appearance; [r_cost] sketches
    query [cost_rows] for deterministic p50/p95/p99. *)

val pp_report : Format.formatter -> analyst_report list -> unit

val report_schema : string
(** ["ledger-report/v1"]. *)

val report_json : analyst_report list -> Json.t
(** The machine-readable twin of {!pp_report}: a [ledger-report/v1]
    document with one entry per analyst (queries, refusals, eps
    spent/total/left, cost-sketch count and p50/p95/p99). *)
