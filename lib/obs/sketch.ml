(* A fixed-size mergeable quantile sketch (HDR-histogram style).

   Positive samples land in log-linear buckets: 64 powers-of-two octaves
   (the same ~1e-7 .. ~1e12 span as Metric's log2 histograms) split into
   [subdiv] linear sub-buckets each, so any quantile is answered with a
   bounded relative error of ~1/subdiv (~3%). Bucket 0 absorbs zero,
   negative and non-finite samples. Exact min and max are kept alongside,
   and quantile reads are clamped into [min, max], so degenerate streams
   (all samples equal) report exact percentiles.

   Everything is integer bucket counts plus two exact floats, so [merge]
   is a commutative bucket-wise sum combined with min/max: merging in any
   grouping or order yields the same sketch, which makes sketch quantiles
   byte-identical at every --jobs for a deterministic sample stream. The
   structure never draws randomness and never rebuckets: observe is O(1),
   quantile is one O(buckets) scan. *)

let octaves = 64

let subdiv = 16

(* Octave 1 covers [2^min_exp, 2^(min_exp+1)); earlier values clamp in. *)
let min_exp = -24

let buckets = (octaves * subdiv) + 1

type t = {
  counts : int array; (* length [buckets]; slot 0 = nonpositive/non-finite *)
  mutable n : int;
  mutable mn : float; (* exact extrema over finite positive samples *)
  mutable mx : float;
}

let create () = { counts = Array.make buckets 0; n = 0; mn = nan; mx = nan }

let is_empty t = t.n = 0

let count t = t.n

let bucket_of v =
  if not (Float.is_finite v) || v <= 0. then 0
  else begin
    let e = int_of_float (Float.floor (Float.log2 v)) in
    let e = if e < min_exp then min_exp else if e > min_exp + octaves - 1 then min_exp + octaves - 1 else e in
    let lo = Float.pow 2. (float_of_int e) in
    let sub = int_of_float (Float.floor ((v /. lo -. 1.) *. float_of_int subdiv)) in
    let sub = if sub < 0 then 0 else if sub >= subdiv then subdiv - 1 else sub in
    (((e - min_exp) * subdiv) + sub) + 1
  end

(* Midpoint of a bucket's value range — the reported representative. *)
let bucket_value b =
  if b = 0 then 0.
  else begin
    let b = b - 1 in
    let e = (b / subdiv) + min_exp in
    let sub = b mod subdiv in
    let lo = Float.pow 2. (float_of_int e) in
    lo *. (1. +. ((float_of_int sub +. 0.5) /. float_of_int subdiv))
  end

let add_n t v k =
  if k < 0 then invalid_arg "Obs.Sketch.add_n: negative count";
  if k > 0 then begin
    let b = bucket_of v in
    t.counts.(b) <- t.counts.(b) + k;
    t.n <- t.n + k;
    if b > 0 then begin
      if Float.is_nan t.mn || v < t.mn then t.mn <- v;
      if Float.is_nan t.mx || v > t.mx then t.mx <- v
    end
  end

let add t v = add_n t v 1

let merge_into ~into src =
  for b = 0 to buckets - 1 do
    into.counts.(b) <- into.counts.(b) + src.counts.(b)
  done;
  into.n <- into.n + src.n;
  if not (Float.is_nan src.mn) && (Float.is_nan into.mn || src.mn < into.mn)
  then into.mn <- src.mn;
  if not (Float.is_nan src.mx) && (Float.is_nan into.mx || src.mx > into.mx)
  then into.mx <- src.mx

let copy t =
  { counts = Array.copy t.counts; n = t.n; mn = t.mn; mx = t.mx }

(* Window view between two cumulative captures of one sample stream:
   bucket-wise subtraction (valid because cumulative bucket counts are
   monotone). The window's exact extrema are unrecoverable, so they are
   estimated from the occupied bucket range — quantile reads on a diff
   carry the usual ~3% bucket error but are not clamped by exact
   extrema. *)
let diff ~newer ~older =
  let t = create () in
  for b = 0 to buckets - 1 do
    let d = newer.counts.(b) - older.counts.(b) in
    t.counts.(b) <- (if d < 0 then 0 else d)
  done;
  t.n <- Array.fold_left ( + ) 0 t.counts;
  let lo = ref 0 and hi = ref 0 in
  for b = 1 to buckets - 1 do
    if t.counts.(b) > 0 then begin
      if !lo = 0 then lo := b;
      hi := b
    end
  done;
  if !lo > 0 then begin
    t.mn <- bucket_value !lo;
    t.mx <- bucket_value !hi
  end;
  t

let min_value t = t.mn

let max_value t = t.mx

let clamp t v =
  if Float.is_nan t.mn then v
  else if v < t.mn then t.mn
  else if v > t.mx then t.mx
  else v

(* Rank-based read: the value of the ceil(q*n)-th smallest sample's
   bucket, clamped into the exact [min, max] envelope. *)
let quantile t q =
  if t.n = 0 then nan
  else begin
    let q = if q < 0. then 0. else if q > 1. then 1. else q in
    let rank =
      let r = int_of_float (Float.ceil (q *. float_of_int t.n)) in
      if r < 1 then 1 else if r > t.n then t.n else r
    in
    let rec go b acc =
      if b >= buckets then clamp t (bucket_value (buckets - 1))
      else begin
        let acc = acc + t.counts.(b) in
        if acc >= rank then (if b = 0 then 0. else clamp t (bucket_value b))
        else go (b + 1) acc
      end
    in
    go 0 0
  end

let reset t =
  Array.fill t.counts 0 buckets 0;
  t.n <- 0;
  t.mn <- nan;
  t.mx <- nan
