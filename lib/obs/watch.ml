(* Live stderr dashboard, fed by Timeline captures.

   On a TTY the previous frame is erased with cursor-up + clear-to-end
   escapes and repainted in place; on a pipe each tick emits one compact
   line instead, so redirected logs stay greppable. The dashboard
   replaces the --progress heartbeat when both are requested: one writer
   to stderr, no interleaving.

   Rendering is generic over whatever metrics the run registered: all
   gauges, the busiest counters by per-interval delta (with rates), and
   sketch quantiles (cumulative p50/p95 plus the window count). Timing-
   class series are marked with a '~' prefix — the same segregation as
   every other export, in one character. *)

let si v =
  let a = Float.abs v in
  if a >= 1e9 then Printf.sprintf "%.2fG" (v /. 1e9)
  else if a >= 1e6 then Printf.sprintf "%.2fM" (v /. 1e6)
  else if a >= 1e3 then Printf.sprintf "%.2fk" (v /. 1e3)
  else if Float.is_integer v then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.3g" v

let tag timing name = if timing then "~" ^ name else name

let top_counters ?(k = 4) (p : Timeline.point) =
  p.Timeline.p_counters
  |> List.filter (fun (c : Timeline.csample) -> c.c_value > 0)
  |> List.stable_sort (fun (a : Timeline.csample) b ->
         compare (abs b.c_delta, b.c_value) (abs a.c_delta, a.c_value))
  |> List.filteri (fun i _ -> i < k)

let frame_lines ~jobs (p : Timeline.point) =
  let t_s = Int64.to_float p.Timeline.t_ns /. 1e9 in
  let head =
    Printf.sprintf "[obs] watch tick=%d t=%.1fs jobs=%d%s" p.Timeline.seq t_s
      jobs
      (if p.Timeline.final then " (final)" else "")
  in
  let counters =
    top_counters p
    |> List.map (fun (c : Timeline.csample) ->
           let rate =
             if p.Timeline.dt_ns > 0L then
               float_of_int c.c_delta *. 1e9 /. Int64.to_float p.Timeline.dt_ns
             else 0.
           in
           Printf.sprintf "%s=%s (+%s, %s/s)"
             (tag c.c_timing c.c_name)
             (si (float_of_int c.c_value))
             (si (float_of_int c.c_delta))
             (si rate))
  in
  let gauges =
    p.Timeline.p_gauges
    |> List.map (fun (g : Timeline.gsample) ->
           Printf.sprintf "%s=%s" (tag g.g_timing g.g_name) (si g.g_value))
  in
  let sketches =
    p.Timeline.p_sketches
    |> List.filter (fun (s : Timeline.ssample) -> s.ps_count > 0)
    |> List.map (fun (s : Timeline.ssample) ->
           Printf.sprintf "%s p50=%s p95=%s (n=%s, +%s)"
             (tag s.ps_timing s.ps_name)
             (si s.ps_p50) (si s.ps_p95)
             (si (float_of_int s.ps_count))
             (si (float_of_int s.ps_wcount)))
  in
  let section label = function
    | [] -> []
    | items -> [ "  " ^ label ^ ": " ^ String.concat "  " items ]
  in
  (head :: section "counters" counters)
  @ section "gauges" gauges
  @ section "sketches" sketches

let compact_line ~jobs (p : Timeline.point) =
  let t_s = Int64.to_float p.Timeline.t_ns /. 1e9 in
  let counters =
    top_counters ~k:3 p
    |> List.map (fun (c : Timeline.csample) ->
           Printf.sprintf "%s=%s"
             (tag c.c_timing c.c_name)
             (si (float_of_int c.c_value)))
    |> String.concat " "
  in
  Printf.sprintf "[obs] watch tick=%d t=%.1fs jobs=%d %s%s" p.Timeline.seq t_s
    jobs counters
    (if p.Timeline.final then " (final)" else "")

let subscriber ?tty ~jobs () : Timeline.subscriber =
  let tty =
    match tty with Some b -> b | None -> Unix.isatty Unix.stderr
  in
  let prev_lines = ref 0 in
  fun _values p ->
    if tty then begin
      let lines = frame_lines ~jobs p in
      if !prev_lines > 0 then Printf.eprintf "\027[%dA\027[J" !prev_lines;
      List.iter (fun l -> Printf.eprintf "%s\n" l) lines;
      prev_lines := List.length lines;
      flush stderr
    end
    else begin
      Printf.eprintf "%s\n%!" (compact_line ~jobs p)
    end
