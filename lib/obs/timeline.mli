(** Periodic snapshots of every registered metric — counters, gauges,
    histograms, quantile sketches — frozen into a ring buffer of
    timestamped points with per-interval deltas and rates, feeding the
    Prometheus exporter ({!Prom}), the live [--watch] dashboard
    ({!Watch}) and the fused HTML run report ({!Report_html}).

    Captures are *consistent*: the pool brackets every work item with
    {!item_begin}/{!item_end}, and {!capture} drains in-flight items
    through an SC-atomic quiescence gate before reading the plain
    domain-local collector arrays, so a point never observes half an
    item (no torn reads). The timeline as a whole is timing-class (tick
    placement depends on wall-clock), but a final capture taken after
    the workload with the ticker stopped aggregates exactly the state
    {!Metric.snapshot} would: its [timing = false] entries are
    byte-identical at every [--jobs]. *)

(** {1 Pool integration} — called by lib/parallel, not by users. *)

val item_begin : unit -> unit
(** Enter a work item on this domain (nesting-aware; only the outermost
    item holds the gate). Blocks briefly while a capture drains. *)

val item_end : unit -> unit
(** Leave a work item; wakes a waiting capture when the pool quiesces. *)

(** {1 Snapshot points} *)

type csample = { c_name : string; c_timing : bool; c_value : int; c_delta : int }

type gsample = {
  g_name : string;
  g_timing : bool;
  g_value : float;
  g_delta : float;
}

type hsample = {
  ph_name : string;
  ph_timing : bool;
  ph_count : int;
  ph_delta : int;
}

type ssample = {
  ps_name : string;
  ps_timing : bool;
  ps_count : int;
  ps_p50 : float;
  ps_p95 : float;
  ps_p99 : float;
  ps_wcount : int;
  ps_wp50 : float;
  ps_wp95 : float;
  ps_wp99 : float;
}
(** Cumulative quantiles plus the window (since the previous point) view
    derived with {!Sketch.diff}. *)

type point = {
  seq : int;
  t_ns : int64;
  dt_ns : int64;
  final : bool;
  p_counters : csample list;
  p_gauges : gsample list;
  p_histograms : hsample list;
  p_sketches : ssample list;
}
(** All sample lists ascend by name, mirroring {!Metric.values}. *)

val capture : ?final:bool -> unit -> point
(** Freeze one consistent cross-domain view, append it to the ring
    buffer, and run every subscriber (outside the gate — the pool is
    already moving again). [final] marks the post-workload capture. *)

val points : unit -> point list
(** Ring contents, oldest first. *)

val last : unit -> point option

type subscriber = Metric.values -> point -> unit

val subscribe : subscriber -> unit
(** Run on every capture, in subscription order, with the full
    aggregation (histogram bucket rows included) and the built point. *)

val set_jobs : int -> unit
(** Echoed into the [obs-timeline/v1] header. *)

val set_capacity : int -> unit
(** Ring size (default 512); the oldest points fall off first. *)

val reset : unit -> unit
(** Clear points, deltas, subscribers and configuration. Does not stop a
    running ticker — call {!stop} first. *)

(** {1 Ticker} *)

val start : period_ns:int64 -> unit -> unit
(** Spawn the ticker domain capturing every [period_ns] (clamped to
    >= 1ms) against absolute deadlines. Idempotent while running. *)

val stop : unit -> unit
(** Stop and join the ticker (no-op when not running). *)

val running : unit -> bool

(** {1 obs-timeline/v1 export} *)

val schema : string

val to_json : unit -> Json.t

val write_file : string -> unit

val validate : Json.t -> (unit, string) result
(** Shape check of an [obs-timeline/v1] document (schema, version, and
    per-snapshot sample fields); does not re-derive deltas or rates. *)
