(* Prometheus text-exposition rendering of one metric aggregation.

   Every sample line carries a [class] label, "deterministic" or
   "timing", mirroring the [timing] flag on the metric registration —
   the same segregation every other export applies, so a scrape can
   select the cross-jobs-stable series with one label matcher.

   Names are sanitized to the Prometheus grammar ([a-zA-Z0-9_:]) under a
   "pso_" namespace; counters get the conventional "_total" suffix.
   Histograms render as cumulative [_bucket{le=...}] series over the
   occupied log2 buckets plus "+Inf"; sketches render as summaries
   (quantile series plus [_count]). [write_file] rewrites atomically
   (tmp + rename) so a concurrent reader never sees a torn file. *)

let sanitize name =
  String.map
    (fun ch ->
      match ch with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> ch
      | _ -> '_')
    name

let metric_name ?(suffix = "") (m : Metric.meta) =
  "pso_" ^ sanitize m.Metric.name ^ suffix

let class_label (m : Metric.meta) =
  if m.Metric.timing then "timing" else "deterministic"

(* HELP text is a single line; backslashes and newlines are escaped per
   the exposition format. Empty registration help falls back to the
   metric's own name. *)
let escape_help s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun ch ->
      match ch with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | ch -> Buffer.add_char b ch)
    s;
  Buffer.contents b

let escape_label_value s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun ch ->
      match ch with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | ch -> Buffer.add_char b ch)
    s;
  Buffer.contents b

let float_repr v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let header b ~name ~typ (m : Metric.meta) =
  let help = if m.Metric.help = "" then m.Metric.name else m.Metric.help in
  Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name (escape_help help));
  Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name typ)

let sample b ~name ~labels v =
  let labels = ("class", class_label (fst labels)) :: snd labels in
  let rendered =
    labels
    |> List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
    |> String.concat ","
  in
  Buffer.add_string b (Printf.sprintf "%s{%s} %s\n" name rendered v)

let render (v : Metric.values) =
  let b = Buffer.create 4096 in
  List.iter
    (fun ((m : Metric.meta), total) ->
      let name = metric_name ~suffix:"_total" m in
      header b ~name ~typ:"counter" m;
      sample b ~name ~labels:(m, []) (string_of_int total))
    v.Metric.v_counters;
  List.iter
    (fun ((m : Metric.meta), value) ->
      let name = metric_name m in
      header b ~name ~typ:"gauge" m;
      sample b ~name ~labels:(m, []) (float_repr value))
    v.Metric.v_gauges;
  List.iter
    (fun ((m : Metric.meta), row) ->
      let name = metric_name m in
      header b ~name ~typ:"histogram" m;
      let total = Array.fold_left ( + ) 0 row in
      let acc = ref 0 in
      Array.iteri
        (fun i count ->
          if count > 0 then begin
            acc := !acc + count;
            let le = float_repr (Metric.bucket_upper i) in
            sample b ~name:(name ^ "_bucket") ~labels:(m, [ ("le", le) ])
              (string_of_int !acc)
          end)
        row;
      sample b ~name:(name ^ "_bucket") ~labels:(m, [ ("le", "+Inf") ])
        (string_of_int total);
      sample b ~name:(name ^ "_count") ~labels:(m, []) (string_of_int total))
    v.Metric.v_histograms;
  List.iter
    (fun ((m : Metric.meta), sk) ->
      let name = metric_name m in
      header b ~name ~typ:"summary" m;
      List.iter
        (fun q ->
          sample b ~name
            ~labels:(m, [ ("quantile", float_repr q) ])
            (float_repr (Sketch.quantile sk q)))
        [ 0.5; 0.95; 0.99 ];
      sample b ~name:(name ^ "_count") ~labels:(m, [])
        (string_of_int (Sketch.count sk)))
    v.Metric.v_sketches;
  Buffer.contents b

let write_file path content =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc content;
  close_out oc;
  Sys.rename tmp path

(* --- line-grammar validation --- *)

let is_name_start ch =
  (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') || ch = '_' || ch = ':'

let is_name_char ch = is_name_start ch || (ch >= '0' && ch <= '9')

let is_label_start ch =
  (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') || ch = '_'

let is_label_char ch = is_label_start ch || (ch >= '0' && ch <= '9')

let parse_value s =
  match s with
  | "+Inf" | "Inf" | "-Inf" | "NaN" -> true
  | s -> ( match float_of_string_opt s with Some _ -> true | None -> false)

(* One sample line: name ['{' labels '}'] SP value [SP timestamp]. *)
let check_sample line =
  let n = String.length line in
  let pos = ref 0 in
  let ok = ref (n > 0 && is_name_start line.[0]) in
  if !ok then begin
    while !pos < n && is_name_char line.[!pos] do
      incr pos
    done;
    (* optional label set *)
    if !pos < n && line.[!pos] = '{' then begin
      incr pos;
      let in_labels = ref true in
      while !ok && !in_labels do
        if !pos >= n then ok := false
        else if line.[!pos] = '}' then begin
          incr pos;
          in_labels := false
        end
        else begin
          (* label name *)
          if !pos < n && is_label_start line.[!pos] then begin
            while !pos < n && is_label_char line.[!pos] do
              incr pos
            done;
            if !pos + 1 < n && line.[!pos] = '=' && line.[!pos + 1] = '"' then begin
              pos := !pos + 2;
              let in_str = ref true in
              while !ok && !in_str do
                if !pos >= n then ok := false
                else begin
                  match line.[!pos] with
                  | '"' ->
                    incr pos;
                    in_str := false
                  | '\\' ->
                    if !pos + 1 >= n then ok := false else pos := !pos + 2
                  | _ -> incr pos
                end
              done;
              if !ok && !pos < n && line.[!pos] = ',' then incr pos
            end
            else ok := false
          end
          else ok := false
        end
      done
    end;
    (* mandatory value, optional timestamp, space-separated *)
    if !ok then begin
      match
        String.split_on_char ' '
          (String.sub line !pos (n - !pos) |> String.trim)
        |> List.filter (fun s -> s <> "")
      with
      | [ v ] -> ok := parse_value v
      | [ v; ts ] -> ok := parse_value v && float_of_string_opt ts <> None
      | _ -> ok := false
    end
  end;
  !ok

let check_comment line =
  (* "# HELP name text" / "# TYPE name type" / free-form comment *)
  match String.split_on_char ' ' line with
  | "#" :: "TYPE" :: name :: [ typ ] ->
    String.length name > 0
    && is_name_start name.[0]
    && String.for_all is_name_char name
    && List.mem typ [ "counter"; "gauge"; "histogram"; "summary"; "untyped" ]
  | "#" :: "HELP" :: name :: _ ->
    String.length name > 0
    && is_name_start name.[0]
    && String.for_all is_name_char name
  | "#" :: _ -> true
  | _ -> false

let validate content =
  let lines = String.split_on_char '\n' content in
  let rec go i = function
    | [] -> Ok ()
    | line :: rest ->
      let trimmed = String.trim line in
      if trimmed = "" then go (i + 1) rest
      else if trimmed.[0] = '#' then
        if check_comment trimmed then go (i + 1) rest
        else Error (Printf.sprintf "line %d: malformed comment: %s" i trimmed)
      else if check_sample trimmed then go (i + 1) rest
      else Error (Printf.sprintf "line %d: malformed sample: %s" i trimmed)
  in
  go 1 lines
