(* Three views of one snapshot:

   - [metrics_json]: the stable `obs-metrics/v1` document (canonical
     Json rendering: keys sorted, round-tripping floats);
   - [chrome_trace]: a Chrome `trace_event` document, one track per
     domain, loadable in chrome://tracing or https://ui.perfetto.dev;
   - [pp_summary]: the human table behind `--metrics`.

   The `counters` and `histograms` sections of `obs-metrics/v1` are
   deterministic for a deterministic workload — identical bytes at every
   --jobs — except for entries flagged `"timing": true`, which measure
   wall-clock or scheduling. The `domains` section is always
   scheduling-dependent. *)

let schema = "obs-metrics/v1"

let schema_version = 1

let metrics_json (r : Metric.report) =
  Json.Obj
    [
      ("schema", Json.String schema);
      ("version", Json.Number (float_of_int schema_version));
      ("jobs", Json.Number (float_of_int r.Metric.jobs));
      ( "counters",
        Json.List
          (List.map
             (fun ((m : Metric.meta), v) ->
               Json.Obj
                 [
                   ("name", Json.String m.Metric.name);
                   ("timing", Json.Bool m.Metric.timing);
                   ("value", Json.Number (float_of_int v));
                 ])
             r.Metric.counters) );
      ( "gauges",
        Json.List
          (List.map
             (fun ((m : Metric.meta), v) ->
               Json.Obj
                 [
                   ("name", Json.String m.Metric.name);
                   ("timing", Json.Bool m.Metric.timing);
                   ("value", Json.number v);
                 ])
             r.Metric.gauges) );
      ( "histograms",
        Json.List
          (List.map
             (fun (h : Metric.hist) ->
               Json.Obj
                 [
                   ("name", Json.String h.Metric.h_name);
                   ("timing", Json.Bool h.Metric.h_timing);
                   ("count", Json.Number (float_of_int h.Metric.h_count));
                   ( "buckets",
                     Json.List
                       (List.map
                          (fun (b, c) ->
                            Json.Obj
                              [
                                ("le", Json.number (Metric.bucket_upper b));
                                ("count", Json.Number (float_of_int c));
                              ])
                          h.Metric.h_buckets) );
                 ])
             r.Metric.histograms) );
      ( "sketches",
        Json.List
          (List.map
             (fun (s : Metric.sketch_report) ->
               let q p =
                 if Sketch.is_empty s.Metric.sk then Json.Null
                 else Json.number (Sketch.quantile s.Metric.sk p)
               in
               let ext f =
                 if Sketch.is_empty s.Metric.sk then Json.Null
                 else begin
                   let v = f s.Metric.sk in
                   if Float.is_nan v then Json.Null else Json.number v
                 end
               in
               Json.Obj
                 [
                   ("name", Json.String s.Metric.sk_name);
                   ("timing", Json.Bool s.Metric.sk_timing);
                   ( "count",
                     Json.Number (float_of_int (Sketch.count s.Metric.sk)) );
                   ("min", ext Sketch.min_value);
                   ("max", ext Sketch.max_value);
                   ("p50", q 0.5);
                   ("p90", q 0.9);
                   ("p95", q 0.95);
                   ("p99", q 0.99);
                 ])
             r.Metric.sketches) );
      ( "domains",
        Json.List
          (List.map
             (fun (d : Metric.domain_report) ->
               Json.Obj
                 [
                   ("tid", Json.Number (float_of_int d.Metric.tid));
                   ("domain", Json.Number (float_of_int d.Metric.domain_id));
                   ( "spans",
                     Json.Number (float_of_int (List.length d.Metric.events)) );
                   ("busy_ns", Json.Number (Int64.to_float d.Metric.busy_ns));
                   ("dropped", Json.Number (float_of_int d.Metric.ev_dropped));
                 ])
             r.Metric.domains) );
    ]

(* --- Chrome trace_event --- *)

let us_of_ns ns = Int64.to_float ns /. 1e3

let chrome_trace (r : Metric.report) =
  let thread_meta (d : Metric.domain_report) =
    Json.Obj
      [
        ("ph", Json.String "M");
        ("pid", Json.Number 1.);
        ("tid", Json.Number (float_of_int d.Metric.tid));
        ("name", Json.String "thread_name");
        ( "args",
          Json.Obj
            [
              ( "name",
                Json.String
                  (if d.Metric.tid = 0 then
                     Printf.sprintf "domain %d (caller)" d.Metric.domain_id
                   else Printf.sprintf "domain %d" d.Metric.domain_id) );
            ] );
      ]
  in
  let span (d : Metric.domain_report) (e : Metric.event) =
    let base =
      [
        ("ph", Json.String "X");
        ("pid", Json.Number 1.);
        ("tid", Json.Number (float_of_int d.Metric.tid));
        ("name", Json.String e.Metric.ev_name);
        ("ts", Json.number (us_of_ns (Int64.sub e.Metric.ts r.Metric.epoch_ns)));
        ("dur", Json.number (us_of_ns e.Metric.dur));
      ]
    in
    let args =
      match e.Metric.args with
      | [] -> []
      | kvs ->
        [ ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) kvs)) ]
    in
    Json.Obj (base @ args)
  in
  let events =
    List.concat_map
      (fun (d : Metric.domain_report) ->
        thread_meta d :: List.map (span d) d.Metric.events)
      r.Metric.domains
  in
  Json.Obj
    [ ("displayTimeUnit", Json.String "ms"); ("traceEvents", Json.List events) ]

let write_file path doc =
  let oc = open_out path in
  output_string oc (Json.to_string ~pretty:true doc);
  output_char oc '\n';
  close_out oc

(* --- human summary --- *)

(* Upper bound of the bucket holding quantile [q], a deterministic
   order-of-magnitude summary (exact quantiles would need raw samples). *)
let quantile_upper (h : Metric.hist) q =
  if h.Metric.h_count = 0 then nan
  else begin
    let target = q *. float_of_int h.Metric.h_count in
    let rec go acc = function
      | [] -> nan
      | (b, c) :: rest ->
        let acc = acc + c in
        if float_of_int acc >= target then Metric.bucket_upper b else go acc rest
    in
    go 0 h.Metric.h_buckets
  end

let pp_summary fmt (r : Metric.report) =
  Format.fprintf fmt "== obs metrics (schema %s, jobs=%d) ==@." schema
    r.Metric.jobs;
  Format.fprintf fmt "@.%-34s  %14s@." "counter" "value";
  Format.fprintf fmt "%s  %s@." (String.make 34 '-') (String.make 14 '-');
  List.iter
    (fun ((m : Metric.meta), v) ->
      Format.fprintf fmt "%-34s  %14d%s@." m.Metric.name v
        (if m.Metric.timing then "  (timing)" else ""))
    r.Metric.counters;
  if r.Metric.gauges <> [] then begin
    Format.fprintf fmt "@.%-34s  %14s@." "gauge" "value";
    Format.fprintf fmt "%s  %s@." (String.make 34 '-') (String.make 14 '-');
    List.iter
      (fun ((m : Metric.meta), v) ->
        Format.fprintf fmt "%-34s  %14.6g%s@." m.Metric.name v
          (if m.Metric.timing then "  (timing)" else ""))
      r.Metric.gauges
  end;
  if r.Metric.sketches <> [] then begin
    Format.fprintf fmt "@.%-34s  %10s  %10s  %10s  %10s@." "sketch" "count"
      "p50" "p95" "p99";
    Format.fprintf fmt "%s  %s  %s  %s  %s@." (String.make 34 '-')
      (String.make 10 '-') (String.make 10 '-') (String.make 10 '-')
      (String.make 10 '-');
    List.iter
      (fun (s : Metric.sketch_report) ->
        Format.fprintf fmt "%-34s  %10d  %10.3g  %10.3g  %10.3g%s@."
          s.Metric.sk_name
          (Sketch.count s.Metric.sk)
          (Sketch.quantile s.Metric.sk 0.5)
          (Sketch.quantile s.Metric.sk 0.95)
          (Sketch.quantile s.Metric.sk 0.99)
          (if s.Metric.sk_timing then "  (timing)" else ""))
      r.Metric.sketches
  end;
  if r.Metric.histograms <> [] then begin
    Format.fprintf fmt "@.%-34s  %10s  %10s  %10s@." "histogram" "count"
      "p50<=" "p95<=";
    Format.fprintf fmt "%s  %s  %s  %s@." (String.make 34 '-')
      (String.make 10 '-') (String.make 10 '-') (String.make 10 '-');
    List.iter
      (fun (h : Metric.hist) ->
        Format.fprintf fmt "%-34s  %10d  %10.3g  %10.3g%s@." h.Metric.h_name
          h.Metric.h_count (quantile_upper h 0.5) (quantile_upper h 0.95)
          (if h.Metric.h_timing then "  (timing)" else ""))
      r.Metric.histograms
  end;
  Format.fprintf fmt "@.%-10s  %8s  %8s  %12s  %8s@." "track" "domain" "spans"
    "busy" "dropped";
  Format.fprintf fmt "%s  %s  %s  %s  %s@." (String.make 10 '-')
    (String.make 8 '-') (String.make 8 '-') (String.make 12 '-')
    (String.make 8 '-');
  List.iter
    (fun (d : Metric.domain_report) ->
      Format.fprintf fmt "%-10d  %8d  %8d  %10.1fms  %8d@." d.Metric.tid
        d.Metric.domain_id
        (List.length d.Metric.events)
        (Int64.to_float d.Metric.busy_ns /. 1e6)
        d.Metric.ev_dropped)
    r.Metric.domains
