(* The telemetry core: counters, log-bucketed histograms and nested spans,
   aggregated domain-locally and merged at snapshot time.

   Design constraints (see EXPERIMENTS.md, "Observability"):

   - Zero RNG interaction: nothing here draws randomness, so enabling
     telemetry cannot perturb any experiment table.

   - Near-zero cost when disabled: every recording operation is a single
     atomic flag read plus a branch. The sink is sealed — there is no
     indirection through a configurable backend on the hot path.

   - Domain-local aggregation: each domain owns a collector reached
     through [Domain.DLS] (the same pattern as the predicate digest
     cache), so recording never takes a lock and never contends.

   - Deterministic merge: [snapshot] folds collectors in ascending
     domain-index order. Counters and histogram buckets are integer
     sums, so merged totals are independent of how the pool interleaved
     work — byte-identical at every --jobs for a deterministic workload.

   Metrics that measure wall-clock (durations, per-participant steal
   counts) are inherently scheduling-dependent; they carry [timing =
   true] and are excluded from cross-jobs determinism checks. A
   deterministic counter must be updated *inside* the work item (not
   after a parallel region's completion handshake) so the pool's
   finish-mutex orders the write before the caller's snapshot. *)

let on = Atomic.make false

let enabled () = Atomic.get on

(* Process epoch for trace timestamps; set once so re-enabling (the bench
   overhead kernels toggle the flag) keeps one coherent timeline. *)
let epoch = ref 0L

let enable () =
  if not (Atomic.get on) then begin
    if !epoch = 0L then epoch := Clock.now_ns ();
    Atomic.set on true
  end

let disable () = Atomic.set on false

(* --- metric registry (names are process-global, ids dense) --- *)

let registry_mutex = Mutex.create ()

(* [help] feeds the Prometheus # HELP line (and any other export that
   wants prose); empty means "no description registered" and exporters
   fall back to the name. *)
type meta = { id : int; name : string; timing : bool; help : string }

let counter_metas : meta list ref = ref [] (* reverse registration order *)

let n_counters = ref 0

let hist_metas : meta list ref = ref []

let n_hists = ref 0

let gauge_metas : meta list ref = ref []

let n_gauges = ref 0

let sketch_metas : meta list ref = ref []

let n_sketches = ref 0

(* [make] is idempotent by name so independent modules can share a metric
   (e.g. "dp.noise_draws" is bumped from both lib/dp and the Laplace
   mechanism in lib/query). *)
let register metas n ~timing ~help name =
  Mutex.lock registry_mutex;
  let m =
    (* First registration wins (including its help text). *)
    match List.find_opt (fun m -> String.equal m.name name) !metas with
    | Some m -> m
    | None ->
      let m = { id = !n; name; timing; help } in
      incr n;
      metas := m :: !metas;
      m
  in
  Mutex.unlock registry_mutex;
  m

(* --- log-bucketed histograms --- *)

let buckets = 64

(* Bucket 0 holds v <= 0 and non-finite values; bucket b in [1, 63] holds
   v with floor(log2 v) = b - 24 (clamped), i.e. upper bound 2^(b - 23).
   The span covers ~1e-7 .. ~1e12, enough for noise magnitudes and
   nanosecond latencies alike. *)
let bucket_of v =
  if not (Float.is_finite v) || v <= 0. then 0
  else begin
    let e = int_of_float (Float.floor (Float.log2 v)) in
    let b = e + 24 in
    if b < 1 then 1 else if b > 63 then 63 else b
  end

let bucket_upper b = if b = 0 then 0. else Float.pow 2. (float_of_int (b - 23))

(* --- domain-local collectors --- *)

type event = {
  ev_name : string;
  ts : int64; (* monotonic ns *)
  dur : int64;
  depth : int; (* span-stack depth at open, 0 = domain root *)
  args : (string * string) list;
}

type collector = {
  domain : int;
  mutable counts : int array; (* indexed by counter id *)
  mutable hists : int array array; (* hist id -> bucket counts, [||] = untouched *)
  mutable gauges : int array; (* gauge id -> nano-unit integer sum *)
  mutable sks : Sketch.t option array; (* sketch id -> samples, None = untouched *)
  mutable events : event array;
  mutable n_events : int;
  mutable dropped : int;
  mutable depth : int;
}

(* Traces are capped so an instrumented tight loop cannot exhaust memory;
   overflowing events are counted, not silently lost. *)
let max_events = 1 lsl 18

(* The cap is surfaced loudly, once per run, the first time an
   aggregation sees drops (see [values]). *)
let warned_dropped = ref false

let collectors : collector list ref = ref []

let collector_key : collector Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      Mutex.lock registry_mutex;
      let c =
        {
          domain = (Domain.self () :> int);
          counts = Array.make (max 8 !n_counters) 0;
          hists = Array.make (max 8 !n_hists) [||];
          gauges = Array.make (max 8 !n_gauges) 0;
          sks = Array.make (max 8 !n_sketches) None;
          events = [||];
          n_events = 0;
          dropped = 0;
          depth = 0;
        }
      in
      collectors := c :: !collectors;
      Mutex.unlock registry_mutex;
      c)

let collector () = Domain.DLS.get collector_key

let reset () =
  Mutex.lock registry_mutex;
  List.iter
    (fun c ->
      Array.fill c.counts 0 (Array.length c.counts) 0;
      Array.iter
        (fun row -> if Array.length row > 0 then Array.fill row 0 buckets 0)
        c.hists;
      Array.fill c.gauges 0 (Array.length c.gauges) 0;
      Array.iter (Option.iter Sketch.reset) c.sks;
      c.n_events <- 0;
      c.dropped <- 0)
    !collectors;
  Mutex.unlock registry_mutex;
  warned_dropped := false;
  epoch := Clock.now_ns ()

(* --- counters --- *)

module Counter = struct
  type t = meta

  let make ?(timing = false) ?(help = "") name =
    register counter_metas n_counters ~timing ~help name

  let add t k =
    if Atomic.get on then begin
      let c = collector () in
      if t.id >= Array.length c.counts then begin
        let a = Array.make (max (t.id + 1) ((2 * Array.length c.counts) + 8)) 0 in
        Array.blit c.counts 0 a 0 (Array.length c.counts);
        c.counts <- a
      end;
      c.counts.(t.id) <- c.counts.(t.id) + k
    end

  let incr t = add t 1
end

(* --- gauges --- *)

module Gauge = struct
  type t = meta

  let make ?(timing = false) ?(help = "") name =
    register gauge_metas n_gauges ~timing ~help name

  (* Accumulated as integer nano-units so the cross-domain merge is an
     exact integer sum: float addition order would depend on scheduling
     and break cross-jobs byte-identity of exported values. *)
  let units v = int_of_float (Float.round (v *. 1e9))

  let add_units t u =
    if Atomic.get on then begin
      let c = collector () in
      if t.id >= Array.length c.gauges then begin
        let a = Array.make (max (t.id + 1) ((2 * Array.length c.gauges) + 8)) 0 in
        Array.blit c.gauges 0 a 0 (Array.length c.gauges);
        c.gauges <- a
      end;
      c.gauges.(t.id) <- c.gauges.(t.id) + u
    end

  let add t v = add_units t (units v)

  (* [k] copies of [v] in O(1); quantizes [v] once so the total equals a
     loop of [add t v] exactly. *)
  let add_scaled t v k = add_units t (k * units v)
end

(* --- quantile sketches --- *)

module Sketchm = struct
  type t = meta

  let make ?(timing = false) ?(help = "") name =
    register sketch_metas n_sketches ~timing ~help name

  let row c (t : meta) =
    if t.id >= Array.length c.sks then begin
      let a = Array.make (max (t.id + 1) ((2 * Array.length c.sks) + 8)) None in
      Array.blit c.sks 0 a 0 (Array.length c.sks);
      c.sks <- a
    end;
    match c.sks.(t.id) with
    | Some s -> s
    | None ->
      let s = Sketch.create () in
      c.sks.(t.id) <- Some s;
      s

  let observe t v = if Atomic.get on then Sketch.add (row (collector ()) t) v

  let observe_n t v k =
    if Atomic.get on then Sketch.add_n (row (collector ()) t) v k
end

(* --- histograms --- *)

module Histogram = struct
  type t = meta

  let make ?(timing = false) ?(help = "") name =
    register hist_metas n_hists ~timing ~help name

  let observe t v =
    if Atomic.get on then begin
      let c = collector () in
      if t.id >= Array.length c.hists then begin
        let a =
          Array.make (max (t.id + 1) ((2 * Array.length c.hists) + 8)) [||]
        in
        Array.blit c.hists 0 a 0 (Array.length c.hists);
        c.hists <- a
      end;
      let row =
        let r = c.hists.(t.id) in
        if Array.length r > 0 then r
        else begin
          let r = Array.make buckets 0 in
          c.hists.(t.id) <- r;
          r
        end
      in
      let b = bucket_of v in
      row.(b) <- row.(b) + 1
    end
end

(* --- spans --- *)

let record c ev =
  if c.n_events >= max_events then c.dropped <- c.dropped + 1
  else begin
    if c.n_events >= Array.length c.events then begin
      let cap = min max_events (max 256 (2 * Array.length c.events)) in
      let a = Array.make cap ev in
      Array.blit c.events 0 a 0 c.n_events;
      c.events <- a
    end;
    c.events.(c.n_events) <- ev;
    c.n_events <- c.n_events + 1
  end

(* Nesting is tracked per-collector, so a span can never have a
   cross-domain parent; the recorded depth reconstructs the stack. [argsf]
   is evaluated at close, for arguments only known then (items stolen). *)
let with_span ?(args = []) ?argsf name f =
  if not (Atomic.get on) then f ()
  else begin
    let c = collector () in
    let depth = c.depth in
    c.depth <- depth + 1;
    let t0 = Clock.now_ns () in
    let finish () =
      let t1 = Clock.now_ns () in
      c.depth <- depth;
      let args = match argsf with None -> args | Some g -> args @ g () in
      record c { ev_name = name; ts = t0; dur = Int64.sub t1 t0; depth; args }
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      finish ();
      Printexc.raise_with_backtrace e bt
  end

(* --- aggregation --- *)

(* One consistent cross-domain view of every scalar metric, shared by
   [snapshot] (final obs-metrics/v1 report) and the periodic Timeline
   captures / Prometheus exporter, which need full histogram bucket rows
   rather than the sparse nonzero encoding [report] uses. *)

type values = {
  v_counters : (meta * int) list; (* ascending name *)
  v_gauges : (meta * float) list; (* ascending name *)
  v_histograms : (meta * int array) list; (* full bucket rows, ascending name *)
  v_sketches : (meta * Sketch.t) list; (* merged copies, ascending name *)
}

(* Synthetic drop counters surface the two silent caps (span events per
   domain, ledger events per domain). They carry [timing = true]: whether
   and how much a cap trips under overflow depends on how the pool
   interleaved work, so the totals are scheduling-dependent. id = -1
   keeps them clear of the dense registered-id space. *)
let events_dropped_meta =
  {
    id = -1;
    name = "obs.events_dropped";
    timing = true;
    help = "Span events dropped by the per-domain trace cap";
  }

let ledger_truncated_meta =
  {
    id = -1;
    name = "ledger.events_truncated";
    timing = true;
    help = "Audit-ledger events truncated by the per-domain buffer cap";
  }

let values () =
  Mutex.lock registry_mutex;
  let cs = List.sort (fun a b -> compare a.domain b.domain) !collectors in
  let cmetas = List.rev !counter_metas in
  let hmetas = List.rev !hist_metas in
  let gmetas = List.rev !gauge_metas in
  let smetas = List.rev !sketch_metas in
  Mutex.unlock registry_mutex;
  let ev_dropped =
    List.fold_left (fun acc (c : collector) -> acc + c.dropped) 0 cs
  in
  if ev_dropped > 0 && not !warned_dropped then begin
    warned_dropped := true;
    Printf.eprintf
      "[obs] warning: span-event cap tripped: %d event(s) dropped (see \
       obs.events_dropped)\n\
       %!"
      ev_dropped
  end;
  let v_counters =
    List.map
      (fun m ->
        let total =
          List.fold_left
            (fun acc c ->
              acc + (if m.id < Array.length c.counts then c.counts.(m.id) else 0))
            0 cs
        in
        (m, total))
      cmetas
    @ [
        (events_dropped_meta, ev_dropped);
        (ledger_truncated_meta, Ledger.dropped_total ());
      ]
    |> List.sort (fun ((a : meta), _) (b, _) -> String.compare a.name b.name)
  in
  let v_gauges =
    List.map
      (fun m ->
        let units =
          List.fold_left
            (fun acc (c : collector) ->
              acc + (if m.id < Array.length c.gauges then c.gauges.(m.id) else 0))
            0 cs
        in
        (m, float_of_int units /. 1e9))
      gmetas
    |> List.sort (fun ((a : meta), _) (b, _) -> String.compare a.name b.name)
  in
  let v_sketches =
    List.map
      (fun m ->
        let acc = Sketch.create () in
        List.iter
          (fun (c : collector) ->
            if m.id < Array.length c.sks then
              Option.iter (fun s -> Sketch.merge_into ~into:acc s) c.sks.(m.id))
          cs;
        (m, acc))
      smetas
    |> List.sort (fun ((a : meta), _) (b, _) -> String.compare a.name b.name)
  in
  let v_histograms =
    List.map
      (fun m ->
        let acc = Array.make buckets 0 in
        List.iter
          (fun c ->
            if m.id < Array.length c.hists then begin
              let row = c.hists.(m.id) in
              if Array.length row > 0 then
                for b = 0 to buckets - 1 do
                  acc.(b) <- acc.(b) + row.(b)
                done
            end)
          cs;
        (m, acc))
      hmetas
    |> List.sort (fun ((a : meta), _) (b, _) -> String.compare a.name b.name)
  in
  { v_counters; v_gauges; v_histograms; v_sketches }

(* --- snapshot --- *)

type hist = {
  h_name : string;
  h_timing : bool;
  h_count : int;
  h_buckets : (int * int) list; (* nonzero (bucket index, count), ascending *)
}

type domain_report = {
  tid : int; (* dense track index, ascending domain id *)
  domain_id : int;
  events : event list;
  busy_ns : int64; (* sum of root-span durations *)
  ev_dropped : int;
}

type sketch_report = {
  sk_name : string;
  sk_timing : bool;
  sk : Sketch.t; (* merged across domains, ascending domain order *)
}

type report = {
  epoch_ns : int64;
  jobs : int;
  counters : (meta * int) list; (* ascending name *)
  gauges : (meta * float) list; (* ascending name *)
  histograms : hist list; (* ascending name *)
  sketches : sketch_report list; (* ascending name *)
  domains : domain_report list;
}

let snapshot ?(jobs = 1) () =
  let v = values () in
  Mutex.lock registry_mutex;
  let cs = List.sort (fun a b -> compare a.domain b.domain) !collectors in
  Mutex.unlock registry_mutex;
  let counters = v.v_counters in
  let gauges = v.v_gauges in
  let sketches =
    List.map
      (fun (m, sk) -> { sk_name = m.name; sk_timing = m.timing; sk })
      v.v_sketches
  in
  let histograms =
    List.map
      (fun (m, acc) ->
        let count = Array.fold_left ( + ) 0 acc in
        let bs = ref [] in
        for b = buckets - 1 downto 0 do
          if acc.(b) > 0 then bs := (b, acc.(b)) :: !bs
        done;
        { h_name = m.name; h_timing = m.timing; h_count = count; h_buckets = !bs })
      v.v_histograms
  in
  let domains =
    List.mapi
      (fun tid (c : collector) ->
        let events = Array.to_list (Array.sub c.events 0 c.n_events) in
        let busy =
          List.fold_left
            (fun acc (e : event) ->
              if e.depth = 0 then Int64.add acc e.dur else acc)
            0L events
        in
        {
          tid;
          domain_id = c.domain;
          events;
          busy_ns = busy;
          ev_dropped = c.dropped;
        })
      cs
  in
  { epoch_ns = !epoch; jobs; counters; gauges; histograms; sketches; domains }
