(** A fixed-size mergeable quantile sketch (HDR-histogram style log-linear
    buckets, 64 octaves x 16 sub-buckets), replacing eyeballed log2
    histogram reads for latency/cost percentiles.

    Quantile reads carry a bounded ~3% relative error and are clamped into
    the exact observed [min, max]. All state is integer bucket counts plus
    the two extrema, so {!merge_into} is commutative and associative:
    sketches merged in any grouping yield identical quantiles, which keeps
    sketch-derived metrics byte-identical at every [--jobs] for a
    deterministic sample stream. *)

type t

val create : unit -> t

val add : t -> float -> unit
(** Record one sample. Zero, negative and non-finite samples land in a
    dedicated underflow bucket (reported as [0.] by quantile reads). *)

val add_n : t -> float -> int -> unit
(** Record [k] copies of one sample in O(1). Raises [Invalid_argument] on
    a negative [k]. *)

val merge_into : into:t -> t -> unit
(** Accumulate [src] into [into]; [src] is unchanged. *)

val copy : t -> t

val diff : newer:t -> older:t -> t
(** [diff ~newer ~older] is the window sketch between two cumulative
    captures of one sample stream (bucket-wise subtraction; negative
    deltas clamp to zero). Window extrema are estimated from the occupied
    bucket range, so quantile reads keep the ~3% bucket error but lose
    the exact [min, max] clamp of a directly-built sketch. *)

val reset : t -> unit

val is_empty : t -> bool

val count : t -> int

val min_value : t -> float
(** Exact smallest finite positive sample ([nan] if none). *)

val max_value : t -> float
(** Exact largest finite positive sample ([nan] if none). *)

val quantile : t -> float -> float
(** [quantile t q] for [q] in [0, 1] (clamped): the bucket-midpoint value
    at rank [ceil q*n], clamped into [min, max]; [nan] on an empty
    sketch. *)
