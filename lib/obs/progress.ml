(* Stderr heartbeat for long parallel regions: items/sec and ETA, printed
   at most every quarter second from the calling domain only. Independent
   of the metric sink so `--progress` works without `--metrics`. *)

let on = Atomic.make false

let enable () = Atomic.set on true

let disable () = Atomic.set on false

let enabled () = Atomic.get on

type state = {
  label : string;
  total : int;
  started : int64;
  mutable last_print : int64;
  mutable ticks : int;
  mutable printed : bool;
}

type t = state option

let interval_ns = 250_000_000L

let start ?(label = "items") ~total () =
  if (not (Atomic.get on)) || total <= 0 then None
  else begin
    let now = Clock.now_ns () in
    Some { label; total; started = now; last_print = now; ticks = 0; printed = false }
  end

let print st done_ ~final =
  let now = Clock.now_ns () in
  let elapsed = Int64.to_float (Int64.sub now st.started) /. 1e9 in
  let rate = if elapsed > 0. then float_of_int done_ /. elapsed else 0. in
  if final then
    Printf.eprintf "\r[obs] %s: %d/%d in %.1fs (%.0f items/s)          \n%!"
      st.label done_ st.total elapsed rate
  else begin
    let eta =
      if rate > 0. && done_ < st.total then
        float_of_int (st.total - done_) /. rate
      else 0.
    in
    Printf.eprintf "\r[obs] %s: %d/%d (%.0f items/s, ETA %.1fs)   %!" st.label
      done_ st.total rate eta
  end;
  st.printed <- true;
  st.last_print <- now

(* The clock is only consulted every 16th tick so per-item overhead stays
   in the nanoseconds even for very fine-grained work items. *)
let tick t ~done_ =
  match t with
  | None -> ()
  | Some st ->
    st.ticks <- st.ticks + 1;
    if st.ticks land 15 = 0 then begin
      let now = Clock.now_ns () in
      if Int64.compare (Int64.sub now st.last_print) interval_ns >= 0 then
        print st done_ ~final:false
    end

(* Only regions that printed at least one heartbeat get a closing line, so
   fast regions stay silent. *)
let finish t ~done_ =
  match t with
  | None -> ()
  | Some st -> if st.printed then print st done_ ~final:true
