(** Prometheus text-exposition export of one metric aggregation.

    Metric names are sanitized into a ["pso_"] namespace; counters get
    ["_total"], histograms render as cumulative [_bucket{le=...}]
    series, sketches as summaries (quantile series plus [_count]).
    Every sample line carries a [class="deterministic"|"timing"] label
    so scrapes can segregate the cross-jobs-stable series, the same
    split every other export applies. *)

val render : Metric.values -> string

val write_file : string -> string -> unit
(** [write_file path content] rewrites [path] atomically (tmp file in
    the same directory, then rename) so a concurrent scraper never
    observes a torn exposition. *)

val validate : string -> (unit, string) result
(** Line-grammar check of an exposition document: every line is blank, a
    well-formed [# HELP]/[# TYPE] comment, or a sample
    ([name\{labels\} value \[timestamp\]] with a float/[+Inf]/[NaN]
    value). The error names the first offending line. *)
