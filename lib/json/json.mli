(** Minimal JSON: an AST, a canonical serializer and a strict parser.

    The toolchain has no JSON dependency, and the bench harness needs a
    machine-readable output contract that downstream tooling can rely on.
    Serialization is canonical — object keys are emitted in ascending
    lexicographic order regardless of construction order, and floats use
    the shortest decimal form that round-trips — so equal documents have
    equal renderings and diffs are stable across runs. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val number : float -> t
(** [Number f], except non-finite floats (which JSON cannot express)
    become [Null]. *)

val to_string : ?pretty:bool -> t -> string
(** Canonical rendering: object keys sorted, no trailing whitespace.
    [pretty] (default false) adds newlines and two-space indentation.
    Non-finite [Number]s render as [null]. *)

val of_string : string -> (t, string) result
(** Strict RFC 8259 parser (UTF-8, [\uXXXX] escapes decoded, no trailing
    garbage). Errors carry the byte offset. *)

val equal : t -> t -> bool
(** Structural equality, insensitive to object key order. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] on missing keys or non-objects. *)

val to_float : t -> float option
(** [Number] payload. *)

val to_int : t -> int option
(** [Number] payload when integral. *)

val to_list : t -> t list option

val to_string_opt : t -> string option
(** [String] payload. *)
