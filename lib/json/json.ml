type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let number f = if Float.is_finite f then Number f else Null

(* --- serialization --- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else
    (* Shortest decimal that round-trips, so renderings are canonical. *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let sorted_fields fields =
  List.stable_sort (fun (a, _) (b, _) -> String.compare a b) fields

let to_string ?(pretty = false) t =
  let buf = Buffer.create 256 in
  let pad depth = if pretty then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let newline () = if pretty then Buffer.add_char buf '\n' in
  let rec go depth t =
    match t with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Number f ->
      Buffer.add_string buf (if Float.is_finite f then float_repr f else "null")
    | String s -> escape buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      newline ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            newline ()
          end;
          pad (depth + 1);
          go (depth + 1) item)
        items;
      newline ();
      pad depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      newline ();
      List.iteri
        (fun i (k, v) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            newline ()
          end;
          pad (depth + 1);
          escape buf k;
          Buffer.add_string buf (if pretty then ": " else ":");
          go (depth + 1) v)
        (sorted_fields fields);
      newline ();
      pad depth;
      Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.contents buf

(* --- parsing --- *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> error (Printf.sprintf "expected '%c'" c)
  in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else error ("invalid literal, expected " ^ word)
  in
  let utf8_of_code buf u =
    if u < 0x80 then Buffer.add_char buf (Char.chr u)
    else if u < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then error "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then error "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= n then error "truncated escape";
         match s.[!pos] with
         | '"' -> Buffer.add_char buf '"'; advance ()
         | '\\' -> Buffer.add_char buf '\\'; advance ()
         | '/' -> Buffer.add_char buf '/'; advance ()
         | 'b' -> Buffer.add_char buf '\b'; advance ()
         | 'f' -> Buffer.add_char buf '\012'; advance ()
         | 'n' -> Buffer.add_char buf '\n'; advance ()
         | 'r' -> Buffer.add_char buf '\r'; advance ()
         | 't' -> Buffer.add_char buf '\t'; advance ()
         | 'u' ->
           advance ();
           (try utf8_of_code buf (hex4 ())
            with Failure _ -> error "invalid \\u escape")
         | c -> error (Printf.sprintf "invalid escape '\\%c'" c));
        loop ()
      | c when Char.code c < 0x20 -> error "raw control character in string"
      | c ->
        Buffer.add_char buf c;
        advance ();
        loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let digit c = c >= '0' && c <= '9' in
    if peek () = Some '-' then advance ();
    while (match peek () with Some c when digit c -> true | _ -> false) do
      advance ()
    done;
    if peek () = Some '.' then begin
      advance ();
      while (match peek () with Some c when digit c -> true | _ -> false) do
        advance ()
      done
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      while (match peek () with Some c when digit c -> true | _ -> false) do
        advance ()
      done
    | _ -> ());
    let slice = String.sub s start (!pos - start) in
    match float_of_string_opt slice with
    | Some f -> Number f
    | None ->
      pos := start;
      error "invalid number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ()
          | Some '}' -> advance ()
          | _ -> error "expected ',' or '}'"
        in
        members ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elements ()
          | Some ']' -> advance ()
          | _ -> error "expected ',' or ']'"
        in
        elements ();
        List (List.rev !items)
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> error (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then error "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
    Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

(* --- accessors --- *)

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Number x, Number y -> x = y
  | String x, String y -> String.equal x y
  | List x, List y -> List.length x = List.length y && List.for_all2 equal x y
  | Obj x, Obj y ->
    let x = sorted_fields x and y = sorted_fields y in
    List.length x = List.length y
    && List.for_all2 (fun (k, v) (k', v') -> String.equal k k' && equal v v') x y
  | _ -> false

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function Number f -> Some f | _ -> None

let to_int = function
  | Number f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_list = function List l -> Some l | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
