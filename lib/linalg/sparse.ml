type t = {
  m : int;
  n : int;
  row_ptr : int array;  (* length m+1; row i occupies [row_ptr.(i), row_ptr.(i+1)) *)
  col_idx : int array;  (* length nnz, ascending within each row *)
  values : float array;  (* length nnz *)
}

external spmv_mul :
  int array -> int array -> float array -> float array -> float array -> unit
  = "pso_spmv_mul"
[@@noalloc]

external spmv_tmul :
  int array -> int array -> float array -> float array -> float array -> unit
  = "pso_spmv_tmul"
[@@noalloc]

let rows t = t.m

let cols t = t.n

let nnz t = t.row_ptr.(t.m)

let row_nnz t i = t.row_ptr.(i + 1) - t.row_ptr.(i)

let of_rows ~cols:n rows_l =
  if n < 0 then invalid_arg "Sparse.of_rows: negative cols";
  let m = Array.length rows_l in
  let row_ptr = Array.make (m + 1) 0 in
  let sorted =
    Array.map
      (fun entries ->
        let entries =
          List.sort (fun (j, _) (j', _) -> compare j j') entries
        in
        let rec check = function
          | (j, _) :: (((j', _) :: _) as rest) ->
            if j = j' then invalid_arg "Sparse.of_rows: duplicate column";
            check rest
          | _ -> ()
        in
        check entries;
        List.iter
          (fun (j, _) ->
            if j < 0 || j >= n then invalid_arg "Sparse.of_rows: column out of range")
          entries;
        entries)
      rows_l
  in
  Array.iteri
    (fun i entries -> row_ptr.(i + 1) <- row_ptr.(i) + List.length entries)
    sorted;
  let total = row_ptr.(m) in
  let col_idx = Array.make total 0 in
  let values = Array.make total 0. in
  Array.iteri
    (fun i entries ->
      List.iteri
        (fun k (j, v) ->
          col_idx.(row_ptr.(i) + k) <- j;
          values.(row_ptr.(i) + k) <- v)
        entries)
    sorted;
  { m; n; row_ptr; col_idx; values }

let of_subset_queries ~query ~n =
  let m = Array.length query in
  let row_ptr = Array.make (m + 1) 0 in
  let sorted =
    Array.map
      (fun indices ->
        Array.iter
          (fun i ->
            if i < 0 || i >= n then
              invalid_arg "Sparse.of_subset_queries: index out of range")
          indices;
        let s = Array.copy indices in
        Array.sort compare s;
        (* collapse duplicates in place; the dense builder's [set _ _ 1.] is
           idempotent, so a repeated index is a single 1 *)
        let len = Array.length s in
        let w = ref 0 in
        for r = 0 to len - 1 do
          if r = 0 || s.(r) <> s.(r - 1) then begin
            s.(!w) <- s.(r);
            incr w
          end
        done;
        (s, !w))
      query
  in
  Array.iteri (fun i (_, len) -> row_ptr.(i + 1) <- row_ptr.(i) + len) sorted;
  let total = row_ptr.(m) in
  let col_idx = Array.make total 0 in
  let values = Array.make total 1. in
  Array.iteri
    (fun i (s, len) -> Array.blit s 0 col_idx row_ptr.(i) len)
    sorted;
  { m; n; row_ptr; col_idx; values }

let of_matrix a =
  let m = Matrix.rows a and n = Matrix.cols a in
  let row_ptr = Array.make (m + 1) 0 in
  for i = 0 to m - 1 do
    let c = ref 0 in
    for j = 0 to n - 1 do
      if Matrix.get a i j <> 0. then incr c
    done;
    row_ptr.(i + 1) <- row_ptr.(i) + !c
  done;
  let total = row_ptr.(m) in
  let col_idx = Array.make total 0 in
  let values = Array.make total 0. in
  let cursor = ref 0 in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      let v = Matrix.get a i j in
      if v <> 0. then begin
        col_idx.(!cursor) <- j;
        values.(!cursor) <- v;
        incr cursor
      end
    done
  done;
  { m; n; row_ptr; col_idx; values }

let to_matrix t =
  let a = Matrix.create ~rows:t.m ~cols:t.n 0. in
  for i = 0 to t.m - 1 do
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      Matrix.set a i t.col_idx.(k) t.values.(k)
    done
  done;
  a

let fold_row t i ~init ~f =
  let acc = ref init in
  for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
    acc := f !acc t.col_idx.(k) t.values.(k)
  done;
  !acc

let iter_row t i ~f =
  for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
    f t.col_idx.(k) t.values.(k)
  done

let mul_vec_into t x y =
  if Array.length x <> t.n then invalid_arg "Sparse.mul_vec: dimension mismatch";
  if Array.length y <> t.m then invalid_arg "Sparse.mul_vec: output dimension mismatch";
  spmv_mul t.row_ptr t.col_idx t.values x y

let mul_vec t x =
  let y = Array.make t.m 0. in
  mul_vec_into t x y;
  y

let tmul_vec_into t y out =
  if Array.length y <> t.m then invalid_arg "Sparse.tmul_vec: dimension mismatch";
  if Array.length out <> t.n then
    invalid_arg "Sparse.tmul_vec: output dimension mismatch";
  spmv_tmul t.row_ptr t.col_idx t.values y out

let tmul_vec t y =
  let out = Array.make t.n 0. in
  tmul_vec_into t y out;
  out

let mul_vec_ml t x =
  if Array.length x <> t.n then invalid_arg "Sparse.mul_vec: dimension mismatch";
  Array.init t.m (fun i ->
      let acc = ref 0. in
      for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
        acc := !acc +. (t.values.(k) *. x.(t.col_idx.(k)))
      done;
      !acc)

let tmul_vec_ml t y =
  if Array.length y <> t.m then invalid_arg "Sparse.tmul_vec: dimension mismatch";
  let out = Array.make t.n 0. in
  for i = 0 to t.m - 1 do
    let yi = y.(i) in
    if yi <> 0. then
      for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
        let j = t.col_idx.(k) in
        out.(j) <- out.(j) +. (t.values.(k) *. yi)
      done
  done;
  out

let restrict_cols t ~keep =
  let k = Array.length keep in
  Array.iteri
    (fun i j ->
      if j < 0 || j >= t.n || (i > 0 && j <= keep.(i - 1)) then
        invalid_arg "Sparse.restrict_cols: keep must be strictly increasing and in range")
    keep;
  let remap = Array.make t.n (-1) in
  Array.iteri (fun new_j old_j -> remap.(old_j) <- new_j) keep;
  let row_ptr = Array.make (t.m + 1) 0 in
  for i = 0 to t.m - 1 do
    let c = ref 0 in
    for p = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      if remap.(t.col_idx.(p)) >= 0 then incr c
    done;
    row_ptr.(i + 1) <- row_ptr.(i) + !c
  done;
  let total = row_ptr.(t.m) in
  let col_idx = Array.make total 0 in
  let values = Array.make total 0. in
  let cursor = ref 0 in
  for i = 0 to t.m - 1 do
    for p = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      let nj = remap.(t.col_idx.(p)) in
      if nj >= 0 then begin
        col_idx.(!cursor) <- nj;
        values.(!cursor) <- t.values.(p);
        incr cursor
      end
    done
  done;
  { m = t.m; n = k; row_ptr; col_idx; values }

let scale_rows t ~w =
  if Array.length w <> t.m then invalid_arg "Sparse.scale_rows: length mismatch";
  let values = Array.copy t.values in
  for i = 0 to t.m - 1 do
    for p = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      values.(p) <- values.(p) *. w.(i)
    done
  done;
  { t with values }
