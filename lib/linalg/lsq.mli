(** Least-squares solvers.

    The polynomial-time reconstruction attack of Theorem 1.1(ii) solves, from
    noisy subset-count answers [a ≈ A x], the box-constrained least-squares
    problem [min_{z ∈ [0,1]^n} ‖A z − a‖²] and rounds the solution to
    {0,1}^n. This module provides a conjugate-gradient solver for the
    unconstrained normal equations and a projected-gradient solver for the
    box-constrained problem.

    Both solvers operate over an abstract {!op} — a dense {!Matrix.t} or a
    CSR {!Sparse.t} — and accept an [?x0] warm start. At census scale the
    per-block systems are near-duplicates of their neighbors, so warm-starting
    a block from the previous block's solution cuts the iteration count; the
    [linalg.lsq_cold_iterations] / [linalg.lsq_warm_iterations] counters
    expose the split. *)

type options = {
  max_iter : int;  (** iteration cap *)
  tolerance : float;  (** stop when the (projected) gradient norm drops below this *)
}

val default_options : options

type op = {
  op_rows : int;
  op_cols : int;
  apply : Vector.t -> Vector.t;  (** [A x] *)
  tapply : Vector.t -> Vector.t;  (** [Aᵀ y] *)
}
(** A linear operator given by its forward and transpose applications. *)

val of_matrix : Matrix.t -> op

val of_sparse : Sparse.t -> op

type solution = {
  x : Vector.t;
  iterations : int;
  converged : bool;  (** false when the iteration cap stopped the solve *)
}

val cg :
  ?options:options -> ?x0:Vector.t -> (Vector.t -> Vector.t) -> Vector.t -> solution
(** [cg apply b] solves [M z = b] for symmetric positive-semidefinite [M]
    given as the operator [apply]. Starts from [x0] when given (computing
    the true initial residual [b − M x0]), else from the zero vector. *)

val conjugate_gradient :
  ?options:options -> ?x0:Vector.t -> (Vector.t -> Vector.t) -> Vector.t -> Vector.t
(** [cg] returning only the solution vector. *)

val box :
  ?options:options ->
  ?x0:Vector.t ->
  op ->
  Vector.t ->
  lo:Vector.t ->
  hi:Vector.t ->
  solution
(** [box o b ~lo ~hi] approximately minimizes [‖A z − b‖²] over the
    per-coordinate box [∏ \[lo.(i), hi.(i)\]] by projected gradient descent
    with a Lipschitz step size estimated by power iteration on [AᵀA].
    Starts from [x0] clamped into the box when given, else from the box
    midpoint. Raises [Invalid_argument] if some [hi.(i) < lo.(i)]. *)

val solve_box :
  ?options:options ->
  ?x0:Vector.t ->
  Matrix.t ->
  Vector.t ->
  lo:float ->
  hi:float ->
  Vector.t
(** [box] over a dense matrix with the same scalar bounds in every
    coordinate. *)

val solve_box_sparse :
  ?options:options ->
  ?x0:Vector.t ->
  Sparse.t ->
  Vector.t ->
  lo:float ->
  hi:float ->
  Vector.t
(** [box] over a CSR matrix with scalar bounds. *)

val lipschitz_op : op -> float
(** Largest singular value squared of the operator, by power iteration —
    the reciprocal of the projected-gradient step size. *)

val residual : Matrix.t -> Vector.t -> Vector.t -> float
(** [residual a z b] is [‖A z − b‖²]. *)

val residual_op : op -> Vector.t -> Vector.t -> float
