type t = { lo : float array; hi : float array }

let make ~n ~lo ~hi =
  if hi < lo then invalid_arg "Intervals.make: empty box";
  { lo = Array.make n lo; hi = Array.make n hi }

let copy b = { lo = Array.copy b.lo; hi = Array.copy b.hi }

let width b j = b.hi.(j) -. b.lo.(j)

let is_fixed b j = b.lo.(j) = b.hi.(j)

let fixed_count b =
  let c = ref 0 in
  for j = 0 to Array.length b.lo - 1 do
    if is_fixed b j then incr c
  done;
  !c

(* Inward integral rounding with a tolerance so that a bound sitting a hair
   above/below an integer (from float division) still admits that integer. *)
let eps = 1e-9

let round_lo ~integral v = if integral then Float.ceil (v -. eps) else v

let round_hi ~integral v = if integral then Float.floor (v +. eps) else v

let propagate ?(integral = true) ?(max_passes = 50) a ~row_lo ~row_hi box =
  let m = Sparse.rows a and n = Sparse.cols a in
  if Array.length row_lo <> m || Array.length row_hi <> m then
    invalid_arg "Intervals.propagate: row bound dimension mismatch";
  if Array.length box.lo <> n || Array.length box.hi <> n then
    invalid_arg "Intervals.propagate: box dimension mismatch";
  let lo = Array.make n 0. and hi = Array.make n 0. in
  for j = 0 to n - 1 do
    lo.(j) <- round_lo ~integral box.lo.(j);
    hi.(j) <- round_hi ~integral box.hi.(j)
  done;
  let empty = ref (-1) in
  for j = 0 to n - 1 do
    if !empty < 0 && lo.(j) > hi.(j) then empty := j
  done;
  let changed = ref true in
  let pass = ref 0 in
  while !changed && !empty < 0 && !pass < max_passes do
    changed := false;
    incr pass;
    let r = ref 0 in
    while !empty < 0 && !r < m do
      let s_lo = ref 0. and s_hi = ref 0. in
      Sparse.iter_row a !r ~f:(fun j v ->
          if v < 0. then invalid_arg "Intervals.propagate: negative coefficient";
          s_lo := !s_lo +. (v *. lo.(j));
          s_hi := !s_hi +. (v *. hi.(j)));
      Sparse.iter_row a !r ~f:(fun j v ->
          if !empty < 0 && v > 0. then begin
            (* others' max contribution leaves this much for x_j at least *)
            let new_lo =
              round_lo ~integral
                ((row_lo.(!r) -. (!s_hi -. (v *. hi.(j)))) /. v)
            in
            let new_hi =
              round_hi ~integral
                ((row_hi.(!r) -. (!s_lo -. (v *. lo.(j)))) /. v)
            in
            if new_lo > lo.(j) then begin
              lo.(j) <- new_lo;
              changed := true
            end;
            if new_hi < hi.(j) then begin
              hi.(j) <- new_hi;
              changed := true
            end;
            if lo.(j) > hi.(j) then empty := j
          end);
      incr r
    done
  done;
  match !empty with j when j >= 0 -> `Empty j | _ -> `Bounded { lo; hi }

(* Depth-first integer feasibility with propagation at every node; [budget]
   counts propagation calls. Exhausting the budget returns [true] (unknown
   counts as feasible), so [false] is always a proof of infeasibility. *)
let rec search budget a ~row_lo ~row_hi box =
  if !budget <= 0 then true
  else begin
    decr budget;
    match propagate a ~row_lo ~row_hi box with
    | `Empty _ -> false
    | `Bounded b ->
      let n = Array.length b.lo in
      let pick = ref (-1) and widest = ref 0. in
      for j = 0 to n - 1 do
        let w = width b j in
        if w > !widest then begin
          widest := w;
          pick := j
        end
      done;
      if !pick < 0 then true
        (* all variables fixed and propagation found no violated row *)
      else begin
        let j = !pick in
        let mid = Float.floor ((b.lo.(j) +. b.hi.(j)) /. 2.) in
        let left = copy b in
        left.hi.(j) <- mid;
        let right = copy b in
        right.lo.(j) <- mid +. 1.;
        search budget a ~row_lo ~row_hi left
        || search budget a ~row_lo ~row_hi right
      end
  end

let feasible ?(budget = 2000) a ~row_lo ~row_hi box =
  search (ref budget) a ~row_lo ~row_hi box

let shave ?(budget = 2000) a ~row_lo ~row_hi box =
  match propagate a ~row_lo ~row_hi box with
  | `Empty _ -> copy box
  | `Bounded b ->
    let budget = ref budget in
    let n = Array.length b.lo in
    let refuted probe = not (search budget a ~row_lo ~row_hi probe) in
    for j = 0 to n - 1 do
      let continue_ = ref true in
      while !continue_ && !budget > 0 && not (is_fixed b j) do
        let probe = copy b in
        probe.hi.(j) <- b.lo.(j);
        if refuted probe then b.lo.(j) <- b.lo.(j) +. 1. else continue_ := false
      done;
      let continue_ = ref true in
      while !continue_ && !budget > 0 && not (is_fixed b j) do
        let probe = copy b in
        probe.lo.(j) <- b.hi.(j);
        if refuted probe then b.hi.(j) <- b.hi.(j) -. 1. else continue_ := false
      done
    done;
    b
