(** Compressed sparse row (CSR) matrices.

    The dense [Matrix] representation materializes m×n floats, which caps
    reconstruction at block-toy scale. A census block system has 133 rows
    over 2400 joint cells but under 10k nonzeros, and the solvers only ever
    need [A x] and [Aᵀ y] — so CSR (row pointers + column indices + values)
    is the scale-out representation. The SpMV kernels run in C with no
    per-row allocation and are bit-identical to the dense loops for finite
    inputs (same ascending-column accumulation order, no FMA contraction). *)

type t

val of_rows : cols:int -> (int * float) list array -> t
(** [of_rows ~cols rows] builds a CSR matrix from per-row association lists
    of [(column, value)] entries. Entries are sorted by column; duplicate
    columns within a row and out-of-range columns raise
    [Invalid_argument]. Explicit zero entries are kept. *)

val of_subset_queries : query:int array array -> n:int -> t
(** Sparse equivalent of {!Matrix.of_subset_queries}: row [q] has value 1 at
    the indices of [query.(q)]. Duplicate indices within a query are
    collapsed to a single 1 (the dense builder's [set] is idempotent). *)

val of_matrix : Matrix.t -> t
(** Drops exact-zero entries. *)

val to_matrix : t -> Matrix.t

val rows : t -> int

val cols : t -> int

val nnz : t -> int

val row_nnz : t -> int -> int
(** Number of stored entries in one row. *)

val fold_row : t -> int -> init:'a -> f:('a -> int -> float -> 'a) -> 'a
(** [fold_row a i ~init ~f] folds [f acc j a_ij] over the stored entries of
    row [i] in ascending column order, without copying. *)

val iter_row : t -> int -> f:(int -> float -> unit) -> unit

val mul_vec : t -> Vector.t -> Vector.t
(** [mul_vec a x] is [A x] via the C SpMV kernel. Raises [Invalid_argument]
    on dimension mismatch. *)

val tmul_vec : t -> Vector.t -> Vector.t
(** [tmul_vec a y] is [Aᵀ y]. Rows with [y.(i) = 0.] are skipped, matching
    the dense kernel. *)

val mul_vec_into : t -> Vector.t -> Vector.t -> unit
(** [mul_vec_into a x y] stores [A x] into [y] with no allocation. *)

val tmul_vec_into : t -> Vector.t -> Vector.t -> unit
(** [tmul_vec_into a y out] stores [Aᵀ y] into [out] (zeroing it first) with
    no allocation. *)

val mul_vec_ml : t -> Vector.t -> Vector.t
(** Pure-OCaml reference implementation of {!mul_vec}; the property tests
    cross-check the C kernel against it. *)

val tmul_vec_ml : t -> Vector.t -> Vector.t
(** Pure-OCaml reference implementation of {!tmul_vec}. *)

val restrict_cols : t -> keep:int array -> t
(** [restrict_cols a ~keep] is the submatrix of the columns listed in
    [keep] (strictly increasing), renumbered to [0 .. length keep - 1].
    Used to eliminate variables pinned by interval propagation before a
    solve. Raises [Invalid_argument] if [keep] is not strictly increasing
    or out of range. *)

val scale_rows : t -> w:float array -> t
(** [scale_rows a ~w] multiplies row [i] by [w.(i)] — row equilibration
    for ill-conditioned systems (e.g. a dense total row next to sparse
    marginal rows). Raises [Invalid_argument] on a length mismatch. *)
