type t = { rows : int; cols : int; data : float array }

let create ~rows ~cols v =
  if rows < 0 || cols < 0 then invalid_arg "Matrix.create";
  { rows; cols; data = Array.make (rows * cols) v }

let of_rows r =
  let nrows = Array.length r in
  if nrows = 0 then invalid_arg "Matrix.of_rows: no rows";
  let ncols = Array.length r.(0) in
  Array.iter
    (fun row ->
      if Array.length row <> ncols then
        invalid_arg "Matrix.of_rows: ragged rows")
    r;
  let m = create ~rows:nrows ~cols:ncols 0. in
  Array.iteri
    (fun i row -> Array.iteri (fun j v -> m.data.((i * ncols) + j) <- v) row)
    r;
  m

let rows m = m.rows

let cols m = m.cols

let get m i j = m.data.((i * m.cols) + j)

let set m i j v = m.data.((i * m.cols) + j) <- v

let row m i = Array.sub m.data (i * m.cols) m.cols

let fold_row m i ~init ~f =
  let base = i * m.cols in
  let acc = ref init in
  for j = 0 to m.cols - 1 do
    acc := f !acc j m.data.(base + j)
  done;
  !acc

let iter_row m i ~f =
  let base = i * m.cols in
  for j = 0 to m.cols - 1 do
    f j m.data.(base + j)
  done

let mul_vec m x =
  if Array.length x <> m.cols then invalid_arg "Matrix.mul_vec: dimension mismatch";
  Array.init m.rows (fun i ->
      let acc = ref 0. in
      let base = i * m.cols in
      for j = 0 to m.cols - 1 do
        acc := !acc +. (m.data.(base + j) *. x.(j))
      done;
      !acc)

let tmul_vec m y =
  if Array.length y <> m.rows then invalid_arg "Matrix.tmul_vec: dimension mismatch";
  let out = Array.make m.cols 0. in
  for i = 0 to m.rows - 1 do
    let base = i * m.cols in
    let yi = y.(i) in
    if yi <> 0. then
      for j = 0 to m.cols - 1 do
        out.(j) <- out.(j) +. (m.data.(base + j) *. yi)
      done
  done;
  out

let mul a b =
  if a.cols <> b.rows then invalid_arg "Matrix.mul: dimension mismatch";
  let out = create ~rows:a.rows ~cols:b.cols 0. in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = get a i k in
      if aik <> 0. then
        for j = 0 to b.cols - 1 do
          set out i j (get out i j +. (aik *. get b k j))
        done
    done
  done;
  out

let transpose m =
  let out = create ~rows:m.cols ~cols:m.rows 0. in
  for i = 0 to m.rows - 1 do
    for j = 0 to m.cols - 1 do
      set out j i (get m i j)
    done
  done;
  out

let identity n =
  let m = create ~rows:n ~cols:n 0. in
  for i = 0 to n - 1 do
    set m i i 1.
  done;
  m

let of_subset_queries ~query ~n =
  let m = create ~rows:(Array.length query) ~cols:n 0. in
  Array.iteri
    (fun q indices ->
      Array.iter
        (fun i ->
          if i < 0 || i >= n then
            invalid_arg "Matrix.of_subset_queries: index out of range";
          set m q i 1.)
        indices)
    query;
  m
