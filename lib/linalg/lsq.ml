type options = { max_iter : int; tolerance : float }

let default_options = { max_iter = 500; tolerance = 1e-9 }

type op = {
  op_rows : int;
  op_cols : int;
  apply : Vector.t -> Vector.t;
  tapply : Vector.t -> Vector.t;
}

let of_matrix a =
  {
    op_rows = Matrix.rows a;
    op_cols = Matrix.cols a;
    apply = Matrix.mul_vec a;
    tapply = Matrix.tmul_vec a;
  }

let of_sparse a =
  {
    op_rows = Sparse.rows a;
    op_cols = Sparse.cols a;
    apply = Sparse.mul_vec a;
    tapply = Sparse.tmul_vec a;
  }

type solution = { x : Vector.t; iterations : int; converged : bool }

let c_iters = Obs.Counter.make "linalg.lsq_iterations"

let c_cold_iters = Obs.Counter.make "linalg.lsq_cold_iterations"

let c_warm_iters = Obs.Counter.make "linalg.lsq_warm_iterations"

let c_warm_starts = Obs.Counter.make "linalg.lsq_warm_starts"

let record_iters ~warm iters =
  Obs.Counter.add c_iters iters;
  if warm then begin
    Obs.Counter.incr c_warm_starts;
    Obs.Counter.add c_warm_iters iters
  end
  else Obs.Counter.add c_cold_iters iters

let cg ?(options = default_options) ?x0 apply b =
  let n = Vector.dim b in
  let x, r =
    match x0 with
    | None -> (Vector.create n 0., Vector.copy b)
    | Some x0 ->
      if Vector.dim x0 <> n then invalid_arg "Lsq.cg: x0 dimension mismatch";
      (Vector.copy x0, Vector.sub b (apply x0))
  in
  let p = Vector.copy r in
  let rs_old = ref (Vector.dot r r) in
  let iter = ref 0 in
  let converged = ref (!rs_old <= options.tolerance *. options.tolerance) in
  let continue_ = ref (not !converged) in
  while !continue_ && !iter < options.max_iter do
    let ap = apply p in
    let pap = Vector.dot p ap in
    if pap <= 0. then continue_ := false
    else begin
      let alpha = !rs_old /. pap in
      Vector.axpy alpha p x;
      Vector.axpy (-.alpha) ap r;
      let rs_new = Vector.dot r r in
      if Float.sqrt rs_new < options.tolerance then begin
        converged := true;
        continue_ := false
      end
      else begin
        let beta = rs_new /. !rs_old in
        for i = 0 to n - 1 do
          p.(i) <- r.(i) +. (beta *. p.(i))
        done;
        rs_old := rs_new
      end;
      incr iter
    end
  done;
  record_iters ~warm:(x0 <> None) !iter;
  { x; iterations = !iter; converged = !converged }

let conjugate_gradient ?options ?x0 apply b = (cg ?options ?x0 apply b).x

(* Largest singular value of A, squared, via power iteration on AᵀA. *)
let lipschitz_op o =
  let n = o.op_cols in
  let v = ref (Array.init n (fun i -> 1. /. Float.sqrt (float_of_int (max n 1)) +. (0.001 *. float_of_int i))) in
  let lambda = ref 1. in
  for _ = 1 to 50 do
    let w = o.tapply (o.apply !v) in
    let norm = Vector.norm2 w in
    if norm > 0. then begin
      lambda := norm;
      v := Vector.scale (1. /. norm) w
    end
  done;
  Float.max !lambda 1e-12

let residual a z b =
  let r = Vector.sub (Matrix.mul_vec a z) b in
  Vector.dot r r

let residual_op o z b =
  let r = Vector.sub (o.apply z) b in
  Vector.dot r r

let clamp_into ~lo ~hi v =
  let n = Array.length v in
  Array.init n (fun i ->
      let x = v.(i) in
      if x < lo.(i) then lo.(i) else if x > hi.(i) then hi.(i) else x)

let box ?(options = default_options) ?x0 o b ~lo ~hi =
  let n = o.op_cols in
  if Vector.dim lo <> n || Vector.dim hi <> n then
    invalid_arg "Lsq.box: bound dimension mismatch";
  for i = 0 to n - 1 do
    if hi.(i) < lo.(i) then invalid_arg "Lsq.box: empty box"
  done;
  let step = 1. /. lipschitz_op o in
  let z =
    ref
      (match x0 with
      | Some z0 ->
        if Vector.dim z0 <> n then invalid_arg "Lsq.box: x0 dimension mismatch";
        clamp_into ~lo ~hi z0
      | None -> Array.init n (fun i -> (lo.(i) +. hi.(i)) /. 2.))
  in
  let iter = ref 0 in
  let converged = ref false in
  let continue_ = ref true in
  while !continue_ && !iter < options.max_iter do
    let grad = o.tapply (Vector.sub (o.apply !z) b) in
    let next = clamp_into ~lo ~hi (Vector.sub !z (Vector.scale step grad)) in
    let moved = Vector.norm2 (Vector.sub next !z) in
    z := next;
    if moved < options.tolerance then begin
      converged := true;
      continue_ := false
    end;
    incr iter
  done;
  record_iters ~warm:(x0 <> None) !iter;
  { x = !z; iterations = !iter; converged = !converged }

let solve_box ?options ?x0 a b ~lo ~hi =
  if hi < lo then invalid_arg "Lsq.solve_box: empty box";
  let n = Matrix.cols a in
  let lo_v = Vector.create n lo and hi_v = Vector.create n hi in
  (box ?options ?x0 (of_matrix a) b ~lo:lo_v ~hi:hi_v).x

let solve_box_sparse ?options ?x0 a b ~lo ~hi =
  if hi < lo then invalid_arg "Lsq.solve_box_sparse: empty box";
  let n = Sparse.cols a in
  let lo_v = Vector.create n lo and hi_v = Vector.create n hi in
  (box ?options ?x0 (of_sparse a) b ~lo:lo_v ~hi:hi_v).x
