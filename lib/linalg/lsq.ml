type options = { max_iter : int; tolerance : float }

let default_options = { max_iter = 500; tolerance = 1e-9 }

let c_iters = Obs.Counter.make "linalg.lsq_iterations"

let conjugate_gradient ?(options = default_options) apply b =
  let n = Vector.dim b in
  let x = Vector.create n 0. in
  let r = Vector.copy b in
  let p = Vector.copy b in
  let rs_old = ref (Vector.dot r r) in
  let iter = ref 0 in
  let continue_ = ref (!rs_old > options.tolerance *. options.tolerance) in
  while !continue_ && !iter < options.max_iter do
    let ap = apply p in
    let pap = Vector.dot p ap in
    if pap <= 0. then continue_ := false
    else begin
      let alpha = !rs_old /. pap in
      Vector.axpy alpha p x;
      Vector.axpy (-.alpha) ap r;
      let rs_new = Vector.dot r r in
      if Float.sqrt rs_new < options.tolerance then continue_ := false
      else begin
        let beta = rs_new /. !rs_old in
        for i = 0 to n - 1 do
          p.(i) <- r.(i) +. (beta *. p.(i))
        done;
        rs_old := rs_new
      end;
      incr iter
    end
  done;
  Obs.Counter.add c_iters !iter;
  x

(* Largest singular value of A, squared, via power iteration on AᵀA. *)
let lipschitz a =
  let n = Matrix.cols a in
  let v = ref (Array.init n (fun i -> 1. /. Float.sqrt (float_of_int (max n 1)) +. (0.001 *. float_of_int i))) in
  let lambda = ref 1. in
  for _ = 1 to 50 do
    let w = Matrix.tmul_vec a (Matrix.mul_vec a !v) in
    let norm = Vector.norm2 w in
    if norm > 0. then begin
      lambda := norm;
      v := Vector.scale (1. /. norm) w
    end
  done;
  Float.max !lambda 1e-12

let residual a z b =
  let r = Vector.sub (Matrix.mul_vec a z) b in
  Vector.dot r r

let solve_box ?(options = default_options) a b ~lo ~hi =
  if hi < lo then invalid_arg "Lsq.solve_box: empty box";
  let n = Matrix.cols a in
  let step = 1. /. lipschitz a in
  let z = ref (Vector.create n ((lo +. hi) /. 2.)) in
  let iter = ref 0 in
  let continue_ = ref true in
  while !continue_ && !iter < options.max_iter do
    let grad = Matrix.tmul_vec a (Vector.sub (Matrix.mul_vec a !z) b) in
    let next = Vector.clamp ~lo ~hi (Vector.sub !z (Vector.scale step grad)) in
    let moved = Vector.norm2 (Vector.sub next !z) in
    z := next;
    if moved < options.tolerance then continue_ := false;
    incr iter
  done;
  Obs.Counter.add c_iters !iter;
  !z
