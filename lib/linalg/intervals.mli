(** Interval constraint propagation and branch-and-bound refinement.

    The census publication model hides small counts (cells below a
    suppression threshold are not released), so a reconstruction attacker
    faces a system of interval constraints [blo_r ≤ (A x)_r ≤ bhi_r] rather
    than exact equations. This module tightens per-variable boxes against
    such a system: plain interval propagation to a fixpoint, and a budgeted
    branch-and-bound "shave" that discards integer endpoint values it can
    prove infeasible.

    Both refinements are sound: they never exclude any integer point that
    satisfies all row constraints, so the true solution always stays inside
    the box (the property test checks exactly this). Rows must have
    nonnegative coefficients — subset-count matrices are 0/1. *)

type t = { lo : float array; hi : float array }
(** Per-variable inclusive bounds. *)

val make : n:int -> lo:float -> hi:float -> t

val copy : t -> t

val width : t -> int -> float

val is_fixed : t -> int -> bool
(** The variable's interval contains a single point. *)

val fixed_count : t -> int

val propagate :
  ?integral:bool ->
  ?max_passes:int ->
  Sparse.t ->
  row_lo:float array ->
  row_hi:float array ->
  t ->
  [ `Bounded of t | `Empty of int ]
(** [propagate a ~row_lo ~row_hi box] tightens [box] against
    [row_lo ≤ A x ≤ row_hi] by iterating the row rule: with
    [S_lo = Σ_j a_rj·lo_j] and [S_hi = Σ_j a_rj·hi_j] over row [r],

      [x_j ≥ (row_lo_r − (S_hi − a_rj·hi_j)) / a_rj]
      [x_j ≤ (row_hi_r − (S_lo − a_rj·lo_j)) / a_rj]

    until a fixpoint (or [max_passes], default 50). With [~integral:true]
    (default) the bounds also round inward to integers. Returns [`Empty j]
    when variable [j]'s interval became empty — the constraints are
    mutually unsatisfiable. The input box is not mutated. *)

val feasible :
  ?budget:int ->
  Sparse.t ->
  row_lo:float array ->
  row_hi:float array ->
  t ->
  bool
(** [feasible a ~row_lo ~row_hi box] searches for an integer point of [box]
    satisfying the row intervals, by depth-first branching on the widest
    variable with propagation at every node. The search is budgeted
    ([budget] propagation calls, default 2000); when the budget runs out the
    answer is [true] ("not proven infeasible"), so a [false] is a proof. *)

val shave :
  ?budget:int ->
  Sparse.t ->
  row_lo:float array ->
  row_hi:float array ->
  t ->
  t
(** [shave a ~row_lo ~row_hi box] tightens integer endpoints by refutation:
    for each variable, if fixing it to its lower (upper) endpoint is proven
    infeasible by {!feasible}, the endpoint moves inward, repeating while
    the proof succeeds. Sound for the same reason {!feasible} is: an
    endpoint is only removed with an infeasibility proof. The [budget]
    (default 2000) is shared across the whole shave. *)
