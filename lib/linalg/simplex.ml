type relation = Le | Ge | Eq

type problem = {
  objective : float array;
  constraints : (float array * relation * float) list;
}

type outcome =
  | Optimal of { x : float array; objective : float }
  | Infeasible
  | Unbounded

let epsilon = 1e-7

(* Tableau layout: m constraint rows over [total] structural+slack+artificial
   columns, an RHS column, and an objective row kept reduced with respect to
   the current basis. *)
type tableau = {
  m : int;
  total : int;
  rows : float array array;  (* m rows of length total+1 (last = rhs) *)
  obj : float array;  (* length total+1; last entry is -objective value *)
  basis : int array;  (* column currently basic in each row *)
}

let c_pivots = Obs.Counter.make "linalg.simplex_pivots"

let pivot t ~row ~col =
  Obs.Counter.incr c_pivots;
  let piv = t.rows.(row).(col) in
  let width = t.total + 1 in
  let r = t.rows.(row) in
  for j = 0 to width - 1 do
    r.(j) <- r.(j) /. piv
  done;
  let eliminate target =
    let factor = target.(col) in
    if Float.abs factor > 0. then
      for j = 0 to width - 1 do
        target.(j) <- target.(j) -. (factor *. r.(j))
      done
  in
  for i = 0 to t.m - 1 do
    if i <> row then eliminate t.rows.(i)
  done;
  eliminate t.obj;
  t.basis.(row) <- col

(* Entering column: Dantzig (most negative reduced cost) normally; Bland
   (lowest index) once [bland] is set, to guarantee termination. *)
let entering t ~allowed ~bland =
  if bland then begin
    let found = ref (-1) in
    (try
       for j = 0 to t.total - 1 do
         if allowed j && t.obj.(j) < -.epsilon then begin
           found := j;
           raise Exit
         end
       done
     with Exit -> ());
    !found
  end
  else begin
    let best = ref (-1) in
    let best_cost = ref (-.epsilon) in
    for j = 0 to t.total - 1 do
      if allowed j && t.obj.(j) < !best_cost then begin
        best := j;
        best_cost := t.obj.(j)
      end
    done;
    !best
  end

(* Leaving row: minimum ratio; ties broken toward the smallest basic index
   (Bland-compatible). *)
let leaving t ~col =
  let best_row = ref (-1) in
  let best_ratio = ref infinity in
  for i = 0 to t.m - 1 do
    let coeff = t.rows.(i).(col) in
    if coeff > epsilon then begin
      let ratio = t.rows.(i).(t.total) /. coeff in
      if
        ratio < !best_ratio -. epsilon
        || (Float.abs (ratio -. !best_ratio) <= epsilon
           && (!best_row < 0 || t.basis.(i) < t.basis.(!best_row)))
      then begin
        best_ratio := ratio;
        best_row := i
      end
    end
  done;
  !best_row

let iterate t ~allowed =
  let max_iter = 200 * (t.m + t.total) in
  let bland_after = 20 * (t.m + t.total) in
  let rec loop iter =
    if iter > max_iter then `Optimal (* stalled: accept the current vertex *)
    else begin
      let col = entering t ~allowed ~bland:(iter > bland_after) in
      if col < 0 then `Optimal
      else begin
        let row = leaving t ~col in
        if row < 0 then `Unbounded
        else begin
          pivot t ~row ~col;
          loop (iter + 1)
        end
      end
    end
  in
  loop 0

let solve problem =
  let n = Array.length problem.objective in
  List.iter
    (fun (row, _, _) ->
      if Array.length row <> n then
        invalid_arg "Simplex.solve: constraint arity mismatch")
    problem.constraints;
  let constraints = Array.of_list problem.constraints in
  let m = Array.length constraints in
  (* Normalize RHS to be nonnegative by negating rows where needed. *)
  let constraints =
    Array.map
      (fun (row, rel, b) ->
        if b < 0. then
          ( Array.map (fun v -> -.v) row,
            (match rel with Le -> Ge | Ge -> Le | Eq -> Eq),
            -.b )
        else (row, rel, b))
      constraints
  in
  let n_slack =
    Array.fold_left
      (fun acc (_, rel, _) -> match rel with Le | Ge -> acc + 1 | Eq -> acc)
      0 constraints
  in
  (* Crash basis: a structural column appearing in exactly one row, with a
     positive coefficient there, can start basic for that row (after
     normalization) — this removes the need for an artificial. Common in
     penalty formulations like LP decoding, where it removes phase 1
     entirely. *)
  let column_rows = Array.make n 0 in
  Array.iter
    (fun (row, _, _) ->
      Array.iteri
        (fun j v -> if Float.abs v > epsilon then column_rows.(j) <- column_rows.(j) + 1)
        row)
    constraints;
  let crash_used = Array.make n false in
  let crash_column (row, rel, _) =
    match rel with
    | Le -> None (* the slack serves already *)
    | Ge | Eq ->
      let found = ref None in
      Array.iteri
        (fun j v ->
          if
            !found = None && (not crash_used.(j))
            && column_rows.(j) = 1 && v > epsilon
          then found := Some j)
        row;
      (match !found with Some j -> crash_used.(j) <- true | None -> ());
      !found
  in
  let crash = Array.map (fun c -> crash_column c) constraints in
  (* A Ge row with a crash column still needs its surplus; an Eq row with a
     crash column needs nothing extra; rows without one get an artificial. *)
  let n_art =
    Array.fold_left
      (fun acc (i, (_, rel, _)) ->
        match (rel, crash.(i)) with
        | Le, _ -> acc
        | (Ge | Eq), Some _ -> acc
        | (Ge | Eq), None -> acc + 1)
      0
      (Array.mapi (fun i c -> (i, c)) constraints)
  in
  let total = n + n_slack + n_art in
  let rows = Array.init m (fun _ -> Array.make (total + 1) 0.) in
  let basis = Array.make m 0 in
  let slack_cursor = ref n in
  let art_cursor = ref (n + n_slack) in
  Array.iteri
    (fun i (row, rel, b) ->
      Array.blit row 0 rows.(i) 0 n;
      (match rel with
      | Le ->
        rows.(i).(!slack_cursor) <- 1.;
        basis.(i) <- !slack_cursor;
        incr slack_cursor
      | Ge ->
        rows.(i).(!slack_cursor) <- -1.;
        incr slack_cursor;
        (match crash.(i) with
        | Some j -> basis.(i) <- j
        | None ->
          rows.(i).(!art_cursor) <- 1.;
          basis.(i) <- !art_cursor;
          incr art_cursor)
      | Eq -> (
        match crash.(i) with
        | Some j -> basis.(i) <- j
        | None ->
          rows.(i).(!art_cursor) <- 1.;
          basis.(i) <- !art_cursor;
          incr art_cursor));
      rows.(i).(total) <- b)
    constraints;
  (* Normalize crash-basic rows so the basic coefficient is 1. *)
  Array.iteri
    (fun i c ->
      match c with
      | Some j ->
        let piv = rows.(i).(j) in
        for k = 0 to total do
          rows.(i).(k) <- rows.(i).(k) /. piv
        done
      | None -> ())
    crash;
  (* Phase 1: minimize the sum of artificials. Reduce the phase-1 objective
     w.r.t. the artificial part of the starting basis by subtracting the
     rows whose artificial is basic. *)
  let obj1 = Array.make (total + 1) 0. in
  for a = n + n_slack to total - 1 do
    obj1.(a) <- 1.
  done;
  Array.iteri
    (fun i row ->
      if basis.(i) >= n + n_slack then
        for j = 0 to total do
          obj1.(j) <- obj1.(j) -. row.(j)
        done)
    rows;
  let t = { m; total; rows; obj = obj1; basis } in
  let phase1 =
    if n_art = 0 then `Optimal else iterate t ~allowed:(fun _ -> true)
  in
  match phase1 with
  | `Unbounded -> Infeasible (* phase-1 objective is bounded below by 0 *)
  | `Optimal ->
    let phase1_value = if n_art = 0 then 0. else -.t.obj.(total) in
    if phase1_value > 1e-5 then Infeasible
    else begin
      (* Drive any lingering artificial variables out of the basis. *)
      for i = 0 to m - 1 do
        if t.basis.(i) >= n + n_slack then begin
          let col = ref (-1) in
          (try
             for j = 0 to n + n_slack - 1 do
               if Float.abs t.rows.(i).(j) > epsilon then begin
                 col := j;
                 raise Exit
               end
             done
           with Exit -> ());
          if !col >= 0 then pivot t ~row:i ~col:!col
        end
      done;
      (* Phase 2: restore the real objective, reduced w.r.t. current basis. *)
      let obj2 = Array.make (total + 1) 0. in
      Array.blit problem.objective 0 obj2 0 n;
      for i = 0 to m - 1 do
        let b = t.basis.(i) in
        let c = obj2.(b) in
        if Float.abs c > 0. then
          for j = 0 to total do
            obj2.(j) <- obj2.(j) -. (c *. t.rows.(i).(j))
          done
      done;
      let t = { t with obj = obj2 } in
      let allowed j = j < n + n_slack in
      match iterate t ~allowed with
      | `Unbounded -> Unbounded
      | `Optimal ->
        let x = Array.make n 0. in
        for i = 0 to m - 1 do
          if t.basis.(i) < n then x.(t.basis.(i)) <- t.rows.(i).(total)
        done;
        let objective = ref 0. in
        for i = 0 to n - 1 do
          objective := !objective +. (problem.objective.(i) *. x.(i))
        done;
        Optimal { x; objective = !objective }
    end

let maximize problem =
  let negated = { problem with objective = Array.map (fun v -> -.v) problem.objective } in
  match solve negated with
  | Optimal { x; objective } -> Optimal { x; objective = -.objective }
  | (Infeasible | Unbounded) as r -> r
