/* CSR sparse matrix-vector kernels.
 *
 * The reconstruction solvers spend almost all their time in y = A x and
 * y = Aᵀ x with A a 0/1 subset-query matrix whose density at census scale
 * is well under 1%. The CSR loops below touch only the stored entries, so
 * the work is O(nnz) instead of O(m·n), and C keeps the inner loop free of
 * bounds checks and tag tests.
 *
 * Float identity contract: for finite inputs these kernels produce the
 * same bits as the dense Matrix loops. Per row the products accumulate in
 * ascending-column order (the dense inner-loop order); skipping an exact
 * zero entry adds the same value as adding its 0·x term, because a finite
 * partial sum here is never -0.0. -ffp-contract=off in the dune flags
 * keeps the compiler from fusing the multiply-add into an FMA, which
 * would round differently from the two-op OCaml sequence.
 *
 * Representation notes: row_ptr/col_idx are OCaml int arrays (tagged;
 * Long_val per element), values/x/y are float arrays (flat unboxed
 * doubles; Double_field / Store_double_field).
 */

#include <caml/mlvalues.h>

CAMLprim value pso_spmv_mul(value vrp, value vci, value vval, value vx, value vy)
{
  long m = (long)Wosize_val(vrp) - 1;
  for (long i = 0; i < m; i++) {
    long lo = Long_val(Field(vrp, i));
    long hi = Long_val(Field(vrp, i + 1));
    double acc = 0.0;
    for (long k = lo; k < hi; k++)
      acc += Double_field(vval, k) * Double_field(vx, Long_val(Field(vci, k)));
    Store_double_field(vy, i, acc);
  }
  return Val_unit;
}

CAMLprim value pso_spmv_tmul(value vrp, value vci, value vval, value vyin, value vout)
{
  long m = (long)Wosize_val(vrp) - 1;
  long n = (long)Wosize_val(vout) / Double_wosize;
  for (long j = 0; j < n; j++) Store_double_field(vout, j, 0.0);
  for (long i = 0; i < m; i++) {
    double yi = Double_field(vyin, i);
    if (yi != 0.0) {
      long lo = Long_val(Field(vrp, i));
      long hi = Long_val(Field(vrp, i + 1));
      for (long k = lo; k < hi; k++) {
        long j = Long_val(Field(vci, k));
        Store_double_field(vout, j,
                           Double_field(vout, j) + Double_field(vval, k) * yi);
      }
    }
  }
  return Val_unit;
}
