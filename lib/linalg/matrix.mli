(** Dense row-major float matrices. *)

type t

val create : rows:int -> cols:int -> float -> t

val of_rows : float array array -> t
(** Raises [Invalid_argument] if rows have differing lengths or there are no
    rows. The row arrays are copied. *)

val rows : t -> int

val cols : t -> int

val get : t -> int -> int -> float

val set : t -> int -> int -> float -> unit

val row : t -> int -> Vector.t
(** Copy of a row. Allocates; hot loops should use {!fold_row} or
    {!iter_row} instead. *)

val fold_row : t -> int -> init:'a -> f:('a -> int -> float -> 'a) -> 'a
(** [fold_row m i ~init ~f] folds [f acc j m_ij] over row [i] in ascending
    column order without copying the row. *)

val iter_row : t -> int -> f:(int -> float -> unit) -> unit
(** Like {!fold_row} for effects only. *)

val mul_vec : t -> Vector.t -> Vector.t
(** [mul_vec a x] is [A x]. Raises [Invalid_argument] on dimension
    mismatch. *)

val tmul_vec : t -> Vector.t -> Vector.t
(** [tmul_vec a y] is [Aᵀ y]. *)

val mul : t -> t -> t
(** Matrix product. *)

val transpose : t -> t

val identity : int -> t

val of_subset_queries : query:int array array -> n:int -> t
(** [of_subset_queries ~query ~n] builds the 0/1 query matrix whose row [q]
    has 1 at the indices in [query.(q)] — so that [A x] computes the vector
    of exact subset-count answers for dataset [x]. *)
