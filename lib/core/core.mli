(** Facade for the singling-out library.

    Re-exports every sub-library under one namespace and provides the
    one-call audit entry points. Downstream users can depend on [core]
    alone. *)

val version : string

(** {1 Re-exports} *)

module Prob = Prob
module Linalg = Linalg
module Dataset = Dataset
module Query = Query
module Dp = Dp
module Kanon = Kanon
module Attacks = Attacks
module Pso = Pso
module Legal = Legal

(** {1 Utilities} *)

module Json = Json
module Obs = Obs

(** {1 One-call audits} *)

module Audit : sig
  type finding = {
    attacker : string;
    outcome : Pso.Game.outcome;
  }

  val standard_attackers : n:int -> weight_exponent:float -> Pso.Attacker.t list
  (** The attacker battery run against arbitrary mechanisms: the heavy
      weight-[1/n] baseline (its isolations don't count but calibrate the
      37% line), a negligible-weight trivial attacker, the release-row
      attacker (for [Release] outputs), and both k-anonymity attackers
      (each no-ops on output shapes it does not understand). *)

  val mechanism :
    Prob.Rng.t ->
    model:Dataset.Model.t ->
    n:int ->
    trials:int ->
    ?weight_exponent:float ->
    Query.Mechanism.t ->
    finding list
  (** Run the standard battery; [weight_exponent] (default 2.) sets the
      negligible-weight stand-in [n^-c]. *)

  val worst_success : finding list -> float
  (** The highest PSO success across the battery — the headline number. *)

  val legal_report : ?context:string -> Prob.Rng.t -> Legal.Report.t
  (** Run the full theorem battery at default parameters and derive the
      paper's legal theorems. *)
end
