let version = "1.0.0"

module Prob = Prob
module Linalg = Linalg
module Dataset = Dataset
module Query = Query
module Dp = Dp
module Kanon = Kanon
module Attacks = Attacks
module Pso = Pso
module Legal = Legal
(* Json lives in the standalone lib/json library (so lower layers like
   lib/obs can render documents without a cycle through this facade);
   re-exported here to keep the Core.Json path stable. *)
module Json = Json
module Obs = Obs

module Audit = struct
  type finding = { attacker : string; outcome : Pso.Game.outcome }

  let standard_attackers ~n ~weight_exponent =
    let light_buckets =
      int_of_float (Float.pow (float_of_int n) (weight_exponent +. 1.))
    in
    [
      Pso.Attacker.hash_bucket ~buckets:n;
      Pso.Attacker.hash_bucket ~buckets:light_buckets;
      Pso.Attacker.release_row ();
      Pso.Kanon_attack.greedy ();
      Pso.Kanon_attack.cohen ();
    ]

  let mechanism rng ~model ~n ~trials ?(weight_exponent = 2.) m =
    let weight_bound = Pso.Isolation.negligible_bound ~n ~c:weight_exponent in
    List.map
      (fun attacker ->
        {
          attacker = attacker.Pso.Attacker.name;
          outcome =
            Pso.Game.run rng ~model ~n ~mechanism:m ~attacker ~weight_bound
              ~trials;
        })
      (standard_attackers ~n ~weight_exponent)

  let worst_success findings =
    List.fold_left
      (fun acc f -> Float.max acc f.outcome.Pso.Game.success_rate)
      0. findings

  let legal_report ?context rng =
    Legal.Report.build ?context rng Pso.Theorems.default_params
end
