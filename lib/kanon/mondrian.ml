module Value = Dataset.Value
module Schema = Dataset.Schema
module Table = Dataset.Table
module Gvalue = Dataset.Gvalue
module Gtable = Dataset.Gtable

(* Values are ordered by Value.compare; medians and spans are computed on the
   sorted distinct values of the current partition, which handles numeric and
   categorical attributes uniformly. *)

(* Shared with Datafly: one successful partition split / one full-domain climb
   each count as a generalization step. *)
let c_steps = Obs.Counter.make "kanon.generalization_steps"

let distinct_sorted values =
  let sorted = List.sort_uniq Value.compare values in
  Array.of_list sorted

let span_of schema table indices attr_index =
  ignore schema;
  let values =
    List.filter_map
      (fun i ->
        let v = (Table.rows table).(i).(attr_index) in
        if v = Value.Null then None else Some v)
      indices
  in
  distinct_sorted values

type recoding = Member_level | Class_level

let anonymize ?(hierarchies = []) ?(recoding = Member_level) ~k table =
  if k < 1 then invalid_arg "Mondrian.anonymize: k must be >= 1";
  if Table.nrows table < k then
    invalid_arg "Mondrian.anonymize: fewer than k rows";
  let schema = Table.schema table in
  let attrs = Schema.attributes schema in
  let qi_indices =
    List.filter_map
      (fun j ->
        if attrs.(j).Schema.role = Schema.Quasi_identifier then Some j else None)
      (List.init (Array.length attrs) Fun.id)
  in
  let rows = Table.rows table in
  let out = Array.make (Table.nrows table) [||] in
  (* Normalized span: distinct-value count of the partition divided by the
     distinct-value count of the whole table, so attributes with different
     domain sizes compete fairly. *)
  let global_counts =
    List.map
      (fun j ->
        (j, max 1 (Array.length (span_of schema table (List.init (Table.nrows table) Fun.id) j))))
      qi_indices
  in
  let emit indices =
    let members = Array.of_list indices in
    let cover_cell attr j =
      let values = List.map (fun i -> rows.(i).(j)) indices in
      let hierarchy = List.assoc_opt attr.Schema.name hierarchies in
      let g = Generalization.cover ?hierarchy values in
      fun _ -> g
    in
    let grow_for j =
      let attr = attrs.(j) in
      if attr.Schema.role = Schema.Identifier then fun _ -> Gvalue.Any
      else if attr.Schema.role = Schema.Quasi_identifier then cover_cell attr j
      else
        match recoding with
        | Member_level -> fun row -> Gvalue.of_value row.(j)
        | Class_level -> cover_cell attr j
    in
    let cells = Array.init (Array.length attrs) grow_for in
    Array.iter
      (fun i -> out.(i) <- Array.map (fun cell -> cell rows.(i)) cells)
      members
  in
  let rec partition indices size =
    if size < 2 * k then emit indices
    else begin
      (* Candidate splits ranked by normalized span. *)
      let candidates =
        List.filter_map
          (fun j ->
            let distinct = span_of schema table indices j in
            if Array.length distinct < 2 then None
            else begin
              let total = List.assoc j global_counts in
              let score = float_of_int (Array.length distinct) /. float_of_int total in
              Some (score, j, distinct)
            end)
          qi_indices
        |> List.sort (fun (a, _, _) (b, _, _) -> Float.compare b a)
      in
      let rec try_splits = function
        | [] -> emit indices
        | (_, j, distinct) :: rest ->
          (* Median split on distinct values: left gets values <= median. *)
          let median = distinct.(Array.length distinct / 2) in
          let left, right =
            List.partition (fun i -> Value.compare rows.(i).(j) median < 0) indices
          in
          let ln = List.length left and rn = List.length right in
          if ln >= k && rn >= k then begin
            partition left ln;
            partition right rn
          end
          else begin
            (* Try the other cut point (values < median vs >=) failing which
               move to the next attribute. *)
            let left', right' =
              List.partition
                (fun i -> Value.compare rows.(i).(j) median <= 0)
                indices
            in
            let ln' = List.length left' and rn' = List.length right' in
            if ln' >= k && rn' >= k then begin
              Obs.Counter.incr c_steps;
              partition left' ln';
              partition right' rn'
            end
            else try_splits rest
          end
      in
      try_splits candidates
    end
  in
  let all = List.init (Table.nrows table) Fun.id in
  partition all (Table.nrows table);
  Gtable.make schema out
