module Schema = Dataset.Schema
module Table = Dataset.Table
module Gtable = Dataset.Gtable
module Hierarchy = Dataset.Hierarchy

type result = {
  release : Dataset.Gtable.t;
  levels : (string * int) list;
  suppressed : int;
}

(* Same registry slot as Mondrian's split counter (idempotent by name). *)
let c_steps = Obs.Counter.make "kanon.generalization_steps"

let anonymize ~scheme ~k ?(max_suppression = 0.05) table =
  if k < 1 then invalid_arg "Datafly.anonymize: k must be >= 1";
  if max_suppression < 0. || max_suppression > 1. then
    invalid_arg "Datafly.anonymize: max_suppression";
  let schema = Table.schema table in
  let qis = Generalization.quasi_identifiers schema in
  List.iter
    (fun qi ->
      if not (List.mem_assoc qi scheme) then
        invalid_arg (Printf.sprintf "Datafly.anonymize: no hierarchy for %S" qi))
    qis;
  let n = Table.nrows table in
  let budget = int_of_float (Float.floor (max_suppression *. float_of_int n)) in
  let levels = Hashtbl.create 8 in
  List.iter (fun qi -> Hashtbl.replace levels qi 0) qis;
  let current_levels () = List.map (fun qi -> (qi, Hashtbl.find levels qi)) qis in
  let qi_indices = List.map (Schema.index_of schema) qis in
  let rec loop () =
    let release =
      Generalization.full_domain schema scheme ~levels:(current_levels ()) table
    in
    (* Class sizes are determined by the generalized QI cells only. *)
    let undersized =
      Gtable.classes_on release qis
      |> List.filter (fun c -> Array.length c.Gtable.members < k)
    in
    let undersized_rows =
      List.fold_left (fun acc c -> acc + Array.length c.Gtable.members) 0 undersized
    in
    if undersized_rows <= budget then begin
      let to_suppress =
        Array.concat (List.map (fun c -> c.Gtable.members) undersized)
      in
      {
        release = Generalization.suppress_rows release to_suppress;
        levels = current_levels ();
        suppressed = undersized_rows;
      }
    end
    else begin
      (* Generalize the QI with the most distinct generalized values that can
         still climb. *)
      let candidates =
        List.filter_map
          (fun (qi, j) ->
            let h = List.assoc qi scheme in
            let level = Hashtbl.find levels qi in
            if level >= Hierarchy.height h - 1 then None
            else begin
              let seen = Hashtbl.create 32 in
              Array.iter
                (fun grow ->
                  Hashtbl.replace seen (Dataset.Gvalue.to_string grow.(j)) ())
                (Gtable.rows release);
              Some (Hashtbl.length seen, qi)
            end)
          (List.combine qis qi_indices)
      in
      match List.sort (fun (a, _) (b, _) -> Int.compare b a) candidates with
      | [] ->
        (* Everything is fully suppressed already: suppress the stragglers
           regardless of budget (degenerate input). *)
        let to_suppress =
          Array.concat (List.map (fun c -> c.Gtable.members) undersized)
        in
        {
          release = Generalization.suppress_rows release to_suppress;
          levels = current_levels ();
          suppressed = undersized_rows;
        }
      | (_, qi) :: _ ->
        Obs.Counter.incr c_steps;
        Hashtbl.replace levels qi (Hashtbl.find levels qi + 1);
        loop ()
    end
  in
  loop ()
