type algorithm = Mondrian | Datafly | Samarati | Incognito

type config = {
  algorithm : algorithm;
  k : int;
  scheme : Generalization.scheme;
  max_suppression : float;
  recoding : Mondrian.recoding;
}

let default ~k ~scheme =
  {
    algorithm = Mondrian;
    k;
    scheme;
    max_suppression = 0.05;
    recoding = Mondrian.Member_level;
  }

let algorithm_name = function
  | Mondrian -> "mondrian"
  | Datafly -> "datafly"
  | Samarati -> "samarati"
  | Incognito -> "incognito"

let c_calls = Obs.Counter.make "kanon.anonymize_calls"
let c_suppressed = Obs.Counter.make "kanon.suppressed_cells"

let count_suppressed gtable =
  let n = ref 0 in
  for i = 0 to Dataset.Gtable.nrows gtable - 1 do
    Array.iter
      (fun v -> if Dataset.Gvalue.is_suppressed v then incr n)
      (Dataset.Gtable.row gtable i)
  done;
  !n

let anonymize config table =
  Obs.Counter.incr c_calls;
  let release =
    Obs.with_span "kanon.anonymize"
      ~args:[ ("algorithm", algorithm_name config.algorithm) ]
      (fun () ->
        match config.algorithm with
        | Mondrian ->
          Mondrian.anonymize ~hierarchies:config.scheme
            ~recoding:config.recoding ~k:config.k table
        | Datafly ->
          (Datafly.anonymize ~scheme:config.scheme ~k:config.k
             ~max_suppression:config.max_suppression table)
            .Datafly.release
        | Samarati ->
          (Samarati.anonymize ~scheme:config.scheme ~k:config.k
             ~max_suppression:config.max_suppression table)
            .Samarati.release
        | Incognito ->
          (Incognito.anonymize ~scheme:config.scheme ~k:config.k table)
            .Incognito.release)
  in
  if Obs.enabled () || Obs.Ledger.enabled () then begin
    let cells = count_suppressed release in
    Obs.Counter.add c_suppressed cells;
    Obs.Ledger.suppression ~analyst:Obs.Ledger.ambient_analyst
      ~source:(algorithm_name config.algorithm) ~cells
      ~rows:(Dataset.Gtable.nrows release)
  end;
  release

let is_k_anonymous ~k gtable =
  let qis =
    Dataset.Schema.with_role (Dataset.Gtable.schema gtable)
      Dataset.Schema.Quasi_identifier
  in
  let qis =
    if qis = [] then Dataset.Schema.names (Dataset.Gtable.schema gtable) else qis
  in
  (* Fully suppressed rows are withheld from the release semantics — they
     cannot violate k-anonymity however few of them there are. *)
  let suppressed i =
    Array.for_all Dataset.Gvalue.is_suppressed (Dataset.Gtable.row gtable i)
  in
  Dataset.Gtable.classes_on gtable qis
  |> List.for_all (fun c ->
         let live =
           Array.to_list c.Dataset.Gtable.members
           |> List.filter (fun i -> not (suppressed i))
         in
         live = [] || List.length live >= k)

let mechanism config =
  {
    Query.Mechanism.name =
      Printf.sprintf "%s[k=%d]" (algorithm_name config.algorithm) config.k;
    run = (fun _rng table -> Query.Mechanism.Generalized (anonymize config table));
  }
