type outcome = {
  trials : int;
  n : int;
  weight_bound : float;
  successes : int;
  isolations : int;
  heavy_isolations : int;
  success_rate : float;
  success_ci : float * float;
  mean_weight : float;
}

(* One trial's contribution, combined associatively in trial order. *)
type tally = {
  succ : int;
  iso : int;
  heavy : int;
  weight_sum : float;
}

let tally_zero = { succ = 0; iso = 0; heavy = 0; weight_sum = 0. }

let tally_add a b =
  {
    succ = a.succ + b.succ;
    iso = a.iso + b.iso;
    heavy = a.heavy + b.heavy;
    weight_sum = a.weight_sum +. b.weight_sum;
  }

let c_trials = Obs.Counter.make "pso.game.trials"
let c_successes = Obs.Counter.make "pso.game.successes"
let c_isolations = Obs.Counter.make "pso.game.isolations"

let run ?pool rng ~model ~n ~mechanism ~attacker ~weight_bound ~trials =
  if n <= 0 then invalid_arg "Game.run: n";
  if trials <= 0 then invalid_arg "Game.run: trials";
  let pool = match pool with Some p -> p | None -> Parallel.Pool.default () in
  let schema = Dataset.Model.schema model in
  let trial trial_rng _i =
    let x = Dataset.Model.sample_table trial_rng model n in
    let y = Query.Mechanism.run mechanism trial_rng x in
    let p = Attacker.attack attacker trial_rng y in
    let w = Query.Predicate.weight_value (Query.Predicate.weight model p) in
    let isolated = Query.Predicate.isolates schema p x in
    let succ = if isolated && w <= weight_bound then 1 else 0 in
    let iso = if isolated then 1 else 0 in
    Obs.Counter.incr c_trials;
    Obs.Counter.add c_successes succ;
    Obs.Counter.add c_isolations iso;
    {
      succ;
      iso;
      heavy = (if isolated && w > weight_bound then 1 else 0);
      weight_sum = w;
    }
  in
  let t =
    Obs.with_span "pso.game.run"
      ~args:[ ("trials", string_of_int trials); ("n", string_of_int n) ]
      (fun () ->
        Parallel.Trials.fold pool rng ~trials ~init:tally_zero
          ~combine:tally_add trial)
  in
  {
    trials;
    n;
    weight_bound;
    successes = t.succ;
    isolations = t.iso;
    heavy_isolations = t.heavy;
    success_rate = float_of_int t.succ /. float_of_int trials;
    success_ci = Prob.Stats.proportion_ci ~successes:t.succ ~trials;
    mean_weight = t.weight_sum /. float_of_int trials;
  }

let pp fmt o =
  let lo, hi = o.success_ci in
  Format.fprintf fmt
    "n=%d trials=%d bound=%.3g: PSO success %.3f [%.3f, %.3f] (isolations %d, heavy %d, mean weight %.3g)"
    o.n o.trials o.weight_bound o.success_rate lo hi o.isolations
    o.heavy_isolations o.mean_weight
