module Gtable = Dataset.Gtable
module Gvalue = Dataset.Gvalue
module Schema = Dataset.Schema
module Predicate = Query.Predicate

let qi_names gtable =
  let schema = Gtable.schema gtable in
  match Schema.with_role schema Schema.Quasi_identifier with
  | [] -> Schema.names schema
  | qis -> qis

(* Cells shared by every member of the class (the class-level description);
   member-specific cells are dropped to Any. *)
let shared_grow gtable c =
  let rows = Gtable.rows gtable in
  Array.mapi
    (fun j g ->
      let shared =
        Array.for_all (fun i -> Gvalue.equal rows.(i).(j) g) c.Gtable.members
      in
      if shared then g else Gvalue.Any)
    c.Gtable.rep

let class_predicate gtable c =
  Predicate.of_grow (Gtable.schema gtable) (shared_grow gtable c)

let live_classes gtable =
  Gtable.classes_on gtable (qi_names gtable)
  |> List.filter (fun c ->
         not (Array.for_all Gvalue.is_suppressed c.Gtable.rep))

let largest_class classes =
  List.fold_left
    (fun acc c ->
      match acc with
      | None -> Some c
      | Some best ->
        if Array.length c.Gtable.members > Array.length best.Gtable.members then
          Some c
        else acc)
    None classes

let greedy () =
  {
    Attacker.name = "kanon-greedy (Thm 2.10)";
    attack =
      (fun rng output ->
        match output with
        | Query.Mechanism.Generalized gtable -> (
          match largest_class (live_classes gtable) with
          | None -> Predicate.False
          | Some c ->
            let k' = Array.length c.Gtable.members in
            let p = class_predicate gtable c in
            if k' = 1 then p
            else
              Predicate.And
                ( p,
                  Predicate.Atom
                    (Predicate.Hash_bucket
                       { buckets = k'; bucket = 0; salt = Prob.Rng.bits64 rng }) ))
        | _ -> Predicate.False);
  }

(* Cohen-style: a member whose released Exact cells distinguish it within
   its class; conjoin them all, so the predicate both isolates and carries
   the member's full retained information (negligible weight). *)
let member_refinement gtable c =
  let schema = Gtable.schema gtable in
  let attrs = Schema.attributes schema in
  let rows = Gtable.rows gtable in
  let shared = shared_grow gtable c in
  let exact_cells i =
    (* The member's released Exact cells on attributes not already shared. *)
    List.filter_map
      (fun j ->
        match (shared.(j), rows.(i).(j)) with
        | Gvalue.Any, Gvalue.Exact v -> Some (attrs.(j).Schema.name, v)
        | _, _ -> None)
      (List.init (Array.length attrs) Fun.id)
  in
  let signature i =
    String.concat "\x00"
      (List.map (fun (a, v) -> a ^ "=" ^ Dataset.Value.to_string v) (exact_cells i))
  in
  let members = Array.to_list c.Gtable.members in
  let sigs = List.map (fun i -> (i, signature i)) members in
  (* One frequency pass instead of a per-member rescan: the old
     uniqueness check was O(k^2) in the class size. Member order (and so
     which unique member wins) is unchanged. *)
  let freq = Hashtbl.create 16 in
  List.iter
    (fun (_, s) ->
      Hashtbl.replace freq s
        (1 + Option.value ~default:0 (Hashtbl.find_opt freq s)))
    sigs;
  let unique =
    List.filter (fun (_, s) -> s <> "" && Hashtbl.find freq s = 1) sigs
  in
  match unique with
  | [] -> None
  | (i, _) :: _ ->
    let eqs =
      List.map
        (fun (a, v) -> Predicate.Atom (Predicate.Eq (a, v)))
        (exact_cells i)
    in
    Some (Predicate.conj (class_predicate gtable c :: eqs))

let cohen () =
  let fallback = greedy () in
  {
    Attacker.name = "kanon-cohen (released-unique scan)";
    attack =
      (fun rng output ->
        match output with
        | Query.Mechanism.Generalized gtable -> (
          let found =
            List.find_map (member_refinement gtable) (live_classes gtable)
          in
          match found with
          | Some p -> p
          | None -> Attacker.attack fallback rng output)
        | _ -> Predicate.False);
  }
