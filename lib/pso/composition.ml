module Predicate = Query.Predicate

type t = {
  queries : Query.Predicate.t array;
  batch : Query.Mechanism.batch;
  mechanism : Query.Mechanism.t;
  attacker : Attacker.t;
  ell : int;
}

(* Both constructors used to wrap [queries] in [Mechanism.exact_counts]
   directly, so building the DP variant of a scheme (Theorems.dp_defends,
   E6) compiled the same predicate array a second time. Now the scheme
   carries one shared batch; every mechanism derived from it reuses the
   compilation. *)
let of_queries queries attacker ell =
  let batch = Query.Mechanism.batch queries in
  {
    queries;
    batch;
    mechanism = Query.Mechanism.exact_counts_batch batch;
    attacker;
    ell;
  }

let check ~buckets ~ell =
  if buckets <= 0 then invalid_arg "Composition: buckets";
  if ell <= 0 || ell > 63 then invalid_arg "Composition: ell must be in 1..63"

let bucket_pred ~salt ~buckets bucket =
  Predicate.Atom (Predicate.Hash_bucket { buckets; bucket; salt })

let bit_pred ~salt index = Predicate.Atom (Predicate.Hash_bit { index; salt })

(* Queries for one bucket: its size, then size-restricted-to-each-bit. *)
let bucket_queries ~salt ~buckets ~ell bucket =
  let base = bucket_pred ~salt ~buckets bucket in
  Array.init (1 + ell) (fun i ->
      if i = 0 then base else Predicate.And (base, bit_pred ~salt (i - 1)))

(* Read one bucket's answers: if the size is 1, rebuild the member's digest
   predicate from the bit counts. Counts may be noisy (DP variant): round. *)
let read_bucket ~salt ~buckets ~ell answers offset bucket =
  let near x v = Float.abs (x -. v) < 0.5 in
  if not (near answers.(offset) 1.) then None
  else begin
    let base = bucket_pred ~salt ~buckets bucket in
    let bits =
      List.init ell (fun j ->
          let p = bit_pred ~salt j in
          if near answers.(offset + 1 + j) 1. then p else Predicate.Not p)
    in
    Some (Predicate.conj (base :: bits))
  end

(* The attacker's give-up path (noisy or malformed answers): counted so
   metrics show how often the composition attack degraded to a blind
   bucket guess. *)
let c_fallbacks = Obs.Counter.make "pso.composition_fallbacks"

let fallback ~salt ~buckets =
  Obs.Counter.incr c_fallbacks;
  bucket_pred ~salt ~buckets 0

let single_bucket ~salt ~buckets ~ell =
  check ~buckets ~ell;
  let queries = bucket_queries ~salt ~buckets ~ell 0 in
  let attacker =
    {
      Attacker.name = Printf.sprintf "composition[1 bucket, ell=%d]" ell;
      attack =
        (fun _rng output ->
          match Query.Mechanism.as_vector output with
          | Some answers when Array.length answers = 1 + ell -> (
            match read_bucket ~salt ~buckets ~ell answers 0 0 with
            | Some p -> p
            | None -> fallback ~salt ~buckets)
          | Some _ | None -> fallback ~salt ~buckets);
    }
  in
  of_queries queries attacker ell

let scouted ~salt ~buckets ~ell ~scouts =
  check ~buckets ~ell;
  if scouts <= 0 || scouts > buckets then invalid_arg "Composition.scouted: scouts";
  let queries =
    Array.concat
      (List.init scouts (fun b -> bucket_queries ~salt ~buckets ~ell b))
  in
  let attacker =
    {
      Attacker.name =
        Printf.sprintf "composition[%d buckets, ell=%d]" scouts ell;
      attack =
        (fun _rng output ->
          match Query.Mechanism.as_vector output with
          | Some answers when Array.length answers = scouts * (1 + ell) ->
            let rec scan b =
              if b >= scouts then fallback ~salt ~buckets
              else
                match
                  read_bucket ~salt ~buckets ~ell answers (b * (1 + ell)) b
                with
                | Some p -> p
                | None -> scan (b + 1)
            in
            scan 0
          | Some _ | None -> fallback ~salt ~buckets);
    }
  in
  of_queries queries attacker ell

let weight_of_success ~buckets ~ell =
  Float.pow 0.5 (float_of_int ell) /. float_of_int buckets
