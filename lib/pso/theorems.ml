module Predicate = Query.Predicate
module Mechanism = Query.Mechanism

type verdict = {
  id : string;
  title : string;
  statement : string;
  expectation : string;
  measured : (string * float) list;
  holds : bool;
}

type params = { n : int; trials : int; weight_exponent : float }

let default_params = { n = 150; trials = 200; weight_exponent = 2. }

let bound params = Isolation.negligible_bound ~n:params.n ~c:params.weight_exponent

(* The negligible-weight best-effort trivial attacker: weight n^-(c+1),
   safely under the bound, with success ≈ n^-c by the baseline formula. *)
let negligible_buckets params =
  int_of_float (Float.pow (float_of_int params.n) (params.weight_exponent +. 1.))

let count_query = Predicate.Atom (Predicate.Range ("a0", 0., 8.))

let game params rng ~model ~mechanism ~attacker =
  Game.run rng ~model ~n:params.n ~mechanism ~attacker
    ~weight_bound:(bound params) ~trials:params.trials

(* --- Theorem 1.3 --- *)

(* params is accepted for interface uniformity; the check's size is governed
   by its own draw count, not by the game parameters. *)
let laplace_is_dp ?(params = default_params) rng =
  ignore params;
  let epsilon = 1.0 in
  let draws = 20_000 in
  let c = 10. in
  (* Neighbouring datasets give exact counts c and c+1; empirically compare
     the two output distributions bin by bin. *)
  let sample shift =
    Array.init draws (fun _ ->
        c +. shift +. Prob.Sampler.laplace rng ~scale:(1. /. epsilon))
  in
  let a = sample 0. and b = sample 1. in
  let bins = 40 and lo = c -. 6. and hi = c +. 7. in
  let ha = Prob.Stats.histogram ~bins ~lo ~hi a in
  let hb = Prob.Stats.histogram ~bins ~lo ~hi b in
  let worst = ref 0. in
  for i = 0 to bins - 1 do
    (* Only bins with enough mass for the ratio to be meaningful. *)
    if ha.(i) >= 50 && hb.(i) >= 50 then begin
      let r =
        Float.abs (Float.log (float_of_int ha.(i) /. float_of_int hb.(i)))
      in
      if r > !worst then worst := r
    end
  done;
  let slack = 0.35 in
  {
    id = "Theorem 1.3";
    title = "Laplace mechanism is differentially private";
    statement =
      "Adding Lap(1/eps) noise to a count yields eps-differential privacy: \
       output distributions on neighbouring datasets differ by at most e^eps \
       pointwise.";
    expectation =
      Printf.sprintf
        "max per-bin |log likelihood ratio| <= eps = %.2f (+ sampling slack)"
        epsilon;
    measured = [ ("max_log_ratio", !worst); ("epsilon", epsilon) ];
    holds = !worst <= epsilon +. slack;
  }

(* --- Theorem 2.5 --- *)

let count_model = lazy (Dataset.Synth.pso_model ~attributes:3 ~values_per_attribute:16)

let count_mechanism_secure ?(params = default_params) rng =
  let model = Lazy.force count_model in
  let mechanism = Mechanism.exact_count count_query in
  let light =
    game params rng ~model ~mechanism
      ~attacker:(Attacker.hash_bucket ~buckets:(negligible_buckets params))
  in
  let heavy =
    game params rng ~model ~mechanism
      ~attacker:(Attacker.hash_bucket ~buckets:params.n)
  in
  {
    id = "Theorem 2.5";
    title = "The count mechanism M#q prevents predicate singling out";
    statement =
      "Releasing the exact number of records satisfying a fixed predicate \
       does not enable isolation by negligible-weight predicates.";
    expectation =
      "negligible-weight attacker succeeds with probability ~n^-c; the \
       weight-1/n attacker isolates ~37% but its predicate is too heavy to \
       count";
    measured =
      [
        ("light_attacker_success", light.Game.success_rate);
        ("heavy_attacker_success", heavy.Game.success_rate);
        ( "heavy_attacker_isolations",
          float_of_int heavy.Game.isolations /. float_of_int heavy.Game.trials );
      ];
    holds =
      light.Game.success_rate <= 0.03
      && heavy.Game.success_rate <= 0.03
      && float_of_int heavy.Game.isolations /. float_of_int heavy.Game.trials
         >= 0.2;
  }

(* --- Theorem 2.6 --- *)

let post_processing_robust ?(params = default_params) rng =
  let model = Lazy.force count_model in
  let double = function
    | Mechanism.Scalar v -> Mechanism.Scalar ((2. *. v) +. 1.)
    | other -> other
  in
  let mechanism =
    Mechanism.post_process "affine" double (Mechanism.exact_count count_query)
  in
  let light =
    game params rng ~model ~mechanism
      ~attacker:(Attacker.hash_bucket ~buckets:(negligible_buckets params))
  in
  {
    id = "Theorem 2.6";
    title = "PSO security is robust to post-processing";
    statement =
      "If M prevents predicate singling out then so does f . M for any \
       data-independent f.";
    expectation = "post-processed count mechanism remains secure";
    measured = [ ("light_attacker_success", light.Game.success_rate) ];
    holds = light.Game.success_rate <= 0.03;
  }

(* --- Theorem 2.7 --- *)

let pad_model = lazy (Dataset.Synth.pso_model ~attributes:4 ~values_per_attribute:16)

let incomposability_pair ?(params = default_params) rng =
  let model = Lazy.force pad_model in
  let pad = Pad.make ~salt:(Prob.Rng.bits64 rng) in
  let against mechanism attacker = game params rng ~model ~mechanism ~attacker in
  let m1 = against pad.Pad.m1 pad.Pad.marginal_attacker in
  let m2 = against pad.Pad.m2 pad.Pad.marginal_attacker in
  let joint = against pad.Pad.composed pad.Pad.joint_attacker in
  {
    id = "Theorem 2.7";
    title = "PSO security does not compose (explicit pair)";
    statement =
      "There exist mechanisms M1, M2, each preventing predicate singling \
       out, whose composition does not: M1 masks a record digest with a pad \
       over the other records, M2 reveals the pad.";
    expectation =
      "marginal attacks succeed with probability ~0; the joint XOR attack \
       succeeds with probability ~1 at weight 2^-64";
    measured =
      [
        ("m1_attack_success", m1.Game.success_rate);
        ("m2_attack_success", m2.Game.success_rate);
        ("joint_attack_success", joint.Game.success_rate);
      ];
    holds =
      m1.Game.success_rate <= 0.02
      && m2.Game.success_rate <= 0.02
      && joint.Game.success_rate >= 0.9;
  }

(* --- Theorems 2.8 / 2.9 --- *)

let composition_model = lazy (Dataset.Synth.pso_model ~attributes:3 ~values_per_attribute:64)

let composition_scheme params rng =
  Composition.scouted ~salt:(Prob.Rng.bits64 rng) ~buckets:params.n ~ell:40
    ~scouts:6

let count_composition_breaks ?(params = default_params) rng =
  let model = Lazy.force composition_model in
  let scheme = composition_scheme params rng in
  let outcome =
    game params rng ~model ~mechanism:scheme.Composition.mechanism
      ~attacker:scheme.Composition.attacker
  in
  {
    id = "Theorem 2.8";
    title = "Composing omega(log n) count mechanisms enables PSO";
    statement =
      "Each M#q is secure, yet ~log n of them reveal a record bit by bit: \
       the bucket-and-bits attacker isolates with a predicate of weight \
       2^-ell / n.";
    expectation =
      Printf.sprintf
        "success >> baseline using %d count queries (weight %.3g <= bound %.3g)"
        (Array.length scheme.Composition.queries)
        (Composition.weight_of_success ~buckets:params.n ~ell:scheme.Composition.ell)
        (bound params);
    measured =
      [
        ("attack_success", outcome.Game.success_rate);
        ("queries", float_of_int (Array.length scheme.Composition.queries));
      ];
    holds = outcome.Game.success_rate >= 0.7;
  }

let dp_prevents_pso ?(params = default_params) rng =
  let model = Lazy.force composition_model in
  let scheme = composition_scheme params rng in
  let epsilon = 1.0 in
  let noisy = Mechanism.laplace_counts_batch ~epsilon scheme.Composition.batch in
  let outcome =
    game params rng ~model ~mechanism:noisy ~attacker:scheme.Composition.attacker
  in
  {
    id = "Theorem 2.9";
    title = "Differential privacy prevents predicate singling out";
    statement =
      "If M is eps-differentially private (constant eps) then M prevents \
       predicate singling out; the bucket-and-bits attacker that defeats \
       exact counts fails against eps-DP counts.";
    expectation = "attack success ~0 under the same query workload";
    measured =
      [ ("attack_success", outcome.Game.success_rate); ("epsilon", epsilon) ];
    holds = outcome.Game.success_rate <= 0.05;
  }

(* --- Theorem 2.10 --- *)

let kanon_model = lazy (Dataset.Synth.kanon_pso_model ~qis:6 ~retained:42 ~domain:64)

let kanon_mechanism ~recoding ~k =
  {
    Mechanism.name = "mondrian";
    run =
      (fun _rng table -> Mechanism.Generalized (Kanon.Mondrian.anonymize ~recoding ~k table));
  }

let kanon_fails ?(params = default_params) rng =
  let model = Lazy.force kanon_model in
  let k = 5 in
  let greedy =
    game params rng
      ~mechanism:(kanon_mechanism ~recoding:Kanon.Mondrian.Class_level ~k)
      ~attacker:(Kanon_attack.greedy ()) ~model
  in
  let cohen =
    game params rng
      ~mechanism:(kanon_mechanism ~recoding:Kanon.Mondrian.Member_level ~k)
      ~attacker:(Kanon_attack.cohen ()) ~model
  in
  {
    id = "Theorem 2.10";
    title = "k-anonymity does not prevent predicate singling out";
    statement =
      "Typical k-anonymizers optimize information content; equivalence-class \
       predicates have negligible weight, and refining within a class \
       isolates with probability ~37% (Cohen's released-unique attack: \
       ~100%).";
    expectation =
      "greedy (class-level release) ~0.37; cohen (member-level release) ~1";
    measured =
      [
        ("greedy_success", greedy.Game.success_rate);
        ("cohen_success", cohen.Game.success_rate);
        ("one_over_e", Isolation.one_over_e);
      ];
    holds =
      greedy.Game.success_rate >= 0.2
      && greedy.Game.success_rate <= 0.55
      && cohen.Game.success_rate >= 0.8;
  }

let all ?(params = default_params) rng =
  [
    laplace_is_dp ~params rng;
    count_mechanism_secure ~params rng;
    post_processing_robust ~params rng;
    incomposability_pair ~params rng;
    count_composition_breaks ~params rng;
    dp_prevents_pso ~params rng;
    kanon_fails ~params rng;
  ]

let pp fmt v =
  Format.fprintf fmt "%s — %s: %s@." v.id v.title
    (if v.holds then "HOLDS" else "REFUTED");
  Format.fprintf fmt "  claim: %s@." v.statement;
  Format.fprintf fmt "  expected: %s@." v.expectation;
  List.iter
    (fun (k, x) -> Format.fprintf fmt "  measured %s = %.4g@." k x)
    v.measured
