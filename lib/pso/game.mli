(** The predicate-singling-out security game (Definitions 2.3 / 2.4).

    One trial: draw [x ~ D^n]; run [y := M(x)]; run [p := A(y)]; the trial
    is a {e PSO success} when [p] isolates in [x] {e and} [w_D(p)] is below
    the negligible-weight stand-in. The harness runs many trials and
    reports success with Wilson confidence intervals, also recording
    isolations by too-heavy predicates (which Definition 2.4 deliberately
    does not count — that is the fix to the impossibility of
    Definition 2.3). *)

type outcome = {
  trials : int;
  n : int;
  weight_bound : float;
  successes : int;  (** isolated with [w_D(p) <= weight_bound] *)
  isolations : int;  (** isolated, any weight *)
  heavy_isolations : int;  (** isolated but too heavy to count *)
  success_rate : float;
  success_ci : float * float;  (** 95% Wilson interval *)
  mean_weight : float;  (** mean predicate weight across trials *)
}

val run :
  ?pool:Parallel.Pool.t ->
  Prob.Rng.t ->
  model:Dataset.Model.t ->
  n:int ->
  mechanism:Query.Mechanism.t ->
  attacker:Attacker.t ->
  weight_bound:float ->
  trials:int ->
  outcome
(** Trials fan out over [pool] (default {!Parallel.Pool.default}) with one
    child generator split off [rng] per trial, so the outcome — and the
    state [rng] is left in — is identical at every pool size for a given
    seed. Raises [Invalid_argument] if [n <= 0] or [trials <= 0]. *)

val pp : Format.formatter -> outcome -> unit
