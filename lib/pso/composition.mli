(** The count-query composition attack (Theorem 2.8).

    The proof idea, made executable: fix a hash bucket of expected size ~1;
    ask, for each bit position [j], the count of records that are {e both}
    in the bucket and have digest bit [j] set. When the bucket holds exactly
    one record, those counts spell out the record's digest bits; the
    conjunction "in the bucket ∧ digest bits equal the learned pattern" has
    weight [2^{-ℓ}/buckets] — negligible once [ℓ = ω(log n)] — and isolates.

    Two variants: {!single_bucket} (success capped at the ≈ 37% chance the
    bucket holds exactly one record) and {!scouted}, which also asks the
    sizes of [scouts] buckets and reads bits for each, driving success
    toward 1 — at the price of more queries, exactly the "too many
    questions" tradeoff of the Fundamental Law. *)

type t = {
  queries : Query.Predicate.t array;  (** the fixed count queries *)
  batch : Query.Mechanism.batch;
      (** the same queries as a shared batch: one compilation serving
          [mechanism] and any DP variant built over the scheme *)
  mechanism : Query.Mechanism.t;  (** exact counts of [queries] (Thm 2.5's M#q, composed) *)
  attacker : Attacker.t;
  ell : int;  (** digest bits learned per bucket *)
}

val single_bucket : salt:int64 -> buckets:int -> ell:int -> t
(** [1 + ell] count queries against one bucket. Raises [Invalid_argument]
    unless [0 < ell <= 63] and [buckets > 0]. *)

val scouted : salt:int64 -> buckets:int -> ell:int -> scouts:int -> t
(** [scouts × (1 + ell)] count queries; the attacker uses the first bucket
    of size exactly 1. *)

val weight_of_success : buckets:int -> ell:int -> float
(** The weight of the attacker's successful predicate: [2^{-ell}/buckets];
    compare against the game's weight bound to predict the crossover. *)
