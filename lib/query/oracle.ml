exception Query_limit_exceeded

type t = {
  data : int array;
  noise : int array -> float -> float;  (* query, true answer -> answer *)
  noised : bool;  (* exact-vs-noised flag for audit-ledger events *)
  mutable asked : int;
  mutable limit : int option;
}

let n t = Array.length t.data

let asked t = t.asked

let subset_sum data q =
  Array.fold_left
    (fun acc i ->
      if i < 0 || i >= Array.length data then
        invalid_arg "Oracle: index out of range";
      acc + data.(i))
    0 q

let true_answer t q = float_of_int (subset_sum t.data q)

let c_queries = Obs.Counter.make "query.oracle_queries"

(* Shared by name with Curator and Mechanism. *)
let sk_cost = Obs.Sketchm.make "query.cost_rows"

let ask t q =
  (match t.limit with
  | Some l when t.asked >= l -> raise Query_limit_exceeded
  | Some _ | None -> ());
  let exact = true_answer t q in
  t.asked <- t.asked + 1;
  Obs.Counter.incr c_queries;
  Obs.Sketchm.observe sk_cost (float_of_int (Array.length q));
  Obs.Ledger.query ~analyst:Obs.Ledger.ambient_analyst ~kind:"oracle"
    ~digest:"-" ~engine:"subset" ~noised:t.noised ~cost:(Array.length q);
  t.noise q exact

(* Explicit ascending loop (not Array.map, whose evaluation order the
   stdlib leaves unspecified): the noise closure consumes an rng, and the
   batched attackers rely on [ask_many t qs] drawing in the same order as
   asking each query in turn. *)
let ask_many t qs =
  let out = Array.make (Array.length qs) 0. in
  for i = 0 to Array.length qs - 1 do
    out.(i) <- ask t qs.(i)
  done;
  out

let check_binary data =
  Array.iter
    (fun v -> if v <> 0 && v <> 1 then invalid_arg "Oracle: dataset must be 0/1")
    data

let exact data =
  check_binary data;
  { data; noise = (fun _ a -> a); noised = false; asked = 0; limit = None }

let bounded_noise rng ~magnitude data =
  if magnitude < 0. then invalid_arg "Oracle.bounded_noise";
  check_binary data;
  {
    data;
    noise = (fun _ a -> a +. ((Prob.Rng.uniform rng *. 2. -. 1.) *. magnitude));
    noised = true;
    asked = 0;
    limit = None;
  }

let laplace rng ~scale data =
  check_binary data;
  {
    data;
    noise = (fun _ a -> a +. Prob.Sampler.laplace rng ~scale);
    noised = true;
    asked = 0;
    limit = None;
  }

let with_limit limit t =
  if limit < 0 then invalid_arg "Oracle.with_limit";
  { t with limit = Some (t.asked + limit) }
