(** Mechanisms: randomized maps [M : X^n -> Y] (Section 2.2).

    A mechanism consumes a dataset and produces a value in a structured
    output domain: statistical answers, an anonymized release, raw 64-bit
    words (for the pad constructions of Theorem 2.7), or tuples of other
    outputs (composition). Attackers in the PSO game consume exactly this
    output type, so that "the predicate produced by A acts on the records of
    the original dataset and not the output y" is enforced by construction. *)

type output =
  | Scalar of float
  | Vector of float array
  | Release of Dataset.Table.t  (** a (possibly transformed) raw-value table *)
  | Generalized of Dataset.Gtable.t  (** a k-anonymized release *)
  | Words of int64 array  (** opaque fixed-width outputs *)
  | Pair of output * output

type t = {
  name : string;
  run : Prob.Rng.t -> Dataset.Table.t -> output;
}

val run : t -> Prob.Rng.t -> Dataset.Table.t -> output

(** {1 Constructors} *)

val exact_count : Predicate.t -> t
(** Theorem 2.5's [M#q]: the exact number of records satisfying [q]. *)

val exact_counts : Predicate.t array -> t
(** Tuple of exact counts — the composed mechanism of Theorem 2.8.
    Equivalent to [exact_counts_batch (batch qs)]. *)

val laplace_counts : epsilon:float -> Predicate.t array -> t
(** Counts with i.i.d. Laplace([len/epsilon]) noise: an [epsilon]-DP answer
    to the whole vector (sensitivity 1 per query, budget split evenly). *)

(** {1 Batched query sets}

    A [batch] is a predicate array plus its compilation, resolved once per
    schema and reused across every run of every mechanism built from it —
    the PSO game replays one mechanism thousands of times, and schemes like
    {!Pso.Composition} build several mechanisms over the same queries.
    Counts are evaluated through {!Engine.counts}: one shared columnar
    scan with batch-wide atom dedup (and under the [Checked] engine, every
    batch answer cross-validated against the per-predicate compiled path
    and the interpreter). Outputs are identical to the unbatched
    constructors on every input. *)

type batch

val batch : Predicate.t array -> batch

val batch_queries : batch -> Predicate.t array

val exact_counts_batch : ?pool:Parallel.Pool.t -> batch -> t
(** [exact_counts] evaluating through the shared batch. With [?pool],
    large batches fan across the domain pool (deterministic in-order
    combine — see {!Engine.count_many}). *)

val laplace_counts_batch :
  ?pool:Parallel.Pool.t -> epsilon:float -> batch -> t
(** [laplace_counts] over a shared batch: batched exact counts, then one
    bulk noise pass drawing in ascending index order — byte-identical to
    the sequential per-count draws at every [--jobs]. *)

val identity_release : t
(** Publishes the dataset as-is (the trivially non-anonymous baseline). *)

val compose : t -> t -> t
(** [compose m1 m2] runs both on the same dataset with independent
    randomness and pairs the outputs — the object whose PSO security
    Theorem 2.7 shows can be strictly worse than its parts'. *)

val post_process : string -> (output -> output) -> t -> t
(** [post_process name f m] applies a data-independent transformation to
    [m]'s output — the operation Theorem 2.6 proves cannot create a PSO
    violation. *)

(** {1 Projections} *)

val as_vector : output -> float array option
(** [Scalar] and [Vector] outputs as an array; flattens [Pair]s of such. *)
