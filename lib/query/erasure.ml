type implementation = Recompute | Cached

type t = {
  implementation : implementation;
  snapshot : Dataset.Table.t;  (* ingest-time data, never modified *)
  erased : (int, unit) Hashtbl.t;
}

let create implementation table =
  { implementation; snapshot = table; erased = Hashtbl.create 8 }

let erase t i =
  if i < 0 || i >= Dataset.Table.nrows t.snapshot then
    invalid_arg "Erasure.erase: index out of range";
  if not (Hashtbl.mem t.erased i) then
    Obs.Ledger.suppression ~analyst:Obs.Ledger.ambient_analyst
      ~source:"erasure"
      ~cells:(Dataset.Schema.arity (Dataset.Table.schema t.snapshot))
      ~rows:1;
  Hashtbl.replace t.erased i ()

let live_records t = Dataset.Table.nrows t.snapshot - Hashtbl.length t.erased

let count_over_interpreted t ~include_erased p =
  let schema = Dataset.Table.schema t.snapshot in
  let acc = ref 0 in
  Dataset.Table.iter
    (fun i row ->
      if
        (include_erased || not (Hashtbl.mem t.erased i))
        && Predicate.eval schema p row
      then incr acc)
    t.snapshot;
  !acc

(* Bitset count over the snapshot, minus the erased matches: the erased
   set is small relative to the table, so subtracting per erased index
   beats masking out a whole complement bitset. *)
let count_over_compiled t ~include_erased p =
  let schema = Dataset.Table.schema t.snapshot in
  let b = Predicate.bits (Predicate.compile schema p) t.snapshot in
  let total = Bitset.count b in
  if include_erased then total
  else
    Hashtbl.fold
      (fun i () acc -> if Bitset.get b i then acc - 1 else acc)
      t.erased total

let count_over t ~include_erased p =
  match Predicate.engine () with
  | Predicate.Interpreted -> count_over_interpreted t ~include_erased p
  | Predicate.Compiled -> count_over_compiled t ~include_erased p
  | Predicate.Checked ->
    let a = count_over_interpreted t ~include_erased p in
    let b = count_over_compiled t ~include_erased p in
    if a <> b then
      failwith
        (Printf.sprintf "Erasure.count_over: engine mismatch (%d vs %d) on %s"
           a b (Predicate.to_string p));
    a

let count t p =
  match t.implementation with
  | Recompute -> count_over t ~include_erased:false p
  | Cached -> count_over t ~include_erased:true p

let full_tuple_predicate t i =
  let schema = Dataset.Table.schema t.snapshot in
  let row = Dataset.Table.row t.snapshot i in
  Predicate.conj
    (List.mapi
       (fun j v ->
         Predicate.Atom
           (Predicate.Eq ((Dataset.Schema.attribute schema j).Dataset.Schema.name, v)))
       (Array.to_list row))

let verify_erasure t i =
  if not (Hashtbl.mem t.erased i) then
    invalid_arg "Erasure.verify_erasure: record was not erased";
  let p = full_tuple_predicate t i in
  count t p = count_over t ~include_erased:false p
