(** Batch evaluation layer of the query engine.

    The attacks in this repo — reconstruction (Section 1), the PSO
    composition game (Section 4), the dpcheck audits — each evaluate
    hundreds to thousands of count queries against one table. This module
    is their entry point: it dispatches on the process-wide
    {!Predicate.engine} mode, runs whole predicate arrays through the
    batched kernel ({!Predicate.count_many}: one columnar scan, batch-wide
    atom dedup, fused word-machine evaluation), and can optionally fan a
    large batch across a {!Parallel.Pool} in contiguous chunks combined in
    chunk order — the answers are byte-identical at every [jobs] count. *)

val count_many :
  ?pool:Parallel.Pool.t ->
  ?cache:bool ->
  Dataset.Table.t ->
  Predicate.compiled array ->
  int array
(** [count_many table cs] is
    [Array.map (fun c -> Predicate.count_compiled c table) cs] via the
    batched kernel. With [?pool], the batch is split into contiguous
    chunks (at least 64 predicates each — below that the pool's per-item
    overhead swamps the work) evaluated in parallel and concatenated in
    chunk order, so results do not depend on pool size. *)

val isolates_many :
  ?pool:Parallel.Pool.t ->
  ?cache:bool ->
  Dataset.Table.t ->
  Predicate.compiled array ->
  bool array
(** Batched Definition 2.1, same fan-out contract as {!count_many}. *)

val counts :
  ?pool:Parallel.Pool.t ->
  ?compiled:Predicate.compiled array ->
  Dataset.Table.t ->
  Predicate.t array ->
  int array
(** Engine-dispatched batch counts: the [Interpreted] engine runs the
    reference interpreter per predicate, [Compiled] runs {!count_many},
    and [Checked] runs the batch and asserts every answer against both
    the per-predicate compiled path and the interpreter (raising
    [Failure] on any disagreement). Pass [?compiled] to reuse an existing
    compilation of [qs] (they must correspond index-wise); otherwise the
    predicates are compiled on the fly under [Compiled]/[Checked].
    Charges [query.predicate_evals] with rows × queries regardless of
    engine, keeping the counter batch-invariant. *)

val isolations :
  ?pool:Parallel.Pool.t ->
  ?compiled:Predicate.compiled array ->
  Dataset.Table.t ->
  Predicate.t array ->
  bool array
(** Engine-dispatched batched isolation tests; contract as {!counts}. *)
