module Table = Dataset.Table
module Value = Dataset.Value

type policy =
  | Exact
  | Limited of int
  | Audited
  | Noisy of { per_query_epsilon : float; total_epsilon : float }

type reply = Answer of float | Refusal of string

type state =
  | Plain of { budget : int option }  (* Exact / Limited *)
  | Auditing of Auditor.t
  | Accounting of { per_query : float; total : float; mutable spent : float }

type t = {
  table : Table.t;
  bits : int array;  (* the target attribute as 0/1 *)
  rng : Prob.Rng.t;
  state : state;
  analyst : string;  (* audit-ledger session id *)
  mutable answered : int;
  mutable refused : int;
}

let c_answered = Obs.Counter.make "curator.answered"

let c_refused = Obs.Counter.make "curator.refusals"

(* Deterministic cost sketch shared (by name) with the mechanism layer. *)
let sk_cost = Obs.Sketchm.make "query.cost_rows"

(* Shared by name with Dp.Telemetry: the noisy curator's ε joins the
   accountants' in the exported dp.epsilon_spent gauge. *)
let g_eps = Obs.Gauge.make "dp.epsilon_spent"

let target_bits table target =
  let j = Dataset.Schema.index_of (Table.schema table) target in
  Array.map
    (fun row ->
      match row.(j) with
      | Value.Int 0 | Value.Bool false -> 0
      | Value.Int 1 | Value.Bool true -> 1
      | v ->
        invalid_arg
          (Printf.sprintf "Curator.create: target %S has non-binary value %s"
             target (Value.to_string v)))
    (Table.rows table)

let create ?analyst ?rng ~policy ~target table =
  let rng = match rng with Some r -> r | None -> Prob.Rng.create () in
  let bits = target_bits table target in
  let state =
    match policy with
    | Exact -> Plain { budget = None }
    | Limited k ->
      if k <= 0 then invalid_arg "Curator.create: Limited budget";
      Plain { budget = Some k }
    | Audited -> Auditing (Auditor.create bits)
    | Noisy { per_query_epsilon; total_epsilon } ->
      if per_query_epsilon <= 0. || total_epsilon <= 0. then
        invalid_arg "Curator.create: Noisy budgets";
      Accounting
        { per_query = per_query_epsilon; total = total_epsilon; spent = 0. }
  in
  let analyst =
    match analyst with
    | Some a -> a
    | None ->
      if Obs.Ledger.enabled () then Obs.Ledger.fresh_analyst ()
      else Obs.Ledger.ambient_analyst
  in
  (if Obs.Ledger.enabled () then
     match policy with
     | Exact -> Obs.Ledger.session ~analyst ~policy:"exact" ()
     | Limited _ -> Obs.Ledger.session ~analyst ~policy:"limited" ()
     | Audited -> Obs.Ledger.session ~analyst ~policy:"audited" ()
     | Noisy { per_query_epsilon; total_epsilon } ->
       Obs.Ledger.session ~analyst ~policy:"noisy" ~per_query:per_query_epsilon
         ~total:total_epsilon ());
  { table; bits; rng; state; analyst; answered = 0; refused = 0 }

let exact_sum t subset =
  Array.fold_left
    (fun acc i ->
      if i < 0 || i >= Array.length t.bits then
        invalid_arg "Curator: index out of range";
      acc + t.bits.(i))
    0 subset

let answer t ~digest ~engine ~noised ~cost v =
  Obs.Counter.incr c_answered;
  Obs.Sketchm.observe sk_cost (float_of_int cost);
  Obs.Ledger.query ~analyst:t.analyst ~kind:"curator" ~digest ~engine ~noised
    ~cost;
  t.answered <- t.answered + 1;
  Answer v

let refuse t ~reason ~detail msg =
  Obs.Counter.incr c_refused;
  Obs.Ledger.refusal ~analyst:t.analyst ~reason ~detail;
  t.refused <- t.refused + 1;
  Refusal msg

let ask_subset_as t ~digest ~engine subset =
  let cost = Array.length subset in
  match t.state with
  | Plain { budget = None } ->
    answer t ~digest ~engine ~noised:false ~cost
      (float_of_int (exact_sum t subset))
  | Plain { budget = Some k } ->
    if t.answered >= k then
      refuse t ~reason:"limit"
        ~detail:
          [ ("answered", float_of_int t.answered); ("limit", float_of_int k) ]
        "query limit reached"
    else
      answer t ~digest ~engine ~noised:false ~cost
        (float_of_int (exact_sum t subset))
  | Auditing auditor -> (
    match Auditor.ask auditor subset with
    | Auditor.Answered v -> answer t ~digest ~engine ~noised:false ~cost v
    | Auditor.Refused ->
      refuse t ~reason:"audit" ~detail:[]
        "answering would disclose an individual's bit")
  | Accounting a ->
    if a.spent +. a.per_query > a.total +. 1e-12 then
      refuse t ~reason:"budget"
        ~detail:
          [
            ("spent", a.spent);
            ("per_query", a.per_query);
            ("total", a.total);
          ]
        "privacy budget exhausted"
    else begin
      a.spent <- a.spent +. a.per_query;
      Obs.Gauge.add g_eps a.per_query;
      Obs.Ledger.spend ~analyst:t.analyst ~label:"curator-query"
        ~epsilon:a.per_query ~cumulative:a.spent ();
      let scale = 1. /. a.per_query in
      Obs.Ledger.noise ~analyst:t.analyst ~mechanism:"laplace" ~scale ~n:1;
      let noisy =
        float_of_int (exact_sum t subset) +. Prob.Sampler.laplace t.rng ~scale
      in
      answer t ~digest ~engine ~noised:true ~cost noisy
    end

let ask_subset t subset = ask_subset_as t ~digest:"-" ~engine:"subset" subset

let matching_interpreted t schema p =
  let subset = ref [] in
  Table.iter
    (fun i row -> if Predicate.eval schema p row then subset := i :: !subset)
    t.table;
  Array.of_list (List.rev !subset)

let matching_compiled t schema p =
  Bitset.indices (Predicate.bits (Predicate.compile schema p) t.table)

let ask t p =
  let schema = Table.schema t.table in
  let subset =
    match Predicate.engine () with
    | Predicate.Interpreted -> matching_interpreted t schema p
    | Predicate.Compiled -> matching_compiled t schema p
    | Predicate.Checked ->
      let a = matching_interpreted t schema p in
      let b = matching_compiled t schema p in
      if a <> b then
        failwith
          (Printf.sprintf "Curator.ask: engine mismatch on %s"
             (Predicate.to_string p));
      a
  in
  let digest = if Obs.Ledger.enabled () then Predicate.digest p else "-" in
  ask_subset_as t ~digest
    ~engine:(Predicate.engine_name (Predicate.engine ()))
    subset

(* Subpopulation extraction for a whole question list at once. Replies
   still go through [ask_subset] one by one in index order, so the
   curator's state transitions (budget, audit, noise draws) are exactly
   those of asking sequentially — [ask_many] and [Array.map (ask t)]
   produce identical replies from identical starting states. *)
let matching_many t schema ps =
  match Predicate.engine () with
  | Predicate.Interpreted -> Array.map (matching_interpreted t schema) ps
  | Predicate.Compiled ->
    let cs = Array.map (Predicate.compile schema) ps in
    Array.map Bitset.indices (Predicate.bits_many t.table cs)
  | Predicate.Checked ->
    let cs = Array.map (Predicate.compile schema) ps in
    let batch = Array.map Bitset.indices (Predicate.bits_many t.table cs) in
    Array.iteri
      (fun i b ->
        let a = matching_interpreted t schema ps.(i) in
        let c = Bitset.indices (Predicate.bits cs.(i) t.table) in
        if a <> b || c <> b then
          failwith
            (Printf.sprintf "Curator.ask_many: engine mismatch on %s"
               (Predicate.to_string ps.(i))))
      batch;
    batch

let ask_many t ps =
  let subsets = matching_many t (Table.schema t.table) ps in
  let engine = Predicate.engine_name (Predicate.engine ()) in
  let ledger_on = Obs.Ledger.enabled () in
  let out = Array.make (Array.length ps) (Refusal "unasked") in
  for i = 0 to Array.length ps - 1 do
    let digest = if ledger_on then Predicate.digest ps.(i) else "-" in
    out.(i) <- ask_subset_as t ~digest ~engine subsets.(i)
  done;
  out

let analyst t = t.analyst

let answered t = t.answered

let refused t = t.refused

let spent_epsilon t =
  match t.state with Accounting a -> a.spent | Plain _ | Auditing _ -> 0.

let remaining_epsilon t =
  match t.state with
  | Accounting a -> Some (a.total -. a.spent)
  | Plain _ | Auditing _ -> None
