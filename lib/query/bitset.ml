(* Packed bitsets over native ints, 63 bits per word (every bit of the
   OCaml int, including the one that makes a word print negative — only
   bitwise ops and logical shifts ever touch a word, so the sign is inert).
   Row sets of the compiled predicate engine: one bit per table row,
   And/Or/Not are word-wise land/lor/lnot, counting is a popcount loop. *)

type t = { len : int; words : int array }

let bits_per_word = 63

let nwords len = (len + bits_per_word - 1) / bits_per_word

(* Mask of the tail word's live bits. For a full tail ([r = 0] with
   [len > 0]) every bit is live: [-1] is all 63 ones. [1 lsl 62] wraps to
   [min_int], so [(1 lsl r) - 1] is the r-ones mask for every r <= 62. *)
let tail_mask len =
  let r = len mod bits_per_word in
  if r = 0 then -1 else (1 lsl r) - 1

let length t = t.len

let create len =
  if len < 0 then invalid_arg "Bitset.create: negative length";
  { len; words = Array.make (nwords len) 0 }

let ones len =
  if len < 0 then invalid_arg "Bitset.ones: negative length";
  let w = Array.make (nwords len) (-1) in
  if Array.length w > 0 then w.(Array.length w - 1) <- tail_mask len;
  { len; words = w }

(* Word-chunked fill: no per-bit division, one store per word. *)
let init len f =
  if len < 0 then invalid_arg "Bitset.init: negative length";
  let words = Array.make (nwords len) 0 in
  let i = ref 0 in
  for w = 0 to Array.length words - 1 do
    let hi = min bits_per_word (len - !i) in
    let acc = ref 0 in
    for b = 0 to hi - 1 do
      if f (!i + b) then acc := !acc lor (1 lsl b)
    done;
    words.(w) <- !acc;
    i := !i + hi
  done;
  { len; words }

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Bitset.get: index out of range";
  (t.words.(i / bits_per_word) lsr (i mod bits_per_word)) land 1 = 1

let check_len op a b =
  if a.len <> b.len then
    invalid_arg (Printf.sprintf "Bitset.%s: length mismatch (%d vs %d)" op a.len b.len)

let band a b =
  check_len "band" a b;
  { len = a.len; words = Array.map2 ( land ) a.words b.words }

let bor a b =
  check_len "bor" a b;
  { len = a.len; words = Array.map2 ( lor ) a.words b.words }

let bnot a =
  let words = Array.map lnot a.words in
  let nw = Array.length words in
  if nw > 0 then words.(nw - 1) <- words.(nw - 1) land tail_mask a.len;
  { len = a.len; words }

(* 16-bit popcount table: four loads cover a 63-bit word. Shared with the
   reconstruction attack's subset popcounts (see Attacks.Reconstruction). *)
let pop16 =
  let t = Bytes.create 65536 in
  Bytes.set t 0 '\000';
  for m = 1 to 65535 do
    Bytes.set t m (Char.chr (Char.code (Bytes.get t (m lsr 1)) + (m land 1)))
  done;
  t

let[@inline always] popcount16 m = Char.code (Bytes.unsafe_get pop16 (m land 0xffff))

(* Full-word popcount is SWAR bit-twiddling rather than four table loads:
   the batched evaluator popcounts every word of every predicate's row
   set, and a dozen dependency-free ALU ops beat four serialized memory
   reads there. Adapted to 63-bit ints: bit 62 forms a lone "pair" whose
   high half shifts in zero, so the pairwise step still counts it, and
   the byte-sum multiply cannot carry into the dropped sign position
   because the total is at most 63. The odd-bits mask is assembled at
   init — 0x5555555555555555 overflows the 63-bit literal range. *)
let m1 = 0x1555555555555555 lor (1 lsl 62) (* bits 0, 2, ..., 62 *)

let m2 = 0x3333333333333333

let m4 = 0x0F0F0F0F0F0F0F0F

let h01 = 0x0101010101010101

(* [@inline always] matters: the hot loops popcount per word across
   module boundaries, and an un-inlined call dominates the dozen ALU ops. *)
let[@inline always] popcount w =
  let x = w - ((w lsr 1) land m1) in
  let x = (x land m2) + ((x lsr 2) land m2) in
  let x = (x + (x lsr 4)) land m4 in
  (x * h01) lsr 56

(* Whole-array popcounts in C (bitset_stubs.c): counting is the only
   thing a count query does with its row set, so it pays to cross the FFI
   once per array instead of once per word. [tail] masks the final word's
   live bits (pass [-1] when the tail is already clean). The [_and]/[_or]
   variants fuse a root connective into the counting pass. *)
external unsafe_count_words : int array -> int -> int -> int
  = "pso_bitset_count_words"
[@@noalloc]

external unsafe_count_and : int array -> int array -> int -> int -> int
  = "pso_bitset_count_and"
[@@noalloc]

external unsafe_count_or : int array -> int array -> int -> int -> int
  = "pso_bitset_count_or"
[@@noalloc]

let count t = unsafe_count_words t.words (Array.length t.words) (-1)

(* Stops scanning as soon as the running count exceeds [cap]; the result is
   exact when [<= cap] and some value [> cap] otherwise. [isolates] asks
   [count_capped 1 b = 1] and bails after the second hit. *)
let count_capped cap t =
  let acc = ref 0 in
  (try
     Array.iter
       (fun w ->
         acc := !acc + popcount w;
         if !acc > cap then raise Exit)
       t.words
   with Exit -> ());
  !acc

let indices t =
  let out = Array.make (count t) 0 in
  let k = ref 0 in
  Array.iteri
    (fun wi w ->
      if w <> 0 then begin
        let base = wi * bits_per_word in
        for b = 0 to bits_per_word - 1 do
          if (w lsr b) land 1 = 1 then begin
            out.(!k) <- base + b;
            incr k
          end
        done
      end)
    t.words;
  out

let equal a b = a.len = b.len && a.words = b.words

(* Internal surface for the batched evaluator (Predicate.count_many): it
   runs a stack machine directly over the packed words of many atom
   bitsets, so it needs the representation — words, the word count for a
   length, and the live-bit mask of the tail word. *)

let unsafe_words t = t.words

let unsafe_of_words ~len words =
  if len < 0 then invalid_arg "Bitset.unsafe_of_words: negative length";
  if Array.length words <> nwords len then
    invalid_arg "Bitset.unsafe_of_words: word count mismatch";
  { len; words }

let word_count = nwords

let live_mask = tail_mask
