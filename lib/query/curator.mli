(** An interactive curator: the stateful query-answering server the
    reconstruction story is about.

    The curator holds a table with a designated binary {e target} attribute
    (the paper's [x_i ∈ {0,1}] — "is person i diabetic") and answers
    Dinur–Nissim-style subpopulation counts: a query selects a
    subpopulation (a predicate, or row indices directly) and the answer is
    the number of selected records with the target trait.

    Policies are the defenses the Fundamental Law leaves open, plus the
    undefended baseline:

    - [Exact]: answer truthfully, forever (blatantly non-private);
    - [Limited]: answer truthfully up to a query budget, then refuse;
    - [Audited]: answer truthfully unless some individual's target bit
      would be exactly determined (sound for exact disclosure, still
      approximately reconstructable — see the tests);
    - [Noisy]: ε-per-query Laplace answers under a total budget tracked by
      a privacy accountant; refuse once the budget is spent. *)

type policy =
  | Exact
  | Limited of int  (** maximum number of answered queries *)
  | Audited
  | Noisy of { per_query_epsilon : float; total_epsilon : float }

type t

type reply =
  | Answer of float
  | Refusal of string  (** human-readable reason *)

val create :
  ?analyst:string ->
  ?rng:Prob.Rng.t ->
  policy:policy ->
  target:string ->
  Dataset.Table.t ->
  t
(** [target] must name an attribute whose values are all [Int 0]/[Int 1]
    or booleans; raises [Invalid_argument] otherwise, or on nonpositive
    [Noisy] budgets or [Limited] counts. The default [rng] is freshly
    seeded (deterministic).

    [analyst] is the audit-ledger session id under which this curator's
    queries, refusals and budget spends are journaled; it defaults to a
    deterministic fresh id ({!Obs.Ledger.fresh_analyst}) when the ledger
    is enabled. When the ledger is on, creation opens the analyst's
    session — analyst ids must therefore be unique per run. *)

val analyst : t -> string
(** The audit-ledger session id this curator journals under. *)

val ask : t -> Predicate.t -> reply
(** Count of target-positive records in the subpopulation satisfying the
    predicate. *)

val ask_subset : t -> int array -> reply
(** The same with the subpopulation given as row indices — the literal
    Theorem 1.1 interface. Raises [Invalid_argument] on out-of-range
    indices. *)

val ask_many : t -> Predicate.t array -> reply array
(** Batched {!ask}: subpopulations are extracted in one shared columnar
    pass ({!Predicate.bits_many}), then answered sequentially in index
    order, so replies — including budget exhaustion, audit refusals and
    noise draws — are exactly those of [Array.map (ask t)]. *)

val answered : t -> int

val refused : t -> int

val spent_epsilon : t -> float
(** Privacy budget consumed so far ([0.] for non-noisy policies). *)

val remaining_epsilon : t -> float option
(** [None] for non-noisy policies. *)
