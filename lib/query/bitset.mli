(** Packed bitsets: the row sets of the compiled query engine.

    One bit per table row, packed 63 to a native int word, so the boolean
    connectives of a predicate become word-wise [land]/[lor]/[lnot] and a
    count query becomes a popcount loop — the same columnar-engine shape as
    Dinur–Nissim-style reconstruction tooling. *)

type t

val length : t -> int

val create : int -> t
(** All-zeros bitset of the given length. Raises [Invalid_argument] on a
    negative length (here and in [ones]/[init]). *)

val ones : int -> t
(** All-ones bitset (tail bits beyond the length stay clear). *)

val init : int -> (int -> bool) -> t
(** [init n f] sets bit [i] iff [f i], filling word by word. *)

val get : t -> int -> bool
(** Raises [Invalid_argument] out of range. *)

val band : t -> t -> t

val bor : t -> t -> t

val bnot : t -> t
(** Complement within the length: tail bits stay clear, so
    [count (bnot b) = length b - count b]. *)

val count : t -> int
(** Number of set bits. *)

val count_capped : int -> t -> int
(** [count_capped cap b] short-circuits once the running count exceeds
    [cap]: exact when [<= cap], otherwise some value [> cap]. *)

val indices : t -> int array
(** Positions of the set bits, ascending. *)

val equal : t -> t -> bool

val popcount : int -> int
(** Set bits of a native int word (all 63 bits), via a shared 16-bit
    lookup table. *)

val popcount16 : int -> int
(** Set bits of the low 16 bits only — one table load, for masks already
    known to fit (e.g. the reconstruction attack's [n <= 16] subsets). *)

(** {1 Packed representation}

    The batched evaluator ({!Predicate.count_many}) fuses a whole
    predicate's connectives into one pass per word, reading many atom
    bitsets' words directly instead of allocating an intermediate bitset
    per operator. That needs the representation; nothing else should. *)

val bits_per_word : int
(** 63: every bit of a native OCaml int. *)

val word_count : int -> int
(** Words backing a bitset of the given length. *)

val live_mask : int -> int
(** Mask of the tail word's live bits for a bitset of the given length
    (all ones for a full tail). *)

val unsafe_words : t -> int array
(** The packed words. Treat as read-only: mutating them breaks the
    clear-tail invariant [count]/[bnot] rely on. *)

val unsafe_of_words : len:int -> int array -> t
(** Adopt an array as a bitset (no copy). The caller must have cleared
    the tail bits beyond [len]. Raises [Invalid_argument] on a negative
    length or a word count that does not match [word_count len]. *)

val unsafe_count_words : int array -> int -> int -> int
(** [unsafe_count_words words nw tail]: popcount of [words.(0 .. nw-1)]
    with the final word masked by [tail] ([-1] for no masking). C kernel;
    [nw] must not exceed the array length. *)

val unsafe_count_and : int array -> int array -> int -> int -> int
(** Popcount of the word-wise [land] of two arrays, final word masked —
    a root [And] fused into the counting pass without a destination. *)

val unsafe_count_or : int array -> int array -> int -> int -> int
(** Popcount of the word-wise [lor] of two arrays, final word masked. *)
