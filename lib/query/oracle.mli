(** Interactive subset-count oracles over a binary dataset.

    The reconstruction setting of Theorem 1.1: the dataset is
    [x ∈ {0,1}^n]; an analyst issues subset queries [q ⊆ [n]] and receives
    [a_q ≈ Σ_{i∈q} x_i]. The oracle tracks how many queries were asked and
    can enforce a cap — the two defenses ("introduce sufficiently large
    error" / "limit the number of queries") the theorem shows are the only
    options. *)

exception Query_limit_exceeded

type t

val n : t -> int

val asked : t -> int
(** Number of queries served so far. *)

val ask : t -> int array -> float
(** Answer one subset query (indices into [0, n)); raises
    [Query_limit_exceeded] past the cap and [Invalid_argument] on
    out-of-range indices. *)

val ask_many : t -> int array array -> float array
(** Answer a batch, drawing noise in ascending index order — identical
    answers and limit behaviour to asking each query in turn. *)

val exact : int array -> t
(** Noise-free answers. Dataset entries must be 0/1. *)

val bounded_noise : Prob.Rng.t -> magnitude:float -> int array -> t
(** Answers perturbed by independent uniform noise in [[-magnitude,
    +magnitude]] — "query answers guaranteed to be within error α". *)

val laplace : Prob.Rng.t -> scale:float -> int array -> t
(** Laplace-mechanism answers with per-query scale (unbounded error tails,
    bounded expectation). *)

val with_limit : int -> t -> t
(** Same oracle, refusing to answer more than [limit] further queries. *)

val true_answer : t -> int array -> float
(** The noiseless answer — for harness-side error measurement only; does not
    count against the limit. *)
