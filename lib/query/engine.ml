(* The batch evaluation layer of the query engine.

   Predicate.count_many is the single-domain kernel: shared columnar scan,
   batch-wide atom dedup, fused word-machine evaluation. This module adds
   the two things the kernel deliberately does not know about:

   - engine dispatch: [counts]/[isolations] honour Predicate.engine (),
     with [Checked] cross-validating every batch answer against BOTH the
     per-predicate compiled path and the reference interpreter;

   - optional domain fan-out: [?pool] splits a large batch into contiguous
     chunks evaluated by Parallel.Pool workers and concatenated in chunk
     order, so the result is byte-identical at every pool size (each
     chunk's counts are pure; workers dedup atoms chunk-locally in their
     own domain-local caches). *)

module Table = Dataset.Table

(* Same handle as Predicate's per-query accounting (Counter.make is
   idempotent by name): a batched count still charges one logical
   row-evaluation per row per predicate, so query.predicate_evals stays
   engine- and batch-invariant. *)
let c_evals = Obs.Counter.make "query.predicate_evals"

(* Fan a batch of independent per-predicate results over the pool in
   contiguous chunks, combining in chunk order. Small batches stay on the
   caller: the pool's per-item overhead would swamp microsecond chunks. *)
let min_chunk = 64

let fan_out pool n eval_slice =
  let jobs = Parallel.Pool.jobs pool in
  let chunks = min jobs (max 1 (n / min_chunk)) in
  if chunks <= 1 then eval_slice 0 n
  else begin
    let base = n / chunks and rem = n mod chunks in
    let start k = (k * base) + min k rem in
    let parts =
      Parallel.Pool.parallel_init_array pool chunks (fun k ->
          eval_slice (start k) (start (k + 1) - start k))
    in
    Array.concat (Array.to_list parts)
  end

let count_many ?pool ?cache table cs =
  match pool with
  | None -> Predicate.count_many ?cache table cs
  | Some pool ->
    fan_out pool (Array.length cs) (fun off len ->
        Predicate.count_many ?cache table (Array.sub cs off len))

let isolates_many ?pool ?cache table cs =
  match pool with
  | None -> Predicate.isolates_many ?cache table cs
  | Some pool ->
    fan_out pool (Array.length cs) (fun off len ->
        Predicate.isolates_many ?cache table (Array.sub cs off len))

let compile_all schema qs = Array.map (Predicate.compile schema) qs

let mismatch what i q ~batch ~single ~interp =
  failwith
    (Printf.sprintf
       "Engine.%s: engine mismatch at query %d (batch %s, compiled %s, \
        interpreter %s) on %s"
       what i batch single interp
       (Predicate.to_string q))

let counts ?pool ?compiled table qs =
  Obs.Counter.add c_evals (Table.nrows table * Array.length qs);
  let schema = Table.schema table in
  let compiled_or cs = match compiled with Some cs -> cs | None -> cs () in
  match Predicate.engine () with
  | Predicate.Interpreted ->
    Array.map (fun q -> Predicate.count_interpreted schema q table) qs
  | Predicate.Compiled ->
    count_many ?pool table (compiled_or (fun () -> compile_all schema qs))
  | Predicate.Checked ->
    let cs = compiled_or (fun () -> compile_all schema qs) in
    let batch = count_many ?pool table cs in
    Array.iteri
      (fun i c ->
        let single = Predicate.count_compiled cs.(i) table in
        let interp = Predicate.count_interpreted schema qs.(i) table in
        if c <> single || c <> interp then
          mismatch "counts" i qs.(i) ~batch:(string_of_int c)
            ~single:(string_of_int single) ~interp:(string_of_int interp))
      batch;
    batch

let isolations ?pool ?compiled table qs =
  Obs.Counter.add c_evals (Table.nrows table * Array.length qs);
  let schema = Table.schema table in
  let compiled_or cs = match compiled with Some cs -> cs | None -> cs () in
  match Predicate.engine () with
  | Predicate.Interpreted ->
    Array.map (fun q -> Predicate.count_interpreted schema q table = 1) qs
  | Predicate.Compiled ->
    isolates_many ?pool table (compiled_or (fun () -> compile_all schema qs))
  | Predicate.Checked ->
    let cs = compiled_or (fun () -> compile_all schema qs) in
    let batch = isolates_many ?pool table cs in
    Array.iteri
      (fun i b ->
        let single = Predicate.isolates_compiled cs.(i) table in
        let interp = Predicate.count_interpreted schema qs.(i) table = 1 in
        if b <> single || b <> interp then
          mismatch "isolations" i qs.(i) ~batch:(string_of_bool b)
            ~single:(string_of_bool single) ~interp:(string_of_bool interp))
      batch;
    batch
