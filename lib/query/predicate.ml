module Value = Dataset.Value
module Schema = Dataset.Schema
module Table = Dataset.Table
module Gvalue = Dataset.Gvalue
module Model = Dataset.Model

type atom =
  | Eq of string * Value.t
  | Member of string * Value.t list
  | Range of string * float * float
  | Fits of string * Gvalue.t
  | Hash_bucket of { buckets : int; bucket : int; salt : int64 }
  | Hash_bit of { index : int; salt : int64 }

type t =
  | True
  | False
  | Atom of atom
  | Not of t
  | And of t * t
  | Or of t * t

let conj = function
  | [] -> True
  | p :: rest -> List.fold_left (fun acc q -> And (acc, q)) p rest

let disj = function
  | [] -> False
  | p :: rest -> List.fold_left (fun acc q -> Or (acc, q)) p rest

let of_grow schema grow =
  let attrs = Schema.attributes schema in
  let cells =
    Array.to_list
      (Array.mapi
         (fun j g ->
           match g with
           | Gvalue.Any -> True
           | _ -> Atom (Fits (attrs.(j).Schema.name, g)))
         grow)
  in
  conj (List.filter (fun p -> p <> True) cells)

let encode_row row =
  let buf = Buffer.create 64 in
  Array.iter
    (fun v ->
      let s = Value.to_string v in
      let tag =
        match Value.kind_of v with
        | None -> "n"
        | Some k -> String.sub (Value.kind_name k) 0 1
      in
      Buffer.add_string buf (Printf.sprintf "%s%d:%s;" tag (String.length s) s))
    row;
  Buffer.contents buf

let value_test = function
  | Eq (_, x) -> fun v -> Value.equal v x
  | Member (_, xs) -> fun v -> List.exists (fun x -> Value.equal x v) xs
  | Range (_, lo, hi) -> (
    fun v ->
      match Value.to_float v with Some f -> lo <= f && f < hi | None -> false)
  | Fits (_, g) -> Gvalue.matches g
  | Hash_bucket _ | Hash_bit _ -> assert false

let atom_attr = function
  | Eq (a, _) | Member (a, _) | Range (a, _, _) | Fits (a, _) -> Some a
  | Hash_bucket _ | Hash_bit _ -> None

(* Hash atoms over one record share a digest; predicates like the pad
   construction's conjoin 64 bit-atoms with one salt, so recomputing the
   serialization and hash per atom would dominate. A small keyed cache
   (row physical identity, salt) removes the rework; several slots (not
   one) so multi-salt pad constructions with interleaved salts stop
   thrashing the cache. Domain-local, so trials evaluated on different
   pool workers memoize independently. *)
let digest_slots = 8

type digest_cache = {
  entries : (Table.row * int64 * int64) option array;
  mutable next : int;  (* round-robin replacement cursor *)
}

let digest_cache : digest_cache Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { entries = Array.make digest_slots None; next = 0 })

(* Hit/miss split of a domain-local cache depends on how trials were
   scheduled over domains, hence ~timing (excluded from cross-jobs
   determinism checks). *)
let c_digest_hits = Obs.Counter.make ~timing:true "query.digest_cache_hits"

let c_digest_misses = Obs.Counter.make ~timing:true "query.digest_cache_misses"

let row_digest row salt =
  let c = Domain.DLS.get digest_cache in
  let rec scan i =
    if i >= digest_slots then None
    else
      match c.entries.(i) with
      | Some (r, s, d) when r == row && s = salt -> Some d
      | _ -> scan (i + 1)
  in
  match scan 0 with
  | Some d ->
    Obs.Counter.incr c_digest_hits;
    d
  | None ->
    Obs.Counter.incr c_digest_misses;
    let d = Prob.Hashing.hash64 ~salt (encode_row row) in
    c.entries.(c.next) <- Some (row, salt, d);
    c.next <- (c.next + 1) mod digest_slots;
    d

let eval_atom schema atom row =
  match atom with
  | Hash_bucket { buckets; bucket; salt } ->
    let d = Int64.shift_right_logical (row_digest row salt) 1 in
    Int64.to_int (Int64.rem d (Int64.of_int buckets)) = bucket
  | Hash_bit { index; salt } ->
    Int64.logand (Int64.shift_right_logical (row_digest row salt) index) 1L = 1L
  | Eq (a, _) | Member (a, _) | Range (a, _, _) | Fits (a, _) ->
    let i = Schema.index_of schema a in
    value_test atom row.(i)

let rec eval schema t row =
  match t with
  | True -> true
  | False -> false
  | Atom a -> eval_atom schema a row
  | Not p -> not (eval schema p row)
  | And (p, q) -> eval schema p row && eval schema q row
  | Or (p, q) -> eval schema p row || eval schema q row

let rec to_string = function
  | True -> "true"
  | False -> "false"
  | Atom (Eq (a, v)) -> Printf.sprintf "%s = %s" a (Value.to_string v)
  | Atom (Member (a, vs)) ->
    Printf.sprintf "%s in {%s}" a
      (String.concat ", " (List.map Value.to_string vs))
  | Atom (Range (a, lo, hi)) -> Printf.sprintf "%s in [%g, %g)" a lo hi
  | Atom (Fits (a, g)) -> Printf.sprintf "%s ~ %s" a (Gvalue.to_string g)
  | Atom (Hash_bucket { buckets; bucket; _ }) ->
    Printf.sprintf "hash(record) mod %d = %d" buckets bucket
  | Atom (Hash_bit { index; _ }) -> Printf.sprintf "bit_%d(hash(record))" index
  | Not p -> Printf.sprintf "not (%s)" (to_string p)
  | And (p, q) -> Printf.sprintf "(%s && %s)" (to_string p) (to_string q)
  | Or (p, q) -> Printf.sprintf "(%s || %s)" (to_string p) (to_string q)

(* A short stable identifier for audit-ledger query events: the salted
   64-bit hash of the canonical rendering, in hex. *)
let digest p = Printf.sprintf "%016Lx" (Prob.Hashing.hash64 ~salt:0L (to_string p))

(* --- Compiled predicates --- *)

(* Compilation resolves each atom's attribute to its schema index once
   (instead of a string lookup per atom per row) and keeps the original
   atom alongside as the bitset cache key. Evaluation against a table is
   columnar: each atom materializes a Bitset over its column — per-value
   tests (Eq/Member/Fits) run once per distinct dictionary value, not once
   per row — and the connectives combine whole words. *)

type catom =
  | Ceq of int * Value.t
  | Cmember of int * Value.t list
  | Crange of int * float * float
  | Cfits of int * Gvalue.t
  | Chash_bucket of { buckets : int; bucket : int; salt : int64 }
  | Chash_bit of { index : int; salt : int64 }

type cexp =
  | Ktrue
  | Kfalse
  | Katom of atom * catom
  | Knot of cexp
  | Kand of cexp * cexp
  | Kor of cexp * cexp

type compiled = { c_prog : cexp; c_source : t }

let source c = c.c_source

let compile schema t =
  let catom a =
    match a with
    | Eq (name, v) -> Ceq (Schema.index_of schema name, v)
    | Member (name, vs) -> Cmember (Schema.index_of schema name, vs)
    | Range (name, lo, hi) -> Crange (Schema.index_of schema name, lo, hi)
    | Fits (name, g) -> Cfits (Schema.index_of schema name, g)
    | Hash_bucket { buckets; bucket; salt } -> Chash_bucket { buckets; bucket; salt }
    | Hash_bit { index; salt } -> Chash_bit { index; salt }
  in
  let rec go = function
    | True -> Ktrue
    | False -> Kfalse
    | Atom a -> Katom (a, catom a)
    | Not p -> Knot (go p)
    | And (p, q) -> Kand (go p, go q)
    | Or (p, q) -> Kor (go p, go q)
  in
  { c_prog = go t; c_source = t }

(* Atom bitsets and per-salt digest columns, memoized per table. The cache
   is domain-local (no locks on the hot path, like the digest cache above)
   and bounded: a handful of tables in MRU order — the PSO game touches one
   fresh table per trial, so stale generations retire immediately — and a
   cap on distinct atoms per table. Keys include Table.id, which every
   derived table refreshes, so stale hits are impossible by construction. *)
type table_cache = {
  tbl : int;  (* Table.id *)
  atoms : (atom, Bitset.t) Hashtbl.t;
  digests : (int64, int64 array) Hashtbl.t;  (* salt -> per-row digest *)
}

(* Cache bounds. Both are env-overridable; the atom bound is additionally
   batch-aware: [count_many] grows it (up to [atom_capacity_ceiling]) to
   the number of distinct atoms in the batch it is about to evaluate, so a
   1k-predicate batch does not thrash a 512-atom cache by rematerializing
   the overflow on every call. Growth is monotone — capacity never shrinks
   below the env/default floor, and a later small batch cannot evict the
   headroom a big one established. *)
let env_bound name default =
  match Option.bind (Sys.getenv_opt name) int_of_string_opt with
  | Some v when v > 0 -> v
  | Some _ | None -> default

let max_cached_tables = env_bound "PSO_ATOM_CACHE_TABLES" 4

let atom_capacity_floor = env_bound "PSO_ATOM_CACHE_ATOMS" 512

let atom_capacity_ceiling = 65_536

let atom_capacity = Atomic.make atom_capacity_floor

let atom_cache_capacity () = Atomic.get atom_capacity

let reserve_atom_capacity n =
  let n = min n atom_capacity_ceiling in
  let rec grow () =
    let cur = Atomic.get atom_capacity in
    if n > cur && not (Atomic.compare_and_set atom_capacity cur n) then grow ()
  in
  grow ()

let bitset_caches : table_cache list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let fresh_table_cache table =
  { tbl = Table.id table; atoms = Hashtbl.create 32; digests = Hashtbl.create 4 }

let table_cache table =
  let caches = Domain.DLS.get bitset_caches in
  let tid = Table.id table in
  match List.find_opt (fun tc -> tc.tbl = tid) !caches with
  | Some tc ->
    if (List.hd !caches).tbl <> tid then
      caches := tc :: List.filter (fun c -> c != tc) !caches;
    tc
  | None ->
    let tc = fresh_table_cache table in
    caches := tc :: List.filteri (fun i _ -> i < max_cached_tables - 1) !caches;
    tc

(* One count per compiled-tree evaluation: a logical event (independent of
   scheduling), unlike the cache hit/miss split below. *)
let c_compiled = Obs.Counter.make "query.compiled_evals"

let c_bitset_hits = Obs.Counter.make ~timing:true "query.bitset_cache_hits"

let c_bitset_misses = Obs.Counter.make ~timing:true "query.bitset_cache_misses"

(* A miss that could not even be admitted: the per-table atom cache was at
   capacity, so the bitset was rebuilt and thrown away. A steadily growing
   value is the eviction-thrash signature the batch-aware capacity above
   exists to prevent. *)
let c_bitset_rejected = Obs.Counter.make ~timing:true "query.bitset_cache_rejected"

let digest_column table tc salt =
  match Hashtbl.find_opt tc.digests salt with
  | Some d -> d
  | None ->
    let d =
      Array.map
        (fun row -> Prob.Hashing.hash64 ~salt (encode_row row))
        (Table.rows table)
    in
    Hashtbl.add tc.digests salt d;
    d

let materialize table cols tc ca =
  let n = Table.nrows table in
  match ca with
  | Ceq (j, v) -> (
    let col = cols.(j) in
    match Table.code_of col v with
    | None -> Bitset.create n
    | Some c ->
      let codes = col.Table.codes in
      Bitset.init n (fun i -> Array.unsafe_get codes i = c))
  | Cmember (j, vs) ->
    let col = cols.(j) in
    let marks = Array.make (max 1 (Array.length col.Table.dict)) false in
    List.iter
      (fun v ->
        match Table.code_of col v with
        | Some c -> marks.(c) <- true
        | None -> ())
      vs;
    let codes = col.Table.codes in
    Bitset.init n (fun i -> Array.unsafe_get marks (Array.unsafe_get codes i))
  | Crange (j, lo, hi) ->
    let fs = cols.(j).Table.floats in
    Bitset.init n (fun i ->
        let f = Array.unsafe_get fs i in
        lo <= f && f < hi)
  | Cfits (j, g) ->
    let col = cols.(j) in
    (* The per-value test runs once per dictionary entry, not per row. *)
    let marks = Array.map (Gvalue.matches g) col.Table.dict in
    let codes = col.Table.codes in
    Bitset.init n (fun i -> Array.unsafe_get marks (Array.unsafe_get codes i))
  | Chash_bucket { buckets; bucket; salt } ->
    let d = digest_column table tc salt in
    let buckets = Int64.of_int buckets in
    Bitset.init n (fun i ->
        Int64.to_int
          (Int64.rem (Int64.shift_right_logical (Array.unsafe_get d i) 1) buckets)
        = bucket)
  | Chash_bit { index; salt } ->
    let d = digest_column table tc salt in
    Bitset.init n (fun i ->
        Int64.logand (Int64.shift_right_logical (Array.unsafe_get d i) index) 1L
        = 1L)

let atom_bits ~cache table cols tc key ca =
  match Hashtbl.find_opt tc.atoms key with
  | Some b ->
    Obs.Counter.incr c_bitset_hits;
    b
  | None ->
    Obs.Counter.incr c_bitset_misses;
    let b = materialize table cols tc ca in
    if cache then begin
      if Hashtbl.length tc.atoms < atom_cache_capacity () then
        Hashtbl.add tc.atoms key b
      else Obs.Counter.incr c_bitset_rejected
    end;
    b

let bits ?(cache = true) c table =
  Obs.Counter.incr c_compiled;
  let n = Table.nrows table in
  let cols = Table.columns table in
  let tc = if cache then table_cache table else fresh_table_cache table in
  let rec go = function
    | Ktrue -> Bitset.ones n
    | Kfalse -> Bitset.create n
    | Katom (key, ca) -> atom_bits ~cache table cols tc key ca
    | Knot p -> Bitset.bnot (go p)
    | Kand (p, q) -> Bitset.band (go p) (go q)
    | Kor (p, q) -> Bitset.bor (go p) (go q)
  in
  go c.c_prog

let count_compiled ?cache c table = Bitset.count (bits ?cache c table)

let isolates_compiled ?cache c table =
  Bitset.count_capped 1 (bits ?cache c table) = 1

(* --- Batched evaluation --- *)

(* A batch shares everything the per-predicate path rebuilds per call: the
   columnar view and dictionary codes are fetched once, each distinct atom
   across the whole batch is hash-consed to one id and materialized exactly
   once (through the MRU cache above, with capacity reserved for the
   batch), and every predicate is linearized to a tiny postfix program over
   those atom ids. Evaluation then fuses the boolean connectives: for each
   63-bit word of the table, the program runs on a scratch stack of native
   ints — no intermediate bitset is ever allocated — and the result word
   feeds the popcount directly. *)

(* Postfix opcodes: [>= 0] pushes the words of atom [op]; negatives are the
   connectives and constants. *)
let op_true = -1

let op_false = -2

let op_not = -3

let op_and = -4

let op_or = -5

type batch_prog = { code : int array; stack_need : int }

let linearize atom_id c =
  let code = ref [] in
  let n = ref 0 in
  let emit op =
    code := op :: !code;
    incr n
  in
  (* Stack need of left-to-right postfix evaluation: the left operand's
     result occupies one slot while the right operand evaluates. *)
  let rec go = function
    | Ktrue ->
      emit op_true;
      1
    | Kfalse ->
      emit op_false;
      1
    | Katom (key, ca) ->
      emit (atom_id key ca);
      1
    | Knot p ->
      let d = go p in
      emit op_not;
      d
    | Kand (p, q) ->
      let dp = go p in
      let dq = go q in
      emit op_and;
      max dp (dq + 1)
    | Kor (p, q) ->
      let dp = go p in
      let dq = go q in
      emit op_or;
      max dp (dq + 1)
  in
  let stack_need = go c.c_prog in
  { code = Array.of_list (List.rev !code); stack_need }

(* Logical batch metrics: both depend only on the batch's composition, so
   they are deterministic for a deterministic workload at any --jobs. *)
let c_batch_evals = Obs.Counter.make "query.batch_evals"

let c_batch_dedup = Obs.Counter.make "query.batch_atom_dedup_hits"

(* The operand stack holds borrowed word arrays: an atom push costs one
   pointer store, and each operator runs as a single tight loop over all
   words into the destination slot's dedicated scratch array. The
   invariant is that stack slot [i] holds either a borrowed array (atom
   words, [ones], [zeros]) or [scratch.(i)] itself — so a binary op
   writing [scratch.(sp-2)] can never clobber its right operand, and
   elementwise in-place overlap with the left operand is harmless. *)
type batch_plan = {
  progs : batch_prog array;  (* distinct programs only *)
  index : int array;  (* predicate slot -> distinct program id *)
  atom_words : int array array;  (* atom id -> packed words *)
  nrows : int;
  nw : int;  (* words per row set *)
  tail : int;  (* live mask of the last word *)
  stack : int array array;  (* operand slots, sized to the deepest program *)
  scratch : int array array;  (* per-slot destination arrays *)
  ones : int array;  (* borrowed Ktrue words (clean tail) *)
  zeros : int array;  (* borrowed Kfalse words *)
}

(* The table-independent half of a plan: postfix programs over dense atom
   ids, the id -> atom mapping, and bookkeeping for the dedup counter. *)
type batch_prep = {
  prep_progs : batch_prog array;  (* distinct programs, first-seen order *)
  prep_index : int array;  (* predicate slot -> distinct program id *)
  prep_atoms : (atom * catom) array;  (* atom id -> key, ascending *)
  prep_occurrences : int;
  prep_stack_need : int;
}

let prep_batch cs =
  (* Hash-cons atoms across the whole batch, then hash-cons whole
     programs: a batch that asks the same predicate twice (duplicate
     queries, blitted workloads, symmetric question sets) evaluates it
     once and fans the answer out. Ids are assigned in ascending slot
     order by explicit loops — [Array.map]'s evaluation order is
     unspecified, and deterministic numbering keeps preps reproducible. *)
  let ids : (atom, int) Hashtbl.t = Hashtbl.create 64 in
  let rev_atoms = ref [] in
  let occurrences = ref 0 in
  let atom_id key ca =
    incr occurrences;
    match Hashtbl.find_opt ids key with
    | Some i -> i
    | None ->
      let i = Hashtbl.length ids in
      Hashtbl.add ids key i;
      rev_atoms := (key, ca) :: !rev_atoms;
      i
  in
  let n = Array.length cs in
  let prog_ids : (int array, int) Hashtbl.t = Hashtbl.create 64 in
  let rev_progs = ref [] in
  let index = Array.make n 0 in
  for i = 0 to n - 1 do
    let p = linearize atom_id cs.(i) in
    match Hashtbl.find_opt prog_ids p.code with
    | Some j -> index.(i) <- j
    | None ->
      let j = Hashtbl.length prog_ids in
      Hashtbl.add prog_ids p.code j;
      rev_progs := p :: !rev_progs;
      index.(i) <- j
  done;
  let progs = Array.of_list (List.rev !rev_progs) in
  {
    prep_progs = progs;
    prep_index = index;
    prep_atoms = Array.of_list (List.rev !rev_atoms);
    prep_occurrences = !occurrences;
    prep_stack_need =
      Array.fold_left (fun acc p -> max acc p.stack_need) 1 progs;
  }

(* Batched callers replay the same compiled array run after run (the PSO
   game replays one mechanism per trial; attacks reuse one question set),
   so the prep is memoized in a small domain-local MRU keyed by the
   array's physical identity — immutable contents make identity a sound
   key, and a new array at worst re-preps. *)
let max_cached_preps = 8

let prep_cache : (compiled array * batch_prep) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let prep_for cs =
  let cache = Domain.DLS.get prep_cache in
  let rec take acc = function
    | [] -> None
    | ((key, prep) as e) :: rest ->
      if key == cs then Some (prep, List.rev_append acc rest)
      else take (e :: acc) rest
  in
  match take [] !cache with
  | Some (prep, rest) ->
    cache := (cs, prep) :: rest;
    prep
  | None ->
    let prep = prep_batch cs in
    let kept =
      if List.length !cache >= max_cached_preps then
        List.filteri (fun i _ -> i < max_cached_preps - 1) !cache
      else !cache
    in
    cache := (cs, prep) :: kept;
    prep

let plan_batch ~cache table cs =
  Obs.Counter.add c_batch_evals (Array.length cs);
  let prep = prep_for cs in
  let distinct = Array.length prep.prep_atoms in
  Obs.Counter.add c_batch_dedup (prep.prep_occurrences - distinct);
  if cache then reserve_atom_capacity distinct;
  let nrows = Table.nrows table in
  let cols = Table.columns table in
  let tc = if cache then table_cache table else fresh_table_cache table in
  let atom_words =
    Array.map
      (fun (key, ca) ->
        Bitset.unsafe_words (atom_bits ~cache table cols tc key ca))
      prep.prep_atoms
  in
  let nw = Bitset.word_count nrows in
  {
    progs = prep.prep_progs;
    index = prep.prep_index;
    atom_words;
    nrows;
    nw;
    tail = Bitset.live_mask nrows;
    stack = Array.make prep.prep_stack_need [||];
    scratch = Array.init prep.prep_stack_need (fun _ -> Array.make nw 0);
    ones = Bitset.unsafe_words (Bitset.ones nrows);
    zeros = Array.make nw 0;
  }

(* Run the first [limit] opcodes, leaving operands in [plan.stack] (the
   caller knows the resulting stack shape statically: a full program
   leaves exactly its root value in slot 0, a program cut before a binary
   root leaves the two operands in slots 0 and 1). Interior [lnot]s may
   set bits beyond the length in the last word; readers mask with
   [plan.tail], which is sound because every opcode is bitwise. *)
let run_ops plan code limit =
  let stack = plan.stack in
  let scratch = plan.scratch in
  let atoms = plan.atom_words in
  let nw = plan.nw in
  let sp = ref 0 in
  for ci = 0 to limit - 1 do
    let op = Array.unsafe_get code ci in
    if op >= 0 then begin
      Array.unsafe_set stack !sp (Array.unsafe_get atoms op);
      incr sp
    end
    else if op = op_and then begin
      let a = Array.unsafe_get stack (!sp - 2) in
      let b = Array.unsafe_get stack (!sp - 1) in
      let dst = Array.unsafe_get scratch (!sp - 2) in
      for w = 0 to nw - 1 do
        Array.unsafe_set dst w
          (Array.unsafe_get a w land Array.unsafe_get b w)
      done;
      Array.unsafe_set stack (!sp - 2) dst;
      decr sp
    end
    else if op = op_or then begin
      let a = Array.unsafe_get stack (!sp - 2) in
      let b = Array.unsafe_get stack (!sp - 1) in
      let dst = Array.unsafe_get scratch (!sp - 2) in
      for w = 0 to nw - 1 do
        Array.unsafe_set dst w
          (Array.unsafe_get a w lor Array.unsafe_get b w)
      done;
      Array.unsafe_set stack (!sp - 2) dst;
      decr sp
    end
    else if op = op_not then begin
      let a = Array.unsafe_get stack (!sp - 1) in
      let dst = Array.unsafe_get scratch (!sp - 1) in
      for w = 0 to nw - 1 do
        Array.unsafe_set dst w (lnot (Array.unsafe_get a w))
      done;
      Array.unsafe_set stack (!sp - 1) dst
    end
    else begin
      Array.unsafe_set stack !sp (if op = op_true then plan.ones else plan.zeros);
      incr sp
    end
  done

let eval_prog plan code =
  run_ops plan code (Array.length code);
  Array.unsafe_get plan.stack 0

(* Popcount of a word array masked to the live bits. *)
let count_words plan words = Bitset.unsafe_count_words words plan.nw plan.tail

(* A count never needs the root's row set, so the root operator fuses with
   the popcount: evaluate everything below the root, then combine and
   count in one pass with no destination write. A postfix program ends
   with its root, so [last >= 0] means the whole predicate is one atom
   (clean tail — plain popcount), and a root [Knot] is counted as the
   complement. *)
let count_plan plan pi =
  let code = plan.progs.(pi).code in
  let n = Array.length code in
  let last = Array.unsafe_get code (n - 1) in
  if last >= 0 then
    (* Atom bitsets have clean tails, so no mask is needed. *)
    Bitset.unsafe_count_words (Array.unsafe_get plan.atom_words last) plan.nw (-1)
  else if last = op_and || last = op_or then begin
    run_ops plan code (n - 1);
    let a = Array.unsafe_get plan.stack 0 in
    let b = Array.unsafe_get plan.stack 1 in
    if last = op_and then Bitset.unsafe_count_and a b plan.nw plan.tail
    else Bitset.unsafe_count_or a b plan.nw plan.tail
  end
  else if last = op_not then begin
    run_ops plan code (n - 1);
    plan.nrows - count_words plan (Array.unsafe_get plan.stack 0)
  end
  else if last = op_true then plan.nrows
  else 0

(* Evaluate each distinct program once, then fan the per-program results
   out to the predicate slots that share it. *)
let count_many ?(cache = true) table cs =
  if Array.length cs = 0 then [||]
  else begin
    let plan = plan_batch ~cache table cs in
    let per_prog = Array.init (Array.length plan.progs) (count_plan plan) in
    Array.map (fun j -> per_prog.(j)) plan.index
  end

let isolates_many ?(cache = true) table cs =
  if Array.length cs = 0 then [||]
  else begin
    let plan = plan_batch ~cache table cs in
    let per_prog =
      Array.init (Array.length plan.progs) (fun pi -> count_plan plan pi = 1)
    in
    Array.map (fun j -> per_prog.(j)) plan.index
  end

let bits_many ?(cache = true) table cs =
  let plan = plan_batch ~cache table cs in
  (* Duplicate slots share one immutable bitset. *)
  let per_prog =
    Array.init (Array.length plan.progs) (fun pi ->
        let words = Array.copy (eval_prog plan plan.progs.(pi).code) in
        if plan.nw > 0 then
          words.(plan.nw - 1) <- words.(plan.nw - 1) land plan.tail;
        Bitset.unsafe_of_words ~len:plan.nrows words)
  in
  Array.map (fun j -> per_prog.(j)) plan.index

(* --- Engine selection --- *)

type engine = Interpreted | Compiled | Checked

let engine_of_string s =
  match String.lowercase_ascii s with
  | "interp" | "interpreted" -> Some Interpreted
  | "bitset" | "compiled" -> Some Compiled
  | "check" | "checked" -> Some Checked
  | _ -> None

let engine_name = function
  | Interpreted -> "interp"
  | Compiled -> "bitset"
  | Checked -> "check"

(* Unrecognized env values fall back to the default rather than raising at
   library init; the CLIs validate their --engine flag properly. *)
let engine_mode =
  Atomic.make
    (match Option.bind (Sys.getenv_opt "PSO_QUERY_ENGINE") engine_of_string with
    | Some e -> e
    | None -> Compiled)

let engine () = Atomic.get engine_mode

let set_engine e = Atomic.set engine_mode e

(* One row-evaluation per row scanned: the logical cost of every counting
   query, deterministic for a deterministic workload at any --jobs and
   charged identically by every engine. *)
let c_evals = Obs.Counter.make "query.predicate_evals"

let count_interpreted schema t table =
  Table.count (fun row -> eval schema t row) table

let mismatch what t interp compiled =
  failwith
    (Printf.sprintf
       "Predicate.%s: engine mismatch (interpreter %s, compiled %s) on %s" what
       interp compiled (to_string t))

let count schema t table =
  Obs.Counter.add c_evals (Table.nrows table);
  match engine () with
  | Interpreted -> count_interpreted schema t table
  | Compiled -> count_compiled (compile schema t) table
  | Checked ->
    let a = count_interpreted schema t table in
    let b = count_compiled (compile schema t) table in
    if a <> b then mismatch "count" t (string_of_int a) (string_of_int b);
    a

let isolates schema t table =
  Obs.Counter.add c_evals (Table.nrows table);
  match engine () with
  | Interpreted -> count_interpreted schema t table = 1
  | Compiled -> isolates_compiled (compile schema t) table
  | Checked ->
    let a = count_interpreted schema t table = 1 in
    let b = isolates_compiled (compile schema t) table in
    if a <> b then mismatch "isolates" t (string_of_bool a) (string_of_bool b);
    a

(* --- Weight --- *)

type weight =
  | Exact of float
  | Salted of float
  | Estimated of { value : float; trials : int }

let weight_value = function
  | Exact w | Salted w -> w
  | Estimated { value; _ } -> value

(* A conjunction decomposes into per-attribute constraints, hash factors and
   constants. *)
type conjunct =
  | Cattr of string * (Value.t -> bool)
  | Chash of float
  | Cconst of bool

let conjunct_of_atom ~negated atom =
  match atom with
  | Hash_bucket { buckets; _ } ->
    let p = 1. /. float_of_int buckets in
    Chash (if negated then 1. -. p else p)
  | Hash_bit _ -> Chash 0.5
  | Eq _ | Member _ | Range _ | Fits _ ->
    let test = value_test atom in
    let test = if negated then fun v -> not (test v) else test in
    (match atom_attr atom with
    | Some a -> Cattr (a, test)
    | None -> assert false)

(* Flatten a pure conjunction; [None] if the formula is not a conjunction of
   (possibly negated) atoms. The accumulator keeps flattening linear — the
   naive [cp @ cq] recursion is quadratic on the long left-leaning chains
   [conj] builds (pad constructions conjoin 64 atoms). *)
let conjuncts t =
  let rec go t acc =
    match t with
    | True -> Some (Cconst true :: acc)
    | False -> Some (Cconst false :: acc)
    | Atom a -> Some (conjunct_of_atom ~negated:false a :: acc)
    | Not (Atom a) -> Some (conjunct_of_atom ~negated:true a :: acc)
    | Not True -> Some (Cconst false :: acc)
    | Not False -> Some (Cconst true :: acc)
    | And (p, q) -> Option.bind (go q acc) (fun acc -> go p acc)
    | Not _ | Or _ -> None
  in
  go t []

let analytic_weight model cs =
  if List.exists (function Cconst false -> true | _ -> false) cs then
    Some (Exact 0.)
  else begin
    (* Group attribute constraints; each attribute contributes the marginal
       probability of satisfying all of its tests (exact under the product
       model). *)
    let by_attr : (string, (Value.t -> bool) list) Hashtbl.t = Hashtbl.create 8 in
    let schema = Model.schema model in
    let hash_factor = ref 1. in
    let salted = ref false in
    let ok = ref true in
    List.iter
      (function
        | Cconst _ -> ()
        | Chash p ->
          salted := true;
          hash_factor := !hash_factor *. p
        | Cattr (a, test) ->
          if not (Schema.mem schema a) then ok := false
          else begin
            let prev = Option.value ~default:[] (Hashtbl.find_opt by_attr a) in
            Hashtbl.replace by_attr a (test :: prev)
          end)
      cs;
    if not !ok then None
    else begin
      (* Fold the per-attribute factors in schema attribute order: float
         products are not associative and Hashtbl.iter order is
         implementation-defined, so iterating the table directly would
         leave the low bits of the weight at the mercy of the hash
         function. Schema order pins the product bit-for-bit. *)
      let w = ref !hash_factor in
      Array.iter
        (fun (a : Schema.attribute) ->
          match Hashtbl.find_opt by_attr a.Schema.name with
          | None -> ()
          | Some tests ->
            w :=
              !w
              *. Model.cell_prob model a.Schema.name (fun v ->
                     List.for_all (fun t -> t v) tests))
        (Schema.attributes schema);
      (* cell_prob sums marginal masses, so rounding can push a certain
         event a few ulps past 1; weights are probabilities, clamp. *)
      let w = Float.max 0. (Float.min 1. !w) in
      if !salted then Some (Salted w) else Some (Exact w)
    end
  end

let default_trials = 20_000

let weight ?rng ?(trials = default_trials) model t =
  let analytic = Option.bind (conjuncts t) (analytic_weight model) in
  match analytic with
  | Some w -> w
  | None ->
    let rng =
      match rng with Some r -> r | None -> Prob.Rng.create ~seed:0x5EEDL ()
    in
    let schema = Model.schema model in
    let hits = ref 0 in
    for _ = 1 to trials do
      if eval schema t (Model.sample_row rng model) then incr hits
    done;
    Estimated { value = float_of_int !hits /. float_of_int trials; trials }
