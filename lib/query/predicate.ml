module Value = Dataset.Value
module Schema = Dataset.Schema
module Table = Dataset.Table
module Gvalue = Dataset.Gvalue
module Model = Dataset.Model

type atom =
  | Eq of string * Value.t
  | Member of string * Value.t list
  | Range of string * float * float
  | Fits of string * Gvalue.t
  | Hash_bucket of { buckets : int; bucket : int; salt : int64 }
  | Hash_bit of { index : int; salt : int64 }

type t =
  | True
  | False
  | Atom of atom
  | Not of t
  | And of t * t
  | Or of t * t

let conj = function
  | [] -> True
  | p :: rest -> List.fold_left (fun acc q -> And (acc, q)) p rest

let disj = function
  | [] -> False
  | p :: rest -> List.fold_left (fun acc q -> Or (acc, q)) p rest

let of_grow schema grow =
  let attrs = Schema.attributes schema in
  let cells =
    Array.to_list
      (Array.mapi
         (fun j g ->
           match g with
           | Gvalue.Any -> True
           | _ -> Atom (Fits (attrs.(j).Schema.name, g)))
         grow)
  in
  conj (List.filter (fun p -> p <> True) cells)

let encode_row row =
  let buf = Buffer.create 64 in
  Array.iter
    (fun v ->
      let s = Value.to_string v in
      let tag =
        match Value.kind_of v with
        | None -> "n"
        | Some k -> String.sub (Value.kind_name k) 0 1
      in
      Buffer.add_string buf (Printf.sprintf "%s%d:%s;" tag (String.length s) s))
    row;
  Buffer.contents buf

let value_test = function
  | Eq (_, x) -> fun v -> Value.equal v x
  | Member (_, xs) -> fun v -> List.exists (fun x -> Value.equal x v) xs
  | Range (_, lo, hi) -> (
    fun v ->
      match Value.to_float v with Some f -> lo <= f && f < hi | None -> false)
  | Fits (_, g) -> Gvalue.matches g
  | Hash_bucket _ | Hash_bit _ -> assert false

let atom_attr = function
  | Eq (a, _) | Member (a, _) | Range (a, _, _) | Fits (a, _) -> Some a
  | Hash_bucket _ | Hash_bit _ -> None

(* Hash atoms over one record share a digest; predicates like the pad
   construction's conjoin 64 bit-atoms with one salt, so recomputing the
   serialization and hash per atom would dominate. A single-slot cache keyed
   by the row's physical identity and the salt removes the rework (the
   common evaluation loops revisit the same row for many atoms/queries).
   The slot is domain-local so that trials evaluated on different pool
   workers memoize independently instead of thrashing one shared slot. *)
let digest_cache : (Table.row * int64 * int64) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let row_digest row salt =
  let cache = Domain.DLS.get digest_cache in
  match !cache with
  | Some (r, s, d) when r == row && s = salt -> d
  | _ ->
    let d = Prob.Hashing.hash64 ~salt (encode_row row) in
    cache := Some (row, salt, d);
    d

let eval_atom schema atom row =
  match atom with
  | Hash_bucket { buckets; bucket; salt } ->
    let d = Int64.shift_right_logical (row_digest row salt) 1 in
    Int64.to_int (Int64.rem d (Int64.of_int buckets)) = bucket
  | Hash_bit { index; salt } ->
    Int64.logand (Int64.shift_right_logical (row_digest row salt) index) 1L = 1L
  | Eq (a, _) | Member (a, _) | Range (a, _, _) | Fits (a, _) ->
    let i = Schema.index_of schema a in
    value_test atom row.(i)

let rec eval schema t row =
  match t with
  | True -> true
  | False -> false
  | Atom a -> eval_atom schema a row
  | Not p -> not (eval schema p row)
  | And (p, q) -> eval schema p row && eval schema q row
  | Or (p, q) -> eval schema p row || eval schema q row

(* One row-evaluation per row scanned: the logical cost of every counting
   query, deterministic for a deterministic workload at any --jobs. *)
let c_evals = Obs.Counter.make "query.predicate_evals"

let count schema t table =
  Obs.Counter.add c_evals (Table.nrows table);
  Table.count (fun row -> eval schema t row) table

let isolates schema t table = count schema t table = 1

(* --- Weight --- *)

type weight =
  | Exact of float
  | Salted of float
  | Estimated of { value : float; trials : int }

let weight_value = function
  | Exact w | Salted w -> w
  | Estimated { value; _ } -> value

(* A conjunction decomposes into per-attribute constraints, hash factors and
   constants. *)
type conjunct =
  | Cattr of string * (Value.t -> bool)
  | Chash of float
  | Cconst of bool

let conjunct_of_atom ~negated atom =
  match atom with
  | Hash_bucket { buckets; _ } ->
    let p = 1. /. float_of_int buckets in
    Chash (if negated then 1. -. p else p)
  | Hash_bit _ -> Chash 0.5
  | Eq _ | Member _ | Range _ | Fits _ ->
    let test = value_test atom in
    let test = if negated then fun v -> not (test v) else test in
    (match atom_attr atom with
    | Some a -> Cattr (a, test)
    | None -> assert false)

(* Flatten a pure conjunction; [None] if the formula is not a conjunction of
   (possibly negated) atoms. *)
let rec conjuncts t =
  match t with
  | True -> Some [ Cconst true ]
  | False -> Some [ Cconst false ]
  | Atom a -> Some [ conjunct_of_atom ~negated:false a ]
  | Not (Atom a) -> Some [ conjunct_of_atom ~negated:true a ]
  | Not True -> Some [ Cconst false ]
  | Not False -> Some [ Cconst true ]
  | And (p, q) -> (
    match (conjuncts p, conjuncts q) with
    | Some cp, Some cq -> Some (cp @ cq)
    | _, _ -> None)
  | Not _ | Or _ -> None

let analytic_weight model cs =
  if List.exists (function Cconst false -> true | _ -> false) cs then
    Some (Exact 0.)
  else begin
    (* Group attribute constraints; each attribute contributes the marginal
       probability of satisfying all of its tests (exact under the product
       model). *)
    let by_attr : (string, (Value.t -> bool) list) Hashtbl.t = Hashtbl.create 8 in
    let hash_factor = ref 1. in
    let salted = ref false in
    List.iter
      (function
        | Cconst _ -> ()
        | Chash p ->
          salted := true;
          hash_factor := !hash_factor *. p
        | Cattr (a, test) ->
          let prev = Option.value ~default:[] (Hashtbl.find_opt by_attr a) in
          Hashtbl.replace by_attr a (test :: prev))
      cs;
    let w = ref !hash_factor in
    let ok = ref true in
    Hashtbl.iter
      (fun a tests ->
        match Model.cell_prob model a (fun v -> List.for_all (fun t -> t v) tests) with
        | p -> w := !w *. p
        | exception Not_found -> ok := false)
      by_attr;
    if not !ok then None
    else begin
      (* cell_prob sums marginal masses, so rounding can push a certain
         event a few ulps past 1; weights are probabilities, clamp. *)
      let w = Float.max 0. (Float.min 1. !w) in
      if !salted then Some (Salted w) else Some (Exact w)
    end
  end

let default_trials = 20_000

let weight ?rng ?(trials = default_trials) model t =
  let analytic = Option.bind (conjuncts t) (analytic_weight model) in
  match analytic with
  | Some w -> w
  | None ->
    let rng =
      match rng with Some r -> r | None -> Prob.Rng.create ~seed:0x5EEDL ()
    in
    let schema = Model.schema model in
    let hits = ref 0 in
    for _ = 1 to trials do
      if eval schema t (Model.sample_row rng model) then incr hits
    done;
    Estimated { value = float_of_int !hits /. float_of_int trials; trials }

let rec to_string = function
  | True -> "true"
  | False -> "false"
  | Atom (Eq (a, v)) -> Printf.sprintf "%s = %s" a (Value.to_string v)
  | Atom (Member (a, vs)) ->
    Printf.sprintf "%s in {%s}" a
      (String.concat ", " (List.map Value.to_string vs))
  | Atom (Range (a, lo, hi)) -> Printf.sprintf "%s in [%g, %g)" a lo hi
  | Atom (Fits (a, g)) -> Printf.sprintf "%s ~ %s" a (Gvalue.to_string g)
  | Atom (Hash_bucket { buckets; bucket; _ }) ->
    Printf.sprintf "hash(record) mod %d = %d" buckets bucket
  | Atom (Hash_bit { index; _ }) -> Printf.sprintf "bit_%d(hash(record))" index
  | Not p -> Printf.sprintf "not (%s)" (to_string p)
  | And (p, q) -> Printf.sprintf "(%s && %s)" (to_string p) (to_string q)
  | Or (p, q) -> Printf.sprintf "(%s || %s)" (to_string p) (to_string q)
