type output =
  | Scalar of float
  | Vector of float array
  | Release of Dataset.Table.t
  | Generalized of Dataset.Gtable.t
  | Words of int64 array
  | Pair of output * output

type t = { name : string; run : Prob.Rng.t -> Dataset.Table.t -> output }

let run t rng table = t.run rng table

let exact_count q =
  {
    name = Printf.sprintf "count[%s]" (Predicate.to_string q);
    run =
      (fun _rng table ->
        Scalar (float_of_int (Predicate.count (Dataset.Table.schema table) q table)));
  }

let exact_counts qs =
  {
    name = Printf.sprintf "counts[%d queries]" (Array.length qs);
    run =
      (fun _rng table ->
        let schema = Dataset.Table.schema table in
        let counts =
          match Predicate.engine () with
          | Predicate.Interpreted ->
            (* Rows outer, queries inner: hash-atom digests are cached per
               row, so query batches over the same record pay for one
               digest. *)
            let counts = Array.make (Array.length qs) 0. in
            Array.iter
              (fun row ->
                Array.iteri
                  (fun i q ->
                    if Predicate.eval schema q row then
                      counts.(i) <- counts.(i) +. 1.)
                  qs)
              (Dataset.Table.rows table);
            counts
          | Predicate.Compiled | Predicate.Checked ->
            (* Per-query compiled counts (Predicate.count dispatches, so
               Checked still cross-validates). The per-salt digest column
               is memoized, so a batch of hash-bit queries over one salt
               still computes each row's digest once. *)
            Array.map
              (fun q -> float_of_int (Predicate.count schema q table))
              qs
        in
        Vector counts);
  }

(* Same handles as lib/dp (Counter.make is idempotent by name): noise
   added by the Laplace-counts mechanism is accounted with the rest. *)
let c_noise_draws = Obs.Counter.make "dp.noise_draws"

let h_noise_magnitude = Obs.Histogram.make "dp.noise_magnitude"

let laplace_counts ~epsilon qs =
  if epsilon <= 0. then invalid_arg "Mechanism.laplace_counts: epsilon";
  let scale = float_of_int (max 1 (Array.length qs)) /. epsilon in
  let exact = exact_counts qs in
  {
    name = Printf.sprintf "laplace-counts[%d queries, eps=%g]" (Array.length qs) epsilon;
    run =
      (fun rng table ->
        match exact.run rng table with
        | Vector counts ->
          Vector
            (Array.map
               (fun c ->
                 let noise = Prob.Sampler.laplace rng ~scale in
                 Obs.Counter.incr c_noise_draws;
                 Obs.Histogram.observe h_noise_magnitude (Float.abs noise);
                 c +. noise)
               counts)
        | other -> other);
  }

let identity_release =
  { name = "identity-release"; run = (fun _rng table -> Release table) }

let compose m1 m2 =
  {
    name = Printf.sprintf "(%s, %s)" m1.name m2.name;
    run = (fun rng table -> Pair (m1.run rng table, m2.run rng table));
  }

let post_process name f m =
  {
    name = Printf.sprintf "%s . %s" name m.name;
    run = (fun rng table -> f (m.run rng table));
  }

let as_vector output =
  let rec collect acc = function
    | Scalar v -> Some (v :: acc)
    | Vector vs -> Some (List.rev_append (Array.to_list vs) acc)
    | Pair (a, b) -> Option.bind (collect acc a) (fun acc -> collect acc b)
    | Release _ | Generalized _ | Words _ -> None
  in
  Option.map (fun l -> Array.of_list (List.rev l)) (collect [] output)
