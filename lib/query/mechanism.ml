type output =
  | Scalar of float
  | Vector of float array
  | Release of Dataset.Table.t
  | Generalized of Dataset.Gtable.t
  | Words of int64 array
  | Pair of output * output

type t = { name : string; run : Prob.Rng.t -> Dataset.Table.t -> output }

let run t rng table = t.run rng table

(* Deterministic cost sketch (rows touched — the ledger's latency proxy,
   shared by name with Curator/Oracle) and a wall-clock latency sketch,
   which is timing-flagged and so excluded from cross-jobs checks. *)
let sk_cost = Obs.Sketchm.make "query.cost_rows"

let sk_latency = Obs.Sketchm.make ~timing:true "query.latency_ns"

(* Journal one mechanism run. The digest is precomputed at mechanism
   construction (lazily — construction happens once, runs happen per
   trial) so the per-run cost when the ledger is off stays one flag
   read. *)
let log_run ~digest ~noised ~cost f =
  if not (Obs.enabled () || Obs.Ledger.enabled ()) then f ()
  else begin
    let t0 = Obs.now_ns () in
    let out = f () in
    Obs.Sketchm.observe sk_latency (Int64.to_float (Int64.sub (Obs.now_ns ()) t0));
    Obs.Sketchm.observe sk_cost (float_of_int cost);
    Obs.Ledger.query ~analyst:Obs.Ledger.ambient_analyst ~kind:"mechanism"
      ~digest:(Lazy.force digest)
      ~engine:(Predicate.engine_name (Predicate.engine ()))
      ~noised ~cost;
    out
  end

let exact_count q =
  let digest = lazy (Predicate.digest q) in
  {
    name = Printf.sprintf "count[%s]" (Predicate.to_string q);
    run =
      (fun _rng table ->
        log_run ~digest ~noised:false ~cost:(Dataset.Table.nrows table)
          (fun () ->
            Scalar
              (float_of_int
                 (Predicate.count (Dataset.Table.schema table) q table))));
  }

(* A query batch carries its compilation: the PSO game runs the same
   mechanism across thousands of trials, and recompiling the predicate
   array per run (or once per mechanism wrapping the same array — the old
   exact_counts/laplace_counts pairing did exactly that) is pure waste.
   The cache is keyed by the schema the compilation was resolved against;
   a mechanism handed a table with a different schema just recompiles.
   Atomic because Pso.Game fans trials across domains: a race compiles
   twice and one result wins, which is wasteful but correct. *)
type batch = {
  queries : Predicate.t array;
  cache : (Dataset.Schema.t * Predicate.compiled array) option Atomic.t;
}

let batch queries = { queries; cache = Atomic.make None }

let batch_queries b = b.queries

let batch_compiled b schema =
  match Atomic.get b.cache with
  | Some (s, cs) when s == schema || s = schema -> cs
  | Some _ | None ->
    let cs = Array.map (Predicate.compile schema) b.queries in
    Atomic.set b.cache (Some (schema, cs));
    cs

(* The shared, non-journaling counts kernel: both the exact and the
   Laplace batch mechanisms call this and then emit their *own* single
   query event, so a noised release is never double-logged as an exact
   one. *)
let batch_counts ?pool b table =
  let qs = b.queries in
  let schema = Dataset.Table.schema table in
  match Predicate.engine () with
  | Predicate.Interpreted ->
    (* Rows outer, queries inner: hash-atom digests are cached per
       row, so query batches over the same record pay for one
       digest. *)
    let counts = Array.make (Array.length qs) 0. in
    Array.iter
      (fun row ->
        Array.iteri
          (fun i q ->
            if Predicate.eval schema q row then counts.(i) <- counts.(i) +. 1.)
          qs)
      (Dataset.Table.rows table);
    counts
  | Predicate.Compiled | Predicate.Checked ->
    (* One batched evaluation: shared columnar scan, batch-wide
       atom dedup, compilation reused across runs. Under Checked,
       Engine.counts re-derives every answer with the
       per-predicate compiled path and the interpreter. *)
    Array.map float_of_int
      (Engine.counts ?pool ~compiled:(batch_compiled b schema) table qs)

(* One digest for the whole batch: the hash of all member renderings. *)
let batch_digest b =
  lazy
    (Printf.sprintf "%016Lx"
       (Prob.Hashing.hash64 ~salt:0L
          (String.concat "|"
             (Array.to_list (Array.map Predicate.to_string b.queries)))))

let batch_cost b table = Dataset.Table.nrows table * Array.length b.queries

let exact_counts_batch ?pool b =
  let digest = batch_digest b in
  {
    name = Printf.sprintf "counts[%d queries]" (Array.length b.queries);
    run =
      (fun _rng table ->
        log_run ~digest ~noised:false ~cost:(batch_cost b table) (fun () ->
            Vector (batch_counts ?pool b table)));
  }

let exact_counts qs = exact_counts_batch (batch qs)

(* Same handles as lib/dp (Counter.make is idempotent by name): noise
   added by the Laplace-counts mechanism is accounted with the rest. *)
let c_noise_draws = Obs.Counter.make "dp.noise_draws"

let h_noise_magnitude = Obs.Histogram.make "dp.noise_magnitude"

let laplace_counts_batch ?pool ~epsilon b =
  if epsilon <= 0. then invalid_arg "Mechanism.laplace_counts: epsilon";
  let nq = Array.length b.queries in
  let scale = float_of_int (max 1 nq) /. epsilon in
  let digest = batch_digest b in
  {
    name = Printf.sprintf "laplace-counts[%d queries, eps=%g]" nq epsilon;
    run =
      (fun rng table ->
        log_run ~digest ~noised:true ~cost:(batch_cost b table) (fun () ->
            let counts = batch_counts ?pool b table in
            (* One bulk pass in explicit ascending index order: the exact
               draw sequence of the old per-count Array.map, so released
               vectors are byte-identical — at every --jobs, since counts
               never touch the rng. *)
            let n = Array.length counts in
            let out = Array.make n 0. in
            for i = 0 to n - 1 do
              let noise = Prob.Sampler.laplace rng ~scale in
              Obs.Histogram.observe h_noise_magnitude (Float.abs noise);
              out.(i) <- counts.(i) +. noise
            done;
            Obs.Counter.add c_noise_draws n;
            if n > 0 then
              Obs.Ledger.noise ~analyst:Obs.Ledger.ambient_analyst
                ~mechanism:"laplace" ~scale ~n;
            Vector out));
  }

let laplace_counts ~epsilon qs = laplace_counts_batch ~epsilon (batch qs)

let identity_release =
  { name = "identity-release"; run = (fun _rng table -> Release table) }

let compose m1 m2 =
  {
    name = Printf.sprintf "(%s, %s)" m1.name m2.name;
    run = (fun rng table -> Pair (m1.run rng table, m2.run rng table));
  }

let post_process name f m =
  {
    name = Printf.sprintf "%s . %s" name m.name;
    run = (fun rng table -> f (m.run rng table));
  }

let as_vector output =
  let rec collect acc = function
    | Scalar v -> Some (v :: acc)
    | Vector vs -> Some (List.rev_append (Array.to_list vs) acc)
    | Pair (a, b) -> Option.bind (collect acc a) (fun acc -> collect acc b)
    | Release _ | Generalized _ | Words _ -> None
  in
  Option.map (fun l -> Array.of_list (List.rev l)) (collect [] output)
