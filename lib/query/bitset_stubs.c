/* Popcount kernels for the batched predicate evaluator.
 *
 * OCaml compiles the per-word SWAR popcount to ~12 dependent ALU ops plus
 * loop overhead per word; C gets the same math at full ILP (and lets the
 * compiler vectorize), which matters because a batched count is nothing
 * but popcounts. Only counting crosses the FFI: whole word arrays go in,
 * one tagged int comes out, so the call overhead amortizes over the array.
 *
 * Representation notes: an OCaml `int array` stores tagged 63-bit ints
 * ((x << 1) | 1). Long_val sign-extends, so a word with bit 62 set comes
 * back with bit 63 set too — mask to 63 bits before counting. The tail
 * mask argument is an OCaml int whose 63 bits select the live bits of the
 * final word (-1 when the tail is full).
 */

#include <stdint.h>
#include <caml/mlvalues.h>

#define MASK63 UINT64_C(0x7FFFFFFFFFFFFFFF)
#define WORD(a, i) (((uint64_t)Long_val(Field((a), (i)))) & MASK63)

static inline uint64_t pop64(uint64_t x)
{
  x = x - ((x >> 1) & UINT64_C(0x5555555555555555));
  x = (x & UINT64_C(0x3333333333333333))
      + ((x >> 2) & UINT64_C(0x3333333333333333));
  x = (x + (x >> 4)) & UINT64_C(0x0F0F0F0F0F0F0F0F);
  return (x * UINT64_C(0x0101010101010101)) >> 56;
}

CAMLprim value pso_bitset_count_words(value a, value vnw, value vtail)
{
  long nw = Long_val(vnw);
  uint64_t acc = 0;
  for (long i = 0; i < nw - 1; i++) acc += pop64(WORD(a, i));
  if (nw > 0)
    acc += pop64(WORD(a, nw - 1) & ((uint64_t)Long_val(vtail) & MASK63));
  return Val_long((long)acc);
}

CAMLprim value pso_bitset_count_and(value a, value b, value vnw, value vtail)
{
  long nw = Long_val(vnw);
  uint64_t acc = 0;
  for (long i = 0; i < nw - 1; i++) acc += pop64(WORD(a, i) & WORD(b, i));
  if (nw > 0)
    acc += pop64(WORD(a, nw - 1) & WORD(b, nw - 1)
                 & ((uint64_t)Long_val(vtail) & MASK63));
  return Val_long((long)acc);
}

CAMLprim value pso_bitset_count_or(value a, value b, value vnw, value vtail)
{
  long nw = Long_val(vnw);
  uint64_t acc = 0;
  for (long i = 0; i < nw - 1; i++) acc += pop64(WORD(a, i) | WORD(b, i));
  if (nw > 0)
    acc += pop64((WORD(a, nw - 1) | WORD(b, nw - 1))
                 & ((uint64_t)Long_val(vtail) & MASK63));
  return Val_long((long)acc);
}
