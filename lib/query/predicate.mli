(** Predicates over records.

    This is the paper's object of study: the attacker's output is a
    predicate [p : X -> {0,1}] (Section 2.1, interpreting "a collection of
    attributes" as a truth-valued function on records). Predicates are
    represented as a small AST so that their weight under a product data
    model can be computed analytically — a Monte-Carlo estimate can never
    certify that a weight is negligible. *)

type atom =
  | Eq of string * Dataset.Value.t  (** attribute equals a value *)
  | Member of string * Dataset.Value.t list  (** attribute in a finite set *)
  | Range of string * float * float
      (** numeric view of the attribute in [lo, hi) (dates via ordinal) *)
  | Fits of string * Dataset.Gvalue.t
      (** attribute falls under a generalized value — the bridge from
          k-anonymized releases to predicates *)
  | Hash_bucket of { buckets : int; bucket : int; salt : int64 }
      (** the whole record hashes into a given bucket: the
          Leftover-Hash-Lemma-style predicate of prescribed weight
          [1/buckets] used throughout Section 2 *)
  | Hash_bit of { index : int; salt : int64 }
      (** one bit of the record's 64-bit digest — the unit of information
          the Theorem 2.8 attacker extracts per count query *)

type t =
  | True
  | False
  | Atom of atom
  | Not of t
  | And of t * t
  | Or of t * t

val conj : t list -> t
(** Conjunction of a list ([True] for the empty list). *)

val disj : t list -> t

val of_grow : Dataset.Schema.t -> Dataset.Gtable.grow -> t
(** The predicate "this record falls under every cell of this generalized
    row" — the equivalence-class predicate of Theorem 2.10's proof. *)

val encode_row : Dataset.Table.row -> string
(** Canonical serialization of a record, the input to the hash atoms.
    Injective on rows of a fixed schema. *)

val eval : Dataset.Schema.t -> t -> Dataset.Table.row -> bool
(** Raises [Not_found] if an atom names an attribute absent from the
    schema. *)

val count : Dataset.Schema.t -> t -> Dataset.Table.t -> int
(** [Σᵢ p(xᵢ)] — the count-query answer for this predicate. Dispatches on
    the current {!engine}: the default compiled path evaluates against the
    table's columnar view via cached bitsets; the interpreter is the
    executable reference. Both produce identical results on every input —
    [Checked] asserts exactly that. *)

val isolates : Dataset.Schema.t -> t -> Dataset.Table.t -> bool
(** Definition 2.1: [p] isolates in [x] iff it holds for exactly one
    record. Engine-dispatched like {!count}; the compiled path
    short-circuits the popcount past 1. *)

(** {1 Compiled engine}

    [compile] resolves each atom's attribute name to its schema index once
    and pairs it with a specialized columnar evaluation: per-value tests
    (Eq/Member/Fits) run once per distinct dictionary value, Range scans a
    flat float array, hash atoms read a memoized per-salt digest column.
    Each atom materializes a {!Bitset.t} over the table's rows;
    [And]/[Or]/[Not] combine whole words; a count is a popcount loop.

    Atom bitsets and digest columns are memoized in a bounded domain-local
    cache keyed by [(Table.id, atom)] — derived tables get fresh ids, so
    stale hits are impossible by construction. *)

type compiled

val compile : Dataset.Schema.t -> t -> compiled
(** Raises [Not_found] if an atom names an attribute absent from the
    schema — eagerly, unlike the interpreter, which only faults when row
    evaluation actually reaches the atom. *)

val source : compiled -> t
(** The predicate this was compiled from. *)

val bits : ?cache:bool -> compiled -> Dataset.Table.t -> Bitset.t
(** The rows satisfying the predicate, as a bitset of length
    [Table.nrows]. [cache] (default [true]) controls the domain-local atom
    bitset cache; with [~cache:false] every atom rematerializes. *)

val count_compiled : ?cache:bool -> compiled -> Dataset.Table.t -> int

val isolates_compiled : ?cache:bool -> compiled -> Dataset.Table.t -> bool

val count_interpreted : Dataset.Schema.t -> t -> Dataset.Table.t -> int
(** The reference row-by-row interpreter, regardless of engine mode. *)

(** {2 Batched evaluation}

    The attacks never ask one query: reconstruction, the PSO composition
    game and the dpcheck audits each evaluate hundreds to thousands of
    predicates against one table. The batch entry points share the work
    the per-predicate path repeats per call: the columnar view is fetched
    once, every distinct atom across the whole batch is hash-consed and
    materialized exactly once (feeding the same bounded MRU cache, whose
    capacity is grown to the batch), and each predicate's connectives are
    fused into a postfix program evaluated word-by-word on a reusable
    scratch stack — no intermediate bitset allocation at all.

    Results are exactly [Array.map] of the per-predicate compiled path
    (property-tested, and cross-checked under the [Checked] engine by
    {!Engine.counts}). *)

val count_many : ?cache:bool -> Dataset.Table.t -> compiled array -> int array
(** [count_many table cs] is [Array.map (fun c -> count_compiled c table) cs],
    computed with one shared scan. [cache] as in {!bits}. *)

val isolates_many :
  ?cache:bool -> Dataset.Table.t -> compiled array -> bool array
(** Batched Definition 2.1: per-predicate popcounts short-circuit past 1. *)

val bits_many : ?cache:bool -> Dataset.Table.t -> compiled array -> Bitset.t array
(** Batched {!bits}: one freshly allocated row set per predicate, sharing
    atom materialization across the batch. *)

val atom_cache_capacity : unit -> int
(** Current per-table atom-bitset cache bound. Starts at the
    [PSO_ATOM_CACHE_ATOMS] environment variable (default 512) and grows
    monotonically as batches reserve room, up to a fixed ceiling. *)

val reserve_atom_capacity : int -> unit
(** Grow (never shrink) the atom-cache bound to at least the argument,
    clamped to the ceiling. Called by the batch planner with the number of
    distinct atoms in the batch. *)

(** {2 Engine selection} *)

type engine =
  | Interpreted  (** row-by-row reference interpreter *)
  | Compiled  (** columnar bitset engine (default) *)
  | Checked  (** run both, assert agreement — for tests and CI smoke *)

val engine : unit -> engine

val set_engine : engine -> unit
(** Process-wide. The initial mode honours the [PSO_QUERY_ENGINE]
    environment variable ([interp] / [bitset] / [check]; unrecognized
    values are ignored) and defaults to [Compiled]. *)

val engine_of_string : string -> engine option

val engine_name : engine -> string

(** {1 Weight} *)

type weight =
  | Exact of float  (** computed analytically from the model's marginals *)
  | Salted of float
      (** exact in expectation over the hash salt (hash atoms present);
          concentrates tightly for the salts used in practice *)
  | Estimated of { value : float; trials : int }  (** Monte-Carlo fallback *)

val weight_value : weight -> float

val weight : ?rng:Prob.Rng.t -> ?trials:int -> Dataset.Model.t -> t -> weight
(** [weight model p] is [w_D(p)] (Section 2.2). Conjunctions of
    per-attribute atoms (optionally with hash atoms) are computed
    analytically; other shapes fall back to Monte-Carlo with [trials]
    samples (default 20_000) using [rng] (default a fixed seed). *)

val to_string : t -> string

val digest : t -> string
(** A stable 16-hex-digit identifier (salted 64-bit hash of
    {!to_string}) used to reference predicates in audit-ledger events. *)
