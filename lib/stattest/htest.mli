(** Hypothesis tests: chi-square goodness of fit and Kolmogorov–Smirnov.
    Each returns the test statistic and an (asymptotic) p-value; assertion
    wrappers live in {!Check}. *)

type result = {
  statistic : float;
  df : float;  (** degrees of freedom (0 for KS) *)
  p_value : float;
}

val chi_square_gof : expected:float array -> int array -> result
(** Pearson chi-square against the expected cell counts. Cells with
    expected count below 1e-9 must be empty ([p_value] is 0 otherwise).
    Raises [Invalid_argument] on a length mismatch, fewer than 2 cells, or
    non-positive total expectation. *)

val chi_square_uniform : int array -> result
(** Goodness of fit against the uniform distribution over the cells. *)

val ks_one_sample : cdf:(float -> float) -> float array -> result
(** One-sample Kolmogorov–Smirnov against a continuous CDF, with the usual
    finite-sample correction [λ = (√n + 0.12 + 0.11/√n) D]. Raises
    [Invalid_argument] on an empty sample. *)

val ks_two_sample : float array -> float array -> result
(** Two-sample Kolmogorov–Smirnov with effective size [n₁n₂/(n₁+n₂)].
    Raises [Invalid_argument] if either sample is empty. *)
