(** Empirical ε-DP counterexample auditor.

    Definition 1.2 demands [Pr[M(x) ∈ E] ≤ e^ε · Pr[M(x') ∈ E] + δ] for
    every event [E] and neighboring [x, x']. The auditor fixes an
    adversarially chosen neighboring pair and a finite partition of the
    output space into events, estimates both event distributions by Monte
    Carlo, and certifies a violation only when the Clopper–Pearson
    {e lower} bound on the numerator exceeds [e^ε] times the
    Clopper–Pearson {e upper} bound on the denominator (plus δ), with
    Bonferroni correction across events — so a reported counterexample is
    statistically sound at the stated confidence, not sampling noise.

    The converse does not hold (passing is evidence, not proof — the trial
    budget bounds the detectable excess privacy loss), which is why the
    battery ships deliberately broken variants ({!broken}) demonstrating
    the auditor's power: a mechanism at half the required noise scale, or
    with a dropped factor of 2, is reliably flagged at the default trial
    count.

    Trials fan out over a {!Parallel.Pool.t} with one child generator per
    trial ({!Parallel.Trials.map}), so reports are byte-identical at every
    [--jobs] count for a fixed seed. *)

type case = {
  name : string;
  epsilon : float;  (** claimed privacy parameter *)
  delta : float;  (** claimed δ (0 for pure ε-DP) *)
  events : int;  (** size of the output-event partition *)
  label : int -> string;  (** human name of an event *)
  sample_a : Prob.Rng.t -> int;  (** run the mechanism on x, map to event *)
  sample_b : Prob.Rng.t -> int;  (** the same on the neighbor x' *)
  broken : bool;  (** negative control: auditor is expected to flag it *)
}

type direction = A_over_b | B_over_a

type violation = {
  event : int;
  event_label : string;
  direction : direction;
  log_ratio_lower : float;
      (** CI-corrected lower bound on [ln((p_num − δ) / p_den)]; a
          violation has this [> epsilon] *)
  numerator_ci : float * float;
  denominator_ci : float * float;
}

type report = {
  case_name : string;
  epsilon : float;
  delta : float;
  trials : int;
  confidence : float;
  counts_a : int array;
  counts_b : int array;
  max_log_ratio_lower : float;
      (** largest certified lower bound on the privacy loss across all
          events and both directions ([neg_infinity] when nothing is
          measurable); an ε-DP mechanism keeps this [<= epsilon] *)
  violations : violation list;
}

val run :
  ?pool:Parallel.Pool.t ->
  ?confidence:float ->
  ?trials:int ->
  Prob.Rng.t ->
  case ->
  report
(** Defaults: the shared pool, [confidence = 0.9999] (split across events
    by Bonferroni), [trials = 60_000] per neighbor. The generator advances
    by exactly [trials] splits regardless of the pool size. Raises
    [Invalid_argument] if [trials <= 0] or a sampler returns an event
    outside [0, events). *)

val passed : report -> bool
(** No violations found. *)

val standard : unit -> case list
(** One case per [lib/dp] mechanism at its claimed ε: laplace, gaussian,
    geometric, exponential, randomized_response, noisy_max, sparse_vector,
    histogram, tree. All are expected to pass. *)

val case_of_control : Controls.spec -> case
(** The sampling case realizing a shared negative-control spec: the spec's
    defect kind selects the miscalibrated sampler and its [actual_epsilon]
    drives it, while the case still {e claims} [claimed_epsilon]. *)

val broken : unit -> case list
(** [List.map case_of_control Controls.all] — the four deliberately
    miscalibrated variants the auditor must flag: half-scale Laplace
    noise, geometric noise at triple ε, the exponential mechanism without
    its factor-2 denominator, and randomized response at double ε. *)

val all : unit -> case list
(** [standard () @ broken ()]. *)

val find : string -> case option
(** Case lookup by name (case-insensitive). *)

val pp_report : Format.formatter -> report -> unit
