module P = Query.Predicate

type case = {
  name : string;
  epsilon : float;
  delta : float;
  events : int;
  label : int -> string;
  sample_a : Prob.Rng.t -> int;
  sample_b : Prob.Rng.t -> int;
  broken : bool;
}

type direction = A_over_b | B_over_a

type violation = {
  event : int;
  event_label : string;
  direction : direction;
  log_ratio_lower : float;
  numerator_ci : float * float;
  denominator_ci : float * float;
}

type report = {
  case_name : string;
  epsilon : float;
  delta : float;
  trials : int;
  confidence : float;
  counts_a : int array;
  counts_b : int array;
  max_log_ratio_lower : float;
  violations : violation list;
}

let run ?pool ?(confidence = 0.9999) ?(trials = 60_000) rng case =
  if trials <= 0 then invalid_arg "Stattest.Dp_audit.run: trials must be positive";
  let pool = match pool with Some p -> p | None -> Parallel.Pool.default () in
  (* One child generator per trial: the tally below is byte-identical at
     every pool size, and [rng] advances by exactly [trials] splits. *)
  let outcomes =
    Parallel.Trials.map pool rng ~trials (fun r _ ->
        let a = case.sample_a r in
        let b = case.sample_b r in
        (a, b))
  in
  let counts_a = Array.make case.events 0 in
  let counts_b = Array.make case.events 0 in
  Array.iter
    (fun (a, b) ->
      if a < 0 || a >= case.events || b < 0 || b >= case.events then
        invalid_arg "Stattest.Dp_audit.run: sampler returned event out of range";
      counts_a.(a) <- counts_a.(a) + 1;
      counts_b.(b) <- counts_b.(b) + 1)
    outcomes;
  (* Bonferroni: the stated confidence is split across the per-event
     intervals, so the chance that ANY interval misses its probability —
     the only way a spurious violation can be certified — is at most
     [1 - confidence]. *)
  let per_event = 1. -. ((1. -. confidence) /. float_of_int case.events) in
  let ci c =
    Ci.clopper_pearson ~confidence:per_event ~successes:c ~trials ()
  in
  let max_lr = ref neg_infinity in
  let violations = ref [] in
  for e = case.events - 1 downto 0 do
    let ci_a = ci counts_a.(e) and ci_b = ci counts_b.(e) in
    let consider direction (num_lo, num_hi) (den_lo, den_hi) =
      ignore num_hi;
      ignore den_lo;
      let num = num_lo -. case.delta in
      if num > 0. && den_hi > 0. then begin
        let lr = Float.log (num /. den_hi) in
        if lr > !max_lr then max_lr := lr;
        if lr > case.epsilon then
          violations :=
            {
              event = e;
              event_label = case.label e;
              direction;
              log_ratio_lower = lr;
              numerator_ci = (if direction = A_over_b then ci_a else ci_b);
              denominator_ci = (if direction = A_over_b then ci_b else ci_a);
            }
            :: !violations
      end
    in
    consider B_over_a ci_b ci_a;
    consider A_over_b ci_a ci_b
  done;
  {
    case_name = case.name;
    epsilon = case.epsilon;
    delta = case.delta;
    trials;
    confidence;
    counts_a;
    counts_b;
    max_log_ratio_lower = !max_lr;
    violations = !violations;
  }

let passed r = r.violations = []

let pp_report fmt r =
  Format.fprintf fmt "%-28s eps=%.3g delta=%.2g trials=%d loss>=%s -> %s"
    r.case_name r.epsilon r.delta r.trials
    (if Float.is_finite r.max_log_ratio_lower then
       Printf.sprintf "%.3f" r.max_log_ratio_lower
     else "n/a")
    (if passed r then "PASS" else "VIOLATION");
  List.iter
    (fun v ->
      let nlo, nhi = v.numerator_ci and dlo, dhi = v.denominator_ci in
      Format.fprintf fmt
        "@.    event %s (%s): certified loss %.3f > eps %.3g (num CI [%.4g, \
         %.4g], den CI [%.4g, %.4g])"
        v.event_label
        (match v.direction with
        | A_over_b -> "Pr[A] vs Pr[B]"
        | B_over_a -> "Pr[B] vs Pr[A]")
        v.log_ratio_lower r.epsilon nlo nhi dlo dhi)
    r.violations

(* --- The standard battery ------------------------------------------- *)

(* Every case shares one adversarial fixture: a product-model table x of
   [n] rows and its neighbor x' = x plus one extra record, so the count of
   [P.True] differs by exactly 1 (sensitivity-1 inputs for every
   count-shaped mechanism). Selection-shaped mechanisms (exponential,
   noisy_max, sparse_vector) instead use explicit sensitivity-1 score
   vectors differing by ±1 coordinatewise. *)

let fixture_n = 40

let fixture_seed = 0x5EED_D9L

let model = lazy (Dataset.Synth.pso_model ~attributes:2 ~values_per_attribute:4)

let tables =
  lazy
    (let model = Lazy.force model in
     let r = Prob.Rng.create ~seed:fixture_seed () in
     let base = Dataset.Model.sample_table r model fixture_n in
     let extra = Dataset.Model.sample_row r model in
     let bigger =
       Dataset.Table.append base
         (Dataset.Table.make (Dataset.Model.schema model) [| extra |])
     in
     (bigger, base, extra))

(* Continuous outputs are discretized into [bins] equal cells over
   [lo, hi) plus two tail events. *)
let bucket ~lo ~hi ~bins x =
  if x < lo then 0
  else if x >= hi then bins + 1
  else 1 + int_of_float ((x -. lo) /. (hi -. lo) *. float_of_int bins)

let bucket_label ~lo ~hi ~bins i =
  if i = 0 then Printf.sprintf "(-inf, %g)" lo
  else if i = bins + 1 then Printf.sprintf "[%g, inf)" hi
  else
    let w = (hi -. lo) /. float_of_int bins in
    let l = lo +. (w *. float_of_int (i - 1)) in
    Printf.sprintf "[%g, %g)" l (l +. w)

let numeric_case ~name ~epsilon ?(delta = 0.) ~lo ~hi ~bins ~sample_a ~sample_b
    ?(broken = false) () =
  {
    name;
    epsilon;
    delta;
    events = bins + 2;
    label = bucket_label ~lo ~hi ~bins;
    sample_a = (fun r -> bucket ~lo ~hi ~bins (sample_a r));
    sample_b = (fun r -> bucket ~lo ~hi ~bins (sample_b r));
    broken;
  }

let count_window = (36., 45., 18)

let laplace_case ?(name = "laplace") ?(scale_override = None) ?(broken = false)
    () =
  let t_a, t_b, _ = Lazy.force tables in
  let lo, hi, bins = count_window in
  let sample t r =
    match scale_override with
    | None -> Dp.Laplace.count r ~epsilon:1. t P.True
    | Some scale ->
      (* The deliberately broken variant: noise at the wrong scale while
         still claiming eps = 1. *)
      let exact = P.count (Dataset.Table.schema t) P.True t in
      float_of_int exact +. Prob.Sampler.laplace r ~scale
  in
  numeric_case ~name ~epsilon:1. ~lo ~hi ~bins ~sample_a:(sample t_a)
    ~sample_b:(sample t_b) ~broken ()

let gaussian_case () =
  let t_a, t_b, _ = Lazy.force tables in
  let delta = 1e-5 in
  let sample t r = Dp.Gaussian.count r ~epsilon:1. ~delta t P.True in
  numeric_case ~name:"gaussian" ~epsilon:1. ~delta ~lo:28. ~hi:54. ~bins:13
    ~sample_a:(sample t_a) ~sample_b:(sample t_b) ()

let geometric_case ?(name = "geometric") ?(actual_epsilon = 1.)
    ?(broken = false) () =
  let t_a, t_b, _ = Lazy.force tables in
  let span = 7 in
  let events = (2 * span) + 2 in
  let to_event v =
    (* Noise displacement clamped into [-span, span+1]; the clamp only
       merges far-tail outputs into the edge events. *)
    let d = max (-span) (min (span + 1) (v - fixture_n)) in
    d + span
  in
  {
    name;
    epsilon = 1.;
    delta = 0.;
    events;
    label = (fun i -> Printf.sprintf "count=%d" (i - span + fixture_n));
    sample_a = (fun r -> to_event (Dp.Geometric.count r ~epsilon:actual_epsilon t_a P.True));
    sample_b = (fun r -> to_event (Dp.Geometric.count r ~epsilon:actual_epsilon t_b P.True));
    broken;
  }

(* Sensitivity-1 utility vectors: each candidate's utility moves by
   exactly 1 between the neighbors. *)
let utilities_a = [| 0.; 1.; 2.; 3. |]

let utilities_b = [| 1.; 0.; 1.; 2. |]

let exponential_case () =
  let candidates = [| 0; 1; 2; 3 |] in
  let sample u r =
    Dp.Exponential.select r ~epsilon:1. ~sensitivity:1.
      ~utility:(fun c -> u.(c))
      candidates
  in
  {
    name = "exponential";
    epsilon = 1.;
    delta = 0.;
    events = 4;
    label = (fun i -> Printf.sprintf "candidate %d" i);
    sample_a = sample utilities_a;
    sample_b = sample utilities_b;
    broken = false;
  }

(* The classic miscalibration: exp(eps u / sens) instead of
   exp(eps u / (2 sens)) — every score twice as sharp as the claim. *)
let select_without_half rng ~epsilon u =
  let best = Array.fold_left Float.max neg_infinity u in
  let weights = Array.map (fun x -> Float.exp (epsilon *. (x -. best))) u in
  let total = Array.fold_left ( +. ) 0. weights in
  let target = Prob.Rng.uniform rng *. total in
  let acc = ref 0. in
  let chosen = ref (Array.length u - 1) in
  (try
     Array.iteri
       (fun i w ->
         acc := !acc +. w;
         if !acc >= target then begin
           chosen := i;
           raise Exit
         end)
       weights
   with Exit -> ());
  !chosen

let broken_exponential_case ?(name = "broken-exponential") () =
  {
    name;
    epsilon = 1.;
    delta = 0.;
    events = 4;
    label = (fun i -> Printf.sprintf "candidate %d" i);
    sample_a = (fun r -> select_without_half r ~epsilon:1. utilities_a);
    sample_b = (fun r -> select_without_half r ~epsilon:1. utilities_b);
    broken = true;
  }

let rr_case ?(name = "randomized_response") ?(actual_epsilon = 1.)
    ?(broken = false) () =
  {
    name;
    epsilon = 1.;
    delta = 0.;
    events = 2;
    label = (fun i -> if i = 0 then "false" else "true");
    sample_a =
      (fun r -> if Dp.Randomized_response.respond r ~epsilon:actual_epsilon true then 1 else 0);
    sample_b =
      (fun r -> if Dp.Randomized_response.respond r ~epsilon:actual_epsilon false then 1 else 0);
    broken;
  }

let noisy_max_case () =
  let values_a = [| 3.; 5.; 4.; 1. |] in
  let values_b = [| 4.; 4.; 3.; 2. |] in
  {
    name = "noisy_max";
    epsilon = 1.;
    delta = 0.;
    events = 4;
    label = (fun i -> Printf.sprintf "argmax %d" i);
    sample_a = (fun r -> Dp.Noisy_max.select_values r ~epsilon:1. values_a);
    sample_b = (fun r -> Dp.Noisy_max.select_values r ~epsilon:1. values_b);
    broken = false;
  }

let sparse_vector_case () =
  let stream_a = [| 1.; 3.; 5.; 0. |] in
  let stream_b = [| 2.; 2.; 4.; 1. |] in
  let transcript stream r =
    (* The audited event is the whole interaction: index of the first
       above-threshold report, or "none". *)
    let t = Dp.Sparse_vector.create r ~epsilon:1. ~threshold:2. ~max_hits:1 in
    let hit = ref (Array.length stream) in
    (try
       Array.iteri
         (fun i v ->
           if Dp.Sparse_vector.ask t v then begin
             hit := i;
             raise Exit
           end)
         stream
     with Exit -> ());
    !hit
  in
  {
    name = "sparse_vector";
    epsilon = 1.;
    delta = 0.;
    events = 5;
    label = (fun i -> if i = 4 then "no hit" else Printf.sprintf "first hit %d" i);
    sample_a = transcript stream_a;
    sample_b = transcript stream_b;
    broken = false;
  }

let histogram_case () =
  let model = Lazy.force model in
  let t_a, t_b, extra = Lazy.force tables in
  let cells = Dp.Histogram.partition_by_attribute model "a0" in
  let schema = Dataset.Model.schema model in
  (* The extra record changes exactly one histogram cell; audit the
     mechanism's output projected onto that cell (post-processing, so any
     violation here is a violation of the full release). *)
  let changed =
    let found = ref 0 in
    Array.iteri
      (fun i c -> if P.eval schema c.Dp.Histogram.pred extra then found := i)
      cells;
    !found
  in
  let base_count =
    P.count schema cells.(changed).Dp.Histogram.pred t_b
  in
  let lo = float_of_int base_count -. 4. and bins = 18 in
  let hi = lo +. 9. in
  let sample t r =
    snd (Dp.Histogram.noisy r ~epsilon:1. t cells).(changed)
  in
  numeric_case ~name:"histogram" ~epsilon:1. ~lo ~hi ~bins
    ~sample_a:(sample t_a) ~sample_b:(sample t_b) ()

let tree_case () =
  (* Neighboring 4-cell histograms differing by one record in cell 1; the
     audited output is the root range query (post-processing of the full
     ε-DP tree release, so a violation here indicts the whole tree). *)
  let histogram_a = [| 5; 8; 3; 4 |] in
  let histogram_b = [| 5; 7; 3; 4 |] in
  let sample h r =
    let t = Dp.Tree.build r ~epsilon:1. h in
    Dp.Tree.range t ~lo:0 ~hi:3
  in
  numeric_case ~name:"tree" ~epsilon:1. ~lo:11. ~hi:28. ~bins:17
    ~sample_a:(sample histogram_a) ~sample_b:(sample histogram_b) ()

let standard () =
  [
    laplace_case ();
    gaussian_case ();
    geometric_case ();
    exponential_case ();
    rr_case ();
    noisy_max_case ();
    sparse_vector_case ();
    histogram_case ();
    tree_case ();
  ]

(* Each sampling control is built FROM the shared spec in
   {!Controls}: the defect kind selects the miscalibrated sampler and the
   spec's actual ε drives it, so the auditor, the certificate search, and
   CI all test the same four defects. *)
let case_of_control (c : Controls.spec) =
  match c.Controls.kind with
  | Controls.Laplace_half_scale ->
    (* actual ε = 2 × claimed ⇔ noise at half the required scale. *)
    laplace_case ~name:c.name
      ~scale_override:(Some (c.claimed_epsilon /. c.actual_epsilon))
      ~broken:true ()
  | Controls.Geometric_triple_epsilon ->
    geometric_case ~name:c.name ~actual_epsilon:c.actual_epsilon ~broken:true ()
  | Controls.Exponential_missing_half -> broken_exponential_case ~name:c.name ()
  | Controls.Randomized_response_double_epsilon ->
    rr_case ~name:c.name ~actual_epsilon:c.actual_epsilon ~broken:true ()

let broken () = List.map case_of_control Controls.all

let all () = standard () @ broken ()

let find name =
  let name = String.lowercase_ascii name in
  List.find_opt (fun c -> String.lowercase_ascii c.name = name) (all ())
