(** CI-based assertions: the replacement for magic-number tolerances in
    statistical tests.

    Each assertion raises {!Failed} with a diagnostic message when the
    claimed population quantity falls outside the sample's confidence
    interval (or a goodness-of-fit p-value falls below [alpha]). With
    seeded generators the outcome is deterministic; the confidence level
    states the false-alarm probability the tolerance corresponds to {e had}
    the seed been random. Defaults: [confidence = 0.999],
    [alpha = 0.001]. *)

exception Failed of string

val mean : ?confidence:float -> expected:float -> string -> float array -> unit
(** Asserts the population mean equals [expected], by normal interval. *)

val variance : ?confidence:float -> expected:float -> string -> float array -> unit
(** Asserts the population variance equals [expected], by chi-square
    interval. *)

val proportion :
  ?confidence:float -> expected:float -> string -> successes:int -> trials:int -> unit
(** Asserts the success probability equals [expected], by Clopper–Pearson
    interval. *)

val proportion_within :
  ?confidence:float -> lo:float -> hi:float -> string -> successes:int -> trials:int -> unit
(** Asserts the whole Clopper–Pearson interval sits inside [[lo, hi]] —
    for banded claims without an exact analytic value. *)

val uniform : ?alpha:float -> string -> int array -> unit
(** Chi-square test of uniformity over the cells. *)

val gof : ?alpha:float -> expected:float array -> string -> int array -> unit
(** Chi-square goodness of fit against expected cell counts. *)

val ks_cdf : ?alpha:float -> cdf:(float -> float) -> string -> float array -> unit
(** One-sample Kolmogorov–Smirnov against a continuous CDF. *)

val ks_same : ?alpha:float -> string -> float array -> float array -> unit
(** Two-sample Kolmogorov–Smirnov: both samples from one distribution. *)
