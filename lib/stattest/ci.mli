(** Confidence intervals for the quantities the Monte Carlo experiments
    estimate: binomial proportions (exact Clopper–Pearson coverage), means
    (large-sample normal) and variances (chi-square). Every interval takes
    an explicit [confidence] in (0, 1); with seeded generators the
    resulting assertions are fully deterministic, and the confidence level
    is the principled replacement for a hand-picked tolerance. *)

val clopper_pearson :
  ?confidence:float -> successes:int -> trials:int -> unit -> float * float
(** Exact (conservative) two-sided binomial interval via beta quantiles;
    default [confidence] 0.999. Raises [Invalid_argument] on
    [trials <= 0], [successes] outside [0, trials], or a confidence
    outside (0, 1). *)

val clopper_pearson_upper : ?confidence:float -> successes:int -> trials:int -> unit -> float
(** One-sided upper bound: [p <= bound] with the given coverage. *)

val clopper_pearson_lower : ?confidence:float -> successes:int -> trials:int -> unit -> float
(** One-sided lower bound. *)

val mean_ci : ?confidence:float -> float array -> float * float
(** Large-sample normal interval [x̄ ± z·s/√n]. Raises [Invalid_argument]
    on fewer than 2 samples. *)

val variance_ci : ?confidence:float -> float array -> float * float
(** Chi-square interval for the population variance,
    [(n−1)s²/χ²_{hi}, (n−1)s²/χ²_{lo}]. Raises [Invalid_argument] on fewer
    than 2 samples. *)
