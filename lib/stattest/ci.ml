let default_confidence = 0.999

let check_confidence confidence =
  if confidence <= 0. || confidence >= 1. then
    invalid_arg "Stattest.Ci: confidence must be in (0, 1)"

let check_binomial ~successes ~trials =
  if trials <= 0 then invalid_arg "Stattest.Ci: trials must be positive";
  if successes < 0 || successes > trials then
    invalid_arg "Stattest.Ci: successes must be in [0, trials]"

(* Clopper–Pearson bounds are beta-distribution quantiles:
   lower = B⁻¹(α/2; s, n−s+1), upper = B⁻¹(1−α/2; s+1, n−s). *)
let cp_lower ~alpha ~successes ~trials =
  if successes = 0 then 0.
  else
    Special.beta_quantile
      ~a:(float_of_int successes)
      ~b:(float_of_int (trials - successes + 1))
      alpha

let cp_upper ~alpha ~successes ~trials =
  if successes = trials then 1.
  else
    Special.beta_quantile
      ~a:(float_of_int (successes + 1))
      ~b:(float_of_int (trials - successes))
      (1. -. alpha)

let clopper_pearson ?(confidence = default_confidence) ~successes ~trials () =
  check_confidence confidence;
  check_binomial ~successes ~trials;
  let alpha = (1. -. confidence) /. 2. in
  (cp_lower ~alpha ~successes ~trials, cp_upper ~alpha ~successes ~trials)

let clopper_pearson_upper ?(confidence = default_confidence) ~successes ~trials () =
  check_confidence confidence;
  check_binomial ~successes ~trials;
  cp_upper ~alpha:(1. -. confidence) ~successes ~trials

let clopper_pearson_lower ?(confidence = default_confidence) ~successes ~trials () =
  check_confidence confidence;
  check_binomial ~successes ~trials;
  cp_lower ~alpha:(1. -. confidence) ~successes ~trials

let mean_ci ?(confidence = default_confidence) xs =
  check_confidence confidence;
  let n = Array.length xs in
  if n < 2 then invalid_arg "Stattest.Ci.mean_ci: need at least 2 samples";
  let s = Prob.Stats.summarize xs in
  let z = Special.normal_quantile (1. -. ((1. -. confidence) /. 2.)) in
  let half = z *. s.Prob.Stats.std /. Float.sqrt (float_of_int n) in
  (s.Prob.Stats.mean -. half, s.Prob.Stats.mean +. half)

let variance_ci ?(confidence = default_confidence) xs =
  check_confidence confidence;
  let n = Array.length xs in
  if n < 2 then invalid_arg "Stattest.Ci.variance_ci: need at least 2 samples";
  let s2 = Prob.Stats.variance xs in
  let df = float_of_int (n - 1) in
  let alpha = (1. -. confidence) /. 2. in
  let chi_lo = Special.chi_square_quantile ~df alpha in
  let chi_hi = Special.chi_square_quantile ~df (1. -. alpha) in
  (df *. s2 /. chi_hi, df *. s2 /. chi_lo)
