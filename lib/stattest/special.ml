(* Numerical-Recipes-style implementations; every function is pure and
   deterministic, so the assertions built on them are too. *)

let pi = 4. *. Float.atan 1.

(* Lanczos, g = 7, 9 coefficients. *)
let lanczos =
  [|
    0.99999999999980993;
    676.5203681218851;
    -1259.1392167224028;
    771.32342877765313;
    -176.61502916214059;
    12.507343278686905;
    -0.13857109526572012;
    9.9843695780195716e-6;
    1.5056327351493116e-7;
  |]

let rec log_gamma x =
  if Float.is_nan x then invalid_arg "Stattest.Special.log_gamma: nan";
  if x < 0.5 then
    (* Reflection: Γ(x) Γ(1-x) = π / sin(πx). *)
    Float.log (pi /. Float.sin (pi *. x)) -. log_gamma (1. -. x)
  else begin
    let x = x -. 1. in
    let acc = ref lanczos.(0) in
    for i = 1 to 8 do
      acc := !acc +. (lanczos.(i) /. (x +. float_of_int i))
    done;
    let t = x +. 7.5 in
    (0.5 *. Float.log (2. *. pi))
    +. ((x +. 0.5) *. Float.log t)
    -. t
    +. Float.log !acc
  end

let max_iter = 700

let eps = 1e-15

let tiny = 1e-300

let gamma_p ~a x =
  if a <= 0. then invalid_arg "Stattest.Special.gamma_p: a must be positive";
  if x < 0. then invalid_arg "Stattest.Special.gamma_p: x must be >= 0";
  if x = 0. then 0.
  else if x < a +. 1. then begin
    (* Series for P(a, x). *)
    let ap = ref a in
    let term = ref (1. /. a) in
    let sum = ref !term in
    (try
       for _ = 1 to max_iter do
         ap := !ap +. 1.;
         term := !term *. x /. !ap;
         sum := !sum +. !term;
         if Float.abs !term < Float.abs !sum *. eps then raise Exit
       done
     with Exit -> ());
    !sum *. Float.exp (-.x +. (a *. Float.log x) -. log_gamma a)
  end
  else begin
    (* Lentz continued fraction for Q(a, x). *)
    let b = ref (x +. 1. -. a) in
    let c = ref (1. /. tiny) in
    let d = ref (1. /. !b) in
    let h = ref !d in
    (try
       for i = 1 to max_iter do
         let an = -.float_of_int i *. (float_of_int i -. a) in
         b := !b +. 2.;
         d := (an *. !d) +. !b;
         if Float.abs !d < tiny then d := tiny;
         c := !b +. (an /. !c);
         if Float.abs !c < tiny then c := tiny;
         d := 1. /. !d;
         let delta = !d *. !c in
         h := !h *. delta;
         if Float.abs (delta -. 1.) < eps then raise Exit
       done
     with Exit -> ());
    1. -. (Float.exp (-.x +. (a *. Float.log x) -. log_gamma a) *. !h)
  end

(* Lentz continued fraction for the incomplete beta (NR betacf). *)
let beta_cf a b x =
  let qab = a +. b and qap = a +. 1. and qam = a -. 1. in
  let c = ref 1. in
  let d = ref (1. -. (qab *. x /. qap)) in
  if Float.abs !d < tiny then d := tiny;
  d := 1. /. !d;
  let h = ref !d in
  (try
     for m = 1 to max_iter do
       let fm = float_of_int m in
       let m2 = 2. *. fm in
       let aa = fm *. (b -. fm) *. x /. ((qam +. m2) *. (a +. m2)) in
       d := 1. +. (aa *. !d);
       if Float.abs !d < tiny then d := tiny;
       c := 1. +. (aa /. !c);
       if Float.abs !c < tiny then c := tiny;
       d := 1. /. !d;
       h := !h *. !d *. !c;
       let aa =
         -.(a +. fm) *. (qab +. fm) *. x /. ((a +. m2) *. (qap +. m2))
       in
       d := 1. +. (aa *. !d);
       if Float.abs !d < tiny then d := tiny;
       c := 1. +. (aa /. !c);
       if Float.abs !c < tiny then c := tiny;
       d := 1. /. !d;
       let delta = !d *. !c in
       h := !h *. delta;
       if Float.abs (delta -. 1.) < eps then raise Exit
     done
   with Exit -> ());
  !h

let inc_beta ~a ~b x =
  if a <= 0. || b <= 0. then
    invalid_arg "Stattest.Special.inc_beta: a and b must be positive";
  if x < 0. || x > 1. then
    invalid_arg "Stattest.Special.inc_beta: x must be in [0, 1]";
  if x = 0. then 0.
  else if x = 1. then 1.
  else begin
    let log_bt =
      log_gamma (a +. b) -. log_gamma a -. log_gamma b
      +. (a *. Float.log x)
      +. (b *. Float.log1p (-.x))
    in
    let bt = Float.exp log_bt in
    if x < (a +. 1.) /. (a +. b +. 2.) then bt *. beta_cf a b x /. a
    else 1. -. (bt *. beta_cf b a (1. -. x) /. b)
  end

let erf x =
  if x = 0. then 0.
  else begin
    let p = gamma_p ~a:0.5 (x *. x) in
    if x > 0. then p else -.p
  end

let normal_cdf x = 0.5 *. (1. +. erf (x /. Float.sqrt 2.))

let bisect ~f ~lo ~hi target =
  let lo = ref lo and hi = ref hi in
  for _ = 1 to 200 do
    let mid = 0.5 *. (!lo +. !hi) in
    if f mid < target then lo := mid else hi := mid
  done;
  0.5 *. (!lo +. !hi)

let normal_quantile p =
  if p <= 0. || p >= 1. then
    invalid_arg "Stattest.Special.normal_quantile: p must be in (0, 1)";
  bisect ~f:normal_cdf ~lo:(-40.) ~hi:40. p

let chi_square_cdf ~df x =
  if df <= 0. then invalid_arg "Stattest.Special.chi_square_cdf: df";
  if x <= 0. then 0. else gamma_p ~a:(df /. 2.) (x /. 2.)

let chi_square_quantile ~df p =
  if p <= 0. || p >= 1. then
    invalid_arg "Stattest.Special.chi_square_quantile: p must be in (0, 1)";
  (* Expand the bracket until it contains the quantile, then bisect. *)
  let hi = ref (Float.max 1. (2. *. df)) in
  while chi_square_cdf ~df !hi < p do
    hi := !hi *. 2.
  done;
  bisect ~f:(chi_square_cdf ~df) ~lo:0. ~hi:!hi p

let beta_quantile ~a ~b p =
  if p < 0. || p > 1. then
    invalid_arg "Stattest.Special.beta_quantile: p must be in [0, 1]";
  if p = 0. then 0.
  else if p = 1. then 1.
  else bisect ~f:(inc_beta ~a ~b) ~lo:0. ~hi:1. p

let ks_survival lambda =
  if lambda <= 0. then 1.
  else if lambda < 0.3 then begin
    (* The alternating series converges hopelessly slowly as lambda -> 0;
       use the Jacobi-theta dual expansion
       Q = 1 - (sqrt(2 pi)/lambda) * sum exp(-(2k-1)^2 pi^2 / (8 lambda^2)),
       whose first term already dominates below 0.3. *)
    let sum = ref 0. in
    for k = 1 to 20 do
      let odd = float_of_int ((2 * k) - 1) in
      sum :=
        !sum
        +. Float.exp
             (-.(odd *. odd) *. Float.pi *. Float.pi /. (8. *. lambda *. lambda))
    done;
    Float.min 1.
      (Float.max 0. (1. -. (Float.sqrt (2. *. Float.pi) /. lambda *. !sum)))
  end
  else begin
    let sum = ref 0. in
    let sign = ref 1. in
    (try
       for k = 1 to 100 do
         let fk = float_of_int k in
         let term = Float.exp (-2. *. fk *. fk *. lambda *. lambda) in
         sum := !sum +. (!sign *. term);
         sign := -. !sign;
         if term < 1e-18 then raise Exit
       done
     with Exit -> ());
    Float.min 1. (Float.max 0. (2. *. !sum))
  end
