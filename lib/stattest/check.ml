exception Failed of string

let fail fmt = Printf.ksprintf (fun s -> raise (Failed s)) fmt

let default_alpha = 0.001

let mean ?confidence ~expected msg xs =
  let lo, hi = Ci.mean_ci ?confidence xs in
  if expected < lo || expected > hi then
    fail "%s: expected mean %g outside CI [%g, %g] (n=%d)" msg expected lo hi
      (Array.length xs)

let variance ?confidence ~expected msg xs =
  let lo, hi = Ci.variance_ci ?confidence xs in
  if expected < lo || expected > hi then
    fail "%s: expected variance %g outside CI [%g, %g] (n=%d)" msg expected lo
      hi (Array.length xs)

let proportion ?confidence ~expected msg ~successes ~trials =
  let lo, hi = Ci.clopper_pearson ?confidence ~successes ~trials () in
  if expected < lo || expected > hi then
    fail "%s: expected proportion %g outside CI [%g, %g] (%d/%d)" msg expected
      lo hi successes trials

let proportion_within ?confidence ~lo ~hi msg ~successes ~trials =
  let ci_lo, ci_hi = Ci.clopper_pearson ?confidence ~successes ~trials () in
  if ci_lo < lo || ci_hi > hi then
    fail "%s: CI [%g, %g] not within claimed band [%g, %g] (%d/%d)" msg ci_lo
      ci_hi lo hi successes trials

let check_p ~alpha msg (r : Htest.result) =
  if r.Htest.p_value < alpha then
    fail "%s: p-value %.2g < alpha %g (statistic %.4g, df %g)" msg
      r.Htest.p_value alpha r.Htest.statistic r.Htest.df

let uniform ?(alpha = default_alpha) msg observed =
  check_p ~alpha msg (Htest.chi_square_uniform observed)

let gof ?(alpha = default_alpha) ~expected msg observed =
  check_p ~alpha msg (Htest.chi_square_gof ~expected observed)

let ks_cdf ?(alpha = default_alpha) ~cdf msg xs =
  check_p ~alpha msg (Htest.ks_one_sample ~cdf xs)

let ks_same ?(alpha = default_alpha) msg xs ys =
  check_p ~alpha msg (Htest.ks_two_sample xs ys)
