(** The four deliberately broken mechanisms used as negative controls.

    Every layer that claims to have power against non-private mechanisms —
    the statistical auditor ({!Dp_audit}), the certificate search
    ([Cert.Search]), the [pso_audit certify] / [dpcheck] CLIs, and the CI
    gates — must be exercised against the {e same} four defects. This
    module is the single declaration of those defects; the auditor builds
    its sampling cases from it and the certificate catalog builds its
    finite restrictions from it, so a control can't silently drift between
    layers. *)

type kind =
  | Laplace_half_scale
      (** Laplace counting query run at half the required noise scale:
          claims ε but delivers 2ε. *)
  | Geometric_triple_epsilon
      (** Geometric perturbation with [alpha = exp (-3 ε)]: three times
          the claimed privacy loss. *)
  | Exponential_missing_half
      (** Exponential mechanism weighting by [exp (ε u)] instead of
          [exp (ε u / 2)]: the textbook missing factor of two. *)
  | Randomized_response_double_epsilon
      (** Randomized response biased as if ε were doubled. *)

type spec = {
  name : string;  (** Stable CLI / registry identifier, e.g. ["broken-laplace"]. *)
  kind : kind;
  claimed_epsilon : float;  (** The ε the mechanism advertises. *)
  actual_epsilon : float;
      (** The ε it actually satisfies (always > [claimed_epsilon]). *)
  summary : string;  (** One-line description of the defect. *)
}

val all : spec list
(** The four controls, in the order the auditor registers them. *)

val find : string -> spec option
