module G = QCheck.Gen

let ( >>= ) = G.( >>= )
module V = Dataset.Value
module S = Dataset.Schema
module P = Query.Predicate

let attribute_name i = Printf.sprintf "a%d" i

let kind = G.oneofl [ V.Kint; V.Kstring; V.Kbool ]

let role =
  G.oneofl [ S.Quasi_identifier; S.Sensitive; S.Insensitive ]

let schema =
  (G.int_range 1 5) >>= (fun arity ->
      G.map
        (fun specs ->
          S.make
            (List.mapi
               (fun i (kind, role) -> { S.name = attribute_name i; kind; role })
               specs))
        (G.list_repeat arity (G.pair kind role)))

(* A support of [size] distinct values of the attribute's kind. Bools cap
   at two values. *)
let support kind size =
  match kind with
  | V.Kbool -> List.init (min 2 size) (fun i -> V.Bool (i = 0))
  | V.Kint -> List.init size (fun i -> V.Int i)
  | V.Kstring -> List.init size (fun i -> V.String (Printf.sprintf "v%d" i))
  | V.Kfloat -> List.init size (fun i -> V.Float (float_of_int i))
  | V.Kdate ->
    List.init size (fun i -> V.make_date ~year:(1970 + i) ~month:1 ~day:1)

let model_of_schema sch =
  let attrs = Array.to_list (S.attributes sch) in
  G.map
    (fun per_attr ->
      Dataset.Model.make sch
        (List.map2
           (fun (a : S.attribute) (size, weights) ->
             let values = support a.S.kind size in
             let weights = List.filteri (fun i _ -> i < List.length values) weights in
             ( a.S.name,
               Prob.Distribution.of_weights
                 (List.map2 (fun v w -> (v, w +. 0.05)) values weights) ))
           attrs per_attr))
    (G.list_repeat (List.length attrs)
       (G.pair (G.int_range 2 5) (G.list_repeat 5 (G.float_bound_inclusive 5.))))

let model = schema >>= model_of_schema

let table_of_model ?(min_rows = 0) m =
  G.map2
    (fun seed rows ->
      let rng = Prob.Rng.create ~seed () in
      Dataset.Model.sample_table rng m rows)
    (G.map Int64.of_int G.int)
    (G.int_range min_rows 60)

let model_table =
  model >>= (fun m -> G.map (fun t -> (m, t)) (table_of_model m))

let nonempty_model_table =
  model >>= (fun m -> G.map (fun t -> (m, t)) (table_of_model ~min_rows:1 m))

let atom m =
  let sch = Dataset.Model.schema m in
  let attrs = Array.to_list (S.attributes sch) in
  let value_of (a : S.attribute) =
    G.map
      (fun i ->
        let sup = Prob.Distribution.support (Dataset.Model.marginal m a.S.name) in
        sup.(i mod Array.length sup))
      (G.int_range 0 64)
  in
  let eq =
    (G.oneofl attrs) >>= (fun a ->
        G.map (fun v -> P.Eq (a.S.name, v)) (value_of a))
  in
  let member =
    (G.oneofl attrs) >>= (fun a ->
        G.map (fun vs -> P.Member (a.S.name, vs)) (G.list_size (G.int_range 0 3) (value_of a)))
  in
  let range =
    let numeric =
      List.filter (fun (a : S.attribute) -> a.S.kind = V.Kint || a.S.kind = V.Kbool) attrs
    in
    match numeric with
    | [] -> eq
    | _ ->
      (G.oneofl numeric) >>= (fun a ->
          G.map2
            (fun lo w -> P.Range (a.S.name, lo, lo +. w))
            (G.float_range (-1.) 5.)
            (G.float_bound_inclusive 4.))
  in
  let hash =
    G.map2
      (fun buckets bucket ->
        P.Hash_bucket { buckets; bucket = bucket mod buckets; salt = 7L })
      (G.int_range 1 16) (G.int_range 0 64)
  in
  let hash_bit = G.map (fun index -> P.Hash_bit { index; salt = 3L }) (G.int_range 0 63) in
  G.frequency [ (4, eq); (2, member); (2, range); (1, hash); (1, hash_bit) ]

let predicate m =
  let atom = G.map (fun a -> P.Atom a) (atom m) in
  G.sized_size (G.int_range 0 3) @@ G.fix (fun self depth ->
      if depth = 0 then G.frequency [ (8, atom); (1, G.return P.True); (1, G.return P.False) ]
      else
        G.frequency
          [
            (3, atom);
            (2, G.map2 (fun a b -> P.And (a, b)) (self (depth - 1)) (self (depth - 1)));
            (2, G.map2 (fun a b -> P.Or (a, b)) (self (depth - 1)) (self (depth - 1)));
            (1, G.map (fun a -> P.Not a) (self (depth - 1)));
          ])

let model_table_predicate =
  nonempty_model_table >>= (fun (m, t) ->
      G.map (fun p -> (m, t, p)) (predicate m))

let int_hierarchy =
  (G.int_range 1 3) >>= (fun steps ->
      G.map2
        (fun base v ->
          let widths =
            List.init steps (fun i -> base * (1 lsl i))
            (* strictly increasing positive widths *)
          in
          (Dataset.Hierarchy.int_ranges ~name:"h" ~lo:0 ~widths, v))
        (G.int_range 1 4) (G.int_range 0 100))

let kanon_table =
  G.pair (G.int_range 2 4) (G.int_range 8 60) >>= (fun (qis, rows) ->
      let attrs =
        List.init qis (fun i ->
            { S.name = Printf.sprintf "q%d" i; kind = V.Kint; role = S.Quasi_identifier })
        @ [ { S.name = "payload"; kind = V.Kint; role = S.Sensitive } ]
      in
      let sch = S.make attrs in
      G.map2
        (fun seed domain ->
          let rng = Prob.Rng.create ~seed () in
          let row _ =
            Array.init (qis + 1) (fun _ -> V.Int (Prob.Rng.int rng domain))
          in
          Dataset.Table.make sch (Array.init rows row))
        (G.map Int64.of_int G.int)
        (G.int_range 2 8))
