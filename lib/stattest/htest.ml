type result = { statistic : float; df : float; p_value : float }

let chi_square_gof ~expected observed =
  let k = Array.length observed in
  if k <> Array.length expected then
    invalid_arg "Stattest.Htest.chi_square_gof: length mismatch";
  if k < 2 then invalid_arg "Stattest.Htest.chi_square_gof: need >= 2 cells";
  let total_expected = Array.fold_left ( +. ) 0. expected in
  if total_expected <= 0. then
    invalid_arg "Stattest.Htest.chi_square_gof: expected counts must sum to > 0";
  let stat = ref 0. in
  let dead_cells = ref 0 in
  let impossible = ref false in
  Array.iteri
    (fun i e ->
      let o = float_of_int observed.(i) in
      if e < 1e-9 then begin
        (* A zero-probability cell contributes no degree of freedom; any
           observation there is an outright refutation. *)
        incr dead_cells;
        if observed.(i) > 0 then impossible := true
      end
      else stat := !stat +. (((o -. e) ** 2.) /. e))
    expected;
  let df = float_of_int (k - 1 - !dead_cells) in
  let p_value =
    if !impossible then 0.
    else if df < 1. then 1.
    else 1. -. Special.chi_square_cdf ~df !stat
  in
  { statistic = !stat; df; p_value }

let chi_square_uniform observed =
  let k = Array.length observed in
  if k < 2 then invalid_arg "Stattest.Htest.chi_square_uniform: need >= 2 cells";
  let total = Array.fold_left ( + ) 0 observed in
  let e = float_of_int total /. float_of_int k in
  chi_square_gof ~expected:(Array.make k e) observed

let ks_lambda ~neff d = ((Float.sqrt neff +. 0.12) +. (0.11 /. Float.sqrt neff)) *. d

let ks_one_sample ~cdf xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stattest.Htest.ks_one_sample: empty sample";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let fn = float_of_int n in
  let d = ref 0. in
  Array.iteri
    (fun i x ->
      let f = cdf x in
      let above = (float_of_int (i + 1) /. fn) -. f in
      let below = f -. (float_of_int i /. fn) in
      d := Float.max !d (Float.max above below))
    sorted;
  { statistic = !d; df = 0.; p_value = Special.ks_survival (ks_lambda ~neff:fn !d) }

let ks_two_sample xs ys =
  let n1 = Array.length xs and n2 = Array.length ys in
  if n1 = 0 || n2 = 0 then invalid_arg "Stattest.Htest.ks_two_sample: empty sample";
  let a = Array.copy xs and b = Array.copy ys in
  Array.sort Float.compare a;
  Array.sort Float.compare b;
  let fa = 1. /. float_of_int n1 and fb = 1. /. float_of_int n2 in
  let d = ref 0. in
  let i = ref 0 and j = ref 0 in
  let ca = ref 0. and cb = ref 0. in
  while !i < n1 && !j < n2 do
    let va = a.(!i) and vb = b.(!j) in
    if va <= vb then begin
      ca := !ca +. fa;
      incr i
    end;
    if vb <= va then begin
      cb := !cb +. fb;
      incr j
    end;
    d := Float.max !d (Float.abs (!ca -. !cb))
  done;
  let neff = float_of_int n1 *. float_of_int n2 /. float_of_int (n1 + n2) in
  { statistic = !d; df = 0.; p_value = Special.ks_survival (ks_lambda ~neff !d) }
