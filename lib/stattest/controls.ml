type kind =
  | Laplace_half_scale
  | Geometric_triple_epsilon
  | Exponential_missing_half
  | Randomized_response_double_epsilon

type spec = {
  name : string;
  kind : kind;
  claimed_epsilon : float;
  actual_epsilon : float;
  summary : string;
}

let all =
  [
    {
      name = "broken-laplace";
      kind = Laplace_half_scale;
      claimed_epsilon = 1.0;
      actual_epsilon = 2.0;
      summary = "Laplace count at half the required noise scale (2x privacy loss)";
    };
    {
      name = "broken-geometric";
      kind = Geometric_triple_epsilon;
      claimed_epsilon = 1.0;
      actual_epsilon = 3.0;
      summary = "geometric perturbation with alpha = exp(-3 eps) (3x privacy loss)";
    };
    {
      name = "broken-exponential";
      kind = Exponential_missing_half;
      claimed_epsilon = 1.0;
      actual_epsilon = 2.0;
      summary = "exponential mechanism missing the factor 2 in exp(eps u / 2)";
    };
    {
      name = "broken-randomized-response";
      kind = Randomized_response_double_epsilon;
      claimed_epsilon = 1.0;
      actual_epsilon = 2.0;
      summary = "randomized response biased as if eps were doubled";
    };
  ]

let find name = List.find_opt (fun s -> s.name = name) all
