(** QCheck generators for the dataset layer: random schemas, product
    models, sampled tables, generalization hierarchies and predicate ASTs.
    These drive the property-based tests of the [dataset] / [query] /
    [kanon] / [pso] invariants; all table randomness flows through a
    {!Prob.Rng.t} seeded from the generator, so shrunk counterexamples
    replay deterministically. *)

val attribute_name : int -> string
(** ["a0"], ["a1"], ... — the attribute naming scheme every generator
    uses. *)

val schema : Dataset.Schema.t QCheck.Gen.t
(** 1–5 attributes of int/string/bool kinds with mixed privacy roles. *)

val model : Dataset.Model.t QCheck.Gen.t
(** A product model over a random {!schema}: per-attribute supports of
    2–5 values with random positive weights. *)

val model_table : (Dataset.Model.t * Dataset.Table.t) QCheck.Gen.t
(** A model and a table of 0–60 rows sampled i.i.d. from it. *)

val nonempty_model_table : (Dataset.Model.t * Dataset.Table.t) QCheck.Gen.t
(** Same with at least one row. *)

val predicate : Dataset.Model.t -> Query.Predicate.t QCheck.Gen.t
(** A predicate AST of depth <= 3 over the model's attributes: Eq/Member
    atoms on support values, Range atoms on numeric attributes,
    hash-bucket and hash-bit atoms, combined with And/Or/Not. *)

val model_table_predicate :
  (Dataset.Model.t * Dataset.Table.t * Query.Predicate.t) QCheck.Gen.t

val int_hierarchy : (Dataset.Hierarchy.t * int) QCheck.Gen.t
(** An [int_ranges] ladder together with a value from its base domain. *)

val kanon_table : Dataset.Table.t QCheck.Gen.t
(** A table shaped for the k-anonymizers: 2–4 integer quasi-identifier
    columns plus one sensitive column, 8–60 rows — the input family the
    Mondrian invariant properties quantify over. *)
