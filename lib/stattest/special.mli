(** Special functions underlying the interval estimates and hypothesis
    tests: log-gamma, the regularized incomplete gamma and beta functions,
    and the distribution functions derived from them. Accuracy targets are
    testing-grade (relative error well under 1e-10 over the parameter
    ranges the harness uses), not libm-grade. *)

val log_gamma : float -> float
(** Lanczos approximation of [ln Γ(x)] for [x > 0] (reflection below 0.5).
    Raises [Invalid_argument] for non-positive integers and [x <= 0] poles
    reached through reflection are not protected — callers pass positive
    arguments. *)

val gamma_p : a:float -> float -> float
(** Regularized lower incomplete gamma [P(a, x) = γ(a,x)/Γ(a)] for [a > 0],
    [x >= 0]; series expansion below [a + 1], Lentz continued fraction
    above. *)

val inc_beta : a:float -> b:float -> float -> float
(** Regularized incomplete beta [I_x(a, b)] for [a, b > 0] and
    [x ∈ [0, 1]]. *)

val erf : float -> float
(** Error function via [P(1/2, x²)]. *)

val normal_cdf : float -> float
(** Standard normal CDF [Φ]. *)

val normal_quantile : float -> float
(** [Φ⁻¹] on (0, 1), by bisection on {!normal_cdf}. Raises
    [Invalid_argument] outside (0, 1). *)

val chi_square_cdf : df:float -> float -> float
(** CDF of the chi-square distribution with [df > 0] degrees of freedom. *)

val chi_square_quantile : df:float -> float -> float
(** Inverse chi-square CDF on (0, 1), by expanding bisection. *)

val beta_quantile : a:float -> b:float -> float -> float
(** Inverse of [I_x(a, b)] on [0, 1], by bisection. *)

val ks_survival : float -> float
(** The Kolmogorov distribution's survival function
    [Q(λ) = 2 Σ_{k≥1} (−1)^{k−1} exp(−2k²λ²)], clamped to [0, 1]. *)
