let select rng ~epsilon ~sensitivity ~utility candidates =
  if epsilon <= 0. then invalid_arg "Dp.Exponential: epsilon";
  if sensitivity <= 0. then invalid_arg "Dp.Exponential: sensitivity";
  if Array.length candidates = 0 then invalid_arg "Dp.Exponential: no candidates";
  let scores = Array.map utility candidates in
  (* Subtract the max before exponentiating for numerical stability. *)
  let best = Array.fold_left Float.max neg_infinity scores in
  let weights =
    Array.map
      (fun u -> Float.exp (epsilon *. (u -. best) /. (2. *. sensitivity)))
      scores
  in
  let total = Array.fold_left ( +. ) 0. weights in
  let target = Telemetry.coin (Prob.Rng.uniform rng) *. total in
  let acc = ref 0. in
  let chosen = ref (Array.length candidates - 1) in
  (try
     Array.iteri
       (fun i w ->
         acc := !acc +. w;
         if !acc >= target then begin
           chosen := i;
           raise Exit
         end)
       weights
   with Exit -> ());
  candidates.(!chosen)

let median rng ~epsilon ~lo ~hi ~bins values =
  if bins <= 0 then invalid_arg "Dp.Exponential.median: bins";
  if hi <= lo then invalid_arg "Dp.Exponential.median: empty range";
  let sorted = Array.copy values in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let rank_below c =
    (* Number of values < c. *)
    let count = ref 0 in
    (try
       Array.iter
         (fun v -> if v < c then incr count else raise Exit)
         sorted
     with Exit -> ());
    !count
  in
  let candidates =
    Array.init bins (fun i ->
        lo +. ((hi -. lo) *. (float_of_int i +. 0.5) /. float_of_int bins))
  in
  let utility c =
    (* Distance of c's rank from the median rank, negated. *)
    -.Float.abs (float_of_int (rank_below c) -. (float_of_int n /. 2.))
  in
  select rng ~epsilon ~sensitivity:1. ~utility candidates
