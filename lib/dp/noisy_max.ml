let select_values rng ~epsilon values =
  if epsilon <= 0. then invalid_arg "Dp.Noisy_max: epsilon";
  if Array.length values = 0 then invalid_arg "Dp.Noisy_max: no candidates";
  let best = ref 0 and best_v = ref neg_infinity in
  Array.iteri
    (fun i v ->
      let noisy =
        v
        +. Telemetry.noise ~mechanism:"laplace" ~scale:(2. /. epsilon)
             (Prob.Sampler.laplace rng ~scale:(2. /. epsilon))
      in
      if noisy > !best_v then begin
        best := i;
        best_v := noisy
      end)
    values;
  !best

let select rng ~epsilon table candidates =
  let schema = Dataset.Table.schema table in
  select_values rng ~epsilon
    (Array.map
       (fun q -> float_of_int (Query.Predicate.count schema q table))
       candidates)
