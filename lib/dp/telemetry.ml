(* Shared telemetry handles for the DP mechanisms.

   Every mechanism routes its randomness through [noise] / [noise_int] /
   [coin], so "dp.noise_draws" counts privacy-relevant random draws and
   "dp.noise_magnitude" log-buckets their absolute size. Both are
   deterministic across --jobs: the per-trial RNG fan-out makes each
   trial draw the same noise no matter which domain runs it. Counter and
   histogram handles are idempotent by name, so the Laplace-counts
   mechanism in lib/query shares the same accounting.

   Call sites that know which mechanism they are and at what scale pass
   [?mechanism]/[?scale], which additionally journals the draw as an
   audit-ledger "noise" event (ambient analyst); unlabeled draws are
   counted but not journaled. *)

let draws = Obs.Counter.make "dp.noise_draws"

let magnitude = Obs.Histogram.make "dp.noise_magnitude"

let spends = Obs.Counter.make "dp.accountant_spends"

(* Total ε recorded by accountants (and the noisy curator), exported in
   obs-metrics/v1; a gauge so the cross-domain merge stays exact. *)
let epsilon_spent = Obs.Gauge.make "dp.epsilon_spent"

let ledger_noise ?mechanism ?scale n =
  match (mechanism, scale) with
  | Some m, Some s when n > 0 ->
    Obs.Ledger.noise ~analyst:Obs.Ledger.ambient_analyst ~mechanism:m ~scale:s
      ~n
  | _ -> ()

let noise ?mechanism ?scale x =
  Obs.Counter.incr draws;
  Obs.Histogram.observe magnitude (Float.abs x);
  ledger_noise ?mechanism ?scale 1;
  x

let noise_int ?mechanism ?scale k =
  Obs.Counter.incr draws;
  Obs.Histogram.observe magnitude (Float.abs (float_of_int k));
  ledger_noise ?mechanism ?scale 1;
  k

(* Draws whose magnitude is meaningless (a Bernoulli flip, an exponential-
   mechanism selection): counted, not bucketed. *)
let coin v =
  Obs.Counter.incr draws;
  v

(* Draws sampled through the bulk (vectorized) path — Bulk and the batched
   mechanisms. A subset of "dp.noise_draws", split out so the trajectory
   of batch adoption is visible in the obs report. *)
let bulk = Obs.Counter.make "dp.bulk_samples"

(* Telemetry for a whole noise vector at once: per-sample magnitudes (the
   histogram is what the DP auditors read), one counter add per batch.
   The enabled check hoists out of the magnitude pass — per-sample [noise]
   pays a no-op call per draw, but a bulk vector shouldn't pay a second
   full pass just to record nothing. *)
let noise_many ?mechanism ?scale xs =
  if Obs.enabled () then begin
    Array.iter (fun x -> Obs.Histogram.observe magnitude (Float.abs x)) xs;
    Obs.Counter.add draws (Array.length xs);
    Obs.Counter.add bulk (Array.length xs)
  end;
  ledger_noise ?mechanism ?scale (Array.length xs);
  xs

let noise_many_int ?mechanism ?scale ks =
  if Obs.enabled () then begin
    Array.iter
      (fun k -> Obs.Histogram.observe magnitude (Float.abs (float_of_int k)))
      ks;
    Obs.Counter.add draws (Array.length ks);
    Obs.Counter.add bulk (Array.length ks)
  end;
  ledger_noise ?mechanism ?scale (Array.length ks);
  ks

let spend () = Obs.Counter.incr spends
