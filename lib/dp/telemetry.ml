(* Shared telemetry handles for the DP mechanisms.

   Every mechanism routes its randomness through [noise] / [noise_int] /
   [coin], so "dp.noise_draws" counts privacy-relevant random draws and
   "dp.noise_magnitude" log-buckets their absolute size. Both are
   deterministic across --jobs: the per-trial RNG fan-out makes each
   trial draw the same noise no matter which domain runs it. Counter and
   histogram handles are idempotent by name, so the Laplace-counts
   mechanism in lib/query shares the same accounting. *)

let draws = Obs.Counter.make "dp.noise_draws"

let magnitude = Obs.Histogram.make "dp.noise_magnitude"

let spends = Obs.Counter.make "dp.accountant_spends"

let noise x =
  Obs.Counter.incr draws;
  Obs.Histogram.observe magnitude (Float.abs x);
  x

let noise_int k =
  Obs.Counter.incr draws;
  Obs.Histogram.observe magnitude (Float.abs (float_of_int k));
  k

(* Draws whose magnitude is meaningless (a Bernoulli flip, an exponential-
   mechanism selection): counted, not bucketed. *)
let coin v =
  Obs.Counter.incr draws;
  v

let spend () = Obs.Counter.incr spends
