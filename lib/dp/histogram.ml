type cell = { label : string; pred : Query.Predicate.t }

let partition_by_attribute model attr =
  let dist = Dataset.Model.marginal model attr in
  Array.map
    (fun v ->
      {
        label = Printf.sprintf "%s=%s" attr (Dataset.Value.to_string v);
        pred = Query.Predicate.Atom (Query.Predicate.Eq (attr, v));
      })
    (Prob.Distribution.support dist)

let exact table cells =
  let schema = Dataset.Table.schema table in
  Array.map
    (fun c -> (c.label, Query.Predicate.count schema c.pred table))
    cells

let noisy rng ~epsilon table cells =
  if epsilon <= 0. then invalid_arg "Dp.Histogram.noisy: epsilon";
  Array.map
    (fun (label, count) ->
      ( label,
        float_of_int count
        +. Telemetry.noise ~mechanism:"laplace" ~scale:(1. /. epsilon)
             (Prob.Sampler.laplace rng ~scale:(1. /. epsilon)) ))
    (exact table cells)

let mechanism ~epsilon cells =
  {
    Query.Mechanism.name = Printf.sprintf "dp-histogram[%d cells, eps=%g]" (Array.length cells) epsilon;
    run =
      (fun rng table ->
        Query.Mechanism.Vector (Array.map snd (noisy rng ~epsilon table cells)));
  }
