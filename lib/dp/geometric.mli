(** The geometric mechanism: the discrete analogue of the Laplace mechanism
    for integer-valued counts. Adding two-sided geometric noise with
    [alpha = exp(-epsilon)] gives ε-DP for sensitivity-1 counts and keeps
    answers integral. *)

val count : Prob.Rng.t -> epsilon:float -> Dataset.Table.t -> Query.Predicate.t -> int
(** Raises [Invalid_argument] if [epsilon <= 0]. *)

val perturb : Prob.Rng.t -> epsilon:float -> int -> int
(** Add two-sided geometric noise calibrated to sensitivity 1. *)

val counts :
  Prob.Rng.t -> epsilon:float -> Dataset.Table.t -> Query.Predicate.t array -> int
  array
(** ε-DP integer answers to a count-query vector (budget split evenly),
    evaluated as one batch with a bulk noise draw — byte-identical to
    calling {!count} per query at [epsilon / #queries]. *)
