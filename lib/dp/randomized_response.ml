let check epsilon =
  if epsilon <= 0. then invalid_arg "Dp.Randomized_response: epsilon"

let flip_probability ~epsilon =
  check epsilon;
  1. /. (Float.exp epsilon +. 1.)

let respond rng ~epsilon bit =
  let flip = flip_probability ~epsilon in
  if Telemetry.coin (Prob.Sampler.bernoulli rng ~p:flip) then not bit else bit

let survey rng ~epsilon bits = Array.map (respond rng ~epsilon) bits

let estimate ~epsilon responses =
  let flip = flip_probability ~epsilon in
  let truth_prob = 1. -. flip in
  let yes =
    float_of_int
      (Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 responses)
  in
  let n = float_of_int (Array.length responses) in
  (* E[yes] = true * p + (n - true) * (1 - p); invert. *)
  (yes -. (n *. flip)) /. (truth_prob -. flip)
