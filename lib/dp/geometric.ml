let perturb rng ~epsilon value =
  if epsilon <= 0. then invalid_arg "Dp.Geometric: epsilon must be positive";
  value
  + Telemetry.noise_int ~mechanism:"geometric" ~scale:(1. /. epsilon)
      (Prob.Sampler.two_sided_geometric rng ~alpha:(Float.exp (-.epsilon)))

let count rng ~epsilon table q =
  let exact = Query.Predicate.count (Dataset.Table.schema table) q table in
  perturb rng ~epsilon exact

(* Batched analogue of Laplace.counts: shared columnar evaluation, bulk
   two-sided-geometric noise, budget split evenly across the vector. *)
let counts rng ~epsilon table qs =
  if epsilon <= 0. then invalid_arg "Dp.Geometric: epsilon must be positive";
  let nq = Array.length qs in
  let per_query = epsilon /. float_of_int (max 1 nq) in
  let exact = Query.Engine.counts table qs in
  let noise = Bulk.geometric_many rng ~alpha:(Float.exp (-.per_query)) nq in
  Array.init nq (fun i -> exact.(i) + noise.(i))
