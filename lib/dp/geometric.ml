let perturb rng ~epsilon value =
  if epsilon <= 0. then invalid_arg "Dp.Geometric: epsilon must be positive";
  value
  + Telemetry.noise_int
      (Prob.Sampler.two_sided_geometric rng ~alpha:(Float.exp (-.epsilon)))

let count rng ~epsilon table q =
  let exact = Query.Predicate.count (Dataset.Table.schema table) q table in
  perturb rng ~epsilon exact
