type t = {
  analyst : string;  (* audit-ledger session id *)
  mutable steps : (string * float * float) list;
  mutable spent_eps : float;  (* running Σ ε, the ledger's cumulative field *)
}

(* Each accountant journals under its own deterministic analyst id, so
   [Obs.Ledger.verify] can replay every accountant's arithmetic
   independently even when several are live in one run. *)
let create () =
  let analyst =
    if Obs.Ledger.enabled () then Obs.Ledger.fresh_analyst ()
    else Obs.Ledger.ambient_analyst
  in
  if Obs.Ledger.enabled () then
    Obs.Ledger.session ~analyst ~policy:"accountant" ();
  { analyst; steps = []; spent_eps = 0. }

let spend t ~epsilon ?(delta = 0.) label =
  if epsilon <= 0. then invalid_arg "Dp.Accountant.spend: epsilon";
  if delta < 0. || delta >= 1. then invalid_arg "Dp.Accountant.spend: delta";
  Telemetry.spend ();
  Obs.Gauge.add Telemetry.epsilon_spent epsilon;
  t.steps <- (label, epsilon, delta) :: t.steps;
  t.spent_eps <- t.spent_eps +. epsilon;
  Obs.Ledger.spend ~analyst:t.analyst ~label ~epsilon ~delta
    ~cumulative:t.spent_eps ()

(* One batched release spending [n] identical steps: the composition
   bounds still see [n] analyses (advanced composition's k counts every
   query), but the telemetry records a single spend event — the batch is
   one release. *)
let spend_many t ~epsilon ?(delta = 0.) ~n label =
  if n < 0 then invalid_arg "Dp.Accountant.spend_many: n";
  if epsilon <= 0. then invalid_arg "Dp.Accountant.spend_many: epsilon";
  if delta < 0. || delta >= 1. then invalid_arg "Dp.Accountant.spend_many: delta";
  if n > 0 then begin
    Telemetry.spend ();
    Obs.Gauge.add_scaled Telemetry.epsilon_spent epsilon n;
    for _ = 1 to n do
      t.steps <- (label, epsilon, delta) :: t.steps
    done;
    let total = epsilon *. float_of_int n in
    t.spent_eps <- t.spent_eps +. total;
    Obs.Ledger.spend_many ~analyst:t.analyst ~label ~epsilon ~n ~total
  end

let spent_epsilon t = t.spent_eps

let steps t = List.rev t.steps

let basic t =
  List.fold_left
    (fun (e, d) (_, ei, di) -> (e +. ei, d +. di))
    (0., 0.) t.steps

let advanced t ~delta_slack =
  if delta_slack <= 0. || delta_slack >= 1. then
    invalid_arg "Dp.Accountant.advanced: delta_slack";
  let k = List.length t.steps in
  if k = 0 then (0., 0.)
  else begin
    let eps_max =
      List.fold_left (fun acc (_, e, _) -> Float.max acc e) 0. t.steps
    in
    let delta_sum = List.fold_left (fun acc (_, _, d) -> acc +. d) 0. t.steps in
    let kf = float_of_int k in
    let eps' =
      (Float.sqrt (2. *. kf *. Float.log (1. /. delta_slack)) *. eps_max)
      +. (kf *. eps_max *. (Float.exp eps_max -. 1.))
    in
    (eps', delta_sum +. delta_slack)
  end

let best t ~delta_slack =
  let b = basic t in
  let a = advanced t ~delta_slack in
  if fst a < fst b then a else b
