(** Privacy-loss accounting.

    Tracks the (ε, δ) cost of a sequence of differentially private analyses
    over the same data. Two bounds are provided: basic (sequential)
    composition, where budgets add up, and the advanced composition theorem
    (Dwork–Rothblum–Vadhan 2010), which trades a small δ' for a
    ~sqrt(k) dependence on the number of analyses. The paper leans on
    closure under composition as a key advantage of differential privacy
    over k-anonymity (Section 1.1); this module makes the cost concrete. *)

type t

val create : unit -> t

val spend : t -> epsilon:float -> ?delta:float -> string -> unit
(** Record one analysis (default [delta = 0.]). Raises [Invalid_argument]
    on negative arguments or [epsilon = 0]. *)

val spend_many : t -> epsilon:float -> ?delta:float -> n:int -> string -> unit
(** Record a batched release of [n] analyses at [epsilon] (and [delta])
    each, under one label: the composition bounds count [n] steps, the
    telemetry one spend event. [n = 0] records nothing. Raises
    [Invalid_argument] on a negative [n] or invalid budgets. *)

val steps : t -> (string * float * float) list
(** [(label, epsilon, delta)] in the order spent. *)

val spent_epsilon : t -> float
(** Running [Σ ε] across all spends — the value journaled as the
    [cumulative] field of audit-ledger spend events, and accumulated in
    the ["dp.epsilon_spent"] gauge of obs-metrics/v1. *)

val basic : t -> float * float
(** Sequential composition: [(Σ εᵢ, Σ δᵢ)]. *)

val advanced : t -> delta_slack:float -> float * float
(** Advanced composition for [k] mechanisms at their maximum ε:
    [ε' = sqrt(2k ln(1/δ')) ε + k ε (e^ε − 1)], [δ' = k·δ_max + δ_slack].
    Raises [Invalid_argument] unless [0 < delta_slack < 1]. *)

val best : t -> delta_slack:float -> float * float
(** The smaller of {!basic} and {!advanced} in ε (with its δ). *)
