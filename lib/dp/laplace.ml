let check_epsilon epsilon =
  if epsilon <= 0. then invalid_arg "Dp.Laplace: epsilon must be positive"

let count rng ~epsilon table q =
  check_epsilon epsilon;
  let exact = Query.Predicate.count (Dataset.Table.schema table) q table in
  float_of_int exact
  +. Telemetry.noise (Prob.Sampler.laplace rng ~scale:(1. /. epsilon))

let clamp ~lo ~hi v = if v < lo then lo else if v > hi then hi else v

let sum rng ~epsilon ~lo ~hi values =
  check_epsilon epsilon;
  if hi < lo then invalid_arg "Dp.Laplace.sum: empty range";
  let sensitivity = Float.max (Float.abs lo) (Float.abs hi) in
  let exact = Array.fold_left (fun acc v -> acc +. clamp ~lo ~hi v) 0. values in
  exact
  +. Telemetry.noise
       (Prob.Sampler.laplace rng ~scale:(sensitivity /. Float.max epsilon 1e-12))

let mean rng ~epsilon ~lo ~hi values =
  check_epsilon epsilon;
  let half = epsilon /. 2. in
  let noisy_sum = sum rng ~epsilon:half ~lo ~hi values in
  let noisy_count =
    float_of_int (Array.length values)
    +. Telemetry.noise (Prob.Sampler.laplace rng ~scale:(1. /. half))
  in
  noisy_sum /. Float.max 1. noisy_count

let counts rng ~epsilon table qs =
  check_epsilon epsilon;
  let per_query = epsilon /. float_of_int (max 1 (Array.length qs)) in
  Array.map (fun q -> count rng ~epsilon:per_query table q) qs

let mechanism ~epsilon qs = Query.Mechanism.laplace_counts ~epsilon qs
