let check_epsilon epsilon =
  if epsilon <= 0. then invalid_arg "Dp.Laplace: epsilon must be positive"

let count rng ~epsilon table q =
  check_epsilon epsilon;
  let exact = Query.Predicate.count (Dataset.Table.schema table) q table in
  float_of_int exact
  +. Telemetry.noise ~mechanism:"laplace" ~scale:(1. /. epsilon)
       (Prob.Sampler.laplace rng ~scale:(1. /. epsilon))

let clamp ~lo ~hi v = if v < lo then lo else if v > hi then hi else v

let sum rng ~epsilon ~lo ~hi values =
  check_epsilon epsilon;
  if hi < lo then invalid_arg "Dp.Laplace.sum: empty range";
  let sensitivity = Float.max (Float.abs lo) (Float.abs hi) in
  let exact = Array.fold_left (fun acc v -> acc +. clamp ~lo ~hi v) 0. values in
  let scale = sensitivity /. Float.max epsilon 1e-12 in
  exact +. Telemetry.noise ~mechanism:"laplace" ~scale (Prob.Sampler.laplace rng ~scale)

let mean rng ~epsilon ~lo ~hi values =
  check_epsilon epsilon;
  let half = epsilon /. 2. in
  let noisy_sum = sum rng ~epsilon:half ~lo ~hi values in
  let noisy_count =
    float_of_int (Array.length values)
    +. Telemetry.noise ~mechanism:"laplace" ~scale:(1. /. half)
         (Prob.Sampler.laplace rng ~scale:(1. /. half))
  in
  noisy_sum /. Float.max 1. noisy_count

(* Batched: one shared columnar evaluation of the whole query vector
   (Query.Engine dispatches on the engine mode, so Checked still
   cross-validates), then one bulk noise pass. Predicate counts never
   touch the rng, so "counts first, then noise in ascending order" draws
   the exact sequence of the old per-query interleaving — answers are
   byte-identical to [Array.map (count ~epsilon:per_query table) qs]. *)
let counts ?accountant rng ~epsilon table qs =
  check_epsilon epsilon;
  let nq = Array.length qs in
  let per_query = epsilon /. float_of_int (max 1 nq) in
  let exact = Query.Engine.counts table qs in
  let noise = Bulk.laplace_many rng ~scale:(1. /. per_query) nq in
  Option.iter
    (fun a ->
      Accountant.spend_many a ~epsilon:per_query ~n:nq "laplace-counts")
    accountant;
  Array.init nq (fun i -> float_of_int exact.(i) +. noise.(i))

let mechanism ~epsilon qs = Query.Mechanism.laplace_counts ~epsilon qs
