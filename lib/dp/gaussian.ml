let sigma ~epsilon ~delta ~sensitivity =
  if epsilon <= 0. then invalid_arg "Dp.Gaussian: epsilon must be positive";
  if delta <= 0. || delta >= 1. then invalid_arg "Dp.Gaussian: delta in (0,1)";
  if sensitivity < 0. then invalid_arg "Dp.Gaussian: sensitivity";
  sensitivity *. Float.sqrt (2. *. Float.log (1.25 /. delta)) /. epsilon

let perturb rng ~epsilon ~delta ~sensitivity value =
  let std = sigma ~epsilon ~delta ~sensitivity in
  value
  +. Telemetry.noise ~mechanism:"gaussian" ~scale:std
       (Prob.Sampler.gaussian rng ~mean:0. ~std)

let count rng ~epsilon ~delta table q =
  let exact = Query.Predicate.count (Dataset.Table.schema table) q table in
  perturb rng ~epsilon ~delta ~sensitivity:1. (float_of_int exact)

(* Batched analogue of Laplace.counts: both budgets split evenly across
   the vector, counts in one shared pass, noise in one bulk draw. *)
let counts rng ~epsilon ~delta table qs =
  let nq = Array.length qs in
  let k = float_of_int (max 1 nq) in
  let std =
    sigma ~epsilon:(epsilon /. k) ~delta:(delta /. k) ~sensitivity:1.
  in
  let exact = Query.Engine.counts table qs in
  let noise = Bulk.gaussian_many rng ~mean:0. ~std nq in
  Array.init nq (fun i -> float_of_int exact.(i) +. noise.(i))
