(** The Laplace mechanism (Dwork–McSherry–Nissim–Smith 2006; the paper's
    Theorem 1.3).

    For a statistic of global sensitivity [Δ], adding Laplace noise of scale
    [Δ/ε] yields ε-differential privacy (Definition 1.2). *)

val count : Prob.Rng.t -> epsilon:float -> Dataset.Table.t -> Query.Predicate.t -> float
(** ε-DP count of records satisfying the predicate (sensitivity 1):
    [Σ q(xᵢ) + Lap(1/ε)]. Raises [Invalid_argument] if [epsilon <= 0]. *)

val sum : Prob.Rng.t -> epsilon:float -> lo:float -> hi:float -> float array -> float
(** ε-DP sum of values clamped into [\[lo, hi\]] (sensitivity
    [max |lo| |hi|]). *)

val mean : Prob.Rng.t -> epsilon:float -> lo:float -> hi:float -> float array -> float
(** ε-DP mean: budget split between a noisy sum and a noisy count. *)

val counts :
  ?accountant:Accountant.t ->
  Prob.Rng.t ->
  epsilon:float ->
  Dataset.Table.t ->
  Query.Predicate.t array ->
  float array
(** Answers a vector of count queries under total budget [epsilon]
    (sequential composition: each query gets [epsilon / #queries]).
    Evaluated as one batch — a shared columnar pass over the table and a
    bulk noise draw — with answers byte-identical to asking each query in
    turn. With [?accountant], the whole release is recorded as one
    batched spend of [#queries] steps. *)

val mechanism : epsilon:float -> Query.Predicate.t array -> Query.Mechanism.t
(** The same as a {!Query.Mechanism.t}, for use in the PSO game. *)
