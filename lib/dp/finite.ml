type side = A | B

type spec = {
  name : string;
  atoms : int;
  outputs : int;
  weights_a : int array;
  weights_b : int array;
  out_a : int array;
  out_b : int array;
  bound_num : int;
  bound_den : int;
  epsilon_label : string;
  atom_label : int -> string;
  out_label : int -> string;
}

(* All spans/bases below are single digits, so every weight product stays
   far under the native-integer range; the certificate checker re-does all
   arithmetic overflow-checked anyway. *)
let ipow base e =
  let rec go acc e = if e = 0 then acc else go (acc * base) (e - 1) in
  if e < 0 then invalid_arg "Dp.Finite.ipow" else go 1 e

(* Two-sided geometric on displacements [-span, span], indexed 0..2span:
   weight(k) = num^|k| den^(span-|k|), i.e. proportional to alpha^|k|. *)
let two_sided_weights ~alpha:(num, den) ~span =
  Array.init
    ((2 * span) + 1)
    (fun i ->
      let k = abs (i - span) in
      ipow num k * ipow den (span - k))

let counting_pair ~name ~alpha ~span ~bound:(bound_num, bound_den)
    ~epsilon_label =
  let m = (2 * span) + 1 in
  let w = two_sided_weights ~alpha ~span in
  {
    name;
    atoms = m;
    outputs = m;
    weights_a = w;
    weights_b = w;
    (* A's true count is one higher, so its noisy outputs shift by one,
       cyclically; the wrap is what makes the restriction exactly eps-DP. *)
    out_a = Array.init m (fun i -> (i + 1) mod m);
    out_b = Array.init m (fun i -> i);
    bound_num;
    bound_den;
    epsilon_label;
    atom_label = (fun i -> Printf.sprintf "noise %+d" (i - span));
    out_label = (fun o -> Printf.sprintf "count c%+d (mod %d)" (o - span) m);
  }

let randomized_response_pair ~name ~lambda ~bound:(bound_num, bound_den)
    ~epsilon_label =
  {
    name;
    atoms = 2;
    outputs = 2;
    weights_a = [| lambda; 1 |];
    weights_b = [| lambda; 1 |];
    (* Atom 0 = report truthfully, atom 1 = lie; A's true bit is 1, B's
       is 0. *)
    out_a = [| 1; 0 |];
    out_b = [| 0; 1 |];
    bound_num;
    bound_den;
    epsilon_label;
    atom_label = (fun i -> if i = 0 then "truth" else "lie");
    out_label = (fun o -> if o = 0 then "reply false" else "reply true");
  }

let exponential_pair ~name ~base ~utilities_a ~utilities_b
    ~bound:(bound_num, bound_den) ~epsilon_label =
  let n = Array.length utilities_a in
  if Array.length utilities_b <> n || n = 0 then
    invalid_arg "Dp.Finite.exponential_pair: utility vectors";
  {
    name;
    atoms = n;
    outputs = n;
    weights_a = Array.map (fun u -> ipow base u) utilities_a;
    weights_b = Array.map (fun u -> ipow base u) utilities_b;
    out_a = Array.init n (fun i -> i);
    out_b = Array.init n (fun i -> i);
    bound_num;
    bound_den;
    epsilon_label;
    atom_label = (fun i -> Printf.sprintf "candidate %d" i);
    out_label = (fun o -> Printf.sprintf "candidate %d" o);
  }

let laplace_pair () =
  counting_pair ~name:"laplace" ~alpha:(1, 2) ~span:6 ~bound:(2, 1)
    ~epsilon_label:"eps = ln 2"

let geometric_pair () =
  counting_pair ~name:"geometric" ~alpha:(1, 3) ~span:5 ~bound:(3, 1)
    ~epsilon_label:"eps = ln 3"

(* Mixed-radix atom coding for the product constructions below: an atom is
   a tuple of per-coordinate noises, encoded most-significant-first. *)
let decode ~radix ~coords i =
  let t = Array.make coords 0 in
  let rec go i c =
    if c >= 0 then begin
      t.(c) <- i mod radix;
      go (i / radix) (c - 1)
    end
  in
  go i (coords - 1);
  t

let histogram_pair () =
  let span = 2 in
  let mc = (2 * span) + 1 in
  let cells = 3 in
  let w = two_sided_weights ~alpha:(1, 2) ~span in
  let atoms = ipow mc cells in
  let weight i =
    Array.fold_left (fun acc d -> acc * w.(d)) 1 (decode ~radix:mc ~coords:cells i)
  in
  let encode t = Array.fold_left (fun acc d -> (acc * mc) + d) 0 t in
  let out shift i =
    (* The extra record is in cell 0: shift that coordinate's noisy count
       by one (cyclically), leave the others untouched. *)
    let t = decode ~radix:mc ~coords:cells i in
    t.(0) <- (t.(0) + shift) mod mc;
    encode t
  in
  let tuple_label kind i =
    let t = decode ~radix:mc ~coords:cells i in
    Printf.sprintf "%s(%+d,%+d,%+d)" kind (t.(0) - span) (t.(1) - span)
      (t.(2) - span)
  in
  {
    name = "histogram";
    atoms;
    outputs = atoms;
    weights_a = Array.init atoms weight;
    weights_b = Array.init atoms weight;
    out_a = Array.init atoms (out 1);
    out_b = Array.init atoms (out 0);
    bound_num = 2;
    bound_den = 1;
    epsilon_label = "eps = ln 2";
    atom_label = tuple_label "noise";
    out_label = tuple_label "cells";
  }

let noisy_max_pair () =
  (* Two candidates: the argmax depends only on the DIFFERENCE of the two
     per-score noises, so the restriction models that difference directly
     as a cyclic two-sided geometric delta. The utility gap v0 - v1 is +1
     on A and -1 on B (each score moves by one), so B's winning window is
     A's rotated by two — and rotating the noise by two is the alignment,
     costing at most (den/num)^2 = 4 in mass, the report-noisy-max
     bound. *)
  let span = 4 in
  let m = (2 * span) + 1 in
  let w = two_sided_weights ~alpha:(1, 2) ~span in
  (* Candidate 0 wins on A iff gap + delta > 0, i.e. delta >= 0. *)
  let out_a = Array.init m (fun i -> if i >= span then 0 else 1) in
  let out_b = Array.init m (fun i -> out_a.((i - 2 + m) mod m)) in
  {
    name = "noisy_max";
    atoms = m;
    outputs = 2;
    weights_a = w;
    weights_b = w;
    out_a;
    out_b;
    bound_num = 4;
    bound_den = 1;
    epsilon_label = "eps = 2 ln 2";
    atom_label = (fun i -> Printf.sprintf "delta %+d" (i - span));
    out_label = (fun o -> Printf.sprintf "argmax %d" o);
  }

let sv_queries_b = [| 0; 1; 0 |]

let sv_threshold = 2

let sparse_vector_pair () =
  (* AboveThreshold transcript with cyclic noise on the threshold and on
     each query. The neighbor's extra record satisfies every query
     predicate (q_a = q_b + 1 coordinatewise, each query still
     sensitivity-1), so shifting the threshold noise by one realigns every
     query position exactly and the whole transcript is preserved; the
     alignment touches only rho, costing at most den/num = 2. *)
  let span = 3 in
  let m = (2 * span) + 1 in
  let nq = Array.length sv_queries_b in
  let coords = nq + 1 (* threshold noise rho first, then one per query *) in
  let w = two_sided_weights ~alpha:(1, 2) ~span in
  let atoms = ipow m coords in
  let weight i =
    Array.fold_left (fun acc d -> acc * w.(d)) 1 (decode ~radix:m ~coords i)
  in
  let transcript ~extra i =
    let t = decode ~radix:m ~coords i in
    let rho = t.(0) - span in
    let hit = ref nq in
    (try
       for q = 0 to nq - 1 do
         let position =
           (* Cyclic window: the wrapped analog of
              query + noise >= threshold + rho. *)
           (sv_queries_b.(q) + extra + (t.(q + 1) - span) - rho - sv_threshold)
           mod m
         in
         let position = (position + m) mod m in
         if position <= span then begin
           hit := q;
           raise Exit
         end
       done
     with Exit -> ());
    !hit
  in
  {
    name = "sparse_vector";
    atoms;
    outputs = nq + 1;
    weights_a = Array.init atoms weight;
    weights_b = Array.init atoms weight;
    out_a = Array.init atoms (fun i -> transcript ~extra:1 i);
    out_b = Array.init atoms (fun i -> transcript ~extra:0 i);
    bound_num = 2;
    bound_den = 1;
    epsilon_label = "eps = ln 2";
    atom_label =
      (fun i ->
        let t = decode ~radix:m ~coords i in
        Printf.sprintf "noise(rho=%+d;%+d,%+d,%+d)" (t.(0) - span)
          (t.(1) - span) (t.(2) - span) (t.(3) - span));
    out_label =
      (fun o -> if o = nq then "no hit" else Printf.sprintf "first hit %d" o);
  }

let subsample_pair () =
  let span = 4 in
  let m = (2 * span) + 1 in
  let w = two_sided_weights ~alpha:(1, 2) ~span in
  (* Under A the extra record is kept with probability 1/2, shifting the
     displacement by one; marginalizing the keep-bit gives
     mass_a(d) ∝ w(d) + w(d-1) against mass_b(d) ∝ 2·w(d) (equal totals),
     and the worst ratio is exactly the amplified 1 + q(e^eps - 1) = 3/2. *)
  {
    name = "subsample";
    atoms = m;
    outputs = m;
    weights_a = Array.init m (fun i -> w.(i) + w.((i - 1 + m) mod m));
    weights_b = Array.init m (fun i -> 2 * w.(i));
    out_a = Array.init m (fun i -> i);
    out_b = Array.init m (fun i -> i);
    bound_num = 3;
    bound_den = 2;
    epsilon_label = "eps = ln(3/2)";
    atom_label = (fun i -> Printf.sprintf "shift %+d" (i - span));
    out_label = (fun o -> Printf.sprintf "count c%+d (mod %d)" (o - span) m);
  }

let randomized_response_spec () =
  randomized_response_pair ~name:"randomized_response" ~lambda:3 ~bound:(3, 1)
    ~epsilon_label:"eps = ln 3"

let exponential_spec () =
  exponential_pair ~name:"exponential" ~base:2 ~utilities_a:[| 0; 1; 2; 3 |]
    ~utilities_b:[| 1; 0; 1; 2 |] ~bound:(4, 1) ~epsilon_label:"eps = 2 ln 2"

let weights spec = function A -> spec.weights_a | B -> spec.weights_b

let total_weight spec side = Array.fold_left ( + ) 0 (weights spec side)

let sample rng spec side =
  let w = weights spec side in
  let total = Array.fold_left ( + ) 0 w in
  let draw = Prob.Rng.int rng total in
  let atom = ref (spec.atoms - 1) in
  let acc = ref 0 in
  (try
     Array.iteri
       (fun i wi ->
         acc := !acc + wi;
         if draw < !acc then begin
           atom := i;
           raise Exit
         end)
       w
   with Exit -> ());
  (match side with A -> spec.out_a | B -> spec.out_b).(!atom)
