(* Vectorized noise sampling.

   Each sampler fills its output in explicit ascending index order from
   one RNG stream, so a bulk draw is byte-identical to [n] sequential
   calls of the corresponding Prob.Sampler function on the same rng — at
   every --jobs, since the per-trial RNG fan-out hands each trial its own
   stream. (An explicit [for] loop, not [Array.init], whose evaluation
   order the stdlib leaves unspecified.) The win is not different math but
   one telemetry pass per batch instead of per draw, and a single
   allocation for the vector a batched mechanism needs anyway. *)

let check_n fn n = if n < 0 then invalid_arg ("Dp.Bulk." ^ fn ^ ": negative n")

let laplace_many rng ~scale n =
  check_n "laplace_many" n;
  let out = Array.make n 0. in
  for i = 0 to n - 1 do
    out.(i) <- Prob.Sampler.laplace rng ~scale
  done;
  Telemetry.noise_many ~mechanism:"laplace" ~scale out

let gaussian_many rng ~mean ~std n =
  check_n "gaussian_many" n;
  let out = Array.make n 0. in
  for i = 0 to n - 1 do
    out.(i) <- Prob.Sampler.gaussian rng ~mean ~std
  done;
  Telemetry.noise_many ~mechanism:"gaussian" ~scale:std out

let geometric_many rng ~alpha n =
  check_n "geometric_many" n;
  let out = Array.make n 0 in
  for i = 0 to n - 1 do
    out.(i) <- Prob.Sampler.two_sided_geometric rng ~alpha
  done;
  Telemetry.noise_many_int ~mechanism:"geometric"
    ~scale:(1. /. Float.max 1e-300 (-.Float.log alpha))
    out
