(** The Gaussian mechanism: (ε, δ)-differential privacy via normal noise of
    standard deviation [σ = Δ · sqrt(2 ln(1.25/δ)) / ε]. *)

val sigma : epsilon:float -> delta:float -> sensitivity:float -> float
(** The calibrated standard deviation. Raises [Invalid_argument] unless
    [0 < epsilon], [0 < delta < 1] and [sensitivity >= 0]. *)

val count :
  Prob.Rng.t -> epsilon:float -> delta:float -> Dataset.Table.t -> Query.Predicate.t -> float
(** (ε, δ)-DP count (sensitivity 1). *)

val perturb :
  Prob.Rng.t -> epsilon:float -> delta:float -> sensitivity:float -> float -> float

val counts :
  Prob.Rng.t ->
  epsilon:float ->
  delta:float ->
  Dataset.Table.t ->
  Query.Predicate.t array ->
  float array
(** (ε, δ)-DP answers to a count-query vector, both budgets split evenly
    ([epsilon / #queries], [delta / #queries]), evaluated as one batch
    with a bulk noise draw — byte-identical to per-query {!count} calls
    at the split budgets. *)
