exception Budget_exhausted

type t = {
  rng : Prob.Rng.t;
  epsilon : float;
  noisy_threshold : float;
  max_hits : int;
  mutable hits : int;
  mutable asked : int;
}

let create rng ~epsilon ~threshold ~max_hits =
  if epsilon <= 0. then invalid_arg "Dp.Sparse_vector: epsilon";
  if max_hits <= 0 then invalid_arg "Dp.Sparse_vector: max_hits";
  {
    rng;
    epsilon;
    noisy_threshold =
      threshold
      +. Telemetry.noise ~mechanism:"laplace" ~scale:(2. /. epsilon)
           (Prob.Sampler.laplace rng ~scale:(2. /. epsilon));
    max_hits;
    hits = 0;
    asked = 0;
  }

let ask t value =
  if t.hits >= t.max_hits then raise Budget_exhausted;
  t.asked <- t.asked + 1;
  let scale = 4. *. float_of_int t.max_hits /. t.epsilon in
  let noise =
    Telemetry.noise ~mechanism:"laplace" ~scale
      (Prob.Sampler.laplace t.rng ~scale)
  in
  let above = value +. noise >= t.noisy_threshold in
  if above then t.hits <- t.hits + 1;
  above

let hits t = t.hits

let asked t = t.asked
