(** Finite restrictions of the production mechanisms, for machine-checked
    certification.

    A coupling (randomness-alignment) certificate of ε-DP can only be
    checked {e exhaustively} on a finite probability space, so each
    mechanism exports a finite restriction: a pair of distributions over a
    shared finite noise-atom space — one per neighboring database — with
    integer (unnormalized) weights, explicit atom→output maps, and the
    claimed privacy-loss bound [e^ε] as an exact rational. Continuous
    noise (Laplace) is discretized to its geometric counterpart and
    truncated cyclically or by folding the tail, at parameters chosen so
    the restriction is {e exactly} ε-DP at the stated bound; the
    certificate checker in [lib/cert] then verifies that claim with no
    floats and no sampling.

    Everything here is data plus an exact integer-weight sampler; the
    trusted checking logic lives in [Cert]. *)

type side = A | B
(** Which neighboring database the mechanism ran on. By convention [A] is
    the larger/changed database (e.g. one extra record). *)

type spec = {
  name : string;
  atoms : int;  (** size of the shared noise-atom space *)
  outputs : int;  (** size of the output-event space *)
  weights_a : int array;
      (** unnormalized atom masses under [A]; length [atoms], all ≥ 0,
          positive total *)
  weights_b : int array;  (** the same under [B] *)
  out_a : int array;  (** atom → output event when run on [A] *)
  out_b : int array;  (** atom → output event when run on [B] *)
  bound_num : int;
  bound_den : int;
      (** the claimed bound [e^ε = bound_num/bound_den ≥ 1], exact *)
  epsilon_label : string;  (** human rendering of ε, e.g. ["eps = ln 2"] *)
  atom_label : int -> string;
  out_label : int -> string;
}

(** {1 Generic builders}

    Parameterized so the deliberately broken negative controls can be
    expressed as the same construction with miscalibrated noise. *)

val counting_pair :
  name:string ->
  alpha:int * int ->
  span:int ->
  bound:int * int ->
  epsilon_label:string ->
  spec
(** Cyclic (wrapped) two-sided geometric perturbation of a count on
    [Z_m], [m = 2·span + 1]: displacement [k ∈ [-span, span]] has weight
    [num^|k| · den^(span-|k|)] for [alpha = num/den < 1], and database
    [A]'s true count is one higher so its outputs are shifted by one,
    cyclically. The wrap makes the restriction {e exactly} ε-DP with
    [e^ε = den/num] (the wrap pair has weight ratio 1) — so the
    certificate passes iff [bound ≥ den/num]. Models [Dp.Laplace.count]
    (discretized) and [Dp.Geometric.count]. *)

val randomized_response_pair :
  name:string -> lambda:int -> bound:int * int -> epsilon_label:string -> spec
(** Two atoms, report-truthfully (weight [lambda = e^ε]) and lie (weight
    1); the neighbors hold opposite true bits, so the output maps are
    swapped. Models {!Randomized_response.respond}. *)

val exponential_pair :
  name:string ->
  base:int ->
  utilities_a:int array ->
  utilities_b:int array ->
  bound:int * int ->
  epsilon_label:string ->
  spec
(** Candidate [c] drawn with weight [base^u(c)] where [base = e^{ε/2}];
    sensitivity-1 utilities, identity output maps. Models
    {!Exponential.select}; the missing-factor-2 control is the same
    construction with [base = e^ε]. *)

(** {1 Production restrictions}

    One per mechanism in the standard audit battery, at small spans so the
    checker's exhaustive enumeration is instant. *)

val laplace_pair : unit -> spec
(** {!counting_pair} at [alpha = 1/2], span 6 — the geometric
    discretization of Laplace counting at [ε = ln 2]. *)

val geometric_pair : unit -> spec
(** {!counting_pair} at [alpha = 1/3], span 5 ([ε = ln 3]). *)

val histogram_pair : unit -> spec
(** Three cells with independent cyclic geometric noise ([alpha = 1/2],
    span 2 each); the extra record lands in cell 0, so only that
    coordinate's outputs shift. Exactly ε-DP at [e^ε = 2] because each
    record touches one cell. Models {!Histogram.noisy}. *)

val randomized_response_spec : unit -> spec
(** {!randomized_response_pair} at [lambda = 3] ([ε = ln 3]). *)

val exponential_spec : unit -> spec
(** {!exponential_pair} at [base = 2] ([ε = 2 ln 2]) with the audit
    battery's sensitivity-1 utility vectors. *)

val noisy_max_pair : unit -> spec
(** Two-candidate noisy max via the {e difference} of the per-score
    noises: a cyclic two-sided geometric delta ([alpha = 1/2], span 4),
    with the utility gap +1 on [A] and -1 on [B] (each score moves by
    one). B's winning window is A's rotated by two, so rotating the noise
    by two is an exact alignment at the report-noisy-max bound
    [(den/num)^2 = 4] ([ε = 2 ln 2]). Models
    {!Noisy_max.select_values}. *)

val sparse_vector_pair : unit -> spec
(** AboveThreshold transcript over three sensitivity-1 queries with
    cyclic two-sided geometric noise ([alpha = 1/2], span 3) on the
    threshold and on each query; the neighbor's extra record satisfies
    every query predicate ([q_a = q_b + 1] coordinatewise), so shifting
    the threshold noise by one preserves the whole transcript exactly —
    an alignment at bound 2 ([ε = ln 2]). Output = index of the first
    above-threshold report or "none". Models {!Sparse_vector.ask}. *)

val subsample_pair : unit -> spec
(** Subsampling amplification at [q = 1/2] over the cyclic geometric
    counting mechanism ([alpha = 1/2], span 4, [e^ε = 2]): the differing
    record's keep-bit is marginalized into the displacement masses, giving
    the amplified bound [1 + q(e^ε - 1) = 3/2] exactly. Models
    {!Subsample.mechanism}. *)

(** {1 Sampling} *)

val total_weight : spec -> side -> int

val sample : Prob.Rng.t -> spec -> side -> int
(** Draw one output event exactly: a uniform integer below the side's
    total weight selects an atom by cumulative weight (no floating point),
    which the side's output map translates to an event. One call consumes
    one [Prob.Rng.int] draw. *)
