(** Vectorized noise sampling for batched releases.

    Every sampler draws from one RNG stream in ascending index order, so
    [laplace_many rng ~scale n] returns exactly
    [[| laplace rng ~scale; ...n times... |]] drawn sequentially — the
    noise vector of a batched mechanism is byte-identical to its
    per-query predecessor at every [--jobs]. Bulk draws are accounted
    under ["dp.noise_draws"]/["dp.noise_magnitude"] like sequential ones,
    plus the ["dp.bulk_samples"] counter recording batch adoption.

    All raise [Invalid_argument] on a negative [n]. *)

val laplace_many : Prob.Rng.t -> scale:float -> int -> float array
(** [n] i.i.d. Laplace(scale) draws. *)

val gaussian_many : Prob.Rng.t -> mean:float -> std:float -> int -> float array
(** [n] i.i.d. normal draws. *)

val geometric_many : Prob.Rng.t -> alpha:float -> int -> int array
(** [n] i.i.d. two-sided geometric draws ([P(k) ∝ alpha^|k|]). *)
