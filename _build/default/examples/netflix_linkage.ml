(* The Netflix story (Section 1): a released ratings dataset with no
   identifiers, an attacker who half-remembers a colleague's movie nights,
   and the Scoreboard-RH algorithm connecting the two.

   Run with: dune exec examples/netflix_linkage.exe *)

let () =
  let rng = Core.Prob.Rng.create ~seed:2006L () in
  let fmt = Format.std_formatter in

  let users = 2000 and movies = 400 in
  Format.fprintf fmt
    "Releasing an 'anonymized' ratings dataset: %d subscribers, %d movies...@."
    users movies;
  let ratings =
    Core.Dataset.Synth.ratings rng ~users ~movies ~ratings_per_user:12 ()
  in
  let by_user = Core.Dataset.Synth.ratings_by_user ratings ~users in
  let support = Core.Attacks.Sparse_linkage.movie_support ratings ~movies in
  Format.fprintf fmt "released ratings: %d@.@." (Array.length ratings);

  (* The attacker knows ~4 of a target's ratings, imprecisely. *)
  let target = 1234 in
  let aux = Core.Attacks.Sparse_linkage.make_aux rng by_user.(target) ~items:4 () in
  Format.fprintf fmt "auxiliary knowledge about one subscriber (noisy):@.";
  Array.iter
    (fun item ->
      Format.fprintf fmt "  movie #%d rated ~%d stars around day %d@."
        item.Core.Attacks.Sparse_linkage.movie
        item.Core.Attacks.Sparse_linkage.stars
        item.Core.Attacks.Sparse_linkage.day)
    aux;

  let verdict =
    Core.Attacks.Sparse_linkage.deanonymize ~support ~threshold:1.5 aux by_user
  in
  Format.fprintf fmt "@.scoreboard best match: subscriber #%d (eccentricity %.1f)@."
    verdict.Core.Attacks.Sparse_linkage.best
    verdict.Core.Attacks.Sparse_linkage.eccentricity;
  (match verdict.Core.Attacks.Sparse_linkage.matched with
  | Some m when m = target ->
    Format.fprintf fmt "-> RE-IDENTIFIED correctly (true target was #%d)@." target
  | Some m ->
    Format.fprintf fmt "-> matched #%d, but the true target was #%d@." m target
  | None -> Format.fprintf fmt "-> eccentricity test abstained@.");

  (* How it scales with auxiliary knowledge. *)
  Format.fprintf fmt
    "@.Success rate over 60 random targets, by auxiliary items:@.";
  List.iter
    (fun items ->
      let hits = ref 0 in
      for _ = 1 to 60 do
        let t = Core.Prob.Rng.int rng users in
        let aux = Core.Attacks.Sparse_linkage.make_aux rng by_user.(t) ~items () in
        let v =
          Core.Attacks.Sparse_linkage.deanonymize ~support ~threshold:1.5 aux by_user
        in
        if v.Core.Attacks.Sparse_linkage.matched = Some t then incr hits
      done;
      Format.fprintf fmt "  %d items -> %d/60 re-identified@." items !hits)
    [ 1; 2; 4; 8 ]
