(* The right to erasure (GDPR Article 17), checked via isolation — the
   discussion section's "right to be forgotten" sibling of the singling-out
   analysis, made executable.

   A data subject asks two query servers to erase their record. One server
   recomputes from the current records; the other serves answers from an
   ingest-time snapshot (a materialized view, a log, a never-retrained
   model). The verification is a singling-out probe: if the erased record's
   own full-tuple predicate still counts, the data was not erased.

   Run with: dune exec examples/erasure_story.exe *)

let () =
  let rng = Core.Prob.Rng.create ~seed:17L () in
  let fmt = Format.std_formatter in

  let model = Core.Dataset.Synth.kanon_pso_model ~qis:4 ~retained:6 ~domain:16 in
  let table = Core.Dataset.Model.sample_table rng model 40 in
  let subject = 13 in
  Format.fprintf fmt
    "A table of 40 records sits behind two count servers; record #%d requests \
     erasure.@.@."
    subject;

  List.iter
    (fun (label, implementation) ->
      let server = Core.Query.Erasure.create implementation table in
      Core.Query.Erasure.erase server subject;
      let respected = Core.Query.Erasure.verify_erasure server subject in
      let determination =
        Core.Legal.Determinations.erasure ~server:label ~respected
      in
      Format.fprintf fmt "--- %s ---@." label;
      Format.fprintf fmt "live records reported: %d@."
        (Core.Query.Erasure.live_records server);
      Format.fprintf fmt "isolation probe finds the erased record: %b@."
        (not respected);
      Format.fprintf fmt "%a@." Core.Legal.Theorem.pp determination)
    [
      ("recompute-on-query server", Core.Query.Erasure.Recompute);
      ("ingest-snapshot server", Core.Query.Erasure.Cached);
    ];

  Format.fprintf fmt
    "Moral: 'deleted from the roster' and 'no longer influences any answer' \
     are different properties, and the second one is what Article 17 is \
     about. The singling-out lens gives the test.@."
