(* The reconstruction story (Section 1 / Theorem 1.1), told through the
   interactive curator: the same analyst-facing server under each of the
   defenses the Fundamental Law leaves open.

   A hospital curates n patients' diabetic status behind a subpopulation-
   count API. An "analyst" (our attacker) asks random subset counts and
   runs least-squares reconstruction on whatever the curator answers.

   Run with: dune exec examples/reconstruction_story.exe *)

let n = 64

let queries = 8 * n

let attack rng curator =
  (* Ask random subsets; keep whatever is answered. *)
  let rows = ref [] and answers = ref [] in
  let refusals = ref 0 in
  for _ = 1 to queries do
    let subset =
      Array.of_list
        (List.filter (fun _ -> Core.Prob.Rng.bool rng) (List.init n Fun.id))
    in
    match Core.Query.Curator.ask_subset curator subset with
    | Core.Query.Curator.Answer v ->
      let row = Array.make n 0. in
      Array.iter (fun i -> row.(i) <- 1.) subset;
      rows := row :: !rows;
      answers := v :: !answers
    | Core.Query.Curator.Refusal _ -> incr refusals
  done;
  match !rows with
  | [] -> (None, !refusals)
  | _ ->
    let a = Core.Linalg.Matrix.of_rows (Array.of_list !rows) in
    let b = Array.of_list !answers in
    let z = Core.Linalg.Lsq.solve_box a b ~lo:0. ~hi:1. in
    (Some (Array.map (fun v -> if v >= 0.5 then 1 else 0) z), !refusals)

let () =
  let rng = Core.Prob.Rng.create ~seed:2003L () in
  let fmt = Format.std_formatter in

  (* The confidential bits, inside a one-column table. *)
  let schema =
    Core.Dataset.Schema.make
      [
        {
          Core.Dataset.Schema.name = "diabetic";
          kind = Core.Dataset.Value.Kint;
          role = Core.Dataset.Schema.Sensitive;
        };
      ]
  in
  let truth = Array.init n (fun _ -> if Core.Prob.Rng.bool rng then 1 else 0) in
  let table =
    Core.Dataset.Table.make schema
      (Array.map (fun b -> [| Core.Dataset.Value.Int b |]) truth)
  in

  Format.fprintf fmt
    "A curator holds %d patients' diabetic status and answers subset counts.@."
    n;
  Format.fprintf fmt
    "The analyst asks %d random subset queries and reconstructs.@.@." queries;

  let policies =
    [
      ("exact answers, no limit", Core.Query.Curator.Exact);
      ("exact answers, limit n/2", Core.Query.Curator.Limited (n / 2));
      ("exact-disclosure auditing", Core.Query.Curator.Audited);
      ( "eps=0.05/query, total eps=5",
        Core.Query.Curator.Noisy { per_query_epsilon = 0.05; total_epsilon = 5. } );
    ]
  in
  List.iter
    (fun (label, policy) ->
      let curator =
        Core.Query.Curator.create ~rng:(Core.Prob.Rng.split rng) ~policy
          ~target:"diabetic" table
      in
      let estimate, refusals = attack (Core.Prob.Rng.split rng) curator in
      (match estimate with
      | None -> Format.fprintf fmt "%-28s -> nothing answered@." label
      | Some est ->
        let agreement = Core.Attacks.Reconstruction.agreement est truth in
        Format.fprintf fmt
          "%-28s -> %3d answered, %3d refused, reconstruction %5.1f%%%s@."
          label
          (Core.Query.Curator.answered curator)
          refusals (100. *. agreement)
          (if agreement >= Core.Attacks.Reconstruction.blatant_non_privacy_threshold
           then "  <- BLATANTLY NON-PRIVATE"
           else ""));
      ())
    policies;

  Format.fprintf fmt
    "@.Reading: unlimited exact answers are blatantly non-private (Theorem \
     1.1); a query limit helps only by answering less; exact-disclosure \
     auditing refuses the provably-unsafe queries yet still leaks enough \
     linearly-independent answers to reconstruct approximately; calibrated \
     noise under a finite budget is the defense that actually works.@."
