(* Quickstart: the paper's story in ~80 lines.

   1. Generate a GIC-style medical table.
   2. k-anonymize it with Mondrian (the toy example of Section 1.1).
   3. Single out a patient with the Theorem 2.10 / Cohen attack.
   4. Derive the legal conclusion (Legal Theorem 2.1).

   Run with: dune exec examples/quickstart.exe *)

let () =
  let rng = Core.Prob.Rng.create ~seed:2021L () in
  let fmt = Format.std_formatter in

  (* 1. A small identified medical table (ZIP / birth date / sex are
     quasi-identifiers, disease is sensitive). *)
  let population = Core.Dataset.Synth.population rng ~n:12 ~zips:3 () in
  Format.fprintf fmt "The confidential data:@.%a@."
    (Core.Dataset.Table.pp ~max_rows:6)
    population;

  (* 2. 2-anonymize, generalizing every attribute at class level — the
     paper's toy example ("ZIP 1234*, Age 30-39, Disease PULM"). *)
  let release =
    Core.Kanon.Mondrian.anonymize
      ~hierarchies:[ ("disease", Core.Dataset.Synth.disease_hierarchy) ]
      ~recoding:Core.Kanon.Mondrian.Class_level ~k:2 population
  in
  Format.fprintf fmt "The 2-anonymized release:@.%a@."
    (Core.Dataset.Gtable.pp ~max_rows:6)
    release;
  Format.fprintf fmt "k-anonymous (k=2)? %b@.@."
    (Core.Kanon.Anonymizer.is_k_anonymous ~k:2 release);

  (* 3. The Theorem 2.10 attacker: equivalence-class predicate conjoined
     with a weight-1/k' refinement. *)
  let attacker = Core.Pso.Kanon_attack.greedy () in
  let output = Core.Query.Mechanism.Generalized release in
  let predicate = Core.Pso.Attacker.attack attacker rng output in
  Format.fprintf fmt "The attacker's predicate:@.  %s@.@."
    (Core.Query.Predicate.to_string predicate);
  let schema = Core.Dataset.Table.schema population in
  let matches = Core.Query.Predicate.count schema predicate population in
  Format.fprintf fmt "Records matched in the original data: %d%s@.@." matches
    (if matches = 1 then "  <- ISOLATION (Definition 2.1)" else "");

  (* 4. The legal layer: run the theorem battery and derive Legal Theorem
     2.1 for k-anonymity. *)
  Format.fprintf fmt "Deriving the legal theorem (this runs the PSO games)...@.";
  let params = { Core.Pso.Theorems.n = 100; trials = 100; weight_exponent = 2. } in
  let verdict = Core.Pso.Theorems.kanon_fails ~params rng in
  let legal =
    Core.Legal.Theorem.kanon_fails_gdpr
      ~variant:Core.Legal.Technology.K_anonymity verdict
  in
  Format.fprintf fmt "@.%a@." Core.Legal.Theorem.pp legal
