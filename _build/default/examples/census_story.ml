(* The Census story (Section 1): publish block-level tables, reconstruct
   the microdata, link to a commercial database, and compare the confirmed
   re-identification rate with the agency's prior risk estimate — the
   numbers behind "Title 13 prohibits exactly this".

   Run with: dune exec examples/census_story.exe *)

let () =
  let rng = Core.Prob.Rng.create ~seed:2010L () in
  let fmt = Format.std_formatter in

  Format.fprintf fmt "Simulating a census: 400 blocks, ~25 people each...@.";
  let truth =
    Core.Dataset.Synth.census_population rng ~blocks:400 ~mean_block_size:25
  in
  Format.fprintf fmt "population: %d people@.@." (Array.length truth);

  (* Publication: the marginal tables a statistical agency would release. *)
  let tables = Core.Attacks.Census.tabulate truth in
  let sample = tables.(0) in
  Format.fprintf fmt
    "published for block 0: total=%d, %d age cells, %d sex-by-decade cells, \
     %d race-ethnicity cells@."
    sample.Core.Attacks.Census.total
    (List.length sample.Core.Attacks.Census.age_histogram)
    (List.length sample.Core.Attacks.Census.sex_by_bucket)
    (List.length sample.Core.Attacks.Census.race_eth);

  (* Reconstruction. *)
  let recon = Core.Attacks.Census.reconstruct tables in
  let eval = Core.Attacks.Census.evaluate ~truth recon in
  Format.fprintf fmt
    "@.reconstruction: %d records; exact for %.1f%%, age within +/-1 for \
     %.1f%% of the population@."
    eval.Core.Attacks.Census.records
    (100. *. eval.Core.Attacks.Census.exact_rate)
    (100. *. eval.Core.Attacks.Census.age_within_one_rate);

  (* Re-identification against a commercial database. *)
  let commercial =
    Core.Attacks.Census.commercial_db rng truth ~coverage:0.6 ~age_error_rate:0.1
  in
  let reid = Core.Attacks.Census.reidentify recon commercial ~truth in
  Format.fprintf fmt
    "@.linkage against commercial data (%d records, 60%% coverage):@."
    (Array.length commercial);
  Format.fprintf fmt "  putative re-identifications: %d (%.1f%% of population)@."
    reid.Core.Attacks.Census.putative
    (100. *. reid.Core.Attacks.Census.putative_rate);
  Format.fprintf fmt "  confirmed re-identifications: %d (%.1f%% of population)@."
    reid.Core.Attacks.Census.confirmed
    (100. *. reid.Core.Attacks.Census.confirmed_rate);

  let prior = 0.00003 in
  Format.fprintf fmt
    "@.The 2010-era prior risk estimate was %.3f%%; measured risk exceeds it \
     by a factor of ~%.0f.@."
    (100. *. prior)
    (reid.Core.Attacks.Census.confirmed_rate /. prior);
  Format.fprintf fmt
    "(The paper: exact reconstruction for 46%%/71%% of the population, 17%% \
     re-identified, a 4500x gap — and Title 13 prohibits publications \
     whereby individual data can be identified.)@."
