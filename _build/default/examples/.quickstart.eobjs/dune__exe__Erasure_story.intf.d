examples/erasure_story.mli:
