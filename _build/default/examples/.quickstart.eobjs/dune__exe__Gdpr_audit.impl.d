examples/gdpr_audit.ml: Core Format List
