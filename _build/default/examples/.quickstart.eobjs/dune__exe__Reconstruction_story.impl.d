examples/reconstruction_story.ml: Array Core Format Fun List
