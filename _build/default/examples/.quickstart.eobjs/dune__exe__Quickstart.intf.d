examples/quickstart.mli:
