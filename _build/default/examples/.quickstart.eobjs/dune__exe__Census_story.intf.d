examples/census_story.mli:
