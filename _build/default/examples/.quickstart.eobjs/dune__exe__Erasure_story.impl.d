examples/erasure_story.ml: Core Format List
