examples/census_story.ml: Array Core Format List
