examples/quickstart.ml: Core Format
