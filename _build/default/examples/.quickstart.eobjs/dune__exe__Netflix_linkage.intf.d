examples/netflix_linkage.mli:
