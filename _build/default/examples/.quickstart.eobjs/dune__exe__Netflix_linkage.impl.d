examples/netflix_linkage.ml: Array Core Format List
