examples/reconstruction_story.mli:
