examples/gdpr_audit.mli:
