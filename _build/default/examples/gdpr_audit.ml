(* GDPR audit: run the standard PSO attacker battery against a menu of
   release mechanisms and print the full legal-technical report
   (Section 2.4) — what a data-protection officer would actually consume.

   Run with: dune exec examples/gdpr_audit.exe *)

let audit fmt rng ~model ~n ~trials name mechanism =
  Format.fprintf fmt "@.--- auditing: %s ---@." name;
  let findings = Core.Audit.mechanism rng ~model ~n ~trials mechanism in
  List.iter
    (fun f ->
      Format.fprintf fmt "  %-32s %a@." f.Core.Audit.attacker Core.Pso.Game.pp
        f.Core.Audit.outcome)
    findings;
  let worst = Core.Audit.worst_success findings in
  Format.fprintf fmt "  worst PSO success: %.1f%% -> %s@." (100. *. worst)
    (if worst > 0.1 then "singling out DEMONSTRATED: not GDPR-anonymous"
     else "no singling out demonstrated by this battery")

let () =
  let rng = Core.Prob.Rng.create ~seed:29L () in
  let fmt = Format.std_formatter in
  let n = 120 and trials = 60 in
  let model = Core.Dataset.Synth.kanon_pso_model ~qis:6 ~retained:42 ~domain:64 in

  let count_query =
    Core.Query.Predicate.Atom (Core.Query.Predicate.Range ("q0", 0., 32.))
  in
  let kanon recoding =
    {
      Core.Query.Mechanism.name = "mondrian[k=5]";
      run =
        (fun _rng table ->
          Core.Query.Mechanism.Generalized
            (Core.Kanon.Mondrian.anonymize ~recoding ~k:5 table));
    }
  in

  audit fmt rng ~model ~n ~trials "exact count release"
    (Core.Query.Mechanism.exact_count count_query);
  audit fmt rng ~model ~n ~trials "eps=1 DP count release"
    (Core.Dp.Laplace.mechanism ~epsilon:1. [| count_query |]);
  audit fmt rng ~model ~n ~trials "5-anonymous release (member-level)"
    (kanon Core.Kanon.Mondrian.Member_level);
  audit fmt rng ~model ~n ~trials "5-anonymous release (class-level)"
    (kanon Core.Kanon.Mondrian.Class_level);

  (* The full report: technical verdicts -> legal theorems -> WP29 table. *)
  Format.fprintf fmt
    "@.Now the full legal-technical report (theorem battery at reduced \
     parameters)...@.";
  let report =
    Core.Legal.Report.build ~context:"gdpr_audit example" rng
      { Core.Pso.Theorems.n = 100; trials = 100; weight_exponent = 2. }
  in
  Format.fprintf fmt "%a@." Core.Legal.Report.pp report
