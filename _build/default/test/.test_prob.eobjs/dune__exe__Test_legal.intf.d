test/test_legal.mli:
