test/test_kanon.mli:
