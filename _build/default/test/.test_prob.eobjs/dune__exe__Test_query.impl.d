test/test_query.ml: Alcotest Array Attacks Dataset Float Fun Gen Linalg List Printf Prob QCheck QCheck_alcotest Query Test
