test/test_attacks.ml: Alcotest Array Attacks Dataset Gen Int64 Kanon List Prob QCheck QCheck_alcotest Query Test
