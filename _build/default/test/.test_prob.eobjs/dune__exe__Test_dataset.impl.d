test/test_dataset.ml: Alcotest Array Dataset Fun Gen Kanon List Printf Prob QCheck QCheck_alcotest String Test
