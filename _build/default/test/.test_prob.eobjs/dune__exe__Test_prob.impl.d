test/test_prob.ml: Alcotest Array Float Fun Gen List Prob QCheck QCheck_alcotest Test
