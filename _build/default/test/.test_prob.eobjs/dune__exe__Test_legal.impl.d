test/test_legal.ml: Alcotest Array Attacks Dataset Format Legal List Printf Prob Pso Query String
