test/test_linalg.ml: Alcotest Array Float Gen Linalg List Prob QCheck QCheck_alcotest Test
