test/test_dp.ml: Alcotest Array Dataset Dp Float Gen Hashtbl List Printf Prob QCheck QCheck_alcotest Query Test
