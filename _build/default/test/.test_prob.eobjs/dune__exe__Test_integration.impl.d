test/test_integration.ml: Alcotest Attacks Buffer Core Dataset Experiments Format Kanon Legal List Printf Prob Pso Query String
