test/test_kanon.ml: Alcotest Array Dataset Float Int64 Kanon List Printf Prob QCheck QCheck_alcotest Query Test
