test/test_pso.ml: Alcotest Array Dataset Dp Float Int64 Kanon List Printf Prob Pso QCheck QCheck_alcotest Query Test
