test/test_experiments.ml: Alcotest Experiments Float Hashtbl Int Legal List Option Printf Prob Pso
