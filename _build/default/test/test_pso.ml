(* Tests for the core contribution: isolation analytics, the PSO game
   harness, the baseline / pad / composition / k-anonymity attackers, and
   the executable theorem battery.

   Monte-Carlo assertions use generous tolerances; the theorem battery
   itself is asserted via its own [holds] flags (that is the falsifiability
   contract). *)

let rng () = Prob.Rng.create ~seed:55L ()

let small_model = Dataset.Synth.pso_model ~attributes:3 ~values_per_attribute:16

let trivial_mechanism = Query.Mechanism.exact_count Query.Predicate.True

(* --- Isolation analytics --- *)

let test_isolation_probability_formula () =
  Alcotest.(check (float 1e-12)) "n=2, w=1/2" 0.5
    (Pso.Isolation.trivial_isolation_probability ~n:2 ~w:0.5);
  Alcotest.(check (float 1e-12)) "w=0" 0.
    (Pso.Isolation.trivial_isolation_probability ~n:10 ~w:0.);
  Alcotest.(check (float 1e-12)) "w=1" 0.
    (Pso.Isolation.trivial_isolation_probability ~n:10 ~w:1.)

let test_isolation_maximum_at_one_over_n () =
  let n = 365 in
  let at_opt = Pso.Isolation.max_trivial_probability ~n in
  Alcotest.(check bool) "close to 1/e" true
    (Float.abs (at_opt -. Pso.Isolation.one_over_e) < 0.01);
  (* The optimum dominates neighbouring weights. *)
  List.iter
    (fun w ->
      Alcotest.(check bool) "dominates" true
        (at_opt >= Pso.Isolation.trivial_isolation_probability ~n ~w))
    [ 0.5 /. 365.; 2. /. 365.; 0.01; 0.0001 ]

let test_negligible_bound () =
  Alcotest.(check (float 1e-12)) "n^-2" 1e-4 (Pso.Isolation.negligible_bound ~n:100 ~c:2.)

let test_heavy_band_vanishes () =
  (* Footnote 11: at w = c·log n / n with c > 1 the isolation probability is
     ~ c log n · n^-c — decreasing in n and already small. *)
  let p n = Pso.Isolation.heavy_band_probability ~n ~multiplier:2. in
  Alcotest.(check bool) "decreasing" true (p 100 > p 1000 && p 1000 > p 10000);
  Alcotest.(check bool) "small at 10^4" true (p 10000 < 1e-3)

let test_isolates_definition () =
  let table = Dataset.Model.sample_table (rng ()) small_model 20 in
  let schema = Dataset.Model.schema small_model in
  let first = Dataset.Table.row table 0 in
  (* The full-row predicate of row 0 isolates iff row 0 is unique. *)
  let p =
    Query.Predicate.conj
      (List.mapi
         (fun j v -> Query.Predicate.Atom (Query.Predicate.Eq ((Dataset.Schema.attribute schema j).Dataset.Schema.name, v)))
         (Array.to_list first))
  in
  let count = Query.Predicate.count schema p table in
  Alcotest.(check bool) "isolation iff count=1" true
    (Pso.Isolation.isolates small_model p table = (count = 1))

(* --- Game harness --- *)

let test_game_accounting () =
  let outcome =
    Pso.Game.run (rng ()) ~model:small_model ~n:50 ~mechanism:trivial_mechanism
      ~attacker:(Pso.Attacker.hash_bucket ~buckets:50)
      ~weight_bound:1. ~trials:100
  in
  Alcotest.(check int) "trials" 100 outcome.Pso.Game.trials;
  Alcotest.(check int) "successes + nothing exceed trials" outcome.Pso.Game.isolations
    (outcome.Pso.Game.successes + outcome.Pso.Game.heavy_isolations);
  Alcotest.(check bool) "rate consistent" true
    (Float.abs
       (outcome.Pso.Game.success_rate
       -. (float_of_int outcome.Pso.Game.successes /. 100.))
    < 1e-9)

let test_game_weight_bound_partitions () =
  (* Same attacker, weight bound 1 vs tiny: successes flip to heavy. *)
  let run bound =
    Pso.Game.run (rng ()) ~model:small_model ~n:50 ~mechanism:trivial_mechanism
      ~attacker:(Pso.Attacker.hash_bucket ~buckets:50)
      ~weight_bound:bound ~trials:200
  in
  let loose = run 1. in
  let tight = run 1e-9 in
  Alcotest.(check bool) "loose counts isolations" true
    (loose.Pso.Game.successes = loose.Pso.Game.isolations);
  Alcotest.(check int) "tight counts none" 0 tight.Pso.Game.successes;
  Alcotest.(check bool) "isolations unaffected by bound" true
    (abs (tight.Pso.Game.isolations - loose.Pso.Game.isolations) < 40)

let test_game_validates () =
  Alcotest.check_raises "n" (Invalid_argument "Game.run: n") (fun () ->
      ignore
        (Pso.Game.run (rng ()) ~model:small_model ~n:0
           ~mechanism:trivial_mechanism
           ~attacker:(Pso.Attacker.hash_bucket ~buckets:2)
           ~weight_bound:1. ~trials:1))

let test_baseline_37_percent () =
  let n = 100 in
  let outcome =
    Pso.Game.run (rng ()) ~model:small_model ~n ~mechanism:trivial_mechanism
      ~attacker:(Pso.Attacker.hash_bucket ~buckets:n)
      ~weight_bound:1. ~trials:800
  in
  let rate = float_of_int outcome.Pso.Game.isolations /. 800. in
  Alcotest.(check bool)
    (Printf.sprintf "isolation near 1/e (got %f)" rate)
    true
    (Float.abs (rate -. Pso.Isolation.one_over_e) < 0.07)

let test_fixed_value_attacker () =
  let model = Dataset.Synth.birthday_model ~days:365 in
  let outcome =
    Pso.Game.run (rng ()) ~model ~n:365 ~mechanism:trivial_mechanism
      ~attacker:(Pso.Attacker.fixed_value ~attr:"birthday" (Dataset.Value.Int 119))
      ~weight_bound:1. ~trials:600
  in
  let rate = float_of_int outcome.Pso.Game.isolations /. 600. in
  Alcotest.(check bool) "birthday attacker near 37%" true
    (Float.abs (rate -. Pso.Isolation.one_over_e) < 0.08)

(* --- Pad construction (Thm 2.7) --- *)

let test_pad_joint_attack_wins () =
  let pad = Pso.Pad.make ~salt:42L in
  let outcome =
    Pso.Game.run (rng ()) ~model:small_model ~n:60 ~mechanism:pad.Pso.Pad.composed
      ~attacker:pad.Pso.Pad.joint_attacker
      ~weight_bound:(Pso.Isolation.negligible_bound ~n:60 ~c:2.)
      ~trials:100
  in
  Alcotest.(check bool) "joint attack ~1" true (outcome.Pso.Game.success_rate > 0.9)

let test_pad_marginals_resist () =
  let pad = Pso.Pad.make ~salt:43L in
  List.iter
    (fun m ->
      let outcome =
        Pso.Game.run (rng ()) ~model:small_model ~n:60 ~mechanism:m
          ~attacker:pad.Pso.Pad.marginal_attacker ~weight_bound:1. ~trials:100
      in
      Alcotest.(check int) "no isolations at all" 0 outcome.Pso.Game.isolations)
    [ pad.Pso.Pad.m1; pad.Pso.Pad.m2 ]

let test_pad_digest_predicate_weight () =
  let p = Pso.Pad.digest_predicate ~salt:7L 12345L in
  match Query.Predicate.weight small_model p with
  | Query.Predicate.Salted w ->
    Alcotest.(check (float 1e-25)) "2^-64" (Float.pow 0.5 64.) w
  | _ -> Alcotest.fail "expected salted weight"

let test_pad_digest_predicate_matches_digest_owner () =
  let salt = 99L in
  let pad = Pso.Pad.make ~salt in
  let table = Dataset.Model.sample_table (rng ()) small_model 30 in
  let r = rng () in
  match
    ( Query.Mechanism.run pad.Pso.Pad.m1 r table,
      Query.Mechanism.run pad.Pso.Pad.m2 r table )
  with
  | Query.Mechanism.Words a, Query.Mechanism.Words b ->
    let digest = Int64.logxor a.(0) b.(0) in
    let p = Pso.Pad.digest_predicate ~salt digest in
    Alcotest.(check bool) "row 0 matches its own digest predicate" true
      (Query.Predicate.eval (Dataset.Model.schema small_model) p
         (Dataset.Table.row table 0))
  | _ -> Alcotest.fail "expected word outputs"

(* --- Composition attack (Thms 2.8/2.9) --- *)

let test_composition_scouted_beats_single () =
  let r = rng () in
  let n = 100 in
  let play variant =
    let scheme =
      match variant with
      | `Single -> Pso.Composition.single_bucket ~salt:(Prob.Rng.bits64 r) ~buckets:n ~ell:40
      | `Scouted ->
        Pso.Composition.scouted ~salt:(Prob.Rng.bits64 r) ~buckets:n ~ell:40 ~scouts:6
    in
    (Pso.Game.run r ~model:small_model ~n ~mechanism:scheme.Pso.Composition.mechanism
       ~attacker:scheme.Pso.Composition.attacker
       ~weight_bound:(Pso.Isolation.negligible_bound ~n ~c:2.)
       ~trials:150)
      .Pso.Game.success_rate
  in
  let single = play `Single and scouted = play `Scouted in
  Alcotest.(check bool)
    (Printf.sprintf "single ~0.37 (got %f)" single)
    true
    (single > 0.2 && single < 0.55);
  Alcotest.(check bool)
    (Printf.sprintf "scouted >> single (got %f)" scouted)
    true (scouted > 0.75)

let test_composition_weight_of_success () =
  Alcotest.(check (float 1e-18)) "2^-20/100"
    (Float.pow 0.5 20. /. 100.)
    (Pso.Composition.weight_of_success ~buckets:100 ~ell:20)

let test_composition_ell_validated () =
  Alcotest.check_raises "ell 64" (Invalid_argument "Composition: ell must be in 1..63")
    (fun () -> ignore (Pso.Composition.single_bucket ~salt:1L ~buckets:10 ~ell:64))

let test_composition_heavy_below_threshold () =
  (* With ell too small the predicate is too heavy: isolations happen but
     none count as PSO successes. *)
  let r = rng () in
  let n = 100 in
  let scheme = Pso.Composition.single_bucket ~salt:(Prob.Rng.bits64 r) ~buckets:n ~ell:2 in
  let outcome =
    Pso.Game.run r ~model:small_model ~n ~mechanism:scheme.Pso.Composition.mechanism
      ~attacker:scheme.Pso.Composition.attacker
      ~weight_bound:(Pso.Isolation.negligible_bound ~n ~c:2.)
      ~trials:150
  in
  Alcotest.(check int) "no formal successes" 0 outcome.Pso.Game.successes;
  Alcotest.(check bool) "but isolations persist" true (outcome.Pso.Game.isolations > 20)

let test_composition_dp_defends () =
  let r = rng () in
  let n = 100 in
  let scheme = Pso.Composition.single_bucket ~salt:(Prob.Rng.bits64 r) ~buckets:n ~ell:40 in
  let noisy = Query.Mechanism.laplace_counts ~epsilon:1. scheme.Pso.Composition.queries in
  let outcome =
    Pso.Game.run r ~model:small_model ~n ~mechanism:noisy
      ~attacker:scheme.Pso.Composition.attacker
      ~weight_bound:(Pso.Isolation.negligible_bound ~n ~c:2.)
      ~trials:100
  in
  Alcotest.(check bool) "DP kills the attack" true (outcome.Pso.Game.success_rate <= 0.02)

(* --- k-anonymity attack (Thm 2.10) --- *)

let kanon_model = Dataset.Synth.kanon_pso_model ~qis:6 ~retained:30 ~domain:64

let kanon_mechanism recoding =
  {
    Query.Mechanism.name = "mondrian";
    run =
      (fun _rng table ->
        Query.Mechanism.Generalized (Kanon.Mondrian.anonymize ~recoding ~k:5 table));
  }

let test_kanon_greedy_success () =
  let outcome =
    Pso.Game.run (rng ()) ~model:kanon_model ~n:100
      ~mechanism:(kanon_mechanism Kanon.Mondrian.Class_level)
      ~attacker:(Pso.Kanon_attack.greedy ())
      ~weight_bound:(Pso.Isolation.negligible_bound ~n:100 ~c:2.)
      ~trials:120
  in
  Alcotest.(check bool)
    (Printf.sprintf "greedy near 37%% (got %f)" outcome.Pso.Game.success_rate)
    true
    (outcome.Pso.Game.success_rate > 0.2 && outcome.Pso.Game.success_rate < 0.6)

let test_kanon_cohen_success () =
  let outcome =
    Pso.Game.run (rng ()) ~model:kanon_model ~n:100
      ~mechanism:(kanon_mechanism Kanon.Mondrian.Member_level)
      ~attacker:(Pso.Kanon_attack.cohen ())
      ~weight_bound:(Pso.Isolation.negligible_bound ~n:100 ~c:2.)
      ~trials:120
  in
  Alcotest.(check bool)
    (Printf.sprintf "cohen ~1 (got %f)" outcome.Pso.Game.success_rate)
    true
    (outcome.Pso.Game.success_rate > 0.9)

let test_kanon_class_predicate_matches_members () =
  let r = rng () in
  let table = Dataset.Model.sample_table r kanon_model 80 in
  let release =
    Kanon.Mondrian.anonymize ~recoding:Kanon.Mondrian.Class_level ~k:5 table
  in
  let schema = Dataset.Model.schema kanon_model in
  let qis = Dataset.Schema.with_role schema Dataset.Schema.Quasi_identifier in
  List.iter
    (fun c ->
      let p = Pso.Kanon_attack.class_predicate release c in
      let count = Query.Predicate.count schema p table in
      Alcotest.(check int) "class predicate matches exactly its members"
        (Array.length c.Dataset.Gtable.members)
        count)
    (Dataset.Gtable.classes_on release qis)

let test_kanon_attackers_noop_on_other_outputs () =
  let r = rng () in
  List.iter
    (fun attacker ->
      let p = Pso.Attacker.attack attacker r (Query.Mechanism.Scalar 3.) in
      Alcotest.(check bool) "False on non-release output" true (p = Query.Predicate.False))
    [ Pso.Kanon_attack.greedy (); Pso.Kanon_attack.cohen () ]

(* --- Release-row attacker / synthetic data (E13) --- *)

let test_release_row_defeats_identity_release () =
  let model = Dataset.Synth.kanon_pso_model ~qis:4 ~retained:8 ~domain:16 in
  let outcome =
    Pso.Game.run (rng ()) ~model ~n:100
      ~mechanism:Query.Mechanism.identity_release
      ~attacker:(Pso.Attacker.release_row ())
      ~weight_bound:(Pso.Isolation.negligible_bound ~n:100 ~c:2.)
      ~trials:100
  in
  Alcotest.(check bool) "verbatim release singled out" true
    (outcome.Pso.Game.success_rate > 0.9)

let test_release_row_fails_against_synthetic () =
  let model = Dataset.Synth.kanon_pso_model ~qis:4 ~retained:8 ~domain:16 in
  let domains =
    List.map
      (fun name -> (name, List.init 16 (fun v -> Dataset.Value.Int v)))
      (Dataset.Schema.names (Dataset.Model.schema model))
  in
  let outcome =
    Pso.Game.run (rng ()) ~model ~n:100
      ~mechanism:(Dp.Synthetic.mechanism ~epsilon:1. ~domains ~rows:100)
      ~attacker:(Pso.Attacker.release_row ())
      ~weight_bound:(Pso.Isolation.negligible_bound ~n:100 ~c:2.)
      ~trials:60
  in
  Alcotest.(check bool) "synthetic release safe" true
    (outcome.Pso.Game.success_rate <= 0.05)

let test_release_row_noop_elsewhere () =
  let p =
    Pso.Attacker.attack (Pso.Attacker.release_row ()) (rng ())
      (Query.Mechanism.Scalar 1.)
  in
  Alcotest.(check bool) "False on non-release" true (p = Query.Predicate.False)

(* --- Theorem battery --- *)

let test_theorem_battery_holds () =
  (* The whole battery at reduced parameters; every verdict must hold. This
     is the repository's central regression. *)
  let params = { Pso.Theorems.n = 120; trials = 120; weight_exponent = 2. } in
  let verdicts = Pso.Theorems.all ~params (rng ()) in
  Alcotest.(check int) "seven checks" 7 (List.length verdicts);
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "%s holds" v.Pso.Theorems.id)
        true v.Pso.Theorems.holds)
    verdicts

let test_theorem_ids_unique () =
  let params = { Pso.Theorems.n = 60; trials = 20; weight_exponent = 2. } in
  let ids = List.map (fun v -> v.Pso.Theorems.id) (Pso.Theorems.all ~params (rng ())) in
  Alcotest.(check int) "unique ids" (List.length ids)
    (List.length (List.sort_uniq compare ids))

(* --- QCheck properties --- *)

let qcheck =
  let open QCheck in
  [
    Test.make ~name:"trivial isolation probability in [0,1]" ~count:300
      (pair (int_range 1 10_000) (float_bound_inclusive 1.))
      (fun (n, w) ->
        let p = Pso.Isolation.trivial_isolation_probability ~n ~w in
        0. <= p && p <= 1.);
    Test.make ~name:"optimal weight maximizes the formula" ~count:100
      (int_range 2 5000) (fun n ->
        let opt = Pso.Isolation.max_trivial_probability ~n in
        List.for_all
          (fun w -> opt +. 1e-12 >= Pso.Isolation.trivial_isolation_probability ~n ~w)
          [ 0.3 /. float_of_int n; 3. /. float_of_int n; 0.5 ]);
    Test.make ~name:"game success count bounded by isolations" ~count:10
      (int_range 1 1000) (fun seed ->
        let r = Prob.Rng.create ~seed:(Int64.of_int seed) () in
        let o =
          Pso.Game.run r ~model:small_model ~n:30 ~mechanism:trivial_mechanism
            ~attacker:(Pso.Attacker.hash_bucket ~buckets:30)
            ~weight_bound:0.5 ~trials:30
        in
        o.Pso.Game.successes <= o.Pso.Game.isolations
        && o.Pso.Game.isolations <= o.Pso.Game.trials);
  ]
  |> List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "pso"
    [
      ( "isolation",
        [
          Alcotest.test_case "formula" `Quick test_isolation_probability_formula;
          Alcotest.test_case "maximum at 1/n" `Quick test_isolation_maximum_at_one_over_n;
          Alcotest.test_case "negligible bound" `Quick test_negligible_bound;
          Alcotest.test_case "heavy band vanishes" `Quick test_heavy_band_vanishes;
          Alcotest.test_case "isolates definition" `Quick test_isolates_definition;
        ] );
      ( "game",
        [
          Alcotest.test_case "accounting" `Quick test_game_accounting;
          Alcotest.test_case "weight bound partitions" `Quick
            test_game_weight_bound_partitions;
          Alcotest.test_case "validates" `Quick test_game_validates;
          Alcotest.test_case "baseline 37%" `Slow test_baseline_37_percent;
          Alcotest.test_case "fixed-value attacker" `Slow test_fixed_value_attacker;
        ] );
      ( "pad (Thm 2.7)",
        [
          Alcotest.test_case "joint attack wins" `Slow test_pad_joint_attack_wins;
          Alcotest.test_case "marginals resist" `Slow test_pad_marginals_resist;
          Alcotest.test_case "digest predicate weight" `Quick
            test_pad_digest_predicate_weight;
          Alcotest.test_case "digest predicate ownership" `Quick
            test_pad_digest_predicate_matches_digest_owner;
        ] );
      ( "composition (Thms 2.8/2.9)",
        [
          Alcotest.test_case "scouted beats single" `Slow
            test_composition_scouted_beats_single;
          Alcotest.test_case "weight of success" `Quick test_composition_weight_of_success;
          Alcotest.test_case "ell validated" `Quick test_composition_ell_validated;
          Alcotest.test_case "heavy below threshold" `Slow
            test_composition_heavy_below_threshold;
          Alcotest.test_case "dp defends" `Slow test_composition_dp_defends;
        ] );
      ( "kanon attack (Thm 2.10)",
        [
          Alcotest.test_case "greedy success" `Slow test_kanon_greedy_success;
          Alcotest.test_case "cohen success" `Slow test_kanon_cohen_success;
          Alcotest.test_case "class predicate exact" `Quick
            test_kanon_class_predicate_matches_members;
          Alcotest.test_case "no-op on other outputs" `Quick
            test_kanon_attackers_noop_on_other_outputs;
        ] );
      ( "release-row attacker",
        [
          Alcotest.test_case "defeats identity release" `Slow
            test_release_row_defeats_identity_release;
          Alcotest.test_case "fails against synthetic" `Slow
            test_release_row_fails_against_synthetic;
          Alcotest.test_case "no-op elsewhere" `Quick test_release_row_noop_elsewhere;
        ] );
      ( "theorem battery",
        [
          Alcotest.test_case "all hold" `Slow test_theorem_battery_holds;
          Alcotest.test_case "ids unique" `Quick test_theorem_ids_unique;
        ] );
      ("properties", qcheck);
    ]
