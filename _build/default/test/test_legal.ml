(* Tests for the legal layer: sources, the concept graph, bridge transfer
   direction, legal-theorem derivations (including the refusal rules), the
   WP29 comparison, reports, and the HIPAA safe-harbor redactor. *)

let rng () = Prob.Rng.create ~seed:2016L ()

let quick_params = { Pso.Theorems.n = 60; trials = 30; weight_exponent = 2. }

(* Hand-built verdicts so derivation tests do not depend on game runs. *)
let verdict ~id ~holds =
  {
    Pso.Theorems.id;
    title = "test";
    statement = "test";
    expectation = "test";
    measured = [];
    holds;
  }

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

(* --- Sources --- *)

let test_sources_complete () =
  Alcotest.(check int) "nine sources" 9 (List.length Legal.Source.all);
  List.iter
    (fun s ->
      Alcotest.(check bool) "non-empty quote" true (String.length s.Legal.Source.quote > 0);
      Alcotest.(check bool) "non-empty id" true (String.length s.Legal.Source.id > 0))
    Legal.Source.all

let test_sources_ids_unique () =
  let ids = List.map (fun s -> s.Legal.Source.id) Legal.Source.all in
  Alcotest.(check int) "unique" (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_recital_26_mentions_singling_out () =
  Alcotest.(check bool) "the operative phrase is quoted" true
    (contains ~needle:"singling out" Legal.Source.gdpr_recital_26.Legal.Source.quote)

(* --- Concepts --- *)

let test_concept_chain () =
  Alcotest.(check bool) "singling out -> identifiability" true
    (Legal.Concept.enables_transitively Legal.Concept.Singling_out
       Legal.Concept.Identifiability);
  Alcotest.(check bool) "singling out -> personal data" true
    (Legal.Concept.enables_transitively Legal.Concept.Singling_out
       Legal.Concept.Personal_data);
  Alcotest.(check bool) "no reverse implication" false
    (Legal.Concept.enables_transitively Legal.Concept.Personal_data
       Legal.Concept.Singling_out)

let test_concept_reflexive () =
  Alcotest.(check bool) "reflexive" true
    (Legal.Concept.enables_transitively Legal.Concept.Inference
       Legal.Concept.Inference)

let test_anonymity_requirements () =
  Alcotest.(check bool) "singling out must be prevented" true
    (Legal.Concept.anonymity_requires_preventing Legal.Concept.Singling_out);
  Alcotest.(check bool) "personal data is not a means" false
    (Legal.Concept.anonymity_requires_preventing Legal.Concept.Personal_data)

(* --- Bridges --- *)

let test_bridge_directions () =
  Alcotest.(check bool) "B1 transfers failures" true
    (Legal.Bridge.failure_transfers Legal.Bridge.pso_to_gdpr_singling_out);
  Alcotest.(check bool) "B1 does not transfer successes" false
    (Legal.Bridge.success_transfers Legal.Bridge.pso_to_gdpr_singling_out);
  Alcotest.(check bool) "B2 transfers failures" true
    (Legal.Bridge.failure_transfers Legal.Bridge.singling_out_to_anonymization)

(* --- Theorem derivations --- *)

let test_kanon_theorem_established () =
  let t =
    Legal.Theorem.kanon_fails_gdpr ~variant:Legal.Technology.K_anonymity
      (verdict ~id:"Theorem 2.10" ~holds:true)
  in
  Alcotest.(check bool) "fails standard" true
    (t.Legal.Theorem.standing = Legal.Theorem.Fails_standard);
  Alcotest.(check bool) "cites recital 26" true
    (List.exists
       (function
         | Legal.Theorem.Legal_text s -> s.Legal.Source.id = "GDPR-Rec26"
         | _ -> false)
       t.Legal.Theorem.premises);
  Alcotest.(check bool) "falsifiability recorded" true
    (String.length t.Legal.Theorem.falsifiable_by > 0)

let test_kanon_theorem_undetermined_on_refuted_premise () =
  let t =
    Legal.Theorem.kanon_fails_gdpr ~variant:Legal.Technology.L_diversity
      (verdict ~id:"Theorem 2.10" ~holds:false)
  in
  Alcotest.(check bool) "undetermined" true
    (t.Legal.Theorem.standing = Legal.Theorem.Undetermined)

let test_kanon_theorem_rejects_non_family () =
  Alcotest.check_raises "dp is not a k-anon variant"
    (Invalid_argument "Theorem.kanon_fails_gdpr: not a k-anonymity variant")
    (fun () ->
      ignore
        (Legal.Theorem.kanon_fails_gdpr ~variant:Legal.Technology.Differential_privacy
           (verdict ~id:"x" ~holds:true)))

let test_corollary_adds_bridge () =
  let t =
    Legal.Theorem.kanon_fails_anonymization ~variant:Legal.Technology.K_anonymity
      (verdict ~id:"Theorem 2.10" ~holds:true)
  in
  let bridges =
    List.filter
      (function Legal.Theorem.Bridging _ -> true | _ -> false)
      t.Legal.Theorem.premises
  in
  Alcotest.(check int) "two bridges (B1 and B2)" 2 (List.length bridges)

let test_dp_gets_only_necessary_condition () =
  let t = Legal.Theorem.dp_necessary_condition (verdict ~id:"Theorem 2.9" ~holds:true) in
  Alcotest.(check bool) "necessary condition, never a pass" true
    (t.Legal.Theorem.standing = Legal.Theorem.Necessary_condition_met);
  let t' = Legal.Theorem.dp_necessary_condition (verdict ~id:"Theorem 2.9" ~holds:false) in
  Alcotest.(check bool) "undetermined when premise fails" true
    (t'.Legal.Theorem.standing = Legal.Theorem.Undetermined)

let test_count_caveat_needs_both () =
  let good = verdict ~id:"x" ~holds:true and bad = verdict ~id:"y" ~holds:false in
  let both = Legal.Theorem.count_release_caveat good good in
  let half = Legal.Theorem.count_release_caveat good bad in
  Alcotest.(check bool) "both premises" true
    (both.Legal.Theorem.standing = Legal.Theorem.Necessary_condition_met);
  Alcotest.(check bool) "one refuted" true
    (half.Legal.Theorem.standing = Legal.Theorem.Undetermined)

let test_raw_release_anchor () =
  Alcotest.(check bool) "raw release fails with no technical premise" true
    (Legal.Theorem.raw_release_fails.Legal.Theorem.standing
    = Legal.Theorem.Fails_standard)

(* --- WP29 comparison --- *)

let test_wp29_conflicts () =
  let kanon = verdict ~id:"Theorem 2.10" ~holds:true in
  let dp = verdict ~id:"Theorem 2.9" ~holds:true in
  let rows = Legal.Wp29.comparison ~kanon ~dp in
  Alcotest.(check int) "four technologies" 4 (List.length rows);
  (* All four rows conflict with the WP29 opinion — the paper's point. *)
  List.iter
    (fun r -> Alcotest.(check bool) "conflict" true r.Legal.Wp29.conflict)
    rows

let test_wp29_no_conflict_without_evidence () =
  let kanon = verdict ~id:"Theorem 2.10" ~holds:false in
  let dp = verdict ~id:"Theorem 2.9" ~holds:false in
  let rows = Legal.Wp29.comparison ~kanon ~dp in
  (* With refuted premises our side becomes "may not", matching WP29 on DP. *)
  let dp_row =
    List.find
      (fun r -> r.Legal.Wp29.technology = Legal.Technology.Differential_privacy)
      rows
  in
  Alcotest.(check bool) "dp agrees when unproven" false dp_row.Legal.Wp29.conflict

let test_wp29_assessments () =
  Alcotest.(check bool) "k-anon assessed no-risk" true
    (Legal.Wp29.wp29_assessment Legal.Technology.K_anonymity = Some Legal.Wp29.No_risk);
  Alcotest.(check bool) "raw release not assessed" true
    (Legal.Wp29.wp29_assessment Legal.Technology.Raw_release = None)

(* --- Report --- *)

let test_report_structure () =
  let report = Legal.Report.build ~context:"unit test" (rng ()) quick_params in
  Alcotest.(check int) "seven verdicts" 7 (List.length report.Legal.Report.verdicts);
  (* 1 anchor + 3 variants x 2 + dp + count caveat = 9 theorems. *)
  Alcotest.(check int) "nine legal theorems" 9 (List.length report.Legal.Report.theorems);
  Alcotest.(check int) "four comparison rows" 4 (List.length report.Legal.Report.comparison);
  let text = Legal.Report.to_string report in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "report mentions %s" needle) true
        (contains ~needle text))
    [ "Legal Theorem 2.1"; "Legal Corollary 2.1"; "Working Party"; "falsifiable" ]

let test_report_missing_verdict_rejected () =
  Alcotest.(check bool) "missing verdict rejected" true
    (try
       ignore (Legal.Report.of_verdicts [ verdict ~id:"Theorem 2.5" ~holds:true ]);
       false
     with Invalid_argument _ -> true)

(* --- Safe harbor --- *)

let test_safe_harbor_redaction () =
  let population = Dataset.Synth.population (rng ()) ~n:50 () in
  let release = Legal.Safe_harbor.deidentify population in
  let schema = Dataset.Gtable.schema release in
  let name_j = Dataset.Schema.index_of schema "name" in
  let zip_j = Dataset.Schema.index_of schema "zip" in
  let date_j = Dataset.Schema.index_of schema "birth_date" in
  Array.iteri
    (fun i grow ->
      (match grow.(name_j) with
      | Dataset.Gvalue.Any -> ()
      | _ -> Alcotest.fail "name not suppressed");
      (match grow.(zip_j) with
      | Dataset.Gvalue.Prefix (_, 3) -> ()
      | g -> Alcotest.failf "zip not 3-prefixed: %s" (Dataset.Gvalue.to_string g));
      match grow.(date_j) with
      | Dataset.Gvalue.Int_range (lo, hi) ->
        let d = Dataset.Table.value population i "birth_date" in
        let o = match d with Dataset.Value.Date dd -> Dataset.Value.date_ordinal dd | _ -> -1 in
        if o < lo || o > hi then Alcotest.fail "year range misses the date"
      | g -> Alcotest.failf "date not year-ranged: %s" (Dataset.Gvalue.to_string g))
    (Dataset.Gtable.rows release)

let test_safe_harbor_release_table () =
  let population = Dataset.Synth.population (rng ()) ~n:30 () in
  let flat = Legal.Safe_harbor.release_table (Legal.Safe_harbor.deidentify population) in
  Alcotest.(check int) "rows preserved" 30 (Dataset.Table.nrows flat);
  (* Redaction reduces quasi-identifier uniqueness. *)
  let full = Attacks.Linkage.unique_fraction (Dataset.Synth.gic_release population)
      ~on:[ "zip"; "birth_date"; "sex" ]
  in
  let redacted =
    Attacks.Linkage.unique_fraction flat ~on:[ "zip"; "birth_date"; "sex" ]
  in
  Alcotest.(check bool) "uniqueness reduced" true (redacted <= full)

(* --- Determinations (HIPAA safe harbor / Title 13) --- *)

let test_safe_harbor_determination_material () =
  let t = Legal.Determinations.safe_harbor ~reidentification_rate:0.33 ~population:2000 in
  Alcotest.(check bool) "fails" true
    (t.Legal.Theorem.standing = Legal.Theorem.Fails_standard);
  Alcotest.(check bool) "about safe harbor" true
    (t.Legal.Theorem.about = Legal.Technology.Hipaa_safe_harbor);
  Alcotest.(check bool) "cites HIPAA" true
    (List.exists
       (function
         | Legal.Theorem.Legal_text s -> s.Legal.Source.id = "HIPAA"
         | _ -> false)
       t.Legal.Theorem.premises)

let test_safe_harbor_determination_immaterial () =
  let t =
    Legal.Determinations.safe_harbor ~reidentification_rate:0.0002 ~population:1_000_000
  in
  Alcotest.(check bool) "necessary condition met" true
    (t.Legal.Theorem.standing = Legal.Theorem.Necessary_condition_met)

let test_title_13_determination () =
  let violated = Legal.Determinations.title_13 ~confirmed_rate:0.18 ~prior_estimate:0.00003 in
  Alcotest.(check bool) "violated" true
    (violated.Legal.Theorem.standing = Legal.Theorem.Fails_standard);
  let ok = Legal.Determinations.title_13 ~confirmed_rate:0.00005 ~prior_estimate:0.00003 in
  Alcotest.(check bool) "within estimate" true
    (ok.Legal.Theorem.standing = Legal.Theorem.Undetermined)

let test_erasure_determination () =
  let bad = Legal.Determinations.erasure ~server:"cached" ~respected:false in
  Alcotest.(check bool) "retention fails Article 17" true
    (bad.Legal.Theorem.standing = Legal.Theorem.Fails_standard);
  let good = Legal.Determinations.erasure ~server:"recompute" ~respected:true in
  Alcotest.(check bool) "compliance acknowledged" true
    (good.Legal.Theorem.standing = Legal.Theorem.Necessary_condition_met);
  Alcotest.(check bool) "cites Article 17" true
    (List.exists
       (function
         | Legal.Theorem.Legal_text s -> s.Legal.Source.id = "GDPR-Art17"
         | _ -> false)
       bad.Legal.Theorem.premises)

let test_erasure_end_to_end () =
  (* Server -> isolation check -> legal determination, in one breath. *)
  let model = Dataset.Synth.kanon_pso_model ~qis:4 ~retained:6 ~domain:16 in
  let table = Dataset.Model.sample_table (rng ()) model 50 in
  let run implementation =
    let s = Query.Erasure.create implementation table in
    Query.Erasure.erase s 7;
    let respected = Query.Erasure.verify_erasure s 7 in
    (Legal.Determinations.erasure ~server:"s" ~respected).Legal.Theorem.standing
  in
  Alcotest.(check bool) "recompute passes" true
    (run Query.Erasure.Recompute = Legal.Theorem.Necessary_condition_met);
  Alcotest.(check bool) "cached fails" true
    (run Query.Erasure.Cached = Legal.Theorem.Fails_standard)

let test_determination_renders () =
  let t = Legal.Determinations.title_13 ~confirmed_rate:0.18 ~prior_estimate:0.00003 in
  let text = Format.asprintf "%a" Legal.Theorem.pp t in
  Alcotest.(check bool) "mentions Title13" true (contains ~needle:"Title13" text)

(* --- Technology --- *)

let test_technology_family () =
  Alcotest.(check bool) "k-anon in family" true
    (Legal.Technology.kanon_family Legal.Technology.K_anonymity);
  Alcotest.(check bool) "t-closeness in family" true
    (Legal.Technology.kanon_family Legal.Technology.T_closeness);
  Alcotest.(check bool) "dp not in family" false
    (Legal.Technology.kanon_family Legal.Technology.Differential_privacy);
  Alcotest.(check int) "seven technologies" 7 (List.length Legal.Technology.all)

let () =
  Alcotest.run "legal"
    [
      ( "sources",
        [
          Alcotest.test_case "complete" `Quick test_sources_complete;
          Alcotest.test_case "ids unique" `Quick test_sources_ids_unique;
          Alcotest.test_case "recital 26 quotes singling out" `Quick
            test_recital_26_mentions_singling_out;
        ] );
      ( "concepts",
        [
          Alcotest.test_case "chain" `Quick test_concept_chain;
          Alcotest.test_case "reflexive" `Quick test_concept_reflexive;
          Alcotest.test_case "anonymity requirements" `Quick test_anonymity_requirements;
        ] );
      ( "bridges",
        [ Alcotest.test_case "directions" `Quick test_bridge_directions ] );
      ( "theorems",
        [
          Alcotest.test_case "kanon established" `Quick test_kanon_theorem_established;
          Alcotest.test_case "undetermined on refuted premise" `Quick
            test_kanon_theorem_undetermined_on_refuted_premise;
          Alcotest.test_case "rejects non-family" `Quick test_kanon_theorem_rejects_non_family;
          Alcotest.test_case "corollary adds bridge" `Quick test_corollary_adds_bridge;
          Alcotest.test_case "dp necessary condition only" `Quick
            test_dp_gets_only_necessary_condition;
          Alcotest.test_case "count caveat needs both" `Quick test_count_caveat_needs_both;
          Alcotest.test_case "raw release anchor" `Quick test_raw_release_anchor;
        ] );
      ( "wp29",
        [
          Alcotest.test_case "conflicts" `Quick test_wp29_conflicts;
          Alcotest.test_case "no conflict without evidence" `Quick
            test_wp29_no_conflict_without_evidence;
          Alcotest.test_case "assessments" `Quick test_wp29_assessments;
        ] );
      ( "report",
        [
          Alcotest.test_case "structure" `Slow test_report_structure;
          Alcotest.test_case "missing verdict rejected" `Quick
            test_report_missing_verdict_rejected;
        ] );
      ( "safe harbor",
        [
          Alcotest.test_case "redaction" `Quick test_safe_harbor_redaction;
          Alcotest.test_case "release table" `Quick test_safe_harbor_release_table;
        ] );
      ( "determinations",
        [
          Alcotest.test_case "safe harbor material" `Quick
            test_safe_harbor_determination_material;
          Alcotest.test_case "safe harbor immaterial" `Quick
            test_safe_harbor_determination_immaterial;
          Alcotest.test_case "title 13" `Quick test_title_13_determination;
          Alcotest.test_case "erasure" `Quick test_erasure_determination;
          Alcotest.test_case "erasure end to end" `Quick test_erasure_end_to_end;
          Alcotest.test_case "renders" `Quick test_determination_renders;
        ] );
      ( "technology",
        [ Alcotest.test_case "family" `Quick test_technology_family ] );
    ]
