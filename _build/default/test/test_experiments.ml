(* Row-level assertions on the experiment harness at quick scale: each
   experiment's rows must already show the paper's qualitative shape, so a
   regression that flattens a curve or flips a comparison fails here even
   before anyone reads the bench tables. *)

let rng () = Prob.Rng.create ~seed:9000L ()

let scale = Experiments.Common.Quick

(* --- E1 --- *)

let test_e1_shape () =
  let rows = Experiments.E1_reconstruction.run ~scale (rng ()) in
  (* Zero noise -> blatant reconstruction, for every attack. *)
  List.iter
    (fun r ->
      if r.Experiments.E1_reconstruction.alpha = 0. then
        Alcotest.(check bool)
          (Printf.sprintf "%s noiseless is blatant" r.Experiments.E1_reconstruction.attack)
          true r.Experiments.E1_reconstruction.blatant)
    rows;
  (* Within each (attack, n), agreement is non-increasing in alpha (small
     Monte-Carlo slack). *)
  let groups = Hashtbl.create 8 in
  List.iter
    (fun r ->
      let key = (r.Experiments.E1_reconstruction.attack, r.Experiments.E1_reconstruction.n) in
      Hashtbl.replace groups key
        (r :: Option.value ~default:[] (Hashtbl.find_opt groups key)))
    rows;
  Hashtbl.iter
    (fun _ group ->
      let sorted =
        List.sort
          (fun a b ->
            Float.compare a.Experiments.E1_reconstruction.alpha
              b.Experiments.E1_reconstruction.alpha)
          group
      in
      let rec check = function
        | a :: b :: rest ->
          Alcotest.(check bool) "agreement non-increasing in alpha" true
            (a.Experiments.E1_reconstruction.agreement
             +. 0.12
            >= b.Experiments.E1_reconstruction.agreement);
          check (b :: rest)
        | _ -> ()
      in
      check sorted)
    groups

(* --- E2 --- *)

let test_e2_matches_analytic () =
  let rows = Experiments.E2_birthday.run ~scale (rng ()) in
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "w=%g measured %.3f vs analytic %.3f"
           r.Experiments.E2_birthday.weight r.Experiments.E2_birthday.empirical
           r.Experiments.E2_birthday.analytic)
        true
        (Float.abs
           (r.Experiments.E2_birthday.empirical -. r.Experiments.E2_birthday.analytic)
        < 0.08))
    rows

(* --- E3 --- *)

let test_e3_no_plateau () =
  let rows = Experiments.E3_count_secure.run ~scale (rng ()) in
  List.iter
    (fun c ->
      match Experiments.E3_count_secure.decay rows ~c with
      | Prob.Decay.Plateau p when p > 0.05 ->
        Alcotest.failf "count mechanism plateaus at %.3f for c=%.0f" p c
      | _ -> ())
    [ 1.; 2.; 4. ]

(* --- E4 --- *)

let test_e4_margins () =
  let rows = Experiments.E4_incomposability.run ~scale (rng ()) in
  List.iter
    (fun r ->
      if r.Experiments.E4_incomposability.target = "(M1,M2) composed" then
        Alcotest.(check bool) "composed broken" true
          (r.Experiments.E4_incomposability.success > 0.9)
      else
        Alcotest.(check bool) "marginals safe" true
          (r.Experiments.E4_incomposability.success < 0.05))
    rows

(* --- E5 --- *)

let test_e5_crossover () =
  let rows = Experiments.E5_composition.run ~scale (rng ()) in
  List.iter
    (fun r ->
      let counted = r.Experiments.E5_composition.predicate_weight
                    <= r.Experiments.E5_composition.weight_bound in
      if not counted then
        Alcotest.(check (float 1e-9)) "heavy rows never formally succeed" 0.
          r.Experiments.E5_composition.success
      else if r.Experiments.E5_composition.variant = "scouted" then
        Alcotest.(check bool) "light scouted rows succeed strongly" true
          (r.Experiments.E5_composition.success > 0.7))
    rows

(* --- E6 --- *)

let test_e6_dp_cliff () =
  let rows = Experiments.E6_dp_defends.run ~scale (rng ()) in
  List.iter
    (fun r ->
      match r.Experiments.E6_dp_defends.epsilon with
      | None ->
        Alcotest.(check bool) "exact counts broken" true
          (r.Experiments.E6_dp_defends.success > 0.2)
      | Some eps when eps <= 100. ->
        Alcotest.(check bool)
          (Printf.sprintf "eps=%g safe" eps)
          true
          (r.Experiments.E6_dp_defends.success <= 0.05)
      | Some _ -> ())
    rows

(* --- E7 --- *)

let test_e7_attackers () =
  let rows = Experiments.E7_kanon.run ~scale (rng ()) in
  List.iter
    (fun r ->
      Alcotest.(check bool) "release was k-anonymous" true
        r.Experiments.E7_kanon.k_anonymous;
      match r.Experiments.E7_kanon.attacker with
      | "cohen" ->
        Alcotest.(check bool) "cohen ~1" true (r.Experiments.E7_kanon.success > 0.85)
      | "greedy" ->
        Alcotest.(check bool) "greedy in the 1/e band" true
          (r.Experiments.E7_kanon.success > 0.15
          && r.Experiments.E7_kanon.success < 0.65)
      | _ -> ())
    rows

(* --- E8 --- *)

let test_e8_safe_harbor_helps () =
  let rows = Experiments.E8_sweeney.run ~scale (rng ()) in
  let find release =
    List.find (fun r -> r.Experiments.E8_sweeney.release = release) rows
  in
  let gic = find "redacted (GIC)" and sh = find "safe harbor" in
  Alcotest.(check bool) "GIC mostly unique" true
    (gic.Experiments.E8_sweeney.qi_unique > 0.9);
  Alcotest.(check bool) "safe harbor reduces uniqueness" true
    (sh.Experiments.E8_sweeney.qi_unique < gic.Experiments.E8_sweeney.qi_unique);
  Alcotest.(check bool) "linkage is high-precision" true
    (gic.Experiments.E8_sweeney.precision > 0.95)

(* --- E9 --- *)

let test_e9_monotone_in_aux () =
  let rows = Experiments.E9_netflix.run ~scale (rng ()) in
  let sorted =
    List.sort
      (fun a b ->
        Int.compare a.Experiments.E9_netflix.aux_items b.Experiments.E9_netflix.aux_items)
      rows
  in
  let rec check = function
    | a :: b :: rest ->
      Alcotest.(check bool) "success grows with aux" true
        (a.Experiments.E9_netflix.correct -. 0.1 <= b.Experiments.E9_netflix.correct);
      check (b :: rest)
    | _ -> ()
  in
  check sorted;
  (match List.rev sorted with
  | best :: _ ->
    Alcotest.(check bool) "many items re-identify nearly always" true
      (best.Experiments.E9_netflix.correct > 0.9)
  | [] -> Alcotest.fail "no rows");
  List.iter
    (fun r ->
      Alcotest.(check bool) "wrong matches stay rare" true
        (r.Experiments.E9_netflix.wrong < 0.1))
    rows

(* --- E10 --- *)

let test_e10_shape () =
  let rows = Experiments.E10_census.run ~scale (rng ()) in
  List.iter
    (fun r ->
      Alcotest.(check bool) "age within one for most" true
        (r.Experiments.E10_census.age_within_one > 0.5);
      Alcotest.(check bool) "confirmed <= putative" true
        (r.Experiments.E10_census.confirmed <= r.Experiments.E10_census.putative +. 1e-9);
      Alcotest.(check bool) "orders of magnitude above the prior" true
        (r.Experiments.E10_census.gap_factor > 100.))
    rows

(* --- E11 --- *)

let test_e11_auc_grows () =
  let rows = Experiments.E11_membership.run ~scale (rng ()) in
  let sorted =
    List.sort
      (fun a b -> Int.compare a.Experiments.E11_membership.snps b.Experiments.E11_membership.snps)
      rows
  in
  match (sorted, List.rev sorted) with
  | low :: _, high :: _ ->
    Alcotest.(check bool) "AUC grows with attributes" true
      (high.Experiments.E11_membership.auc > low.Experiments.E11_membership.auc);
    Alcotest.(check bool) "strong at the top" true
      (high.Experiments.E11_membership.auc > 0.85)
  | _ -> Alcotest.fail "no rows"

(* --- E13 --- *)

let test_e13_synthetic () =
  let rows = Experiments.E13_synthetic.run ~scale (rng ()) in
  List.iter
    (fun r ->
      match r.Experiments.E13_synthetic.epsilon with
      | None ->
        Alcotest.(check bool) "verbatim release broken" true
          (r.Experiments.E13_synthetic.success > 0.9)
      | Some _ ->
        Alcotest.(check bool) "synthetic release safe" true
          (r.Experiments.E13_synthetic.success <= 0.05))
    rows

(* --- E12 --- *)

let test_e12_report () =
  let report = Experiments.E12_legal.report ~scale (rng ()) in
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "%s holds at quick scale" v.Pso.Theorems.id)
        true v.Pso.Theorems.holds)
    report.Legal.Report.verdicts;
  let conflicts =
    List.filter (fun r -> r.Legal.Wp29.conflict) report.Legal.Report.comparison
  in
  Alcotest.(check int) "all four WP29 rows conflict" 4 (List.length conflicts)

let () =
  Alcotest.run "experiments"
    [
      ( "shapes",
        [
          Alcotest.test_case "E1 reconstruction" `Slow test_e1_shape;
          Alcotest.test_case "E2 birthday" `Slow test_e2_matches_analytic;
          Alcotest.test_case "E3 no plateau" `Slow test_e3_no_plateau;
          Alcotest.test_case "E4 incomposability" `Slow test_e4_margins;
          Alcotest.test_case "E5 crossover" `Slow test_e5_crossover;
          Alcotest.test_case "E6 dp cliff" `Slow test_e6_dp_cliff;
          Alcotest.test_case "E7 kanon attackers" `Slow test_e7_attackers;
          Alcotest.test_case "E8 safe harbor" `Slow test_e8_safe_harbor_helps;
          Alcotest.test_case "E9 aux monotone" `Slow test_e9_monotone_in_aux;
          Alcotest.test_case "E10 census" `Slow test_e10_shape;
          Alcotest.test_case "E11 auc growth" `Slow test_e11_auc_grows;
          Alcotest.test_case "E12 legal report" `Slow test_e12_report;
          Alcotest.test_case "E13 synthetic" `Slow test_e13_synthetic;
        ] );
    ]
