(* Tests for the k-anonymity library: the anonymity invariant for every
   algorithm (unit + property), cover correctness, suppression budgets,
   information-loss metrics, and the l-diversity / t-closeness checks. *)

module V = Dataset.Value
module S = Dataset.Schema
module T = Dataset.Table
module G = Dataset.Gvalue

let rng () = Prob.Rng.create ~seed:404L ()

let model = Dataset.Synth.kanon_pso_model ~qis:4 ~retained:3 ~domain:16

let schema = Dataset.Model.schema model

let qis = S.with_role schema S.Quasi_identifier

let sample n = Dataset.Model.sample_table (rng ()) model n

let int_scheme =
  List.map
    (fun qi ->
      (qi, Dataset.Hierarchy.int_ranges ~name:qi ~lo:0 ~widths:[ 2; 4; 8; 16 ]))
    qis

(* --- cover --- *)

let test_cover_exact_when_equal () =
  Alcotest.(check bool) "equal values stay exact" true
    (G.equal (G.Exact (V.Int 3)) (Kanon.Generalization.cover [ V.Int 3; V.Int 3 ]))

let test_cover_int_range () =
  match Kanon.Generalization.cover [ V.Int 3; V.Int 9; V.Int 5 ] with
  | G.Int_range (3, 9) -> ()
  | g -> Alcotest.failf "expected 3-9, got %s" (G.to_string g)

let test_cover_string_prefix () =
  match Kanon.Generalization.cover [ V.String "12345"; V.String "12399" ] with
  | G.Prefix (_, 3) -> ()
  | g -> Alcotest.failf "expected prefix-3, got %s" (G.to_string g)

let test_cover_no_common_prefix () =
  Alcotest.(check bool) "disjoint strings suppressed" true
    (G.equal G.Any (Kanon.Generalization.cover [ V.String "abc"; V.String "xyz" ]))

let test_cover_hierarchy () =
  let h = Dataset.Synth.disease_hierarchy in
  match
    Kanon.Generalization.cover ~hierarchy:h [ V.String "COVID"; V.String "Asthma" ]
  with
  | G.Category { label = "PULM"; _ } -> ()
  | g -> Alcotest.failf "expected PULM, got %s" (G.to_string g)

let test_cover_hierarchy_cross_group () =
  let h = Dataset.Synth.disease_hierarchy in
  match
    Kanon.Generalization.cover ~hierarchy:h [ V.String "COVID"; V.String "CAD" ]
  with
  | G.Category { label = "ANY-DX"; _ } -> ()
  | g -> Alcotest.failf "expected ANY-DX (root), got %s" (G.to_string g)

let test_cover_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Generalization.cover: empty list")
    (fun () -> ignore (Kanon.Generalization.cover []))

(* --- full_domain --- *)

let test_full_domain_levels () =
  let t = sample 30 in
  let release =
    Kanon.Generalization.full_domain schema int_scheme
      ~levels:[ (List.hd qis, 2) ]
      t
  in
  let j = S.index_of schema (List.hd qis) in
  Array.iter
    (fun grow ->
      match grow.(j) with
      | G.Int_range (lo, hi) -> Alcotest.(check int) "width 4" 3 (hi - lo)
      | g -> Alcotest.failf "expected width-4 range, got %s" (G.to_string g))
    (Dataset.Gtable.rows release)

let test_full_domain_keeps_unlisted_exact () =
  let t = sample 10 in
  let release = Kanon.Generalization.full_domain schema int_scheme ~levels:[] t in
  Dataset.Gtable.rows release
  |> Array.iteri (fun i grow ->
         Array.iteri
           (fun j g ->
             if not (G.equal g (G.Exact (T.row t i).(j))) then
               Alcotest.fail "level-0 cell not exact")
           grow)

let test_suppress_rows () =
  let t = sample 5 in
  let release = Kanon.Generalization.full_domain schema int_scheme ~levels:[] t in
  let suppressed = Kanon.Generalization.suppress_rows release [| 2 |] in
  Alcotest.(check bool) "row 2 all Any" true
    (Array.for_all G.is_suppressed (Dataset.Gtable.row suppressed 2));
  Alcotest.(check bool) "row 1 untouched" false
    (Array.for_all G.is_suppressed (Dataset.Gtable.row suppressed 1))

(* --- Mondrian --- *)

let test_mondrian_k_anonymous () =
  let t = sample 100 in
  let release = Kanon.Mondrian.anonymize ~k:5 t in
  Alcotest.(check bool) "invariant" true (Kanon.Anonymizer.is_k_anonymous ~k:5 release);
  Alcotest.(check int) "row count preserved" 100 (Dataset.Gtable.nrows release)

let test_mondrian_covers_source_rows () =
  let t = sample 60 in
  let release = Kanon.Mondrian.anonymize ~k:3 t in
  T.iter
    (fun i row ->
      if not (Dataset.Gtable.matches_row (Dataset.Gtable.row release i) row) then
        Alcotest.failf "row %d not covered by its released form" i)
    t

let test_mondrian_classes_disjoint () =
  (* No source row may fall under another class's QI description —
     partitions are boxes along the split path. *)
  let t = sample 80 in
  let release = Kanon.Mondrian.anonymize ~k:4 t in
  let classes = Dataset.Gtable.classes_on release qis in
  let keep = List.map (S.index_of schema) qis in
  List.iter
    (fun c ->
      let expected = Array.length c.Dataset.Gtable.members in
      let matches =
        T.count
          (fun row ->
            List.for_all (fun j -> G.matches c.Dataset.Gtable.rep.(j) row.(j)) keep)
          t
      in
      Alcotest.(check int) "class matches exactly its members" expected matches)
    classes

let test_mondrian_member_level_keeps_retained_exact () =
  let t = sample 40 in
  let release = Kanon.Mondrian.anonymize ~recoding:Kanon.Mondrian.Member_level ~k:4 t in
  let j = S.index_of schema "r1" in
  T.iter
    (fun i row ->
      if not (G.equal (Dataset.Gtable.row release i).(j) (G.Exact row.(j))) then
        Alcotest.fail "retained cell not exact under member-level recoding")
    t

let test_mondrian_class_level_shares_cells () =
  let t = sample 40 in
  let release = Kanon.Mondrian.anonymize ~recoding:Kanon.Mondrian.Class_level ~k:4 t in
  List.iter
    (fun c ->
      let rows = Dataset.Gtable.rows release in
      Array.iter
        (fun i ->
          if not (Array.for_all2 G.equal rows.(i) c.Dataset.Gtable.rep) then
            Alcotest.fail "class-level rows differ within class")
        c.Dataset.Gtable.members)
    (Dataset.Gtable.classes_on release qis)

let test_mondrian_k_too_large () =
  Alcotest.check_raises "k > n" (Invalid_argument "Mondrian.anonymize: fewer than k rows")
    (fun () -> ignore (Kanon.Mondrian.anonymize ~k:10 (sample 5)))

let test_mondrian_higher_k_fewer_classes () =
  let t = sample 100 in
  let classes k =
    List.length (Dataset.Gtable.classes_on (Kanon.Mondrian.anonymize ~k t) qis)
  in
  Alcotest.(check bool) "monotone" true (classes 2 >= classes 10)

(* --- Datafly --- *)

let test_datafly_k_anonymous () =
  let t = sample 100 in
  let result = Kanon.Datafly.anonymize ~scheme:int_scheme ~k:4 t in
  Alcotest.(check bool) "invariant" true
    (Kanon.Anonymizer.is_k_anonymous ~k:4 result.Kanon.Datafly.release);
  Alcotest.(check bool) "suppression within budget" true
    (result.Kanon.Datafly.suppressed <= 5)

let test_datafly_levels_reported () =
  let t = sample 100 in
  let result = Kanon.Datafly.anonymize ~scheme:int_scheme ~k:4 t in
  Alcotest.(check int) "one level per QI" (List.length qis)
    (List.length result.Kanon.Datafly.levels)

let test_datafly_missing_hierarchy () =
  Alcotest.(check bool) "missing hierarchy rejected" true
    (try
       ignore (Kanon.Datafly.anonymize ~scheme:[] ~k:2 (sample 10));
       false
     with Invalid_argument _ -> true)

(* --- Samarati --- *)

let test_samarati_k_anonymous_and_minimal () =
  let t = sample 80 in
  let result = Kanon.Samarati.anonymize ~scheme:int_scheme ~k:4 t in
  Alcotest.(check bool) "invariant" true
    (Kanon.Anonymizer.is_k_anonymous ~k:4 result.Kanon.Samarati.release);
  (* Heights strictly below the found one must be infeasible... verified
     indirectly: height is within lattice bounds. *)
  Alcotest.(check bool) "height sane" true
    (result.Kanon.Samarati.height >= 0
    && result.Kanon.Samarati.height <= 4 * List.length qis)

let test_samarati_height_not_above_datafly () =
  (* Samarati searches for the minimum total height; Datafly is greedy, so
     Samarati's height is never larger. *)
  let t = sample 80 in
  let s = Kanon.Samarati.anonymize ~scheme:int_scheme ~k:4 t in
  let d = Kanon.Datafly.anonymize ~scheme:int_scheme ~k:4 t in
  let d_height = List.fold_left (fun acc (_, l) -> acc + l) 0 d.Kanon.Datafly.levels in
  Alcotest.(check bool) "samarati <= datafly height" true
    (s.Kanon.Samarati.height <= d_height)

(* --- Incognito --- *)

let test_incognito_frontier_sound () =
  let t = sample 80 in
  let result = Kanon.Incognito.anonymize ~scheme:int_scheme ~k:4 t in
  (* The chosen release is k-anonymous with zero suppression. *)
  Alcotest.(check bool) "release k-anonymous" true
    (Kanon.Anonymizer.is_k_anonymous ~k:4 result.Kanon.Incognito.release);
  Alcotest.(check int) "no suppression" 0
    (Kanon.Metrics.suppressed_rows result.Kanon.Incognito.release);
  Alcotest.(check bool) "frontier non-empty" true
    (result.Kanon.Incognito.frontier <> []);
  (* Frontier nodes are pairwise incomparable (all minimal). *)
  let nodes =
    List.map (fun levels -> List.map snd levels) result.Kanon.Incognito.frontier
  in
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          if i <> j && Kanon.Incognito.dominates a b then
            Alcotest.fail "frontier contains comparable nodes")
        nodes)
    nodes

let test_incognito_frontier_nodes_all_satisfy () =
  let t = sample 60 in
  let result = Kanon.Incognito.anonymize ~scheme:int_scheme ~k:3 t in
  List.iter
    (fun levels ->
      let release = Kanon.Generalization.full_domain schema int_scheme ~levels t in
      Alcotest.(check bool) "frontier node satisfies" true
        (Dataset.Gtable.min_class_size_on release qis >= 3))
    result.Kanon.Incognito.frontier

let test_incognito_min_height_matches_samarati () =
  (* Samarati(no suppression) finds a minimum-height satisfying node; the
     Incognito frontier must contain a node at exactly that height. *)
  let t = sample 60 in
  let inc = Kanon.Incognito.anonymize ~scheme:int_scheme ~k:3 t in
  let sam = Kanon.Samarati.anonymize ~scheme:int_scheme ~k:3 ~max_suppression:0. t in
  let heights =
    List.map
      (fun levels -> List.fold_left (fun acc (_, l) -> acc + l) 0 levels)
      inc.Kanon.Incognito.frontier
  in
  Alcotest.(check int) "min frontier height = samarati height"
    sam.Kanon.Samarati.height
    (List.fold_left min max_int heights)

let test_incognito_pruning_saves_work () =
  let t = sample 60 in
  let result = Kanon.Incognito.anonymize ~scheme:int_scheme ~k:3 t in
  let lattice_size =
    List.fold_left
      (fun acc (_, h) -> acc * Dataset.Hierarchy.height h)
      1 int_scheme
  in
  Alcotest.(check bool)
    (Printf.sprintf "tested %d < lattice %d" result.Kanon.Incognito.tested lattice_size)
    true
    (result.Kanon.Incognito.tested < lattice_size)

let test_incognito_infeasible_k () =
  Alcotest.(check bool) "k > n rejected" true
    (try
       ignore (Kanon.Incognito.anonymize ~scheme:int_scheme ~k:100 (sample 10));
       false
     with Invalid_argument _ -> true)

(* --- Metrics --- *)

let test_metrics_discernibility_monotone_in_k () =
  let t = sample 100 in
  let disc k =
    Kanon.Metrics.discernibility ~qis (Kanon.Mondrian.anonymize ~k t)
  in
  Alcotest.(check bool) "higher k, higher discernibility" true (disc 10 >= disc 2)

let test_metrics_average_class_size () =
  let t = sample 100 in
  let release = Kanon.Mondrian.anonymize ~k:5 t in
  let avg = Kanon.Metrics.average_class_size ~qis release in
  Alcotest.(check bool) "at least k" true (avg >= 5.)

let test_metrics_ncp_bounds () =
  let t = sample 60 in
  let release = Kanon.Mondrian.anonymize ~k:5 t in
  let domains = List.map (fun qi -> (qi, 16.)) qis in
  let ncp = Kanon.Metrics.ncp ~domains release in
  Alcotest.(check bool) "in [0,1]" true (ncp >= 0. && ncp <= 1.);
  (* k=2 retains more information than k=20. *)
  let ncp2 = Kanon.Metrics.ncp ~domains (Kanon.Mondrian.anonymize ~k:2 t) in
  Alcotest.(check bool) "less generalization at k=2" true (ncp2 <= ncp +. 1e-9)

let test_metrics_suppressed_rows () =
  let t = sample 10 in
  let release = Kanon.Mondrian.anonymize ~k:2 t in
  let suppressed = Kanon.Generalization.suppress_rows release [| 0; 3 |] in
  Alcotest.(check int) "counted" 2 (Kanon.Metrics.suppressed_rows suppressed)

let test_metrics_generalization_intensity () =
  let t = sample 30 in
  let member = Kanon.Mondrian.anonymize ~recoding:Kanon.Mondrian.Member_level ~k:3 t in
  let class_ = Kanon.Mondrian.anonymize ~recoding:Kanon.Mondrian.Class_level ~k:3 t in
  Alcotest.(check bool) "class-level coarser" true
    (Kanon.Metrics.generalization_intensity class_
    >= Kanon.Metrics.generalization_intensity member)

(* --- Diversity --- *)

let diversity_fixture () =
  (* Two classes: one with diverse sensitive values, one uniform. *)
  let s =
    S.make
      [
        { S.name = "q"; kind = V.Kint; role = S.Quasi_identifier };
        { S.name = "dx"; kind = V.Kstring; role = S.Sensitive };
      ]
  in
  let t =
    T.make s
      [|
        [| V.Int 1; V.String "flu" |];
        [| V.Int 2; V.String "cold" |];
        [| V.Int 11; V.String "flu" |];
        [| V.Int 12; V.String "flu" |];
      |]
  in
  let gt =
    Dataset.Gtable.make s
      [|
        [| G.Int_range (0, 9); G.Exact (V.String "flu") |];
        [| G.Int_range (0, 9); G.Exact (V.String "cold") |];
        [| G.Int_range (10, 19); G.Exact (V.String "flu") |];
        [| G.Int_range (10, 19); G.Exact (V.String "flu") |];
      |]
  in
  (t, gt)

let test_l_diversity () =
  let t, gt = diversity_fixture () in
  Alcotest.(check int) "worst class has 1 distinct" 1
    (Kanon.Diversity.l_diversity ~qis:[ "q" ] ~sensitive:"dx" gt t)

let test_t_closeness () =
  let t, gt = diversity_fixture () in
  let tc = Kanon.Diversity.t_closeness ~qis:[ "q" ] ~sensitive:"dx" gt t in
  (* Global: 3/4 flu. Worst class: all flu -> TV = 1/4. *)
  Alcotest.(check (float 1e-9)) "worst-class TV" 0.25 tc

let ordered_fixture () =
  (* Sensitive salaries 1..4; one class holds the extremes' low end. *)
  let s =
    S.make
      [
        { S.name = "q"; kind = V.Kint; role = S.Quasi_identifier };
        { S.name = "salary"; kind = V.Kint; role = S.Sensitive };
      ]
  in
  let t =
    T.make s
      [|
        [| V.Int 1; V.Int 1 |];
        [| V.Int 2; V.Int 2 |];
        [| V.Int 11; V.Int 3 |];
        [| V.Int 12; V.Int 4 |];
      |]
  in
  let gt =
    Dataset.Gtable.make s
      [|
        [| G.Int_range (0, 9); G.Exact (V.Int 1) |];
        [| G.Int_range (0, 9); G.Exact (V.Int 2) |];
        [| G.Int_range (10, 19); G.Exact (V.Int 3) |];
        [| G.Int_range (10, 19); G.Exact (V.Int 4) |];
      |]
  in
  (t, gt)

let test_t_closeness_ordered () =
  let t, gt = ordered_fixture () in
  (* Global = uniform on {1,2,3,4}; class {1,2}: prefix sums of p-q are
     (1/4, 1/2, 1/4) -> EMD = 1/3. *)
  Alcotest.(check (float 1e-9)) "ordered EMD" (1. /. 3.)
    (Kanon.Diversity.t_closeness_ordered ~qis:[ "q" ] ~sensitive:"salary" gt t)

let test_t_closeness_ordered_exceeds_tv_for_shifts () =
  (* Both classes have TV 1/2 from the global, but the ordered metric sees
     the low class as a concentrated shift: EMD > ... confirms the two
     metrics genuinely differ on ordered data. *)
  let t, gt = ordered_fixture () in
  let tv = Kanon.Diversity.t_closeness ~qis:[ "q" ] ~sensitive:"salary" gt t in
  let ordered =
    Kanon.Diversity.t_closeness_ordered ~qis:[ "q" ] ~sensitive:"salary" gt t
  in
  Alcotest.(check (float 1e-9)) "tv value" 0.5 tv;
  Alcotest.(check bool) "metrics differ" true (Float.abs (tv -. ordered) > 0.05)

let test_enforce_l_diversity () =
  let t, gt = diversity_fixture () in
  let upgraded =
    Kanon.Diversity.enforce_l_diversity ~qis:[ "q" ] ~sensitive:"dx" ~l:2 gt t
  in
  (* The uniform class must now be suppressed. *)
  Alcotest.(check int) "two rows suppressed" 2
    (Kanon.Metrics.suppressed_rows upgraded);
  Alcotest.(check int) "remaining classes are 2-diverse" 2
    (Kanon.Diversity.l_diversity ~qis:[ "q" ] ~sensitive:"dx" upgraded t)

(* --- Anonymizer front-end --- *)

let test_anonymizer_mechanism () =
  let config =
    { (Kanon.Anonymizer.default ~k:4 ~scheme:int_scheme) with
      Kanon.Anonymizer.algorithm = Kanon.Anonymizer.Datafly }
  in
  let m = Kanon.Anonymizer.mechanism config in
  match Query.Mechanism.run m (rng ()) (sample 60) with
  | Query.Mechanism.Generalized g ->
    Alcotest.(check bool) "mechanism output k-anonymous" true
      (Kanon.Anonymizer.is_k_anonymous ~k:4 g)
  | _ -> Alcotest.fail "expected generalized output"

(* --- QCheck properties --- *)

let qcheck =
  let open QCheck in
  [
    Test.make ~name:"mondrian releases are k-anonymous (forall seed, k)"
      ~count:40
      (pair (int_range 1 1000) (int_range 1 8))
      (fun (seed, k) ->
        let r = Prob.Rng.create ~seed:(Int64.of_int seed) () in
        let t = Dataset.Model.sample_table r model (40 + (k * 4)) in
        Kanon.Anonymizer.is_k_anonymous ~k (Kanon.Mondrian.anonymize ~k t));
    Test.make ~name:"datafly releases are k-anonymous (forall seed, k)"
      ~count:25
      (pair (int_range 1 1000) (int_range 1 6))
      (fun (seed, k) ->
        let r = Prob.Rng.create ~seed:(Int64.of_int seed) () in
        let t = Dataset.Model.sample_table r model (40 + (k * 4)) in
        Kanon.Anonymizer.is_k_anonymous ~k
          (Kanon.Datafly.anonymize ~scheme:int_scheme ~k t).Kanon.Datafly.release);
    Test.make ~name:"mondrian released rows cover their sources" ~count:25
      (int_range 1 1000) (fun seed ->
        let r = Prob.Rng.create ~seed:(Int64.of_int seed) () in
        let t = Dataset.Model.sample_table r model 50 in
        let release = Kanon.Mondrian.anonymize ~k:3 t in
        let ok = ref true in
        T.iter
          (fun i row ->
            if not (Dataset.Gtable.matches_row (Dataset.Gtable.row release i) row)
            then ok := false)
          t;
        !ok);
  ]
  |> List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "kanon"
    [
      ( "cover",
        [
          Alcotest.test_case "exact when equal" `Quick test_cover_exact_when_equal;
          Alcotest.test_case "int range" `Quick test_cover_int_range;
          Alcotest.test_case "string prefix" `Quick test_cover_string_prefix;
          Alcotest.test_case "no common prefix" `Quick test_cover_no_common_prefix;
          Alcotest.test_case "hierarchy" `Quick test_cover_hierarchy;
          Alcotest.test_case "hierarchy cross group" `Quick
            test_cover_hierarchy_cross_group;
          Alcotest.test_case "empty rejected" `Quick test_cover_empty_rejected;
        ] );
      ( "full-domain",
        [
          Alcotest.test_case "levels applied" `Quick test_full_domain_levels;
          Alcotest.test_case "unlisted exact" `Quick test_full_domain_keeps_unlisted_exact;
          Alcotest.test_case "suppress rows" `Quick test_suppress_rows;
        ] );
      ( "mondrian",
        [
          Alcotest.test_case "k-anonymous" `Quick test_mondrian_k_anonymous;
          Alcotest.test_case "covers source rows" `Quick test_mondrian_covers_source_rows;
          Alcotest.test_case "classes disjoint" `Quick test_mondrian_classes_disjoint;
          Alcotest.test_case "member-level exact" `Quick
            test_mondrian_member_level_keeps_retained_exact;
          Alcotest.test_case "class-level shared" `Quick
            test_mondrian_class_level_shares_cells;
          Alcotest.test_case "k too large" `Quick test_mondrian_k_too_large;
          Alcotest.test_case "higher k fewer classes" `Quick
            test_mondrian_higher_k_fewer_classes;
        ] );
      ( "datafly",
        [
          Alcotest.test_case "k-anonymous" `Quick test_datafly_k_anonymous;
          Alcotest.test_case "levels reported" `Quick test_datafly_levels_reported;
          Alcotest.test_case "missing hierarchy" `Quick test_datafly_missing_hierarchy;
        ] );
      ( "samarati",
        [
          Alcotest.test_case "k-anonymous and minimal" `Quick
            test_samarati_k_anonymous_and_minimal;
          Alcotest.test_case "height <= datafly" `Quick
            test_samarati_height_not_above_datafly;
        ] );
      ( "incognito",
        [
          Alcotest.test_case "frontier sound" `Quick test_incognito_frontier_sound;
          Alcotest.test_case "frontier nodes satisfy" `Quick
            test_incognito_frontier_nodes_all_satisfy;
          Alcotest.test_case "min height matches samarati" `Quick
            test_incognito_min_height_matches_samarati;
          Alcotest.test_case "pruning saves work" `Quick
            test_incognito_pruning_saves_work;
          Alcotest.test_case "infeasible k" `Quick test_incognito_infeasible_k;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "discernibility monotone" `Quick
            test_metrics_discernibility_monotone_in_k;
          Alcotest.test_case "average class size" `Quick test_metrics_average_class_size;
          Alcotest.test_case "ncp bounds" `Quick test_metrics_ncp_bounds;
          Alcotest.test_case "suppressed rows" `Quick test_metrics_suppressed_rows;
          Alcotest.test_case "generalization intensity" `Quick
            test_metrics_generalization_intensity;
        ] );
      ( "diversity",
        [
          Alcotest.test_case "l-diversity" `Quick test_l_diversity;
          Alcotest.test_case "t-closeness" `Quick test_t_closeness;
          Alcotest.test_case "t-closeness ordered" `Quick test_t_closeness_ordered;
          Alcotest.test_case "ordered vs tv" `Quick
            test_t_closeness_ordered_exceeds_tv_for_shifts;
          Alcotest.test_case "enforce l-diversity" `Quick test_enforce_l_diversity;
        ] );
      ( "front-end",
        [ Alcotest.test_case "mechanism" `Quick test_anonymizer_mechanism ] );
      ("properties", qcheck);
    ]
