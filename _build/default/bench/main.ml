(* The benchmark harness.

   Part 1 regenerates every experiment table (E1..E13 from DESIGN.md's
   index) — the paper-shaped results. Part 2 times each experiment's kernel
   operation with Bechamel (one Test.make per experiment).

   `dune exec bench/main.exe` runs both at Quick scale;
   `dune exec bench/main.exe -- --full` uses the EXPERIMENTS.md parameters;
   `dune exec bench/main.exe -- --only E7` restricts to one experiment;
   `--no-perf` / `--no-tables` skip a part. *)

open Bechamel
open Toolkit

let experiment_tables ~scale ~only () =
  let rng = Prob.Rng.create ~seed:20210621L () in
  let fmt = Format.std_formatter in
  List.iter
    (fun (e : Experiments.Registry.entry) ->
      match only with
      | Some id when String.lowercase_ascii id <> String.lowercase_ascii e.Experiments.Registry.id -> ()
      | _ ->
        let t0 = Unix.gettimeofday () in
        e.Experiments.Registry.print ~scale rng fmt;
        Format.fprintf fmt "[%s finished in %.1fs]@."
          e.Experiments.Registry.id
          (Unix.gettimeofday () -. t0))
    Experiments.Registry.all

let perf_benchmarks ~only () =
  let tests =
    Experiments.Registry.all
    |> List.filter (fun (e : Experiments.Registry.entry) ->
           match only with
           | Some id ->
             String.lowercase_ascii id = String.lowercase_ascii e.Experiments.Registry.id
           | None -> true)
    |> List.map (fun (e : Experiments.Registry.entry) ->
           Test.make
             ~name:(Printf.sprintf "%s-kernel" e.Experiments.Registry.id)
             (Staged.stage (fun () ->
                  (* A fresh deterministic generator per run keeps the work
                     identical across samples. *)
                  e.Experiments.Registry.kernel (Prob.Rng.create ~seed:1L ()))))
  in
  let grouped = Test.make_grouped ~name:"experiments" tests in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 1.0) ~kde:None ~stabilize:false ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let estimate =
          match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> nan
        in
        let r2 = Option.value ~default:nan (Analyze.OLS.r_square ols) in
        (name, estimate, r2) :: acc)
      results []
    |> List.sort compare
  in
  Format.printf "@.== Kernel timings (Bechamel, monotonic clock) ==@.";
  Format.printf "%-36s  %14s  %8s@." "kernel" "time/run" "r^2";
  Format.printf "%s@." (String.make 64 '-');
  List.iter
    (fun (name, ns, r2) ->
      let human =
        if Float.is_nan ns then "n/a"
        else if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
        else Printf.sprintf "%.0f ns" ns
      in
      Format.printf "%-36s  %14s  %8.4f@." name human r2)
    rows

let () =
  let full = ref false in
  let tables = ref true in
  let perf = ref true in
  let only = ref None in
  let args =
    [
      ("--full", Arg.Set full, "full-scale experiment parameters (slow)");
      ("--no-tables", Arg.Clear tables, "skip the experiment tables");
      ("--no-perf", Arg.Clear perf, "skip the Bechamel timings");
      ("--only", Arg.String (fun s -> only := Some s), "run a single experiment id");
    ]
  in
  Arg.parse args (fun _ -> ()) "bench/main.exe [--full] [--only E7] [--no-perf] [--no-tables]";
  let scale = if !full then Experiments.Common.Full else Experiments.Common.Quick in
  if !tables then experiment_tables ~scale ~only:!only ();
  if !perf then perf_benchmarks ~only:!only ()
