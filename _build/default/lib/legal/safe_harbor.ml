module Value = Dataset.Value
module Schema = Dataset.Schema
module Table = Dataset.Table
module Gvalue = Dataset.Gvalue
module Gtable = Dataset.Gtable

let deidentify table =
  let schema = Table.schema table in
  let attrs = Schema.attributes schema in
  let cell j v =
    let attr = attrs.(j) in
    match attr.Schema.role with
    | Schema.Identifier -> Gvalue.Any
    | Schema.Quasi_identifier | Schema.Sensitive | Schema.Insensitive -> (
      match v with
      | Value.String s when String.length s = 5 && attr.Schema.role = Schema.Quasi_identifier ->
        Gvalue.Prefix (s, 3)
      | Value.Date d ->
        let start = Value.{ year = d.year; month = 1; day = 1 } in
        let stop = Value.{ year = d.year; month = 12; day = 31 } in
        Gvalue.Int_range (Value.date_ordinal start, Value.date_ordinal stop)
      | other -> Gvalue.Exact other)
  in
  Gtable.make schema
    (Array.map (fun row -> Array.mapi cell row) (Table.rows table))

let release_table gtable =
  let schema = Gtable.schema gtable in
  let attrs = Schema.attributes schema in
  let raw j g =
    match g with
    | Gvalue.Exact v -> v
    | Gvalue.Any -> Value.Null
    | Gvalue.Prefix (s, k) ->
      Value.String (String.sub s 0 k ^ String.make (String.length s - k) '*')
    | Gvalue.Int_range (lo, hi) -> (
      match attrs.(j).Schema.kind with
      | Value.Kdate ->
        (* Render the range's year: ordinals encode year*372 + ... *)
        Value.String (string_of_int (((lo + hi) / 2) / 372))
      | _ -> Value.Int ((lo + hi) / 2))
    | Gvalue.Float_range (lo, hi) -> Value.Float ((lo +. hi) /. 2.)
    | Gvalue.Category { label; _ } -> Value.String label
  in
  let schema' =
    (* Re-kind date columns: they now carry year labels. *)
    Schema.make
      (Array.to_list
         (Array.map
            (fun (a : Schema.attribute) ->
              match a.Schema.kind with
              | Value.Kdate -> { a with Schema.kind = Value.Kstring }
              | _ -> a)
            attrs))
  in
  let coerce j v =
    match (Value.kind_of v, (Schema.attribute schema' j).Schema.kind) with
    | None, _ -> v
    | Some k, k' when k = k' -> v
    | Some _, _ -> Value.String (Value.to_string v)
  in
  Table.make schema'
    (Array.map
       (fun grow -> Array.mapi (fun j g -> coerce j (raw j g)) grow)
       (Gtable.rows gtable))
