let measurement ~id ~title ~statement ~expectation ~measured ~holds =
  { Pso.Theorems.id; title; statement; expectation; measured; holds }

let safe_harbor ~reidentification_rate ~population =
  let material = reidentification_rate > 0.001 in
  let premise =
    measurement ~id:"E8 (safe-harbor linkage)"
      ~title:"Residual linkage risk after safe-harbor redaction"
      ~statement:
        "Applying the 18-identifier redaction and re-running the \
         quasi-identifier linkage attack."
      ~expectation:"re-identification rate ~0 if the redaction sufficed"
      ~measured:
        [
          ("reidentification_rate", reidentification_rate);
          ("population", float_of_int population);
        ]
      ~holds:material
  in
  {
    Theorem.name = "Safe-harbor determination";
    about = Technology.Hipaa_safe_harbor;
    standard = "HIPAA de-identification (45 C.F.R. 164.514(b) safe harbor)";
    standing =
      (if material then Theorem.Fails_standard
       else Theorem.Necessary_condition_met);
    conclusion =
      (if material then
         Printf.sprintf
           "Safe-harbor redaction left a measured re-identification rate of \
            %.1f%% at population %d; a processor aware of this measurement \
            has 'actual knowledge that the remaining information could be \
            used to identify the individual', so the safe-harbor conditions \
            cannot be met for this release."
           (100. *. reidentification_rate)
           population
       else
         Printf.sprintf
           "At population %d the measured residual re-identification rate \
            (%.3f%%) is immaterial; the safe-harbor conditions are \
            satisfiable for this release, subject to the usual expert \
            review." population
           (100. *. reidentification_rate));
    premises =
      [ Theorem.Technical premise; Theorem.Legal_text Source.hipaa_privacy_rule ];
    falsifiable_by =
      "a linkage measurement on this release shape showing re-identification \
       at or below noise";
  }

let erasure ~server ~respected =
  let premise =
    measurement ~id:"erasure isolation check"
      ~title:"Erased record still influences answers?"
      ~statement:
        "After the erasure request, the erased record's full-tuple count was \
         compared against the count over the genuinely remaining records."
      ~expectation:"the two counts agree iff erasure was honoured"
      ~measured:[ ("respected", if respected then 1. else 0.) ]
      ~holds:(not respected)
  in
  {
    Theorem.name = "Erasure determination";
    about = Technology.Raw_release;
    standard = "GDPR right to erasure (Article 17)";
    standing =
      (if respected then Theorem.Necessary_condition_met
       else Theorem.Fails_standard);
    conclusion =
      (if respected then
         Printf.sprintf
           "Server %S no longer reflects the erased record in any answer \
            tested; the erasure obligation is met for the query surface \
            examined." server
       else
         Printf.sprintf
           "Server %S still singles out the erased record through its \
            answers: the personal data was not erased, only hidden from \
            bookkeeping." server);
    premises =
      [ Theorem.Technical premise; Theorem.Legal_text Source.gdpr_article_17 ];
    falsifiable_by =
      "an answer-level distinguisher (isolation of the erased record) on \
       the server after the erasure request";
  }

let title_13 ~confirmed_rate ~prior_estimate =
  let violated = confirmed_rate >= 10. *. prior_estimate in
  let premise =
    measurement ~id:"E10 (census reconstruction)"
      ~title:"Reconstruction-abetted re-identification of tabulations"
      ~statement:
        "Block-level marginal tables were reconstructed into microdata and \
         linked to an identified commercial database."
      ~expectation:"confirmed re-identification at or below the prior estimate"
      ~measured:
        [
          ("confirmed_rate", confirmed_rate);
          ("prior_estimate", prior_estimate);
          ("gap_factor", confirmed_rate /. Float.max prior_estimate 1e-12);
        ]
      ~holds:violated
  in
  {
    Theorem.name = "Title 13 determination";
    about = Technology.Raw_release;
    standard = "13 U.S.C. 9 (no publication whereby individual data can be identified)";
    standing =
      (if violated then Theorem.Fails_standard else Theorem.Undetermined);
    conclusion =
      (if violated then
         Printf.sprintf
           "The published tabulations admit confirmed re-identification of \
            %.1f%% of the population — %.0fx the prior risk estimate — i.e. \
            a publication whereby data furnished by particular individuals \
            can be identified."
           (100. *. confirmed_rate)
           (confirmed_rate /. Float.max prior_estimate 1e-12)
       else
         "The measured re-identification rate does not materially exceed \
          the prior estimate at this scale.");
    premises =
      [ Theorem.Technical premise; Theorem.Legal_text Source.title_13 ];
    falsifiable_by =
      "a reconstruction + linkage measurement on these tabulations with \
       confirmed re-identification near the prior estimate";
  }
