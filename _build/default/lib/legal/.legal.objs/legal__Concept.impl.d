lib/legal/concept.ml: List Source
