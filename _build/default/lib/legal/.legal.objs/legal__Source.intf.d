lib/legal/source.mli: Format
