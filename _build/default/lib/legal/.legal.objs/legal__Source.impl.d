lib/legal/source.ml: Format
