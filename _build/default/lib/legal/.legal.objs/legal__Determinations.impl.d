lib/legal/determinations.ml: Float Printf Pso Source Technology Theorem
