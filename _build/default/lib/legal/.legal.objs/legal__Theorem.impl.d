lib/legal/theorem.ml: Bridge Format List Printf Pso Source Technology
