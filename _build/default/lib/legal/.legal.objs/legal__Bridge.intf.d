lib/legal/bridge.mli: Concept Format Source
