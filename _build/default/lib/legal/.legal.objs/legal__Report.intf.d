lib/legal/report.mli: Format Prob Pso Theorem Wp29
