lib/legal/concept.mli: Source
