lib/legal/report.ml: Format List Printf Pso Technology Theorem Wp29
