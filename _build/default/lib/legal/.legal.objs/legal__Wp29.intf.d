lib/legal/wp29.mli: Format Pso Technology
