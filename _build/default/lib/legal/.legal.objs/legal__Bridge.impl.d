lib/legal/bridge.ml: Concept Format Source
