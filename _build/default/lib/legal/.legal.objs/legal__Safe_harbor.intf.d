lib/legal/safe_harbor.mli: Dataset
