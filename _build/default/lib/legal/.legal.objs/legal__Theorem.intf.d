lib/legal/theorem.mli: Bridge Format Pso Source Technology
