lib/legal/determinations.mli: Theorem
