lib/legal/technology.ml:
