lib/legal/safe_harbor.ml: Array Dataset String
