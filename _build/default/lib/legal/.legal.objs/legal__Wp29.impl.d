lib/legal/wp29.ml: Format List Pso String Technology
