lib/legal/technology.mli:
