(** Assembled legal-technical audit reports.

    A report bundles the measured technical verdicts, the legal theorems
    derived from them, and the WP29 comparison into one printable document —
    the artifact a data-protection officer (or the EDPB) would actually
    read. *)

type t = {
  generated_for : string;  (** free-form context line *)
  verdicts : Pso.Theorems.verdict list;
  theorems : Theorem.t list;
  comparison : Wp29.row list;
}

val build : ?context:string -> Prob.Rng.t -> Pso.Theorems.params -> t
(** Run the full theorem battery at the given parameters and derive every
    legal theorem the paper states (Legal Theorem 2.1 and Corollary 2.1 for
    the k-anonymity family, the differential-privacy determination, the
    count-release caveat, the raw-release anchor). *)

val of_verdicts : ?context:string -> Pso.Theorems.verdict list -> t
(** Same derivations from precomputed verdicts (matched by verdict [id]);
    verdicts for Theorems 2.5, 2.8, 2.9 and 2.10 must be present — raises
    [Invalid_argument] otherwise. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
