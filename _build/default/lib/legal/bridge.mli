(** Bridges: the modeling assumptions connecting mathematical definitions to
    legal concepts.

    Section 2.2's central design decision: predicate singling out (PSO) is a
    formulation {e weaker} than the GDPR's intended notion — the modeled
    attacker has no auxiliary information and faces i.i.d. data. The
    direction of that weakening is what gives the analysis legal force:

    - security against the weaker notion is {e necessary} for the legal
      standard, so a technology that fails PSO fails the GDPR notion
      ({!failure_transfers});
    - success against the weaker notion transfers {e no} positive
      conclusion ({!success_transfers} is [false] for this bridge).

    A bridge in the other direction (a definition {e stronger} than the
    legal concept) would transfer successes and not failures. Making the
    direction explicit keeps legal theorems honest about what they do and
    do not establish. *)

type direction =
  | Weaker_than_legal  (** math notion necessary for the legal standard *)
  | Stronger_than_legal  (** math notion sufficient for the legal standard *)

type t = {
  id : string;
  math_notion : string;
  legal_concept : Concept.t;
  direction : direction;
  justification : string;  (** the modeling argument, citing its source *)
  source : Source.t;
}

val failure_transfers : t -> bool
(** Failing the math notion implies failing the legal concept's
    requirement. *)

val success_transfers : t -> bool
(** Satisfying the math notion implies satisfying the legal requirement. *)

val pso_to_gdpr_singling_out : t
(** The paper's bridge: PSO-security is a weakened form of preventing
    GDPR singling out (attackers without auxiliary information, i.i.d.
    data). *)

val singling_out_to_anonymization : t
(** Recital 26: preventing singling out is necessary (not sufficient) for
    the GDPR anonymization standard. *)

val pp : Format.formatter -> t -> unit
