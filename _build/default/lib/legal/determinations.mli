(** Legal determinations beyond the GDPR singling-out analysis.

    The paper's Section 1 narrative carries two more legal hooks that this
    repository measures directly: the HIPAA safe-harbor de-identification
    method (whose residual risk the E8 linkage experiment quantifies) and
    the Title 13 census confidentiality mandate (whose violation the E10
    reconstruction experiment demonstrates). These determinations use the
    same machinery as the GDPR theorems — technical premise, quoted text,
    falsifiability — so they render in the same reports. *)

val safe_harbor : reidentification_rate:float -> population:int -> Theorem.t
(** The HIPAA safe-harbor method applied to a GIC-style table leaves the
    measured re-identification rate (E8). Standing is [Fails_standard] when
    the rate is materially positive (> 0.1%): the rule's own "no actual
    knowledge that the remaining information could be used to identify"
    clause is then unsatisfiable for an informed processor. Otherwise
    [Necessary_condition_met] (the redaction held at this scale). *)

val erasure : server:string -> respected:bool -> Theorem.t
(** GDPR Article 17: did a query server honour an erasure request? The
    premise is an isolation check (the erasure isolation check): if the
    erased record can still be singled out through the server's answers,
    the data was not erased. *)

val title_13 : confirmed_rate:float -> prior_estimate:float -> Theorem.t
(** Reconstruction-abetted re-identification of published tabulations at
    the measured confirmed rate (E10), versus the agency's prior risk
    estimate. [Fails_standard] when the measured rate exceeds the prior by
    10x or more — publications "whereby the data furnished by any
    particular individual can be identified". *)
