type risk = Risk | No_risk | May_not_be_risk

let risk_name = function
  | Risk -> "yes (risk)"
  | No_risk -> "no"
  | May_not_be_risk -> "may not"

let wp29_assessment = function
  | Technology.K_anonymity | Technology.L_diversity -> Some No_risk
  | Technology.T_closeness -> Some No_risk
  | Technology.Differential_privacy -> Some May_not_be_risk
  | Technology.Raw_release | Technology.Hipaa_safe_harbor
  | Technology.Count_release ->
    None

type row = {
  technology : Technology.t;
  wp29 : risk option;
  ours : risk;
  evidence : string;
  conflict : bool;
}

let comparison ~kanon ~dp =
  let make technology ours evidence =
    let wp29 = wp29_assessment technology in
    {
      technology;
      wp29;
      ours;
      evidence;
      conflict = (match wp29 with Some w -> w <> ours | None -> false);
    }
  in
  let kanon_risk =
    if kanon.Pso.Theorems.holds then Risk else May_not_be_risk
  in
  let dp_risk = if dp.Pso.Theorems.holds then No_risk else May_not_be_risk in
  [
    make Technology.K_anonymity kanon_risk "Theorem 2.10 (measured)";
    make Technology.L_diversity kanon_risk "Theorem 2.10 + footnote 3";
    make Technology.T_closeness kanon_risk "Theorem 2.10 + footnote 3";
    make Technology.Differential_privacy dp_risk "Theorem 2.9 (measured)";
  ]

let pp_table fmt rows =
  Format.fprintf fmt "%-22s  %-12s  %-12s  %-28s  %s@." "Technology"
    "WP29 (2014)" "This work" "Evidence" "Conflict";
  Format.fprintf fmt "%s@." (String.make 90 '-');
  List.iter
    (fun r ->
      Format.fprintf fmt "%-22s  %-12s  %-12s  %-28s  %s@."
        (Technology.name r.technology)
        (match r.wp29 with Some w -> risk_name w | None -> "-")
        (risk_name r.ours) r.evidence
        (if r.conflict then "CONFLICT" else ""))
    rows
