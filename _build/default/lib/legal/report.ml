type t = {
  generated_for : string;
  verdicts : Pso.Theorems.verdict list;
  theorems : Theorem.t list;
  comparison : Wp29.row list;
}

let find verdicts id =
  match
    List.find_opt (fun v -> v.Pso.Theorems.id = id) verdicts
  with
  | Some v -> v
  | None ->
    invalid_arg (Printf.sprintf "Report: missing verdict for %S" id)

let of_verdicts ?(context = "synthetic audit") verdicts =
  let count = find verdicts "Theorem 2.5" in
  let composed = find verdicts "Theorem 2.8" in
  let dp = find verdicts "Theorem 2.9" in
  let kanon = find verdicts "Theorem 2.10" in
  let kanon_theorems =
    List.concat_map
      (fun variant ->
        [
          Theorem.kanon_fails_gdpr ~variant kanon;
          Theorem.kanon_fails_anonymization ~variant kanon;
        ])
      [ Technology.K_anonymity; Technology.L_diversity; Technology.T_closeness ]
  in
  {
    generated_for = context;
    verdicts;
    theorems =
      Theorem.raw_release_fails
      :: (kanon_theorems
         @ [
             Theorem.dp_necessary_condition dp;
             Theorem.count_release_caveat count composed;
           ]);
    comparison = Wp29.comparison ~kanon ~dp;
  }

let build ?context rng params =
  of_verdicts ?context (Pso.Theorems.all ~params rng)

let pp fmt t =
  Format.fprintf fmt "=== Legal-technical audit: %s ===@.@." t.generated_for;
  Format.fprintf fmt "--- Technical verdicts (empirically checked) ---@.";
  List.iter (fun v -> Format.fprintf fmt "%a@." Pso.Theorems.pp v) t.verdicts;
  Format.fprintf fmt "--- Legal theorems ---@.";
  List.iter (fun th -> Format.fprintf fmt "%a@." Theorem.pp th) t.theorems;
  Format.fprintf fmt "--- Article 29 Working Party comparison (Section 2.4.3) ---@.";
  Wp29.pp_table fmt t.comparison;
  Format.fprintf fmt
    "@.Statements above are mathematically falsifiable; each legal theorem \
     lists the measurement that would refute it.@."

let to_string t = Format.asprintf "%a" pp t
