(** Legal sources: the statutes, regulations and opinions the paper cites,
    as structured, quotable objects. The quotes are the ones reproduced in
    the paper (Sections 1.2 and 2.1); keeping them in the code makes every
    derivation's textual basis inspectable. *)

type t = {
  id : string;  (** short handle, e.g. "GDPR-Rec26" *)
  title : string;
  jurisdiction : string;
  year : int;
  quote : string;  (** the operative passage *)
}

val gdpr_article_1 : t

val gdpr_article_4 : t
(** The definition of personal data: "any information relating to an
    identified or identifiable natural person". *)

val gdpr_article_17 : t
(** The right to erasure ("right to be forgotten") — the sibling
    legal-technical question the paper's discussion points to. *)

val gdpr_recital_26 : t
(** Anonymous data exemption + "all the means reasonably likely to be used,
    such as singling out". *)

val wp29_personal_data : t
(** Article 29 Working Party Opinion 04/2007 on the Concept of Personal
    Data — singling out as "the possibility to isolate some or all records
    which identify an individual in the dataset". *)

val wp29_anonymisation : t
(** Article 29 Working Party Opinion 05/2014 on Anonymisation Techniques —
    the opinion table our analysis contradicts. *)

val hipaa_privacy_rule : t

val ferpa : t

val title_13 : t
(** The US Census confidentiality mandate the 2010 reconstruction puts in
    question. *)

val all : t list

val pp : Format.formatter -> t -> unit
