type t = {
  id : string;
  title : string;
  jurisdiction : string;
  year : int;
  quote : string;
}

let gdpr_article_1 =
  {
    id = "GDPR-Art1";
    title = "General Data Protection Regulation, Article 1";
    jurisdiction = "EU";
    year = 2016;
    quote =
      "This Regulation lays down rules relating to the protection of natural \
       persons with regard to the processing of personal data and rules \
       relating to the free movement of personal data.";
  }

let gdpr_article_4 =
  {
    id = "GDPR-Art4";
    title = "General Data Protection Regulation, Article 4";
    jurisdiction = "EU";
    year = 2016;
    quote =
      "'Personal data' means any information relating to an identified or \
       identifiable natural person ('data subject'); an identifiable natural \
       person is one who can be identified, directly or indirectly.";
  }

let gdpr_recital_26 =
  {
    id = "GDPR-Rec26";
    title = "General Data Protection Regulation, Recital 26";
    jurisdiction = "EU";
    year = 2016;
    quote =
      "To determine whether a natural person is identifiable, account should \
       be taken of all the means reasonably likely to be used, such as \
       singling out, either by the controller or by another person to \
       identify the natural person directly or indirectly. [...] The \
       principles of data protection should therefore not apply to anonymous \
       information.";
  }

let gdpr_article_17 =
  {
    id = "GDPR-Art17";
    title = "General Data Protection Regulation, Article 17 (right to erasure)";
    jurisdiction = "EU";
    year = 2016;
    quote =
      "The data subject shall have the right to obtain from the controller \
       the erasure of personal data concerning him or her without undue \
       delay.";
  }

let wp29_personal_data =
  {
    id = "WP29-2007";
    title = "Article 29 Working Party Opinion 04/2007 on the Concept of Personal Data";
    jurisdiction = "EU";
    year = 2007;
    quote =
      "A name may itself not be necessary in all cases to identify an \
       individual. This may happen when other identifiers are used to single \
       someone out: the possibility to isolate some or all records which \
       identify an individual in the dataset.";
  }

let wp29_anonymisation =
  {
    id = "WP29-2014";
    title = "Article 29 Working Party Opinion 05/2014 on Anonymisation Techniques";
    jurisdiction = "EU";
    year = 2014;
    quote =
      "Asking 'Is singling out still a risk?' the Opinion answers 'no' for \
       k-anonymity and for l-diversity, and 'may not' for differential \
       privacy.";
  }

let hipaa_privacy_rule =
  {
    id = "HIPAA";
    title = "HIPAA Privacy Rule, 45 C.F.R. Parts 160/164";
    jurisdiction = "US";
    year = 2003;
    quote =
      "De-identified health information is unrestricted; the safe-harbor \
       method enumerates 18 identifiers to be redacted, and the processor \
       must have no actual knowledge that the remaining information could be \
       used to identify the individual.";
  }

let ferpa =
  {
    id = "FERPA";
    title = "Family Educational Rights and Privacy Act, 20 U.S.C. 1232g";
    jurisdiction = "US";
    year = 1974;
    quote =
      "Protects personally identifiable information in education records.";
  }

let title_13 =
  {
    id = "Title13";
    title = "13 U.S.C. 9 (Census confidentiality)";
    jurisdiction = "US";
    year = 1954;
    quote =
      "Prohibits any publication whereby the data furnished by any \
       particular establishment or individual under this title can be \
       identified.";
  }

let all =
  [
    gdpr_article_1;
    gdpr_article_4;
    gdpr_article_17;
    gdpr_recital_26;
    wp29_personal_data;
    wp29_anonymisation;
    hipaa_privacy_rule;
    ferpa;
    title_13;
  ]

let pp fmt t =
  Format.fprintf fmt "[%s] %s (%s, %d): \"%s\"" t.id t.title t.jurisdiction
    t.year t.quote
