type direction = Weaker_than_legal | Stronger_than_legal

type t = {
  id : string;
  math_notion : string;
  legal_concept : Concept.t;
  direction : direction;
  justification : string;
  source : Source.t;
}

let failure_transfers t = t.direction = Weaker_than_legal

let success_transfers t = t.direction = Stronger_than_legal

let pso_to_gdpr_singling_out =
  {
    id = "B1";
    math_notion = "security against predicate singling out (Definition 2.4)";
    legal_concept = Concept.Singling_out;
    direction = Weaker_than_legal;
    justification =
      "PSO weakens the GDPR notion in two deliberate ways: the attacker has \
       no auxiliary information, and records are drawn i.i.d. from a fixed \
       distribution. Preventing a weaker notion is necessary but potentially \
       insufficient for preventing the legal notion, so failures — and only \
       failures — transfer to the legal standard.";
    source = Source.wp29_personal_data;
  }

let singling_out_to_anonymization =
  {
    id = "B2";
    math_notion = "prevention of singling out";
    legal_concept = Concept.Anonymous_data;
    direction = Weaker_than_legal;
    justification =
      "Recital 26 lists singling out among the means reasonably likely to be \
       used to identify a person; data rendered anonymous must therefore \
       resist it. Other unenumerated means may also be required, so \
       preventing singling out is necessary but not sufficient for the \
       anonymization standard.";
    source = Source.gdpr_recital_26;
  }

let pp fmt t =
  Format.fprintf fmt "%s: %s %s %S (%s)" t.id t.math_notion
    (match t.direction with
    | Weaker_than_legal -> "is necessary for the legal concept"
    | Stronger_than_legal -> "is sufficient for the legal concept")
    (Concept.name t.legal_concept)
    t.source.Source.id
