(** The HIPAA safe-harbor de-identification method (Section 1.2).

    The privacy rule enumerates 18 identifiers to redact; for the
    demographic tables modeled here that means: direct identifiers removed,
    geographic detail coarsened to the first 3 ZIP digits, and dates reduced
    to years. The output is a generalized release — against which the
    linkage experiment (E8) measures how much re-identification risk the
    prescription actually removes. *)

val deidentify : Dataset.Table.t -> Dataset.Gtable.t
(** Applies the safe-harbor recipe by attribute role and kind: [Identifier]
    attributes are suppressed; string quasi-identifiers that look like ZIP
    codes (5 characters) keep a 3-character prefix; date attributes are
    generalized to their year; everything else is kept. *)

val release_table : Dataset.Gtable.t -> Dataset.Table.t
(** Flatten a safe-harbor release back to raw-valued form for linkage
    experiments: prefixes become the retained prefix (with ['*'] padding),
    ranges their midpoint date/int rendering, suppressed cells [Null]. *)
