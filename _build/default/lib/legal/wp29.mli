(** The Article 29 Working Party comparison (Section 2.4.3).

    The WP29 Opinion on Anonymisation Techniques answers "Is singling out
    still a risk?" with "no" for k-anonymity and l-diversity and "may not"
    for differential privacy. The paper's analysis reverses the k-anonymity
    answers — this module renders both columns side by side, which is the
    paper's only table-like artifact (Experiment E12). *)

type risk =
  | Risk  (** singling out remains a risk *)
  | No_risk
  | May_not_be_risk

val risk_name : risk -> string

val wp29_assessment : Technology.t -> risk option
(** The Working Party's published answer ([None] where the opinion does not
    assess the technology). *)

type row = {
  technology : Technology.t;
  wp29 : risk option;
  ours : risk;
  evidence : string;  (** which theorem/verdict drives our answer *)
  conflict : bool;
}

val comparison :
  kanon:Pso.Theorems.verdict ->
  dp:Pso.Theorems.verdict ->
  row list
(** Our column is derived from the supplied verdicts: the k-anonymity family
    is [Risk] when Theorem 2.10's check holds; differential privacy is
    [No_risk] (within the PSO model) when Theorem 2.9's check holds. *)

val pp_table : Format.formatter -> row list -> unit
