(** Legal concepts and their implication structure.

    The GDPR's architecture (Section 2.1): data escapes regulation iff it is
    anonymous; anonymity requires that the data subject not be identifiable;
    identifiability must consider "all means reasonably likely to be used,
    such as singling out". This module encodes that chain so derivations in
    {!Theorem} can walk it mechanically. *)

type t =
  | Singling_out  (** isolating records that identify an individual *)
  | Linkability  (** matching records to an identified source *)
  | Inference  (** deducing attributes of an individual *)
  | Identifiability  (** the person "can be identified, directly or indirectly" *)
  | Personal_data
  | Anonymous_data

val name : t -> string

val source : t -> Source.t
(** The text anchoring the concept. *)

val enables : t -> t list
(** Direct legal implications: e.g. [Singling_out] enables
    [Identifiability] (Recital 26), [Identifiability] makes data
    [Personal_data] (Article 4). [Anonymous_data] appears only as the
    negation target of [Personal_data]. *)

val enables_transitively : t -> t -> bool
(** Reflexive-transitive closure of {!enables}. *)

val anonymity_requires_preventing : t -> bool
(** Does rendering data anonymous require preventing this means of
    identification? True exactly for the means Recital 26 enumerates as
    "reasonably likely to be used" — singling out, and by WP29's reading
    also linkability and inference. *)
