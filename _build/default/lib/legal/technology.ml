type t =
  | Raw_release
  | Hipaa_safe_harbor
  | K_anonymity
  | L_diversity
  | T_closeness
  | Count_release
  | Differential_privacy

let name = function
  | Raw_release -> "raw release"
  | Hipaa_safe_harbor -> "HIPAA safe harbor"
  | K_anonymity -> "k-anonymity"
  | L_diversity -> "l-diversity"
  | T_closeness -> "t-closeness"
  | Count_release -> "count release"
  | Differential_privacy -> "differential privacy"

let all =
  [
    Raw_release;
    Hipaa_safe_harbor;
    K_anonymity;
    L_diversity;
    T_closeness;
    Count_release;
    Differential_privacy;
  ]

let kanon_family = function
  | K_anonymity | L_diversity | T_closeness -> true
  | Raw_release | Hipaa_safe_harbor | Count_release | Differential_privacy ->
    false
