(** The privacy technologies whose legal standing the paper analyzes. *)

type t =
  | Raw_release  (** publishing the data as-is *)
  | Hipaa_safe_harbor  (** redaction of enumerated identifiers *)
  | K_anonymity
  | L_diversity
  | T_closeness
  | Count_release  (** a single exact count (Theorem 2.5's M#q) *)
  | Differential_privacy

val name : t -> string

val all : t list

val kanon_family : t -> bool
(** k-anonymity or one of the variants the paper's footnote 3 extends the
    analysis to. *)
