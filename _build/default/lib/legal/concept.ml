type t =
  | Singling_out
  | Linkability
  | Inference
  | Identifiability
  | Personal_data
  | Anonymous_data

let name = function
  | Singling_out -> "singling out"
  | Linkability -> "linkability"
  | Inference -> "inference"
  | Identifiability -> "identifiability"
  | Personal_data -> "personal data"
  | Anonymous_data -> "anonymous data"

let source = function
  | Singling_out -> Source.gdpr_recital_26
  | Linkability | Inference -> Source.wp29_anonymisation
  | Identifiability -> Source.gdpr_article_4
  | Personal_data -> Source.gdpr_article_4
  | Anonymous_data -> Source.gdpr_recital_26

let enables = function
  | Singling_out -> [ Identifiability ]
  | Linkability -> [ Identifiability ]
  | Inference -> [ Identifiability ]
  | Identifiability -> [ Personal_data ]
  | Personal_data -> []
  | Anonymous_data -> []

let rec enables_transitively a b =
  a = b || List.exists (fun c -> enables_transitively c b) (enables a)

let anonymity_requires_preventing = function
  | Singling_out | Linkability | Inference -> true
  | Identifiability | Personal_data | Anonymous_data -> false
