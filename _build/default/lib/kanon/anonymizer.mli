(** Unified front-end over the k-anonymization algorithms, and their
    packaging as mechanisms for the PSO game. *)

type algorithm =
  | Mondrian  (** local recoding, data-dependent partitioning *)
  | Datafly  (** greedy full-domain generalization + outlier suppression *)
  | Samarati  (** minimal-height full-domain generalization *)
  | Incognito  (** full minimal-frontier enumeration, no suppression *)

type config = {
  algorithm : algorithm;
  k : int;
  scheme : Generalization.scheme;
      (** hierarchies; required for Datafly/Samarati, optional aid for
          Mondrian's categorical covers *)
  max_suppression : float;
  recoding : Mondrian.recoding;  (** honored by Mondrian only *)
}

val default : k:int -> scheme:Generalization.scheme -> config
(** Mondrian, member-level recoding, 5% suppression budget. *)

val anonymize : config -> Dataset.Table.t -> Dataset.Gtable.t

val is_k_anonymous : k:int -> Dataset.Gtable.t -> bool
(** Checks the invariant on the quasi-identifier columns of the release's
    schema (suppressed rows count as one big class). *)

val mechanism : config -> Query.Mechanism.t
(** The anonymizer as a mechanism [M : X^n → generalized release]. *)

val algorithm_name : algorithm -> string
