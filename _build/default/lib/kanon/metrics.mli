(** Information-loss metrics for anonymized releases.

    The paper notes that k-anonymizers "attempt to retain as much as
    possible information" — these metrics quantify that retention, and the
    E7 ablation uses them to show the attack succeeds {e because} information
    is retained (low loss ⇒ negligible-weight class predicates). *)

val discernibility : qis:string list -> Dataset.Gtable.t -> float
(** Discernibility metric (Bayardo–Agrawal): [Σ_classes |C|²], with fully
    suppressed rows charged [n] each. Lower is better. *)

val average_class_size : qis:string list -> Dataset.Gtable.t -> float
(** [n / #classes] over non-suppressed rows ([infinity] if everything is
    suppressed). *)

val ncp : domains:(string * float) list -> Dataset.Gtable.t -> float
(** Normalized certainty penalty, averaged over the cells of the listed
    attributes: each cell contributes its {!Dataset.Gvalue.span} fraction of
    the attribute's domain size. In [0, 1]; 0 means no generalization. *)

val suppressed_rows : Dataset.Gtable.t -> int
(** Rows whose every cell is [Any]. *)

val generalization_intensity : Dataset.Gtable.t -> float
(** Fraction of cells that are not [Exact] — a crude overall measure. *)
