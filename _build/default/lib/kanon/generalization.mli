(** Shared generalization machinery.

    A {e scheme} assigns a generalization hierarchy to each quasi-identifier.
    Full-domain recoding (used by Datafly and Samarati) applies one level per
    attribute uniformly; {!cover} computes the tightest single generalized
    value covering a set of raw values (used by Mondrian's local recoding). *)

type scheme = (string * Dataset.Hierarchy.t) list
(** Hierarchy per quasi-identifier attribute name. *)

val full_domain :
  Dataset.Schema.t -> scheme -> levels:(string * int) list -> Dataset.Table.t -> Dataset.Gtable.t
(** Recode every row: [Identifier] attributes are always fully suppressed;
    each scheme attribute is generalized to its level from [levels]
    (default level 0); all other attributes are kept exact. Raises
    [Invalid_argument] if [levels] names an attribute without a
    hierarchy. *)

val suppress_rows : Dataset.Gtable.t -> int array -> Dataset.Gtable.t
(** Replace the given rows by all-[Any] rows (outlier suppression). *)

val cover : ?hierarchy:Dataset.Hierarchy.t -> Dataset.Value.t list -> Dataset.Gvalue.t
(** Tightest covering generalized value for a non-empty list: equal values
    give [Exact]; same-length strings give their common [Prefix]; numeric
    values (ints, dates, floats) give a range; with a categorical hierarchy,
    the lowest common ancestor; otherwise [Any]. Raises [Invalid_argument]
    on an empty list. *)

val quasi_identifiers : Dataset.Schema.t -> string list
(** Shorthand for the schema's quasi-identifier attribute names. *)
