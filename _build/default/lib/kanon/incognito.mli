(** Incognito-style full-domain lattice enumeration (LeFevre–DeWitt–
    Ramakrishnan, SIGMOD 2005).

    Level vectors over the quasi-identifier hierarchies form a lattice;
    k-anonymity is {e monotone} along generalization (anything above a
    satisfying node satisfies too). Incognito's contribution over
    Samarati's height search is enumerating {e all minimal} satisfying
    nodes — the Pareto frontier of full-domain generalizations — visiting
    the lattice bottom-up and pruning everything that dominates a node
    already known to satisfy. The caller then picks among the frontier by
    an information-loss metric instead of by height alone. *)

type result = {
  release : Dataset.Gtable.t;  (** built from the chosen frontier node *)
  levels : (string * int) list;  (** the chosen node *)
  frontier : (string * int) list list;  (** all minimal satisfying nodes *)
  tested : int;  (** lattice nodes actually evaluated (pruning at work) *)
}

val anonymize :
  scheme:Generalization.scheme -> k:int -> Dataset.Table.t -> result
(** Strict k-anonymity (no suppression). The chosen node minimizes the
    discernibility metric over the frontier. Exponential in the number of
    quasi-identifiers, like the lattice itself; intended for the handful
    of QIs of demographic tables. Raises [Invalid_argument] on [k < 1] or
    a quasi-identifier missing from [scheme]. *)

val dominates : int list -> int list -> bool
(** Coordinatewise [>=] (exposed for tests). *)
