module Table = Dataset.Table
module Gtable = Dataset.Gtable
module Schema = Dataset.Schema

let live_classes ~qis gtable =
  Gtable.classes_on gtable qis
  |> List.filter (fun c ->
         not (Array.for_all Dataset.Gvalue.is_suppressed c.Gtable.rep))

let class_sensitive_values ~sensitive table c =
  let j = Schema.index_of (Table.schema table) sensitive in
  Array.to_list (Array.map (fun i -> (Table.rows table).(i).(j)) c.Gtable.members)

let l_diversity ~qis ~sensitive gtable table =
  let classes = live_classes ~qis gtable in
  if classes = [] then 0
  else
    List.fold_left
      (fun acc c ->
        let distinct =
          List.sort_uniq Dataset.Value.compare
            (class_sensitive_values ~sensitive table c)
        in
        min acc (List.length distinct))
      max_int classes

let distribution_of values =
  Prob.Distribution.of_weights (List.map (fun v -> (v, 1.)) values)

let t_closeness ~qis ~sensitive gtable table =
  let classes = live_classes ~qis gtable in
  if classes = [] then 0.
  else begin
    let j = Schema.index_of (Table.schema table) sensitive in
    let global =
      distribution_of
        (Array.to_list (Array.map (fun row -> row.(j)) (Table.rows table)))
    in
    List.fold_left
      (fun acc c ->
        let local = distribution_of (class_sensitive_values ~sensitive table c) in
        Float.max acc (Prob.Distribution.total_variation local global))
      0. classes
  end

let t_closeness_ordered ~qis ~sensitive gtable table =
  let j = Schema.index_of (Table.schema table) sensitive in
  let domain =
    Array.to_list (Array.map (fun row -> row.(j)) (Table.rows table))
    |> List.sort_uniq Dataset.Value.compare
  in
  let m = List.length domain in
  if m < 2 then invalid_arg "Diversity.t_closeness_ordered: domain too small";
  let pmf values =
    let n = float_of_int (List.length values) in
    List.map
      (fun v ->
        float_of_int
          (List.length (List.filter (Dataset.Value.equal v) values))
        /. n)
      domain
  in
  let global =
    pmf (Array.to_list (Array.map (fun row -> row.(j)) (Table.rows table)))
  in
  (* EMD over the ordered line: mean absolute prefix-sum difference. *)
  let emd p q =
    let acc = ref 0. and prefix = ref 0. in
    List.iter2
      (fun a b ->
        prefix := !prefix +. (a -. b);
        acc := !acc +. Float.abs !prefix)
      p q;
    !acc /. float_of_int (m - 1)
  in
  let classes = live_classes ~qis gtable in
  if classes = [] then 0.
  else
    List.fold_left
      (fun acc c ->
        let local = pmf (class_sensitive_values ~sensitive table c) in
        Float.max acc (emd local global))
      0. classes

let enforce_l_diversity ~qis ~sensitive ~l gtable table =
  let offenders =
    live_classes ~qis gtable
    |> List.filter (fun c ->
           let distinct =
             List.sort_uniq Dataset.Value.compare
               (class_sensitive_values ~sensitive table c)
           in
           List.length distinct < l)
  in
  let rows = Array.concat (List.map (fun c -> c.Gtable.members) offenders) in
  Generalization.suppress_rows gtable rows
