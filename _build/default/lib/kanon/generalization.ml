module Value = Dataset.Value
module Schema = Dataset.Schema
module Table = Dataset.Table
module Gvalue = Dataset.Gvalue
module Gtable = Dataset.Gtable
module Hierarchy = Dataset.Hierarchy

type scheme = (string * Hierarchy.t) list

let quasi_identifiers schema = Schema.with_role schema Schema.Quasi_identifier

let full_domain schema scheme ~levels table =
  List.iter
    (fun (name, _) ->
      if not (List.mem_assoc name scheme) then
        invalid_arg
          (Printf.sprintf "Generalization.full_domain: no hierarchy for %S" name))
    levels;
  let attrs = Schema.attributes schema in
  let plan =
    Array.map
      (fun a ->
        if a.Schema.role = Schema.Identifier then `Suppress
        else
          match List.assoc_opt a.Schema.name scheme with
          | None -> `Keep
          | Some h ->
            let level =
              Option.value ~default:0 (List.assoc_opt a.Schema.name levels)
            in
            if level = 0 then `Keep else `Generalize (h, level))
      attrs
  in
  let grows =
    Array.map
      (fun row ->
        Array.mapi
          (fun j v ->
            match plan.(j) with
            | `Suppress -> Gvalue.Any
            | `Keep -> Gvalue.of_value v
            | `Generalize (h, level) -> Hierarchy.apply h ~level v)
          row)
      (Table.rows table)
  in
  Gtable.make schema grows

let suppress_rows gtable indices =
  let arity = Schema.arity (Gtable.schema gtable) in
  let rows = Array.map Array.copy (Gtable.rows gtable) in
  Array.iter
    (fun i -> rows.(i) <- Array.make arity Gvalue.Any)
    indices;
  Gtable.make (Gtable.schema gtable) rows

let numeric_view values =
  let floats = List.filter_map Value.to_float values in
  if List.length floats = List.length values then Some floats else None

let common_prefix_length a b =
  let n = min (String.length a) (String.length b) in
  let rec loop i = if i < n && a.[i] = b.[i] then loop (i + 1) else i in
  loop 0

let cover ?hierarchy values =
  match values with
  | [] -> invalid_arg "Generalization.cover: empty list"
  | first :: rest ->
    if List.for_all (Value.equal first) rest then Gvalue.Exact first
    else begin
      let strings =
        List.filter_map
          (function Value.String s -> Some s | _ -> None)
          values
      in
      let all_strings = List.length strings = List.length values in
      match hierarchy with
      | Some h when Hierarchy.leaves h <> [] ->
        (* Climb the taxonomy until one category covers every value. *)
        let rec climb level =
          if level >= Hierarchy.height h - 1 then Gvalue.Any
          else begin
            let g = Hierarchy.apply h ~level first in
            if List.for_all (Gvalue.matches g) rest then g else climb (level + 1)
          end
        in
        climb 1
      | Some _ | None ->
        if all_strings then begin
          match strings with
          | [] -> Gvalue.Any
          | s0 :: _ ->
            let same_length =
              List.for_all (fun s -> String.length s = String.length s0) strings
            in
            if not same_length then Gvalue.Any
            else begin
              let k =
                List.fold_left
                  (fun acc s -> min acc (common_prefix_length s0 s))
                  (String.length s0) strings
              in
              if k = 0 then Gvalue.Any else Gvalue.Prefix (s0, k)
            end
        end
        else begin
          match numeric_view values with
          | None -> Gvalue.Any
          | Some floats ->
            let lo = List.fold_left Float.min (List.hd floats) floats in
            let hi = List.fold_left Float.max (List.hd floats) floats in
            let is_integral =
              List.for_all
                (fun v ->
                  match v with
                  | Value.Int _ | Value.Date _ -> true
                  | Value.Float _ | Value.String _ | Value.Bool _ | Value.Null ->
                    false)
                values
            in
            if is_integral then
              Gvalue.Int_range (int_of_float lo, int_of_float hi)
            else Gvalue.Float_range (lo, hi +. 1e-9)
        end
    end
