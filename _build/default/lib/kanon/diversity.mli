(** l-diversity and t-closeness checks.

    Footnote 3 of the paper: the PSO analysis of k-anonymity "also holds for
    variants such as l-diversity and t-closeness" — these checks let the E7
    experiment confirm the attacked releases actually satisfy the stronger
    variants too. *)

val l_diversity :
  qis:string list -> sensitive:string -> Dataset.Gtable.t -> Dataset.Table.t -> int
(** The largest [l] such that every (non-suppressed) equivalence class
    contains at least [l] distinct sensitive values; [0] if the release has
    no classes. The source table supplies the raw sensitive values. *)

val t_closeness :
  qis:string list -> sensitive:string -> Dataset.Gtable.t -> Dataset.Table.t -> float
(** The smallest [t] the release satisfies: the maximum, over classes, of the
    total-variation distance between the class's sensitive-value distribution
    and the whole table's (Li et al.'s equal-distance ground metric —
    appropriate for nominal attributes). *)

val t_closeness_ordered :
  qis:string list -> sensitive:string -> Dataset.Gtable.t -> Dataset.Table.t -> float
(** The same with Li et al.'s {e ordered-distance} ground metric: the earth
    mover's distance over the sorted sensitive domain,
    [1/(m−1) · Σᵢ |Σ_{j≤i} (p_j − q_j)|]. For numeric sensitive attributes
    (salary, age) this penalizes a class concentrated at one end of the
    scale, which total variation understates. Raises [Invalid_argument] if
    the sensitive domain has fewer than 2 values. *)

val enforce_l_diversity :
  qis:string list -> sensitive:string -> l:int -> Dataset.Gtable.t -> Dataset.Table.t -> Dataset.Gtable.t
(** Suppress every class with fewer than [l] distinct sensitive values —
    the simplest way to upgrade a k-anonymous release to an l-diverse one. *)
