module Table = Dataset.Table
module Gtable = Dataset.Gtable
module Hierarchy = Dataset.Hierarchy

type result = {
  release : Dataset.Gtable.t;
  levels : (string * int) list;
  frontier : (string * int) list list;
  tested : int;
}

let dominates a b = List.for_all2 (fun x y -> x >= y) a b

(* All level vectors within bounds of total height h (same enumeration as
   Samarati's, local to keep the modules independent). *)
let vectors_at_height bounds height =
  let rec go bounds height =
    match bounds with
    | [] -> if height = 0 then [ [] ] else []
    | b :: rest ->
      List.concat_map
        (fun l -> List.map (fun tail -> l :: tail) (go rest (height - l)))
        (List.init (min b height + 1) Fun.id)
  in
  go bounds height

let anonymize ~scheme ~k table =
  if k < 1 then invalid_arg "Incognito.anonymize: k must be >= 1";
  let schema = Table.schema table in
  let qis = Generalization.quasi_identifiers schema in
  let hierarchies =
    List.map
      (fun qi ->
        match List.assoc_opt qi scheme with
        | Some h -> h
        | None ->
          invalid_arg (Printf.sprintf "Incognito.anonymize: no hierarchy for %S" qi))
      qis
  in
  let bounds = List.map (fun h -> Hierarchy.height h - 1) hierarchies in
  let max_height = List.fold_left ( + ) 0 bounds in
  let tested = ref 0 in
  let satisfies node =
    incr tested;
    let levels = List.combine qis node in
    let release = Generalization.full_domain schema scheme ~levels table in
    Gtable.min_class_size_on release qis >= k
  in
  (* Bottom-up by total height; skip nodes dominating a known-satisfying
     node (they satisfy by monotonicity and are not minimal). *)
  let frontier = ref [] in
  for h = 0 to max_height do
    List.iter
      (fun node ->
        let dominated = List.exists (fun m -> dominates node m) !frontier in
        if (not dominated) && satisfies node then frontier := node :: !frontier)
      (vectors_at_height bounds h)
  done;
  let frontier_nodes = List.rev !frontier in
  (match frontier_nodes with
  | [] ->
    (* The all-Any top always yields one class of size n; only k > n can
       make the lattice infeasible. *)
    invalid_arg "Incognito.anonymize: no satisfying node (k > n?)"
  | _ -> ());
  (* Pick the frontier node minimizing discernibility on this data. *)
  let score node =
    let levels = List.combine qis node in
    let release = Generalization.full_domain schema scheme ~levels table in
    (Metrics.discernibility ~qis release, release, levels)
  in
  let best =
    List.fold_left
      (fun acc node ->
        let (s, _, _) as candidate = score node in
        match acc with
        | Some ((s', _, _) as best) -> Some (if s < s' then candidate else best)
        | None -> Some candidate)
      None frontier_nodes
  in
  match best with
  | Some (_, release, levels) ->
    {
      release;
      levels;
      frontier = List.map (fun node -> List.combine qis node) frontier_nodes;
      tested = !tested;
    }
  | None -> assert false
