(** Datafly-style greedy full-domain generalization (Sweeney 2002).

    Repeatedly generalize (one hierarchy level at a time) the
    quasi-identifier with the most distinct generalized values, until the
    number of rows in undersized equivalence classes falls within the
    suppression budget; then suppress those outlier rows entirely. *)

type result = {
  release : Dataset.Gtable.t;
  levels : (string * int) list;  (** final generalization level per QI *)
  suppressed : int;  (** rows replaced by all-[Any] *)
}

val anonymize :
  scheme:Generalization.scheme ->
  k:int ->
  ?max_suppression:float ->
  Dataset.Table.t ->
  result
(** [max_suppression] is the tolerated fraction of suppressed rows (default
    [0.05]). Every quasi-identifier must appear in [scheme]. Raises
    [Invalid_argument] on bad parameters; the algorithm always terminates
    because every hierarchy tops out at full suppression. *)
