(** Mondrian multidimensional k-anonymity (LeFevre–DeWitt–Ramakrishnan,
    ICDE 2006).

    Greedy top-down partitioning: recursively split the row set on the
    quasi-identifier with the widest normalized span, at the median, as long
    as both sides keep at least [k] rows; each final partition becomes one
    equivalence class, locally recoded to the tightest covering generalized
    values. This is the "typical implementation trying to optimize
    information content" of Theorem 2.10 — precisely the behaviour that
    keeps class predicates' weights negligible and enables the PSO attack. *)

type recoding =
  | Member_level
      (** non-quasi-identifier attributes are released exactly, per row —
          the information-maximizing style Cohen's attack exploits *)
  | Class_level
      (** every non-identifier attribute is generalized to the tightest
          cover of its class's values — the style of the paper's toy
          example ("Disease → PULM"), attacked by Theorem 2.10's proof *)

val anonymize :
  ?hierarchies:Generalization.scheme ->
  ?recoding:recoding ->
  k:int ->
  Dataset.Table.t ->
  Dataset.Gtable.t
(** Quasi-identifiers are taken from the schema roles; [Identifier]
    attributes are fully suppressed; other attributes are treated per
    [recoding] (default [Member_level]). Categorical quasi-identifiers
    split on their sorted distinct values. Raises [Invalid_argument] if
    [k < 1] or the table has fewer than [k] rows. *)
