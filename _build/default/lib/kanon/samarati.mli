(** Samarati's lattice search for minimal full-domain generalization
    (Samarati 2001; the original k-anonymity algorithm family with
    Samarati–Sweeney 1998, cited by the paper).

    Level vectors over the quasi-identifier hierarchies form a lattice
    ordered coordinatewise; the total height [Σ levels] is monotone in
    utility loss. Binary-search the minimum height at which some vector
    yields k-anonymity within the suppression budget, then return a vector
    at that height (fewest suppressed rows as tie-break). *)

type result = {
  release : Dataset.Gtable.t;
  levels : (string * int) list;
  suppressed : int;
  height : int;  (** total generalization height of the chosen vector *)
}

val anonymize :
  scheme:Generalization.scheme ->
  k:int ->
  ?max_suppression:float ->
  Dataset.Table.t ->
  result
(** Exhaustive at each height over all level vectors (exponential in the
    number of quasi-identifiers — intended for the handful of QIs typical of
    demographic tables). Parameters as in {!Datafly.anonymize}. *)
