module Table = Dataset.Table
module Gtable = Dataset.Gtable
module Hierarchy = Dataset.Hierarchy

type result = {
  release : Dataset.Gtable.t;
  levels : (string * int) list;
  suppressed : int;
  height : int;
}

(* All level vectors of total [height] within per-coordinate bounds. *)
let vectors_at_height bounds height =
  let rec go bounds height =
    match bounds with
    | [] -> if height = 0 then [ [] ] else []
    | b :: rest ->
      List.concat_map
        (fun l -> List.map (fun tail -> l :: tail) (go rest (height - l)))
        (List.init (min b height + 1) Fun.id)
  in
  go bounds height

let anonymize ~scheme ~k ?(max_suppression = 0.05) table =
  if k < 1 then invalid_arg "Samarati.anonymize: k must be >= 1";
  if max_suppression < 0. || max_suppression > 1. then
    invalid_arg "Samarati.anonymize: max_suppression";
  let schema = Table.schema table in
  let qis = Generalization.quasi_identifiers schema in
  let hierarchies =
    List.map
      (fun qi ->
        match List.assoc_opt qi scheme with
        | Some h -> h
        | None ->
          invalid_arg (Printf.sprintf "Samarati.anonymize: no hierarchy for %S" qi))
      qis
  in
  let bounds = List.map (fun h -> Hierarchy.height h - 1) hierarchies in
  let max_height = List.fold_left ( + ) 0 bounds in
  let n = Table.nrows table in
  let budget = int_of_float (Float.floor (max_suppression *. float_of_int n)) in
  (* Evaluate one level vector: Some (rows to suppress) if within budget. *)
  let evaluate levels_list =
    let levels = List.combine qis levels_list in
    let release = Generalization.full_domain schema scheme ~levels table in
    let undersized =
      Gtable.classes_on release qis
      |> List.filter (fun c -> Array.length c.Gtable.members < k)
    in
    let rows =
      List.fold_left (fun acc c -> acc + Array.length c.Gtable.members) 0 undersized
    in
    if rows <= budget then
      Some
        ( release,
          levels,
          rows,
          Array.concat (List.map (fun c -> c.Gtable.members) undersized) )
    else None
  in
  let try_height height =
    vectors_at_height bounds height
    |> List.filter_map evaluate
    |> List.sort (fun (_, _, a, _) (_, _, b, _) -> Int.compare a b)
    |> function
    | [] -> None
    | best :: _ -> Some best
  in
  (* Binary search the minimal feasible height (feasibility is monotone for
     the best-vector-at-height criterion in practice; fall back to a linear
     scan from the found point to stay exact). *)
  let rec first_feasible h =
    if h > max_height then
      invalid_arg "Samarati.anonymize: infeasible even at full suppression"
    else
      match try_height h with
      | Some best -> (h, best)
      | None -> first_feasible (h + 1)
  in
  let height, (release, levels, suppressed, to_suppress) = first_feasible 0 in
  {
    release = Generalization.suppress_rows release to_suppress;
    levels;
    suppressed;
    height;
  }
