lib/kanon/incognito.mli: Dataset Generalization
