lib/kanon/datafly.mli: Dataset Generalization
