lib/kanon/generalization.ml: Array Dataset Float List Option Printf String
