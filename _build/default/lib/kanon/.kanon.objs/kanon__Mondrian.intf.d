lib/kanon/mondrian.mli: Dataset Generalization
