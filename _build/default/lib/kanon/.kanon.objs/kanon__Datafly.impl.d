lib/kanon/datafly.ml: Array Dataset Float Generalization Hashtbl Int List Printf
