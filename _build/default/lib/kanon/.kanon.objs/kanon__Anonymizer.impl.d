lib/kanon/anonymizer.ml: Array Datafly Dataset Generalization Incognito List Mondrian Printf Query Samarati
