lib/kanon/metrics.ml: Array Dataset List
