lib/kanon/generalization.mli: Dataset
