lib/kanon/metrics.mli: Dataset
