lib/kanon/mondrian.ml: Array Dataset Float Fun Generalization List
