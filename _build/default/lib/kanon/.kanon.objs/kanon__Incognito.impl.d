lib/kanon/incognito.ml: Dataset Fun Generalization List Metrics Printf
