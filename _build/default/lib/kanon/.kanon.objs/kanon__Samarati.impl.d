lib/kanon/samarati.ml: Array Dataset Float Fun Generalization Int List Printf
