lib/kanon/diversity.mli: Dataset
