lib/kanon/anonymizer.mli: Dataset Generalization Mondrian Query
