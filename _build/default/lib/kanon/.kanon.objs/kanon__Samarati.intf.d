lib/kanon/samarati.mli: Dataset Generalization
