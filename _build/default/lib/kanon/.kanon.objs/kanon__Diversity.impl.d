lib/kanon/diversity.ml: Array Dataset Float Generalization List Prob
