module Schema = Dataset.Schema
module Gvalue = Dataset.Gvalue
module Gtable = Dataset.Gtable

let is_suppressed_row grow = Array.for_all Gvalue.is_suppressed grow

let suppressed_rows gtable =
  Array.fold_left
    (fun acc grow -> if is_suppressed_row grow then acc + 1 else acc)
    0 (Gtable.rows gtable)

let discernibility ~qis gtable =
  let n = Gtable.nrows gtable in
  let classes = Gtable.classes_on gtable qis in
  List.fold_left
    (fun acc c ->
      let size = Array.length c.Gtable.members in
      if is_suppressed_row c.Gtable.rep then acc +. (float_of_int size *. float_of_int n)
      else acc +. (float_of_int size *. float_of_int size))
    0. classes

let average_class_size ~qis gtable =
  let classes =
    Gtable.classes_on gtable qis
    |> List.filter (fun c -> not (is_suppressed_row c.Gtable.rep))
  in
  let rows =
    List.fold_left (fun acc c -> acc + Array.length c.Gtable.members) 0 classes
  in
  if classes = [] then infinity
  else float_of_int rows /. float_of_int (List.length classes)

let ncp ~domains gtable =
  let schema = Gtable.schema gtable in
  let columns =
    List.map (fun (name, size) -> (Schema.index_of schema name, size)) domains
  in
  let total = ref 0. in
  let cells = ref 0 in
  Array.iter
    (fun grow ->
      List.iter
        (fun (j, domain_size) ->
          total := !total +. Gvalue.span grow.(j) ~domain_size;
          incr cells)
        columns)
    (Gtable.rows gtable);
  if !cells = 0 then 0. else !total /. float_of_int !cells

let generalization_intensity gtable =
  let total = ref 0 in
  let coarse = ref 0 in
  Array.iter
    (fun grow ->
      Array.iter
        (fun g ->
          incr total;
          match g with Gvalue.Exact _ -> () | _ -> incr coarse)
        grow)
    (Gtable.rows gtable);
  if !total = 0 then 0. else float_of_int !coarse /. float_of_int !total
