(** Randomized response (Warner 1965): the oldest differentially private
    mechanism. Each respondent reports their true bit with probability
    [e^ε / (e^ε + 1)] and the flipped bit otherwise; the aggregate is
    debiased. Local DP: the curator never holds true values. *)

val respond : Prob.Rng.t -> epsilon:float -> bool -> bool
(** One ε-DP response. Raises [Invalid_argument] if [epsilon <= 0]. *)

val survey : Prob.Rng.t -> epsilon:float -> bool array -> bool array
(** Independent responses for a population. *)

val estimate : epsilon:float -> bool array -> float
(** Unbiased estimate of the number of true bits from responses. *)

val flip_probability : epsilon:float -> float
(** Probability that a response is a lie: [1 / (e^ε + 1)]. *)
