(** AboveThreshold / the sparse-vector technique.

    Answers a stream of sensitivity-1 queries against a noisy threshold,
    paying privacy budget only for the (at most [max_hits]) queries reported
    above threshold. A standard example of how interactive DP mechanisms
    bound the "too many questions" half of the Fundamental Law. *)

type t

val create : Prob.Rng.t -> epsilon:float -> threshold:float -> max_hits:int -> t
(** Raises [Invalid_argument] if [epsilon <= 0] or [max_hits <= 0]. *)

exception Budget_exhausted
(** Raised by {!ask} after [max_hits] above-threshold answers. *)

val ask : t -> float -> bool
(** [ask t value] is [true] when the noisy value clears the noisy
    threshold. *)

val hits : t -> int
(** Above-threshold answers delivered so far. *)

val asked : t -> int
