let check_q q = if q <= 0. || q > 1. then invalid_arg "Dp.Subsample: q in (0,1]"

let amplified_epsilon ~q ~epsilon =
  check_q q;
  if epsilon <= 0. then invalid_arg "Dp.Subsample: epsilon";
  Float.log (1. +. (q *. (Float.exp epsilon -. 1.)))

let required_epsilon ~q ~target =
  check_q q;
  if target <= 0. then invalid_arg "Dp.Subsample: target";
  Float.log (1. +. ((Float.exp target -. 1.) /. q))

let subsample rng ~q table =
  check_q q;
  let kept =
    List.init (Dataset.Table.nrows table) Fun.id
    |> List.filter (fun _ -> Prob.Sampler.bernoulli rng ~p:q)
    |> Array.of_list
  in
  Dataset.Table.select table kept

let mechanism ~q base =
  check_q q;
  {
    Query.Mechanism.name = Printf.sprintf "subsample[q=%g] . %s" q base.Query.Mechanism.name;
    run = (fun rng table -> base.Query.Mechanism.run rng (subsample rng ~q table));
  }
