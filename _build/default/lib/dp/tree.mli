(** The hierarchical (binary-tree) mechanism for range counts.

    The Fundamental Law says accurate answers to {e many} queries destroy
    privacy; this mechanism shows how far careful noise placement stretches
    a fixed budget. Over an ordered domain of m cells it perturbs the full
    dyadic tree of interval counts once (ε split across the ~log m levels);
    any of the m(m+1)/2 range queries is then answered from at most
    2·log m noisy nodes, for per-query error O((log m)^{1.5}/ε) — versus
    O(√m/ε) when summing per-cell noisy counts, and versus a fresh budget
    per query for the naive interactive approach. *)

type t

val build : Prob.Rng.t -> epsilon:float -> int array -> t
(** [build rng ~epsilon histogram] perturbs the dyadic tree over the given
    per-cell counts. The whole structure is ε-DP (each record appears in
    one node per level; the budget is split evenly across levels). Raises
    [Invalid_argument] if [epsilon <= 0] or the histogram is empty. *)

val cells : t -> int

val range : t -> lo:int -> hi:int -> float
(** Noisy count of the inclusive cell range [lo..hi], assembled from the
    canonical dyadic cover. Raises [Invalid_argument] on an invalid
    range. *)

val total : t -> float
(** The root's noisy count. *)

val flat_range : Prob.Rng.t -> epsilon:float -> int array -> lo:int -> hi:int -> float
(** Baseline for comparison: per-cell Laplace noise at the same total ε,
    summed over the range — error grows with the range width. *)
