(** Report-noisy-max: ε-DP selection of the largest of a set of
    sensitivity-1 counts by adding independent Laplace(2/ε) noise to each
    and reporting only the argmax (not the values). A workhorse for "which
    category is most common" questions and a cheaper alternative to the
    exponential mechanism for count utilities. *)

val select :
  Prob.Rng.t -> epsilon:float -> Dataset.Table.t -> Query.Predicate.t array -> int
(** Index of the noisy-max count among the candidate predicates. Raises
    [Invalid_argument] if [epsilon <= 0] or the array is empty. *)

val select_values : Prob.Rng.t -> epsilon:float -> float array -> int
(** The same on precomputed sensitivity-1 values. *)
