type t = {
  m : int;  (* number of leaf cells (padded to a power of two internally) *)
  size : int;  (* padded size *)
  nodes : float array;  (* 1-indexed heap layout; nodes.(1) is the root *)
}

let build rng ~epsilon histogram =
  if epsilon <= 0. then invalid_arg "Dp.Tree.build: epsilon";
  let m = Array.length histogram in
  if m = 0 then invalid_arg "Dp.Tree.build: empty histogram";
  let size =
    let rec pow2 s = if s >= m then s else pow2 (2 * s) in
    pow2 1
  in
  let levels =
    let rec count s acc = if s = 1 then acc else count (s / 2) (acc + 1) in
    count size 1
  in
  let scale = float_of_int levels /. epsilon in
  let nodes = Array.make (2 * size) 0. in
  (* Exact leaf values, then exact internal sums, then noise every node. *)
  for i = 0 to size - 1 do
    nodes.(size + i) <- (if i < m then float_of_int histogram.(i) else 0.)
  done;
  for i = size - 1 downto 1 do
    nodes.(i) <- nodes.(2 * i) +. nodes.((2 * i) + 1)
  done;
  for i = 1 to (2 * size) - 1 do
    nodes.(i) <- nodes.(i) +. Prob.Sampler.laplace rng ~scale
  done;
  { m; size; nodes }

let cells t = t.m

let total t = t.nodes.(1)

(* Canonical dyadic cover: standard segment-tree query. *)
let range t ~lo ~hi =
  if lo < 0 || hi >= t.m || lo > hi then invalid_arg "Dp.Tree.range";
  let acc = ref 0. in
  let l = ref (lo + t.size) and r = ref (hi + t.size + 1) in
  while !l < !r do
    if !l land 1 = 1 then begin
      acc := !acc +. t.nodes.(!l);
      incr l
    end;
    if !r land 1 = 1 then begin
      decr r;
      acc := !acc +. t.nodes.(!r)
    end;
    l := !l / 2;
    r := !r / 2
  done;
  !acc

let flat_range rng ~epsilon histogram ~lo ~hi =
  if epsilon <= 0. then invalid_arg "Dp.Tree.flat_range: epsilon";
  if lo < 0 || hi >= Array.length histogram || lo > hi then
    invalid_arg "Dp.Tree.flat_range";
  let acc = ref 0. in
  for i = lo to hi do
    acc :=
      !acc +. float_of_int histogram.(i)
      +. Prob.Sampler.laplace rng ~scale:(1. /. epsilon)
  done;
  !acc
