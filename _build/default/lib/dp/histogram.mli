(** Differentially private histograms and marginal tables.

    A histogram over a data-independent partition of the domain has
    sensitivity 1 (a record moves between at most two cells... in fact
    changes one cell by one), so every cell can receive Laplace(1/ε) noise
    under a single ε — no budget splitting. Noisy marginals are the DP
    stand-in for the census tabulations of Experiment E10. *)

type cell = { label : string; pred : Query.Predicate.t }

val partition_by_attribute : Dataset.Model.t -> string -> cell array
(** One cell per support value of the attribute's marginal — a
    data-independent partition derived from the model, not the data. *)

val noisy : Prob.Rng.t -> epsilon:float -> Dataset.Table.t -> cell array -> (string * float) array
(** ε-DP histogram: exact cell counts plus i.i.d. Laplace(1/ε) noise.
    Raises [Invalid_argument] if [epsilon <= 0]. *)

val exact : Dataset.Table.t -> cell array -> (string * int) array

val mechanism : epsilon:float -> cell array -> Query.Mechanism.t
(** The noisy histogram as a mechanism (cell order fixed). *)
