lib/dp/histogram.mli: Dataset Prob Query
