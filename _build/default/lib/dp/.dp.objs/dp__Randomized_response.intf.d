lib/dp/randomized_response.mli: Prob
