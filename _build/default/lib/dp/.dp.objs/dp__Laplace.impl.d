lib/dp/laplace.ml: Array Dataset Float Prob Query
