lib/dp/geometric.ml: Dataset Float Prob Query
