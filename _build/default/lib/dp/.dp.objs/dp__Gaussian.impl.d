lib/dp/gaussian.ml: Dataset Float Prob Query
