lib/dp/accountant.ml: Float List
