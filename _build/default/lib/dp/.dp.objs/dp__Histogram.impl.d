lib/dp/histogram.ml: Array Dataset Printf Prob Query
