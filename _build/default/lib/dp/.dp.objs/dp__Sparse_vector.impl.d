lib/dp/sparse_vector.ml: Prob
