lib/dp/sparse_vector.mli: Prob
