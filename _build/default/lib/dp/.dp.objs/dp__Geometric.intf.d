lib/dp/geometric.mli: Dataset Prob Query
