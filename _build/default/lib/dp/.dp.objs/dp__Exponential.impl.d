lib/dp/exponential.ml: Array Float Prob
