lib/dp/noisy_max.mli: Dataset Prob Query
