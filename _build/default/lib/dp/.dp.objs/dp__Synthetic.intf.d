lib/dp/synthetic.mli: Dataset Prob Query
