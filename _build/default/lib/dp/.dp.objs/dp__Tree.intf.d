lib/dp/tree.mli: Prob
