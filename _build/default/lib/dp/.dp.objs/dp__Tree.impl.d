lib/dp/tree.ml: Array Prob
