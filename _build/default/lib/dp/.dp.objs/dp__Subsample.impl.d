lib/dp/subsample.ml: Array Dataset Float Fun List Printf Prob Query
