lib/dp/laplace.mli: Dataset Prob Query
