lib/dp/randomized_response.ml: Array Float Prob
