lib/dp/subsample.mli: Dataset Prob Query
