lib/dp/noisy_max.ml: Array Dataset Prob Query
