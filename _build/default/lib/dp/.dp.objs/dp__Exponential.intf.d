lib/dp/exponential.mli: Prob
