lib/dp/gaussian.mli: Dataset Prob Query
