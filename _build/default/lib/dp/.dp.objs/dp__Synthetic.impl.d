lib/dp/synthetic.ml: Array Dataset Float List Printf Prob Query
