lib/dp/accountant.mli:
