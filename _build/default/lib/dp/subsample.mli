(** Privacy amplification by subsampling.

    Running an ε-DP mechanism on a uniformly subsampled q-fraction of the
    data is ε′-DP with [ε′ = ln(1 + q·(e^ε − 1)) ≤ q·ε] — the standard
    amplification lemma. This gives the library a second knob (sampling
    rate) alongside noise scale. *)

val amplified_epsilon : q:float -> epsilon:float -> float
(** The amplified budget. Raises [Invalid_argument] unless [0 < q <= 1]
    and [epsilon > 0]. *)

val required_epsilon : q:float -> target:float -> float
(** Inverse: the base-mechanism ε that achieves a [target] amplified ε at
    sampling rate [q]. *)

val subsample : Prob.Rng.t -> q:float -> Dataset.Table.t -> Dataset.Table.t
(** Poisson subsampling: keep each row independently with probability
    [q]. *)

val mechanism : q:float -> Query.Mechanism.t -> Query.Mechanism.t
(** Run the base mechanism on a fresh subsample. If the base mechanism is
    ε-DP, the result is [amplified_epsilon ~q ~epsilon]-DP. *)
