(** Differentially private synthetic microdata.

    Section 1.2 of the paper observes that legal concepts like linkability
    lose their footing "when PII is replaced with 'synthetic data'". This
    module produces the simplest principled version: learn ε-DP noisy
    per-attribute histograms from the real table, normalize them into a
    product distribution, and sample a brand-new table of the same shape.
    By post-processing (the paper's Theorem 2.6 / the DP post-processing
    property), the synthetic table inherits the ε-DP guarantee of the
    histograms — so it prevents predicate singling out while remaining a
    {e table}, the release format where naive intuition most expects
    linkage to work. Experiment E13 measures exactly that. *)

type generator
(** A fitted (noisy) product model over the source schema. *)

val fit :
  Prob.Rng.t ->
  epsilon:float ->
  domains:(string * Dataset.Value.t list) list ->
  Dataset.Table.t ->
  generator
(** Learn per-attribute ε/d-DP histograms (d attributes, sequential
    composition; total cost ε). [domains] must list every attribute's
    value domain — data-independent, supplied by the curator. Noisy counts
    are clamped at 0; an all-zero histogram falls back to uniform. Raises
    [Invalid_argument] on a domain missing an attribute or [epsilon <= 0]. *)

val sample : Prob.Rng.t -> generator -> int -> Dataset.Table.t
(** Draw a synthetic table of the given size. *)

val mechanism :
  epsilon:float ->
  domains:(string * Dataset.Value.t list) list ->
  rows:int ->
  Query.Mechanism.t
(** The fit-and-sample pipeline as a mechanism releasing a [Release]
    table. ε-DP end to end (the sampling step is post-processing). *)

val total_variation_error : generator -> Dataset.Model.t -> float
(** Mean, over attributes, of the TV distance between the generator's
    fitted marginals and a reference model's — the utility side of the
    tradeoff. *)
