(** The exponential mechanism (McSherry–Talwar 2007): ε-DP selection of a
    candidate from a finite set, sampling candidate [c] with probability
    proportional to [exp(ε · u(c) / (2 Δu))]. *)

val select :
  Prob.Rng.t ->
  epsilon:float ->
  sensitivity:float ->
  utility:('a -> float) ->
  'a array ->
  'a
(** Raises [Invalid_argument] if [epsilon <= 0], [sensitivity <= 0], or the
    candidate array is empty. *)

val median :
  Prob.Rng.t -> epsilon:float -> lo:float -> hi:float -> bins:int -> float array -> float
(** ε-DP approximate median of values in [\[lo, hi\]]: exponential mechanism
    over [bins] equal-width candidate points with the (negated) rank-distance
    utility (sensitivity 1). *)
