module Value = Dataset.Value
module Schema = Dataset.Schema
module Table = Dataset.Table

type generator = {
  schema : Schema.t;
  marginals : (string * Value.t Prob.Distribution.t) list;
}

let fit rng ~epsilon ~domains table =
  if epsilon <= 0. then invalid_arg "Dp.Synthetic.fit: epsilon";
  let schema = Table.schema table in
  let names = Schema.names schema in
  List.iter
    (fun name ->
      if not (List.mem_assoc name domains) then
        invalid_arg (Printf.sprintf "Dp.Synthetic.fit: no domain for %S" name))
    names;
  let per_attribute = epsilon /. float_of_int (List.length names) in
  let marginals =
    List.map
      (fun name ->
        let j = Schema.index_of schema name in
        let domain = List.assoc name domains in
        if domain = [] then invalid_arg "Dp.Synthetic.fit: empty domain";
        let weights =
          List.map
            (fun v ->
              let exact =
                Table.count (fun row -> Value.equal row.(j) v) table
              in
              let noisy =
                float_of_int exact
                +. Prob.Sampler.laplace rng ~scale:(1. /. per_attribute)
              in
              (v, Float.max 0. noisy))
            domain
        in
        let total = List.fold_left (fun acc (_, w) -> acc +. w) 0. weights in
        let dist =
          if total <= 0. then Prob.Distribution.uniform domain
          else Prob.Distribution.of_weights weights
        in
        (name, dist))
      names
  in
  { schema; marginals }

let sample rng g n =
  let dists =
    List.map (fun name -> List.assoc name g.marginals) (Schema.names g.schema)
  in
  Table.make g.schema
    (Array.init n (fun _ ->
         Array.of_list (List.map (fun d -> Prob.Distribution.sample rng d) dists)))

let mechanism ~epsilon ~domains ~rows =
  {
    Query.Mechanism.name = Printf.sprintf "dp-synthetic[eps=%g, rows=%d]" epsilon rows;
    run =
      (fun rng table ->
        let g = fit rng ~epsilon ~domains table in
        Query.Mechanism.Release (sample rng g rows));
  }

let total_variation_error g model =
  let names = Schema.names g.schema in
  let total =
    List.fold_left
      (fun acc name ->
        let fitted = List.assoc name g.marginals in
        let reference = Dataset.Model.marginal model name in
        acc +. Prob.Distribution.total_variation fitted reference)
      0. names
  in
  total /. float_of_int (List.length names)
