(** Predicate singling out of k-anonymized releases (Theorem 2.10 and
    Cohen's strengthening [12]).

    Both attackers consume a [Generalized] release. The {!greedy} attacker
    is the proof of Theorem 2.10 verbatim: take an equivalence class of size
    [k'] and form the predicate [p] of the cells its members share (in a
    class-level release, the full generalized row — "ZIP ∈ 1234*, Age ∈
    30–39, Disease ∈ PULM"). [p] matches exactly the class members and, for
    data with enough attributes, has negligible weight; conjoining a
    weight-[1/k'] hash-bucket predicate [p'] yields [p ∧ p'] of negligible
    weight isolating with probability ≈ [(1−1/k')^{k'−1} ≈ 1/e ≈ 37%].

    The {!cohen} attacker exploits member-level releases ("typical
    implementations optimize information content" by retaining non-QI cells
    exactly): find a class member whose retained cells are unique within its
    class, and conjoin all of them to the class predicate. The attacker can
    verify isolation from the release itself, so success approaches 100%. *)

val greedy : unit -> Attacker.t

val cohen : unit -> Attacker.t

val class_predicate : Dataset.Gtable.t -> Dataset.Gtable.eclass -> Query.Predicate.t
(** The predicate of the cells shared ({!Dataset.Gvalue.equal}) by every
    member of the class; cells on which members differ are ignored. *)
