(** Executable statements of the paper's technical theorems.

    Each function runs a scaled-down but faithful instantiation of a
    theorem's construction and returns a {!verdict}: the claim, what the
    theorem predicts, what was measured, and whether the measurement is
    consistent with the prediction. These verdicts are the {e technical
    premises} the legal layer (Section 2.4) builds legal theorems from —
    and they are exactly what makes the claims falsifiable: a verdict that
    fails to hold would refute the corresponding modeling. *)

type verdict = {
  id : string;  (** e.g. "Theorem 2.10" *)
  title : string;
  statement : string;  (** the paper's claim, paraphrased *)
  expectation : string;  (** the quantitative prediction tested *)
  measured : (string * float) list;
  holds : bool;
}

type params = {
  n : int;  (** dataset size per game trial *)
  trials : int;  (** Monte-Carlo trials per game *)
  weight_exponent : float;  (** negligible-weight stand-in: bound = n^-c *)
}

val default_params : params
(** [n = 150], [trials = 200], [c = 2] — sized so the full battery runs in
    seconds; the benches re-run with larger parameters. *)

val laplace_is_dp : ?params:params -> Prob.Rng.t -> verdict
(** Theorem 1.3: output histograms of the Laplace count on neighbouring
    datasets differ by at most [e^ε] per bin (up to sampling error). *)

val count_mechanism_secure : ?params:params -> Prob.Rng.t -> verdict
(** Theorem 2.5: [M#q] prevents PSO — the best-effort negligible-weight
    attacker wins only with ≈ [n·w] probability, and the weight-[1/n]
    attacker's ≈ 37% isolations do not count. *)

val post_processing_robust : ?params:params -> Prob.Rng.t -> verdict
(** Theorem 2.6: post-processing [M#q] leaves the above unchanged. *)

val incomposability_pair : ?params:params -> Prob.Rng.t -> verdict
(** Theorem 2.7: the pad construction — both marginals secure, the
    composition broken with probability ≈ 1. *)

val count_composition_breaks : ?params:params -> Prob.Rng.t -> verdict
(** Theorem 2.8: composing ω(log n) count mechanisms enables PSO (the
    bucket-and-bits attacker). *)

val dp_prevents_pso : ?params:params -> Prob.Rng.t -> verdict
(** Theorem 2.9: the same attacker against ε-DP noisy counts fails. *)

val kanon_fails : ?params:params -> Prob.Rng.t -> verdict
(** Theorem 2.10 + Cohen: greedy attacker ≈ 37% on class-level releases;
    released-unique attacker ≈ 100% on member-level releases. *)

val all : ?params:params -> Prob.Rng.t -> verdict list
(** Every check above, in paper order. *)

val pp : Format.formatter -> verdict -> unit
