type outcome = {
  trials : int;
  n : int;
  weight_bound : float;
  successes : int;
  isolations : int;
  heavy_isolations : int;
  success_rate : float;
  success_ci : float * float;
  mean_weight : float;
}

let run rng ~model ~n ~mechanism ~attacker ~weight_bound ~trials =
  if n <= 0 then invalid_arg "Game.run: n";
  if trials <= 0 then invalid_arg "Game.run: trials";
  let schema = Dataset.Model.schema model in
  let successes = ref 0 in
  let isolations = ref 0 in
  let heavy = ref 0 in
  let weight_sum = ref 0. in
  for _ = 1 to trials do
    let x = Dataset.Model.sample_table rng model n in
    let y = Query.Mechanism.run mechanism rng x in
    let p = Attacker.attack attacker rng y in
    let w = Query.Predicate.weight_value (Query.Predicate.weight model p) in
    weight_sum := !weight_sum +. w;
    if Query.Predicate.isolates schema p x then begin
      incr isolations;
      if w <= weight_bound then incr successes else incr heavy
    end
  done;
  {
    trials;
    n;
    weight_bound;
    successes = !successes;
    isolations = !isolations;
    heavy_isolations = !heavy;
    success_rate = float_of_int !successes /. float_of_int trials;
    success_ci = Prob.Stats.proportion_ci ~successes:!successes ~trials;
    mean_weight = !weight_sum /. float_of_int trials;
  }

let pp fmt o =
  let lo, hi = o.success_ci in
  Format.fprintf fmt
    "n=%d trials=%d bound=%.3g: PSO success %.3f [%.3f, %.3f] (isolations %d, heavy %d, mean weight %.3g)"
    o.n o.trials o.weight_bound o.success_rate lo hi o.isolations
    o.heavy_isolations o.mean_weight
