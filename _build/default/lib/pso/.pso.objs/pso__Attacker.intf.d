lib/pso/attacker.mli: Dataset Prob Query
