lib/pso/isolation.ml: Dataset Float Query
