lib/pso/composition.mli: Attacker Query
