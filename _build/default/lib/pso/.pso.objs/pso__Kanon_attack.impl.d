lib/pso/kanon_attack.ml: Array Attacker Dataset Fun List Prob Query String
