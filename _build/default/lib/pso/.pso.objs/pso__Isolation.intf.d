lib/pso/isolation.mli: Dataset Query
