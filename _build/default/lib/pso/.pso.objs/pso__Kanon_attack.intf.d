lib/pso/kanon_attack.mli: Attacker Dataset Query
