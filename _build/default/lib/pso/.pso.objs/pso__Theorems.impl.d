lib/pso/theorems.ml: Array Attacker Composition Dataset Float Format Game Isolation Kanon Kanon_attack Lazy List Pad Printf Prob Query
