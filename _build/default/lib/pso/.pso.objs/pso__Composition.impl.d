lib/pso/composition.ml: Array Attacker Float List Printf Query
