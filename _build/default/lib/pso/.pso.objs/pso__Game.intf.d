lib/pso/game.mli: Attacker Dataset Format Prob Query
