lib/pso/game.ml: Attacker Dataset Format Prob Query
