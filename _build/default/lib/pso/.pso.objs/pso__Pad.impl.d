lib/pso/pad.ml: Array Attacker Dataset Int64 List Prob Query
