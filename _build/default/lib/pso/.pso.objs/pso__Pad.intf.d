lib/pso/pad.mli: Attacker Query
