lib/pso/attacker.ml: Array Dataset List Printf Prob Query
