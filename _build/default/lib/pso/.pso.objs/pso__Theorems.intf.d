lib/pso/theorems.mli: Format Prob
