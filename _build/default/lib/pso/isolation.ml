let isolates model p table =
  Query.Predicate.isolates (Dataset.Model.schema model) p table

let trivial_isolation_probability ~n ~w =
  if n <= 0 then invalid_arg "Isolation.trivial_isolation_probability";
  if w < 0. || w > 1. then invalid_arg "Isolation.trivial_isolation_probability: w";
  float_of_int n *. w *. Float.pow (1. -. w) (float_of_int (n - 1))

let optimal_trivial_weight ~n =
  if n <= 0 then invalid_arg "Isolation.optimal_trivial_weight";
  1. /. float_of_int n

let max_trivial_probability ~n =
  trivial_isolation_probability ~n ~w:(optimal_trivial_weight ~n)

let one_over_e = Float.exp (-1.)

let heavy_band_probability ~n ~multiplier =
  if n <= 1 then invalid_arg "Isolation.heavy_band_probability";
  if multiplier <= 0. then invalid_arg "Isolation.heavy_band_probability: multiplier";
  let w = Float.min 1. (multiplier *. Float.log (float_of_int n) /. float_of_int n) in
  trivial_isolation_probability ~n ~w

let negligible_bound ~n ~c =
  if n <= 0 || c <= 0. then invalid_arg "Isolation.negligible_bound";
  Float.pow (float_of_int n) (-.c)
