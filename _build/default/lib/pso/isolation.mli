(** Isolation (Definition 2.1) and its baseline probabilities (Section 2.2).

    A predicate [p] isolates in [x = (x_1..x_n)] when [Σ p(x_i) = 1]. A
    predicate of weight [w] chosen independently of the data isolates with
    probability [n·w·(1−w)^{n−1} ≈ n·w·e^{−n·w}], maximized at [w = 1/n]
    where it is ≈ 1/e ≈ 37% — the paper's birthday example. This module
    provides the analytics the experiments compare against. *)

val isolates : Dataset.Model.t -> Query.Predicate.t -> Dataset.Table.t -> bool
(** Definition 2.1 against a concrete dataset (the model supplies the
    schema). *)

val trivial_isolation_probability : n:int -> w:float -> float
(** [n·w·(1−w)^{n−1}], the exact isolation probability of a data-independent
    weight-[w] predicate against [x ~ D^n]. *)

val optimal_trivial_weight : n:int -> float
(** [1/n], the weight maximizing the above. *)

val max_trivial_probability : n:int -> float
(** The value at the optimum: [(1 − 1/n)^{n−1}], approaching [1/e]. *)

val one_over_e : float

val heavy_band_probability : n:int -> multiplier:float -> float
(** Isolation probability at the paper's "heavy" boundary
    [w = multiplier·log n / n] (footnote 11): [≈ n·w·e^{−n·w} =
    multiplier·log n · n^{−multiplier}] — negligible for [multiplier > 1],
    which is why Definition 2.4 can ignore the heavy band. *)

val negligible_bound : n:int -> c:float -> float
(** The concrete stand-in for "negligible weight" used by the experiments:
    [n^{-c}]. A weight-[n^{-c}] predicate chosen independently of the data
    isolates with probability at most [n·n^{-c} = n^{1-c}] — itself
    vanishing for [c > 1], which is what makes PSO success at such weights
    attributable to the mechanism's leakage. *)
