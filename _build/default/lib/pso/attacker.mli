(** PSO attackers.

    An attacker observes only the mechanism's output [y] and produces a
    predicate on the {e original} data universe (Section 2.2). The type
    enforces the information flow: no access to the dataset, the schema
    reaching the attacker only through the output itself or through
    parameters fixed before the game. *)

type t = {
  name : string;
  attack : Prob.Rng.t -> Query.Mechanism.output -> Query.Predicate.t;
}

val attack : t -> Prob.Rng.t -> Query.Mechanism.output -> Query.Predicate.t

val constant : string -> Query.Predicate.t -> t
(** Ignores the output entirely — the "trivial attacker" family of
    Section 2.2. *)

val fixed_value : attr:string -> Dataset.Value.t -> t
(** The birthday attacker: "is this person born on Apr-30". *)

val hash_bucket : buckets:int -> t
(** A Leftover-Hash-Lemma-style predicate of weight ≈ [1/buckets] with a
    salt drawn fresh from the game's randomness; still data- and
    output-independent. *)

val release_row : unit -> t
(** Against a [Release] table output: pick a released row uniformly and
    output its full-tuple predicate. Defeats verbatim releases (the tuple
    is a real record of negligible weight); against synthetic releases the
    tuple almost surely matches no real record — the E13 contrast. *)
