type t = {
  name : string;
  attack : Prob.Rng.t -> Query.Mechanism.output -> Query.Predicate.t;
}

let attack t rng output = t.attack rng output

let constant name p = { name; attack = (fun _ _ -> p) }

let fixed_value ~attr value =
  constant
    (Printf.sprintf "fixed[%s=%s]" attr (Dataset.Value.to_string value))
    (Query.Predicate.Atom (Query.Predicate.Eq (attr, value)))

let release_row () =
  {
    name = "release-row (full tuple)";
    attack =
      (fun rng output ->
        match output with
        | Query.Mechanism.Release table when Dataset.Table.nrows table > 0 ->
          let schema = Dataset.Table.schema table in
          let row =
            Dataset.Table.row table (Prob.Rng.int rng (Dataset.Table.nrows table))
          in
          Query.Predicate.conj
            (List.mapi
               (fun j v ->
                 Query.Predicate.Atom
                   (Query.Predicate.Eq
                      ((Dataset.Schema.attribute schema j).Dataset.Schema.name, v)))
               (Array.to_list row))
        | _ -> Query.Predicate.False);
  }

let hash_bucket ~buckets =
  {
    name = Printf.sprintf "hash-bucket[1/%d]" buckets;
    attack =
      (fun rng _ ->
        Query.Predicate.Atom
          (Query.Predicate.Hash_bucket
             { buckets; bucket = 0; salt = Prob.Rng.bits64 rng }));
  }
