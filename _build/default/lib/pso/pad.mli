(** The explicit incomposability construction (Theorem 2.7).

    Two mechanisms, each individually preventing predicate singling out,
    whose composition does not:

    - [M1(x) = digest(x_1) XOR pad(x_2..x_n)]
    - [M2(x) = pad(x_2..x_n)]

    where [digest] is a salted 64-bit hash of a record and [pad] XORs salted
    hashes of the remaining records. Each output alone is a near-uniform
    64-bit word carrying no isolating information about any single record;
    XORing the two outputs reveals [digest(x_1)], and the predicate
    "[digest(record) = v]" has weight ≈ 2⁻⁶⁴ (negligible) and isolates
    [x_1] with overwhelming probability. *)

type t = {
  m1 : Query.Mechanism.t;
  m2 : Query.Mechanism.t;
  composed : Query.Mechanism.t;  (** [compose m1 m2] with the same salts *)
  joint_attacker : Attacker.t;  (** breaks [composed] *)
  marginal_attacker : Attacker.t;
      (** the best analogous attempt against a single output: treats the
          masked word as if it were the digest — demonstrably useless *)
}

val make : salt:int64 -> t

val digest_predicate : salt:int64 -> int64 -> Query.Predicate.t
(** The 64-conjunct predicate "record's salted digest equals this word". *)
