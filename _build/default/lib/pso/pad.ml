module Mechanism = Query.Mechanism
module Predicate = Query.Predicate

(* Independent salts for the digest and the pad, derived from the base salt
   via the SplitMix64 finalizer (reused through Hashing.hash64 on tags). *)
let digest_salt salt = Prob.Hashing.hash64 ~salt "pso-pad-digest"

let pad_salt salt = Prob.Hashing.hash64 ~salt "pso-pad-mask"

let digest ~salt row = Prob.Hashing.hash64 ~salt:(digest_salt salt) (Predicate.encode_row row)

let pad ~salt table =
  let acc = ref 0L in
  let rows = Dataset.Table.rows table in
  for i = 1 to Array.length rows - 1 do
    acc :=
      Int64.logxor !acc
        (Prob.Hashing.hash64 ~salt:(pad_salt salt) (Predicate.encode_row rows.(i)))
  done;
  !acc

let digest_predicate ~salt v =
  let salt = digest_salt salt in
  Predicate.conj
    (List.init 64 (fun index ->
         let bit = Int64.logand (Int64.shift_right_logical v index) 1L = 1L in
         let atom = Predicate.Atom (Predicate.Hash_bit { index; salt }) in
         if bit then atom else Predicate.Not atom))

type t = {
  m1 : Query.Mechanism.t;
  m2 : Query.Mechanism.t;
  composed : Query.Mechanism.t;
  joint_attacker : Attacker.t;
  marginal_attacker : Attacker.t;
}

let make ~salt =
  let m1 =
    {
      Mechanism.name = "pad-masked-digest";
      run =
        (fun _rng table ->
          let d = digest ~salt (Dataset.Table.row table 0) in
          Mechanism.Words [| Int64.logxor d (pad ~salt table) |]);
    }
  in
  let m2 =
    {
      Mechanism.name = "pad";
      run = (fun _rng table -> Mechanism.Words [| pad ~salt table |]);
    }
  in
  let joint_attacker =
    {
      Attacker.name = "xor-and-match";
      attack =
        (fun _rng output ->
          match output with
          | Mechanism.Pair (Mechanism.Words a, Mechanism.Words b)
            when Array.length a = 1 && Array.length b = 1 ->
            digest_predicate ~salt (Int64.logxor a.(0) b.(0))
          | _ -> Predicate.False);
    }
  in
  let marginal_attacker =
    {
      Attacker.name = "treat-word-as-digest";
      attack =
        (fun _rng output ->
          match output with
          | Mechanism.Words a when Array.length a = 1 -> digest_predicate ~salt a.(0)
          | _ -> Predicate.False);
    }
  in
  { m1; m2; composed = Mechanism.compose m1 m2; joint_attacker; marginal_attacker }
