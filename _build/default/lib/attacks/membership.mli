(** Membership inference from aggregate statistics (Homer et al. 2008 —
    Section 1's genomic membership attack).

    Only per-SNP allele {e frequencies} of a study pool are published.
    Given an individual's genotype and an independent reference cohort, the
    Homer statistic [T(y) = Σ_j (|y_j − ref_j| − |y_j − pool_j|)] is, in
    expectation, positive for pool members and ~0 for non-members; with
    enough attributes the separation is near-perfect — aggregate release is
    not anonymous release. *)

val means : bool array array -> float array
(** Column means (published pool frequencies). Raises [Invalid_argument] on
    empty or ragged input. *)

val statistic : pool_means:float array -> ref_means:float array -> bool array -> float
(** The Homer test statistic for one genotype. *)

type evaluation = {
  auc : float;  (** area under the ROC of members vs outsiders *)
  accuracy : float;  (** accuracy at the fixed threshold *)
  threshold : float;  (** decision threshold used (0 by construction) *)
  mean_member : float;
  mean_outsider : float;
}

val evaluate : Dataset.Synth.genotypes -> evaluation
(** Score every pool member and outsider against the published pool
    frequencies and the reference cohort. *)

val auc : positives:float array -> negatives:float array -> float
(** Mann–Whitney AUC (ties count ½). *)
