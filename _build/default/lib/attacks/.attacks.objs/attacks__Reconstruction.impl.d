lib/attacks/reconstruction.ml: Array Float Linalg List Prob Query
