lib/attacks/linkage.mli: Dataset
