lib/attacks/intersection.ml: Array Dataset Hashtbl List
