lib/attacks/census.mli: Dataset Prob
