lib/attacks/membership.mli: Dataset
