lib/attacks/sparse_linkage.ml: Array Dataset Float List Prob
