lib/attacks/reconstruction.mli: Prob Query
