lib/attacks/census.ml: Array Dataset Dp Fun Hashtbl Int List Option Prob
