lib/attacks/membership.ml: Array Dataset Float Prob
