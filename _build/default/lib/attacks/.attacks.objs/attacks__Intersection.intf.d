lib/attacks/intersection.mli: Dataset
