lib/attacks/linkage.ml: Array Dataset Hashtbl List Option String
