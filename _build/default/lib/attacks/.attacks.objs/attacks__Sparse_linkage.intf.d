lib/attacks/sparse_linkage.mli: Dataset Prob
