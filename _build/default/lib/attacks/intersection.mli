(** Composition attacks on k-anonymity (Ganta–Kasiviswanathan–Smith 2008;
    the paper's Section 1.1: "k-anonymity is not closed under composition
    ... the combination of two or more k-anonymized datasets derived from
    the same collection of personal information allows for uniquely
    identifying individuals").

    Model: two curators independently k-anonymize overlapping data about
    the same population. The attacker knows a target's quasi-identifier
    values (ordinary auxiliary knowledge) and, in each release, locates the
    equivalence classes covering the target; the target's sensitive value
    must lie in the {e intersection} of the classes' sensitive-value sets.
    Each release is k-anonymous; the intersection is often a singleton. *)

type disclosure = {
  candidates_1 : int;  (** distinct sensitive values compatible with release 1 *)
  candidates_2 : int;
  intersection : int;  (** after combining *)
  disclosed : bool;  (** intersection narrowed to exactly one value *)
}

val attack_target :
  release1:Dataset.Gtable.t ->
  release2:Dataset.Gtable.t ->
  sensitive:string ->
  Dataset.Table.row ->
  disclosure
(** Intersect the sensitive-value sets of every class covering the target
    row's quasi-identifiers in each release. A release that covers the
    target with no class contributes no constraint (its candidate count is
    reported as [0] and ignored). *)

type stats = {
  targets : int;
  disclosed_by_one : int;  (** already a singleton in release 1 alone *)
  disclosed_by_intersection : int;  (** singleton only after combining *)
  rate_one : float;
  rate_combined : float;
}

val evaluate :
  table:Dataset.Table.t ->
  release1:Dataset.Gtable.t ->
  release2:Dataset.Gtable.t ->
  sensitive:string ->
  stats
(** Run {!attack_target} for every row of the underlying table (each row
    playing the target whose quasi-identifiers the attacker knows). The
    gap between [rate_one] and [rate_combined] is the composition
    failure. *)
