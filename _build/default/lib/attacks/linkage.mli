(** Quasi-identifier linkage (Sweeney's GIC re-identification, Section 1).

    The attack joins a de-identified release with an identified auxiliary
    dataset on shared quasi-identifiers; a record unique on the
    quasi-identifiers in both datasets is re-identified. *)

val unique_fraction : Dataset.Table.t -> on:string list -> float
(** Fraction of rows whose quasi-identifier combination is unique in the
    table — Sweeney's "ZIP × birth date × sex is unique for a vast majority"
    statistic. *)

val uniqueness_histogram : Dataset.Table.t -> on:string list -> (int * int) list
(** [(class_size, #rows in classes of that size)] sorted by class size. *)

val link :
  release:Dataset.Table.t ->
  aux:Dataset.Table.t ->
  on:string list ->
  (int * int) list
(** Pairs [(release_row, aux_row)] where the quasi-identifier combination is
    unique in {e both} tables — the confident matches. *)

type stats = {
  release_rows : int;
  aux_rows : int;
  claims : int;  (** unique-unique matches claimed *)
  correct : int;  (** claims naming the right person *)
  precision : float;  (** correct / claims (1. when no claims) *)
  reidentification_rate : float;  (** correct / release_rows *)
}

val reidentify :
  population:Dataset.Table.t ->
  release:Dataset.Table.t ->
  aux:Dataset.Table.t ->
  on:string list ->
  name_attr:string ->
  stats
(** End-to-end evaluation. [release] must be row-aligned with [population]
    (row [i] of the release is person [i]), as produced by
    {!Dataset.Synth.gic_release}; [aux] carries [name_attr]. A claim is
    correct when the aux row's name equals the population name of the linked
    release row. *)
