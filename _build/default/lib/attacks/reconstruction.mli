(** Database reconstruction attacks (Dinur–Nissim, PODS 2003 — the paper's
    Theorem 1.1, and the engine of its title).

    Setting: a dataset [x ∈ {0,1}^n] behind a subset-count oracle with
    per-answer error at most α. Theorem 1.1: reconstruction to within a
    small Hamming fraction is possible (i) with all [2^n] queries when
    [α = O(n)], and (ii) with polynomially many random queries when
    [α = O(√n)]. Three attackers are provided: the exhaustive
    consistency-search of (i), and least-squares and LP-decoding versions
    of (ii). *)

type result = {
  estimate : int array;  (** the reconstructed candidate x̃ ∈ {0,1}^n *)
  hamming_errors : int;  (** #entries where x̃ disagrees with the truth *)
  agreement : float;  (** 1 − errors/n *)
  queries_used : int;
}

val blatant_non_privacy_threshold : float
(** The fraction-correct bound (95%) above which the paper calls a mechanism
    "blatantly non-private". *)

val exhaustive : Query.Oracle.t -> truth:int array -> result
(** Theorem 1.1(i): asks all [2^n] subset queries and returns the candidate
    minimizing the maximum answer violation. Exponential: rejects [n > 16]
    with [Invalid_argument]. *)

val least_squares :
  Prob.Rng.t -> Query.Oracle.t -> queries:int -> truth:int array -> result
(** Theorem 1.1(ii): asks [queries] random subset queries (each index
    included with probability 1/2), solves the box-constrained least-squares
    problem [min_{z∈[0,1]^n} ‖Az − a‖²] and rounds. *)

val lp_decode :
  Prob.Rng.t -> Query.Oracle.t -> queries:int -> truth:int array -> result
(** LP-decoding variant (Dwork–McSherry–Talwar 2007): minimize total slack
    [Σ s_q] subject to [|(Az)_q − a_q| ≤ s_q, 0 ≤ z ≤ 1], then round.
    More robust to adversarial (non-random) noise; slower. *)

val agreement : int array -> int array -> float
(** Fraction of agreeing entries. Raises [Invalid_argument] on length
    mismatch. *)
