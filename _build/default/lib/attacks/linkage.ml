module Table = Dataset.Table

let key_of table indices i =
  String.concat "\x00"
    (List.map
       (fun j -> Dataset.Value.to_string (Table.rows table).(i).(j))
       indices)

let indices_of table on =
  List.map (Dataset.Schema.index_of (Table.schema table)) on

let group table on =
  let indices = indices_of table on in
  let groups : (string, int list) Hashtbl.t = Hashtbl.create 256 in
  for i = 0 to Table.nrows table - 1 do
    let key = key_of table indices i in
    Hashtbl.replace groups key
      (i :: Option.value ~default:[] (Hashtbl.find_opt groups key))
  done;
  groups

let unique_fraction table ~on =
  if Table.nrows table = 0 then 0.
  else begin
    let groups = group table on in
    let unique =
      Hashtbl.fold
        (fun _ rows acc -> if List.length rows = 1 then acc + 1 else acc)
        groups 0
    in
    float_of_int unique /. float_of_int (Table.nrows table)
  end

let uniqueness_histogram table ~on =
  let groups = group table on in
  let by_size : (int, int) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _ rows ->
      let size = List.length rows in
      Hashtbl.replace by_size size
        (size + Option.value ~default:0 (Hashtbl.find_opt by_size size)))
    groups;
  Hashtbl.fold (fun size rows acc -> (size, rows) :: acc) by_size []
  |> List.sort compare

let link ~release ~aux ~on =
  let release_groups = group release on in
  let aux_indices = indices_of aux on in
  let matches = ref [] in
  (* Track aux-side multiplicity so only unique-unique pairs survive. *)
  let aux_groups = group aux on in
  for ai = 0 to Table.nrows aux - 1 do
    let key = key_of aux aux_indices ai in
    match (Hashtbl.find_opt release_groups key, Hashtbl.find_opt aux_groups key) with
    | Some [ ri ], Some [ _ ] -> matches := (ri, ai) :: !matches
    | _, _ -> ()
  done;
  List.rev !matches

type stats = {
  release_rows : int;
  aux_rows : int;
  claims : int;
  correct : int;
  precision : float;
  reidentification_rate : float;
}

let reidentify ~population ~release ~aux ~on ~name_attr =
  if Table.nrows population <> Table.nrows release then
    invalid_arg "Linkage.reidentify: population/release must be row-aligned";
  let claims = link ~release ~aux ~on in
  let correct =
    List.fold_left
      (fun acc (ri, ai) ->
        let claimed = Table.value aux ai name_attr in
        let truth = Table.value population ri name_attr in
        if Dataset.Value.equal claimed truth then acc + 1 else acc)
      0 claims
  in
  let nclaims = List.length claims in
  {
    release_rows = Table.nrows release;
    aux_rows = Table.nrows aux;
    claims = nclaims;
    correct;
    precision = (if nclaims = 0 then 1. else float_of_int correct /. float_of_int nclaims);
    reidentification_rate =
      (if Table.nrows release = 0 then 0.
       else float_of_int correct /. float_of_int (Table.nrows release));
  }
