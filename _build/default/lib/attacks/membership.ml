let means rows =
  let n = Array.length rows in
  if n = 0 then invalid_arg "Membership.means: empty";
  let m = Array.length rows.(0) in
  let sums = Array.make m 0. in
  Array.iter
    (fun row ->
      if Array.length row <> m then invalid_arg "Membership.means: ragged";
      Array.iteri (fun j b -> if b then sums.(j) <- sums.(j) +. 1.) row)
    rows;
  Array.map (fun s -> s /. float_of_int n) sums

let statistic ~pool_means ~ref_means genotype =
  if
    Array.length genotype <> Array.length pool_means
    || Array.length genotype <> Array.length ref_means
  then invalid_arg "Membership.statistic: length mismatch";
  let t = ref 0. in
  Array.iteri
    (fun j b ->
      let y = if b then 1. else 0. in
      t := !t +. (Float.abs (y -. ref_means.(j)) -. Float.abs (y -. pool_means.(j))))
    genotype;
  !t

let auc ~positives ~negatives =
  if Array.length positives = 0 || Array.length negatives = 0 then
    invalid_arg "Membership.auc: empty side";
  let wins = ref 0. in
  Array.iter
    (fun p ->
      Array.iter
        (fun q ->
          if p > q then wins := !wins +. 1.
          else if p = q then wins := !wins +. 0.5)
        negatives)
    positives;
  !wins /. (float_of_int (Array.length positives) *. float_of_int (Array.length negatives))

type evaluation = {
  auc : float;
  accuracy : float;
  threshold : float;
  mean_member : float;
  mean_outsider : float;
}

let evaluate (g : Dataset.Synth.genotypes) =
  let pool_means = means g.Dataset.Synth.pool in
  let ref_means = means g.Dataset.Synth.reference in
  let score person = statistic ~pool_means ~ref_means person in
  let members = Array.map score g.Dataset.Synth.pool in
  let outsiders = Array.map score g.Dataset.Synth.outsiders in
  let threshold = 0. in
  let correct =
    Array.fold_left (fun acc s -> if s > threshold then acc + 1 else acc) 0 members
    + Array.fold_left
        (fun acc s -> if s <= threshold then acc + 1 else acc)
        0 outsiders
  in
  let total = Array.length members + Array.length outsiders in
  {
    auc = auc ~positives:members ~negatives:outsiders;
    accuracy = float_of_int correct /. float_of_int total;
    threshold;
    mean_member = Prob.Stats.mean members;
    mean_outsider = Prob.Stats.mean outsiders;
  }
