(** De-anonymization of sparse datasets (Narayanan–Shmatikov 2006/2008 —
    the paper's Netflix story).

    The Scoreboard-RH algorithm: given noisy auxiliary knowledge of a few of
    a target's (movie, rating, date) triples, score every subscriber in the
    released data by similarity, weighting rare movies more
    ([1 / log(2 + support)]); output the best-scoring subscriber if their
    lead over the runner-up (the "eccentricity") clears a threshold. *)

type aux_item = { movie : int; stars : int; day : int }
(** One piece of auxiliary knowledge, possibly imprecise. *)

val make_aux :
  Prob.Rng.t ->
  Dataset.Synth.rating array ->
  items:int ->
  ?star_fuzz:int ->
  ?day_fuzz:int ->
  unit ->
  aux_item array
(** Sample [items] of a target user's ratings (fewer if the user rated
    fewer) and perturb each by up to ±[star_fuzz] stars (default 1) and
    ±[day_fuzz] days (default 14) — the attacker's imperfect memory /
    IMDb-sourced knowledge. *)

val movie_support : Dataset.Synth.rating array -> movies:int -> int array
(** Number of raters per movie in the released data. *)

val score : support:int array -> aux_item array -> Dataset.Synth.rating array -> float
(** Scoreboard similarity of a candidate's record to the auxiliary
    knowledge: matching items (same movie, stars within 1, day within 30)
    contribute [1 / log(2 + support(movie))]. *)

type verdict = {
  best : int;  (** highest-scoring candidate *)
  eccentricity : float;  (** (best − runner-up) / σ(scores) *)
  matched : int option;  (** [Some best] iff eccentricity clears the threshold *)
}

val deanonymize :
  support:int array ->
  threshold:float ->
  aux_item array ->
  Dataset.Synth.rating array array ->
  verdict
(** Score all candidates (indexed by user id) and apply the eccentricity
    test. Raises [Invalid_argument] on an empty candidate set. *)
