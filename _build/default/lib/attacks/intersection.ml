module Schema = Dataset.Schema
module Table = Dataset.Table
module Gtable = Dataset.Gtable
module Gvalue = Dataset.Gvalue
module Value = Dataset.Value

type disclosure = {
  candidates_1 : int;
  candidates_2 : int;
  intersection : int;
  disclosed : bool;
}

let qi_indices schema =
  Schema.with_role schema Schema.Quasi_identifier
  |> List.map (Schema.index_of schema)

(* The sensitive values an attacker considers possible for a target given
   one release: union over equivalence classes covering the target's QIs of
   the class's released sensitive cells' possible values. *)
let candidates release ~sensitive target =
  let schema = Gtable.schema release in
  let qis = qi_indices schema in
  let s_j = Schema.index_of schema sensitive in
  let rows = Gtable.rows release in
  let values = Hashtbl.create 8 in
  let covered = ref false in
  let qi_names = Schema.with_role schema Schema.Quasi_identifier in
  List.iter
    (fun c ->
      let rep = c.Gtable.rep in
      let covers =
        List.for_all (fun j -> Gvalue.matches rep.(j) target.(j)) qis
        && not (Array.for_all Gvalue.is_suppressed rep)
      in
      if covers then begin
        covered := true;
        Array.iter
          (fun i ->
            match rows.(i).(s_j) with
            | Gvalue.Exact v -> Hashtbl.replace values v ()
            | Gvalue.Category { members; _ } ->
              List.iter (fun v -> Hashtbl.replace values v ()) members
            | Gvalue.Int_range (lo, hi) ->
              for v = lo to min hi (lo + 1000) do
                Hashtbl.replace values (Value.Int v) ()
              done
            | Gvalue.Any | Gvalue.Prefix _ | Gvalue.Float_range _ ->
              (* Uninformative cells contribute no candidate constraint;
                 mark by a wildcard sentinel handled by the caller through
                 candidate count 0. *)
              ())
          c.Gtable.members
      end)
    (Gtable.classes_on release qi_names);
  if not !covered then None
  else Some (Hashtbl.fold (fun v () acc -> v :: acc) values [])

let attack_target ~release1 ~release2 ~sensitive target =
  let c1 = candidates release1 ~sensitive target in
  let c2 = candidates release2 ~sensitive target in
  let inter =
    match (c1, c2) with
    | Some a, Some b ->
      List.filter (fun v -> List.exists (Value.equal v) b) a
    | Some a, None | None, Some a -> a
    | None, None -> []
  in
  let count = function Some l -> List.length l | None -> 0 in
  {
    candidates_1 = count c1;
    candidates_2 = count c2;
    intersection = List.length inter;
    disclosed = List.length inter = 1;
  }

type stats = {
  targets : int;
  disclosed_by_one : int;
  disclosed_by_intersection : int;
  rate_one : float;
  rate_combined : float;
}

let evaluate ~table ~release1 ~release2 ~sensitive =
  let n = Table.nrows table in
  let one = ref 0 and combined = ref 0 in
  Table.iter
    (fun _ target ->
      let d = attack_target ~release1 ~release2 ~sensitive target in
      if d.candidates_1 = 1 then incr one;
      if d.disclosed then incr combined)
    table;
  {
    targets = n;
    disclosed_by_one = !one;
    disclosed_by_intersection = !combined;
    rate_one = (if n = 0 then 0. else float_of_int !one /. float_of_int n);
    rate_combined = (if n = 0 then 0. else float_of_int !combined /. float_of_int n);
  }
