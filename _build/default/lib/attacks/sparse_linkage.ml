type aux_item = { movie : int; stars : int; day : int }

let make_aux rng target_ratings ~items ?(star_fuzz = 1) ?(day_fuzz = 14) () =
  let available = Array.length target_ratings in
  let take = min items available in
  let chosen = Prob.Rng.sample_without_replacement rng take available in
  Array.map
    (fun i ->
      let r = target_ratings.(i) in
      {
        movie = r.Dataset.Synth.movie;
        stars =
          min 5 (max 1 (r.Dataset.Synth.stars + Prob.Rng.int_in rng (-star_fuzz) star_fuzz));
        day = max 0 (r.Dataset.Synth.day + Prob.Rng.int_in rng (-day_fuzz) day_fuzz);
      })
    chosen

let movie_support ratings ~movies =
  let support = Array.make movies 0 in
  Array.iter
    (fun r -> support.(r.Dataset.Synth.movie) <- support.(r.Dataset.Synth.movie) + 1)
    ratings;
  support

let item_matches item (r : Dataset.Synth.rating) =
  item.movie = r.Dataset.Synth.movie
  && abs (item.stars - r.Dataset.Synth.stars) <= 1
  && abs (item.day - r.Dataset.Synth.day) <= 30

let score ~support aux candidate =
  Array.fold_left
    (fun acc item ->
      let matched = Array.exists (item_matches item) candidate in
      if matched then
        acc +. (1. /. Float.log (2. +. float_of_int support.(item.movie)))
      else acc)
    0. aux

type verdict = { best : int; eccentricity : float; matched : int option }

let deanonymize ~support ~threshold aux candidates =
  let n = Array.length candidates in
  if n = 0 then invalid_arg "Sparse_linkage.deanonymize: no candidates";
  let scores = Array.map (fun c -> score ~support aux c) candidates in
  let best = ref 0 in
  Array.iteri (fun i s -> if s > scores.(!best) then best := i) scores;
  let runner_up =
    Array.to_list scores
    |> List.mapi (fun i s -> (i, s))
    |> List.filter (fun (i, _) -> i <> !best)
    |> List.fold_left (fun acc (_, s) -> Float.max acc s) neg_infinity
  in
  let sigma = Prob.Stats.std scores in
  let eccentricity =
    if sigma <= 0. then if scores.(!best) > runner_up then infinity else 0.
    else (scores.(!best) -. runner_up) /. sigma
  in
  {
    best = !best;
    eccentricity;
    matched = (if eccentricity >= threshold then Some !best else None);
  }
