lib/query/auditor.mli:
