lib/query/erasure.ml: Array Dataset Hashtbl List Predicate
