lib/query/auditor.ml: Array Float Fun List
