lib/query/mechanism.ml: Array Dataset List Option Predicate Printf Prob
