lib/query/oracle.mli: Prob
