lib/query/oracle.ml: Array Prob
