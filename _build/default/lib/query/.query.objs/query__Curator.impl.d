lib/query/curator.ml: Array Auditor Dataset List Predicate Printf Prob
