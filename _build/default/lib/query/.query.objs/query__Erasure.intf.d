lib/query/erasure.mli: Dataset Predicate
