lib/query/predicate.mli: Dataset Prob
