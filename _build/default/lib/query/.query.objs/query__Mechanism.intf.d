lib/query/mechanism.mli: Dataset Predicate Prob
