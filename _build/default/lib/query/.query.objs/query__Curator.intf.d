lib/query/curator.mli: Dataset Predicate Prob
