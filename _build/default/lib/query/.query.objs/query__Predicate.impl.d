lib/query/predicate.ml: Array Buffer Dataset Hashtbl Int64 List Option Printf Prob String
