type mode = Exact | Heuristic

type heuristic_state = {
  mutable basis : float array list;  (* rows in reduced row-echelon form *)
  mutable pivots : int list;  (* pivot column of each basis row, same order *)
  mutable constraints : (int array * int) list;  (* answered (query, answer) *)
}

type state =
  | Enumerating of { mutable consistent : int list }  (* bitmask datasets *)
  | Eliminating of heuristic_state

type t = {
  data : int array;
  state : state;
  mutable answered : int;
  mutable refused : int;
}

type answer = Answered of float | Refused

let tolerance = 1e-9

let exact_cap = 20

let create ?mode data =
  Array.iter
    (fun v -> if v <> 0 && v <> 1 then invalid_arg "Auditor.create: dataset must be 0/1")
    data;
  let n = Array.length data in
  let mode =
    match mode with
    | Some m -> m
    | None -> if n <= 16 then Exact else Heuristic
  in
  let state =
    match mode with
    | Exact ->
      if n > exact_cap then
        invalid_arg "Auditor.create: Exact mode requires n <= 20";
      Enumerating { consistent = List.init (1 lsl n) Fun.id }
    | Heuristic ->
      Eliminating { basis = []; pivots = []; constraints = [] }
  in
  { data; state; answered = 0; refused = 0 }

let mode t =
  match t.state with Enumerating _ -> Exact | Eliminating _ -> Heuristic

let check_indices t q =
  let n = Array.length t.data in
  Array.iter
    (fun i -> if i < 0 || i >= n then invalid_arg "Auditor: index out of range")
    q

let exact_answer t q = Array.fold_left (fun acc i -> acc + t.data.(i)) 0 q

(* --- Exact mode: filter the consistent set, check per-bit ambiguity. --- *)

let mask_answer mask q =
  Array.fold_left (fun acc i -> acc + ((mask lsr i) land 1)) 0 q

let enum_filter consistent q a =
  List.filter (fun mask -> mask_answer mask q = a) consistent

let enum_discloses n consistent =
  let rec check i =
    if i >= n then false
    else begin
      let zeros = List.exists (fun m -> (m lsr i) land 1 = 0) consistent in
      let ones = List.exists (fun m -> (m lsr i) land 1 = 1) consistent in
      if zeros && ones then check (i + 1) else true
    end
  in
  check 0

(* --- Heuristic mode: RREF + integrality propagation. --- *)

let row_of_query t q =
  let row = Array.make (Array.length t.data) 0. in
  Array.iter (fun i -> row.(i) <- 1.) q;
  row

(* Reduce [row] against the basis (in place), returning its pivot column if
   it remains nonzero. *)
let reduce basis pivots row =
  List.iter2
    (fun b p ->
      let factor = row.(p) in
      if Float.abs factor > tolerance then
        Array.iteri (fun j v -> row.(j) <- row.(j) -. (factor *. v)) b)
    basis pivots;
  let pivot = ref (-1) in
  (try
     Array.iteri
       (fun j v ->
         if Float.abs v > tolerance then begin
           pivot := j;
           raise Exit
         end)
       row
   with Exit -> ());
  if !pivot < 0 then None
  else begin
    let p = !pivot in
    let scale = row.(p) in
    Array.iteri (fun j v -> row.(j) <- v /. scale) row;
    Some p
  end

(* Insert a reduced row and re-reduce existing rows against it (full RREF). *)
let insert basis pivots row pivot =
  let basis =
    List.map
      (fun b ->
        let factor = b.(pivot) in
        if Float.abs factor > tolerance then
          Array.mapi (fun j v -> v -. (factor *. row.(j))) b
        else b)
      basis
  in
  (row :: basis, pivot :: pivots)

let unit_row row =
  let nonzero = ref 0 in
  Array.iter (fun v -> if Float.abs v > tolerance then incr nonzero) row;
  !nonzero = 1

let linear_discloses basis = List.exists unit_row basis

(* A constraint whose residual hits 0 (or the number of its unfixed
   variables) pins every remaining variable; substitutions cascade. *)
let propagation_discloses n constraints =
  let fixed = Array.make n (-1) in
  let fixed_any = ref false in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (q, a) ->
        let unfixed = ref 0 and residual = ref a in
        Array.iter
          (fun i ->
            if fixed.(i) < 0 then incr unfixed else residual := !residual - fixed.(i))
          q;
        if !unfixed > 0 then
          if !residual = 0 then begin
            Array.iter (fun i -> if fixed.(i) < 0 then fixed.(i) <- 0) q;
            fixed_any := true;
            changed := true
          end
          else if !residual = !unfixed then begin
            Array.iter (fun i -> if fixed.(i) < 0 then fixed.(i) <- 1) q;
            fixed_any := true;
            changed := true
          end)
      constraints
  done;
  !fixed_any

let heuristic_candidate t (h : heuristic_state) q =
  let row = row_of_query t q in
  let constraints' = (q, exact_answer t q) :: h.constraints in
  let linear_part = reduce h.basis h.pivots row in
  let basis' =
    match linear_part with
    | None -> h.basis
    | Some pivot -> fst (insert h.basis h.pivots row pivot)
  in
  let disclosing =
    linear_discloses basis'
    || propagation_discloses (Array.length t.data) constraints'
  in
  (disclosing, linear_part, row, constraints')

(* --- Shared front end. --- *)

let would_disclose t q =
  check_indices t q;
  match t.state with
  | Enumerating e ->
    enum_discloses (Array.length t.data)
      (enum_filter e.consistent q (exact_answer t q))
  | Eliminating h ->
    let disclosing, _, _, _ = heuristic_candidate t h q in
    disclosing

let ask t q =
  check_indices t q;
  match t.state with
  | Enumerating e ->
    let filtered = enum_filter e.consistent q (exact_answer t q) in
    if enum_discloses (Array.length t.data) filtered then begin
      t.refused <- t.refused + 1;
      Refused
    end
    else begin
      e.consistent <- filtered;
      t.answered <- t.answered + 1;
      Answered (float_of_int (exact_answer t q))
    end
  | Eliminating h ->
    let disclosing, linear_part, row, constraints' = heuristic_candidate t h q in
    if disclosing then begin
      t.refused <- t.refused + 1;
      Refused
    end
    else begin
      (match linear_part with
      | Some pivot ->
        let basis, pivots = insert h.basis h.pivots row pivot in
        h.basis <- basis;
        h.pivots <- pivots
      | None -> ());
      h.constraints <- constraints';
      t.answered <- t.answered + 1;
      Answered (float_of_int (exact_answer t q))
    end

let answered t = t.answered

let refused t = t.refused
