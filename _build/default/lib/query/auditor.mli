(** Exact-disclosure query auditing.

    Theorem 1.1 leaves a curator two defenses: add enough noise, or limit
    the queries. A crude limit is a counter ({!Oracle.with_limit}); this
    module implements the classical {e auditing} alternative for exact
    subset-sum queries over a binary dataset: refuse a query if answering
    it (together with everything already answered) would determine some
    individual's bit exactly.

    Deciding boolean auditability is coNP-hard in general
    (Kleinberg–Papadimitriou–Raghavan 2000), so two modes are provided:

    - [Exact]: maintain the full set of datasets consistent with the
      answers (enumeration; restricted to small [n]). Sound and complete
      by construction.
    - [Heuristic]: two scalable detectors — {e linear} (a unit vector
      enters the row space of the answered queries; catches differencing
      like (x₀+x₁+x₂) − (x₁+x₂)) and {e integrality propagation}
      (a subset answered 0 or its full size pins every member, cascading).
      Sound queries are never refused, but rare disclosures slip through:
      a consistent system whose real solution set is a fractional line can
      have a unique 0/1 point. The tests pin one such instance.

    Either way, auditing illustrates {e why} the noise defense won: even
    refusing every provably-unsafe query, the answered remainder falls to
    least-squares reconstruction — approximate recovery needs no exactly
    determined bit (see the tests). *)

type mode =
  | Exact  (** enumeration over all consistent datasets; requires [n <= 20] *)
  | Heuristic  (** linear elimination + integrality propagation; any [n] *)

type t

type answer =
  | Answered of float
  | Refused  (** answering would fully determine some record's bit *)

val create : ?mode:mode -> int array -> t
(** Audit an exact oracle over the given binary dataset. The default mode
    is [Exact] when [n <= 16] and [Heuristic] otherwise. Raises
    [Invalid_argument] on non-0/1 entries, or on [Exact] with [n > 20]. *)

val mode : t -> mode

val ask : t -> int array -> answer
(** Submit a subset query (indices into [0, n)). Answered queries are added
    to the audit state. Raises [Invalid_argument] on out-of-range
    indices. *)

val answered : t -> int
(** Number of queries answered so far. *)

val refused : t -> int

val would_disclose : t -> int array -> bool
(** The audit predicate itself, without consuming the query. *)
