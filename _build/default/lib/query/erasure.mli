(** Deletion-compliant query servers (the right to erasure).

    The paper's discussion points to formalizing the right to be forgotten
    (Garg–Goldwasser–Vasudevan) as a sibling of the singling-out analysis.
    This module gives the idea an executable core: a stateful count server
    that accepts erasure requests, in two implementations —

    - {e compliant}: every answer is recomputed from the current record
      set, so an erased record influences nothing afterwards;
    - {e retaining}: answers are served from the snapshot taken at ingest
      (a common real-world failure mode: materialized views, logs, models
      that are never retrained), so erased records keep leaking.

    Whether a server honoured an erasure is {e checked via isolation}: if
    the erased record can still be singled out by its own full-tuple
    predicate, deletion failed. That check is {!verify_erasure}. *)

type implementation =
  | Recompute  (** compliant: answers derive from current records only *)
  | Cached  (** retaining: answers derive from the ingest-time snapshot *)

type t

val create : implementation -> Dataset.Table.t -> t

val erase : t -> int -> unit
(** Request erasure of the row that had the given index at ingest.
    Idempotent. Raises [Invalid_argument] on out-of-range indices. *)

val count : t -> Predicate.t -> int
(** Answer a count query under the server's implementation. *)

val live_records : t -> int

val verify_erasure : t -> int -> bool
(** [verify_erasure t i] asks the server for the count of the erased
    record's own full-tuple predicate and compares it with the count over
    the genuinely remaining records: [true] iff they agree — i.e. the
    erased record no longer influences answers. A [Cached] server fails
    this check whenever the erased record was unique on its tuple. Raises
    [Invalid_argument] if record [i] was not erased. *)
