(** Mechanisms: randomized maps [M : X^n -> Y] (Section 2.2).

    A mechanism consumes a dataset and produces a value in a structured
    output domain: statistical answers, an anonymized release, raw 64-bit
    words (for the pad constructions of Theorem 2.7), or tuples of other
    outputs (composition). Attackers in the PSO game consume exactly this
    output type, so that "the predicate produced by A acts on the records of
    the original dataset and not the output y" is enforced by construction. *)

type output =
  | Scalar of float
  | Vector of float array
  | Release of Dataset.Table.t  (** a (possibly transformed) raw-value table *)
  | Generalized of Dataset.Gtable.t  (** a k-anonymized release *)
  | Words of int64 array  (** opaque fixed-width outputs *)
  | Pair of output * output

type t = {
  name : string;
  run : Prob.Rng.t -> Dataset.Table.t -> output;
}

val run : t -> Prob.Rng.t -> Dataset.Table.t -> output

(** {1 Constructors} *)

val exact_count : Predicate.t -> t
(** Theorem 2.5's [M#q]: the exact number of records satisfying [q]. *)

val exact_counts : Predicate.t array -> t
(** Tuple of exact counts — the composed mechanism of Theorem 2.8. *)

val laplace_counts : epsilon:float -> Predicate.t array -> t
(** Counts with i.i.d. Laplace([len/epsilon]) noise: an [epsilon]-DP answer
    to the whole vector (sensitivity 1 per query, budget split evenly). *)

val identity_release : t
(** Publishes the dataset as-is (the trivially non-anonymous baseline). *)

val compose : t -> t -> t
(** [compose m1 m2] runs both on the same dataset with independent
    randomness and pairs the outputs — the object whose PSO security
    Theorem 2.7 shows can be strictly worse than its parts'. *)

val post_process : string -> (output -> output) -> t -> t
(** [post_process name f m] applies a data-independent transformation to
    [m]'s output — the operation Theorem 2.6 proves cannot create a PSO
    violation. *)

(** {1 Projections} *)

val as_vector : output -> float array option
(** [Scalar] and [Vector] outputs as an array; flattens [Pair]s of such. *)
