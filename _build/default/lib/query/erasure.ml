type implementation = Recompute | Cached

type t = {
  implementation : implementation;
  snapshot : Dataset.Table.t;  (* ingest-time data, never modified *)
  erased : (int, unit) Hashtbl.t;
}

let create implementation table =
  { implementation; snapshot = table; erased = Hashtbl.create 8 }

let erase t i =
  if i < 0 || i >= Dataset.Table.nrows t.snapshot then
    invalid_arg "Erasure.erase: index out of range";
  Hashtbl.replace t.erased i ()

let live_records t = Dataset.Table.nrows t.snapshot - Hashtbl.length t.erased

let count_over t ~include_erased p =
  let schema = Dataset.Table.schema t.snapshot in
  let acc = ref 0 in
  Dataset.Table.iter
    (fun i row ->
      if
        (include_erased || not (Hashtbl.mem t.erased i))
        && Predicate.eval schema p row
      then incr acc)
    t.snapshot;
  !acc

let count t p =
  match t.implementation with
  | Recompute -> count_over t ~include_erased:false p
  | Cached -> count_over t ~include_erased:true p

let full_tuple_predicate t i =
  let schema = Dataset.Table.schema t.snapshot in
  let row = Dataset.Table.row t.snapshot i in
  Predicate.conj
    (List.mapi
       (fun j v ->
         Predicate.Atom
           (Predicate.Eq ((Dataset.Schema.attribute schema j).Dataset.Schema.name, v)))
       (Array.to_list row))

let verify_erasure t i =
  if not (Hashtbl.mem t.erased i) then
    invalid_arg "Erasure.verify_erasure: record was not erased";
  let p = full_tuple_predicate t i in
  count t p = count_over t ~include_erased:false p
