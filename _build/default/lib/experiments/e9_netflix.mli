(** E9 — Narayanan–Shmatikov sparse-data de-anonymization (Section 1).

    For each trial a random subscriber is targeted; the attacker knows a few
    imprecise (movie, rating, date) triples and runs Scoreboard-RH against
    the released ratings. The shape: success climbs steeply with the amount
    of auxiliary knowledge — "little partial knowledge ... can lead to the
    exact re-identification of the subscriber". *)

type row = {
  users : int;
  movies : int;
  aux_items : int;
  correct : float;  (** matched and it was the right subscriber *)
  wrong : float;  (** matched someone else (eccentricity fooled) *)
  abstained : float;  (** eccentricity test withheld a guess *)
}

val run : scale:Common.scale -> Prob.Rng.t -> row list

val print : scale:Common.scale -> Prob.Rng.t -> Format.formatter -> unit

val kernel : Prob.Rng.t -> unit
