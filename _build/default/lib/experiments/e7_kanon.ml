type row = {
  algorithm : string;
  recoding : string;
  k : int;
  attributes : int;
  attacker : string;
  success : float;
  isolations_any_weight : float;
  k_anonymous : bool;
  l_diversity : int;
  t_closeness : float;
}

let domain = 64

let model ~retained = Dataset.Synth.kanon_pso_model ~qis:6 ~retained ~domain

let int_scheme schema =
  List.map
    (fun qi ->
      (qi, Dataset.Hierarchy.int_ranges ~name:qi ~lo:0 ~widths:[ 2; 4; 8; 16; 32; 64 ]))
    (Dataset.Schema.with_role schema Dataset.Schema.Quasi_identifier)

let mechanism_of ~algorithm ~recoding ~k schema =
  match algorithm with
  | `Mondrian ->
    {
      Query.Mechanism.name = "mondrian";
      run =
        (fun _rng table ->
          Query.Mechanism.Generalized (Kanon.Mondrian.anonymize ~recoding ~k table));
    }
  | `Datafly ->
    let scheme = int_scheme schema in
    {
      Query.Mechanism.name = "datafly";
      run =
        (fun _rng table ->
          Query.Mechanism.Generalized
            (Kanon.Datafly.anonymize ~scheme ~k table).Kanon.Datafly.release);
    }

let measure rng ~trials ~n ~k ~retained ~algorithm ~recoding ~attacker =
  let model = model ~retained in
  let schema = Dataset.Model.schema model in
  let mech = mechanism_of ~algorithm ~recoding ~k schema in
  let att =
    match attacker with
    | `Greedy -> Pso.Kanon_attack.greedy ()
    | `Cohen -> Pso.Kanon_attack.cohen ()
  in
  let outcome =
    Pso.Game.run rng ~model ~n ~mechanism:mech ~attacker:att
      ~weight_bound:(Pso.Isolation.negligible_bound ~n ~c:2.)
      ~trials
  in
  (* Invariant + variant checks on one sample release. *)
  let sample = Dataset.Model.sample_table rng model n in
  let release =
    match Query.Mechanism.run mech rng sample with
    | Query.Mechanism.Generalized g -> g
    | _ -> assert false
  in
  let qis = Dataset.Schema.with_role schema Dataset.Schema.Quasi_identifier in
  let sensitive =
    match Dataset.Schema.with_role schema Dataset.Schema.Sensitive with
    | s :: _ -> s
    | [] -> List.hd (Dataset.Schema.names schema)
  in
  {
    algorithm = (match algorithm with `Mondrian -> "mondrian" | `Datafly -> "datafly");
    recoding =
      (match recoding with
      | Kanon.Mondrian.Class_level -> "class-level"
      | Kanon.Mondrian.Member_level -> "member-level");
    k;
    attributes = Dataset.Schema.arity schema;
    attacker = (match attacker with `Greedy -> "greedy" | `Cohen -> "cohen");
    success = outcome.Pso.Game.success_rate;
    isolations_any_weight =
      float_of_int outcome.Pso.Game.isolations /. float_of_int outcome.Pso.Game.trials;
    k_anonymous = Kanon.Anonymizer.is_k_anonymous ~k release;
    l_diversity = Kanon.Diversity.l_diversity ~qis ~sensitive release sample;
    t_closeness = Kanon.Diversity.t_closeness ~qis ~sensitive release sample;
  }

let run ~scale rng =
  let trials, n, ks =
    match scale with
    | Common.Quick -> (60, 120, [ 5 ])
    | Common.Full -> (300, 150, [ 2; 5; 10; 20 ])
  in
  let main =
    List.concat_map
      (fun k ->
        [
          measure rng ~trials ~n ~k ~retained:42 ~algorithm:`Mondrian
            ~recoding:Kanon.Mondrian.Class_level ~attacker:`Greedy;
          measure rng ~trials ~n ~k ~retained:42 ~algorithm:`Mondrian
            ~recoding:Kanon.Mondrian.Member_level ~attacker:`Cohen;
        ])
      ks
  in
  let ablations =
    match scale with
    | Common.Quick -> []
    | Common.Full ->
      [
        (* Few attributes: class predicates too heavy, formal attack fails
           even though isolations persist. *)
        measure rng ~trials ~n ~k:5 ~retained:2 ~algorithm:`Mondrian
          ~recoding:Kanon.Mondrian.Class_level ~attacker:`Greedy;
        (* Full-domain algorithm, member-level semantics. *)
        measure rng ~trials:(trials / 3) ~n ~k:5 ~retained:42 ~algorithm:`Datafly
          ~recoding:Kanon.Mondrian.Member_level ~attacker:`Cohen;
      ]
  in
  main @ ablations

let print ~scale rng fmt =
  Common.banner fmt ~id:"E7"
    ~title:"k-anonymity enables PSO (Theorem 2.10 + Cohen)"
    ~claim:
      "Typical k-anonymizers yield equivalence-class predicates of \
       negligible weight; refining within a class isolates with probability \
       ~37% (greedy) and ~100% (Cohen's released-unique attack). The \
       analysis extends to l-diversity and t-closeness (footnote 3).";
  let rows = run ~scale rng in
  Common.table fmt
    ~header:
      [
        "algorithm"; "recoding"; "k"; "attrs"; "attacker"; "PSO success";
        "isolations"; "k-anon?"; "l-div"; "t-close";
      ]
    (List.map
       (fun r ->
         [
           r.algorithm;
           r.recoding;
           string_of_int r.k;
           string_of_int r.attributes;
           r.attacker;
           Common.pct r.success;
           Common.pct r.isolations_any_weight;
           (if r.k_anonymous then "yes" else "NO");
           string_of_int r.l_diversity;
           Printf.sprintf "%.2f" r.t_closeness;
         ])
       rows);
  Format.fprintf fmt
    "@.(greedy reference line: (1-1/k)^(k-1); 1/e = %s)@."
    (Common.pct Pso.Isolation.one_over_e);
  (* Composition ablation (Sec 1.1 / Ganta et al.): two independent
     5-anonymizations of the same data, attacked by intersecting the
     covering classes' sensitive-value sets. *)
  let model = model ~retained:6 in
  let schema = Dataset.Model.schema model in
  let table = Dataset.Model.sample_table rng model 150 in
  let release1 =
    Kanon.Mondrian.anonymize ~recoding:Kanon.Mondrian.Member_level ~k:5 table
  in
  let release2 =
    (Kanon.Datafly.anonymize ~scheme:(int_scheme schema) ~k:5 table)
      .Kanon.Datafly.release
  in
  let sensitive =
    List.hd (Dataset.Schema.with_role schema Dataset.Schema.Sensitive)
  in
  let stats =
    Attacks.Intersection.evaluate ~table ~release1 ~release2 ~sensitive
  in
  Format.fprintf fmt
    "composition ablation (two independent k=5 releases, %d targets): \
     sensitive value disclosed for %s from one release, %s after \
     intersecting — k-anonymity does not compose.@."
    stats.Attacks.Intersection.targets
    (Common.pct stats.Attacks.Intersection.rate_one)
    (Common.pct stats.Attacks.Intersection.rate_combined)

let kernel rng =
  ignore
    (measure rng ~trials:5 ~n:100 ~k:5 ~retained:42 ~algorithm:`Mondrian
       ~recoding:Kanon.Mondrian.Member_level ~attacker:`Cohen)
