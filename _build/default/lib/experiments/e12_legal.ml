let params = function
  | Common.Quick ->
    { Pso.Theorems.n = 100; trials = 80; weight_exponent = 2. }
  | Common.Full -> { Pso.Theorems.n = 200; trials = 400; weight_exponent = 2. }

let report ~scale rng =
  Legal.Report.build ~context:"E12 (paper Section 2.4)" rng (params scale)

let print ~scale rng fmt =
  Common.banner fmt ~id:"E12" ~title:"Legal theorems and the WP29 comparison"
    ~claim:
      "k-anonymity (and l-diversity, t-closeness) fails to prevent singling \
       out as required by the GDPR and does not meet its anonymization \
       standard; differential privacy meets the necessary condition. The \
       WP29 Opinion's answers are reversed for the k-anonymity family.";
  Legal.Report.pp fmt (report ~scale rng)

let kernel rng =
  ignore
    (Legal.Report.build rng
       { Pso.Theorems.n = 60; trials = 20; weight_exponent = 2. })
