type row = {
  users : int;
  movies : int;
  aux_items : int;
  correct : float;
  wrong : float;
  abstained : float;
}

let threshold = 1.5

let measure rng ~users ~movies ~aux_items ~targets =
  let ratings =
    Dataset.Synth.ratings rng ~users ~movies ~ratings_per_user:12 ()
  in
  let by_user = Dataset.Synth.ratings_by_user ratings ~users in
  let support = Attacks.Sparse_linkage.movie_support ratings ~movies in
  let correct = ref 0 and wrong = ref 0 and abstained = ref 0 in
  for _ = 1 to targets do
    let target = Prob.Rng.int rng users in
    let aux =
      Attacks.Sparse_linkage.make_aux rng by_user.(target) ~items:aux_items ()
    in
    let verdict =
      Attacks.Sparse_linkage.deanonymize ~support ~threshold aux by_user
    in
    match verdict.Attacks.Sparse_linkage.matched with
    | Some m when m = target -> incr correct
    | Some _ -> incr wrong
    | None -> incr abstained
  done;
  let f c = float_of_int c /. float_of_int targets in
  {
    users;
    movies;
    aux_items;
    correct = f !correct;
    wrong = f !wrong;
    abstained = f !abstained;
  }

let run ~scale rng =
  let users, movies, targets, aux_sizes =
    match scale with
    | Common.Quick -> (800, 300, 40, [ 2; 4; 8 ])
    | Common.Full -> (5000, 500, 150, [ 1; 2; 3; 4; 6; 8 ])
  in
  List.map (fun aux_items -> measure rng ~users ~movies ~aux_items ~targets) aux_sizes

let print ~scale rng fmt =
  Common.banner fmt ~id:"E9"
    ~title:"Sparse-dataset de-anonymization (Netflix / Scoreboard-RH)"
    ~claim:
      "A handful of approximate (movie, rating, date) observations usually \
       identifies a subscriber exactly, or narrows to a small candidate \
       set, despite the absence of conventional identifiers.";
  let rows = run ~scale rng in
  Common.table fmt
    ~header:[ "users"; "movies"; "aux items"; "correct"; "wrong"; "abstained" ]
    (List.map
       (fun r ->
         [
           string_of_int r.users;
           string_of_int r.movies;
           string_of_int r.aux_items;
           Common.pct r.correct;
           Common.pct r.wrong;
           Common.pct r.abstained;
         ])
       rows)

let kernel rng = ignore (measure rng ~users:300 ~movies:200 ~aux_items:4 ~targets:10)
