type scale = Quick | Full

let table fmt ~header rows =
  let all = header :: rows in
  let cols = List.length header in
  let width j =
    List.fold_left
      (fun acc row -> max acc (String.length (List.nth row j)))
      0 all
  in
  let widths = List.init cols width in
  let emit row =
    List.iteri
      (fun j cell -> Format.fprintf fmt "%-*s  " (List.nth widths j) cell)
      row;
    Format.pp_print_newline fmt ()
  in
  emit header;
  List.iteri
    (fun j w ->
      ignore j;
      Format.fprintf fmt "%s  " (String.make w '-'))
    widths;
  Format.pp_print_newline fmt ();
  List.iter emit rows

let pct f = Printf.sprintf "%.1f%%" (100. *. f)

let g3 f = Printf.sprintf "%.3g" f

let banner fmt ~id ~title ~claim =
  Format.fprintf fmt "@.== %s: %s ==@." id title;
  Format.fprintf fmt "paper claim: %s@.@." claim
