(** Shared experiment-harness plumbing: run scales and table rendering. *)

type scale =
  | Quick  (** seconds; used by tests and default CLI runs *)
  | Full  (** the parameters recorded in EXPERIMENTS.md *)

val table : Format.formatter -> header:string list -> string list list -> unit
(** Fixed-width aligned table with a separator under the header. *)

val pct : float -> string
(** "36.8%" *)

val g3 : float -> string
(** "%.3g" *)

val banner : Format.formatter -> id:string -> title:string -> claim:string -> unit
(** The experiment's header block: id, title, and the paper claim being
    reproduced. *)
