(** E6 — Theorem 2.9: differential privacy prevents predicate singling out.

    The exact-count composition attacker of E5 is re-run against
    Laplace-noised counts across ε. The shape: at any constant ε the attack
    collapses to ~0; only absurdly large budgets (ε in the hundreds for this
    workload, i.e. per-query noise below half a count) restore the
    exact-count behaviour. A "no noise" row anchors the comparison. *)

type row = {
  epsilon : float option;  (** [None] = exact counts *)
  per_query_scale : float;  (** Laplace scale actually applied per answer *)
  success : float;
  ci : float * float;
}

val run : scale:Common.scale -> Prob.Rng.t -> row list

val print : scale:Common.scale -> Prob.Rng.t -> Format.formatter -> unit

val kernel : Prob.Rng.t -> unit
