type row = {
  population : int;
  release : string;
  qi_unique : float;
  voter_coverage : float;
  claims : int;
  correct : int;
  precision : float;
  reidentified : float;
}

let qis = [ "zip"; "birth_date"; "sex" ]

let measure rng ~n ~coverage ~safe_harbor =
  let population = Dataset.Synth.population rng ~n () in
  let release, on, name_attr =
    if safe_harbor then begin
      (* Safe-harbor both sides identically so the join keys align. *)
      let redact t = Legal.Safe_harbor.release_table (Legal.Safe_harbor.deidentify t) in
      let medical = redact population in
      (medical, qis, "name")
    end
    else (Dataset.Synth.gic_release population, qis, "name")
  in
  let voters =
    if safe_harbor then begin
      let redacted = Legal.Safe_harbor.release_table (Legal.Safe_harbor.deidentify population) in
      (* Voter list keeps names: restore the name column from the population
         before projecting, then sample coverage. *)
      let rows =
        Array.mapi
          (fun i row ->
            let name_idx =
              Dataset.Schema.index_of (Dataset.Table.schema redacted) "name"
            in
            let copy = Array.copy row in
            copy.(name_idx) <- Dataset.Table.value population i "name";
            copy)
          (Dataset.Table.rows redacted)
      in
      let full = Dataset.Table.make (Dataset.Table.schema redacted) rows in
      let projected = Dataset.Table.project full ("name" :: qis) in
      let kept =
        Array.of_list
          (List.filter
             (fun _ -> Prob.Sampler.bernoulli rng ~p:coverage)
             (List.init (Dataset.Table.nrows projected) Fun.id))
      in
      Dataset.Table.select projected kept
    end
    else Dataset.Synth.voter_list rng population ~coverage
  in
  let stats =
    if safe_harbor then begin
      (* Release rows are population-aligned in both branches. *)
      let population_names = Dataset.Table.project population [ "name" ] in
      ignore population_names;
      Attacks.Linkage.reidentify
        ~population:
          (Dataset.Table.make (Dataset.Table.schema release)
             (Array.mapi
                (fun i row ->
                  let copy = Array.copy row in
                  let name_idx =
                    Dataset.Schema.index_of (Dataset.Table.schema release) "name"
                  in
                  copy.(name_idx) <- Dataset.Table.value population i "name";
                  copy)
                (Dataset.Table.rows release)))
        ~release ~aux:voters ~on ~name_attr
    end
    else
      Attacks.Linkage.reidentify ~population ~release ~aux:voters ~on ~name_attr
  in
  {
    population = n;
    release = (if safe_harbor then "safe harbor" else "redacted (GIC)");
    qi_unique = Attacks.Linkage.unique_fraction release ~on;
    voter_coverage = coverage;
    claims = stats.Attacks.Linkage.claims;
    correct = stats.Attacks.Linkage.correct;
    precision = stats.Attacks.Linkage.precision;
    reidentified = stats.Attacks.Linkage.reidentification_rate;
  }

let run ~scale rng =
  let sizes =
    match scale with Common.Quick -> [ 2000 ] | Common.Full -> [ 2000; 10000; 40000 ]
  in
  List.concat_map
    (fun n ->
      [
        measure rng ~n ~coverage:0.55 ~safe_harbor:false;
        measure rng ~n ~coverage:0.55 ~safe_harbor:true;
      ])
    sizes

let print ~scale rng fmt =
  Common.banner fmt ~id:"E8" ~title:"Quasi-identifier linkage (Sweeney / GIC)"
    ~claim:
      "The combination of ZIP code, birth date and sex is unique for a vast \
       majority of the population; matching it against an identified voter \
       list re-identifies the redacted medical records.";
  let rows = run ~scale rng in
  Common.table fmt
    ~header:
      [
        "population"; "release"; "QI-unique"; "voter cov."; "claims";
        "correct"; "precision"; "re-identified";
      ]
    (List.map
       (fun r ->
         [
           string_of_int r.population;
           r.release;
           Common.pct r.qi_unique;
           Common.pct r.voter_coverage;
           string_of_int r.claims;
           string_of_int r.correct;
           Common.pct r.precision;
           Common.pct r.reidentified;
         ])
       rows);
  (* The measured safe-harbor residual risk, folded into its legal
     determination. *)
  (match
     List.filter (fun r -> r.release = "safe harbor") rows
     |> List.sort (fun a b -> Int.compare b.population a.population)
   with
  | worst :: _ ->
    let det =
      Legal.Determinations.safe_harbor
        ~reidentification_rate:worst.reidentified ~population:worst.population
    in
    Format.fprintf fmt "@.%a@." Legal.Theorem.pp det
  | [] -> ())

let kernel rng = ignore (measure rng ~n:1000 ~coverage:0.5 ~safe_harbor:false)
