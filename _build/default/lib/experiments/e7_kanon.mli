(** E7 — Theorem 2.10 and Cohen's strengthening: k-anonymity enables
    predicate singling out.

    Sweeps k and the anonymization algorithm for both attackers:
    the Theorem 2.10 greedy attacker against class-level Mondrian releases
    (≈ 37%, the (1−1/k')^{k'−1} line) and the Cohen-style released-unique
    attacker against member-level releases (≈ 100%). An attribute-count
    ablation shows the "typical datasets have many attributes" hedge doing
    real work: with few attributes the class predicates are too heavy and
    the formal attack fails even though isolations still happen. Each row
    also verifies the attacked releases are genuinely k-anonymous and
    reports their l-diversity / t-closeness, confirming footnote 3. *)

type row = {
  algorithm : string;
  recoding : string;
  k : int;
  attributes : int;  (** total attribute count in the data model *)
  attacker : string;
  success : float;
  isolations_any_weight : float;
  k_anonymous : bool;  (** invariant check on a sample release *)
  l_diversity : int;  (** of a sample release *)
  t_closeness : float;
}

val run : scale:Common.scale -> Prob.Rng.t -> row list

val print : scale:Common.scale -> Prob.Rng.t -> Format.formatter -> unit

val kernel : Prob.Rng.t -> unit
