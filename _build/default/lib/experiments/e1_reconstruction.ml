type row = {
  attack : string;
  n : int;
  queries : int;
  alpha : float;
  agreement : float;
  blatant : bool;
}

let random_bits rng n = Array.init n (fun _ -> if Prob.Rng.bool rng then 1 else 0)

let mean_agreement rng ~trials ~n ~alpha attack =
  let total = ref 0. in
  for _ = 1 to trials do
    let truth = random_bits rng n in
    let oracle =
      if alpha = 0. then Query.Oracle.exact truth
      else Query.Oracle.bounded_noise rng ~magnitude:alpha truth
    in
    let result = attack oracle truth in
    total := !total +. result.Attacks.Reconstruction.agreement
  done;
  !total /. float_of_int trials

let make ~attack ~n ~queries ~alpha agreement =
  {
    attack;
    n;
    queries;
    alpha;
    agreement;
    blatant = agreement >= Attacks.Reconstruction.blatant_non_privacy_threshold;
  }

let run ~scale rng =
  let trials, lsq_ns, exh_n =
    match scale with
    | Common.Quick -> (2, [ 64 ], 8)
    | Common.Full -> (5, [ 64; 256 ], 12)
  in
  let rows = ref [] in
  (* Exhaustive attack (Theorem 1.1(i)): tolerates alpha = Theta(n). *)
  let n = exh_n in
  List.iter
    (fun alpha ->
      let agreement =
        mean_agreement rng ~trials:1 ~n ~alpha (fun oracle truth ->
            Attacks.Reconstruction.exhaustive oracle ~truth)
      in
      rows := make ~attack:"exhaustive" ~n ~queries:(1 lsl n) ~alpha agreement :: !rows)
    [ 0.; float_of_int n /. 8.; float_of_int n /. 4. ];
  (* Least-squares attack (Theorem 1.1(ii)): tolerates alpha = Theta(sqrt n). *)
  List.iter
    (fun n ->
      let sqrt_n = Float.sqrt (float_of_int n) in
      let queries = 8 * n in
      List.iter
        (fun alpha ->
          let agreement =
            mean_agreement rng ~trials ~n ~alpha (fun oracle truth ->
                Attacks.Reconstruction.least_squares rng oracle ~queries ~truth)
          in
          rows := make ~attack:"least-squares" ~n ~queries ~alpha agreement :: !rows)
        [ 0.; 0.5 *. sqrt_n; sqrt_n; float_of_int n /. 8.; float_of_int n /. 3. ])
    lsq_ns;
  (* LP decoding at a single modest size (slow but noise-robust). *)
  let n = 32 in
  let queries = 6 * n in
  List.iter
    (fun alpha ->
      let agreement =
        mean_agreement rng ~trials:1 ~n ~alpha (fun oracle truth ->
            Attacks.Reconstruction.lp_decode rng oracle ~queries ~truth)
      in
      rows := make ~attack:"lp-decode" ~n ~queries ~alpha agreement :: !rows)
    [ 0.; Float.sqrt 32. ];
  List.rev !rows

let print ~scale rng fmt =
  Common.banner fmt ~id:"E1" ~title:"Database reconstruction (Theorem 1.1)"
    ~claim:
      "Reconstruction succeeds unless the mechanism adds error Omega(sqrt n) \
       against polynomially many queries (Omega(n) against all queries); \
       overly accurate answers to too many questions destroy privacy.";
  let rows = run ~scale rng in
  Common.table fmt
    ~header:[ "attack"; "n"; "queries"; "alpha"; "recovered"; "blatant?" ]
    (List.map
       (fun r ->
         [
           r.attack;
           string_of_int r.n;
           string_of_int r.queries;
           Printf.sprintf "%.1f" r.alpha;
           Common.pct r.agreement;
           (if r.blatant then "YES" else "no");
         ])
       rows)

let kernel rng =
  let n = 64 in
  let truth = random_bits rng n in
  let oracle = Query.Oracle.bounded_noise rng ~magnitude:2. truth in
  ignore (Attacks.Reconstruction.least_squares rng oracle ~queries:(4 * n) ~truth)
