(** E8 — Sweeney's GIC re-identification (Section 1).

    Measures (i) quasi-identifier uniqueness of (ZIP, birth date, sex) in a
    synthetic population — the paper's "unique for a vast majority" — and
    (ii) the end-to-end linkage attack joining the de-identified medical
    release with a voter list. A HIPAA-safe-harbor ablation shows how much
    the prescribed redaction actually reduces the risk. *)

type row = {
  population : int;
  release : string;  (** "redacted (GIC)" or "safe harbor" *)
  qi_unique : float;  (** fraction unique on the quasi-identifiers *)
  voter_coverage : float;
  claims : int;
  correct : int;
  precision : float;
  reidentified : float;  (** fraction of the release re-identified *)
}

val run : scale:Common.scale -> Prob.Rng.t -> row list

val print : scale:Common.scale -> Prob.Rng.t -> Format.formatter -> unit

val kernel : Prob.Rng.t -> unit
