(** Experiment registry: E1..E13 as uniform runnable entries, consumed by
    the bench harness and the CLI. *)

type entry = {
  id : string;
  title : string;
  print : scale:Common.scale -> Prob.Rng.t -> Format.formatter -> unit;
  kernel : Prob.Rng.t -> unit;  (** the operation Bechamel times *)
}

val all : entry list
(** In id order, E1..E13. *)

val find : string -> entry option
(** Case-insensitive lookup by id ("e7" or "E7"). *)
