type row = {
  people : int;
  snps : int;
  auc : float;
  accuracy : float;
  mean_member : float;
  mean_outsider : float;
}

let measure rng ~people ~snps =
  let g = Dataset.Synth.genotype_study rng ~people ~snps () in
  let e = Attacks.Membership.evaluate g in
  {
    people;
    snps;
    auc = e.Attacks.Membership.auc;
    accuracy = e.Attacks.Membership.accuracy;
    mean_member = e.Attacks.Membership.mean_member;
    mean_outsider = e.Attacks.Membership.mean_outsider;
  }

let run ~scale rng =
  let people, snp_counts =
    match scale with
    | Common.Quick -> (60, [ 50; 500 ])
    | Common.Full -> (100, [ 10; 50; 200; 1000; 5000 ])
  in
  List.map (fun snps -> measure rng ~people ~snps) snp_counts

let print ~scale rng fmt =
  Common.banner fmt ~id:"E11"
    ~title:"Membership inference from aggregates (Homer et al.)"
    ~claim:
      "Aggregate allele frequencies of a study pool suffice to infer whether \
       a given person's data was included — accuracy grows with the number \
       of published attributes.";
  let rows = run ~scale rng in
  Common.table fmt
    ~header:[ "pool"; "SNPs"; "AUC"; "accuracy"; "mean T (member)"; "mean T (outsider)" ]
    (List.map
       (fun r ->
         [
           string_of_int r.people;
           string_of_int r.snps;
           Printf.sprintf "%.3f" r.auc;
           Common.pct r.accuracy;
           Printf.sprintf "%.2f" r.mean_member;
           Printf.sprintf "%.2f" r.mean_outsider;
         ])
       rows)

let kernel rng = ignore (measure rng ~people:40 ~snps:200)
