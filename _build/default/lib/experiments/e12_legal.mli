(** E12 — the legal layer (Section 2.4): derive the paper's legal theorems
    from the measured technical verdicts and render the Article 29 Working
    Party comparison.

    This is the experiment that exercises the paper's actual contribution:
    the verdict battery (Theorems 1.3, 2.5–2.10) feeds the legal-theorem
    engine, which produces Legal Theorem 2.1, Legal Corollary 2.1 (for the
    whole k-anonymity family), the differential-privacy determination, the
    count-release composition caveat — and the WP29 conflict table the
    paper asks the EDPB to reconsider. *)

val report : scale:Common.scale -> Prob.Rng.t -> Legal.Report.t

val print : scale:Common.scale -> Prob.Rng.t -> Format.formatter -> unit

val kernel : Prob.Rng.t -> unit
