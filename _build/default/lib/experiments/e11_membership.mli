(** E11 — Homer et al. membership inference from aggregate genomic
    statistics (Section 1).

    Publishes only per-attribute frequencies of a study pool; the Homer
    statistic distinguishes members from non-members. The shape: AUC rises
    from chance toward 1 as the number of published attributes grows —
    aggregation alone is not anonymization. *)

type row = {
  people : int;
  snps : int;
  auc : float;
  accuracy : float;
  mean_member : float;
  mean_outsider : float;
}

val run : scale:Common.scale -> Prob.Rng.t -> row list

val print : scale:Common.scale -> Prob.Rng.t -> Format.formatter -> unit

val kernel : Prob.Rng.t -> unit
