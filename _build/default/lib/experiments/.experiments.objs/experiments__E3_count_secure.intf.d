lib/experiments/e3_count_secure.mli: Common Format Prob
