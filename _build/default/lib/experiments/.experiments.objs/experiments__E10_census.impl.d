lib/experiments/e10_census.ml: Array Attacks Common Dataset Format Legal List Printf
