lib/experiments/e8_sweeney.ml: Array Attacks Common Dataset Format Fun Int Legal List Prob
