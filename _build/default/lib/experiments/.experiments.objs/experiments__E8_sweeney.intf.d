lib/experiments/e8_sweeney.mli: Common Format Prob
