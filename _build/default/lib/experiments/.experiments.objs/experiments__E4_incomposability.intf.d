lib/experiments/e4_incomposability.mli: Common Format Prob
