lib/experiments/e7_kanon.mli: Common Format Prob
