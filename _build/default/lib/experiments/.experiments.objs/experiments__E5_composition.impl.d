lib/experiments/e5_composition.ml: Array Common Dataset Lazy List Prob Pso
