lib/experiments/e4_incomposability.ml: Common Dataset Lazy List Printf Prob Pso
