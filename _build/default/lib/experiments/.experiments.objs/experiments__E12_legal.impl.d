lib/experiments/e12_legal.ml: Common Legal Pso
