lib/experiments/e6_dp_defends.ml: Array Common Dataset Lazy List Printf Prob Pso Query
