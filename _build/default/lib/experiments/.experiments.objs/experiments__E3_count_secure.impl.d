lib/experiments/e3_count_secure.ml: Array Common Dataset Float Format Lazy List Printf Prob Pso Query
