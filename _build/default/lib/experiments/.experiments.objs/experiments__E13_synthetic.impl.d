lib/experiments/e13_synthetic.ml: Common Dataset Dp Lazy List Printf Pso Query
