lib/experiments/common.ml: Format List Printf String
