lib/experiments/e12_legal.mli: Common Format Legal Prob
