lib/experiments/common.mli: Format
