lib/experiments/e9_netflix.ml: Array Attacks Common Dataset List Prob
