lib/experiments/e10_census.mli: Common Format Prob
