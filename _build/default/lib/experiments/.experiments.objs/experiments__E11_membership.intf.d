lib/experiments/e11_membership.mli: Common Format Prob
