lib/experiments/e7_kanon.ml: Attacks Common Dataset Format Kanon List Printf Pso Query
