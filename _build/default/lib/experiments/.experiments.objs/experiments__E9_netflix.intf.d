lib/experiments/e9_netflix.mli: Common Format Prob
