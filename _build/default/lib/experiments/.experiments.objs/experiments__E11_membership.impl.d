lib/experiments/e11_membership.ml: Attacks Common Dataset List Printf
