lib/experiments/e2_birthday.mli: Common Format Prob
