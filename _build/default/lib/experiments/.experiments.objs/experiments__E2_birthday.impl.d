lib/experiments/e2_birthday.ml: Common Dataset Format Lazy List Printf Prob Pso Query
