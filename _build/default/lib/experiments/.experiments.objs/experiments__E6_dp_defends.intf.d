lib/experiments/e6_dp_defends.mli: Common Format Prob
