lib/experiments/e13_synthetic.mli: Common Format Prob
