lib/experiments/e1_reconstruction.ml: Array Attacks Common Float List Printf Prob Query
