lib/experiments/e5_composition.mli: Common Format Prob
