lib/experiments/e1_reconstruction.mli: Common Format Prob
