type role = Identifier | Quasi_identifier | Sensitive | Insensitive

type attribute = { name : string; kind : Value.kind; role : role }

type t = { attrs : attribute array; index : (string, int) Hashtbl.t }

let make attrs =
  if attrs = [] then invalid_arg "Schema.make: no attributes";
  let index = Hashtbl.create (List.length attrs) in
  List.iteri
    (fun i a ->
      if a.name = "" then invalid_arg "Schema.make: empty attribute name";
      if Hashtbl.mem index a.name then
        invalid_arg (Printf.sprintf "Schema.make: duplicate attribute %S" a.name);
      Hashtbl.replace index a.name i)
    attrs;
  { attrs = Array.of_list attrs; index }

let arity t = Array.length t.attrs

let attributes t = Array.copy t.attrs

let attribute t i = t.attrs.(i)

let names t = Array.to_list (Array.map (fun a -> a.name) t.attrs)

let index_of t name =
  match Hashtbl.find_opt t.index name with
  | Some i -> i
  | None -> raise Not_found

let mem t name = Hashtbl.mem t.index name

let find t name = t.attrs.(index_of t name)

let with_role t role =
  Array.to_list t.attrs
  |> List.filter (fun a -> a.role = role)
  |> List.map (fun a -> a.name)

let equal a b =
  Array.length a.attrs = Array.length b.attrs
  && Array.for_all2 (fun x y -> x = y) a.attrs b.attrs

let project t names = make (List.map (fun n -> find t n) names)

let role_name = function
  | Identifier -> "identifier"
  | Quasi_identifier -> "quasi-identifier"
  | Sensitive -> "sensitive"
  | Insensitive -> "insensitive"
