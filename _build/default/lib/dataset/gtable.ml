type grow = Gvalue.t array

type t = { schema : Schema.t; rows : grow array }

let make schema rows =
  let arity = Schema.arity schema in
  Array.iteri
    (fun i r ->
      if Array.length r <> arity then
        invalid_arg (Printf.sprintf "Gtable.make: row %d arity mismatch" i))
    rows;
  { schema; rows }

let schema t = t.schema

let nrows t = Array.length t.rows

let row t i = t.rows.(i)

let rows t = t.rows

type eclass = { rep : grow; members : int array }

let grow_equal a b = Array.for_all2 Gvalue.equal a b

let classes_indices t indices =
  (* Key classes by the rendered form of the selected cells for hashing;
     verify with grow_equal to guard against rendering collisions. *)
  let select r = Array.map (fun j -> r.(j)) indices in
  let render r =
    String.concat "\x00" (Array.to_list (Array.map Gvalue.to_string (select r)))
  in
  let table : (string, (grow * int list ref) list ref) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  Array.iteri
    (fun i r ->
      let key = render r in
      let bucket =
        match Hashtbl.find_opt table key with
        | Some b -> b
        | None ->
          let b = ref [] in
          Hashtbl.replace table key b;
          b
      in
      match
        List.find_opt (fun (rep, _) -> grow_equal (select rep) (select r)) !bucket
      with
      | Some (_, members) -> members := i :: !members
      | None ->
        let members = ref [ i ] in
        bucket := (r, members) :: !bucket;
        order := (r, members) :: !order)
    t.rows;
  List.rev_map
    (fun (rep, members) ->
      { rep; members = Array.of_list (List.rev !members) })
    !order

let classes t =
  classes_indices t (Array.init (Schema.arity t.schema) Fun.id)

let classes_on t names =
  classes_indices t
    (Array.of_list (List.map (Schema.index_of t.schema) names))

let smallest = function
  | [] -> 0
  | cs -> List.fold_left (fun acc c -> min acc (Array.length c.members)) max_int cs

let min_class_size t = smallest (classes t)

let min_class_size_on t names = smallest (classes_on t names)

let matches_row grow raw =
  Array.length grow = Array.length raw && Array.for_all2 Gvalue.matches grow raw

let pp ?(max_rows = 20) fmt t =
  let attrs = Schema.attributes t.schema in
  let shown = min max_rows (nrows t) in
  let cells =
    Array.init (shown + 1) (fun i ->
        if i = 0 then Array.map (fun a -> a.Schema.name) attrs
        else Array.map Gvalue.to_string t.rows.(i - 1))
  in
  let widths =
    Array.init (Array.length attrs) (fun j ->
        Array.fold_left (fun acc line -> max acc (String.length line.(j))) 0 cells)
  in
  Array.iteri
    (fun i line ->
      Array.iteri (fun j cell -> Format.fprintf fmt "%-*s  " widths.(j) cell) line;
      Format.pp_print_newline fmt ();
      if i = 0 then begin
        Array.iter (fun w -> Format.fprintf fmt "%s  " (String.make w '-')) widths;
        Format.pp_print_newline fmt ()
      end)
    cells;
  if nrows t > shown then Format.fprintf fmt "... (%d more rows)@." (nrows t - shown)
