(** Generalization hierarchies.

    A hierarchy is a ladder of increasingly coarse views of one attribute:
    level 0 is the exact value, the top level is full suppression. This is
    the "hierarchical generalization" of Samarati–Sweeney (footnote 4 of the
    paper: drop trailing ZIP digits, widen age into ranges, climb a disease
    taxonomy). *)

type t

val height : t -> int
(** Number of levels, including level 0 (exact) and the top ([Any]). At
    least 2. *)

val name : t -> string

val apply : t -> level:int -> Value.t -> Gvalue.t
(** Generalize a value to the given level. Levels at or above
    [height - 1] yield [Gvalue.Any]; level 0 yields [Exact]. Raises
    [Invalid_argument] on negative levels. *)

val zip_prefix : digits:int -> t
(** ZIP-code ladder for [digits]-character string codes: level l keeps the
    first [digits - l] characters. Height is [digits + 1]. *)

val int_ranges : name:string -> lo:int -> widths:int list -> t
(** Numeric ladder: level l >= 1 buckets integers into width [List.nth widths
    (l-1)] intervals aligned to [lo]. Widths must be strictly increasing and
    positive. *)

val date_ladder : t
(** Dates: exact → calendar month → year → decade → [Any]. *)

type tree = Leaf of Value.t | Node of string * tree list

val categorical : name:string -> tree -> t
(** Taxonomy ladder: level l maps a leaf to its ancestor l steps up (clamped
    at the root, which still renders as a labelled category; the level above
    the root is [Any]). Raises [Invalid_argument] if the tree has duplicate
    leaves or is a bare leaf. *)

val leaves : t -> Value.t list
(** For categorical hierarchies, the leaf domain; [[]] otherwise. *)
