(** Table schemas: named, typed attributes annotated with their privacy role.

    The role annotations drive the anonymizers (quasi-identifiers are the
    generalization targets; identifiers are dropped or redacted; sensitive
    attributes are preserved and checked by l-diversity / t-closeness). *)

type role =
  | Identifier  (** directly identifying: name, SSN, medical record number *)
  | Quasi_identifier  (** linkable in combination: ZIP, birth date, sex *)
  | Sensitive  (** the protected payload: disease, rating, income *)
  | Insensitive

type attribute = { name : string; kind : Value.kind; role : role }

type t

val make : attribute list -> t
(** Raises [Invalid_argument] on duplicate or empty attribute names, or an
    empty attribute list. *)

val arity : t -> int

val attributes : t -> attribute array
(** A copy, in declaration order. *)

val attribute : t -> int -> attribute

val names : t -> string list

val index_of : t -> string -> int
(** Raises [Not_found] for unknown names. *)

val mem : t -> string -> bool

val find : t -> string -> attribute
(** Raises [Not_found]. *)

val with_role : t -> role -> string list
(** Names of the attributes holding a given role. *)

val equal : t -> t -> bool

val project : t -> string list -> t
(** Schema restricted to the named attributes, in the given order. Raises
    [Not_found] on unknown names. *)

val role_name : role -> string
