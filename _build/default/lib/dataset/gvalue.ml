type t =
  | Exact of Value.t
  | Int_range of int * int
  | Float_range of float * float
  | Prefix of string * int
  | Category of { label : string; members : Value.t list }
  | Any

let matches g v =
  match (g, v) with
  | Any, _ -> true
  | _, Value.Null -> false
  | Exact x, _ -> Value.equal x v
  | Int_range (lo, hi), Value.Int i -> lo <= i && i <= hi
  | Int_range (lo, hi), Value.Date d ->
    let o = Value.date_ordinal d in
    lo <= o && o <= hi
  | Int_range _, _ -> false
  | Float_range (lo, hi), _ -> (
    match Value.to_float v with Some f -> lo <= f && f < hi | None -> false)
  | Prefix (s, k), Value.String x ->
    String.length x = String.length s
    && k <= String.length x
    && String.sub x 0 k = String.sub s 0 k
  | Prefix _, _ -> false
  | Category { members; _ }, _ -> List.exists (fun m -> Value.equal m v) members

let of_value v = Exact v

let is_suppressed = function Any -> true | _ -> false

let to_string = function
  | Exact v -> Value.to_string v
  | Int_range (lo, hi) -> Printf.sprintf "%d-%d" lo hi
  | Float_range (lo, hi) -> Printf.sprintf "[%.6g,%.6g)" lo hi
  | Prefix (s, k) ->
    let n = String.length s in
    if k >= n then s else String.sub s 0 k ^ String.make (n - k) '*'
  | Category { label; _ } -> label
  | Any -> "*"

let span g ~domain_size =
  if domain_size <= 0. then 0.
  else
    match g with
    | Exact _ -> 0.
    | Any -> 1.
    | Int_range (lo, hi) ->
      Float.min 1. (float_of_int (hi - lo) /. domain_size)
    | Float_range (lo, hi) -> Float.min 1. ((hi -. lo) /. domain_size)
    | Prefix (s, k) ->
      let wild = String.length s - k in
      Float.min 1. (Float.pow 10. (float_of_int wild) /. domain_size)
    | Category { members; _ } ->
      Float.min 1. (float_of_int (List.length members) /. domain_size)

let equal a b =
  match (a, b) with
  | Exact x, Exact y -> Value.equal x y
  | Int_range (a1, a2), Int_range (b1, b2) -> a1 = b1 && a2 = b2
  | Float_range (a1, a2), Float_range (b1, b2) -> a1 = b1 && a2 = b2
  | Prefix (s1, k1), Prefix (s2, k2) ->
    k1 = k2
    && String.length s1 = String.length s2
    && (k1 >= String.length s1 || String.sub s1 0 k1 = String.sub s2 0 k1)
    && (if k1 < String.length s1 then true else s1 = s2)
  | Category { label = l1; _ }, Category { label = l2; _ } -> l1 = l2
  | Any, Any -> true
  | (Exact _ | Int_range _ | Float_range _ | Prefix _ | Category _ | Any), _ ->
    false
