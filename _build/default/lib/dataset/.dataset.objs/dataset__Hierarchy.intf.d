lib/dataset/hierarchy.mli: Gvalue Value
