lib/dataset/table.mli: Format Schema Value
