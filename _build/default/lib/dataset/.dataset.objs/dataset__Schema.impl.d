lib/dataset/schema.ml: Array Hashtbl List Printf Value
