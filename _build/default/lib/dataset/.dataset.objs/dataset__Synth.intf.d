lib/dataset/synth.mli: Hierarchy Model Prob Schema Table
