lib/dataset/gtable.mli: Format Gvalue Schema Table
