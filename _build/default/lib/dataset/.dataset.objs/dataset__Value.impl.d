lib/dataset/value.ml: Bool Float Format Int Printf String
