lib/dataset/gvalue.mli: Value
