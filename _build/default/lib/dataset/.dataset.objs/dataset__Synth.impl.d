lib/dataset/synth.ml: Array Float Fun Hashtbl Hierarchy List Model Printf Prob Schema Table Value
