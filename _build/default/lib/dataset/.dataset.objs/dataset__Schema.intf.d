lib/dataset/schema.mli: Value
