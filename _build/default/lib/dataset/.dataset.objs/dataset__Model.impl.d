lib/dataset/model.ml: Array List Printf Prob Schema Table Value
