lib/dataset/hierarchy.ml: Array Float Gvalue Hashtbl List String Value
