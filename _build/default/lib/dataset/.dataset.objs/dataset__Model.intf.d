lib/dataset/model.mli: Prob Schema Table Value
