lib/dataset/table.ml: Array Format Hashtbl List Printf Schema String Value
