lib/dataset/csv.ml: Array Buffer Fun Gtable Gvalue List Printf Schema String Table Value
