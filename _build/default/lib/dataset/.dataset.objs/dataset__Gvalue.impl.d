lib/dataset/gvalue.ml: Float List Printf String Value
