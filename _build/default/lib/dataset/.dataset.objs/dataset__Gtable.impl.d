lib/dataset/gtable.ml: Array Format Fun Gvalue Hashtbl List Printf Schema String
