lib/dataset/csv.mli: Gtable Schema Table
