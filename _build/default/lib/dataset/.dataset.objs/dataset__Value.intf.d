lib/dataset/value.mli: Format
