(** Generalized tables: the output format of k-anonymizers.

    A generalized table has the same schema and row count as its source, but
    each cell holds a {!Gvalue.t}. Rows that carry identical generalized
    values form the release's "equivalence classes" — the objects the PSO
    attack of Theorem 2.10 converts into isolating predicates. *)

type grow = Gvalue.t array

type t

val make : Schema.t -> grow array -> t
(** Raises [Invalid_argument] if any row's arity differs from the schema's. *)

val schema : t -> Schema.t

val nrows : t -> int

val row : t -> int -> grow

val rows : t -> grow array

type eclass = { rep : grow; members : int array }
(** An equivalence class: the shared generalized row and the indices of the
    source rows it covers. *)

val classes : t -> eclass list
(** Equivalence classes in first-appearance order. Two rows are equivalent
    when all their generalized cells are {!Gvalue.equal}. *)

val classes_on : t -> string list -> eclass list
(** Equivalence classes computed on the named attributes only (the class
    [rep] keeps the full row of the class's first member; cells outside the
    named attributes may differ between members). k-anonymity proper is
    defined on the quasi-identifier columns. Raises [Not_found] on unknown
    attribute names. *)

val min_class_size : t -> int
(** Size of the smallest equivalence class ([0] for an empty table) — the
    released table is k-anonymous iff this is [>= k]. *)

val min_class_size_on : t -> string list -> int
(** Like {!min_class_size} but on the named attributes (typically the
    quasi-identifiers). *)

val matches_row : grow -> Table.row -> bool
(** Does a raw row fall under every cell of a generalized row? *)

val pp : ?max_rows:int -> Format.formatter -> t -> unit
