(** Data-generation models.

    Section 2.2 of the paper fixes the data-generation process: records are
    drawn i.i.d. from a distribution [D] over the universe [X]. We represent
    [D] as a product of per-attribute finite distributions. The product form
    gives two things the experiments need: i.i.d. table sampling, and {e
    exact} probabilities for conjunctive events — hence exact predicate
    weights [w_D(p)] instead of Monte-Carlo estimates. *)

type t

val make : Schema.t -> (string * Value.t Prob.Distribution.t) list -> t
(** One distribution per schema attribute, by name; every attribute must be
    covered exactly once and the distribution's support must consist of
    values of the attribute's kind. Raises [Invalid_argument] otherwise. *)

val schema : t -> Schema.t

val marginal : t -> string -> Value.t Prob.Distribution.t
(** Raises [Not_found] for unknown attributes. *)

val sample_row : Prob.Rng.t -> t -> Table.row

val sample_table : Prob.Rng.t -> t -> int -> Table.t
(** [sample_table rng model n] draws the paper's [x ~ D^n]. *)

val row_prob : t -> Table.row -> float
(** Exact probability of drawing exactly this row. *)

val universe_min_entropy : t -> float
(** Min-entropy of [D] in bits — the sum over attributes; the quantity the
    paper requires to be "moderate" for Leftover-Hash-Lemma predicates to
    exist. *)

val cell_prob : t -> string -> (Value.t -> bool) -> float
(** Exact marginal probability that the named attribute satisfies a value
    predicate. *)
