let needs_quoting s =
  String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) s

let quote s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let to_string table =
  let buf = Buffer.create 1024 in
  let emit_line cells =
    Buffer.add_string buf (String.concat "," (List.map quote cells));
    Buffer.add_char buf '\n'
  in
  emit_line (Schema.names (Table.schema table));
  Table.iter
    (fun _ row ->
      emit_line (Array.to_list (Array.map Value.to_string row)))
    table;
  Buffer.contents buf

(* A tiny state-machine parser handling quoted cells and escaped quotes. *)
let parse_lines s =
  let lines = ref [] in
  let cells = ref [] in
  let buf = Buffer.create 32 in
  let flush_cell () =
    cells := Buffer.contents buf :: !cells;
    Buffer.clear buf
  in
  let flush_line () =
    flush_cell ();
    lines := List.rev !cells :: !lines;
    cells := []
  in
  let n = String.length s in
  let i = ref 0 in
  let in_quotes = ref false in
  while !i < n do
    let c = s.[!i] in
    if !in_quotes then begin
      if c = '"' then
        if !i + 1 < n && s.[!i + 1] = '"' then begin
          Buffer.add_char buf '"';
          incr i
        end
        else in_quotes := false
      else Buffer.add_char buf c
    end
    else begin
      match c with
      | '"' -> in_quotes := true
      | ',' -> flush_cell ()
      | '\n' -> flush_line ()
      | '\r' -> ()
      | _ -> Buffer.add_char buf c
    end;
    incr i
  done;
  if !in_quotes then failwith "Csv.of_string: unterminated quote";
  if Buffer.length buf > 0 || !cells <> [] then flush_line ();
  List.rev !lines

let of_string schema s =
  match parse_lines s with
  | [] -> failwith "Csv.of_string: empty input"
  | header :: data ->
    let expected = Schema.names schema in
    if header <> expected then
      failwith
        (Printf.sprintf "Csv.of_string: header mismatch (got %s)"
           (String.concat "," header));
    let attrs = Schema.attributes schema in
    let parse_row cells =
      if List.length cells <> Array.length attrs then
        failwith "Csv.of_string: wrong number of cells";
      Array.of_list
        (List.mapi
           (fun j cell -> Value.of_string attrs.(j).Schema.kind cell)
           cells)
    in
    Table.make schema (Array.of_list (List.map parse_row data))

let write_file path table =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string table))

let gtable_to_string gtable =
  let buf = Buffer.create 1024 in
  let emit_line cells =
    Buffer.add_string buf (String.concat "," (List.map quote cells));
    Buffer.add_char buf '\n'
  in
  emit_line (Schema.names (Gtable.schema gtable));
  Array.iter
    (fun grow ->
      emit_line (Array.to_list (Array.map Gvalue.to_string grow)))
    (Gtable.rows gtable);
  Buffer.contents buf

let write_gtable_file path gtable =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (gtable_to_string gtable))

let read_file schema path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      of_string schema s)
