type tree = Leaf of Value.t | Node of string * tree list

type t = {
  name : string;
  height : int;
  apply : int -> Value.t -> Gvalue.t;  (* called with 1 <= level < height - 1 *)
  leaves : Value.t list;
}

let height t = t.height

let name t = t.name

let apply t ~level v =
  if level < 0 then invalid_arg "Hierarchy.apply: negative level";
  if level = 0 then Gvalue.Exact v
  else if level >= t.height - 1 then Gvalue.Any
  else t.apply level v

let zip_prefix ~digits =
  if digits <= 0 then invalid_arg "Hierarchy.zip_prefix";
  let apply level v =
    match v with
    | Value.String s when String.length s = digits ->
      Gvalue.Prefix (s, digits - level)
    | Value.String _ | Value.Int _ | Value.Float _ | Value.Date _
    | Value.Bool _ | Value.Null ->
      Gvalue.Any
  in
  { name = "zip"; height = digits + 1; apply; leaves = [] }

let int_ranges ~name ~lo ~widths =
  if widths = [] then invalid_arg "Hierarchy.int_ranges: no widths";
  let rec check prev = function
    | [] -> ()
    | w :: rest ->
      if w <= prev then
        invalid_arg "Hierarchy.int_ranges: widths must be increasing and positive";
      check w rest
  in
  check 0 widths;
  let widths = Array.of_list widths in
  let apply level v =
    match Value.to_float v with
    | None -> Gvalue.Any
    | Some f ->
      let w = widths.(level - 1) in
      let i = int_of_float (Float.floor f) in
      let bucket = (i - lo) / w in
      let bucket = if i < lo && (i - lo) mod w <> 0 then bucket - 1 else bucket in
      let start = lo + (bucket * w) in
      Gvalue.Int_range (start, start + w - 1)
  in
  { name; height = Array.length widths + 2; apply; leaves = [] }

let date_ladder =
  let apply level v =
    match v with
    | Value.Date d ->
      let month_start = Value.{ year = d.year; month = d.month; day = 1 } in
      let month_end = Value.{ year = d.year; month = d.month; day = 31 } in
      let year_start = Value.{ year = d.year; month = 1; day = 1 } in
      let year_end = Value.{ year = d.year; month = 12; day = 31 } in
      let decade = d.year / 10 * 10 in
      let decade_start = Value.{ year = decade; month = 1; day = 1 } in
      let decade_end = Value.{ year = decade + 9; month = 12; day = 31 } in
      let range a b =
        Gvalue.Int_range (Value.date_ordinal a, Value.date_ordinal b)
      in
      (match level with
      | 1 -> range month_start month_end
      | 2 -> range year_start year_end
      | _ -> range decade_start decade_end)
    | Value.Int _ | Value.Float _ | Value.String _ | Value.Bool _ | Value.Null ->
      Gvalue.Any
  in
  { name = "date"; height = 5; apply; leaves = [] }

let categorical ~name tree =
  let table : (Value.t, (string * Value.t list) array) Hashtbl.t =
    Hashtbl.create 32
  in
  (* For every leaf, record the chain of (ancestor label, leaves under it)
     from its parent up to the root. *)
  let rec leaves_of = function
    | Leaf v -> [ v ]
    | Node (_, children) -> List.concat_map leaves_of children
  in
  let rec walk ancestors node =
    match node with
    | Leaf v ->
      if Hashtbl.mem table v then
        invalid_arg "Hierarchy.categorical: duplicate leaf";
      Hashtbl.replace table v (Array.of_list (List.rev ancestors))
    | Node (label, children) ->
      let ancestors = (label, leaves_of node) :: ancestors in
      List.iter (walk ancestors) children
  in
  (match tree with
  | Leaf _ -> invalid_arg "Hierarchy.categorical: bare leaf"
  | Node _ -> walk [] tree);
  let depth =
    Hashtbl.fold (fun _ chain acc -> max acc (Array.length chain)) table 0
  in
  let apply level v =
    match Hashtbl.find_opt table v with
    | None -> Gvalue.Any
    | Some chain ->
      (* chain.(0) is the root; deeper ancestors come later. Level 1 is the
         immediate parent, i.e. the end of the chain. *)
      let i = Array.length chain - level in
      let i = if i < 0 then 0 else i in
      let label, members = chain.(i) in
      Gvalue.Category { label; members }
  in
  { name; height = depth + 2; apply; leaves = leaves_of tree }

let leaves t = t.leaves
