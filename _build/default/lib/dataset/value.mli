(** Attribute values.

    A dataset record (the paper's [x_i ∈ X]) is an array of these values,
    one per schema attribute. *)

type date = { year : int; month : int; day : int }

type t =
  | Int of int
  | Float of float
  | String of string
  | Date of date
  | Bool of bool
  | Null  (** missing / suppressed source value *)

type kind = Kint | Kfloat | Kstring | Kdate | Kbool

val kind_of : t -> kind option
(** [None] for [Null]. *)

val kind_name : kind -> string

val equal : t -> t -> bool

val compare : t -> t -> int
(** Total order; values of different kinds compare by kind, [Null] first. *)

val to_string : t -> string
(** Round-trippable with {!of_string} given the kind. *)

val of_string : kind -> string -> t
(** Parses the {!to_string} rendering (and plain literals). Raises
    [Failure] on malformed input. The empty string parses as [Null]. *)

val to_float : t -> float option
(** Numeric view: ints and floats as themselves, dates as their day ordinal,
    bools as 0/1; [None] for strings and [Null]. *)

val date_ordinal : date -> int
(** Monotone day encoding (not a true calendar count; only order and rough
    spacing matter here). *)

val make_date : year:int -> month:int -> day:int -> t
(** Raises [Invalid_argument] on out-of-range month or day. *)

val pp : Format.formatter -> t -> unit
