type date = { year : int; month : int; day : int }

type t =
  | Int of int
  | Float of float
  | String of string
  | Date of date
  | Bool of bool
  | Null

type kind = Kint | Kfloat | Kstring | Kdate | Kbool

let kind_of = function
  | Int _ -> Some Kint
  | Float _ -> Some Kfloat
  | String _ -> Some Kstring
  | Date _ -> Some Kdate
  | Bool _ -> Some Kbool
  | Null -> None

let kind_name = function
  | Kint -> "int"
  | Kfloat -> "float"
  | Kstring -> "string"
  | Kdate -> "date"
  | Kbool -> "bool"

let date_ordinal d = (d.year * 372) + ((d.month - 1) * 31) + (d.day - 1)

let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Float _ -> 3
  | Date _ -> 4
  | String _ -> 5

let compare a b =
  match (a, b) with
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | String x, String y -> String.compare x y
  | Date x, Date y -> Int.compare (date_ordinal x) (date_ordinal y)
  | Bool x, Bool y -> Bool.compare x y
  | Null, Null -> 0
  | (Int _ | Float _ | String _ | Date _ | Bool _ | Null), _ ->
    Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

let to_string = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%.12g" f
  | String s -> s
  | Date d -> Printf.sprintf "%04d-%02d-%02d" d.year d.month d.day
  | Bool b -> string_of_bool b
  | Null -> ""

let make_date ~year ~month ~day =
  if month < 1 || month > 12 then invalid_arg "Value.make_date: bad month";
  if day < 1 || day > 31 then invalid_arg "Value.make_date: bad day";
  Date { year; month; day }

let of_string kind s =
  if s = "" then Null
  else
    match kind with
    | Kint -> (
      match int_of_string_opt s with
      | Some i -> Int i
      | None -> failwith (Printf.sprintf "Value.of_string: bad int %S" s))
    | Kfloat -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> failwith (Printf.sprintf "Value.of_string: bad float %S" s))
    | Kstring -> String s
    | Kbool -> (
      match bool_of_string_opt s with
      | Some b -> Bool b
      | None -> failwith (Printf.sprintf "Value.of_string: bad bool %S" s))
    | Kdate -> (
      match String.split_on_char '-' s with
      | [ y; m; d ] -> (
        match (int_of_string_opt y, int_of_string_opt m, int_of_string_opt d) with
        | Some year, Some month, Some day -> make_date ~year ~month ~day
        | _ -> failwith (Printf.sprintf "Value.of_string: bad date %S" s))
      | _ -> failwith (Printf.sprintf "Value.of_string: bad date %S" s))

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | Date d -> Some (float_of_int (date_ordinal d))
  | Bool b -> Some (if b then 1. else 0.)
  | String _ | Null -> None

let pp fmt v = Format.pp_print_string fmt (to_string v)
