(** Minimal CSV serialization for tables (RFC-4180-style quoting).

    Used by the CLI (`pso_audit synth --out data.csv`) and tested for
    round-tripping; the library itself works on in-memory tables. *)

val to_string : Table.t -> string
(** Header line of attribute names, then one line per row. Cells containing
    commas, quotes or newlines are quoted; [Null] renders as the empty
    cell. *)

val of_string : Schema.t -> string -> Table.t
(** Parses output of {!to_string}. The header must match the schema's
    attribute names exactly. Raises [Failure] on malformed input. *)

val write_file : string -> Table.t -> unit

val read_file : Schema.t -> string -> Table.t

val gtable_to_string : Gtable.t -> string
(** Generalized releases as CSV, cells rendered with
    {!Gvalue.to_string} ("1234*", "30-39", "PULM", "*"). One-way: the
    rendering is for release/export, not for parsing back. *)

val write_gtable_file : string -> Gtable.t -> unit
