type t = { schema : Schema.t; dists : Value.t Prob.Distribution.t array }

let make schema assoc =
  let arity = Schema.arity schema in
  if List.length assoc <> arity then
    invalid_arg "Model.make: must cover every attribute exactly once";
  let dists = Array.make arity None in
  List.iter
    (fun (name, dist) ->
      let i =
        try Schema.index_of schema name
        with Not_found ->
          invalid_arg (Printf.sprintf "Model.make: unknown attribute %S" name)
      in
      if dists.(i) <> None then
        invalid_arg (Printf.sprintf "Model.make: duplicate attribute %S" name);
      let kind = (Schema.attribute schema i).Schema.kind in
      Array.iter
        (fun v ->
          match Value.kind_of v with
          | Some k when k = kind -> ()
          | Some k ->
            invalid_arg
              (Printf.sprintf "Model.make: attribute %S: %s value in support of %s column"
                 name (Value.kind_name k) (Value.kind_name kind))
          | None -> invalid_arg "Model.make: Null in support")
        (Prob.Distribution.support dist);
      dists.(i) <- Some dist)
    assoc;
  let dists =
    Array.map (function Some d -> d | None -> assert false) dists
  in
  { schema; dists }

let schema t = t.schema

let marginal t name = t.dists.(Schema.index_of t.schema name)

let sample_row rng t = Array.map (fun d -> Prob.Distribution.sample rng d) t.dists

let sample_table rng t n =
  Table.make t.schema (Array.init n (fun _ -> sample_row rng t))

let row_prob t row =
  if Array.length row <> Array.length t.dists then
    invalid_arg "Model.row_prob: arity mismatch";
  let p = ref 1. in
  Array.iteri (fun i v -> p := !p *. Prob.Distribution.prob t.dists.(i) v) row;
  !p

let universe_min_entropy t =
  Array.fold_left (fun acc d -> acc +. Prob.Distribution.min_entropy d) 0. t.dists

let cell_prob t name pred =
  let d = marginal t name in
  Array.fold_left
    (fun acc v -> if pred v then acc +. Prob.Distribution.prob d v else acc)
    0. (Prob.Distribution.support d)
