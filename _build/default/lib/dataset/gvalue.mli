(** Generalized attribute values.

    A k-anonymizer replaces exact cell values with coarser descriptions —
    ranges, truncated ZIP prefixes, hierarchy categories, or full
    suppression. A generalized value is exactly a unary predicate on raw
    values; the PSO attack on k-anonymity (Theorem 2.10) turns each released
    equivalence class into the conjunction of its cells' {!matches}
    predicates. *)

type t =
  | Exact of Value.t
  | Int_range of int * int  (** inclusive bounds *)
  | Float_range of float * float  (** [lo, hi) half-open *)
  | Prefix of string * int  (** [Prefix (s, k)]: first [k] characters of [s] retained *)
  | Category of { label : string; members : Value.t list }
      (** a generalization-hierarchy node and the leaf values beneath it *)
  | Any  (** fully suppressed: matches everything *)

val matches : t -> Value.t -> bool
(** Does a raw value fall under this generalized description? [Null] matches
    only [Any]. *)

val of_value : Value.t -> t

val is_suppressed : t -> bool

val to_string : t -> string
(** Human rendering: ["1234*"], ["30-39"], ["PULM"], ["*"]. *)

val span : t -> domain_size:float -> float
(** Fraction of a numeric domain of the given size covered by this value —
    the ingredient of NCP-style information-loss metrics. [Exact] spans 0,
    [Any] spans 1. For categorical values, the fraction of members. *)

val equal : t -> t -> bool
