(** Least-squares solvers.

    The polynomial-time reconstruction attack of Theorem 1.1(ii) solves, from
    noisy subset-count answers [a ≈ A x], the box-constrained least-squares
    problem [min_{z ∈ [0,1]^n} ‖A z − a‖²] and rounds the solution to
    {0,1}^n. This module provides a conjugate-gradient solver for the
    unconstrained normal equations and a projected-gradient solver for the
    box-constrained problem. *)

type options = {
  max_iter : int;  (** iteration cap *)
  tolerance : float;  (** stop when the (projected) gradient norm drops below this *)
}

val default_options : options

val conjugate_gradient :
  ?options:options -> (Vector.t -> Vector.t) -> Vector.t -> Vector.t
(** [conjugate_gradient apply b] solves [M z = b] for symmetric
    positive-semidefinite [M] given as the operator [apply]. Starts from the
    zero vector. *)

val solve_box :
  ?options:options -> Matrix.t -> Vector.t -> lo:float -> hi:float -> Vector.t
(** [solve_box a b ~lo ~hi] approximately minimizes [‖A z − b‖²] over the box
    [\[lo, hi\]^n] by projected gradient descent with a Lipschitz step size
    estimated by power iteration. *)

val residual : Matrix.t -> Vector.t -> Vector.t -> float
(** [residual a z b] is [‖A z − b‖²]. *)
