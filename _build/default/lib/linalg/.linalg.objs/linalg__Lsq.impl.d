lib/linalg/lsq.ml: Array Float Matrix Vector
