lib/linalg/matrix.mli: Vector
