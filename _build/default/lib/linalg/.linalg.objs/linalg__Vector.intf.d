lib/linalg/vector.mli:
