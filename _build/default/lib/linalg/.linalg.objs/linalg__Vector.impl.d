lib/linalg/vector.ml: Array Float Printf
