lib/linalg/simplex.mli:
