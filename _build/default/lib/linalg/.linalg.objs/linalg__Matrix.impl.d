lib/linalg/matrix.ml: Array
