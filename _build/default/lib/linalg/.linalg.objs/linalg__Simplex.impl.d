lib/linalg/simplex.ml: Array Float List
