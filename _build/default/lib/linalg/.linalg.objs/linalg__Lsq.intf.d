lib/linalg/lsq.mli: Matrix Vector
