(** Two-phase dense simplex solver for linear programs in the form

    {v minimize c·x  subject to  (aᵢ·x REL bᵢ) for each constraint, x >= 0 v}

    Used by the LP-decoding variant of the reconstruction attack
    (Dwork–McSherry–Talwar style): minimize the total slack needed to explain
    the mechanism's noisy answers, then round. Bland's rule is used for
    anti-cycling; this favours robustness over speed, which suits the attack
    sizes exercised here. *)

type relation = Le | Ge | Eq

type problem = {
  objective : float array;  (** coefficients of the minimized objective *)
  constraints : (float array * relation * float) list;
}

type outcome =
  | Optimal of { x : float array; objective : float }
  | Infeasible
  | Unbounded

val solve : problem -> outcome
(** Raises [Invalid_argument] if a constraint row's length differs from the
    objective's. *)

val maximize : problem -> outcome
(** Convenience wrapper: maximizes the objective instead (negates in and
    out). *)
