type t = float array

let create n v = Array.make n v

let dim = Array.length

let copy = Array.copy

let check_dims name x y =
  if Array.length x <> Array.length y then
    invalid_arg (Printf.sprintf "Vector.%s: dimension mismatch" name)

let dot x y =
  check_dims "dot" x y;
  let acc = ref 0. in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. (x.(i) *. y.(i))
  done;
  !acc

let norm2 x = Float.sqrt (dot x x)

let norm_inf x = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0. x

let add x y =
  check_dims "add" x y;
  Array.mapi (fun i v -> v +. y.(i)) x

let sub x y =
  check_dims "sub" x y;
  Array.mapi (fun i v -> v -. y.(i)) x

let scale a x = Array.map (fun v -> a *. v) x

let axpy a x y =
  check_dims "axpy" x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- (a *. x.(i)) +. y.(i)
  done

let clamp ~lo ~hi x =
  Array.map (fun v -> if v < lo then lo else if v > hi then hi else v) x

let round01 x = Array.map (fun v -> if v >= 0.5 then 1. else 0.) x

let hamming x y =
  check_dims "hamming" x y;
  let acc = ref 0 in
  for i = 0 to Array.length x - 1 do
    if x.(i) <> y.(i) then incr acc
  done;
  !acc
