(** Dense float vectors ([float array] with checked operations). *)

type t = float array

val create : int -> float -> t

val dim : t -> int

val copy : t -> t

val dot : t -> t -> float
(** Raises [Invalid_argument] on dimension mismatch. *)

val norm2 : t -> float
(** Euclidean norm. *)

val norm_inf : t -> float
(** Max absolute entry. *)

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val axpy : float -> t -> t -> unit
(** [axpy a x y] sets [y := a*x + y] in place. *)

val clamp : lo:float -> hi:float -> t -> t
(** Entrywise clamping into [\[lo, hi\]] (projection onto the box). *)

val round01 : t -> t
(** Entrywise rounding to the nearer of [0.] and [1.] — the rounding step of
    the least-squares reconstruction attack. *)

val hamming : t -> t -> int
(** Number of coordinates that differ (exact comparison); callers round
    first. *)
