type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let default_seed = 0x5DEECE66DL

let create ?(seed = default_seed) () = { state = seed }

let copy t = { state = t.state }

(* SplitMix64 output function: advance by the golden gamma, then mix. *)
let bits64 t =
  let open Int64 in
  t.state <- add t.state golden_gamma;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let split t =
  let seed = bits64 t in
  { state = seed }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias: accept draws below the largest
     multiple of [bound] that fits in 63 bits. *)
  let bound64 = Int64.of_int bound in
  let limit = Int64.sub Int64.max_int (Int64.rem Int64.max_int bound64) in
  let rec loop () =
    let r = Int64.shift_right_logical (bits64 t) 1 in
    if r >= limit then loop () else Int64.to_int (Int64.rem r bound64)
  in
  loop ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let uniform t =
  (* 53 random bits into [0, 1). *)
  let r = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float r *. (1.0 /. 9007199254740992.0)

let float t bound = uniform t *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))

let sample_without_replacement t k n =
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  (* Floyd's algorithm: O(k) expected insertions. *)
  let chosen = Hashtbl.create (2 * k) in
  for j = n - k to n - 1 do
    let r = int t (j + 1) in
    if Hashtbl.mem chosen r then Hashtbl.replace chosen j ()
    else Hashtbl.replace chosen r ()
  done;
  let out = Hashtbl.fold (fun i () acc -> i :: acc) chosen [] in
  let arr = Array.of_list out in
  Array.sort compare arr;
  arr
