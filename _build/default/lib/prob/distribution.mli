(** Finite discrete probability distributions.

    The paper's data-generation model draws dataset records i.i.d. from a
    fixed distribution [D] over a data universe [X] (Section 2.2). This
    module represents such distributions with exact point masses, so that
    predicate weights [w_D(p) = Pr_{x ~ D} (p x = 1)] can be computed exactly
    rather than merely estimated. *)

type 'a t
(** A distribution over finitely many values of type ['a]. *)

val of_weights : ('a * float) list -> 'a t
(** [of_weights assoc] normalizes nonnegative weights into a distribution.
    Zero-weight items are dropped. Raises [Invalid_argument] if the list is
    empty, all weights are zero, or any weight is negative or not finite. *)

val uniform : 'a list -> 'a t
(** Uniform distribution over a non-empty list of distinct values. *)

val singleton : 'a -> 'a t
(** Point mass. *)

val bernoulli : float -> bool t
(** [bernoulli p] puts mass [p] on [true]. Raises [Invalid_argument] unless
    [0 <= p <= 1]. *)

val support : 'a t -> 'a array
(** Values with nonzero mass, in insertion order. *)

val size : 'a t -> int
(** Support size. *)

val prob : 'a t -> 'a -> float
(** Point mass of a value ([0.] off-support). Uses structural equality. *)

val sample : Rng.t -> 'a t -> 'a
(** Draw one value (inverse-CDF over the stored cumulative table, O(log n)). *)

val sample_many : Rng.t -> 'a t -> int -> 'a array
(** [sample_many rng d n] draws [n] i.i.d. values. *)

val map : ('a -> 'b) -> 'a t -> 'b t
(** Pushforward; masses of values that collide under [f] are merged. *)

val product : 'a t -> 'b t -> ('a * 'b) t
(** Independent product distribution. *)

val expect : ('a -> float) -> 'a t -> float
(** Exact expectation of a function. *)

val entropy : 'a t -> float
(** Shannon entropy in bits. *)

val min_entropy : 'a t -> float
(** Min-entropy [-log2 (max_x Pr x)] in bits. The paper invokes moderate
    min-entropy as the condition under which Leftover-Hash-Lemma-style
    predicates of any prescribed weight exist. *)

val max_prob : 'a t -> float
(** Largest point mass. *)

val total_variation : 'a t -> 'a t -> float
(** Total-variation distance (used by the t-closeness check). *)

val zipf : ?skew:float -> int -> int t
(** [zipf ~skew k] is the Zipf distribution on ranks [0..k-1] with exponent
    [skew] (default [1.0]); used to model movie-popularity and ZIP-code
    population skew. *)
