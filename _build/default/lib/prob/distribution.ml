type 'a t = {
  values : 'a array;
  probs : float array;  (* same length as values, strictly positive, sums to 1 *)
  cumulative : float array;  (* prefix sums of probs; last entry is 1. *)
  index : ('a, float) Hashtbl.t;  (* value -> probability *)
}

let of_weights assoc =
  let assoc = List.filter (fun (_, w) -> w <> 0.) assoc in
  if assoc = [] then invalid_arg "Distribution.of_weights: empty support";
  List.iter
    (fun (_, w) ->
      if not (Float.is_finite w) || w < 0. then
        invalid_arg "Distribution.of_weights: weights must be finite and >= 0")
    assoc;
  (* Merge duplicate values so [prob] is well defined. *)
  let index = Hashtbl.create (List.length assoc) in
  let order = ref [] in
  List.iter
    (fun (v, w) ->
      match Hashtbl.find_opt index v with
      | None ->
        Hashtbl.replace index v w;
        order := v :: !order
      | Some w0 -> Hashtbl.replace index v (w0 +. w))
    assoc;
  let values = Array.of_list (List.rev !order) in
  let total = Array.fold_left (fun acc v -> acc +. Hashtbl.find index v) 0. values in
  if total <= 0. then invalid_arg "Distribution.of_weights: total weight is zero";
  let probs = Array.map (fun v -> Hashtbl.find index v /. total) values in
  Array.iteri (fun i v -> Hashtbl.replace index v probs.(i)) values;
  let cumulative = Array.make (Array.length probs) 0. in
  let acc = ref 0. in
  Array.iteri
    (fun i p ->
      acc := !acc +. p;
      cumulative.(i) <- !acc)
    probs;
  cumulative.(Array.length cumulative - 1) <- 1.;
  { values; probs; cumulative; index }

let uniform values =
  of_weights (List.map (fun v -> (v, 1.)) values)

let singleton v = of_weights [ (v, 1.) ]

let bernoulli p =
  if p < 0. || p > 1. then invalid_arg "Distribution.bernoulli";
  if p = 0. then singleton false
  else if p = 1. then singleton true
  else of_weights [ (true, p); (false, 1. -. p) ]

let support t = Array.copy t.values

let size t = Array.length t.values

let prob t v = match Hashtbl.find_opt t.index v with Some p -> p | None -> 0.

let sample rng t =
  let u = Rng.uniform rng in
  (* Binary search for the first cumulative value > u. *)
  let n = Array.length t.cumulative in
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cumulative.(mid) > u then hi := mid else lo := mid + 1
  done;
  t.values.(!lo)

let sample_many rng t n = Array.init n (fun _ -> sample rng t)

let to_assoc t =
  Array.to_list (Array.mapi (fun i v -> (v, t.probs.(i))) t.values)

let map f t = of_weights (List.map (fun (v, p) -> (f v, p)) (to_assoc t))

let product ta tb =
  of_weights
    (List.concat_map
       (fun (a, pa) -> List.map (fun (b, pb) -> ((a, b), pa *. pb)) (to_assoc tb))
       (to_assoc ta))

let expect f t =
  Array.to_list t.values
  |> List.mapi (fun i v -> f v *. t.probs.(i))
  |> List.fold_left ( +. ) 0.

let log2 x = Float.log x /. Float.log 2.

let entropy t =
  Array.fold_left (fun acc p -> acc -. (p *. log2 p)) 0. t.probs

let max_prob t = Array.fold_left Float.max 0. t.probs

let min_entropy t = -.log2 (max_prob t)

let total_variation ta tb =
  let keys = Hashtbl.create 16 in
  Array.iter (fun v -> Hashtbl.replace keys v ()) ta.values;
  Array.iter (fun v -> Hashtbl.replace keys v ()) tb.values;
  let sum =
    Hashtbl.fold (fun v () acc -> acc +. Float.abs (prob ta v -. prob tb v)) keys 0.
  in
  sum /. 2.

let zipf ?(skew = 1.0) k =
  if k <= 0 then invalid_arg "Distribution.zipf";
  of_weights (List.init k (fun i -> (i, 1. /. Float.pow (float_of_int (i + 1)) skew)))
