let laplace rng ~scale =
  if scale <= 0. then invalid_arg "Sampler.laplace: scale must be positive";
  (* Inverse CDF on a symmetric uniform: u in (-1/2, 1/2). *)
  let u = Rng.uniform rng -. 0.5 in
  let u = if u = -0.5 then -0.49999999999999994 else u in
  -.scale *. Float.of_int (compare u 0.) *. Float.log (1. -. (2. *. Float.abs u))

let gaussian rng ~mean ~std =
  if std < 0. then invalid_arg "Sampler.gaussian: std must be >= 0";
  let rec nonzero () =
    let u = Rng.uniform rng in
    if u = 0. then nonzero () else u
  in
  let u1 = nonzero () in
  let u2 = Rng.uniform rng in
  let z = Float.sqrt (-2. *. Float.log u1) *. Float.cos (2. *. Float.pi *. u2) in
  mean +. (std *. z)

let exponential rng ~rate =
  if rate <= 0. then invalid_arg "Sampler.exponential: rate must be positive";
  let rec nonzero () =
    let u = Rng.uniform rng in
    if u = 0. then nonzero () else u
  in
  -.Float.log (nonzero ()) /. rate

let bernoulli rng ~p =
  if p < 0. || p > 1. then invalid_arg "Sampler.bernoulli";
  Rng.uniform rng < p

let geometric rng ~p =
  if p <= 0. || p > 1. then invalid_arg "Sampler.geometric";
  if p = 1. then 0
  else begin
    let rec nonzero () =
      let u = Rng.uniform rng in
      if u = 0. then nonzero () else u
    in
    int_of_float (Float.floor (Float.log (nonzero ()) /. Float.log (1. -. p)))
  end

let two_sided_geometric rng ~alpha =
  if alpha <= 0. || alpha >= 1. then invalid_arg "Sampler.two_sided_geometric";
  (* Difference of two i.i.d. geometric variables with success prob 1-alpha
     is distributed as Pr(k) ∝ alpha^|k|. *)
  let p = 1. -. alpha in
  geometric rng ~p - geometric rng ~p

let binomial rng ~n ~p =
  if n < 0 then invalid_arg "Sampler.binomial";
  let count = ref 0 in
  for _ = 1 to n do
    if bernoulli rng ~p then incr count
  done;
  !count
