(** Salted hashing into buckets.

    The paper (Section 2.2) invokes the Leftover Hash Lemma to construct,
    from any distribution with moderate min-entropy, predicates of any
    prescribed weight — e.g. a weight-[1/n] predicate that isolates with
    probability ≈ 37% without looking at the mechanism's output. We realise
    such predicates by hashing a record's serialized form into [m] buckets
    with a salted 64-bit mixer: over a distribution with enough min-entropy
    the bucket indicator has weight ≈ [1/m]. *)

val hash64 : salt:int64 -> string -> int64
(** Salted FNV-1a-then-mixed 64-bit hash of a string. Deterministic across
    runs. *)

val bucket : salt:int64 -> buckets:int -> string -> int
(** [bucket ~salt ~buckets s] maps [s] into [\[0, buckets)]. Raises
    [Invalid_argument] if [buckets <= 0]. *)

val bit : salt:int64 -> index:int -> string -> bool
(** [bit ~salt ~index s] is the [index]-th bit (0..63) of [hash64 ~salt s];
    the composition attacker of Theorem 2.8 learns these bits one count
    query at a time. *)
