lib/prob/stats.mli:
