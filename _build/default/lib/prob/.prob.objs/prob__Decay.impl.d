lib/prob/decay.ml: Array Float Printf Stats
