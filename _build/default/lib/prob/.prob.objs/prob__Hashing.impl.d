lib/prob/hashing.ml: Char Int64 String
