lib/prob/rng.ml: Array Hashtbl Int64
