lib/prob/sampler.ml: Float Rng
