lib/prob/hashing.mli:
