lib/prob/rng.mli:
