lib/prob/sampler.mli: Rng
