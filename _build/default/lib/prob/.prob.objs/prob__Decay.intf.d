lib/prob/decay.mli:
