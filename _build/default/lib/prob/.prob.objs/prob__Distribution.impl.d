lib/prob/distribution.ml: Array Float Hashtbl List Rng
