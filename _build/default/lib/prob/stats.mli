(** Descriptive statistics and interval estimates for experiment reporting. *)

type summary = {
  count : int;
  mean : float;
  variance : float;  (** unbiased sample variance *)
  std : float;
  min : float;
  max : float;
}

val summarize : float array -> summary
(** Raises [Invalid_argument] on an empty array. *)

val mean : float array -> float

val variance : float array -> float
(** Unbiased sample variance ([0.] for arrays of length < 2). *)

val std : float array -> float

val median : float array -> float

val quantile : float array -> float -> float
(** [quantile xs q] with [0 <= q <= 1], linear interpolation between order
    statistics. *)

val proportion_ci : successes:int -> trials:int -> float * float
(** 95% Wilson score interval for a binomial proportion — used to report
    attack success probabilities with honest error bars. *)

val histogram : bins:int -> lo:float -> hi:float -> float array -> int array
(** Fixed-width histogram; values outside [\[lo, hi\]] are clamped into the
    first/last bin. *)

val pearson : float array -> float array -> float
(** Pearson correlation coefficient. Raises [Invalid_argument] on length
    mismatch or arrays shorter than 2. *)

val fraction : ('a -> bool) -> 'a array -> float
(** Fraction of elements satisfying a predicate ([0.] for empty input). *)
