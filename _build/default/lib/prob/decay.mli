(** Empirical negligibility classification.

    The paper's security definitions quantify over "negligible functions of
    n" — functions decaying faster than any inverse polynomial. Experiments
    can only sample finitely many n, so we fit measured success probabilities
    against n and classify the decay shape. This makes the asymptotic
    statements of Theorems 2.5–2.10 observable: a PSO-secure mechanism's
    attack success should decay at least polynomially in n (within the model
    it decays like ~n·w(n)), while a broken mechanism's success plateaus. *)

type shape =
  | Plateau of float  (** success stabilizes near a positive constant *)
  | Polynomial_decay of float  (** success ≈ c · n^(-k); carries exponent k *)
  | Below_resolution  (** all measurements are ~0 at the sampled trial counts *)

val classify : (int * float) array -> shape
(** [classify points] fits [(n, success)] measurements. Requires at least two
    distinct [n]; raises [Invalid_argument] otherwise. Points with success
    [<= 0] are treated as at the Monte-Carlo resolution floor. *)

val fit_exponent : (int * float) array -> float
(** Least-squares slope of log(success) against log(n): the estimated decay
    exponent [k] in success ≈ c·n^(-k). Positive means decaying. *)

val to_string : shape -> string
