type shape =
  | Plateau of float
  | Polynomial_decay of float
  | Below_resolution

(* Monte-Carlo resolution floor: a measured zero out of T trials only says
   success < ~3/T; we substitute a small positive stand-in for log-fitting. *)
let floor_value = 1e-6

let prepare points =
  Array.map (fun (n, s) -> (n, if s <= 0. then floor_value else s)) points

let fit_exponent points =
  let points = prepare points in
  let n = Array.length points in
  if n < 2 then invalid_arg "Decay.fit_exponent: need at least two points";
  let xs = Array.map (fun (n, _) -> Float.log (float_of_int n)) points in
  let ys = Array.map (fun (_, s) -> Float.log s) points in
  let mx = Stats.mean xs and my = Stats.mean ys in
  let num = ref 0. and den = ref 0. in
  for i = 0 to n - 1 do
    num := !num +. ((xs.(i) -. mx) *. (ys.(i) -. my));
    den := !den +. ((xs.(i) -. mx) ** 2.)
  done;
  if !den = 0. then invalid_arg "Decay.fit_exponent: need two distinct n";
  -. (!num /. !den)

let classify points =
  let prepared = prepare points in
  let all_floor = Array.for_all (fun (_, s) -> s <= floor_value) prepared in
  if all_floor then Below_resolution
  else begin
    let k = fit_exponent points in
    if k < 0.25 then begin
      let successes = Array.map snd prepared in
      Plateau (Stats.mean successes)
    end
    else Polynomial_decay k
  end

let to_string = function
  | Plateau p -> Printf.sprintf "plateau at %.3f (non-negligible)" p
  | Polynomial_decay k -> Printf.sprintf "decays ~ n^-%.2f" k
  | Below_resolution -> "below Monte-Carlo resolution (~0)"
