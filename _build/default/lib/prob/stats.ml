type summary = {
  count : int;
  mean : float;
  variance : float;
  std : float;
  min : float;
  max : float;
}

let mean xs =
  if Array.length xs = 0 then 0.
  else Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.
  else begin
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs in
    ss /. float_of_int (n - 1)
  end

let std xs = Float.sqrt (variance xs)

let summarize xs =
  if Array.length xs = 0 then invalid_arg "Stats.summarize: empty array";
  {
    count = Array.length xs;
    mean = mean xs;
    variance = variance xs;
    std = std xs;
    min = Array.fold_left Float.min xs.(0) xs;
    max = Array.fold_left Float.max xs.(0) xs;
  }

let quantile xs q =
  if Array.length xs = 0 then invalid_arg "Stats.quantile: empty array";
  if q < 0. || q > 1. then invalid_arg "Stats.quantile: q out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = int_of_float (Float.ceil pos) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)
  end

let median xs = quantile xs 0.5

let proportion_ci ~successes ~trials =
  if trials <= 0 then invalid_arg "Stats.proportion_ci: trials must be positive";
  let z = 1.959963984540054 in
  let n = float_of_int trials in
  let p = float_of_int successes /. n in
  let z2 = z *. z in
  let denom = 1. +. (z2 /. n) in
  let center = (p +. (z2 /. (2. *. n))) /. denom in
  let half =
    z /. denom *. Float.sqrt ((p *. (1. -. p) /. n) +. (z2 /. (4. *. n *. n)))
  in
  (Float.max 0. (center -. half), Float.min 1. (center +. half))

let histogram ~bins ~lo ~hi xs =
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  if hi <= lo then invalid_arg "Stats.histogram: empty range";
  let counts = Array.make bins 0 in
  let width = (hi -. lo) /. float_of_int bins in
  Array.iter
    (fun x ->
      let i = int_of_float (Float.floor ((x -. lo) /. width)) in
      let i = if i < 0 then 0 else if i >= bins then bins - 1 else i in
      counts.(i) <- counts.(i) + 1)
    xs;
  counts

let pearson xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Stats.pearson: length mismatch";
  if n < 2 then invalid_arg "Stats.pearson: need at least 2 points";
  let mx = mean xs and my = mean ys in
  let num = ref 0. and sx = ref 0. and sy = ref 0. in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx and dy = ys.(i) -. my in
    num := !num +. (dx *. dy);
    sx := !sx +. (dx *. dx);
    sy := !sy +. (dy *. dy)
  done;
  if !sx = 0. || !sy = 0. then 0. else !num /. Float.sqrt (!sx *. !sy)

let fraction p xs =
  if Array.length xs = 0 then 0.
  else begin
    let hits = Array.fold_left (fun acc x -> if p x then acc + 1 else acc) 0 xs in
    float_of_int hits /. float_of_int (Array.length xs)
  end
