(** Samplers for the continuous and unbounded-discrete distributions used by
    the privacy mechanisms and workload generators. *)

val laplace : Rng.t -> scale:float -> float
(** A draw from the Laplace distribution [Lap(b)] with density
    [1/(2b) exp(-|x|/b)] — the noise distribution of the Laplace mechanism
    (Theorem 1.3). Raises [Invalid_argument] if [scale <= 0]. *)

val gaussian : Rng.t -> mean:float -> std:float -> float
(** Box–Muller normal draw. Raises [Invalid_argument] if [std < 0]. *)

val exponential : Rng.t -> rate:float -> float
(** Exponential draw with the given rate. *)

val geometric : Rng.t -> p:float -> int
(** Number of failures before the first success of a Bernoulli([p]) sequence,
    in [0, infinity). Raises [Invalid_argument] unless [0 < p <= 1]. *)

val two_sided_geometric : Rng.t -> alpha:float -> int
(** The discrete analogue of Laplace noise: [Pr(k) ∝ alpha^|k|] for integer
    [k], with [0 < alpha < 1]. Used by the geometric mechanism on integer
    counts. *)

val bernoulli : Rng.t -> p:float -> bool
(** Coin with success probability [p]. *)

val binomial : Rng.t -> n:int -> p:float -> int
(** Sum of [n] independent Bernoulli([p]) draws. *)
