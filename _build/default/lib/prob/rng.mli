(** Deterministic pseudo-random number generator.

    All randomness in the library flows through this module so that every
    experiment, attack and mechanism is exactly reproducible from a seed.
    The generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): fast,
    statistically strong for simulation purposes, and cheap to split into
    independent streams. It is {e not} cryptographically secure; where the
    paper needs "cryptographic" objects (hash-bucket predicates, one-time
    pads) we only need their statistical behaviour at simulation scale. *)

type t
(** Mutable generator state. *)

val create : ?seed:int64 -> unit -> t
(** [create ~seed ()] makes a fresh generator. The default seed is fixed so
    that unseeded runs are reproducible. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t]; the two
    subsequent streams are (statistically) independent. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument]
    if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val uniform : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool
(** Fair coin. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. Raises [Invalid_argument] on
    an empty array. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement t k n] is a sorted [k]-subset of
    [\[0, n)]. Raises [Invalid_argument] if [k > n] or [k < 0]. *)
