let fnv_offset = 0xCBF29CE484222325L

let fnv_prime = 0x100000001B3L

(* SplitMix64 finalizer, used to diffuse the salt through the FNV digest. *)
let mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let hash64 ~salt s =
  let h = ref (Int64.logxor fnv_offset salt) in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h fnv_prime)
    s;
  mix (Int64.add !h salt)

let bucket ~salt ~buckets s =
  if buckets <= 0 then invalid_arg "Hashing.bucket: buckets must be positive";
  let h = Int64.shift_right_logical (hash64 ~salt s) 1 in
  Int64.to_int (Int64.rem h (Int64.of_int buckets))

let bit ~salt ~index s =
  if index < 0 || index > 63 then invalid_arg "Hashing.bit: index out of range";
  Int64.logand (Int64.shift_right_logical (hash64 ~salt s) index) 1L = 1L
