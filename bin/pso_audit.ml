(* pso_audit — command-line front end.

   Subcommands:
     synth        generate a synthetic population (CSV to stdout or a file)
     anonymize    k-anonymize a synthetic population and print the release
     game         run the PSO security game for a chosen mechanism
     theorems     run the executable theorem battery (1.3, 2.5-2.10)
     report       print the full legal-technical report
     dpcheck      empirically audit the eps-DP mechanisms (Definition 1.2)
     certify      mechanically verify the eps-DP coupling certificates
     experiment   run one of E1..E14 (or `all`)
     census       census-scale sharded reconstruction (streaming tabulation)
     run          alias for experiment with explicit --quick/--full scale
     validate-json  parse JSON files written by --trace / --metrics-json

   Observability: every long-running subcommand accepts --trace FILE
   (Chrome trace_event JSON), --metrics-json FILE (obs-metrics/v1),
   --metrics (summary table on stderr) and --progress (stderr heartbeat).
   All telemetry output goes to stderr or to files, never stdout, so
   golden tables stay byte-identical with telemetry enabled. *)

open Cmdliner

let rng_of_seed seed = Prob.Rng.create ~seed:(Int64.of_int seed) ()

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.")

(* Monte Carlo parallelism: trials fan out over a domain pool with one
   split-off generator per trial, so results are identical at every jobs
   count for the same seed. *)
let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"K"
        ~doc:
          "Worker domains for Monte Carlo trials (default: cores - 1; \
           results do not depend on this).")

let set_jobs =
  Option.iter (fun j ->
      if j < 1 then begin
        Format.eprintf "pso_audit: --jobs must be >= 1 (got %d)@." j;
        exit 2
      end;
      Parallel.Pool.set_default_jobs j)

(* Query evaluation engine (see Query.Predicate). Results are identical
   under every engine; check mode cross-validates the compiled path
   against the reference interpreter and fails loudly on divergence. The
   flag overrides the PSO_QUERY_ENGINE environment variable. *)
let engine_arg =
  Arg.(
    value
    & opt
        (some
           (enum
              [
                ("interp", Query.Predicate.Interpreted);
                ("bitset", Query.Predicate.Compiled);
                ("check", Query.Predicate.Checked);
              ]))
        None
    & info [ "engine" ] ~docv:"E"
        ~doc:
          "Query evaluation engine: $(b,interp) (reference row-by-row \
           interpreter), $(b,bitset) (compiled columnar engine, the \
           default) or $(b,check) (run both and fail on any divergence). \
           Results do not depend on this.")

let set_engine = Option.iter Query.Predicate.set_engine

(* --- observability flags --- *)

type obs_cfg = {
  trace : string option;
  metrics_json : string option;
  metrics : bool;
  progress : bool;
  ledger : string option;
  prom : string option;
  timeline : string option;
  watch : bool;
  tick_ms : int;
}

let obs_term =
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace_event JSON file (open in Perfetto or \
             chrome://tracing); one track per worker domain.")
  in
  let metrics_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-json" ] ~docv:"FILE"
          ~doc:"Write counters and histograms as obs-metrics/v1 JSON.")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Print a metrics summary table to stderr on completion.")
  in
  let progress =
    Arg.(
      value & flag
      & info [ "progress" ]
          ~doc:"Print a heartbeat with items/sec and ETA to stderr.")
  in
  let ledger =
    Arg.(
      value
      & opt (some string) None
      & info [ "ledger" ] ~docv:"FILE"
          ~doc:
            "Journal every query, refusal, noise draw, budget spend and \
             suppression to FILE as ledger/v1 JSONL (byte-identical at \
             every --jobs for a fixed seed); re-check it with $(b,pso_audit \
             ledger-verify).")
  in
  let prom =
    Arg.(
      value
      & opt (some string) None
      & info [ "prom" ] ~docv:"FILE"
          ~doc:
            "Rewrite FILE atomically on every telemetry tick in Prometheus \
             text-exposition format (# HELP/# TYPE from metric \
             registrations; every sample carries a \
             class=\"deterministic\"|\"timing\" label).")
  in
  let timeline =
    Arg.(
      value
      & opt (some string) None
      & info [ "timeline" ] ~docv:"FILE"
          ~doc:
            "Write the run's snapshot ring as obs-timeline/v1 JSON on \
             completion: periodic captures of every metric with \
             per-interval deltas and rates, plus a final post-workload \
             capture whose deterministic entries are byte-identical at \
             every --jobs.")
  in
  let watch =
    Arg.(
      value & flag
      & info [ "watch" ]
          ~doc:
            "Live stderr dashboard redrawn on every telemetry tick (top \
             counters with rates, gauges, sketch quantiles). Replaces the \
             --progress heartbeat when both are given.")
  in
  let tick_ms =
    Arg.(
      value & opt int 250
      & info [ "tick-ms" ] ~docv:"MS"
          ~doc:"Telemetry snapshot period for --prom/--watch (default 250).")
  in
  Term.(
    const (fun trace metrics_json metrics progress ledger prom timeline watch
               tick_ms ->
        {
          trace;
          metrics_json;
          metrics;
          progress;
          ledger;
          prom;
          timeline;
          watch;
          tick_ms;
        })
    $ trace $ metrics_json $ metrics $ progress $ ledger $ prom $ timeline
    $ watch $ tick_ms)

(* Runs [f] with telemetry enabled when any obs output was requested, then
   exports. [f] returns an exit code instead of calling [exit] directly so
   the snapshot/export runs before the process terminates. *)
let with_obs cfg f =
  if cfg.tick_ms <= 0 then begin
    Format.eprintf "pso_audit: --tick-ms must be > 0 (got %d)@." cfg.tick_ms;
    exit 2
  end;
  (* The Timeline layer (ticker + subscribers) runs whenever any live
     consumer was requested; --watch absorbs --progress so stderr has a
     single writer. *)
  let live = cfg.prom <> None || cfg.timeline <> None || cfg.watch in
  if cfg.progress && not cfg.watch then Obs.Progress.enable ();
  (match cfg.ledger with
  | Some _ ->
    Obs.Ledger.reset ();
    Obs.Ledger.enable ()
  | None -> ());
  let finish_ledger () =
    Option.iter
      (fun path ->
        Obs.Ledger.disable ();
        Obs.Ledger.write_file path;
        Format.eprintf "[obs] wrote %s to %s@." Obs.Ledger.schema path)
      cfg.ledger
  in
  let wanted =
    cfg.trace <> None || cfg.metrics_json <> None || cfg.metrics || live
  in
  if not wanted then begin
    let code = f () in
    finish_ledger ();
    code
  end
  else begin
    let jobs = Parallel.Pool.jobs (Parallel.Pool.default ()) in
    Obs.reset ();
    Obs.enable ();
    if live then begin
      Obs.Timeline.reset ();
      Obs.Timeline.set_jobs jobs;
      Option.iter
        (fun path ->
          Obs.Timeline.subscribe (fun values _ ->
              Obs.Prom.write_file path (Obs.Prom.render values)))
        cfg.prom;
      if cfg.watch then Obs.Timeline.subscribe (Obs.Watch.subscriber ~jobs ());
      Obs.Timeline.start
        ~period_ns:(Int64.of_int (cfg.tick_ms * 1_000_000))
        ()
    end;
    let code = f () in
    if live then begin
      (* Stop ticking before the final capture so it freezes the
         completed workload: its deterministic entries are byte-identical
         at every --jobs, unlike the wall-clock-placed periodic ticks. *)
      Obs.Timeline.stop ();
      ignore (Obs.Timeline.capture ~final:true ());
      Option.iter
        (fun path ->
          Obs.Timeline.write_file path;
          Format.eprintf "[obs] wrote %s to %s@." Obs.Timeline.schema path)
        cfg.timeline;
      Option.iter
        (fun path -> Format.eprintf "[obs] wrote Prometheus text to %s@." path)
        cfg.prom
    end;
    let report = Obs.snapshot ~jobs () in
    Option.iter
      (fun path ->
        Obs.Export.write_file path (Obs.Export.chrome_trace report);
        Format.eprintf "[obs] wrote Chrome trace to %s@." path)
      cfg.trace;
    Option.iter
      (fun path ->
        Obs.Export.write_file path (Obs.Export.metrics_json report);
        Format.eprintf "[obs] wrote %s to %s@." Obs.Export.schema path)
      cfg.metrics_json;
    if cfg.metrics then Format.eprintf "%a@." Obs.Export.pp_summary report;
    finish_ledger ();
    code
  end

let exit_with code = if code <> 0 then exit code

let n_arg default =
  Arg.(value & opt int default & info [ "n"; "size" ] ~docv:"N" ~doc:"Dataset size.")

let trials_arg =
  Arg.(value & opt int 100 & info [ "trials" ] ~docv:"T" ~doc:"Game trials.")

(* --- synth --- *)

let synth_cmd =
  let run seed n out =
    let rng = rng_of_seed seed in
    let table = Dataset.Synth.population rng ~n () in
    match out with
    | None -> print_string (Dataset.Csv.to_string table)
    | Some path ->
      Dataset.Csv.write_file path table;
      Printf.printf "wrote %d rows to %s\n" (Dataset.Table.nrows table) path
  in
  let out =
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc:"Output CSV file.")
  in
  Cmd.v
    (Cmd.info "synth" ~doc:"Generate a synthetic GIC-style population as CSV.")
    Term.(const run $ seed_arg $ n_arg 1000 $ out)

(* --- anonymize --- *)

let algo_conv =
  Arg.enum
    [
      ("mondrian", Kanon.Anonymizer.Mondrian);
      ("datafly", Kanon.Anonymizer.Datafly);
      ("samarati", Kanon.Anonymizer.Samarati);
      ("incognito", Kanon.Anonymizer.Incognito);
    ]

let demographic_scheme =
  [
    ("zip", Dataset.Hierarchy.zip_prefix ~digits:5);
    ("birth_date", Dataset.Hierarchy.date_ladder);
    ("sex", Dataset.Hierarchy.categorical ~name:"sex"
       (Dataset.Hierarchy.Node
          ( "*",
            [
              Dataset.Hierarchy.Leaf (Dataset.Value.String "F");
              Dataset.Hierarchy.Leaf (Dataset.Value.String "M");
            ] )));
  ]

let anonymize_cmd =
  let run seed n k algorithm rows out =
    let rng = rng_of_seed seed in
    let table = Dataset.Synth.population rng ~n () in
    let config =
      {
        Kanon.Anonymizer.algorithm;
        k;
        scheme = demographic_scheme;
        max_suppression = 0.05;
        recoding = Kanon.Mondrian.Member_level;
      }
    in
    let release = Kanon.Anonymizer.anonymize config table in
    (match out with
    | None -> Format.printf "%a@." (Dataset.Gtable.pp ~max_rows:rows) release
    | Some path ->
      Dataset.Csv.write_gtable_file path release;
      Format.printf "wrote %d generalized rows to %s@."
        (Dataset.Gtable.nrows release) path);
    Format.printf "k-anonymous (k=%d): %b; suppressed rows: %d@." k
      (Kanon.Anonymizer.is_k_anonymous ~k release)
      (Kanon.Metrics.suppressed_rows release)
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE" ~doc:"Write the release as CSV.")
  in
  let k_arg =
    Arg.(value & opt int 5 & info [ "k"; "anonymity" ] ~docv:"K" ~doc:"Anonymity parameter.")
  in
  let algo_arg =
    Arg.(value & opt algo_conv Kanon.Anonymizer.Mondrian
         & info [ "algo" ] ~docv:"ALGO" ~doc:"mondrian | datafly | samarati | incognito.")
  in
  let rows_arg =
    Arg.(value & opt int 20 & info [ "rows" ] ~docv:"R" ~doc:"Rows to print.")
  in
  Cmd.v
    (Cmd.info "anonymize" ~doc:"k-anonymize a synthetic population.")
    Term.(const run $ seed_arg $ n_arg 200 $ k_arg $ algo_arg $ rows_arg $ out_arg)

(* --- game --- *)

type game_target = Count | Dp_count | Kanon_member | Kanon_class

let game_cmd =
  let run seed jobs engine n trials target obs =
    set_jobs jobs;
    set_engine engine;
    exit_with @@ with_obs obs
    @@ fun () ->
    let rng = rng_of_seed seed in
    let model = Dataset.Synth.kanon_pso_model ~qis:6 ~retained:42 ~domain:64 in
    let count_query =
      Query.Predicate.Atom (Query.Predicate.Range ("q0", 0., 32.))
    in
    let mechanism, attacker =
      match target with
      | Count ->
        ( Query.Mechanism.exact_count count_query,
          Pso.Attacker.hash_bucket ~buckets:(n * n * n) )
      | Dp_count ->
        ( Dp.Laplace.mechanism ~epsilon:1. [| count_query |],
          Pso.Attacker.hash_bucket ~buckets:(n * n * n) )
      | Kanon_member ->
        ( Kanon.Anonymizer.mechanism
            {
              Kanon.Anonymizer.algorithm = Kanon.Anonymizer.Mondrian;
              k = 5;
              scheme = [];
              max_suppression = 0.05;
              recoding = Kanon.Mondrian.Member_level;
            },
          Pso.Kanon_attack.cohen () )
      | Kanon_class ->
        ( Kanon.Anonymizer.mechanism
            {
              Kanon.Anonymizer.algorithm = Kanon.Anonymizer.Mondrian;
              k = 5;
              scheme = [];
              max_suppression = 0.05;
              recoding = Kanon.Mondrian.Class_level;
            },
          Pso.Kanon_attack.greedy () )
    in
    let outcome =
      Pso.Game.run rng ~model ~n ~mechanism ~attacker
        ~weight_bound:(Pso.Isolation.negligible_bound ~n ~c:2.)
        ~trials
    in
    Format.printf "mechanism: %s@.attacker: %s@.%a@." mechanism.Query.Mechanism.name
      attacker.Pso.Attacker.name Pso.Game.pp outcome;
    0
  in
  let target_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("count", Count);
               ("dp-count", Dp_count);
               ("kanon-member", Kanon_member);
               ("kanon-class", Kanon_class);
             ])
          Kanon_member
      & info [ "mechanism" ] ~docv:"M"
          ~doc:"count | dp-count | kanon-member | kanon-class.")
  in
  Cmd.v
    (Cmd.info "game" ~doc:"Run the PSO security game (Definition 2.4).")
    Term.(
      const run $ seed_arg $ jobs_arg $ engine_arg $ n_arg 120 $ trials_arg
      $ target_arg $ obs_term)

(* --- audit --- *)

type audit_target =
  | A_count
  | A_dp_count
  | A_kanon_member
  | A_kanon_class
  | A_identity
  | A_synthetic

let audit_cmd =
  let run seed jobs engine n trials target obs =
    set_jobs jobs;
    set_engine engine;
    exit_with @@ with_obs obs
    @@ fun () ->
    let rng = rng_of_seed seed in
    let model = Dataset.Synth.kanon_pso_model ~qis:6 ~retained:42 ~domain:64 in
    let count_query =
      Query.Predicate.Atom (Query.Predicate.Range ("q0", 0., 32.))
    in
    let kanon recoding =
      Kanon.Anonymizer.mechanism
        {
          Kanon.Anonymizer.algorithm = Kanon.Anonymizer.Mondrian;
          k = 5;
          scheme = [];
          max_suppression = 0.05;
          recoding;
        }
    in
    let mechanism =
      match target with
      | A_count -> Query.Mechanism.exact_count count_query
      | A_dp_count -> Dp.Laplace.mechanism ~epsilon:1. [| count_query |]
      | A_kanon_member -> kanon Kanon.Mondrian.Member_level
      | A_kanon_class -> kanon Kanon.Mondrian.Class_level
      | A_identity -> Query.Mechanism.identity_release
      | A_synthetic ->
        let domains =
          List.map
            (fun name -> (name, List.init 64 (fun v -> Dataset.Value.Int v)))
            (Dataset.Schema.names (Dataset.Model.schema model))
        in
        Dp.Synthetic.mechanism ~epsilon:1. ~domains ~rows:n
    in
    Format.printf "auditing mechanism: %s@." mechanism.Query.Mechanism.name;
    let findings = Core.Audit.mechanism rng ~model ~n ~trials mechanism in
    List.iter
      (fun f ->
        Format.printf "  %-34s %a@." f.Core.Audit.attacker Pso.Game.pp
          f.Core.Audit.outcome)
      findings;
    let worst = Core.Audit.worst_success findings in
    Format.printf "worst PSO success: %.1f%% -> %s@." (100. *. worst)
      (if worst > 0.1 then "singling out DEMONSTRATED: not GDPR-anonymous"
       else "no singling out demonstrated by this battery");
    0
  in
  let target_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("count", A_count);
               ("dp-count", A_dp_count);
               ("kanon-member", A_kanon_member);
               ("kanon-class", A_kanon_class);
               ("identity", A_identity);
               ("dp-synthetic", A_synthetic);
             ])
          A_identity
      & info [ "mechanism" ] ~docv:"M"
          ~doc:
            "count | dp-count | kanon-member | kanon-class | identity | \
             dp-synthetic.")
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:"Run the standard PSO attacker battery against a mechanism.")
    Term.(
      const run $ seed_arg $ jobs_arg $ engine_arg $ n_arg 120 $ trials_arg
      $ target_arg $ obs_term)

(* --- theorems --- *)

let theorems_cmd =
  let run seed jobs engine n trials obs =
    set_jobs jobs;
    set_engine engine;
    exit_with @@ with_obs obs
    @@ fun () ->
    let rng = rng_of_seed seed in
    let params = { Pso.Theorems.n; trials; weight_exponent = 2. } in
    let verdicts = Pso.Theorems.all ~params rng in
    List.iter (fun v -> Format.printf "%a@." Pso.Theorems.pp v) verdicts;
    let failed = List.filter (fun v -> not v.Pso.Theorems.holds) verdicts in
    if failed = [] then begin
      Format.printf "all %d checks hold@." (List.length verdicts);
      0
    end
    else begin
      Format.printf "%d checks REFUTED@." (List.length failed);
      1
    end
  in
  Cmd.v
    (Cmd.info "theorems" ~doc:"Run the executable theorem battery.")
    Term.(
      const run $ seed_arg $ jobs_arg $ engine_arg $ n_arg 150 $ trials_arg
      $ obs_term)

(* --- report --- *)

let report_cmd =
  let run seed jobs engine n trials obs =
    set_jobs jobs;
    set_engine engine;
    exit_with @@ with_obs obs
    @@ fun () ->
    let rng = rng_of_seed seed in
    let report =
      Legal.Report.build ~context:"pso_audit report" rng
        { Pso.Theorems.n; trials; weight_exponent = 2. }
    in
    Format.printf "%a@." Legal.Report.pp report;
    0
  in
  Cmd.v
    (Cmd.info "report" ~doc:"Print the full legal-technical audit report.")
    Term.(
      const run $ seed_arg $ jobs_arg $ engine_arg $ n_arg 150 $ trials_arg
      $ obs_term)

(* --- dpcheck --- *)

let dpcheck_cmd =
  let run seed jobs engine trials confidence battery mechanism obs =
    set_jobs jobs;
    set_engine engine;
    if trials < 1 then begin
      Format.eprintf "pso_audit: --trials must be >= 1 (got %d)@." trials;
      exit 2
    end;
    if not (confidence > 0. && confidence < 1.) then begin
      Format.eprintf "pso_audit: --confidence must be in (0, 1) (got %g)@."
        confidence;
      exit 2
    end;
    let cases =
      match mechanism with
      | Some name -> (
        match Stattest.Dp_audit.find name with
        | Some case -> [ case ]
        | None ->
          Format.eprintf "pso_audit: unknown mechanism %S (valid: %s)@." name
            (String.concat ", "
               (List.map
                  (fun (c : Stattest.Dp_audit.case) -> c.Stattest.Dp_audit.name)
                  (Stattest.Dp_audit.all ())));
          exit 2)
      | None -> (
        match battery with
        | "standard" -> Stattest.Dp_audit.standard ()
        | "broken" -> Stattest.Dp_audit.broken ()
        | "all" -> Stattest.Dp_audit.all ()
        | other ->
          Format.eprintf
            "pso_audit: --battery must be standard | broken | all (got %S)@."
            other;
          exit 2)
    in
    exit_with @@ with_obs obs
    @@ fun () ->
    let rng = rng_of_seed seed in
    let flagged =
      List.filter
        (fun case ->
          let report = Stattest.Dp_audit.run ~confidence ~trials rng case in
          Format.printf "%a@." Stattest.Dp_audit.pp_report report;
          not (Stattest.Dp_audit.passed report))
        cases
    in
    Format.printf "dpcheck: %d/%d mechanism(s) flagged@." (List.length flagged)
      (List.length cases);
    if flagged <> [] then 1 else 0
  in
  let trials_arg =
    Arg.(
      value & opt int 60_000
      & info [ "trials" ] ~docv:"T" ~doc:"Monte Carlo trials per neighbor.")
  in
  let confidence_arg =
    Arg.(
      value & opt float 0.9999
      & info [ "confidence" ] ~docv:"C"
          ~doc:"Family-wise confidence for violation certificates.")
  in
  let battery_arg =
    Arg.(
      value & opt string "standard"
      & info [ "battery" ] ~docv:"B"
          ~doc:"standard | broken | all (ignored with --mechanism).")
  in
  let mechanism_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "mechanism" ] ~docv:"M"
          ~doc:"Audit a single case, e.g. laplace or broken-laplace.")
  in
  Cmd.v
    (Cmd.info "dpcheck"
       ~doc:
         "Empirically audit the eps-DP mechanisms (Definition 1.2); exits 1 \
          when a statistically certified violation is found.")
    Term.(
      const run $ seed_arg $ jobs_arg $ engine_arg $ trials_arg
      $ confidence_arg $ battery_arg $ mechanism_arg $ obs_term)

(* --- certify --- *)

let certify_cmd =
  let run mechanism tamper legal seed =
    (* No --jobs / --engine here: certificate checking is an exhaustive
       deterministic enumeration — nothing is sampled, nothing fans out. *)
    if tamper then begin
      let results = Cert.Registry.tamper_suite () in
      List.iter
        (fun (r : Cert.Registry.tamper_result) ->
          Format.printf "%-28s %-20s %s@." r.entry_name r.tamper
            (if r.rejected then "REJECTED" else "ACCEPTED"))
        results;
      let accepted =
        List.filter (fun (r : Cert.Registry.tamper_result) -> not r.rejected) results
      in
      Format.printf "tamper: %d/%d tampered certificates rejected@."
        (List.length results - List.length accepted)
        (List.length results);
      exit_with (if accepted = [] && results <> [] then 0 else 1)
    end
    else begin
      let rows =
        match mechanism with
        | None -> Cert.Registry.verify_all ()
        | Some name -> (
          match Cert.Catalog.find name with
          | Some entry ->
            [ { Cert.Registry.entry; verdict = Cert.Registry.verify entry } ]
          | None ->
            Format.eprintf "pso_audit: unknown certificate %S (valid: %s)@."
              name
              (String.concat ", "
                 (List.map
                    (fun (e : Cert.Catalog.entry) -> e.Cert.Catalog.name)
                    (Cert.Catalog.all ())));
            exit 2)
      in
      print_string (Cert.Registry.render_table rows);
      if legal then begin
        let rng = rng_of_seed seed in
        let verdict = Pso.Theorems.dp_prevents_pso rng in
        let certificates =
          List.filter_map
            (fun (r : Cert.Registry.row) ->
              if r.entry.Cert.Catalog.negative then None
              else
                Some
                  {
                    Legal.Theorem.mechanism = r.entry.Cert.Catalog.name;
                    claim =
                      Printf.sprintf "e^eps = %s (%s)"
                        (Cert.Q.to_string r.entry.Cert.Catalog.model.Cert.Model.bound)
                        r.entry.Cert.Catalog.spec.Dp.Finite.epsilon_label;
                    witness =
                      (match r.entry.Cert.Catalog.witness with
                      | Cert.Catalog.Handwritten _ -> "handwritten alignment"
                      | Cert.Catalog.Derived -> "search-derived alignment");
                    certified =
                      (match r.verdict with
                      | Cert.Registry.Certified _ -> true
                      | _ -> false);
                  })
            rows
        in
        Format.printf "%a@." Legal.Theorem.pp
          (Legal.Theorem.dp_necessary_condition ~certificates verdict)
      end;
      exit_with (if Cert.Registry.all_ok rows then 0 else 1)
    end
  in
  let mechanism_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "mechanism" ] ~docv:"M"
          ~doc:"Verify a single registered certificate, e.g. laplace.")
  in
  let tamper_arg =
    Arg.(
      value & flag
      & info [ "tamper" ]
          ~doc:
            "Run the tampered-certificate suite instead: corrupt every \
             verified production certificate (shifted target, collided \
             targets, out-of-range target) and require the checker to \
             reject each one.")
  in
  let legal_arg =
    Arg.(
      value & flag
      & info [ "legal" ]
          ~doc:
            "Also derive the Section 2.4.1 legal determination citing the \
             certificate verdicts as machine-checked premises.")
  in
  Cmd.v
    (Cmd.info "certify"
       ~doc:
         "Mechanically verify the registered eps-DP coupling certificates \
          (exact rational arithmetic, no sampling); exits 1 unless every \
          production mechanism is certified and every negative control is \
          rejected.")
    Term.(const run $ mechanism_arg $ tamper_arg $ legal_arg $ seed_arg)

(* --- experiment / run --- *)

let run_experiments ~seed ~jobs ~engine ~scale ~obs id =
  set_jobs jobs;
  set_engine engine;
  (* Validate the id before enabling telemetry so a typo exits cleanly. *)
  let entries =
    if String.lowercase_ascii id = "all" then Experiments.Registry.all
    else
      match Experiments.Registry.find id with
      | Some e -> [ e ]
      | None ->
        Format.eprintf "unknown experiment %S (expected E1..E14 or all)@." id;
        exit 2
  in
  exit_with @@ with_obs obs
  @@ fun () ->
  let rng = rng_of_seed seed in
  let fmt = Format.std_formatter in
  List.iter
    (fun (e : Experiments.Registry.entry) ->
      e.Experiments.Registry.print ~scale rng fmt)
    entries;
  0

let id_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc:"E1..E14 or all.")

let full_arg =
  Arg.(value & flag & info [ "full" ] ~doc:"Full-scale parameters (slower).")

let experiment_cmd =
  let run seed jobs engine full id obs =
    let scale =
      if full then Experiments.Common.Full else Experiments.Common.Quick
    in
    run_experiments ~seed ~jobs ~engine ~scale ~obs id
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Run an experiment from DESIGN.md's index.")
    Term.(
      const run $ seed_arg $ jobs_arg $ engine_arg $ full_arg $ id_arg
      $ obs_term)

let run_cmd =
  let run seed jobs engine quick full id obs =
    if quick && full then begin
      Format.eprintf "pso_audit: --quick and --full are mutually exclusive@.";
      exit 2
    end;
    let scale =
      if full then Experiments.Common.Full else Experiments.Common.Quick
    in
    run_experiments ~seed ~jobs ~engine ~scale ~obs id
  in
  let quick_arg =
    Arg.(
      value & flag
      & info [ "quick" ] ~doc:"Quick-scale parameters (the default).")
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run an experiment from DESIGN.md's index (alias of experiment with \
          an explicit --quick/--full scale choice).")
    Term.(
      const run $ seed_arg $ jobs_arg $ engine_arg $ quick_arg $ full_arg
      $ id_arg $ obs_term)

(* --- census --- *)

let census_cmd =
  let run seed jobs blocks mean_block_size shards threshold cold shave
      materialize obs =
    set_jobs jobs;
    if blocks < 1 || mean_block_size < 1 || shards < 1 then begin
      Format.eprintf
        "pso_audit: census: --blocks, --mean-block-size and --shards must \
         all be >= 1@.";
      exit 2
    end;
    if threshold < 0 then begin
      Format.eprintf "pso_audit: census: --suppress must be >= 0 (got %d)@."
        threshold;
      exit 2
    end;
    exit_with @@ with_obs obs
    @@ fun () ->
    let module Cs = Attacks.Census_scale in
    let cfg =
      {
        Cs.blocks;
        mean_block_size;
        shards;
        threshold;
        warm_start = not cold;
        shave;
      }
    in
    let rng = rng_of_seed seed in
    let t0 = Obs.now_ns () in
    let stats = Cs.run ~materialize cfg rng in
    let dt_ns = Int64.to_float (Int64.sub (Obs.now_ns ()) t0) in
    Format.printf "census: %d blocks (mean size %d) over %d shards%s%s@."
      blocks mean_block_size shards
      (if materialize then " [materialized]" else " [streaming]")
      (if cold then " [cold]" else " [warm-started]");
    Format.printf "  population          %d@." stats.Cs.population;
    Format.printf "  records             %d@." stats.Cs.records;
    Format.printf "  solved blocks       %d (%d converged)@."
      stats.Cs.solved_blocks stats.Cs.converged_blocks;
    Format.printf "  suppressed cells    %d (threshold %d)@."
      stats.Cs.suppressed_cells threshold;
    Format.printf "  fixed cells         %d@." stats.Cs.fixed_cells;
    Format.printf "  joint match rate    %.4f@." (Cs.match_rate stats);
    Format.printf "  sex-age match rate  %.4f@." (Cs.sex_age_rate stats);
    Format.printf "  solves              %d (%d warm-started)@." stats.Cs.solves
      stats.Cs.warm_solves;
    Format.printf "  iterations          %d (%d in warm solves)@."
      stats.Cs.iterations stats.Cs.warm_iterations;
    (* Throughput is wall-clock: stderr only, so stdout stays deterministic
       for a fixed seed and shard count. *)
    if dt_ns > 0. then
      Printf.eprintf "census: %.0f rows/sec\n%!"
        (float_of_int stats.Cs.records /. (dt_ns /. 1e9));
    0
  in
  let blocks_arg =
    Arg.(
      value & opt int 200
      & info [ "blocks" ] ~docv:"N" ~doc:"Number of census blocks to stream.")
  in
  let mean_arg =
    Arg.(
      value & opt int 30
      & info [ "mean-block-size" ] ~docv:"N"
          ~doc:"Mean people per block (geometric, always >= 1).")
  in
  let shards_arg =
    Arg.(
      value & opt int 16
      & info [ "shards" ] ~docv:"K"
          ~doc:
            "Fixed fan-out unit the blocks are dealt across. Part of the \
             scenario: results depend on it (one generator per shard), but \
             never on --jobs.")
  in
  let threshold_arg =
    Arg.(
      value & opt int 3
      & info [ "suppress" ] ~docv:"T"
          ~doc:
            "Suppression threshold: marginal counts under T are withheld \
             and published as intervals. 0 publishes everything exactly.")
  in
  let cold_arg =
    Arg.(
      value & flag
      & info [ "cold" ]
          ~doc:
            "Disable neighbor warm-starting; every block solves from the \
             interval midpoint seed.")
  in
  let shave_arg =
    Arg.(
      value & flag
      & info [ "shave" ]
          ~doc:
            "Sharpen interval propagation with per-cell branch-and-bound \
             before solving (slower, pins more cells).")
  in
  let materialize_arg =
    Arg.(
      value & flag
      & info [ "materialize" ]
          ~doc:
            "Build the whole population up front and tabulate it in one \
             pass (the memory-heavy reference path) instead of streaming \
             block by block. Stats are identical to streaming.")
  in
  Cmd.v
    (Cmd.info "census"
       ~doc:
         "Census-scale sharded reconstruction: stream synthetic blocks \
          through suppression, interval propagation and warm-started sparse \
          least squares without materializing the population (Section 1 at \
          scale; E14 is the golden-pinned variant).")
    Term.(
      const run $ seed_arg $ jobs_arg $ blocks_arg $ mean_arg $ shards_arg
      $ threshold_arg $ cold_arg $ shave_arg $ materialize_arg $ obs_term)

(* --- validate-json --- *)

let validate_json_cmd =
  let run files =
    List.iter
      (fun path ->
        let contents =
          try
            let ic = open_in_bin path in
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          with Sys_error msg ->
            Format.eprintf "pso_audit: cannot read %s: %s@." path msg;
            exit 2
        in
        let schema_of doc =
          match Core.Json.member "schema" doc with
          | Some (Core.Json.String s) -> s
          | _ -> "unknown schema"
        in
        match Core.Json.of_string contents with
        | Ok doc ->
          (* Schemas with a structural validator get the deep check, not
             just a parse. *)
          if String.equal (schema_of doc) Obs.Timeline.schema then begin
            match Obs.Timeline.validate doc with
            | Ok () -> Format.printf "ok: %s (%s)@." path Obs.Timeline.schema
            | Error msg ->
              Format.eprintf "pso_audit: %s: invalid %s: %s@." path
                Obs.Timeline.schema msg;
              exit 2
          end
          else Format.printf "ok: %s (%s)@." path (schema_of doc)
        | Error msg -> (
          (* Not one JSON document. A Prometheus text exposition (the
             --prom output) starts with a comment or a bare metric name —
             never a JSON value — so try its line grammar next. *)
          let looks_prom =
            match
              String.split_on_char '\n' contents
              |> List.find_opt (fun l -> String.trim l <> "")
            with
            | Some l -> (
              match (String.trim l).[0] with
              | '#' | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
              | _ -> false)
            | None -> false
          in
          if looks_prom then begin
            match Obs.Prom.validate contents with
            | Ok () -> Format.printf "ok: %s (prometheus-text)@." path
            | Error pmsg ->
              Format.eprintf "pso_audit: %s: invalid Prometheus text: %s@."
                path pmsg;
              exit 2
          end
          else begin
            (* Maybe JSONL (the --ledger output): every non-empty line
               must parse on its own. *)
            let lines =
              String.split_on_char '\n' contents
              |> List.filter (fun l -> String.trim l <> "")
            in
            match lines with
            | [] | [ _ ] ->
              Format.eprintf "pso_audit: %s: invalid JSON: %s@." path msg;
              exit 2
            | first :: _ ->
              List.iteri
                (fun i l ->
                  match Core.Json.of_string l with
                  | Ok _ -> ()
                  | Error lmsg ->
                    Format.eprintf
                      "pso_audit: %s: invalid JSON (line %d): %s@." path
                      (i + 1) lmsg;
                    exit 2)
                lines;
              let schema =
                match Core.Json.of_string first with
                | Ok doc -> schema_of doc
                | Error _ -> "unknown schema"
              in
              Format.printf "ok: %s (%s, %d lines)@." path schema
                (List.length lines)
          end))
      files
  in
  let files_arg =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"FILE" ~doc:"JSON files.")
  in
  Cmd.v
    (Cmd.info "validate-json"
       ~doc:
         "Parse telemetry artifacts and report their schema: JSON documents \
          (--trace / --metrics-json output), JSONL (--ledger output), \
          Prometheus text expositions (--prom output, line-grammar check) \
          and obs-timeline/v1 documents (--timeline output, structural \
          check). Exits 2 on malformed input.")
    Term.(const run $ files_arg)

(* --- ledger-verify / ledger-report --- *)

let read_ledger path =
  match Obs.Ledger.read path with
  | Ok events -> events
  | Error msg ->
    Format.eprintf "pso_audit: %s: %s@." path msg;
    exit 2
  | exception Sys_error msg ->
    Format.eprintf "pso_audit: cannot read %s: %s@." path msg;
    exit 2

let ledger_file_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"LEDGER" ~doc:"A ledger/v1 JSONL file (from --ledger).")

let ledger_verify_cmd =
  let run path =
    let events = read_ledger path in
    match Obs.Ledger.verify events with
    | [] ->
      Format.printf "ok: %s: %d event(s), accountant arithmetic verified@."
        path (List.length events)
    | vs ->
      List.iter
        (fun (v : Obs.Ledger.violation) ->
          Format.printf "%s:%d: %s@." path v.Obs.Ledger.at v.Obs.Ledger.what)
        vs;
      Format.printf "%s: %d violation(s)@." path (List.length vs);
      exit 1
  in
  Cmd.v
    (Cmd.info "ledger-verify"
       ~doc:
         "Replay an audit ledger and mechanically re-check it: sessions \
          precede use, cumulative eps per analyst matches the spends and \
          never exceeds the declared budget, spend_many totals match, and \
          every refusal is justified. Exits 1 on any violation, 2 on \
          malformed input.")
    Term.(const run $ ledger_file_arg)

let ledger_report_cmd =
  let run path json =
    let events = read_ledger path in
    let rows = Obs.Ledger.report events in
    if json then
      print_endline
        (Core.Json.to_string ~pretty:true (Obs.Ledger.report_json rows))
    else begin
      Format.printf "ledger report: %s (%d event(s))@." path
        (List.length events);
      Format.printf "%a" Obs.Ledger.pp_report rows
    end;
    let violations = Obs.Ledger.verify events in
    if violations <> [] then begin
      (* In --json mode stdout stays pure JSON; the warning moves to
         stderr. *)
      if json then
        Format.eprintf "WARNING: %d violation(s) — run ledger-verify@."
          (List.length violations)
      else
        Format.printf "WARNING: %d violation(s) — run ledger-verify@."
          (List.length violations);
      exit 1
    end
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the per-analyst table as a ledger-report/v1 JSON document \
             on stdout instead of the human table.")
  in
  Cmd.v
    (Cmd.info "ledger-report"
       ~doc:
         "Print per-analyst tables (queries, refusals, eps spent/remaining, \
          cost p50/p95/p99) from an audit ledger, as a human table or \
          (--json) a ledger-report/v1 document. Exits 1 if the ledger does \
          not verify, 2 on malformed input.")
    Term.(const run $ ledger_file_arg $ json_arg)

(* --- report-html --- *)

let report_html_cmd =
  let read_text path =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with Sys_error msg ->
      Format.eprintf "pso_audit: cannot read %s: %s@." path msg;
      exit 2
  in
  let read_json ~expect path =
    let doc =
      match Core.Json.of_string (read_text path) with
      | Ok doc -> doc
      | Error msg ->
        Format.eprintf "pso_audit: %s: invalid JSON: %s@." path msg;
        exit 2
    in
    (match Core.Json.member "schema" doc with
    | Some (Core.Json.String s) when String.equal s expect -> ()
    | Some (Core.Json.String s) ->
      Format.eprintf "pso_audit: %s: expected schema %s, found %s@." path
        expect s;
      exit 2
    | _ ->
      Format.eprintf "pso_audit: %s: missing schema field@." path;
      exit 2);
    doc
  in
  let run out timeline metrics ledger bench title =
    if timeline = None && metrics = None && ledger = None && bench = [] then begin
      Format.eprintf
        "pso_audit: report-html needs at least one source (--timeline, \
         --metrics-json, --ledger or --bench)@.";
      exit 2
    end;
    let timeline =
      Option.map
        (fun path ->
          let doc = read_json ~expect:Obs.Timeline.schema path in
          (match Obs.Timeline.validate doc with
          | Ok () -> ()
          | Error msg ->
            Format.eprintf "pso_audit: %s: invalid %s: %s@." path
              Obs.Timeline.schema msg;
            exit 2);
          doc)
        timeline
    in
    let metrics =
      Option.map (fun path -> read_json ~expect:Obs.Export.schema path) metrics
    in
    let ledger =
      Option.map
        (fun path -> Obs.Ledger.report (read_ledger path))
        ledger
    in
    let bench =
      match
        List.map
          (fun path ->
            (Filename.basename path, read_json ~expect:"bench-kernels/v1" path))
          bench
      with
      | [] -> None
      | snaps -> Some snaps
    in
    let html =
      Obs.Report_html.render ?timeline ?metrics ?ledger ?bench ~title ()
    in
    let oc = open_out out in
    output_string oc html;
    close_out oc;
    Format.printf "wrote run report to %s@." out
  in
  let out_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"OUT.html" ~doc:"Output HTML file.")
  in
  let timeline_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "timeline" ] ~docv:"FILE"
          ~doc:"An obs-timeline/v1 document (from --timeline).")
  in
  let metrics_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-json" ] ~docv:"FILE"
          ~doc:"An obs-metrics/v1 document (from --metrics-json).")
  in
  let ledger_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "ledger" ] ~docv:"FILE"
          ~doc:"A ledger/v1 JSONL file (from --ledger).")
  in
  let bench_arg =
    Arg.(
      value & opt_all string []
      & info [ "bench" ] ~docv:"FILE"
          ~doc:
            "A bench-kernels/v1 snapshot (from bench --json); repeatable, \
             rendered as a trajectory in argument order.")
  in
  let title_arg =
    Arg.(
      value
      & opt string "pso_audit run report"
      & info [ "title" ] ~docv:"TITLE" ~doc:"Report title.")
  in
  Cmd.v
    (Cmd.info "report-html"
       ~doc:
         "Fuse a run's telemetry artifacts into one self-contained static \
          HTML report (inline CSS/SVG, no scripts, no external \
          references): timeline sparklines, final metric tables, \
          per-analyst ledger accounting and a bench trajectory. Exits 2 on \
          any malformed source.")
    Term.(
      const run $ out_arg $ timeline_arg $ metrics_arg $ ledger_arg $ bench_arg
      $ title_arg)

(* --- bench-compare --- *)

(* Reads a bench-kernels/v1 snapshot (bench/main.exe --json) into
   [(kernel name, ns per run)] rows. Any shape violation is a hard error:
   the CI gate must not silently pass on a malformed snapshot. *)
let read_bench_snapshot path =
  let fail fmt =
    Format.kasprintf
      (fun msg ->
        Format.eprintf "pso_audit: %s: %s@." path msg;
        exit 2)
      fmt
  in
  let contents =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with Sys_error msg -> fail "cannot read: %s" msg
  in
  let doc =
    match Core.Json.of_string contents with
    | Ok doc -> doc
    | Error msg -> fail "invalid JSON: %s" msg
  in
  (match Core.Json.member "schema" doc with
  | Some (Core.Json.String "bench-kernels/v1") -> ()
  | Some (Core.Json.String other) ->
    fail "expected schema bench-kernels/v1, found %s" other
  | _ -> fail "missing schema field");
  let kernels =
    match Option.bind (Core.Json.member "kernels" doc) Core.Json.to_list with
    | Some ks -> ks
    | None -> fail "missing kernels list"
  in
  List.map
    (fun k ->
      match
        ( Option.bind (Core.Json.member "name" k) Core.Json.to_string_opt,
          Option.bind (Core.Json.member "ns_per_run" k) Core.Json.to_float )
      with
      | Some name, Some ns -> (name, ns)
      | _ -> fail "malformed kernel entry")
    kernels

let bench_compare_cmd =
  let run base current tolerance =
    if tolerance < 0. then begin
      Format.eprintf "pso_audit: --tolerance must be >= 0 (got %g)@." tolerance;
      exit 2
    end;
    let base_rows = read_bench_snapshot base in
    let current_rows = read_bench_snapshot current in
    let shared =
      List.filter_map
        (fun (name, b_ns) ->
          Option.map
            (fun c_ns -> (name, b_ns, c_ns))
            (List.assoc_opt name current_rows))
        base_rows
    in
    if shared = [] then begin
      Format.eprintf "pso_audit: no kernels shared between %s and %s@." base
        current;
      exit 2
    end;
    Format.printf "bench-compare: %s -> %s (tolerance %+g%%)@." base current
      tolerance;
    let regressions =
      List.filter
        (fun (name, b_ns, c_ns) ->
          let delta = 100. *. ((c_ns /. b_ns) -. 1.) in
          let slower = delta > tolerance in
          Format.printf "  %-42s %10.2f us -> %10.2f us  %+7.1f%%%s@." name
            (b_ns /. 1e3) (c_ns /. 1e3) delta
            (if slower then "  REGRESSION" else "");
          slower)
        shared
    in
    let only side rows others =
      List.iter
        (fun (name, _) ->
          if not (List.mem_assoc name others) then
            Format.printf "  %-42s (only in %s)@." name side)
        rows
    in
    only "base" base_rows current_rows;
    only "current" current_rows base_rows;
    if regressions <> [] then begin
      Format.printf "%d kernel(s) regressed beyond %g%%@."
        (List.length regressions) tolerance;
      exit 1
    end
    else Format.printf "no kernel regressed beyond %g%%@." tolerance
  in
  let base_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"BASE" ~doc:"Baseline bench-kernels/v1 snapshot.")
  in
  let current_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"CURRENT" ~doc:"Current bench-kernels/v1 snapshot.")
  in
  let tolerance_arg =
    Arg.(
      value & opt float 20.
      & info [ "tolerance" ] ~docv:"PCT"
          ~doc:"Allowed slowdown per kernel in percent before failing.")
  in
  Cmd.v
    (Cmd.info "bench-compare"
       ~doc:
         "Compare two bench-kernels/v1 snapshots; exits 1 when any kernel \
          present in both slowed down by more than the tolerance, 2 on \
          malformed input.")
    Term.(const run $ base_arg $ current_arg $ tolerance_arg)

(* --- bench-pair --- *)

(* Within-snapshot comparison of two kernels (e.g. the ledger-off /
   ledger-on pair): the overhead gate needs a relative bound between two
   kernels of the *same* run, which bench-compare (two files, same
   kernel) cannot express. *)
let bench_pair_cmd =
  let run snapshot base current tolerance min_ratio =
    if tolerance < 0. then begin
      Format.eprintf "pso_audit: --tolerance must be >= 0 (got %g)@." tolerance;
      exit 2
    end;
    (match min_ratio with
    | Some r when r <= 0. ->
      Format.eprintf "pso_audit: --min-ratio must be > 0 (got %g)@." r;
      exit 2
    | _ -> ());
    let rows = read_bench_snapshot snapshot in
    let find name =
      match List.assoc_opt name rows with
      | Some ns -> ns
      | None ->
        Format.eprintf "pso_audit: %s: no kernel %S (have: %s)@." snapshot name
          (String.concat ", " (List.map fst rows));
        exit 2
    in
    let b_ns = find base in
    let c_ns = find current in
    let delta = 100. *. ((c_ns /. b_ns) -. 1.) in
    let ratio = b_ns /. c_ns in
    Format.printf
      "bench-pair: %s: %s (%.2f us) -> %s (%.2f us)  %+.1f%% (tolerance \
       %+g%%%s)@."
      snapshot base (b_ns /. 1e3) current (c_ns /. 1e3) delta tolerance
      (match min_ratio with
      | None -> ""
      | Some r -> Printf.sprintf ", min ratio %gx" r);
    if delta > tolerance then begin
      Format.printf "overhead beyond tolerance@.";
      exit 1
    end;
    match min_ratio with
    | Some r when ratio < r ->
      Format.printf "speedup %.2fx below the required %gx@." ratio r;
      exit 1
    | Some r -> Format.printf "speedup %.2fx (>= %gx required)@." ratio r
    | None -> Format.printf "within tolerance@."
  in
  let snapshot_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SNAPSHOT" ~doc:"A bench-kernels/v1 snapshot.")
  in
  let base_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"BASE" ~doc:"Baseline kernel name.")
  in
  let current_arg =
    Arg.(
      required
      & pos 2 (some string) None
      & info [] ~docv:"CURRENT" ~doc:"Kernel name to compare against BASE.")
  in
  let tolerance_arg =
    Arg.(
      value & opt float 10.
      & info [ "tolerance" ] ~docv:"PCT"
          ~doc:"Allowed slowdown of CURRENT over BASE in percent.")
  in
  let min_ratio_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "min-ratio" ] ~docv:"R"
          ~doc:
            "Speedup gate: additionally require CURRENT to be at least R \
             times faster than BASE (BASE_ns / CURRENT_ns >= R), e.g. the \
             sparse-vs-dense SpMV gate uses --min-ratio 10.")
  in
  Cmd.v
    (Cmd.info "bench-pair"
       ~doc:
         "Compare two kernels within one bench-kernels/v1 snapshot; exits 1 \
          when CURRENT is slower than BASE by more than the tolerance or \
          misses the --min-ratio speedup, 2 on malformed input or unknown \
          kernels.")
    Term.(
      const run $ snapshot_arg $ base_arg $ current_arg $ tolerance_arg
      $ min_ratio_arg)

let () =
  let doc = "singling-out: PSO games, attacks and legal theorems (PODS 2021)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "pso_audit" ~version:Core.version ~doc)
          [
            synth_cmd; anonymize_cmd; game_cmd; audit_cmd; theorems_cmd; report_cmd;
            dpcheck_cmd; certify_cmd; experiment_cmd; run_cmd; census_cmd;
            validate_json_cmd;
            ledger_verify_cmd; ledger_report_cmd; report_html_cmd;
            bench_compare_cmd;
            bench_pair_cmd;
          ]))
