(* The audit ledger (Obs.Ledger): emission round-trips through the
   library API, the replay verifier catches tampering, and — end to end
   through the CLI — ledger files are byte-identical at every --jobs and
   ledger-verify / ledger-report / bench-pair hold their exit-code
   contracts. *)

module L = Obs.Ledger

(* Library-level tests toggle the global ledger; every test restores the
   disabled state so the rest of the suite is unaffected. *)
let with_ledger f =
  L.reset ();
  L.enable ();
  Fun.protect ~finally:(fun () -> L.disable ()) f

let parse_ok lines =
  match L.parse_lines lines with
  | Ok ps -> ps
  | Error e -> Alcotest.failf "parse_lines: %s" e

let violations lines = L.verify (parse_ok lines)

let whats lines = List.map (fun (v : L.violation) -> v.what) (violations lines)

let has_violation lines needle =
  List.exists
    (fun what ->
      let lw = String.lowercase_ascii what in
      let ln = String.lowercase_ascii needle in
      let nh = String.length lw and nn = String.length ln in
      let rec go i = i + nn <= nh && (String.sub lw i nn = ln || go (i + 1)) in
      nn = 0 || go 0)
    (whats lines)

(* --- emission round-trip --- *)

let curator_table n =
  let schema =
    Dataset.Schema.make
      [
        { Dataset.Schema.name = "trait"; kind = Dataset.Value.Kint; role = Dataset.Schema.Sensitive };
        { Dataset.Schema.name = "grp"; kind = Dataset.Value.Kint; role = Dataset.Schema.Quasi_identifier };
      ]
  in
  Dataset.Table.make schema
    (Array.init n (fun i -> [| Dataset.Value.Int (i mod 2); Dataset.Value.Int (i mod 4) |]))

let test_roundtrip_curator () =
  let lines =
    with_ledger (fun () ->
        let c =
          Query.Curator.create
            ~rng:(Prob.Rng.create ~seed:7L ())
            ~policy:
              (Query.Curator.Noisy { per_query_epsilon = 0.5; total_epsilon = 1.0 })
            ~target:"trait" (curator_table 10)
        in
        let subset = [| 0; 1; 2; 3 |] in
        (match Query.Curator.ask_subset c subset with
        | Query.Curator.Answer _ -> ()
        | Query.Curator.Refusal m -> Alcotest.failf "first ask refused: %s" m);
        (match Query.Curator.ask_subset c subset with
        | Query.Curator.Answer _ -> ()
        | Query.Curator.Refusal m -> Alcotest.failf "second ask refused: %s" m);
        (match Query.Curator.ask_subset c subset with
        | Query.Curator.Refusal _ -> ()
        | Query.Curator.Answer _ -> Alcotest.fail "budget not enforced");
        let a = Dp.Accountant.create () in
        Dp.Accountant.spend a ~epsilon:0.25 "unit";
        Dp.Accountant.spend_many a ~epsilon:0.125 ~n:4 "unit-many";
        L.to_lines ())
  in
  let ps = parse_ok lines in
  Alcotest.(check (list string)) "ledger verifies clean" [] (L.verify ps |> List.map (fun (v : L.violation) -> v.what));
  let reports = L.report ps in
  let find policy =
    match List.find_opt (fun (r : L.analyst_report) -> r.r_policy = policy) reports with
    | Some r -> r
    | None -> Alcotest.failf "no %s analyst in report" policy
  in
  let noisy = find "noisy" in
  Alcotest.(check int) "noisy analyst answered twice" 2 noisy.r_queries;
  Alcotest.(check int) "noisy analyst refused once" 1 noisy.r_refusals;
  Alcotest.(check (float 1e-9)) "noisy analyst spent its budget" 1.0 noisy.r_spent;
  (match noisy.r_total with
  | Some t -> Alcotest.(check (float 1e-9)) "declared total" 1.0 t
  | None -> Alcotest.fail "noisy session lost its declared budget");
  let acct = find "accountant" in
  Alcotest.(check (float 1e-9)) "accountant spent 0.75" 0.75 acct.r_spent;
  Alcotest.(check bool) "analyst ids are distinct" true
    (noisy.r_analyst <> acct.r_analyst)

let test_fresh_analyst_deterministic () =
  let first = with_ledger (fun () -> (L.fresh_analyst (), L.fresh_analyst ())) in
  let second = with_ledger (fun () -> (L.fresh_analyst (), L.fresh_analyst ())) in
  Alcotest.(check bool) "distinct within a run" true (fst first <> snd first);
  Alcotest.(check (pair string string)) "identical across resets" first second

(* --- the replay verifier on hand-tampered ledgers --- *)

let header = {|{"schema":"ledger/v1","version":1}|}

let session ?(analyst = "a1.0.0") ?(ts = 0) ?budget () =
  match budget with
  | None ->
    Printf.sprintf
      {|{"analyst":%S,"event":"session","policy":"exact","region":1,"task":0,"ts":%d}|}
      analyst ts
  | Some (per_query, total) ->
    Printf.sprintf
      {|{"analyst":%S,"event":"session","per_query_epsilon":%g,"policy":"noisy","region":1,"task":0,"total_epsilon":%g,"ts":%d}|}
      analyst per_query total ts

let spend ?(analyst = "a1.0.0") ~ts ~epsilon ~cumulative () =
  Printf.sprintf
    {|{"analyst":%S,"cumulative":%g,"epsilon":%g,"event":"spend","label":"t","region":1,"task":0,"ts":%d}|}
    analyst cumulative epsilon ts

let test_verify_accepts_clean_spends () =
  Alcotest.(check (list string))
    "within-budget spends are clean" []
    (whats
       [
         header;
         session ~budget:(0.5, 1.0) ();
         spend ~ts:1 ~epsilon:0.5 ~cumulative:0.5 ();
         spend ~ts:2 ~epsilon:0.5 ~cumulative:1.0 ();
       ])

let test_verify_rejects_tampering () =
  Alcotest.(check bool) "over-budget spend" true
    (has_violation
       [
         header;
         session ~budget:(0.5, 1.0) ();
         spend ~ts:1 ~epsilon:0.5 ~cumulative:0.5 ();
         spend ~ts:2 ~epsilon:0.5 ~cumulative:1.0 ();
         spend ~ts:3 ~epsilon:0.5 ~cumulative:1.5 ();
       ]
       "over budget");
  Alcotest.(check bool) "orphan spend (no session)" true
    (has_violation
       [ header; spend ~analyst:"a9.9.9" ~ts:0 ~epsilon:0.25 ~cumulative:0.25 () ]
       "orphan");
  Alcotest.(check bool) "cumulative mismatch vs replay" true
    (has_violation
       [
         header;
         session ~budget:(0.5, 10.0) ();
         spend ~ts:1 ~epsilon:0.5 ~cumulative:0.5 ();
         spend ~ts:2 ~epsilon:0.5 ~cumulative:0.5 ();
       ]
       "cumulative mismatch");
  Alcotest.(check bool) "duplicate session" true
    (has_violation [ header; session (); session ~ts:1 () ] "duplicate session");
  Alcotest.(check bool) "ts regression" true
    (has_violation
       [
         header;
         session ~budget:(0.5, 10.0) ();
         spend ~ts:5 ~epsilon:0.5 ~cumulative:0.5 ();
         spend ~ts:4 ~epsilon:0.5 ~cumulative:1.0 ();
       ]
       "not strictly increasing");
  Alcotest.(check bool) "spend_many total mismatch" true
    (has_violation
       [
         header;
         session ~budget:(0.5, 10.0) ();
         {|{"analyst":"a1.0.0","epsilon":0.5,"event":"spend_many","label":"t","n":4,"region":1,"task":0,"total":3.0,"ts":1}|};
       ]
       "spend_many");
  Alcotest.(check bool) "truncated ledger" true
    (has_violation [ header; {|{"dropped":17,"event":"truncated"}|} ] "truncated");
  match L.parse_lines [ {|{"schema":"other/v9","version":1}|} ] with
  | Ok _ -> Alcotest.fail "wrong schema accepted"
  | Error e ->
    Alcotest.(check bool) "schema error names the schema" true
      (String.length e > 0)

(* --- CLI end-to-end (same child-process harness as test_cli) --- *)

let exe names =
  let candidates =
    [
      List.fold_left Filename.concat ".." names;
      List.fold_left Filename.concat (Filename.concat "_build" "default") names;
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.failf "binary not found: %s" (String.concat "/" names)

let pso_audit args = (exe [ "bin"; "pso_audit.exe" ], args)

type outcome = { code : int; stdout : string }

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let run (binary, args) =
  let out = Filename.temp_file "ledger" ".out" in
  let err = Filename.temp_file "ledger" ".err" in
  let cmd =
    Printf.sprintf "%s %s > %s 2> %s" (Filename.quote binary)
      (String.concat " " (List.map Filename.quote args))
      (Filename.quote out) (Filename.quote err)
  in
  let code = Sys.command cmd in
  let result = { code; stdout = read_file out } in
  Sys.remove out;
  Sys.remove err;
  result

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  nn = 0
  ||
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let write_lines path lines =
  let oc = open_out path in
  List.iter (fun l -> output_string oc l; output_char oc '\n') lines;
  close_out oc

let test_cli_ledger_jobs_invariance () =
  let ledger_at jobs =
    let path = Filename.temp_file "ledger" ".jsonl" in
    let r =
      run
        (pso_audit
           [
             "experiment"; "E2"; "--seed"; "5"; "--jobs"; string_of_int jobs;
             "--ledger"; path;
           ])
    in
    Alcotest.(check int) (Printf.sprintf "jobs=%d exits 0" jobs) 0 r.code;
    let bytes = read_file path in
    (path, bytes)
  in
  let p1, b1 = ledger_at 1 in
  let p2, b2 = ledger_at 2 in
  let p4, b4 = ledger_at 4 in
  Alcotest.(check bool) "ledger is non-trivial" true (String.length b1 > 100);
  Alcotest.(check string) "jobs 1 vs 2 byte-identical" b1 b2;
  Alcotest.(check string) "jobs 1 vs 4 byte-identical" b1 b4;
  let v = run (pso_audit [ "ledger-verify"; p1 ]) in
  Alcotest.(check int) "ledger-verify passes" 0 v.code;
  Alcotest.(check bool) "verify reports ok" true (contains v.stdout "ok:");
  let j = run (pso_audit [ "validate-json"; p1 ]) in
  Alcotest.(check int) "validate-json accepts JSONL" 0 j.code;
  let rep = run (pso_audit [ "ledger-report"; p1 ]) in
  Alcotest.(check int) "ledger-report exits 0" 0 rep.code;
  Alcotest.(check bool) "report has the analyst table" true
    (contains rep.stdout "analyst");
  Alcotest.(check bool) "report has quantile columns" true
    (contains rep.stdout "p99");
  List.iter Sys.remove [ p1; p2; p4 ]

let test_cli_ledger_verify_rejects_tampered () =
  let check_rejected name lines ~stdout_has =
    let path = Filename.temp_file "tampered" ".jsonl" in
    write_lines path lines;
    let r = run (pso_audit [ "ledger-verify"; path ]) in
    Sys.remove path;
    Alcotest.(check int) (name ^ " exits 1") 1 r.code;
    Alcotest.(check bool) (name ^ " names the violation") true
      (contains r.stdout stdout_has)
  in
  check_rejected "inflated budget"
    [
      header;
      session ~budget:(0.5, 1.0) ();
      spend ~ts:1 ~epsilon:0.5 ~cumulative:0.5 ();
      spend ~ts:2 ~epsilon:0.5 ~cumulative:1.0 ();
      spend ~ts:3 ~epsilon:0.5 ~cumulative:1.5 ();
    ]
    ~stdout_has:"over budget";
  check_rejected "orphan spend"
    [ header; spend ~analyst:"a9.9.9" ~ts:0 ~epsilon:0.25 ~cumulative:0.25 () ]
    ~stdout_has:"orphan";
  let garbage = Filename.temp_file "tampered" ".jsonl" in
  write_lines garbage [ {|{"schema":"other/v9"}|}; "{}" ];
  let r = run (pso_audit [ "ledger-verify"; garbage ]) in
  Sys.remove garbage;
  Alcotest.(check int) "wrong schema exits 2" 2 r.code

(* ledger-report --json must emit ledger-report/v1 that parses back to the
   same per-analyst numbers the library computes from the raw events. *)
let test_cli_ledger_report_json () =
  let path = Filename.temp_file "report" ".jsonl" in
  write_lines path
    [
      header;
      session ~budget:(0.5, 1.0) ();
      spend ~ts:1 ~epsilon:0.5 ~cumulative:0.5 ();
      spend ~ts:2 ~epsilon:0.25 ~cumulative:0.75 ();
    ];
  let r = run (pso_audit [ "ledger-report"; path; "--json" ]) in
  Sys.remove path;
  Alcotest.(check int) "ledger-report --json exits 0" 0 r.code;
  let doc =
    match Json.of_string r.stdout with
    | Ok d -> d
    | Error e -> Alcotest.failf "stdout is not JSON: %s" e
  in
  let str k j = Option.bind (Json.member k j) Json.to_string_opt in
  let num k j = Option.bind (Json.member k j) Json.to_float in
  Alcotest.(check (option string))
    "schema" (Some "ledger-report/v1") (str "schema" doc);
  Alcotest.(check (option int))
    "version" (Some 1)
    (Option.bind (Json.member "version" doc) Json.to_int);
  let analysts =
    match Option.bind (Json.member "analysts" doc) Json.to_list with
    | Some (_ :: _ as l) -> l
    | Some [] -> Alcotest.fail "analysts list is empty"
    | None -> Alcotest.fail "no analysts list"
  in
  let a = List.hd analysts in
  Alcotest.(check (option string)) "analyst id" (Some "a1.0.0") (str "analyst" a);
  Alcotest.(check (option string)) "policy" (Some "noisy") (str "policy" a);
  Alcotest.(check (option (float 1e-9))) "eps_spent" (Some 0.75) (num "eps_spent" a);
  Alcotest.(check (option (float 1e-9))) "eps_total" (Some 1.0) (num "eps_total" a);
  Alcotest.(check (option (float 1e-9))) "eps_left" (Some 0.25) (num "eps_left" a);
  Alcotest.(check (option (float 1e-9))) "cost_count" (Some 0.) (num "cost_count" a);
  Alcotest.(check bool) "cost_p99 is null when no query costs" true
    (Json.member "cost_p99" a = Some Json.Null)

let test_cli_bench_pair () =
  let snapshot = Filename.temp_file "bench" ".json" in
  let oc = open_out snapshot in
  output_string oc
    {|{"schema":"bench-kernels/v1","version":1,"jobs":1,"kernels":[
       {"name":"base","ns_per_run":100000.0,"r_square":0.99},
       {"name":"near","ns_per_run":105000.0,"r_square":0.99},
       {"name":"slow","ns_per_run":200000.0,"r_square":0.99}]}|};
  close_out oc;
  let pass = run (pso_audit [ "bench-pair"; snapshot; "base"; "near"; "--tolerance"; "10" ]) in
  Alcotest.(check int) "+5% within 10%" 0 pass.code;
  Alcotest.(check bool) "verdict printed" true (contains pass.stdout "within tolerance");
  let fail = run (pso_audit [ "bench-pair"; snapshot; "base"; "slow"; "--tolerance"; "10" ]) in
  Alcotest.(check int) "+100% beyond 10%" 1 fail.code;
  let missing = run (pso_audit [ "bench-pair"; snapshot; "base"; "nope" ]) in
  Alcotest.(check int) "unknown kernel exits 2" 2 missing.code;
  Sys.remove snapshot

let () =
  Alcotest.run "ledger"
    [
      ( "library",
        [
          Alcotest.test_case "curator round-trip" `Quick test_roundtrip_curator;
          Alcotest.test_case "fresh analyst determinism" `Quick
            test_fresh_analyst_deterministic;
          Alcotest.test_case "verify accepts clean spends" `Quick
            test_verify_accepts_clean_spends;
          Alcotest.test_case "verify rejects tampering" `Quick
            test_verify_rejects_tampering;
        ] );
      ( "cli",
        [
          Alcotest.test_case "ledger jobs invariance" `Slow
            test_cli_ledger_jobs_invariance;
          Alcotest.test_case "ledger-verify rejects tampered" `Quick
            test_cli_ledger_verify_rejects_tampered;
          Alcotest.test_case "ledger-report --json parse-back" `Quick
            test_cli_ledger_report_json;
          Alcotest.test_case "bench-pair contract" `Quick test_cli_bench_pair;
        ] );
    ]
