(* Tests for the dataset substrate: values, schemas, tables, generalized
   values, hierarchies, CSV round-tripping, product models and the
   synthetic generators. *)

module V = Dataset.Value
module S = Dataset.Schema
module T = Dataset.Table
module G = Dataset.Gvalue
module H = Dataset.Hierarchy

let rng () = Prob.Rng.create ~seed:77L ()

(* --- Value --- *)

let test_value_roundtrip () =
  let cases =
    [
      (V.Kint, V.Int (-42));
      (V.Kfloat, V.Float 3.25);
      (V.Kstring, V.String "hello world");
      (V.Kbool, V.Bool true);
      (V.Kdate, V.make_date ~year:1987 ~month:6 ~day:30);
    ]
  in
  List.iter
    (fun (kind, v) ->
      let s = V.to_string v in
      Alcotest.(check bool)
        (Printf.sprintf "roundtrip %s" s)
        true
        (V.equal v (V.of_string kind s)))
    cases

let test_value_null () =
  Alcotest.(check bool) "null parses from empty" true
    (V.equal V.Null (V.of_string V.Kint ""));
  Alcotest.(check string) "null renders empty" "" (V.to_string V.Null)

let test_value_bad_parse () =
  Alcotest.(check bool) "bad int raises" true
    (try
       ignore (V.of_string V.Kint "xyz");
       false
     with Failure _ -> true)

let test_value_date_order () =
  let a = V.make_date ~year:1990 ~month:1 ~day:31 in
  let b = V.make_date ~year:1990 ~month:2 ~day:1 in
  Alcotest.(check bool) "date order" true (V.compare a b < 0)

let test_value_bad_date () =
  Alcotest.check_raises "month 13" (Invalid_argument "Value.make_date: bad month")
    (fun () -> ignore (V.make_date ~year:2000 ~month:13 ~day:1))

let test_value_to_float () =
  Alcotest.(check (option (float 1e-9))) "int" (Some 5.) (V.to_float (V.Int 5));
  Alcotest.(check (option (float 1e-9))) "bool" (Some 1.) (V.to_float (V.Bool true));
  Alcotest.(check (option (float 1e-9))) "string" None (V.to_float (V.String "x"))

(* --- Schema --- *)

let demo_schema =
  S.make
    [
      { S.name = "id"; kind = V.Kint; role = S.Identifier };
      { S.name = "zip"; kind = V.Kstring; role = S.Quasi_identifier };
      { S.name = "dx"; kind = V.Kstring; role = S.Sensitive };
    ]

let test_schema_lookup () =
  Alcotest.(check int) "index" 1 (S.index_of demo_schema "zip");
  Alcotest.(check bool) "mem" true (S.mem demo_schema "dx");
  Alcotest.(check bool) "not mem" false (S.mem demo_schema "nope")

let test_schema_roles () =
  Alcotest.(check (list string)) "QIs" [ "zip" ]
    (S.with_role demo_schema S.Quasi_identifier);
  Alcotest.(check (list string)) "identifiers" [ "id" ]
    (S.with_role demo_schema S.Identifier)

let test_schema_duplicate_rejected () =
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Schema.make: duplicate attribute \"a\"") (fun () ->
      ignore
        (S.make
           [
             { S.name = "a"; kind = V.Kint; role = S.Insensitive };
             { S.name = "a"; kind = V.Kint; role = S.Insensitive };
           ]))

let test_schema_project () =
  let p = S.project demo_schema [ "dx"; "zip" ] in
  Alcotest.(check (list string)) "projected order" [ "dx"; "zip" ] (S.names p)

(* --- Table --- *)

let demo_table () =
  T.make demo_schema
    [|
      [| V.Int 0; V.String "12345"; V.String "flu" |];
      [| V.Int 1; V.String "12345"; V.String "cold" |];
      [| V.Int 2; V.String "54321"; V.String "flu" |];
    |]

let test_table_basics () =
  let t = demo_table () in
  Alcotest.(check int) "rows" 3 (T.nrows t);
  Alcotest.(check string) "value" "54321" (V.to_string (T.value t 2 "zip"))

let test_table_kind_mismatch () =
  Alcotest.(check bool) "wrong kind rejected" true
    (try
       ignore (T.make demo_schema [| [| V.String "x"; V.String "1"; V.String "y" |] |]);
       false
     with Invalid_argument _ -> true)

let test_table_arity_mismatch () =
  Alcotest.(check bool) "wrong arity rejected" true
    (try
       ignore (T.make demo_schema [| [| V.Int 1 |] |]);
       false
     with Invalid_argument _ -> true)

let test_table_null_allowed () =
  let t = T.make demo_schema [| [| V.Null; V.Null; V.Null |] |] in
  Alcotest.(check int) "null row accepted" 1 (T.nrows t)

let test_table_filter_count () =
  let t = demo_table () in
  let is_flu row = V.equal row.(2) (V.String "flu") in
  Alcotest.(check int) "count" 2 (T.count is_flu t);
  Alcotest.(check int) "filter" 2 (T.nrows (T.filter is_flu t))

let test_table_project () =
  let t = T.project (demo_table ()) [ "dx" ] in
  Alcotest.(check int) "arity" 1 (S.arity (T.schema t));
  Alcotest.(check string) "first dx" "flu" (V.to_string (T.value t 0 "dx"))

let test_table_group_by () =
  let groups = T.group_by (demo_table ()) [ "zip" ] in
  Alcotest.(check int) "two groups" 2 (List.length groups);
  let _, first = List.hd groups in
  Alcotest.(check (array int)) "first group" [| 0; 1 |] first

let test_table_distinct () =
  Alcotest.(check int) "distinct zips" 2 (T.distinct (demo_table ()) [ "zip" ])

let test_table_select_append () =
  let t = demo_table () in
  let s = T.select t [| 2; 0 |] in
  Alcotest.(check int) "selected" 2 (T.nrows s);
  Alcotest.(check int) "append" 5 (T.nrows (T.append t s))

let test_table_columns_roundtrip () =
  let t = demo_table () in
  let cols = T.columns t in
  Alcotest.(check int) "one column per attribute" 3 (Array.length cols);
  (* Decoding codes through the dictionary reproduces every cell. *)
  Array.iteri
    (fun j col ->
      Array.iteri
        (fun i code ->
          Alcotest.(check bool)
            (Printf.sprintf "cell (%d,%d)" i j)
            true
            (V.equal col.T.dict.(code) (T.row t i).(j)))
        col.T.codes)
    cols;
  let zip = cols.(1) in
  Alcotest.(check int) "zip dictionary size" 2 (Array.length zip.T.dict);
  Alcotest.(check (array int)) "zip codes (first-appearance)" [| 0; 0; 1 |] zip.T.codes;
  Alcotest.(check (option int)) "code_of known" (Some 1)
    (T.code_of zip (V.String "54321"));
  Alcotest.(check (option int)) "code_of unknown" None (T.code_of zip (V.String "?"));
  let id = cols.(0) in
  Alcotest.(check (array (float 1e-9))) "numeric view" [| 0.; 1.; 2. |] id.T.floats;
  Alcotest.(check bool) "non-numeric view is nan" true
    (Array.for_all Float.is_nan zip.T.floats);
  Alcotest.(check bool) "cached" true (T.columns t == cols)

let test_table_ids_fresh () =
  let t = demo_table () in
  let derived =
    [
      T.filter (fun _ -> true) t;
      T.select t [| 0; 1; 2 |];
      T.project t [ "dx" ];
      T.append t t;
      T.map_rows Fun.id t;
    ]
  in
  let ids = T.id t :: List.map T.id derived in
  let distinct = List.sort_uniq compare ids in
  Alcotest.(check int) "every table gets a fresh id" (List.length ids)
    (List.length distinct)

(* --- Gvalue --- *)

let test_gvalue_matches () =
  Alcotest.(check bool) "exact" true (G.matches (G.Exact (V.Int 3)) (V.Int 3));
  Alcotest.(check bool) "exact no" false (G.matches (G.Exact (V.Int 3)) (V.Int 4));
  Alcotest.(check bool) "range yes" true (G.matches (G.Int_range (1, 5)) (V.Int 5));
  Alcotest.(check bool) "range no" false (G.matches (G.Int_range (1, 5)) (V.Int 6));
  Alcotest.(check bool) "prefix yes" true
    (G.matches (G.Prefix ("12345", 3)) (V.String "12399"));
  Alcotest.(check bool) "prefix no" false
    (G.matches (G.Prefix ("12345", 3)) (V.String "99945"));
  Alcotest.(check bool) "prefix length" false
    (G.matches (G.Prefix ("12345", 3)) (V.String "123"));
  Alcotest.(check bool) "any" true (G.matches G.Any (V.String "anything"));
  Alcotest.(check bool) "null only matches any" false
    (G.matches (G.Exact V.Null) V.Null);
  Alcotest.(check bool) "null matches any" true (G.matches G.Any V.Null);
  Alcotest.(check bool) "category" true
    (G.matches
       (G.Category { label = "PULM"; members = [ V.String "flu"; V.String "CF" ] })
       (V.String "CF"))

let test_gvalue_date_range () =
  let d = V.make_date ~year:1990 ~month:5 ~day:10 in
  let lo = V.date_ordinal { V.year = 1990; month = 1; day = 1 } in
  let hi = V.date_ordinal { V.year = 1990; month = 12; day = 31 } in
  Alcotest.(check bool) "date in year range" true (G.matches (G.Int_range (lo, hi)) d)

let test_gvalue_to_string () =
  Alcotest.(check string) "prefix stars" "123**" (G.to_string (G.Prefix ("12345", 3)));
  Alcotest.(check string) "range" "30-39" (G.to_string (G.Int_range (30, 39)));
  Alcotest.(check string) "any" "*" (G.to_string G.Any)

let test_gvalue_span () =
  Alcotest.(check (float 1e-9)) "exact span" 0.
    (G.span (G.Exact (V.Int 1)) ~domain_size:10.);
  Alcotest.(check (float 1e-9)) "any span" 1. (G.span G.Any ~domain_size:10.);
  Alcotest.(check (float 1e-9)) "range span" 0.9
    (G.span (G.Int_range (0, 9)) ~domain_size:10.)

(* --- Hierarchy --- *)

let test_hierarchy_zip () =
  let h = H.zip_prefix ~digits:5 in
  Alcotest.(check int) "height" 6 (H.height h);
  (match H.apply h ~level:2 (V.String "12345") with
  | G.Prefix (s, 3) -> Alcotest.(check string) "prefix base" "12345" s
  | _ -> Alcotest.fail "expected prefix");
  Alcotest.(check bool) "top is any" true
    (G.equal G.Any (H.apply h ~level:5 (V.String "12345")));
  Alcotest.(check bool) "level 0 exact" true
    (G.equal (G.Exact (V.String "12345")) (H.apply h ~level:0 (V.String "12345")))

let test_hierarchy_int_ranges () =
  let h = H.int_ranges ~name:"age" ~lo:0 ~widths:[ 10; 50 ] in
  (match H.apply h ~level:1 (V.Int 37) with
  | G.Int_range (30, 39) -> ()
  | g -> Alcotest.failf "expected 30-39, got %s" (G.to_string g));
  match H.apply h ~level:2 (V.Int 37) with
  | G.Int_range (0, 49) -> ()
  | g -> Alcotest.failf "expected 0-49, got %s" (G.to_string g)

let test_hierarchy_widths_validated () =
  Alcotest.check_raises "non-increasing"
    (Invalid_argument "Hierarchy.int_ranges: widths must be increasing and positive")
    (fun () -> ignore (H.int_ranges ~name:"x" ~lo:0 ~widths:[ 10; 10 ]))

let test_hierarchy_categorical () =
  let h = Dataset.Synth.disease_hierarchy in
  (match H.apply h ~level:1 (V.String "COVID") with
  | G.Category { label = "PULM"; members } ->
    Alcotest.(check int) "pulm members" 5 (List.length members)
  | g -> Alcotest.failf "expected PULM, got %s" (G.to_string g));
  (match H.apply h ~level:2 (V.String "COVID") with
  | G.Category { label = "ANY-DX"; _ } -> ()
  | g -> Alcotest.failf "expected ANY-DX, got %s" (G.to_string g));
  Alcotest.(check bool) "unknown leaf suppressed" true
    (G.equal G.Any (H.apply h ~level:1 (V.String "NotADisease")))

let test_hierarchy_monotone () =
  (* Higher levels cover everything lower levels cover. *)
  let h = Dataset.Synth.disease_hierarchy in
  List.iter
    (fun leaf ->
      let g1 = H.apply h ~level:1 leaf in
      let g2 = H.apply h ~level:2 leaf in
      List.iter
        (fun other ->
          if G.matches g1 other && not (G.matches g2 other) then
            Alcotest.fail "generalization not monotone")
        (H.leaves h))
    (H.leaves h)

let test_hierarchy_date () =
  let d = V.make_date ~year:1987 ~month:6 ~day:15 in
  (match H.apply H.date_ladder ~level:2 d with
  | G.Int_range (lo, hi) ->
    Alcotest.(check bool) "year range covers date" true
      (lo <= V.date_ordinal { V.year = 1987; month = 6; day = 15 }
      && V.date_ordinal { V.year = 1987; month = 6; day = 15 } <= hi)
  | _ -> Alcotest.fail "expected range");
  match H.apply H.date_ladder ~level:3 d with
  | G.Int_range (lo, _) ->
    Alcotest.(check int) "decade start"
      (V.date_ordinal { V.year = 1980; month = 1; day = 1 })
      lo
  | _ -> Alcotest.fail "expected decade range"

(* --- Gtable --- *)

let test_gtable_classes () =
  let schema =
    S.make
      [
        { S.name = "q"; kind = V.Kint; role = S.Quasi_identifier };
        { S.name = "s"; kind = V.Kstring; role = S.Sensitive };
      ]
  in
  let gt =
    Dataset.Gtable.make schema
      [|
        [| G.Int_range (0, 9); G.Exact (V.String "a") |];
        [| G.Int_range (0, 9); G.Exact (V.String "b") |];
        [| G.Int_range (10, 19); G.Exact (V.String "a") |];
      |]
  in
  Alcotest.(check int) "full classes" 3 (List.length (Dataset.Gtable.classes gt));
  Alcotest.(check int) "QI classes" 2
    (List.length (Dataset.Gtable.classes_on gt [ "q" ]));
  Alcotest.(check int) "min QI class" 1 (Dataset.Gtable.min_class_size_on gt [ "q" ])

let test_gtable_matches_row () =
  let grow = [| G.Int_range (0, 9); G.Exact (V.String "a") |] in
  Alcotest.(check bool) "match" true
    (Dataset.Gtable.matches_row grow [| V.Int 5; V.String "a" |]);
  Alcotest.(check bool) "no match" false
    (Dataset.Gtable.matches_row grow [| V.Int 15; V.String "a" |])

(* --- CSV --- *)

let test_csv_roundtrip () =
  let t = demo_table () in
  let t' = Dataset.Csv.of_string demo_schema (Dataset.Csv.to_string t) in
  Alcotest.(check int) "rows preserved" (T.nrows t) (T.nrows t');
  for i = 0 to T.nrows t - 1 do
    Array.iteri
      (fun j v ->
        Alcotest.(check bool) "cell preserved" true (V.equal v (T.row t' i).(j)))
      (T.row t i)
  done

let test_csv_quoting () =
  let schema = S.make [ { S.name = "s"; kind = V.Kstring; role = S.Insensitive } ] in
  let t = T.make schema [| [| V.String "a,b\"c\nd" |] |] in
  let t' = Dataset.Csv.of_string schema (Dataset.Csv.to_string t) in
  Alcotest.(check string) "tricky cell" "a,b\"c\nd" (V.to_string (T.value t' 0 "s"))

let test_csv_gtable_export () =
  let t = demo_table () in
  let release = Kanon.Mondrian.anonymize ~k:1 t in
  let csv = Dataset.Csv.gtable_to_string release in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + rows" 4 (List.length lines);
  Alcotest.(check string) "header" "id,zip,dx" (List.hd lines)

let test_csv_header_mismatch () =
  Alcotest.(check bool) "header mismatch raises" true
    (try
       ignore (Dataset.Csv.of_string demo_schema "a,b,c\n1,2,3\n");
       false
     with Failure _ -> true)

(* --- Model --- *)

let test_model_exact_probs () =
  let model = Dataset.Synth.pso_model ~attributes:2 ~values_per_attribute:4 in
  Alcotest.(check (float 1e-9)) "row prob" (1. /. 16.)
    (Dataset.Model.row_prob model [| V.Int 0; V.Int 3 |]);
  Alcotest.(check (float 1e-9)) "cell prob" 0.5
    (Dataset.Model.cell_prob model "a0" (fun v ->
         match v with V.Int i -> i < 2 | _ -> false))

let test_model_min_entropy () =
  let model = Dataset.Synth.pso_model ~attributes:3 ~values_per_attribute:4 in
  Alcotest.(check (float 1e-9)) "min entropy adds" 6.
    (Dataset.Model.universe_min_entropy model)

let test_model_sample_table () =
  let model = Dataset.Synth.pso_model ~attributes:2 ~values_per_attribute:4 in
  let t = Dataset.Model.sample_table (rng ()) model 50 in
  Alcotest.(check int) "rows" 50 (T.nrows t);
  T.iter
    (fun _ row ->
      Array.iter
        (fun v ->
          match v with
          | V.Int i when i >= 0 && i < 4 -> ()
          | _ -> Alcotest.fail "sample out of support")
        row)
    t

let test_model_validates () =
  let schema = S.make [ { S.name = "a"; kind = V.Kint; role = S.Insensitive } ] in
  Alcotest.(check bool) "kind mismatch rejected" true
    (try
       ignore
         (Dataset.Model.make schema
            [ ("a", Prob.Distribution.uniform [ V.String "x" ]) ]);
       false
     with Invalid_argument _ -> true)

(* --- Synth --- *)

let test_synth_population () =
  let t = Dataset.Synth.population (rng ()) ~n:200 () in
  Alcotest.(check int) "rows" 200 (T.nrows t);
  Alcotest.(check int) "unique names" 200 (T.distinct t [ "name" ])

let test_synth_gic_release_drops_identifiers () =
  let t = Dataset.Synth.population (rng ()) ~n:20 () in
  let r = Dataset.Synth.gic_release t in
  Alcotest.(check bool) "no name" false (S.mem (T.schema r) "name");
  Alcotest.(check bool) "no id" false (S.mem (T.schema r) "id");
  Alcotest.(check bool) "keeps zip" true (S.mem (T.schema r) "zip")

let test_synth_voter_list_coverage () =
  let t = Dataset.Synth.population (rng ()) ~n:2000 () in
  let v = Dataset.Synth.voter_list (rng ()) t ~coverage:0.5 in
  let frac = float_of_int (T.nrows v) /. 2000. in
  Alcotest.(check bool) "coverage near half" true (frac > 0.4 && frac < 0.6)

let test_synth_ratings () =
  let ratings =
    Dataset.Synth.ratings (rng ()) ~users:50 ~movies:30 ~ratings_per_user:5 ()
  in
  Array.iter
    (fun r ->
      let open Dataset.Synth in
      if r.stars < 1 || r.stars > 5 then Alcotest.fail "stars out of range";
      if r.movie < 0 || r.movie >= 30 then Alcotest.fail "movie out of range";
      if r.user < 0 || r.user >= 50 then Alcotest.fail "user out of range")
    ratings;
  let by_user = Dataset.Synth.ratings_by_user ratings ~users:50 in
  Alcotest.(check int) "bucket count" 50 (Array.length by_user);
  let total = Array.fold_left (fun acc a -> acc + Array.length a) 0 by_user in
  Alcotest.(check int) "partition" (Array.length ratings) total

let test_synth_census () =
  let people =
    Dataset.Synth.census_population (rng ()) ~blocks:20 ~mean_block_size:10
  in
  Alcotest.(check bool) "nonempty" true (Array.length people > 0);
  Array.iter
    (fun p ->
      let open Dataset.Synth in
      if p.block < 0 || p.block >= 20 then Alcotest.fail "block range";
      if p.age < 0 || p.age > 99 then Alcotest.fail "age range";
      if p.sex < 0 || p.sex > 1 then Alcotest.fail "sex range")
    people

let test_synth_genotypes () =
  let g = Dataset.Synth.genotype_study (rng ()) ~people:10 ~snps:20 () in
  Alcotest.(check int) "pool size" 10 (Array.length g.Dataset.Synth.pool);
  Alcotest.(check int) "snps" 20 (Array.length g.Dataset.Synth.frequencies);
  Array.iter
    (fun f -> if f < 0. || f > 1. then Alcotest.fail "frequency range")
    g.Dataset.Synth.frequencies

let test_synth_kanon_model_roles () =
  let m = Dataset.Synth.kanon_pso_model ~qis:3 ~retained:4 ~domain:8 in
  let schema = Dataset.Model.schema m in
  Alcotest.(check int) "arity" 7 (S.arity schema);
  Alcotest.(check int) "QIs" 3 (List.length (S.with_role schema S.Quasi_identifier));
  Alcotest.(check int) "sensitive" 1 (List.length (S.with_role schema S.Sensitive))

(* --- QCheck properties --- *)

let qcheck =
  let open QCheck in
  [
    Test.make ~name:"cover matches every covered value" ~count:300
      (list_of_size Gen.(1 -- 8) (int_range 0 100))
      (fun ints ->
        let values = List.map (fun i -> V.Int i) ints in
        let g = Kanon.Generalization.cover values in
        List.for_all (G.matches g) values);
    Test.make ~name:"zip cover matches every covered string" ~count:300
      (list_of_size Gen.(1 -- 6) (int_range 10000 99999))
      (fun zips ->
        let values = List.map (fun z -> V.String (string_of_int z)) zips in
        let g = Kanon.Generalization.cover values in
        List.for_all (G.matches g) values);
    Test.make ~name:"value to_string/of_string roundtrip (int)" ~count:300 int
      (fun i -> V.equal (V.Int i) (V.of_string V.Kint (V.to_string (V.Int i))));
    Test.make ~name:"csv roundtrip on random string tables" ~count:100
      (list_of_size Gen.(1 -- 10) (pair string string))
      (fun rows ->
        let schema =
          S.make
            [
              { S.name = "a"; kind = V.Kstring; role = S.Insensitive };
              { S.name = "b"; kind = V.Kstring; role = S.Insensitive };
            ]
        in
        assume (List.for_all (fun (a, b) -> a <> "" && b <> "") rows);
        let t =
          T.make schema
            (Array.of_list
               (List.map (fun (a, b) -> [| V.String a; V.String b |]) rows))
        in
        let t' = Dataset.Csv.of_string schema (Dataset.Csv.to_string t) in
        T.nrows t = T.nrows t'
        && List.for_all
             (fun i -> Array.for_all2 V.equal (T.row t i) (T.row t' i))
             (List.init (T.nrows t) Fun.id));
  ]
  |> List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "dataset"
    [
      ( "value",
        [
          Alcotest.test_case "roundtrip" `Quick test_value_roundtrip;
          Alcotest.test_case "null" `Quick test_value_null;
          Alcotest.test_case "bad parse" `Quick test_value_bad_parse;
          Alcotest.test_case "date order" `Quick test_value_date_order;
          Alcotest.test_case "bad date" `Quick test_value_bad_date;
          Alcotest.test_case "to_float" `Quick test_value_to_float;
        ] );
      ( "schema",
        [
          Alcotest.test_case "lookup" `Quick test_schema_lookup;
          Alcotest.test_case "roles" `Quick test_schema_roles;
          Alcotest.test_case "duplicate rejected" `Quick test_schema_duplicate_rejected;
          Alcotest.test_case "project" `Quick test_schema_project;
        ] );
      ( "table",
        [
          Alcotest.test_case "basics" `Quick test_table_basics;
          Alcotest.test_case "kind mismatch" `Quick test_table_kind_mismatch;
          Alcotest.test_case "arity mismatch" `Quick test_table_arity_mismatch;
          Alcotest.test_case "null allowed" `Quick test_table_null_allowed;
          Alcotest.test_case "filter/count" `Quick test_table_filter_count;
          Alcotest.test_case "project" `Quick test_table_project;
          Alcotest.test_case "group_by" `Quick test_table_group_by;
          Alcotest.test_case "distinct" `Quick test_table_distinct;
          Alcotest.test_case "select/append" `Quick test_table_select_append;
          Alcotest.test_case "columnar view" `Quick test_table_columns_roundtrip;
          Alcotest.test_case "fresh ids" `Quick test_table_ids_fresh;
        ] );
      ( "gvalue",
        [
          Alcotest.test_case "matches" `Quick test_gvalue_matches;
          Alcotest.test_case "date range" `Quick test_gvalue_date_range;
          Alcotest.test_case "to_string" `Quick test_gvalue_to_string;
          Alcotest.test_case "span" `Quick test_gvalue_span;
        ] );
      ( "hierarchy",
        [
          Alcotest.test_case "zip ladder" `Quick test_hierarchy_zip;
          Alcotest.test_case "int ranges" `Quick test_hierarchy_int_ranges;
          Alcotest.test_case "widths validated" `Quick test_hierarchy_widths_validated;
          Alcotest.test_case "categorical" `Quick test_hierarchy_categorical;
          Alcotest.test_case "monotone" `Quick test_hierarchy_monotone;
          Alcotest.test_case "date ladder" `Quick test_hierarchy_date;
        ] );
      ( "gtable",
        [
          Alcotest.test_case "classes" `Quick test_gtable_classes;
          Alcotest.test_case "matches_row" `Quick test_gtable_matches_row;
        ] );
      ( "csv",
        [
          Alcotest.test_case "roundtrip" `Quick test_csv_roundtrip;
          Alcotest.test_case "quoting" `Quick test_csv_quoting;
          Alcotest.test_case "gtable export" `Quick test_csv_gtable_export;
          Alcotest.test_case "header mismatch" `Quick test_csv_header_mismatch;
        ] );
      ( "model",
        [
          Alcotest.test_case "exact probs" `Quick test_model_exact_probs;
          Alcotest.test_case "min entropy" `Quick test_model_min_entropy;
          Alcotest.test_case "sample table" `Quick test_model_sample_table;
          Alcotest.test_case "validates kinds" `Quick test_model_validates;
        ] );
      ( "synth",
        [
          Alcotest.test_case "population" `Quick test_synth_population;
          Alcotest.test_case "gic release" `Quick
            test_synth_gic_release_drops_identifiers;
          Alcotest.test_case "voter coverage" `Quick test_synth_voter_list_coverage;
          Alcotest.test_case "ratings" `Quick test_synth_ratings;
          Alcotest.test_case "census" `Quick test_synth_census;
          Alcotest.test_case "genotypes" `Quick test_synth_genotypes;
          Alcotest.test_case "kanon model roles" `Quick test_synth_kanon_model_roles;
        ] );
      ("properties", qcheck);
    ]
