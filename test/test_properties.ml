(* Property-based tests driven by the Stattest.Gen generators: random
   schemas, product models, sampled tables, hierarchies and predicate ASTs
   exercise invariants of the dataset / query / kanon / pso layers that the
   hand-picked fixtures in the per-module suites cannot reach. *)

module V = Dataset.Value
module S = Dataset.Schema
module T = Dataset.Table
module P = Query.Predicate
module Gen = Stattest.Gen

let qcheck ?(count = 100) name gen f =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count ~name (QCheck.make gen) f)

(* --- dataset layer --- *)

let prop_sampled_rows_in_support =
  qcheck "sampled rows live in the model support" Gen.model_table
    (fun (m, t) ->
      let sch = Dataset.Model.schema m in
      T.fold
        (fun ok row ->
          ok
          && Array.for_all2
               (fun (a : S.attribute) v ->
                 Prob.Distribution.prob (Dataset.Model.marginal m a.S.name) v > 0.)
               (S.attributes sch) row)
        true t)

let prop_row_prob =
  qcheck "row_prob is a probability on sampled rows" Gen.nonempty_model_table
    (fun (m, t) ->
      T.fold
        (fun ok row ->
          let p = Dataset.Model.row_prob m row in
          ok && p > 0. && p <= 1.)
        true t
      && Dataset.Model.universe_min_entropy m >= 0.)

let prop_group_by_partitions =
  qcheck "group_by partitions the rows" Gen.nonempty_model_table
    (fun (m, t) ->
      let sch = Dataset.Model.schema m in
      let names = Array.to_list (Array.map (fun a -> a.S.name) (S.attributes sch)) in
      let groups = T.group_by t names in
      let total = List.fold_left (fun n (_, idx) -> n + Array.length idx) 0 groups in
      total = T.nrows t
      && List.length groups = T.distinct t names
      && T.nrows (T.project t names) = T.nrows t)

(* --- query layer --- *)

let prop_count_matches_eval =
  qcheck "count sums eval; isolation means count one" Gen.model_table_predicate
    (fun (m, t, p) ->
      let sch = Dataset.Model.schema m in
      let by_eval = T.fold (fun n row -> if P.eval sch p row then n + 1 else n) 0 t in
      P.count sch p t = by_eval && P.isolates sch p t = (by_eval = 1))

let prop_weight_in_unit_interval =
  qcheck ~count:60 "predicate weight is a probability" Gen.model_table_predicate
    (fun (m, _, p) ->
      let w =
        P.weight_value (P.weight ~rng:(Prob.Rng.create ~seed:31L ()) ~trials:2000 m p)
      in
      w >= 0. && w <= 1.)

let prop_weight_conjunction_bounded =
  qcheck ~count:60 "conjunction weight below each conjunct"
    QCheck.Gen.(Gen.model >>= fun m -> triple (return m) (Gen.predicate m) (Gen.predicate m))
    (fun (m, p, q) ->
      let weight pr =
        P.weight ~rng:(Prob.Rng.create ~seed:47L ()) ~trials:4000 m pr
      in
      let wpq = weight (P.And (p, q)) and wp = weight p and wq = weight q in
      match (wpq, wp, wq) with
      | P.Salted _, _, _ | _, P.Salted _, _ | _, _, P.Salted _ ->
        (* A salted weight is an expectation over hash salts; the realized
           mass for the one salt Monte Carlo sees can sit anywhere in [0,1],
           so the bound only relates comparable weights. *)
        true
      | _ ->
        (* The three Monte-Carlo fallbacks replay one seed, so estimation
           error is shared; 0.08 covers the residual 4000-trial jitter. *)
        P.weight_value wpq
        <= Float.min (P.weight_value wp) (P.weight_value wq) +. 0.08)

let prop_engines_agree =
  qcheck ~count:200 "compiled/bitset engine agrees with the interpreter"
    Gen.model_table_predicate
    (fun (m, t, p) ->
      let sch = Dataset.Model.schema m in
      let interp = P.count_interpreted sch p t in
      let c = P.compile sch p in
      let b = P.bits c t in
      P.count_compiled c t = interp
      && P.count_compiled ~cache:false c t = interp
      && Query.Bitset.count b = interp
      && Array.length (Query.Bitset.indices b) = interp
      && P.isolates_compiled c t = (interp = 1))

let prop_count_many_matches_counts =
  qcheck ~count:100 "batched count_many equals the per-predicate loop"
    QCheck.Gen.(
      Gen.model_table >>= fun (m, t) ->
      list_size (int_range 0 10) (Gen.predicate m) >>= fun ps ->
      return (m, t, ps))
    (fun (m, t, ps) ->
      let sch = Dataset.Model.schema m in
      (* Duplicate the whole list so the batch always contains repeated
         programs (and hence repeated atoms) — the dedup paths must fan
         identical answers out to every duplicate slot. *)
      let qs = Array.of_list (ps @ ps) in
      let cs = Array.map (fun q -> P.compile sch q) qs in
      let expected = Array.map (fun c -> P.count_compiled c t) cs in
      let interp = Array.map (fun q -> P.count_interpreted sch q t) qs in
      P.count_many t cs = expected
      && P.count_many ~cache:false t cs = expected
      && expected = interp
      && P.isolates_many t cs = Array.map (fun n -> n = 1) expected
      && Array.map Query.Bitset.count (P.bits_many t cs) = expected)

let prop_exact_count_mechanism =
  qcheck "exact_count mechanism returns the true count" Gen.model_table_predicate
    (fun (m, t, p) ->
      let sch = Dataset.Model.schema m in
      let out =
        Query.Mechanism.run (Query.Mechanism.exact_count p)
          (Prob.Rng.create ~seed:9L ()) t
      in
      match Query.Mechanism.as_vector out with
      | Some [| c |] -> int_of_float c = P.count sch p t
      | _ -> false)

(* --- hierarchies --- *)

let prop_hierarchy_sound =
  qcheck "every hierarchy level covers the value" Gen.int_hierarchy
    (fun (h, v) ->
      let height = Dataset.Hierarchy.height h in
      let value = V.Int v in
      height >= 2
      && Dataset.Gvalue.equal
           (Dataset.Hierarchy.apply h ~level:0 value)
           (Dataset.Gvalue.of_value value)
      && Dataset.Gvalue.is_suppressed
           (Dataset.Hierarchy.apply h ~level:(height - 1) value)
      && List.for_all
           (fun level ->
             Dataset.Gvalue.matches (Dataset.Hierarchy.apply h ~level value) value)
           (List.init height Fun.id))

(* --- k-anonymity --- *)

let mondrian_config ~k recoding =
  {
    Kanon.Anonymizer.algorithm = Kanon.Anonymizer.Mondrian;
    k;
    scheme = [];
    max_suppression = 0.2;
    recoding;
  }

let prop_mondrian_k_anonymous =
  qcheck ~count:60 "mondrian releases are k-anonymous"
    QCheck.Gen.(pair (int_range 2 5) Gen.kanon_table)
    (fun (k, t) ->
      List.for_all
        (fun recoding ->
          let release =
            Kanon.Anonymizer.anonymize (mondrian_config ~k recoding) t
          in
          Kanon.Anonymizer.is_k_anonymous ~k release
          && Dataset.Gtable.nrows release = T.nrows t)
        [ Kanon.Mondrian.Member_level; Kanon.Mondrian.Class_level ])

let prop_release_covers_input =
  qcheck ~count:40 "release class reps match their member rows"
    QCheck.Gen.(pair (int_range 2 4) Gen.kanon_table)
    (fun (k, t) ->
      let release =
        Kanon.Anonymizer.anonymize (mondrian_config ~k Kanon.Mondrian.Class_level) t
      in
      let qis = Kanon.Generalization.quasi_identifiers (T.schema t) in
      let projected = T.project t qis in
      List.for_all
        (fun (cls : Dataset.Gtable.eclass) ->
          Array.for_all
            (fun i ->
              Dataset.Gtable.matches_row
                (Array.sub cls.Dataset.Gtable.rep 0 (List.length qis))
                (T.row projected i))
            cls.Dataset.Gtable.members)
        (Dataset.Gtable.classes_on release qis))

(* --- the PSO game --- *)

let prop_game_outcome_sane =
  let model = lazy (Dataset.Synth.pso_model ~attributes:2 ~values_per_attribute:4) in
  qcheck ~count:25 "game outcomes are internally consistent"
    QCheck.Gen.(int_range 0 10_000)
    (fun seed ->
      let outcome =
        Pso.Game.run
          (Prob.Rng.create ~seed:(Int64.of_int seed) ())
          ~model:(Lazy.force model) ~n:20
          ~mechanism:(Query.Mechanism.exact_count P.True)
          ~attacker:(Pso.Attacker.hash_bucket ~buckets:4096)
          ~weight_bound:0.01 ~trials:8
      in
      let lo, hi = outcome.Pso.Game.success_ci in
      outcome.Pso.Game.successes <= outcome.Pso.Game.isolations
      && outcome.Pso.Game.isolations <= outcome.Pso.Game.trials
      && outcome.Pso.Game.successes + outcome.Pso.Game.heavy_isolations
         <= outcome.Pso.Game.isolations
      && Float.abs
           (outcome.Pso.Game.success_rate
           -. (float_of_int outcome.Pso.Game.successes /. float_of_int outcome.Pso.Game.trials))
         < 1e-12
      && 0. <= lo
      && lo <= outcome.Pso.Game.success_rate
      && outcome.Pso.Game.success_rate <= hi
      && hi <= 1.)

let () =
  Alcotest.run "properties"
    [
      ("dataset", [ prop_sampled_rows_in_support; prop_row_prob; prop_group_by_partitions ]);
      ( "query",
        [
          prop_count_matches_eval;
          prop_engines_agree;
          prop_count_many_matches_counts;
          prop_weight_in_unit_interval;
          prop_weight_conjunction_bounded;
          prop_exact_count_mechanism;
        ] );
      ("hierarchy", [ prop_hierarchy_sound ]);
      ("kanon", [ prop_mondrian_k_anonymous; prop_release_covers_input ]);
      ("pso", [ prop_game_outcome_sane ]);
    ]
